// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact — see DESIGN.md's experiment
// index), the headline crossover solvers, the ablations, and the hot
// evaluation paths.
//
//	go test -bench=. -benchmem
package greenfpga_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"

	"greenfpga"
	"greenfpga/api"

	"greenfpga/internal/core"
	"greenfpga/internal/experiments"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/server"
	"greenfpga/internal/sweep"
	"greenfpga/internal/units"
)

// benchExperiment runs one registered paper artifact per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if err := out.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Paper tables.

func BenchmarkTable1Defaults(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2IsoPerf(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3Industry(b *testing.B) { benchExperiment(b, "table3") }

// Paper figures.

func BenchmarkFig2SingleVsTenApps(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig4NumApps(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5AppLifetime(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6AppVolume(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7Breakdown(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8Heatmaps(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9ChipLifetime(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig10IndustryFPGA(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11IndustryASIC(b *testing.B)   { benchExperiment(b, "fig11") }

// Headline analyses and ablations.

func BenchmarkCrossoverScenarios(b *testing.B)  { benchExperiment(b, "scenarios") }
func BenchmarkDesignModelAblation(b *testing.B) { benchExperiment(b, "design-ablation") }
func BenchmarkYieldModelAblation(b *testing.B)  { benchExperiment(b, "yield-ablation") }
func BenchmarkRecyclingKnobsSweep(b *testing.B) { benchExperiment(b, "recycling-sweep") }
func BenchmarkEq2Sensitivity(b *testing.B)      { benchExperiment(b, "eq2-sensitivity") }

// Extensions beyond the paper.

func BenchmarkGPUExtension(b *testing.B)      { benchExperiment(b, "gpu-extension") }
func BenchmarkCarbonScheduling(b *testing.B)  { benchExperiment(b, "carbon-scheduling") }
func BenchmarkChipletAblation(b *testing.B)   { benchExperiment(b, "chiplet-ablation") }
func BenchmarkDesignSpaceSearch(b *testing.B) { benchExperiment(b, "dse") }
func BenchmarkFleetPlanner(b *testing.B)      { benchExperiment(b, "planner") }
func BenchmarkMultiFPGAGanging(b *testing.B)  { benchExperiment(b, "multi-fpga") }
func BenchmarkFabSiting(b *testing.B)         { benchExperiment(b, "fab-siting") }

// BenchmarkMonteCarlo runs a 500-sample Table 1 uncertainty study on
// the DNN ratio. The pair is compiled once; each draw swaps in its
// duty cycle through the cheap operational-model variant and probes
// the O(1) uniform path, and the engine fans draws across CPUs.
func BenchmarkMonteCarlo(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	cp, err := pr.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := greenfpga.RunMonteCarlo(greenfpga.MCConfig{
			Samples: 500,
			Seed:    int64(i),
			Params: []greenfpga.MCParam{
				{Name: "duty", Dist: greenfpga.UniformDist{Lo: 0.05, Hi: 0.2}},
				{Name: "life", Dist: greenfpga.UniformDist{Lo: 1, Hi: 3}},
			},
			Model: func(draw map[string]float64) (float64, error) {
				f, err := cp.FPGA.WithDutyCycle(draw["duty"])
				if err != nil {
					return 0, err
				}
				a, err := cp.ASIC.WithDutyCycle(draw["duty"])
				if err != nil {
					return 0, err
				}
				c, err := core.CompiledPair{FPGA: f, ASIC: a}.CompareUniform(
					5, units.YearsOf(draw["life"]), 1e6, 0)
				if err != nil {
					return 0, err
				}
				return c.Ratio, nil
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Hot-path micro-benchmarks.

// BenchmarkEvaluateFPGA measures one full FPGA scenario evaluation.
func BenchmarkEvaluateFPGA(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	s := core.Uniform("bench", 5, units.YearsOf(2), 1e6, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(pr.FPGA, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateASIC measures one full ASIC scenario evaluation.
func BenchmarkEvaluateASIC(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	s := core.Uniform("bench", 5, units.YearsOf(2), 1e6, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(pr.ASIC, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceCost measures the embodied-model evaluation alone.
func BenchmarkDeviceCost(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.FPGA.DeviceCost(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep2D measures a parallel 20x12 pairwise grid (the Fig. 8
// workload shape): the pair is compiled once and every cell probes the
// O(1) uniform path through the sweep worker pool.
func BenchmarkSweep2D(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	cp, err := pr.Compile()
	if err != nil {
		b.Fatal(err)
	}
	x := sweep.Axis{Name: "n", Values: sweep.IntRange(1, 20)}
	y := sweep.Axis{Name: "t", Values: sweep.Linspace(0.2, 2.5, 12)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sweep.Run2D(x, y, func(xv, yv float64) (units.Mass, units.Mass, error) {
			c, err := cp.CompareUniform(int(xv+0.5), units.YearsOf(yv), 1e6, 0)
			if err != nil {
				return 0, 0, err
			}
			return c.FPGA.Total(), c.ASIC.Total(), nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep2DUncompiled keeps the seed benchmark's shape — a full
// scenario build and evaluation per cell — to track the cost the
// compiled pipeline removes.
func BenchmarkSweep2DUncompiled(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	x := sweep.Axis{Name: "n", Values: sweep.IntRange(1, 20)}
	y := sweep.Axis{Name: "t", Values: sweep.Linspace(0.2, 2.5, 12)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sweep.Run2D(x, y, func(xv, yv float64) (units.Mass, units.Mass, error) {
			c, err := pr.Compare(core.Uniform("g", int(xv+0.5), units.YearsOf(yv), 1e6, 0))
			if err != nil {
				return 0, 0, err
			}
			return c.FPGA.Total(), c.ASIC.Total(), nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossoverSolvers measures the three §4.2 solvers together.
func BenchmarkCrossoverSolvers(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pr.CrossoverNumApps(units.YearsOf(2), 1e6, 0, 20); err != nil {
			b.Fatal(err)
		}
		if _, _, err := pr.CrossoverLifetime(5, 1e6, 0, units.YearsOf(0.2), units.YearsOf(2.5)); err != nil {
			b.Fatal(err)
		}
		if _, _, err := pr.CrossoverVolume(5, units.YearsOf(2), 0, 1e3, 1e7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossoverSolversCompiled measures the same three solvers
// against a pre-compiled pair — the repeated-sweep setting where even
// the one-time compile is amortized away.
func BenchmarkCrossoverSolversCompiled(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	cp, err := pr.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cp.CrossoverNumApps(units.YearsOf(2), 1e6, 0, 20); err != nil {
			b.Fatal(err)
		}
		if _, _, err := cp.CrossoverLifetime(5, 1e6, 0, units.YearsOf(0.2), units.YearsOf(2.5)); err != nil {
			b.Fatal(err)
		}
		if _, _, err := cp.CrossoverVolume(5, units.YearsOf(2), 0, 1e3, 1e7); err != nil {
			b.Fatal(err)
		}
	}
}

// Compiled-pipeline micro-benchmarks.

// BenchmarkCompile measures the one-time platform compilation cost.
func BenchmarkCompile(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := greenfpga.Compile(pr.FPGA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledEvaluateFPGA measures a full scenario evaluation
// against a pre-compiled FPGA platform.
func BenchmarkCompiledEvaluateFPGA(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	c, err := greenfpga.Compile(pr.FPGA)
	if err != nil {
		b.Fatal(err)
	}
	s := core.Uniform("bench", 5, units.YearsOf(2), 1e6, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Evaluate(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateUniformFPGA measures the O(1) uniform-scenario path.
func BenchmarkEvaluateUniformFPGA(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		b.Fatal(err)
	}
	c, err := greenfpga.Compile(pr.FPGA)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EvaluateUniform(5, units.YearsOf(2), 1e6, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareSet measures the N-way comparison path: one
// four-platform CompiledSet.CompareUniform (four O(1) evaluations plus
// the full pairwise ratio matrix) against the same four evaluations
// expressed as two sequential CompiledPair.CompareUniform calls — the
// shape a caller was forced into before platform sets existed.
func BenchmarkCompareSet(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	set, err := d.Set()
	if err != nil {
		b.Fatal(err)
	}
	cs, err := set.Compile()
	if err != nil {
		b.Fatal(err)
	}
	if len(cs) != 4 {
		b.Fatalf("DNN set has %d platforms, want 4", len(cs))
	}
	b.Run("set4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cs.CompareUniform(5, units.YearsOf(2), 1e6, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	fpgaASIC := core.CompiledPair{FPGA: cs[0], ASIC: cs[1]}
	gpuCPU := core.CompiledPair{FPGA: cs[2], ASIC: cs[3]}
	b.Run("pairs2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fpgaASIC.CompareUniform(5, units.YearsOf(2), 1e6, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := gpuCPU.CompareUniform(5, units.YearsOf(2), 1e6, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlatformFrontier regenerates the four-way frontier
// experiment.
func BenchmarkPlatformFrontier(b *testing.B) { benchExperiment(b, "platform-frontier") }

// BenchmarkTimeline measures one four-platform timeline evaluation:
// a 12-deployment staggered schedule with a refresh cap through
// CompiledSet.CompareSchedule (the /v1/timeline compute path minus
// JSON).
func BenchmarkTimeline(b *testing.B) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		b.Fatal(err)
	}
	set, err := d.Set()
	if err != nil {
		b.Fatal(err)
	}
	for i := range set {
		set[i].ChipLifetime = greenfpga.Years(8)
	}
	cs, err := set.Compile()
	if err != nil {
		b.Fatal(err)
	}
	sch := core.Staggered("bench", 12, units.YearsOf(0.5), units.YearsOf(2), 1e6, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.CompareSchedule(sch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimelineStaggered regenerates the staggered-timeline
// experiment.
func BenchmarkTimelineStaggered(b *testing.B) { benchExperiment(b, "timeline-staggered") }

// Service benchmarks.

// BenchmarkServerEvaluate measures a full /v1/evaluate round trip
// over loopback HTTP. "cold" renames the scenario per iteration so
// every request is a fresh content address (result-cache miss,
// compiled-platform cache warm); "hit" repeats one request so it is
// served from the content-addressed result cache without evaluating.
func BenchmarkServerEvaluate(b *testing.B) {
	srv, err := server.New(server.Options{CacheEntries: 1 << 17})
	if err != nil {
		b.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	url := hts.URL + "/v1/evaluate"
	hc := hts.Client()

	post := func(body []byte) error {
		resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != 200 {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	body := func(name string) []byte {
		cfg := greenfpga.ExampleScenarioConfig()
		cfg.Name = name
		var buf bytes.Buffer
		if err := api.WriteJSON(&buf, &api.EvaluateRequest{Scenario: cfg}); err != nil {
			b.Fatal(err)
		}
		return buf.Bytes()
	}

	// The name counter lives outside the sub-benchmark: testing.B
	// re-runs it with escalating b.N against the same server, and
	// restarting at bench-0 would turn the early iterations of later
	// runs into cache hits. Bodies are pre-built outside the timed
	// loop so cold-vs-hit measures only what the cache removes.
	cold := 0
	b.Run("cold", func(b *testing.B) {
		bodies := make([][]byte, b.N)
		for i := range bodies {
			cold++
			bodies[i] = body(fmt.Sprintf("bench-%d", cold))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := post(bodies[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		warm := body("bench-hit")
		if err := post(warm); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := post(warm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchEvaluate measures a 64-scenario batch through the
// pool fan-out (all items distinct, so every one evaluates).
func BenchmarkBatchEvaluate(b *testing.B) {
	srv, err := server.New(server.Options{CacheEntries: 1 << 17})
	if err != nil {
		b.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	hc := hts.Client()

	// Bodies are pre-built outside the timed loop (names unique across
	// b.N escalations) so the number is the round trip, not client-side
	// request construction.
	const items = 64
	n := 0
	bodies := make([][]byte, b.N)
	for i := range bodies {
		var req api.BatchEvaluateRequest
		for j := 0; j < items; j++ {
			cfg := greenfpga.ExampleScenarioConfig()
			cfg.Name = fmt.Sprintf("batch-%d", n)
			n++
			req.Requests = append(req.Requests, api.EvaluateRequest{Scenario: cfg})
		}
		var buf bytes.Buffer
		if err := api.WriteJSON(&buf, &req); err != nil {
			b.Fatal(err)
		}
		bodies[i] = buf.Bytes()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := hc.Post(hts.URL+"/v1/evaluate/batch", "application/json", bytes.NewReader(bodies[i]))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkResolveSpecs measures the unified request model's
// resolution layer: one four-spec platform set — a plain domain
// member, a kind spec with a chip-lifetime override, a catalog
// device, an inline config — resolved through the Evaluator's
// compiled-platform cache (warm: every spec after the first pass is a
// content-address lookup, the plain member a memoized set lookup).
func BenchmarkResolveSpecs(b *testing.B) {
	e := api.NewEvaluator(64)
	specs := []api.PlatformSpec{
		{Domain: "DNN", Kind: "fpga"},
		{Domain: "DNN", Kind: "asic", ChipLifetimeYears: 8},
		{Device: "IndustryFPGA1"},
		{Config: &api.PlatformConfig{Device: "IndustryASIC1", DutyCycle: 0.3}},
	}
	if _, err := e.ResolveSet(specs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ResolveSet(specs); err != nil {
			b.Fatal(err)
		}
	}
}
