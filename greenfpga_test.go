package greenfpga_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"greenfpga"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	// The documented quick start must work end to end.
	d, err := greenfpga.DomainByName("DNN")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := pr.Compare(greenfpga.Uniform("apps", 6, greenfpga.Years(2), 1e6, 0))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ratio >= 1 {
		t.Errorf("six DNN applications should favour the FPGA, ratio %g", cmp.Ratio)
	}
}

func TestFacadeUnitsConstructors(t *testing.T) {
	if greenfpga.Tonnes(2).Kilograms() != 2000 {
		t.Error("Tonnes")
	}
	if greenfpga.GWh(1).KWh() != 1e6 {
		t.Error("GWh")
	}
	if greenfpga.Kilowatts(2).Watts() != 2000 {
		t.Error("Kilowatts")
	}
	if greenfpga.CM2(1).MM2() != 100 {
		t.Error("CM2")
	}
	if math.Abs(greenfpga.Months(18).Years()-1.5) > 1e-12 {
		t.Error("Months")
	}
	if greenfpga.GramsPerKWh(700).KgPerKWh() != 0.7 {
		t.Error("GramsPerKWh")
	}
}

func TestFacadeCatalogsAndNodes(t *testing.T) {
	if len(greenfpga.IndustryDevices()) != 6 {
		t.Error("industry catalog should have the four Table 3 devices plus the GPU and CPU extensions")
	}
	if len(greenfpga.Domains()) != 3 {
		t.Error("three Table 2 domains expected")
	}
	if _, err := greenfpga.DeviceByName("IndustryASIC2"); err != nil {
		t.Error(err)
	}
	if _, err := greenfpga.NodeByName("7nm"); err != nil {
		t.Error(err)
	}
	if _, err := greenfpga.GridByRegion("iceland"); err != nil {
		t.Error(err)
	}
	if _, err := greenfpga.GridByRegion("atlantis"); err == nil {
		t.Error("unknown region must error")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := greenfpga.Experiments()
	if len(ids) < 12 {
		t.Fatalf("experiment registry too small: %v", ids)
	}
	var buf bytes.Buffer
	if err := greenfpga.RenderExperiment("table2", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "7.42") {
		t.Errorf("table2 output missing the ImgProc ratio:\n%s", buf.String())
	}
	if err := greenfpga.RenderExperiment("fig99", &buf); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestFacadeLifecycle(t *testing.T) {
	spec, err := greenfpga.DeviceByName("IndustryFPGA1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := greenfpga.RunLifecycle(greenfpga.LifecycleConfig{
		Platform: greenfpga.Platform{
			Spec: spec, DutyCycle: 0.3, ChipLifetime: greenfpga.Years(15),
		},
		AppLifetime: greenfpga.Years(1),
		Horizon:     greenfpga.Years(30),
		Volume:      1000,
		Samples:     30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 || len(res.Curve) != 31 {
		t.Errorf("lifecycle: total %v, %d points", res.Total(), len(res.Curve))
	}
}

func TestFacadeMonteCarlo(t *testing.T) {
	res, err := greenfpga.RunMonteCarlo(greenfpga.MCConfig{
		Samples: 200,
		Seed:    5,
		Params: []greenfpga.MCParam{
			{Name: "x", Dist: greenfpga.UniformDist{Lo: 0, Hi: 2}},
		},
		Model: func(d map[string]float64) (float64, error) { return d["x"], nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-1) > 0.15 {
		t.Errorf("mean %g", res.Mean)
	}
}

func TestFacadeWorkloadAndDSE(t *testing.T) {
	if len(greenfpga.Kernels()) < 9 {
		t.Error("kernel library too small")
	}
	k, err := greenfpga.KernelByName("aes256-gcm")
	if err != nil {
		t.Fatal(err)
	}
	app, err := greenfpga.AppFromKernel(k, 120, greenfpga.Years(1), 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if app.SizeGates <= 0 {
		t.Error("kernel application should carry a size")
	}
	s, err := greenfpga.KernelRoadmap(k, 120, 2, 3, greenfpga.Years(1), 1e4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := greenfpga.ExploreDesignSpace(greenfpga.DSEInputs{
		Apps:      s.Apps,
		DutyCycle: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 || res.Best().Total <= 0 {
		t.Errorf("dse result: %+v", res.Best())
	}
}

func TestFacadePlanner(t *testing.T) {
	d, err := greenfpga.DomainByName("Crypto")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := d.Pair()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := greenfpga.OptimizePortfolio(greenfpga.PlannerInputs{
		FPGA: pr.FPGA,
		ASIC: pr.ASIC,
		Apps: []greenfpga.Application{
			{Name: "a", Lifetime: greenfpga.Years(1), Volume: 1e4},
			{Name: "b", Lifetime: greenfpga.Years(1), Volume: 1e4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total > plan.AllASIC || plan.Total > plan.AllFPGA {
		t.Errorf("plan %v worse than a baseline", plan.Total)
	}
	// Crypto parity silicon: both apps should share the fleet.
	if plan.FPGAApps() != 2 {
		t.Errorf("crypto portfolio should be all-FPGA, got %d", plan.FPGAApps())
	}
}

func TestFacadeScenarioConfig(t *testing.T) {
	ex := greenfpga.ExampleScenarioConfig()
	p, err := ex.FPGA.ToPlatform()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ex.ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := greenfpga.Evaluate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 {
		t.Error("example scenario should produce positive CFP")
	}
}

// TestDomainRatioStudyBetween pins the generalized uncertainty study:
// the (FPGA, ASIC) instance IS DomainRatioStudy sample for sample, a
// GPU-vs-FPGA study runs on the same calibration, and unknown kinds
// error instead of panicking.
func TestDomainRatioStudyBetween(t *testing.T) {
	d, err := greenfpga.DomainByName("DNN")
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := greenfpga.DomainRatioStudy(d, 5, 80, 11)
	if err != nil {
		t.Fatal(err)
	}
	between, err := greenfpga.DomainRatioStudyBetween(d, greenfpga.FPGA, greenfpga.ASIC, 5, 80, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Samples) != len(between.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(legacy.Samples), len(between.Samples))
	}
	for i := range legacy.Samples {
		if legacy.Samples[i] != between.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, legacy.Samples[i], between.Samples[i])
		}
	}
	if legacy.Mean != between.Mean || legacy.StdDev != between.StdDev {
		t.Errorf("summary stats differ: %v/%v vs %v/%v",
			legacy.Mean, legacy.StdDev, between.Mean, between.StdDev)
	}

	gpu, err := greenfpga.DomainRatioStudyBetween(d, greenfpga.GPU, greenfpga.FPGA, 5, 80, 11)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Mean <= 0 || len(gpu.Tornado) == 0 {
		t.Errorf("gpu study: %+v", gpu)
	}
	if _, err := greenfpga.DomainRatioStudyBetween(d, greenfpga.DeviceKind("npu"), greenfpga.ASIC, 5, 10, 1); err == nil {
		t.Error("unknown kind must error")
	}
}
