package report

import (
	"bytes"
	"strings"
	"testing"

	"greenfpga/internal/sweep"
	"greenfpga/internal/units"
)

func TestTableText(t *testing.T) {
	tbl := NewTable("Totals", "Platform", "CFP")
	tbl.AddRow("FPGA", units.Tonnes(12).String())
	tbl.AddRow("ASIC", units.Tonnes(15).String())
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Totals", "Platform", "FPGA", "12 tCO2e", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every body line has the second column at the same
	// offset.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if idx1, idx2 := strings.Index(lines[3], "12 tCO2e"), strings.Index(lines[4], "15 tCO2e"); idx1 != idx2 {
		t.Errorf("misaligned columns: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tbl := NewTable("T", "A", "B")
	tbl.AddRow("1", "2")
	tbl.AddRow("3") // short row pads

	var md bytes.Buffer
	if err := tbl.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| A | B |") || !strings.Contains(md.String(), "| --- | --- |") {
		t.Errorf("markdown:\n%s", md.String())
	}

	var csvBuf bytes.Buffer
	if err := tbl.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	want := "A,B\n1,2\n3,\n"
	if csvBuf.String() != want {
		t.Errorf("csv: %q, want %q", csvBuf.String(), want)
	}
}

func TestTableErrors(t *testing.T) {
	empty := &Table{Title: "no columns"}
	var buf bytes.Buffer
	if err := empty.WriteText(&buf); err == nil {
		t.Error("no columns must error")
	}
	over := NewTable("T", "A")
	over.AddRow("1", "2")
	if err := over.WriteText(&buf); err == nil {
		t.Error("overlong row must error")
	}
	if err := over.WriteMarkdown(&buf); err == nil {
		t.Error("markdown must validate too")
	}
	if err := over.WriteCSV(&buf); err == nil {
		t.Error("csv must validate too")
	}
}

func TestLineChart(t *testing.T) {
	var buf bytes.Buffer
	err := LineChart(&buf, ChartOptions{Title: "CFP vs N", XLabel: "N", YLabel: "ktCO2e"},
		Series{Name: "FPGA", X: []float64{1, 2, 3, 4}, Y: []float64{4, 3, 2, 1}},
		Series{Name: "ASIC", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CFP vs N", "* FPGA", "o ASIC", "y: ktCO2e", "+----"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("chart missing series markers")
	}
}

func TestLineChartLogX(t *testing.T) {
	var buf bytes.Buffer
	err := LineChart(&buf, ChartOptions{Title: "V", XLabel: "volume", LogX: true},
		Series{Name: "r", X: []float64{1e3, 1e4, 1e5, 1e6}, Y: []float64{0.5, 0.8, 1.2, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(log)") {
		t.Error("log axis not labelled")
	}
	// Non-positive x on log axis errors.
	err = LineChart(&buf, ChartOptions{LogX: true},
		Series{Name: "bad", X: []float64{0, 1}, Y: []float64{1, 2}})
	if err == nil {
		t.Error("log axis with x=0 must error")
	}
}

func TestLineChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := LineChart(&buf, ChartOptions{}); err == nil {
		t.Error("no series must error")
	}
	if err := LineChart(&buf, ChartOptions{}, Series{Name: "x", X: []float64{1}, Y: nil}); err == nil {
		t.Error("mismatched lengths must error")
	}
	if err := LineChart(&buf, ChartOptions{}, Series{Name: "empty"}); err == nil {
		t.Error("empty series must error")
	}
	// Flat and single-point series render without dividing by zero.
	if err := LineChart(&buf, ChartOptions{}, Series{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}); err != nil {
		t.Errorf("flat series: %v", err)
	}
	if err := LineChart(&buf, ChartOptions{}, Series{Name: "pt", X: []float64{1}, Y: []float64{5}}); err != nil {
		t.Errorf("single point: %v", err)
	}
}

func TestStackedBarChart(t *testing.T) {
	var buf bytes.Buffer
	bars := []StackedBar{
		{Label: "FPGA", Segments: []Segment{{"design", 1}, {"mfg", 4}, {"op", 5}}},
		{Label: "ASIC", Segments: []Segment{{"design", 2}, {"mfg", 2}, {"op", 1}, {"eol", -0.1}}},
	}
	if err := StackedBarChart(&buf, "Breakdown", "kt", bars, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Breakdown", "FPGA", "ASIC", "# design", "10 kt", "4.9 kt"} {
		if !strings.Contains(out, want) {
			t.Errorf("bar chart missing %q:\n%s", want, out)
		}
	}
	// The FPGA bar (total 10) must be longer than the ASIC bar (4.9).
	lines := strings.Split(out, "\n")
	fpgaFill := strings.Count(lines[1], "#") + strings.Count(lines[1], "=") + strings.Count(lines[1], ":")
	asicFill := strings.Count(lines[2], "#") + strings.Count(lines[2], "=") + strings.Count(lines[2], ":")
	if fpgaFill <= asicFill {
		t.Errorf("bar lengths: fpga %d <= asic %d\n%s", fpgaFill, asicFill, out)
	}
	if err := StackedBarChart(&buf, "x", "kt", nil, 10); err == nil {
		t.Error("no bars must error")
	}
	// All-zero bars render without dividing by zero.
	if err := StackedBarChart(&buf, "z", "kt", []StackedBar{{Label: "a"}}, 10); err != nil {
		t.Errorf("zero bars: %v", err)
	}
}

func TestHeatmapChart(t *testing.T) {
	g := &sweep.Grid{
		XAxis: sweep.Axis{Name: "N", Values: []float64{1, 2, 3, 4, 5, 6}},
		YAxis: sweep.Axis{Name: "T", Values: []float64{0.5, 1, 2}},
		Ratio: [][]float64{
			{0.4, 0.6, 0.8, 1.1, 1.5, 2.2},
			{0.5, 0.8, 1.2, 1.6, 2.0, 2.8},
			{0.7, 1.1, 1.7, 2.3, 3.0, 4.1},
		},
	}
	var buf bytes.Buffer
	if err := HeatmapChart(&buf, "Fig8", g, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig8", "X", "x: N", "y: T"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
	if err := HeatmapChart(&buf, "empty", &sweep.Grid{}, 1); err == nil {
		t.Error("empty grid must error")
	}
	if err := HeatmapChart(&buf, "nil", nil, 1); err == nil {
		t.Error("nil grid must error")
	}
}
