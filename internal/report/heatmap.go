package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"greenfpga/internal/sweep"
)

// heatRamp shades FPGA-favourable (low ratio) cells light and
// ASIC-favourable (high ratio) cells dark, mirroring the purple-to-red
// colormap of Fig. 8.
const heatRamp = " .:-=+*#%@"

// HeatmapChart renders a 2-D sweep grid as an ASCII heatmap with the
// iso-ratio crossover contour marked 'X' (the paper's pink dashes).
// Shading is by log2 of the FPGA:ASIC ratio clamped to [1/4, 4].
func HeatmapChart(w io.Writer, title string, g *sweep.Grid, contourLevel float64) error {
	if g == nil || len(g.Ratio) == 0 {
		return fmt.Errorf("report: heatmap %q has no grid", title)
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	ny, nx := len(g.Ratio), len(g.Ratio[0])

	// Mark contour cells: nearest cell for each contour point.
	onContour := make([][]bool, ny)
	for i := range onContour {
		onContour[i] = make([]bool, nx)
	}
	for _, p := range g.Contour(contourLevel) {
		xi := nearestIndex(g.XAxis, p.X)
		yi := nearestIndex(g.YAxis, p.Y)
		if xi >= 0 && yi >= 0 {
			onContour[yi][xi] = true
		}
	}

	// Rows print top-down from the largest y value.
	for yi := ny - 1; yi >= 0; yi-- {
		var sb strings.Builder
		for xi := 0; xi < nx; xi++ {
			if onContour[yi][xi] {
				sb.WriteByte('X')
				continue
			}
			sb.WriteByte(shade(g.Ratio[yi][xi]))
		}
		if _, err := fmt.Fprintf(w, "%10.3g |%s\n", g.YAxis.Values[yi], sb.String()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", nx)); err != nil {
		return err
	}
	lo := fmt.Sprintf("%.3g", g.XAxis.Values[0])
	hi := fmt.Sprintf("%.3g", g.XAxis.Values[nx-1])
	pad := nx - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	if _, err := fmt.Fprintf(w, "%10s  %s%s%s  x: %s\n", "", lo, strings.Repeat(" ", pad), hi, g.XAxis.Name); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%10s  y: %s | shade: ' '=FPGA wins .. '@'=ASIC wins | X: FPGA:ASIC = %g\n",
		"", g.YAxis.Name, contourLevel)
	return err
}

// shade maps a ratio to a ramp character.
func shade(ratio float64) byte {
	if math.IsNaN(ratio) {
		return '?'
	}
	// log2 ratio in [-2, 2] maps onto the ramp.
	l := math.Log2(ratio)
	if l < -2 {
		l = -2
	}
	if l > 2 {
		l = 2
	}
	idx := int(math.Round((l + 2) / 4 * float64(len(heatRamp)-1)))
	return heatRamp[idx]
}

// nearestIndex finds the axis sample closest to v (log-aware).
func nearestIndex(a sweep.Axis, v float64) int {
	best, bestDist := -1, math.Inf(1)
	for i, x := range a.Values {
		var d float64
		if a.Log && x > 0 && v > 0 {
			d = math.Abs(math.Log10(x) - math.Log10(v))
		} else {
			d = math.Abs(x - v)
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
