// Package report renders GreenFPGA results for terminals and files:
// aligned text tables, Markdown and CSV exports, and ASCII line charts,
// stacked bars and heatmaps that reproduce the paper's figures without
// a plotting stack.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	// Title is printed above the table.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the body cells; short rows are padded.
	Rows [][]string
}

// NewTable builds a table with the given header.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// validate checks the table is renderable.
func (t *Table) validate() error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("report: table %q has no columns", t.Title)
	}
	for i, r := range t.Rows {
		if len(r) > len(t.Columns) {
			return fmt.Errorf("report: table %q row %d has %d cells for %d columns",
				t.Title, i, len(r), len(t.Columns))
		}
	}
	return nil
}

// cell returns the padded cell value.
func (t *Table) cell(row []string, col int) string {
	if col < len(row) {
		return row[col]
	}
	return ""
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, r := range t.Rows {
		for i := range t.Columns {
			if n := len(t.cell(r, i)); n > w[i] {
				w[i] = n
			}
		}
	}
	return w
}

// WriteText renders an aligned plain-text table.
func (t *Table) WriteText(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells func(int) string) error {
		parts := make([]string, len(t.Columns))
		for i := range t.Columns {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cells(i))
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(func(i int) string { return t.Columns[i] }); err != nil {
		return err
	}
	if err := line(func(i int) string { return strings.Repeat("-", widths[i]) }); err != nil {
		return err
	}
	for _, r := range t.Rows {
		r := r
		if err := line(func(i int) string { return t.cell(r, i) }); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders a GitHub-flavoured Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range t.Columns {
			cells[i] = t.cell(r, i)
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders RFC-4180 CSV (header row first; the title is not
// emitted).
func (t *Table) WriteCSV(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range t.Columns {
			cells[i] = t.cell(r, i)
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
