package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line of a chart.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the sample coordinates (equal lengths).
	X, Y []float64
}

// ChartOptions configures a line chart.
type ChartOptions struct {
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height size the plot area in characters (defaults
	// 64x16).
	Width, Height int
	// LogX plots the x axis on a log10 scale.
	LogX bool
}

// seriesMarkers cycles through per-series point markers.
var seriesMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// LineChart renders the series as an ASCII scatter/line plot.
func LineChart(w io.Writer, opt ChartOptions, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: chart %q has no series", opt.Title)
	}
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has %d x values and %d y values",
				s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("report: series %q is empty", s.Name)
		}
		for i := range s.X {
			x := s.X[i]
			if opt.LogX {
				if x <= 0 {
					return fmt.Errorf("report: series %q has non-positive x %g on a log axis", s.Name, x)
				}
				x = math.Log10(x)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	if xmin == xmax {
		xmin, xmax = xmin-1, xmax+1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, marker byte) {
		if opt.LogX {
			x = math.Log10(x)
		}
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		row := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = marker
		}
	}
	for si, s := range series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		// Interpolate between samples so lines read as lines.
		for i := 0; i+1 < len(s.X); i++ {
			const steps = 8
			for k := 0; k <= steps; k++ {
				t := float64(k) / steps
				var x float64
				if opt.LogX {
					x = math.Pow(10, math.Log10(s.X[i])+t*(math.Log10(s.X[i+1])-math.Log10(s.X[i])))
				} else {
					x = s.X[i] + t*(s.X[i+1]-s.X[i])
				}
				plot(x, s.Y[i]+t*(s.Y[i+1]-s.Y[i]), marker)
			}
		}
		if len(s.X) == 1 {
			plot(s.X[0], s.Y[0], marker)
		}
	}

	if opt.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", opt.Title); err != nil {
			return err
		}
	}
	for r, rowBytes := range grid {
		yv := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%10.3g |%s\n", yv, string(rowBytes)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	lo, hi := xmin, xmax
	if opt.LogX {
		lo, hi = math.Pow(10, xmin), math.Pow(10, xmax)
	}
	xlabel := opt.XLabel
	if opt.LogX {
		xlabel += " (log)"
	}
	pad := width - len(fmt.Sprintf("%.3g", lo)) - len(fmt.Sprintf("%.3g", hi))
	if pad < 1 {
		pad = 1
	}
	if _, err := fmt.Fprintf(w, "%10s  %.3g%s%.3g  %s\n", "", lo, strings.Repeat(" ", pad), hi, xlabel); err != nil {
		return err
	}
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c %s", seriesMarkers[i%len(seriesMarkers)], s.Name)
	}
	if opt.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%10s  y: %s\n", "", opt.YLabel); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%10s  %s\n", "", strings.Join(legend, "   "))
	return err
}

// Segment is one component of a stacked bar.
type Segment struct {
	// Name appears in the legend.
	Name string
	// Value is the segment magnitude (negative values are clamped to
	// zero width but reported in the annotation).
	Value float64
}

// StackedBar is one labelled bar.
type StackedBar struct {
	// Label names the bar.
	Label string
	// Segments stack left to right.
	Segments []Segment
}

// segmentGlyphs cycles through stack-segment fills.
var segmentGlyphs = []byte{'#', '=', ':', '+', '.', '%', '~'}

// StackedBarChart renders horizontal stacked bars, the shape of the
// paper's breakdown figures (Figs. 7, 10, 11). All bars share one
// scale; unit annotates the printed totals.
func StackedBarChart(w io.Writer, title, unit string, bars []StackedBar, width int) error {
	if len(bars) == 0 {
		return fmt.Errorf("report: bar chart %q has no bars", title)
	}
	if width <= 0 {
		width = 60
	}
	maxTotal := 0.0
	labelW := 0
	for _, b := range bars {
		total := 0.0
		for _, s := range b.Segments {
			if s.Value > 0 {
				total += s.Value
			}
		}
		maxTotal = math.Max(maxTotal, total)
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	glyphFor := map[string]byte{}
	var legendOrder []string
	for _, b := range bars {
		for _, s := range b.Segments {
			if _, ok := glyphFor[s.Name]; !ok {
				glyphFor[s.Name] = segmentGlyphs[len(glyphFor)%len(segmentGlyphs)]
				legendOrder = append(legendOrder, s.Name)
			}
		}
	}
	for _, b := range bars {
		var sb strings.Builder
		total := 0.0
		for _, s := range b.Segments {
			if s.Value <= 0 {
				total += s.Value
				continue
			}
			total += s.Value
			n := int(math.Round(s.Value / maxTotal * float64(width)))
			sb.Write(bytesRepeat(glyphFor[s.Name], n))
		}
		if _, err := fmt.Fprintf(w, "  %-*s |%-*s| %.3g %s\n",
			labelW, b.Label, width, sb.String(), total, unit); err != nil {
			return err
		}
	}
	legend := make([]string, len(legendOrder))
	for i, name := range legendOrder {
		legend[i] = fmt.Sprintf("%c %s", glyphFor[name], name)
	}
	_, err := fmt.Fprintf(w, "  %s\n", strings.Join(legend, "   "))
	return err
}

// bytesRepeat builds n copies of c.
func bytesRepeat(c byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}
