// Package cache provides a small, concurrency-safe LRU used for the
// service's content-addressed result store and the compiled-platform
// cache: both are keyed by a canonical hash of their inputs, so a hit
// is a proof that the cached value answers the request exactly.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a bounded least-recently-used map from string keys to
// arbitrary values. The zero value is not usable; construct with New.
type LRU struct {
	mu     sync.Mutex
	max    int
	ll     *list.List
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

// entry is one resident key/value.
type entry struct {
	key string
	val any
}

// New returns an LRU holding at most max entries; max < 1 is treated
// as 1.
func New(max int) *LRU {
	if max < 1 {
		max = 1
	}
	return &LRU{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the value under key and marks it most recently used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key, evicting the least recently used entry
// when the cache is full.
func (c *LRU) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
	}
}

// Len returns the resident entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
