// Package cache provides a small, concurrency-safe LRU used for the
// service's content-addressed result store and the compiled-platform
// cache: both are keyed by a canonical hash of their inputs, so a hit
// is a proof that the cached value answers the request exactly.
//
// Large caches are sharded: the key hashes to one of a power-of-two
// set of independently locked shards, so concurrent hits on a hot
// serving path contend per shard instead of on one global mutex, and
// eviction is per shard. Hit/miss counters are atomics, so Stats()
// reads never contend with the hot path at all. Small caches (where
// per-shard capacity would drop below a useful floor) keep a single
// shard and therefore exact global LRU order.
package cache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// maxShards bounds the shard fan-out; 16 removes the global-mutex
// serialization at any concurrency a single process serves.
const maxShards = 16

// minShardCapacity is the smallest per-shard capacity worth splitting
// for: below it, sharding would make eviction order so approximate
// that tiny caches (tests, bounded artifact stores) would evict
// recently used entries on hash collisions.
const minShardCapacity = 32

// seed makes the shard hash process-stable; all LRUs share it so a
// key always lands on the same shard index for a given shard count.
var seed = maphash.MakeSeed()

// LRU is a bounded least-recently-used map from string keys to
// arbitrary values. The zero value is not usable; construct with New.
type LRU struct {
	shards []shard
	mask   uint64
	hits   atomic.Uint64
	misses atomic.Uint64
}

// shard is one independently locked slice of the keyspace.
type shard struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

// entry is one resident key/value.
type entry struct {
	key string
	val any
}

// shardCount picks the largest power of two (up to maxShards) that
// keeps every shard at or above minShardCapacity.
func shardCount(max int) int {
	n := 1
	for n < maxShards && max/(n*2) >= minShardCapacity {
		n *= 2
	}
	return n
}

// New returns an LRU holding at most max entries; max < 1 is treated
// as 1. Capacity is divided evenly across the shards, so per-shard
// eviction keeps the global bound exact.
func New(max int) *LRU {
	if max < 1 {
		max = 1
	}
	n := shardCount(max)
	c := &LRU{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		// Spread the capacity exactly: the first max%n shards take the
		// extra entry, so the shard capacities always sum to max.
		sm := max / n
		if i < max%n {
			sm++
		}
		c.shards[i] = shard{max: sm, ll: list.New(), items: make(map[string]*list.Element)}
	}
	return c
}

// shardFor hashes key to its shard.
func (c *LRU) shardFor(key string) *shard {
	if c.mask == 0 {
		return &c.shards[0]
	}
	return &c.shards[maphash.String(seed, key)&c.mask]
}

// Get returns the value under key and marks it most recently used
// within its shard.
func (c *LRU) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	v := el.Value.(*entry).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores val under key, evicting the least recently used entry of
// the key's shard when that shard is full.
func (c *LRU) Put(key string, val any) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, val: val})
	if s.ll.Len() > s.max {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
	}
}

// Len returns the resident entry count across all shards.
func (c *LRU) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Shards returns the shard fan-out (1 for small caches).
func (c *LRU) Shards() int { return len(c.shards) }

// Stats returns the cumulative hit and miss counts. The counters are
// atomics, so reading them never blocks a Get or Put.
func (c *LRU) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
