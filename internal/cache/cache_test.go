package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	// a is now most recent; inserting c must evict b.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Errorf("a: %v %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Errorf("c: %v %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert
	c.Put("c", 3)  // must evict b, not a
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Errorf("a after update: %v %v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestLRUStats(t *testing.T) {
	c := New(4)
	c.Put("a", 1)
	c.Get("a")
	c.Get("missing")
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats %d/%d, want 1/1", hits, misses)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := New(0) // clamped to 1
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Errorf("len %d, want 1", c.Len())
	}
}

// TestLRUShardCount pins the shard fan-out policy: small caches keep
// one shard (exact global LRU order, which the eviction tests above
// rely on), large caches split up to 16 ways, and per-shard capacities
// always sum to the requested bound.
func TestLRUShardCount(t *testing.T) {
	cases := []struct {
		max, shards int
	}{
		{1, 1}, {16, 1}, {63, 1}, {64, 2}, {128, 4}, {256, 8}, {512, 16}, {1024, 16}, {100000, 16},
	}
	for _, tc := range cases {
		c := New(tc.max)
		if got := c.Shards(); got != tc.shards {
			t.Errorf("New(%d).Shards() = %d, want %d", tc.max, got, tc.shards)
		}
		total := 0
		for i := range c.shards {
			total += c.shards[i].max
		}
		if total != tc.max {
			t.Errorf("New(%d): shard capacities sum to %d", tc.max, total)
		}
	}
}

// TestLRUShardedBound fills a sharded cache far past capacity and
// checks the global bound holds and resident entries stay readable.
func TestLRUShardedBound(t *testing.T) {
	const max = 512
	c := New(max)
	if c.Shards() < 2 {
		t.Fatalf("want a sharded cache, got %d shards", c.Shards())
	}
	for i := 0; i < 4*max; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > max {
		t.Errorf("len %d exceeds capacity %d", n, max)
	}
	// The most recent insert of each shard must still be resident.
	hits, misses := c.Stats()
	if v, ok := c.Get(fmt.Sprintf("key-%d", 4*max-1)); !ok || v.(int) != 4*max-1 {
		t.Errorf("most recent key: %v %v", v, ok)
	}
	h2, m2 := c.Stats()
	if h2 != hits+1 || m2 != misses {
		t.Errorf("stats after hit: %d/%d -> %d/%d", hits, misses, h2, m2)
	}
}

// TestLRUShardStability checks a key always lands on one shard: a Put
// followed by Gets from many goroutines must always find it.
func TestLRUShardStability(t *testing.T) {
	c := New(1024)
	c.Put("stable", 42)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if v, ok := c.Get("stable"); !ok || v.(int) != 42 {
					t.Errorf("stable key lost: %v %v", v, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLRUConcurrent exercises the lock under -race.
func TestLRUConcurrent(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Put(key, i)
				c.Get(key)
				c.Len()
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}

// TestLRUConcurrentSharded exercises the sharded layout (multiple
// shards plus the atomic counters) under -race, with Stats readers
// racing the hot path — the PR 8 contention fix this package exists
// for.
func TestLRUConcurrentSharded(t *testing.T) {
	c := New(2048)
	if c.Shards() != 16 {
		t.Fatalf("want 16 shards, got %d", c.Shards())
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%64)
				c.Put(key, i)
				c.Get(key)
				c.Get("absent")
			}
		}(w)
	}
	// Dedicated Stats/Len readers: these must never block behind (or
	// race with) the writers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Stats()
				c.Len()
			}
		}()
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits != 8*500 || misses != 8*500 {
		t.Errorf("stats %d/%d, want 4000/4000", hits, misses)
	}
	if c.Len() > 2048 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}
