package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	// a is now most recent; inserting c must evict b.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Errorf("a: %v %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Errorf("c: %v %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert
	c.Put("c", 3)  // must evict b, not a
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Errorf("a after update: %v %v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestLRUStats(t *testing.T) {
	c := New(4)
	c.Put("a", 1)
	c.Get("a")
	c.Get("missing")
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats %d/%d, want 1/1", hits, misses)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := New(0) // clamped to 1
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Errorf("len %d, want 1", c.Len())
	}
}

// TestLRUConcurrent exercises the lock under -race.
func TestLRUConcurrent(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Put(key, i)
				c.Get(key)
				c.Len()
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}
