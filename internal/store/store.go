// Package store is an embedded, pure-Go, file-backed key-value store:
// the durable tier under the serving layer's result cache and the jobs
// manager's record of truth. It is an append-only record log with an
// in-memory index — the shape that makes crash safety simple: records
// are only ever appended, never rewritten, so the only corruption a
// crash can produce is a torn record at the tail, and reopen recovers
// by truncating it.
//
// Log layout: an 8-byte magic header, then records back to back. One
// record is
//
//	[1B op][4B keyLen][4B valLen][key][val][4B crc32]
//
// with the CRC (Castagnoli) covering everything before it. op is put
// or delete; a delete carries no value and acts as a tombstone, so a
// key's liveness is decided by its last record. Open replays the log
// into the index (a map from key to the value's offset and length),
// stopping at the first short or CRC-failing record and truncating the
// file there — a torn tail record costs exactly the write that was in
// flight, never the log behind it.
//
// Reads go through ReadAt against immutable earlier bytes, so they run
// concurrently with appends; writes serialize on one mutex. Put/Delete
// only buffer through the OS — call Sync to force the log to stable
// storage (the jobs manager syncs at terminal states and shutdown).
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// magic identifies (and versions) the log file format.
var magic = []byte("GFPSTOR1")

// Record ops.
const (
	opPut    = 1
	opDelete = 2
)

// recHeaderLen is op + keyLen + valLen.
const recHeaderLen = 1 + 4 + 4

// MaxValueLen bounds one record's value (64 MiB): far above any
// response or checkpoint this service stores, low enough that a
// corrupt length field can never drive a multi-gigabyte allocation
// during replay.
const MaxValueLen = 64 << 20

// MaxKeyLen bounds one record's key.
const MaxKeyLen = 4096

// castagnoli is the CRC-32C table (hardware-accelerated on the
// platforms Go supports).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// entry locates one live value inside the log.
type entry struct {
	off int64 // offset of the value bytes
	len int32
}

// Store is the embedded log-structured store. It is safe for
// concurrent use.
type Store struct {
	mu    sync.RWMutex
	f     *os.File
	tail  int64 // append offset == current log length
	index map[string]entry
	// garbage counts bytes belonging to superseded or deleted records
	// — what a compaction would reclaim (observability only; this store
	// does not compact in-process).
	garbage int64
}

// FileName is the log's name inside the store directory.
const FileName = "greenfpga.log"

// Open opens (creating if needed) the store in dir. A log with a torn
// or corrupt tail — the footprint of a crash mid-append — is truncated
// back to its last intact record and opened normally; corruption is
// never fatal here, because everything behind the tear is still sound.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, index: make(map[string]entry)}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the log into the index, truncating at the first record
// that does not check out.
func (s *Store) replay() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size < int64(len(magic)) {
		// New (or header-torn) file: start fresh.
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := s.f.WriteAt(magic, 0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.tail = int64(len(magic))
		return nil
	}
	head := make([]byte, len(magic))
	if _, err := s.f.ReadAt(head, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if string(head) != string(magic) {
		return fmt.Errorf("store: %s is not a greenfpga store log", s.f.Name())
	}
	off := int64(len(magic))
	for off < size {
		n, ok := s.replayRecord(off, size)
		if !ok {
			break
		}
		off += n
	}
	s.tail = off
	if off < size {
		// Torn tail: everything from the first bad record on is the
		// remains of an interrupted append (or trailing junk); drop it
		// so new appends land on a clean boundary.
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	return nil
}

// replayRecord validates the record at off and applies it to the
// index, returning the record's total length. ok is false when the
// record is torn or corrupt — the truncation point.
func (s *Store) replayRecord(off, size int64) (int64, bool) {
	var hdr [recHeaderLen]byte
	if off+recHeaderLen > size {
		return 0, false
	}
	if _, err := s.f.ReadAt(hdr[:], off); err != nil {
		return 0, false
	}
	op := hdr[0]
	keyLen := int64(binary.LittleEndian.Uint32(hdr[1:5]))
	valLen := int64(binary.LittleEndian.Uint32(hdr[5:9]))
	if (op != opPut && op != opDelete) ||
		keyLen == 0 || keyLen > MaxKeyLen || valLen > MaxValueLen ||
		(op == opDelete && valLen != 0) {
		return 0, false
	}
	total := recHeaderLen + keyLen + valLen + 4
	if off+total > size {
		return 0, false
	}
	body := make([]byte, total-recHeaderLen)
	if _, err := s.f.ReadAt(body, off+recHeaderLen); err != nil {
		return 0, false
	}
	crc := crc32.Checksum(hdr[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, body[:keyLen+valLen])
	if crc != binary.LittleEndian.Uint32(body[keyLen+valLen:]) {
		return 0, false
	}
	key := string(body[:keyLen])
	if old, ok := s.index[key]; ok {
		s.garbage += recordLen(key, int(old.len))
	}
	if op == opDelete {
		delete(s.index, key)
		s.garbage += total
	} else {
		s.index[key] = entry{off: off + recHeaderLen + keyLen, len: int32(valLen)}
	}
	return total, true
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	e, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	buf := make([]byte, e.len)
	if _, err := s.f.ReadAt(buf, e.off); err != nil {
		return nil, false, fmt.Errorf("store: reading %q: %w", key, err)
	}
	return buf, true, nil
}

// Put durably records key → val (durably once Sync or Close returns).
func (s *Store) Put(key string, val []byte) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return fmt.Errorf("store: key length %d out of range", len(key))
	}
	if len(val) > MaxValueLen {
		return fmt.Errorf("store: value of %d bytes exceeds the %d limit", len(val), MaxValueLen)
	}
	rec := appendRecord(nil, opPut, key, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: closed")
	}
	if _, err := s.f.WriteAt(rec, s.tail); err != nil {
		return fmt.Errorf("store: appending %q: %w", key, err)
	}
	valOff := s.tail + recHeaderLen + int64(len(key))
	if old, ok := s.index[key]; ok {
		s.garbage += recordLen(key, int(old.len))
	}
	s.index[key] = entry{off: valOff, len: int32(len(val))}
	s.tail += int64(len(rec))
	return nil
}

// Delete removes key (a tombstone append; absent keys are a no-op).
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: closed")
	}
	old, ok := s.index[key]
	if !ok {
		return nil
	}
	rec := appendRecord(nil, opDelete, key, nil)
	if _, err := s.f.WriteAt(rec, s.tail); err != nil {
		return fmt.Errorf("store: deleting %q: %w", key, err)
	}
	delete(s.index, key)
	s.garbage += recordLen(key, int(old.len)) + int64(len(rec))
	s.tail += int64(len(rec))
	return nil
}

// Keys returns the live keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	out := make([]string, 0, 8)
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len counts live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Size reports the log length in bytes and how much of it is garbage
// (superseded or deleted records).
func (s *Store) Size() (total, garbage int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tail, s.garbage
}

// Sync forces the log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close syncs and closes the log. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// recordLen is the on-disk footprint of one put record.
func recordLen(key string, valLen int) int64 {
	return int64(recHeaderLen + len(key) + valLen + 4)
}

// appendRecord appends one framed record to buf.
func appendRecord(buf []byte, op byte, key string, val []byte) []byte {
	start := len(buf)
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, key...)
	buf = append(buf, val...)
	crc := crc32.Checksum(buf[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}
