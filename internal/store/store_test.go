package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// reopen closes s and opens the same directory again.
func reopen(t *testing.T, s *Store, dir string) *Store {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return s2
}

func mustPut(t *testing.T, s *Store, key string, val []byte) {
	t.Helper()
	if err := s.Put(key, val); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func mustGet(t *testing.T, s *Store, key string) []byte {
	t.Helper()
	v, ok, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if !ok {
		t.Fatalf("Get(%q): missing", key)
	}
	return v
}

// TestPutGetReopen pins the core contract: everything written before
// Close is there after Open — last write wins, deletes stay deleted.
func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustPut(t, s, "a", []byte("one"))
	mustPut(t, s, "b", []byte("two"))
	mustPut(t, s, "a", []byte("three")) // supersede
	mustPut(t, s, "empty", nil)         // zero-length values are valid
	if err := s.Delete("b"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete absent: %v", err)
	}

	check := func(s *Store) {
		t.Helper()
		if got := mustGet(t, s, "a"); string(got) != "three" {
			t.Fatalf("a = %q, want %q", got, "three")
		}
		if got := mustGet(t, s, "empty"); len(got) != 0 {
			t.Fatalf("empty = %q, want empty", got)
		}
		if _, ok, _ := s.Get("b"); ok {
			t.Fatalf("b resurrected after delete")
		}
		if n := s.Len(); n != 2 {
			t.Fatalf("Len = %d, want 2", n)
		}
	}
	check(s)
	s = reopen(t, s, dir)
	defer s.Close()
	check(s)
}

// TestKeysPrefix pins the prefix scan the jobs manager uses for
// resume.
func TestKeysPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for _, k := range []string{"job:2", "job:1", "result:x", "ckpt:1:0"} {
		mustPut(t, s, k, []byte(k))
	}
	got := s.Keys("job:")
	want := []string{"job:1", "job:2"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Keys(job:) = %v, want %v", got, want)
	}
	if all := s.Keys(""); len(all) != 4 {
		t.Fatalf("Keys(\"\") = %v, want 4 keys", all)
	}
}

// TestTornTailTruncated pins the crash contract: a log whose last
// record was cut mid-append reopens cleanly with every record before
// the tear intact, and the torn bytes are physically gone so the next
// append lands on a clean boundary.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustPut(t, s, "keep-1", bytes.Repeat([]byte("x"), 1000))
	mustPut(t, s, "keep-2", []byte("intact"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, FileName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	goodSize := fi.Size()

	// Simulate a crash mid-append: a full record plus a cut-off one.
	whole := appendRecord(nil, opPut, "torn", bytes.Repeat([]byte("y"), 500))
	for _, cut := range []int{1, recHeaderLen, len(whole) / 2, len(whole) - 1} {
		if err := os.Truncate(path, goodSize); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := f.Write(whole[:cut]); err != nil {
			t.Fatalf("write torn: %v", err)
		}
		f.Close()

		s, err := Open(dir)
		if err != nil {
			t.Fatalf("cut=%d: reopen after tear: %v", cut, err)
		}
		if got := mustGet(t, s, "keep-2"); string(got) != "intact" {
			t.Fatalf("cut=%d: keep-2 = %q", cut, got)
		}
		if _, ok, _ := s.Get("torn"); ok {
			t.Fatalf("cut=%d: torn record visible", cut)
		}
		if fi, _ := os.Stat(path); fi.Size() != goodSize {
			t.Fatalf("cut=%d: log is %d bytes, want truncated to %d", cut, fi.Size(), goodSize)
		}
		// The store keeps working on the truncated log.
		mustPut(t, s, "after-crash", []byte("ok"))
		s = reopen(t, s, dir)
		if got := mustGet(t, s, "after-crash"); string(got) != "ok" {
			t.Fatalf("cut=%d: after-crash = %q", cut, got)
		}
		if err := s.Delete("after-crash"); err != nil {
			t.Fatalf("cleanup delete: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Re-freeze goodSize for the next cut (the log grew by the
		// after-crash put + delete).
		fi, err = os.Stat(path)
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		goodSize = fi.Size()
	}
}

// TestCorruptTailTruncated pins that a bit-flip in the tail record —
// torn by a crash after a partial page write — truncates from the
// corrupt record on instead of failing the open.
func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustPut(t, s, "keep", []byte("safe"))
	sizeBefore, _ := s.Size()
	mustPut(t, s, "doomed", bytes.Repeat([]byte("z"), 256))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flip one bit inside the doomed record's value.
	data[sizeBefore+recHeaderLen+int64(len("doomed"))+10] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	s, err = Open(dir)
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer s.Close()
	if got := mustGet(t, s, "keep"); string(got) != "safe" {
		t.Fatalf("keep = %q", got)
	}
	if _, ok, _ := s.Get("doomed"); ok {
		t.Fatalf("corrupt record served")
	}
	if total, _ := s.Size(); total != sizeBefore {
		t.Fatalf("log is %d bytes, want %d", total, sizeBefore)
	}
}

// TestNotAStoreLog pins that a foreign file is refused rather than
// silently truncated to nothing.
func TestNotAStoreLog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte("definitely not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "not a greenfpga store log") {
		t.Fatalf("Open foreign file: err = %v, want magic mismatch", err)
	}
}

// TestLimits pins the key/value bounds.
func TestLimits(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(strings.Repeat("k", MaxKeyLen+1), []byte("x")); err == nil {
		t.Fatal("oversized key accepted")
	}
}

// TestConcurrent exercises parallel writers and readers; run under
// -race this is the store's concurrency contract.
func TestConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%10)
				if err := s.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, _, err := s.Get(key); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				s.Keys("w")
			}
		}(w)
	}
	wg.Wait()
	s = reopen(t, s, dir)
	defer s.Close()
	if n := s.Len(); n != 80 {
		t.Fatalf("Len = %d, want 80", n)
	}
}

// TestClosedStore pins the closed-store errors.
func TestClosedStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := s.Put("k", nil); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync on closed store: %v", err)
	}
}
