// Package resilience holds the serving-path protection primitives
// behind `greenfpga serve`: a concurrency limiter with a bounded queue
// wait (load shedding instead of unbounded queueing), request-scoped
// singleflight coalescing of identical in-flight computations, a
// deadline middleware that turns overrunning handlers into proper
// gateway-timeout envelopes, and a panic-recovery middleware that
// turns handler panics into internal-error envelopes instead of
// dropped connections. The primitives are transport-shaped but
// policy-free: what gets written on shed/timeout/panic is injected by
// the server, so this package stays independent of the api types.
package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrShed reports that a request waited the limiter's full queue-wait
// bound without a slot freeing — the server is saturated and the
// caller should be told to retry later rather than queue forever.
var ErrShed = errors.New("resilience: saturated, load shed after max queue wait")

// Limiter bounds concurrent work with a bounded queue: Acquire waits
// for a slot at most maxWait before giving up with ErrShed, so a
// saturated server degrades into fast 503s instead of an unbounded
// queue of doomed requests. The zero Limiter is unusable; call
// NewLimiter.
type Limiter struct {
	slots   chan struct{}
	waiting atomic.Int64
}

// NewLimiter returns a limiter admitting n concurrent holders.
func NewLimiter(n int) *Limiter {
	if n < 1 {
		n = 1
	}
	return &Limiter{slots: make(chan struct{}, n)}
}

// Acquire claims a slot, waiting up to maxWait (forever when maxWait
// < 0). It returns nil once a slot is held, ErrShed when the wait
// bound elapses first, and ctx.Err() when the caller gives up first.
// Every successful Acquire must be paired with Release.
func (l *Limiter) Acquire(ctx context.Context, maxWait time.Duration) error {
	_, err := l.AcquireWait(ctx, maxWait)
	return err
}

// AcquireWait is Acquire plus how long the caller actually queued —
// the sample behind the server's queue-wait histogram, which shows
// saturation building before the shed counter moves.
func (l *Limiter) AcquireWait(ctx context.Context, maxWait time.Duration) (time.Duration, error) {
	// Fast path: a free slot costs no timer and no waiting-gauge blip.
	select {
	case l.slots <- struct{}{}:
		return 0, nil
	default:
	}
	start := time.Now()
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	var bound <-chan time.Time
	if maxWait >= 0 {
		t := time.NewTimer(maxWait)
		defer t.Stop()
		bound = t.C
	}
	select {
	case l.slots <- struct{}{}:
		return time.Since(start), nil
	case <-bound:
		return time.Since(start), ErrShed
	case <-ctx.Done():
		return time.Since(start), ctx.Err()
	}
}

// Release returns a slot claimed by Acquire.
func (l *Limiter) Release() { <-l.slots }

// Waiting is the number of requests currently queued for a slot — the
// queue-depth gauge exposed on /metrics.
func (l *Limiter) Waiting() int64 { return l.waiting.Load() }
