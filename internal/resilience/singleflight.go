package resilience

import "sync"

// call is one in-flight computation shared by every caller that asked
// for its key while it ran.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Group coalesces duplicate concurrent work: Do with a key already in
// flight waits for the running computation and shares its result
// instead of recomputing. Between the server's content-addressed
// result cache and this group, N concurrent identical cache misses
// cost exactly one evaluation.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do runs fn under key, coalescing with an identical in-flight call:
// the first caller (the leader) executes fn, everyone who arrives
// before it finishes shares the same result. shared reports whether
// this caller got the leader's result rather than executing fn itself.
//
// fn runs on the leader's goroutine with the leader's context, so a
// leader that dies of its own deadline hands its context error to the
// followers; followers whose own context is still live should retry
// Do (the finished flight is forgotten, so a retry starts fresh).
func (g *Group) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		// A panicking fn must not strand the followers on c.done: hand
		// them the flight with err set, then let the panic propagate to
		// the leader's recovery middleware.
		if r := recover(); r != nil {
			c.err = ErrLeaderPanic
			g.finish(key, c)
			panic(r)
		}
	}()
	c.val, c.err = fn()
	g.finish(key, c)
	return c.val, c.err, false
}

// finish publishes the call's result and forgets the key so later
// callers start a fresh flight.
func (g *Group) finish(key string, c *call) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
}

// ErrLeaderPanic is handed to singleflight followers whose leader
// panicked: the leader's own request surfaces the panic through the
// recovery middleware; followers see this error and may retry.
var ErrLeaderPanic = &leaderPanicError{}

type leaderPanicError struct{}

func (*leaderPanicError) Error() string {
	return "resilience: coalesced computation panicked"
}
