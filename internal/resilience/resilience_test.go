package resilience

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToN(t *testing.T) {
	l := NewLimiter(2)
	ctx := context.Background()
	if err := l.Acquire(ctx, 0); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := l.Acquire(ctx, 0); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	// Saturated: a zero wait bound sheds immediately.
	if err := l.Acquire(ctx, 0); !errors.Is(err, ErrShed) {
		t.Fatalf("saturated acquire: %v, want ErrShed", err)
	}
	l.Release()
	if err := l.Acquire(ctx, 0); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLimiterShedsAfterBoundedWait(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := l.Acquire(context.Background(), 30*time.Millisecond)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if wait := time.Since(start); wait < 25*time.Millisecond || wait > 5*time.Second {
		t.Errorf("shed after %v, want ~30ms", wait)
	}
}

func TestLimiterWaitsWhenSlotFrees(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		l.Release()
	}()
	if err := l.Acquire(context.Background(), 5*time.Second); err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

func TestLimiterHonorsContext(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if err := l.Acquire(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLimiterWaitingGauge(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = l.Acquire(context.Background(), time.Second)
	}()
	deadline := time.Now().Add(time.Second)
	for l.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiting gauge never reached 1 (got %d)", l.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	l.Release()
	<-done
	if got := l.Waiting(); got != 0 {
		t.Errorf("waiting after drain = %d, want 0", got)
	}
}

// TestSingleflightCoalesces proves the headline property: N
// concurrent callers of one key run fn exactly once.
func TestSingleflightCoalesces(t *testing.T) {
	var g Group
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	results := make([]any, n)
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (any, error) {
				calls.Add(1)
				<-gate
				return "value", nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	// Wait until the leader is inside fn so every follower coalesces.
	deadline := time.Now().Add(time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let the followers pile up
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Errorf("%d shared results, want %d", got, n-1)
	}
	for i, v := range results {
		if v != "value" {
			t.Errorf("caller %d got %v", i, v)
		}
	}
}

func TestSingleflightSequentialCallsRunSeparately(t *testing.T) {
	var g Group
	var calls int
	for i := 0; i < 3; i++ {
		_, _, shared := g.Do("k", func() (any, error) { calls++; return nil, nil })
		if shared {
			t.Errorf("call %d unexpectedly shared", i)
		}
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (finished flights must be forgotten)", calls)
	}
}

func TestSingleflightLeaderPanicReleasesFollowers(t *testing.T) {
	var g Group
	started := make(chan struct{})
	follower := make(chan error, 1)
	go func() {
		<-started
		_, err, _ := g.Do("k", func() (any, error) { return "recomputed", nil })
		follower <- err
	}()
	func() {
		defer func() { _ = recover() }()
		g.Do("k", func() (any, error) {
			close(started)
			time.Sleep(20 * time.Millisecond) // let the follower join
			panic("boom")
		})
	}()
	select {
	case err := <-follower:
		// The follower either joined the doomed flight (ErrLeaderPanic)
		// or arrived after it was forgotten and computed itself (nil).
		if err != nil && !errors.Is(err, ErrLeaderPanic) {
			t.Fatalf("follower err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower stranded after leader panic")
	}
}

func TestRecoverWritesResponse(t *testing.T) {
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), func(w http.ResponseWriter, r *http.Request, v any) {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte("recovered"))
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError || rec.Body.String() != "recovered" {
		t.Fatalf("got %d %q", rec.Code, rec.Body.String())
	}
}

func TestDeadlinePassesFastResponses(t *testing.T) {
	h := Deadline(time.Second, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Test", "yes")
		w.WriteHeader(http.StatusTeapot)
		_, _ = w.Write([]byte("fast"))
	}), func(w http.ResponseWriter, r *http.Request) {
		t.Error("timeout fired for a fast handler")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot || rec.Body.String() != "fast" || rec.Header().Get("X-Test") != "yes" {
		t.Fatalf("buffered response mangled: %d %q %v", rec.Code, rec.Body.String(), rec.Header())
	}
}

func TestDeadlineTimesOutSlowHandler(t *testing.T) {
	observed := make(chan error, 1)
	h := Deadline(20*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		observed <- r.Context().Err()
		_, _ = w.Write([]byte("too late"))
	}), func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGatewayTimeout)
		_, _ = w.Write([]byte("deadline"))
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusGatewayTimeout || rec.Body.String() != "deadline" {
		t.Fatalf("got %d %q, want the timeout response", rec.Code, rec.Body.String())
	}
	select {
	case err := <-observed:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("handler context err = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never observed cancellation")
	}
}

func TestDeadlineZeroDisables(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if h := Deadline(0, inner, nil); h == nil {
		t.Fatal("nil handler")
	} else {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("code %d", rec.Code)
		}
	}
}

func TestDeadlineWriterReset(t *testing.T) {
	dw := newDeadlineWriter()
	dw.Header().Set("X-Partial", "1")
	dw.WriteHeader(http.StatusOK)
	_, _ = dw.Write([]byte("partial"))
	dw.Reset()
	dw.WriteHeader(http.StatusInternalServerError)
	_, _ = dw.Write([]byte("clean"))
	rec := httptest.NewRecorder()
	dw.flush(rec)
	if rec.Code != http.StatusInternalServerError || rec.Body.String() != "clean" || rec.Header().Get("X-Partial") != "" {
		t.Fatalf("reset failed: %d %q %v", rec.Code, rec.Body.String(), rec.Header())
	}
}
