package resilience

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"time"
)

// Recover converts a panic below it into a response written by
// onPanic — the connection stays open, the client gets an envelope —
// instead of net/http's dropped connection. onPanic receives the
// recovered value and a writer that may already carry a partial
// response (the buffered deadline writer makes header rewrites safe
// for compute endpoints).
func Recover(next http.Handler, onPanic func(w http.ResponseWriter, r *http.Request, v any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				onPanic(w, r, v)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// deadlineWriter buffers a handler's response so the Deadline
// middleware can decide, once the handler finishes or the deadline
// fires, whether to flush it or discard it in favor of the timeout
// envelope. Buffering also makes a post-panic header rewrite safe:
// nothing reaches the wire until the handler goroutine is done.
type deadlineWriter struct {
	header      http.Header
	code        int
	wroteHeader bool
	buf         bytes.Buffer
}

// maxPooledResponse bounds the buffer capacity a pooled deadline
// writer may retain (1 MiB — well above every envelope but the
// largest sweeps).
const maxPooledResponse = 1 << 20

// deadlineWriters pools the per-request buffers: every compute
// request passes through Deadline, so an unpooled writer would cost a
// header map and a response-sized buffer per request on the cache-hit
// floor. A writer is returned to the pool only when its handler
// goroutine has provably finished (the done path); a timed-out
// handler may still be writing to its buffer, so that writer is
// abandoned to the garbage collector instead.
var deadlineWriters = sync.Pool{New: func() any {
	return &deadlineWriter{header: make(http.Header), code: http.StatusOK}
}}

func newDeadlineWriter() *deadlineWriter {
	return deadlineWriters.Get().(*deadlineWriter)
}

// Header implements http.ResponseWriter.
func (dw *deadlineWriter) Header() http.Header { return dw.header }

// WriteHeader implements http.ResponseWriter; like the wire writer,
// only the first call sticks.
func (dw *deadlineWriter) WriteHeader(code int) {
	if !dw.wroteHeader {
		dw.code = code
		dw.wroteHeader = true
	}
}

// Write implements http.ResponseWriter.
func (dw *deadlineWriter) Write(p []byte) (int, error) {
	dw.wroteHeader = true
	return dw.buf.Write(p)
}

// Reset discards everything written so far — the panic handler uses
// it to replace a half-written response with a clean envelope.
func (dw *deadlineWriter) Reset() {
	for k := range dw.header {
		delete(dw.header, k)
	}
	dw.code = http.StatusOK
	dw.wroteHeader = false
	dw.buf.Reset()
}

// flush copies the buffered response to the wire writer.
func (dw *deadlineWriter) flush(w http.ResponseWriter) {
	h := w.Header()
	for k, vs := range dw.header {
		h[k] = vs
	}
	w.WriteHeader(dw.code)
	_, _ = w.Write(dw.buf.Bytes())
}

// Deadline bounds next's wall-clock time: the request context gets the
// deadline (so context-aware compute below actually stops working),
// and if the handler overruns it anyway the middleware writes the
// onTimeout response — a deadline_exceeded envelope in the server —
// while the handler's eventual output is discarded. next's writes go
// to a buffer, never the wire, so the late handler cannot race the
// timeout response.
//
// next must not panic: wrap it in Recover first (the handler runs on a
// separate goroutine here, so an escaping panic would kill the
// process, not the request).
func Deadline(d time.Duration, next http.Handler, onTimeout func(w http.ResponseWriter, r *http.Request)) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
		dw := newDeadlineWriter()
		done := make(chan struct{})
		go func() {
			defer close(done)
			next.ServeHTTP(dw, r)
		}()
		select {
		case <-done:
			dw.flush(w)
			// An occasional huge response (an admitted full-size
			// sweep) must not pin its buffer in the pool forever.
			if dw.buf.Cap() <= maxPooledResponse {
				dw.Reset()
				deadlineWriters.Put(dw)
			}
		case <-ctx.Done():
			if ctx.Err() == context.Canceled {
				// The client went away; there is no one to answer.
				return
			}
			onTimeout(w, r)
		}
	})
}
