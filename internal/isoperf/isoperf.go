// Package isoperf defines the iso-performance FPGA:ASIC testcases of
// the paper's Table 2, taken from Tan's system-level tradeoff study
// [12]: for each application domain, the silicon-area and power ratios
// an FPGA needs to match ASIC performance.
//
//	Domain    Area (norm. to ASIC)   Power (norm. to ASIC)
//	DNN       4                      3
//	ImgProc   7.42                   1.25
//	Crypto    1                      1
//
// Each domain carries a calibrated ASIC reference testcase (10 nm die
// area, peak power, duty cycle, design staffing) chosen so the paper's
// §4.2 crossover observations are reproduced; EXPERIMENTS.md documents
// the calibration. Pair() builds the core.Pair that the experiments
// sweep; Set() widens it with the domain's calibrated GPU and CPU
// iso-performance platforms for the four-way comparison.
package isoperf

import (
	"fmt"
	"sort"
	"sync"

	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
	"greenfpga/internal/yield"
)

// Domain is one iso-performance testcase. Beyond the paper's Table 2
// FPGA:ASIC ratios it carries GPU and CPU iso-performance ratios for
// the TOCS-style four-way comparison; a zero GPU or CPU ratio pair
// drops that platform from the domain's Set.
type Domain struct {
	// Name is the domain label (DNN, ImgProc, Crypto).
	Name string
	// AreaRatio is Table 2's FPGA:ASIC silicon ratio.
	AreaRatio float64
	// PowerRatio is Table 2's FPGA:ASIC power ratio.
	PowerRatio float64
	// ASICArea is the reference ASIC die area at 10 nm.
	ASICArea units.Area
	// ASICPeakPower is the reference ASIC TDP.
	ASICPeakPower units.Power
	// DutyCycle is the deployment utilization for both platforms.
	DutyCycle float64
	// DesignEngineers staffs the design project of either platform
	// (Eq. 4); the FPGA fabric's regularity makes its design effort
	// comparable to the domain ASIC's despite the larger die.
	DesignEngineers float64
	// GPUAreaRatio and GPUPowerRatio place a software-reusable GPU at
	// iso-performance with the domain ASIC (both zero: no GPU in the
	// domain set). GPUs carry less silicon than the FPGA fabric but
	// burn far more power per delivered operation.
	GPUAreaRatio  float64
	GPUPowerRatio float64
	// CPUAreaRatio and CPUPowerRatio place a general-purpose CPU at
	// iso-performance with the domain ASIC (both zero: no CPU in the
	// domain set).
	CPUAreaRatio  float64
	CPUPowerRatio float64
}

// The calibrated domain testcases. Areas, powers, duty cycles and
// staffing land the model on the paper's reported crossovers:
// DNN A2F at 6 applications and F2A at ~1.6 years; ImgProc A2F at 12
// applications and F2A at ~300 K units with ASICs always winning the
// lifetime sweep; Crypto favouring FPGAs from the second application.
// The GPU and CPU ratios extend each domain toward the follow-up
// four-way comparison: GPUs sit between the ASIC and the FPGA on
// silicon but pay the worst accelerator power at iso-performance
// (the paper's §1 rationale for preferring FPGAs over GPUs), and CPUs
// pay both a large general-purpose die and an order-of-magnitude
// power penalty on these accelerator workloads.
var domains = []Domain{
	{
		Name:            "DNN",
		AreaRatio:       4,
		PowerRatio:      3,
		ASICArea:        units.MM2(150),
		ASICPeakPower:   units.Watts(1.05),
		DutyCycle:       0.10,
		DesignEngineers: 369,
		GPUAreaRatio:    2.5,
		GPUPowerRatio:   5,
		CPUAreaRatio:    6,
		CPUPowerRatio:   15,
	},
	{
		Name:            "ImgProc",
		AreaRatio:       7.42,
		PowerRatio:      1.25,
		ASICArea:        units.MM2(81),
		ASICPeakPower:   units.Watts(2.4),
		DutyCycle:       0.30,
		DesignEngineers: 380,
		GPUAreaRatio:    3,
		GPUPowerRatio:   4,
		CPUAreaRatio:    5,
		CPUPowerRatio:   10,
	},
	{
		Name:            "Crypto",
		AreaRatio:       1,
		PowerRatio:      1,
		ASICArea:        units.MM2(150),
		ASICPeakPower:   units.Watts(1.0),
		DutyCycle:       0.20,
		DesignEngineers: 369,
		GPUAreaRatio:    2,
		GPUPowerRatio:   8,
		CPUAreaRatio:    3,
		CPUPowerRatio:   12,
	},
}

// Domains lists the testcases in Table 2 order (DNN, ImgProc, Crypto).
func Domains() []Domain {
	out := make([]Domain, len(domains))
	copy(out, domains)
	return out
}

// ByName looks up a domain case-sensitively.
func ByName(name string) (Domain, error) {
	for _, d := range domains {
		if d.Name == name {
			return d, nil
		}
	}
	names := make([]string, len(domains))
	for i, d := range domains {
		names[i] = d.Name
	}
	sort.Strings(names)
	return Domain{}, fmt.Errorf("isoperf: unknown domain %q (known: %v)", name, names)
}

// Validate checks the domain parameters.
func (d Domain) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("isoperf: unnamed domain")
	case d.AreaRatio < 1:
		return fmt.Errorf("isoperf: domain %s: area ratio %g must be >= 1", d.Name, d.AreaRatio)
	case d.PowerRatio <= 0:
		return fmt.Errorf("isoperf: domain %s: power ratio %g must be positive", d.Name, d.PowerRatio)
	case d.ASICArea.MM2() <= 0:
		return fmt.Errorf("isoperf: domain %s: ASIC area must be positive", d.Name)
	case d.ASICPeakPower.Watts() <= 0:
		return fmt.Errorf("isoperf: domain %s: ASIC power must be positive", d.Name)
	case d.DutyCycle <= 0 || d.DutyCycle > 1:
		return fmt.Errorf("isoperf: domain %s: duty cycle %g outside (0,1]", d.Name, d.DutyCycle)
	case d.DesignEngineers <= 0:
		return fmt.Errorf("isoperf: domain %s: design staffing must be positive", d.Name)
	}
	for _, ext := range []struct {
		kind        string
		area, power float64
	}{{"GPU", d.GPUAreaRatio, d.GPUPowerRatio}, {"CPU", d.CPUAreaRatio, d.CPUPowerRatio}} {
		if ext.area < 0 || ext.power < 0 {
			return fmt.Errorf("isoperf: domain %s: negative %s ratio", d.Name, ext.kind)
		}
		if (ext.area > 0) != (ext.power > 0) {
			return fmt.Errorf("isoperf: domain %s: %s area and power ratios must be set together",
				d.Name, ext.kind)
		}
	}
	return nil
}

// pairCache memoizes Pair for the calibrated domains only. A Domain
// is a small comparable struct, so the pair it maps to is a pure
// function of its fields; experiments re-resolve the same three
// calibrated domains for every artifact, and without the cache each
// resolution re-runs the node lookup and yield model. Modified
// domains (Monte-Carlo models drawing DutyCycle per sample, say)
// bypass the cache entirely — every key would be unique, so caching
// them would only buy mutex contention and garbage.
var pairCache struct {
	sync.Mutex
	m map[Domain]core.Pair
}

// calibrated reports whether d is one of the built-in testcases.
func (d Domain) calibrated() bool {
	for _, c := range domains {
		if d == c {
			return true
		}
	}
	return false
}

// Pair builds the iso-performance platform pair for the domain. The
// FPGA side carries AreaRatio times the ASIC silicon and PowerRatio
// times its power; both sides share the ASIC's die yield so the
// embodied ratio equals Table 2's silicon ratio exactly (the paper's
// reading: equivalent FPGA capacity comes from devices of comparable
// yield, not one giant low-yield die). Results for the calibrated
// domains are memoized, so repeated resolution across experiment
// artifacts is a map lookup.
func (d Domain) Pair() (core.Pair, error) {
	if !d.calibrated() {
		return d.buildPair()
	}
	pairCache.Lock()
	pr, ok := pairCache.m[d]
	pairCache.Unlock()
	if ok {
		return pr, nil
	}
	pr, err := d.buildPair()
	if err != nil {
		return core.Pair{}, err
	}
	pairCache.Lock()
	if pairCache.m == nil {
		pairCache.m = make(map[Domain]core.Pair)
	}
	pairCache.m[d] = pr
	pairCache.Unlock()
	return pr, nil
}

// buildPair constructs the pair without consulting the cache: the
// FPGA and ASIC members of the domain set.
func (d Domain) buildPair() (core.Pair, error) {
	set, err := d.buildSet()
	if err != nil {
		return core.Pair{}, err
	}
	return core.Pair{FPGA: set[0], ASIC: set[1]}, nil
}

// setCache memoizes Set for the calibrated domains, mirroring
// pairCache (see its comment for the modified-domain bypass).
var setCache struct {
	sync.Mutex
	m map[Domain]core.Set
}

// Set builds the domain's full iso-performance platform set, ordered
// FPGA, ASIC, then GPU and CPU where the domain calibrates them. The
// FPGA and ASIC members are identical to Pair()'s — Set is the
// N-platform generalization, not a different calibration. Results for
// the calibrated domains are memoized.
func (d Domain) Set() (core.Set, error) {
	if !d.calibrated() {
		return d.buildSet()
	}
	setCache.Lock()
	set, ok := setCache.m[d]
	setCache.Unlock()
	if ok {
		return append(core.Set(nil), set...), nil
	}
	set, err := d.buildSet()
	if err != nil {
		return nil, err
	}
	setCache.Lock()
	if setCache.m == nil {
		setCache.m = make(map[Domain]core.Set)
	}
	setCache.m[d] = set
	setCache.Unlock()
	return append(core.Set(nil), set...), nil
}

// buildSet constructs the platform set without consulting the cache.
func (d Domain) buildSet() (core.Set, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	node, err := technode.ByName("10nm")
	if err != nil {
		return nil, err
	}
	asicYield, err := (yield.Calculator{
		Model:          yield.Murphy,
		DefectDensity:  node.DefectDensity,
		CriticalLayers: node.CriticalLayers,
	}).DieYield(d.ASICArea)
	if err != nil {
		return nil, err
	}

	asicSpec := device.Spec{
		Name:      d.Name + "-ASIC",
		Kind:      device.ASIC,
		Node:      node,
		DieArea:   d.ASICArea,
		PeakPower: d.ASICPeakPower,
		BasedOn:   "iso-performance reference [12]",
	}
	fpgaArea := d.ASICArea.Scale(d.AreaRatio)
	fpgaSpec := device.Spec{
		Name:          d.Name + "-FPGA",
		Kind:          device.FPGA,
		Node:          node,
		DieArea:       fpgaArea,
		PeakPower:     d.ASICPeakPower.Scale(d.PowerRatio),
		CapacityGates: node.GatesForArea(fpgaArea) / d.AreaRatio,
		BasedOn:       "iso-performance equivalent [12]",
	}

	common := core.Platform{
		YieldOverride:   asicYield,
		DutyCycle:       d.DutyCycle,
		DesignEngineers: d.DesignEngineers,
		DesignDuration:  units.YearsOf(2),
	}
	asic := common
	asic.Spec = asicSpec
	fpga := common
	fpga.Spec = fpgaSpec
	set := core.Set{fpga, asic}

	for _, ext := range []struct {
		kind        device.Kind
		suffix      string
		area, power float64
	}{
		{device.GPU, "-GPU", d.GPUAreaRatio, d.GPUPowerRatio},
		{device.CPU, "-CPU", d.CPUAreaRatio, d.CPUPowerRatio},
	} {
		if ext.area == 0 {
			continue
		}
		p := common
		p.Spec = device.Spec{
			Name:      d.Name + ext.suffix,
			Kind:      ext.kind,
			Node:      node,
			DieArea:   d.ASICArea.Scale(ext.area),
			PeakPower: d.ASICPeakPower.Scale(ext.power),
			BasedOn:   "iso-performance extension (TOCS follow-up)",
		}
		set = append(set, p)
	}
	return set, nil
}

// ReferenceVolume is the N_vol = 1e6 units used throughout §4.2.
const ReferenceVolume = 1e6

// ReferenceLifetime is the T_i = 2 years used throughout §4.2.
func ReferenceLifetime() units.Years { return units.YearsOf(2) }

// ReferenceNumApps is the N_app = 5 used throughout §4.2.
const ReferenceNumApps = 5
