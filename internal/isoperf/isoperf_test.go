package isoperf

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"greenfpga/internal/core"
	"greenfpga/internal/units"
)

func TestTable2Ratios(t *testing.T) {
	want := map[string][2]float64{
		"DNN":     {4, 3},
		"ImgProc": {7.42, 1.25},
		"Crypto":  {1, 1},
	}
	ds := Domains()
	if len(ds) != 3 {
		t.Fatalf("domains: %d, want 3", len(ds))
	}
	for _, d := range ds {
		w, ok := want[d.Name]
		if !ok {
			t.Errorf("unexpected domain %s", d.Name)
			continue
		}
		if d.AreaRatio != w[0] || d.PowerRatio != w[1] {
			t.Errorf("%s ratios (%g, %g), want %v", d.Name, d.AreaRatio, d.PowerRatio, w)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s invalid: %v", d.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("DNN")
	if err != nil {
		t.Fatal(err)
	}
	if d.AreaRatio != 4 {
		t.Errorf("DNN area ratio %g", d.AreaRatio)
	}
	if _, err := ByName("Quantum"); err == nil {
		t.Error("unknown domain must error")
	}
}

func TestValidateRejectsBadDomains(t *testing.T) {
	base, _ := ByName("DNN")
	mutations := []func(*Domain){
		func(d *Domain) { d.Name = "" },
		func(d *Domain) { d.AreaRatio = 0.5 },
		func(d *Domain) { d.PowerRatio = 0 },
		func(d *Domain) { d.ASICArea = 0 },
		func(d *Domain) { d.ASICPeakPower = 0 },
		func(d *Domain) { d.DutyCycle = 0 },
		func(d *Domain) { d.DutyCycle = 1.5 },
		func(d *Domain) { d.DesignEngineers = 0 },
	}
	for i, mut := range mutations {
		d := base
		mut(&d)
		if d.Validate() == nil {
			t.Errorf("mutation %d should invalidate", i)
		}
		if _, err := d.Pair(); err == nil {
			t.Errorf("mutation %d: Pair should fail", i)
		}
	}
}

func TestPairConstruction(t *testing.T) {
	d, _ := ByName("DNN")
	pr, err := d.Pair()
	if err != nil {
		t.Fatal(err)
	}
	// FPGA silicon and power follow Table 2 exactly.
	if pr.FPGA.Spec.DieArea != pr.ASIC.Spec.DieArea.Scale(4) {
		t.Errorf("FPGA area %v, want 4x %v", pr.FPGA.Spec.DieArea, pr.ASIC.Spec.DieArea)
	}
	if pr.FPGA.Spec.PeakPower != pr.ASIC.Spec.PeakPower.Scale(3) {
		t.Errorf("FPGA power %v, want 3x %v", pr.FPGA.Spec.PeakPower, pr.ASIC.Spec.PeakPower)
	}
	// Both sides share the ASIC yield so embodied scales linearly.
	if pr.FPGA.YieldOverride != pr.ASIC.YieldOverride || pr.FPGA.YieldOverride <= 0 {
		t.Errorf("yield overrides: %g vs %g", pr.FPGA.YieldOverride, pr.ASIC.YieldOverride)
	}
	fdc, err := pr.FPGA.DeviceCost()
	if err != nil {
		t.Fatal(err)
	}
	adc, err := pr.ASIC.DeviceCost()
	if err != nil {
		t.Fatal(err)
	}
	gotRatio := fdc.Manufacturing.Total().Kilograms() / adc.Manufacturing.Total().Kilograms()
	if math.Abs(gotRatio-4) > 1e-9 {
		t.Errorf("embodied manufacturing ratio %g, want 4", gotRatio)
	}
	// Design CFP is shared (same staffing, fabric regularity).
	fd, _ := pr.FPGA.DesignCFP()
	ad, _ := pr.ASIC.DesignCFP()
	if fd != ad {
		t.Errorf("design CFP differs: %v vs %v", fd, ad)
	}
}

// TestPairCache asserts memoized pairs reproduce a fresh build, that
// cached copies are isolated from caller mutation, and that modified
// domains do not collide with calibrated ones.
func TestPairCache(t *testing.T) {
	d, _ := ByName("DNN")
	fresh, err := d.buildPair()
	if err != nil {
		t.Fatal(err)
	}
	cached, err := d.Pair()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, fresh) {
		t.Fatalf("cached pair diverges from fresh build:\ngot  %+v\nwant %+v", cached, fresh)
	}
	// Mutating a returned pair must not poison later lookups.
	cached.FPGA.DutyCycle = 0.99
	again, err := d.Pair()
	if err != nil {
		t.Fatal(err)
	}
	if again.FPGA.DutyCycle == 0.99 {
		t.Fatal("cache returned a mutated pair")
	}
	// A modified domain keys a different entry.
	dd := d
	dd.DutyCycle = 0.17
	variant, err := dd.Pair()
	if err != nil {
		t.Fatal(err)
	}
	if variant.FPGA.DutyCycle != 0.17 {
		t.Fatalf("variant domain duty %g, want 0.17", variant.FPGA.DutyCycle)
	}
}

// TestSetExtendsPair asserts the domain set is the pair plus the
// calibrated GPU and CPU platforms, with the shared members identical.
func TestSetExtendsPair(t *testing.T) {
	for _, d := range Domains() {
		pr, err := d.Pair()
		if err != nil {
			t.Fatal(err)
		}
		set, err := d.Set()
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != 4 {
			t.Fatalf("%s set has %d platforms, want 4 (FPGA, ASIC, GPU, CPU)", d.Name, len(set))
		}
		if !reflect.DeepEqual(set[0], pr.FPGA) || !reflect.DeepEqual(set[1], pr.ASIC) {
			t.Errorf("%s set FPGA/ASIC diverge from Pair()", d.Name)
		}
		gpu, cpu := set[2], set[3]
		if gpu.Spec.Kind != "gpu" || cpu.Spec.Kind != "cpu" {
			t.Fatalf("%s set kinds: %s, %s", d.Name, gpu.Spec.Kind, cpu.Spec.Kind)
		}
		if gpu.Spec.DieArea != d.ASICArea.Scale(d.GPUAreaRatio) ||
			gpu.Spec.PeakPower != d.ASICPeakPower.Scale(d.GPUPowerRatio) {
			t.Errorf("%s GPU spec off calibration: %+v", d.Name, gpu.Spec)
		}
		if gpu.YieldOverride != pr.ASIC.YieldOverride || gpu.DutyCycle != d.DutyCycle {
			t.Errorf("%s GPU must share the common deployment knobs", d.Name)
		}
	}
}

// TestSetCacheIsolation asserts memoized sets are isolated from caller
// mutation and that ratio-free domains drop the extension platforms.
func TestSetCacheIsolation(t *testing.T) {
	d, _ := ByName("DNN")
	set, err := d.Set()
	if err != nil {
		t.Fatal(err)
	}
	set[0].DutyCycle = 0.99
	again, err := d.Set()
	if err != nil {
		t.Fatal(err)
	}
	if again[0].DutyCycle == 0.99 {
		t.Fatal("set cache returned a mutated set")
	}
	dd := d
	dd.GPUAreaRatio, dd.GPUPowerRatio = 0, 0
	dd.CPUAreaRatio, dd.CPUPowerRatio = 0, 0
	bare, err := dd.Set()
	if err != nil {
		t.Fatal(err)
	}
	if len(bare) != 2 {
		t.Fatalf("ratio-free domain set has %d platforms, want 2", len(bare))
	}
	bad := d
	bad.GPUPowerRatio = 0
	if bad.Validate() == nil {
		t.Error("GPU area without power ratio must invalidate")
	}
}

// The headline §4.2 experiment-A result: DNN A2F after 6 applications,
// ImgProc after 12, Crypto after the first.
func TestPaperCrossoverNumApps(t *testing.T) {
	want := map[string]int{"DNN": 6, "ImgProc": 12, "Crypto": 2}
	for _, d := range Domains() {
		pr, err := d.Pair()
		if err != nil {
			t.Fatal(err)
		}
		n, found, err := pr.CrossoverNumApps(ReferenceLifetime(), ReferenceVolume, 0, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !found || n != want[d.Name] {
			t.Errorf("%s A2F at %d apps (found=%v), paper expects %d",
				d.Name, n, found, want[d.Name])
		}
	}
}

// The §4.2 experiment-B result: DNN F2A at ~1.6 years; ImgProc always
// ASIC; Crypto always FPGA across T in [0.2, 2.5].
func TestPaperCrossoverLifetime(t *testing.T) {
	dnn, _ := ByName("DNN")
	pr, err := dnn.Pair()
	if err != nil {
		t.Fatal(err)
	}
	tstar, found, err := pr.CrossoverLifetime(ReferenceNumApps, ReferenceVolume, 0,
		units.YearsOf(0.2), units.YearsOf(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if !found || math.Abs(tstar.Years()-1.6) > 0.1 {
		t.Errorf("DNN F2A at %v (found=%v), paper expects ~1.6 years", tstar, found)
	}

	check := func(name string, wantFPGAAlways bool) {
		d, _ := ByName(name)
		p, err := d.Pair()
		if err != nil {
			t.Fatal(err)
		}
		for _, ty := range []float64{0.2, 1.0, 2.5} {
			c, err := p.Compare(core.Uniform("b", ReferenceNumApps, units.YearsOf(ty), ReferenceVolume, 0))
			if err != nil {
				t.Fatal(err)
			}
			if wantFPGAAlways && c.Ratio >= 1 {
				t.Errorf("%s at T=%g: ratio %g, FPGA should always win", name, ty, c.Ratio)
			}
			if !wantFPGAAlways && c.Ratio <= 1 {
				t.Errorf("%s at T=%g: ratio %g, ASIC should always win", name, ty, c.Ratio)
			}
		}
	}
	check("Crypto", true)
	check("ImgProc", false)
}

// The §4.2 experiment-C result: ImgProc F2A at ~300K units; DNN F2A in
// the high-hundreds-of-thousands (the paper extrapolates "2M" beyond
// its own 1e6 sweep; see EXPERIMENTS.md); Crypto always FPGA.
func TestPaperCrossoverVolume(t *testing.T) {
	img, _ := ByName("ImgProc")
	pr, err := img.Pair()
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := pr.CrossoverVolume(ReferenceNumApps, ReferenceLifetime(), 0, 1e3, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if !found || math.Abs(v-300e3) > 15e3 {
		t.Errorf("ImgProc F2A at %g units (found=%v), paper expects ~300K", v, found)
	}

	dnn, _ := ByName("DNN")
	pd, _ := dnn.Pair()
	vd, found, err := pd.CrossoverVolume(ReferenceNumApps, ReferenceLifetime(), 0, 1e3, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if !found || vd < 4e5 || vd > 3e6 {
		t.Errorf("DNN F2A at %g units (found=%v), expected within [0.4M, 3M]", vd, found)
	}

	crypto, _ := ByName("Crypto")
	pc, _ := crypto.Pair()
	_, found, err = pc.CrossoverVolume(ReferenceNumApps, ReferenceLifetime(), 0, 1e3, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("Crypto should have no volume crossover (FPGA always wins)")
	}
}

// Property: totals are homogeneous of degree one in volume — scaling
// every application's volume by k scales the volume-proportional terms
// while the one-time design CFP stays fixed, so the total is strictly
// sub-linear but the hardware+operation share is exactly linear.
func TestQuickVolumeHomogeneity(t *testing.T) {
	dnn, err := ByName("DNN")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := dnn.Pair()
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawV float64, rawK uint8) bool {
		v := 100 + math.Mod(math.Abs(rawV), 1e6)
		k := 2 + float64(rawK%8)
		if math.IsNaN(v) {
			return true
		}
		small, err1 := core.Evaluate(pr.FPGA, core.Uniform("s", 3, units.YearsOf(1), v, 0))
		big, err2 := core.Evaluate(pr.FPGA, core.Uniform("b", 3, units.YearsOf(1), v*k, 0))
		if err1 != nil || err2 != nil {
			return false
		}
		// Volume-proportional part scales exactly.
		varSmall := small.Total() - small.Breakdown.Design - small.Breakdown.AppDevelopment
		varBig := big.Total() - big.Breakdown.Design - big.Breakdown.AppDevelopment
		if math.Abs(varBig.Kilograms()-k*varSmall.Kilograms()) > 1e-6*varBig.Kilograms() {
			return false
		}
		// The total is sub-linear (fixed design amortizes).
		return big.Total().Kilograms() < k*small.Total().Kilograms()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The Fig. 2 headline: one application leaves the FPGA well above the
// ASIC; ten applications put it ~20-25% below.
func TestPaperFig2Headline(t *testing.T) {
	dnn, _ := ByName("DNN")
	pr, err := dnn.Pair()
	if err != nil {
		t.Fatal(err)
	}
	one, err := pr.Compare(core.Uniform("one", 1, ReferenceLifetime(), ReferenceVolume, 0))
	if err != nil {
		t.Fatal(err)
	}
	ten, err := pr.Compare(core.Uniform("ten", 10, ReferenceLifetime(), ReferenceVolume, 0))
	if err != nil {
		t.Fatal(err)
	}
	if one.Ratio <= 1.5 {
		t.Errorf("single-app ratio %g, expected FPGA clearly above ASIC", one.Ratio)
	}
	saving := 1 - ten.Ratio
	if saving < 0.18 || saving > 0.30 {
		t.Errorf("ten-app saving %.1f%%, paper reports ~25%%", saving*100)
	}
}
