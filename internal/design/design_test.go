package design

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

func TestCarbonPerEmployeeYear(t *testing.T) {
	// 6 GWh over 2000 employees = 3 MWh/employee-year; on pure coal
	// that is 3000 * 0.82 = 2460 kg.
	org := Org{Name: "test", AnnualEnergy: units.GWh(6), Employees: 2000, Mix: grid.Mix{grid.Coal: 1}}
	c, err := org.CarbonPerEmployeeYear()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Kilograms()-2460) > 1e-9 {
		t.Errorf("C_emp %v, want 2460 kg", c)
	}
}

func TestDefaultOrgMagnitude(t *testing.T) {
	c, err := DefaultOrg.CarbonPerEmployeeYear()
	if err != nil {
		t.Fatal(err)
	}
	// Roughly one tonne per employee-year on a US grid.
	if c.Tonnes() < 0.5 || c.Tonnes() > 2 {
		t.Errorf("default C_emp %v outside 0.5-2 t band", c)
	}
}

func TestRenewableTargetCutsCEmp(t *testing.T) {
	org := DefaultOrg
	org.RenewableTarget = 0.9
	green, err := org.CarbonPerEmployeeYear()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := DefaultOrg.CarbonPerEmployeeYear()
	if green >= base {
		t.Errorf("renewable org should emit less: %v vs %v", green, base)
	}
}

func TestEq4(t *testing.T) {
	org := Org{Name: "x", AnnualEnergy: units.GWh(6), Employees: 2000, Mix: grid.Mix{grid.Coal: 1}}
	// C_emp = 2460 kg. 300 engineers x 2 years x ratio 1 => 1476 t.
	got, err := CFP(org, Project{Engineers: 300, Duration: units.YearsOf(2), Gates: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Tonnes()-1476) > 1e-9 {
		t.Errorf("C_des %v, want 1476 t", got)
	}
	// Gate-count ratio scales linearly: a chip twice the reference
	// complexity doubles the footprint.
	double, err := CFP(org, Project{
		Engineers: 300, Duration: units.YearsOf(2),
		Gates: 2e9, ReferenceGates: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(double.Tonnes()-2*1476) > 1e-9 {
		t.Errorf("ratio-2 C_des %v, want 2952 t", double)
	}
}

func TestProjectValidate(t *testing.T) {
	good := Project{Engineers: 10, Duration: units.YearsOf(1), Gates: 1e6}
	if err := good.Validate(); err != nil {
		t.Errorf("good project invalid: %v", err)
	}
	bad := []Project{
		{Engineers: 0, Duration: units.YearsOf(1)},
		{Engineers: 10, Duration: 0},
		{Engineers: 10, Duration: units.YearsOf(1), Gates: -1},
		{Engineers: 10, Duration: units.YearsOf(1), ReferenceGates: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestOrgErrors(t *testing.T) {
	if _, err := (Org{AnnualEnergy: units.GWh(1)}).CarbonPerEmployeeYear(); err == nil {
		t.Error("zero employees must error")
	}
	if _, err := (Org{Employees: 10}).CarbonPerEmployeeYear(); err == nil {
		t.Error("zero energy must error")
	}
	badMix := Org{AnnualEnergy: units.GWh(1), Employees: 10, Mix: grid.Mix{"diesel": 1}}
	if _, err := badMix.CarbonPerEmployeeYear(); err == nil {
		t.Error("bad mix must error")
	}
	p := Project{Engineers: 1, Duration: units.YearsOf(1)}
	if _, err := CFP(Org{}, p); err == nil {
		t.Error("bad org must propagate from CFP")
	}
	if _, err := CFP(DefaultOrg, Project{}); err == nil {
		t.Error("bad project must propagate from CFP")
	}
}

func TestLegacyGateModel(t *testing.T) {
	m := LegacyGateModel{}
	got, err := m.CFP(1e9)
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultLegacyCarbonPerMGate.Scale(1000)
	if math.Abs(got.Kilograms()-want.Kilograms()) > 1e-9 {
		t.Errorf("legacy CFP %v, want %v", got, want)
	}
	if _, err := m.CFP(-1); err == nil {
		t.Error("negative gates must error")
	}
	custom := LegacyGateModel{CarbonPerMGate: units.Kilograms(1)}
	got2, _ := custom.CFP(5e6)
	if math.Abs(got2.Kilograms()-5) > 1e-12 {
		t.Errorf("custom legacy CFP %v, want 5 kg", got2)
	}
}

func TestLegacyUnderestimatesModern(t *testing.T) {
	// The paper's observation: for a realistic staffed project the
	// legacy model sits far below the energy-based model.
	gates := 1.35e9 // ~150 mm^2 at 10 nm
	modern, err := CFP(DefaultOrg, Project{Engineers: 300, Duration: units.YearsOf(2), Gates: gates})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := LegacyGateModel{}.CFP(gates)
	if err != nil {
		t.Fatal(err)
	}
	if modern.Kilograms() < 5*legacy.Kilograms() {
		t.Errorf("expected legacy to underestimate by >5x: modern %v legacy %v", modern, legacy)
	}
}

// Property: Eq. 4 is linear in engineers, duration, and gate ratio.
func TestQuickEq4Linearity(t *testing.T) {
	org := Org{Name: "q", AnnualEnergy: units.GWh(5), Employees: 1500, Mix: grid.Mix{grid.Gas: 1}}
	f := func(engRaw, durRaw float64) bool {
		eng := 1 + math.Mod(math.Abs(engRaw), 1e4)
		dur := 0.1 + math.Mod(math.Abs(durRaw), 10)
		if math.IsNaN(eng + dur) {
			return true
		}
		a, err1 := CFP(org, Project{Engineers: eng, Duration: units.YearsOf(dur), Gates: 1e8})
		b, err2 := CFP(org, Project{Engineers: 2 * eng, Duration: units.YearsOf(dur), Gates: 1e8})
		c, err3 := CFP(org, Project{Engineers: eng, Duration: units.YearsOf(2 * dur), Gates: 1e8})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		okB := math.Abs(b.Kilograms()-2*a.Kilograms()) < 1e-9*math.Max(1, b.Kilograms())
		okC := math.Abs(c.Kilograms()-2*a.Kilograms()) < 1e-9*math.Max(1, c.Kilograms())
		return okB && okC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
