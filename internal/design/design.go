// Package design implements the design-phase carbon model that is
// contribution (2) of the GreenFPGA paper (§3.2(1), Eq. 4):
//
//	C_des = C_emp x N_emp,des x (N_gates / N_gates,des) x T_proj
//	C_emp = (E_des / N_emp) x C_src,des
//
// C_emp is the carbon footprint per employee-year of a design house,
// derived from the total electrical energy E_des reported in industry
// sustainability reports divided by headcount, times the carbon
// intensity of the house's energy sources. The project's share is the
// engineers assigned (N_emp,des) over the project duration (T_proj),
// scaled by the chip's complexity relative to the house's average
// product (N_gates / N_gates,des).
//
// The legacy gates-only model of ECO-CHIP [5] is provided as
// LegacyGateModel for the paper's comparison showing that prior art
// "grossly underestimated" design CFP.
package design

import (
	"fmt"

	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

// Org describes a design house, mirroring the sustainability-report
// inputs of Table 1 (E_des 2-7.3 GWh per site, 20K-160K employees
// company-wide, C_src,des 30-700 g/kWh).
type Org struct {
	// Name labels the profile in reports.
	Name string
	// AnnualEnergy is the electrical energy the organization uses per
	// year across design activities (E_des).
	AnnualEnergy units.Energy
	// Employees is the headcount that energy supports (N_emp).
	Employees int
	// Mix is the house's energy sourcing; nil means the USA preset.
	Mix grid.Mix
	// RenewableTarget optionally raises the renewable share of the mix.
	RenewableTarget float64
}

// DefaultOrg is a fabless design house drawing ~3 MWh per employee-year
// (workstations, EDA compute, HVAC) on a US grid — consistent with the
// Microchip/NVIDIA/AMD reports cited by the paper.
var DefaultOrg = Org{
	Name:         "fabless-default",
	AnnualEnergy: units.GWh(6),
	Employees:    2000,
}

// CarbonPerEmployeeYear computes C_emp.
func (o Org) CarbonPerEmployeeYear() (units.Mass, error) {
	if o.Employees <= 0 {
		return 0, fmt.Errorf("design: org %q has no employees", o.Name)
	}
	if o.AnnualEnergy <= 0 {
		return 0, fmt.Errorf("design: org %q has non-positive annual energy", o.Name)
	}
	mix := o.Mix
	if mix == nil {
		var err error
		mix, err = grid.ByRegion(grid.RegionUSA)
		if err != nil {
			return 0, err
		}
	}
	if o.RenewableTarget > 0 {
		var err error
		mix, err = mix.WithRenewables(o.RenewableTarget)
		if err != nil {
			return 0, err
		}
	}
	ci, err := mix.Intensity()
	if err != nil {
		return 0, err
	}
	perEmployee := o.AnnualEnergy.Scale(1 / float64(o.Employees))
	return perEmployee.Carbon(ci), nil
}

// Project describes one chip-design effort.
type Project struct {
	// Engineers is N_emp,des: average engineers on the project.
	Engineers float64
	// Duration is T_proj (Table 1: 1-3 years).
	Duration units.Years
	// Gates is the chip complexity N_gates in equivalent logic gates.
	Gates float64
	// ReferenceGates is N_gates,des, the house's average product
	// complexity; zero means Gates (ratio 1), i.e. the staffing level
	// already reflects this chip's complexity.
	ReferenceGates float64
}

// Validate checks the project description.
func (p Project) Validate() error {
	switch {
	case p.Engineers <= 0:
		return fmt.Errorf("design: project needs engineers, got %g", p.Engineers)
	case p.Duration.Years() <= 0:
		return fmt.Errorf("design: project duration must be positive, got %v", p.Duration)
	case p.Gates < 0:
		return fmt.Errorf("design: negative gate count %g", p.Gates)
	case p.ReferenceGates < 0:
		return fmt.Errorf("design: negative reference gate count %g", p.ReferenceGates)
	}
	return nil
}

// CFP evaluates Eq. 4 for a project at a design house.
func CFP(o Org, p Project) (units.Mass, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	cEmp, err := o.CarbonPerEmployeeYear()
	if err != nil {
		return 0, err
	}
	ratio := 1.0
	if p.ReferenceGates > 0 {
		ratio = p.Gates / p.ReferenceGates
	}
	return cEmp.Scale(p.Engineers * ratio * p.Duration.Years()), nil
}

// LegacyGateModel is the simplified prior-art design model of [5] that
// charges a fixed carbon per logic gate, independent of engineering
// effort or energy sourcing. The paper's §4.3 observes it grossly
// underestimates design CFP; see the design-ablation experiment.
type LegacyGateModel struct {
	// CarbonPerMGate is the charge per million equivalent gates.
	// Zero means DefaultLegacyCarbonPerMGate.
	CarbonPerMGate units.Mass
}

// DefaultLegacyCarbonPerMGate reproduces the magnitude of [5]: about
// 37 g CO2e per million gates, an order of magnitude below what the
// energy-based model attributes to a staffed multi-year project.
var DefaultLegacyCarbonPerMGate = units.Grams(37e3)

// CFP evaluates the legacy model for a chip of the given complexity.
func (l LegacyGateModel) CFP(gates float64) (units.Mass, error) {
	if gates < 0 {
		return 0, fmt.Errorf("design: negative gate count %g", gates)
	}
	per := l.CarbonPerMGate
	if per == 0 {
		per = DefaultLegacyCarbonPerMGate
	}
	return per.Scale(gates / 1e6), nil
}
