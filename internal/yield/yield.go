// Package yield implements die-yield models and wafer geometry. The
// manufacturing carbon model divides per-die emissions by yield: silicon
// discarded to defects still paid its fab carbon, so larger dice carry a
// superlinear embodied footprint.
//
// Four classical models are provided. All take the die area A and the
// process defect density D0 (defects per cm^2):
//
//	Poisson        Y = exp(-A*D0)
//	Murphy         Y = ((1 - exp(-A*D0)) / (A*D0))^2
//	Seeds          Y = 1 / (1 + A*D0)
//	Bose-Einstein  Y = 1 / (1 + A*D0)^n  (n critical layers)
//
// Murphy's model is the industry default and the package default.
package yield

import (
	"fmt"
	"math"

	"greenfpga/internal/units"
)

// Model identifies a yield model.
type Model string

// Supported yield models.
const (
	Poisson      Model = "poisson"
	Murphy       Model = "murphy"
	Seeds        Model = "seeds"
	BoseEinstein Model = "bose-einstein"
)

// DefaultCriticalLayers is the Bose-Einstein critical-layer count used
// when a node does not specify one.
const DefaultCriticalLayers = 10

// Calculator computes die yield for a given model and defect density.
type Calculator struct {
	// Model selects the yield formula; empty means Murphy.
	Model Model
	// DefectDensity is D0 in defects per cm^2.
	DefectDensity float64
	// CriticalLayers is the Bose-Einstein exponent; zero means
	// DefaultCriticalLayers.
	CriticalLayers int
}

// DieYield reports the fraction of good dice (0, 1] for a die of the
// given area. Zero-area dice yield 1 by convention. It returns an error
// for negative areas or defect densities.
func (c Calculator) DieYield(area units.Area) (float64, error) {
	if area.MM2() < 0 {
		return 0, fmt.Errorf("yield: negative die area %v", area)
	}
	if c.DefectDensity < 0 {
		return 0, fmt.Errorf("yield: negative defect density %g", c.DefectDensity)
	}
	ad := area.CM2() * c.DefectDensity
	if ad == 0 {
		return 1, nil
	}
	model := c.Model
	if model == "" {
		model = Murphy
	}
	switch model {
	case Poisson:
		return math.Exp(-ad), nil
	case Murphy:
		f := (1 - math.Exp(-ad)) / ad
		return f * f, nil
	case Seeds:
		return 1 / (1 + ad), nil
	case BoseEinstein:
		n := c.CriticalLayers
		if n <= 0 {
			n = DefaultCriticalLayers
		}
		return math.Pow(1+ad/float64(n), -float64(n)), nil
	default:
		return 0, fmt.Errorf("yield: unknown model %q", model)
	}
}

// Models lists the supported yield models.
func Models() []Model {
	return []Model{Poisson, Murphy, Seeds, BoseEinstein}
}

// Wafer describes a production wafer.
type Wafer struct {
	// Diameter of the wafer in millimetres (300 for modern fabs).
	DiameterMM float64
	// EdgeExclusionMM is the unusable rim of the wafer.
	EdgeExclusionMM float64
	// SawStreetMM is the scribe-line width added around each die.
	SawStreetMM float64
}

// Wafer300 is the standard 300 mm wafer.
var Wafer300 = Wafer{DiameterMM: 300, EdgeExclusionMM: 3, SawStreetMM: 0.1}

// DiesPerWafer estimates the number of whole dice that fit on the wafer
// using the standard gross-die formula
//
//	N = pi*(d/2)^2/S - pi*d/sqrt(2*S)
//
// with S the die area including saw streets and d the usable diameter.
func (w Wafer) DiesPerWafer(die units.Area) (int, error) {
	if die.MM2() <= 0 {
		return 0, fmt.Errorf("yield: die area must be positive, got %v", die)
	}
	if w.DiameterMM <= 0 {
		return 0, fmt.Errorf("yield: wafer diameter must be positive, got %g", w.DiameterMM)
	}
	usable := w.DiameterMM - 2*w.EdgeExclusionMM
	if usable <= 0 {
		return 0, fmt.Errorf("yield: edge exclusion consumes the wafer")
	}
	side := math.Sqrt(die.MM2())
	s := (side + w.SawStreetMM) * (side + w.SawStreetMM)
	n := math.Pi*usable*usable/4/s - math.Pi*usable/math.Sqrt(2*s)
	if n < 0 {
		n = 0
	}
	return int(n), nil
}

// GoodDiesPerWafer combines geometry with the yield model.
func (w Wafer) GoodDiesPerWafer(die units.Area, c Calculator) (float64, error) {
	gross, err := w.DiesPerWafer(die)
	if err != nil {
		return 0, err
	}
	y, err := c.DieYield(die)
	if err != nil {
		return 0, err
	}
	return float64(gross) * y, nil
}
