package yield

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/units"
)

func TestKnownYieldValues(t *testing.T) {
	// A*D0 = 1.5 cm^2 * 0.08 /cm^2 = 0.12.
	area := units.CM2(1.5)
	cases := []struct {
		model Model
		want  float64
	}{
		{Poisson, math.Exp(-0.12)},
		{Murphy, math.Pow((1-math.Exp(-0.12))/0.12, 2)},
		{Seeds, 1 / 1.12},
		{BoseEinstein, math.Pow(1+0.12/10, -10)},
	}
	for _, c := range cases {
		got, err := Calculator{Model: c.model, DefectDensity: 0.08}.DieYield(area)
		if err != nil {
			t.Fatalf("%s: %v", c.model, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s yield = %.6f, want %.6f", c.model, got, c.want)
		}
	}
}

func TestDefaultModelIsMurphy(t *testing.T) {
	area := units.CM2(2)
	def, err := Calculator{DefectDensity: 0.1}.DieYield(area)
	if err != nil {
		t.Fatal(err)
	}
	murphy, err := Calculator{Model: Murphy, DefectDensity: 0.1}.DieYield(area)
	if err != nil {
		t.Fatal(err)
	}
	if def != murphy {
		t.Errorf("default %g != murphy %g", def, murphy)
	}
}

func TestYieldEdgeCases(t *testing.T) {
	c := Calculator{Model: Murphy, DefectDensity: 0.1}
	if y, err := c.DieYield(units.MM2(0)); err != nil || y != 1 {
		t.Errorf("zero area: %g %v", y, err)
	}
	if y, err := (Calculator{Model: Poisson}).DieYield(units.CM2(5)); err != nil || y != 1 {
		t.Errorf("zero defect density: %g %v", y, err)
	}
	if _, err := c.DieYield(units.MM2(-1)); err == nil {
		t.Error("negative area must error")
	}
	if _, err := (Calculator{DefectDensity: -1}).DieYield(units.MM2(100)); err == nil {
		t.Error("negative defect density must error")
	}
	if _, err := (Calculator{Model: "magic", DefectDensity: 0.1}).DieYield(units.MM2(100)); err == nil {
		t.Error("unknown model must error")
	}
}

func TestBoseEinsteinLayers(t *testing.T) {
	area := units.CM2(3)
	few, _ := Calculator{Model: BoseEinstein, DefectDensity: 0.1, CriticalLayers: 2}.DieYield(area)
	many, _ := Calculator{Model: BoseEinstein, DefectDensity: 0.1, CriticalLayers: 30}.DieYield(area)
	poisson, _ := Calculator{Model: Poisson, DefectDensity: 0.1}.DieYield(area)
	// As n grows Bose-Einstein approaches Poisson from above.
	if !(few > many && many > poisson) {
		t.Errorf("ordering violated: few=%g many=%g poisson=%g", few, many, poisson)
	}
}

func TestModelOrdering(t *testing.T) {
	// For the same A*D0, Seeds is the most pessimistic and Murphy sits
	// between Poisson and Seeds.
	area := units.CM2(4)
	p, _ := Calculator{Model: Poisson, DefectDensity: 0.1}.DieYield(area)
	m, _ := Calculator{Model: Murphy, DefectDensity: 0.1}.DieYield(area)
	s, _ := Calculator{Model: Seeds, DefectDensity: 0.1}.DieYield(area)
	if !(p < m && m < s) {
		// Poisson is harshest for large A*D0; Seeds most forgiving.
		t.Errorf("expected poisson < murphy < seeds, got %g %g %g", p, m, s)
	}
}

func TestDiesPerWafer(t *testing.T) {
	// A 100 mm^2 die on a 300 mm wafer yields on the order of 600 gross
	// dice with the standard formula.
	n, err := Wafer300.DiesPerWafer(units.MM2(100))
	if err != nil {
		t.Fatal(err)
	}
	if n < 500 || n > 700 {
		t.Errorf("gross dice = %d, want ~600", n)
	}
	// Bigger dice, fewer dice.
	n2, _ := Wafer300.DiesPerWafer(units.MM2(600))
	if n2 >= n {
		t.Errorf("larger die must reduce count: %d vs %d", n2, n)
	}
	if _, err := Wafer300.DiesPerWafer(units.MM2(0)); err == nil {
		t.Error("zero die area must error")
	}
	if _, err := (Wafer{DiameterMM: 0}).DiesPerWafer(units.MM2(100)); err == nil {
		t.Error("zero wafer diameter must error")
	}
	if _, err := (Wafer{DiameterMM: 10, EdgeExclusionMM: 6}).DiesPerWafer(units.MM2(100)); err == nil {
		t.Error("edge exclusion consuming wafer must error")
	}
	// A die bigger than the wafer gives zero, not negative.
	n3, err := Wafer300.DiesPerWafer(units.CM2(700))
	if err != nil {
		t.Fatal(err)
	}
	if n3 != 0 {
		t.Errorf("oversized die: got %d, want 0", n3)
	}
}

func TestGoodDiesPerWafer(t *testing.T) {
	c := Calculator{Model: Murphy, DefectDensity: 0.1}
	good, err := Wafer300.GoodDiesPerWafer(units.MM2(100), c)
	if err != nil {
		t.Fatal(err)
	}
	gross, _ := Wafer300.DiesPerWafer(units.MM2(100))
	y, _ := c.DieYield(units.MM2(100))
	if math.Abs(good-float64(gross)*y) > 1e-9 {
		t.Errorf("good dice = %g, want %g", good, float64(gross)*y)
	}
	if _, err := Wafer300.GoodDiesPerWafer(units.MM2(-1), c); err == nil {
		t.Error("bad area must propagate error")
	}
	if _, err := Wafer300.GoodDiesPerWafer(units.MM2(100), Calculator{DefectDensity: -1}); err == nil {
		t.Error("bad calculator must propagate error")
	}
}

// Property: every model maps any die area to (0, 1], and yield is
// monotonically non-increasing in area.
func TestQuickYieldBoundsAndMonotone(t *testing.T) {
	f := func(a1, a2 float64, d0 float64, which uint8) bool {
		a1 = math.Mod(math.Abs(a1), 900) // mm^2, up to reticle scale
		a2 = math.Mod(math.Abs(a2), 900)
		d0 = math.Mod(math.Abs(d0), 0.5)
		if math.IsNaN(a1) || math.IsNaN(a2) || math.IsNaN(d0) {
			return true
		}
		models := Models()
		c := Calculator{Model: models[int(which)%len(models)], DefectDensity: d0}
		lo, hi := math.Min(a1, a2), math.Max(a1, a2)
		ylo, err1 := c.DieYield(units.MM2(lo))
		yhi, err2 := c.DieYield(units.MM2(hi))
		if err1 != nil || err2 != nil {
			return false
		}
		inBounds := ylo > 0 && ylo <= 1 && yhi > 0 && yhi <= 1
		return inBounds && yhi <= ylo+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total good silicon area per wafer never exceeds the usable
// wafer area.
func TestQuickGoodSiliconConservation(t *testing.T) {
	f := func(areaMM float64) bool {
		areaMM = 1 + math.Mod(math.Abs(areaMM), 800)
		if math.IsNaN(areaMM) {
			return true
		}
		c := Calculator{Model: Murphy, DefectDensity: 0.1}
		good, err := Wafer300.GoodDiesPerWafer(units.MM2(areaMM), c)
		if err != nil {
			return false
		}
		waferArea := math.Pi * 150 * 150 // mm^2
		return good*areaMM <= waferArea
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
