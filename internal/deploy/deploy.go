// Package deploy implements the deployment carbon models of GreenFPGA
// (paper §3.3): field operation and application development.
//
// Operational CFP per device-year is
//
//	C_op = C_src,use x E_use,  E_use = P_peak x duty x PUE x 8760 h
//
// Application-development CFP follows Eq. 7: each application charges
// front-end (RTL/HLS + verification) and back-end (synthesis, place &
// route) engineering-compute time, and each deployed device charges a
// configuration (bitstream load) energy:
//
//	T_app-dev = N_app x (T_FE + T_BE) + N_vol x T_config
//
// For ASICs T_FE and T_BE are zero — the paper folds ASIC development
// into the design-phase model (Eq. 4) — and T_config is zero because
// there is no field configuration step.
package deploy

import (
	"fmt"

	"greenfpga/internal/device"
	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

// OperationProfile describes how one device is used in the field.
type OperationProfile struct {
	// PeakPower is the device's peak (TDP) power draw.
	PeakPower units.Power
	// DutyCycle is the average utilization as a fraction of peak (0..1).
	DutyCycle float64
	// PUE is the facility power-usage-effectiveness multiplier; zero
	// means 1 (no facility overhead).
	PUE float64
	// UseMix is the grid powering the deployment; nil means the world
	// average preset (C_src,use).
	UseMix grid.Mix
}

// Validate checks the profile.
func (p OperationProfile) Validate() error {
	switch {
	case p.PeakPower.Watts() < 0:
		return fmt.Errorf("deploy: negative peak power %v", p.PeakPower)
	case p.DutyCycle < 0 || p.DutyCycle > 1:
		return fmt.Errorf("deploy: duty cycle %g outside [0,1]", p.DutyCycle)
	case p.PUE < 0 || (p.PUE > 0 && p.PUE < 1):
		return fmt.Errorf("deploy: PUE %g must be >= 1", p.PUE)
	}
	return nil
}

// intensity resolves the use-phase carbon intensity.
func (p OperationProfile) intensity() (units.CarbonIntensity, error) {
	mix := p.UseMix
	if mix == nil {
		var err error
		mix, err = grid.ByRegion(grid.RegionWorld)
		if err != nil {
			return 0, err
		}
	}
	return mix.Intensity()
}

// AnnualEnergy is E_use for one device over one year.
func (p OperationProfile) AnnualEnergy() (units.Energy, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	pue := p.PUE
	if pue == 0 {
		pue = 1
	}
	return p.PeakPower.Scale(p.DutyCycle * pue).Over(units.YearsOf(1)), nil
}

// AnnualCarbon is C_op for one device over one year.
func (p OperationProfile) AnnualCarbon() (units.Mass, error) {
	e, err := p.AnnualEnergy()
	if err != nil {
		return 0, err
	}
	ci, err := p.intensity()
	if err != nil {
		return 0, err
	}
	return e.Carbon(ci), nil
}

// AppDev describes the application-development effort of Eq. 7.
type AppDev struct {
	// FrontEnd is T_app,FE: RTL/HLS development plus verification,
	// charged once per application (Table 1: 1.5-2.5 months).
	FrontEnd units.Years
	// BackEnd is T_app,BE: synthesis, place and route, charged once per
	// application targeting one FPGA architecture (Table 1: 0.5-1.5
	// months).
	BackEnd units.Years
	// ComputePower is the development cluster draw (CPU servers running
	// simulation and implementation tools) during FE/BE time.
	ComputePower units.Power
	// ConfigTime is T_app,config: the per-device configuration
	// (bitstream load) time in the field.
	ConfigTime units.Years
	// ConfigPower is the host power drawn while configuring one device.
	ConfigPower units.Power
	// Mix powers development and configuration; nil means the USA
	// preset.
	Mix grid.Mix
}

// DefaultFPGAAppDev is a mid-band Table 1 profile: two months of front
// end, one month of back end, a 5 kW tool cluster, and a one-minute
// 30 W bitstream load per device.
var DefaultFPGAAppDev = AppDev{
	FrontEnd:     units.Months(2),
	BackEnd:      units.Months(1),
	ComputePower: units.Kilowatts(5),
	ConfigTime:   units.Hours(1.0 / 60.0),
	ConfigPower:  units.Watts(30),
}

// ASICAppDev is the ASIC profile: FE/BE are zero per the paper (already
// accounted in Eq. 4), and there is no field configuration.
var ASICAppDev = AppDev{}

// GPUAppDev is the software-port profile of a reusable GPU platform:
// half a month of porting and tuning on a 2 kW development cluster,
// with no hardware back end and no per-device configuration energy.
var GPUAppDev = AppDev{
	FrontEnd:     units.Months(0.5),
	ComputePower: units.Kilowatts(2),
}

// CPUAppDev is the software-port profile of a general-purpose CPU
// deployment: a quarter month of porting on a 1 kW cluster —
// the lightest bring-up of the platform classes.
var CPUAppDev = AppDev{
	FrontEnd:     units.Months(0.25),
	ComputePower: units.Kilowatts(1),
}

// kindProfiles refines the default profile per device kind — data,
// like the reuse-policy table itself, so adding a platform class is a
// map entry here, not a new branch.
var kindProfiles = map[device.Kind]AppDev{
	device.ASIC: ASICAppDev,
	device.FPGA: DefaultFPGAAppDev,
	device.GPU:  GPUAppDev,
	device.CPU:  CPUAppDev,
}

// classProfiles maps each app-dev class of a device reuse policy to
// its fallback profile, for kinds without a refined entry above.
var classProfiles = map[device.AppDevClass]AppDev{
	device.AppDevHardware: DefaultFPGAAppDev,
	device.AppDevSoftware: GPUAppDev,
	device.AppDevNone:     ASICAppDev,
}

// DefaultAppDev resolves the default application-development profile
// for a device kind: the kind's own profile when one is tabled,
// otherwise its reuse policy's app-dev class default.
func DefaultAppDev(k device.Kind) AppDev {
	if p, ok := kindProfiles[k]; ok {
		return p
	}
	return classProfiles[k.Policy().AppDev]
}

// Validate checks the profile.
func (a AppDev) Validate() error {
	switch {
	case a.FrontEnd.Years() < 0 || a.BackEnd.Years() < 0 || a.ConfigTime.Years() < 0:
		return fmt.Errorf("deploy: negative app-dev time")
	case a.ComputePower.Watts() < 0 || a.ConfigPower.Watts() < 0:
		return fmt.Errorf("deploy: negative app-dev power")
	}
	return nil
}

// intensity resolves the development-phase carbon intensity.
func (a AppDev) intensity() (units.CarbonIntensity, error) {
	mix := a.Mix
	if mix == nil {
		var err error
		mix, err = grid.ByRegion(grid.RegionUSA)
		if err != nil {
			return 0, err
		}
	}
	return mix.Intensity()
}

// PerApplication is the one-time development carbon of a single
// application: (T_FE + T_BE) x ComputePower x C_src.
func (a AppDev) PerApplication() (units.Mass, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	span := units.YearsOf(a.FrontEnd.Years() + a.BackEnd.Years())
	if span == 0 || a.ComputePower == 0 {
		return 0, nil
	}
	ci, err := a.intensity()
	if err != nil {
		return 0, err
	}
	return a.ComputePower.Over(span).Carbon(ci), nil
}

// PerConfiguration is the carbon of configuring one deployed device
// once: T_config x ConfigPower x C_src.
func (a AppDev) PerConfiguration() (units.Mass, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if a.ConfigTime == 0 || a.ConfigPower == 0 {
		return 0, nil
	}
	ci, err := a.intensity()
	if err != nil {
		return 0, err
	}
	return a.ConfigPower.Over(a.ConfigTime).Carbon(ci), nil
}
