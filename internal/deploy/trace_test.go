package deploy

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

func TestTraceValidate(t *testing.T) {
	if err := (Trace{0.1, 0.5, 1}).Validate(); err != nil {
		t.Errorf("good trace: %v", err)
	}
	if (Trace{}).Validate() == nil {
		t.Error("empty trace must error")
	}
	if (Trace{0.5, -0.1}).Validate() == nil {
		t.Error("negative utilization must error")
	}
	if (Trace{0.5, 1.1}).Validate() == nil {
		t.Error("utilization > 1 must error")
	}
}

func TestMeanUtilization(t *testing.T) {
	m, err := Trace{0, 0.5, 1}.MeanUtilization()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.5) > 1e-12 {
		t.Errorf("mean %g, want 0.5", m)
	}
	if _, err := (Trace{}).MeanUtilization(); err == nil {
		t.Error("empty trace must error")
	}
}

func TestFlatTrace(t *testing.T) {
	tr := Flat(24, 0.3)
	if len(tr) != 24 {
		t.Fatalf("len %d", len(tr))
	}
	m, _ := tr.MeanUtilization()
	if math.Abs(m-0.3) > 1e-12 {
		t.Errorf("flat mean %g", m)
	}
}

func TestDiurnalTrace(t *testing.T) {
	// Busy 9:00-17:00 (8 hours) at 0.9, idle at 0.1.
	tr := Diurnal(9, 8, 0.9, 0.1)
	if len(tr) != 24 {
		t.Fatalf("len %d", len(tr))
	}
	if tr[12] != 0.9 || tr[3] != 0.1 || tr[9] != 0.9 || tr[17] != 0.1 {
		t.Errorf("diurnal shape: %v", tr)
	}
	m, _ := tr.MeanUtilization()
	want := (8*0.9 + 16*0.1) / 24
	if math.Abs(m-want) > 1e-12 {
		t.Errorf("diurnal mean %g, want %g", m, want)
	}
	// Wrap-around busy window (22:00-02:00).
	wrap := Diurnal(22, 4, 1, 0)
	if wrap[23] != 1 || wrap[1] != 1 || wrap[4] != 0 {
		t.Errorf("wrapping window: %v", wrap)
	}
}

func TestTraceProfileMatchesFlatDuty(t *testing.T) {
	mix := grid.Mix{grid.Coal: 1}
	tp := TraceProfile{
		PeakPower: units.Watts(100),
		Trace:     Diurnal(8, 12, 0.8, 0.2),
		PUE:       1.2,
		UseMix:    mix,
	}
	mean, _ := tp.Trace.MeanUtilization()
	flat := OperationProfile{
		PeakPower: units.Watts(100), DutyCycle: mean, PUE: 1.2, UseMix: mix,
	}
	te, err := tp.AnnualEnergy()
	if err != nil {
		t.Fatal(err)
	}
	fe, _ := flat.AnnualEnergy()
	if math.Abs(te.KWh()-fe.KWh()) > 1e-9 {
		t.Errorf("trace energy %v != flat %v", te, fe)
	}
	tc, err := tp.AnnualCarbon()
	if err != nil {
		t.Fatal(err)
	}
	fc, _ := flat.AnnualCarbon()
	if math.Abs(tc.Kilograms()-fc.Kilograms()) > 1e-9 {
		t.Errorf("trace carbon %v != flat %v", tc, fc)
	}
}

func TestTraceProfileErrors(t *testing.T) {
	bad := TraceProfile{PeakPower: units.Watts(10), Trace: Trace{}}
	if _, err := bad.AnnualEnergy(); err == nil {
		t.Error("empty trace must error")
	}
	if _, err := bad.AnnualCarbon(); err == nil {
		t.Error("empty trace must error")
	}
	badPUE := TraceProfile{PeakPower: units.Watts(10), Trace: Flat(24, 0.5), PUE: 0.5}
	if _, err := badPUE.AnnualEnergy(); err == nil {
		t.Error("PUE < 1 must error")
	}
}

func TestAnnualCarbonOnGrid(t *testing.T) {
	base := units.GramsPerKWh(400)
	solar, err := grid.SolarDay(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	peak := units.Watts(1000)
	// The same 8 busy hours, scheduled into the solar window vs the
	// evening peak.
	midday := TraceProfile{PeakPower: peak, Trace: Diurnal(9, 8, 0.9, 0.1)}
	evening := TraceProfile{PeakPower: peak, Trace: Diurnal(16, 8, 0.9, 0.1)}

	cm, err := midday.AnnualCarbonOnGrid(solar)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := evening.AnnualCarbonOnGrid(solar)
	if err != nil {
		t.Fatal(err)
	}
	if cm >= ce {
		t.Errorf("midday scheduling %v should beat evening %v on a solar grid", cm, ce)
	}
	// On a flat grid the schedule is irrelevant and matches the
	// mean-based model exactly.
	flat := grid.FlatIntensity(base)
	cf1, err := midday.AnnualCarbonOnGrid(flat)
	if err != nil {
		t.Fatal(err)
	}
	cf2, _ := evening.AnnualCarbonOnGrid(flat)
	if math.Abs(cf1.Kilograms()-cf2.Kilograms()) > 1e-9 {
		t.Errorf("flat grid should be schedule-invariant: %v vs %v", cf1, cf2)
	}
	mean, _ := midday.Trace.MeanUtilization()
	want := peak.Scale(mean).Over(units.YearsOf(1)).Carbon(base)
	if math.Abs(cf1.Kilograms()-want.Kilograms()) > 1e-6*want.Kilograms() {
		t.Errorf("flat-grid trace carbon %v != mean model %v", cf1, want)
	}
}

func TestAnnualCarbonOnGridErrors(t *testing.T) {
	solar, _ := grid.SolarDay(units.GramsPerKWh(400), 0.3)
	if _, err := (TraceProfile{PeakPower: units.Watts(1), Trace: Trace{}}).AnnualCarbonOnGrid(solar); err == nil {
		t.Error("empty trace must error")
	}
	if _, err := (TraceProfile{PeakPower: units.Watts(1), Trace: Flat(12, 0.5)}).AnnualCarbonOnGrid(solar); err == nil {
		t.Error("non-24h trace must error")
	}
	if _, err := (TraceProfile{PeakPower: units.Watts(1), Trace: Flat(24, 0.5)}).AnnualCarbonOnGrid(grid.IntensityTrace{}); err == nil {
		t.Error("bad intensity trace must error")
	}
	if _, err := (TraceProfile{PeakPower: units.Watts(1), Trace: Flat(24, 0.5), PUE: 0.5}).AnnualCarbonOnGrid(solar); err == nil {
		t.Error("bad PUE must error")
	}
}

// Property: any valid trace's annual energy equals the flat profile at
// its mean utilization, and scales linearly with peak power.
func TestQuickTraceEquivalence(t *testing.T) {
	f := func(raw [24]uint8, powRaw float64) bool {
		tr := make(Trace, 24)
		for i, v := range raw {
			tr[i] = float64(v) / 255
		}
		pow := 1 + math.Mod(math.Abs(powRaw), 1e4)
		if math.IsNaN(pow) {
			return true
		}
		tp := TraceProfile{PeakPower: units.Watts(pow), Trace: tr}
		e1, err := tp.AnnualEnergy()
		if err != nil {
			return false
		}
		mean, _ := tr.MeanUtilization()
		want := pow / 1e3 * mean * units.HoursPerYear
		if math.Abs(e1.KWh()-want) > 1e-6*math.Max(1, want) {
			return false
		}
		tp2 := TraceProfile{PeakPower: units.Watts(2 * pow), Trace: tr}
		e2, err := tp2.AnnualEnergy()
		if err != nil {
			return false
		}
		return math.Abs(e2.KWh()-2*e1.KWh()) < 1e-6*math.Max(1, e2.KWh())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
