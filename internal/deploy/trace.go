package deploy

import (
	"fmt"

	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

// Trace is an hourly utilization profile: each entry is the fraction
// of peak power drawn during that hour (0..1). Traces refine the flat
// duty-cycle model for deployments with strong diurnal or weekly
// patterns; the operational model repeats the trace across the year.
type Trace []float64

// Validate checks the trace.
func (tr Trace) Validate() error {
	if len(tr) == 0 {
		return fmt.Errorf("deploy: empty trace")
	}
	for i, u := range tr {
		if u < 0 || u > 1 {
			return fmt.Errorf("deploy: trace hour %d utilization %g outside [0,1]", i, u)
		}
	}
	return nil
}

// MeanUtilization is the trace's average draw as a fraction of peak —
// the equivalent flat duty cycle.
func (tr Trace) MeanUtilization() (float64, error) {
	if err := tr.Validate(); err != nil {
		return 0, err
	}
	var sum float64
	for _, u := range tr {
		sum += u
	}
	return sum / float64(len(tr)), nil
}

// Flat builds a constant trace of n hours at the given utilization.
func Flat(n int, utilization float64) Trace {
	tr := make(Trace, n)
	for i := range tr {
		tr[i] = utilization
	}
	return tr
}

// Diurnal builds a 24-hour trace with busyLevel draw during
// [busyStart, busyStart+busyHours) and idleLevel elsewhere — the
// classic datacenter day/night pattern.
func Diurnal(busyStart, busyHours int, busyLevel, idleLevel float64) Trace {
	tr := make(Trace, 24)
	for h := range tr {
		tr[h] = idleLevel
		for b := 0; b < busyHours; b++ {
			if h == (busyStart+b)%24 {
				tr[h] = busyLevel
			}
		}
	}
	return tr
}

// TraceProfile is an operation profile driven by an hourly trace
// instead of a flat duty cycle.
type TraceProfile struct {
	// PeakPower is the device's peak draw.
	PeakPower units.Power
	// Trace is the repeating utilization profile.
	Trace Trace
	// PUE is the facility overhead; zero means 1.
	PUE float64
	// UseMix is the deployment grid; nil means the world preset.
	UseMix grid.Mix
}

// Flatten converts the trace profile into the equivalent flat
// OperationProfile (same annual energy), so trace-characterized
// deployments plug straight into core.Platform.DutyCycle.
func (tp TraceProfile) Flatten() (OperationProfile, error) {
	mean, err := tp.Trace.MeanUtilization()
	if err != nil {
		return OperationProfile{}, err
	}
	op := OperationProfile{
		PeakPower: tp.PeakPower,
		DutyCycle: mean,
		PUE:       tp.PUE,
		UseMix:    tp.UseMix,
	}
	if err := op.Validate(); err != nil {
		return OperationProfile{}, err
	}
	return op, nil
}

// AnnualEnergy integrates the trace over an 8760-hour year.
func (tp TraceProfile) AnnualEnergy() (units.Energy, error) {
	op, err := tp.Flatten()
	if err != nil {
		return 0, err
	}
	return op.AnnualEnergy()
}

// AnnualCarbon is the trace-driven C_op for one device-year.
func (tp TraceProfile) AnnualCarbon() (units.Mass, error) {
	op, err := tp.Flatten()
	if err != nil {
		return 0, err
	}
	return op.AnnualCarbon()
}

// AnnualCarbonOnGrid integrates utilization against an hourly grid
// carbon-intensity trace: emissions follow the product of the two
// curves, so running the busy hours inside the grid's clean window
// (carbon-aware scheduling) cuts carbon that the flat duty-cycle model
// cannot see. The utilization trace must be 24 hours to align with the
// grid day.
func (tp TraceProfile) AnnualCarbonOnGrid(it grid.IntensityTrace) (units.Mass, error) {
	if err := tp.Trace.Validate(); err != nil {
		return 0, err
	}
	if len(tp.Trace) != 24 {
		return 0, fmt.Errorf("deploy: grid-aware accounting needs a 24-hour utilization trace, got %d",
			len(tp.Trace))
	}
	if err := it.Validate(); err != nil {
		return 0, err
	}
	pue := tp.PUE
	if pue == 0 {
		pue = 1
	}
	if pue < 1 {
		return 0, fmt.Errorf("deploy: PUE %g must be >= 1", pue)
	}
	if tp.PeakPower.Watts() < 0 {
		return 0, fmt.Errorf("deploy: negative peak power %v", tp.PeakPower)
	}
	const daysPerYear = units.HoursPerYear / 24
	var kg float64
	for h, u := range tp.Trace {
		hourly := tp.PeakPower.Scale(u * pue).OverHours(1)
		kg += hourly.Carbon(it[h]).Kilograms()
	}
	return units.Kilograms(kg * daysPerYear), nil
}
