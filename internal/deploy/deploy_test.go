package deploy

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

func TestAnnualEnergyAndCarbon(t *testing.T) {
	// 100 W at 50% duty = 438 kWh/yr; on coal that is 359.16 kg.
	p := OperationProfile{
		PeakPower: units.Watts(100),
		DutyCycle: 0.5,
		UseMix:    grid.Mix{grid.Coal: 1},
	}
	e, err := p.AnnualEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.KWh()-438) > 1e-9 {
		t.Errorf("annual energy %v, want 438 kWh", e)
	}
	c, err := p.AnnualCarbon()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Kilograms()-438*0.820) > 1e-9 {
		t.Errorf("annual carbon %v, want %g kg", c, 438*0.820)
	}
}

func TestPUE(t *testing.T) {
	base := OperationProfile{PeakPower: units.Watts(100), DutyCycle: 0.5}
	dc := base
	dc.PUE = 1.5
	eBase, _ := base.AnnualEnergy()
	eDC, err := dc.AnnualEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eDC.KWh()-1.5*eBase.KWh()) > 1e-9 {
		t.Errorf("PUE scaling: %v vs %v", eDC, eBase)
	}
}

func TestOperationValidate(t *testing.T) {
	bad := []OperationProfile{
		{PeakPower: units.Watts(-1), DutyCycle: 0.5},
		{PeakPower: units.Watts(10), DutyCycle: -0.1},
		{PeakPower: units.Watts(10), DutyCycle: 1.1},
		{PeakPower: units.Watts(10), DutyCycle: 0.5, PUE: 0.8},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
		if _, err := p.AnnualEnergy(); err == nil {
			t.Errorf("case %d: AnnualEnergy should fail", i)
		}
		if _, err := p.AnnualCarbon(); err == nil {
			t.Errorf("case %d: AnnualCarbon should fail", i)
		}
	}
	idle := OperationProfile{PeakPower: units.Watts(10)}
	if e, err := idle.AnnualEnergy(); err != nil || e != 0 {
		t.Errorf("zero duty cycle: %v %v", e, err)
	}
	badMix := OperationProfile{PeakPower: units.Watts(10), DutyCycle: 0.5, UseMix: grid.Mix{"diesel": 1}}
	if _, err := badMix.AnnualCarbon(); err == nil {
		t.Error("bad mix must error")
	}
}

func TestAppDevPerApplication(t *testing.T) {
	// 3 months at 5 kW on pure coal:
	// 0.25 yr * 8760 h * 5 kW = 10950 kWh => 8979 kg.
	a := AppDev{
		FrontEnd:     units.Months(2),
		BackEnd:      units.Months(1),
		ComputePower: units.Kilowatts(5),
		Mix:          grid.Mix{grid.Coal: 1},
	}
	c, err := a.PerApplication()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Kilograms()-10950*0.820) > 1e-6 {
		t.Errorf("per-application %v, want %g kg", c, 10950*0.820)
	}
}

func TestAppDevPerConfiguration(t *testing.T) {
	// One minute at 30 W on pure coal: 0.0005 kWh => 0.41 g.
	a := AppDev{
		ConfigTime:  units.Hours(1.0 / 60.0),
		ConfigPower: units.Watts(30),
		Mix:         grid.Mix{grid.Coal: 1},
	}
	c, err := a.PerConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Grams()-0.41) > 1e-6 {
		t.Errorf("per-configuration %v, want 0.41 g", c)
	}
}

func TestASICAppDevIsZero(t *testing.T) {
	app, err := ASICAppDev.PerApplication()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ASICAppDev.PerConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	if app != 0 || cfg != 0 {
		t.Errorf("ASIC app-dev must be zero: %v %v", app, cfg)
	}
}

func TestDefaultFPGAAppDevIsMinimal(t *testing.T) {
	// The paper observes app-dev CFP is "minimal": single-digit tonnes
	// per application.
	c, err := DefaultFPGAAppDev.PerApplication()
	if err != nil {
		t.Fatal(err)
	}
	if c.Tonnes() < 0.5 || c.Tonnes() > 10 {
		t.Errorf("default per-application %v outside 0.5-10 t band", c)
	}
	cfg, err := DefaultFPGAAppDev.PerConfiguration()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Grams() <= 0 || cfg.Grams() > 10 {
		t.Errorf("default per-configuration %v outside (0,10] g band", cfg)
	}
}

func TestAppDevValidate(t *testing.T) {
	bad := []AppDev{
		{FrontEnd: units.YearsOf(-1)},
		{ComputePower: units.Watts(-1)},
		{ConfigTime: units.YearsOf(-1)},
		{ConfigPower: units.Watts(-1)},
	}
	for i, a := range bad {
		if a.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
		if _, err := a.PerApplication(); err == nil {
			t.Errorf("case %d: PerApplication should fail", i)
		}
		if _, err := a.PerConfiguration(); err == nil {
			t.Errorf("case %d: PerConfiguration should fail", i)
		}
	}
}

// Property: operational carbon is linear in duty cycle and power.
func TestQuickOperationalLinearity(t *testing.T) {
	f := func(powRaw, dutyRaw float64) bool {
		pow := math.Mod(math.Abs(powRaw), 1e4)
		duty := math.Mod(math.Abs(dutyRaw), 0.5)
		if math.IsNaN(pow + duty) {
			return true
		}
		a, err1 := (OperationProfile{PeakPower: units.Watts(pow), DutyCycle: duty}).AnnualCarbon()
		b, err2 := (OperationProfile{PeakPower: units.Watts(pow), DutyCycle: 2 * duty}).AnnualCarbon()
		c, err3 := (OperationProfile{PeakPower: units.Watts(2 * pow), DutyCycle: duty}).AnnualCarbon()
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		okB := math.Abs(b.Kilograms()-2*a.Kilograms()) < 1e-9*math.Max(1, b.Kilograms())
		okC := math.Abs(c.Kilograms()-2*a.Kilograms()) < 1e-9*math.Max(1, c.Kilograms())
		return okB && okC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
