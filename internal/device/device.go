// Package device describes the chips GreenFPGA evaluates — ASIC
// accelerators, FPGAs, and the GPU/CPU platform classes of the
// follow-up four-way comparison — with the capacity math behind
// N_FPGA in Eq. 3 (N_FPGA = ceil(appsize / FPGAcapacity), both in
// equivalent logic gates) and the industry testcase catalog of
// Table 3.
//
// Which total-CFP equation applies to a device is not hardwired per
// kind: every Kind carries a ReusePolicy that states whether embodied
// carbon is paid once and amortized across applications (Eq. 2) or
// re-paid per application (Eq. 1), whether deployments gang devices by
// gate capacity, and which application-development class the platform
// defaults to. The scenario engine consults the policy, so adding a
// platform class is a data change here, not new control flow there.
package device

import (
	"fmt"
	"math"
	"sort"

	"greenfpga/internal/technode"
	"greenfpga/internal/units"
)

// Kind distinguishes the platform classes.
type Kind string

// Device kinds.
const (
	// ASIC devices serve exactly one application and are remanufactured
	// for each new one (Eq. 1).
	ASIC Kind = "asic"
	// FPGA devices are reconfigured across applications and amortize
	// their embodied carbon (Eq. 2).
	FPGA Kind = "fpga"
	// GPU devices are reprogrammed in software across applications
	// (Eq. 2 accounting) but burn more power at iso-performance and
	// need no hardware-level application development.
	GPU Kind = "gpu"
	// CPU devices are general-purpose hosts: reusable like GPUs, with
	// the lightest per-application bring-up and the worst
	// iso-performance power.
	CPU Kind = "cpu"
)

// AppDevClass selects a platform's default application-development
// profile (Eq. 7). The deploy package maps each class to a concrete
// profile; platforms can still override per deployment.
type AppDevClass string

// Application-development classes.
const (
	// AppDevHardware is the FPGA flow: RTL/HLS front end, synthesis and
	// place-and-route back end, per-device bitstream configuration.
	AppDevHardware AppDevClass = "hardware"
	// AppDevSoftware is the GPU/CPU flow: a software port on a
	// development cluster, no per-device configuration energy.
	AppDevSoftware AppDevClass = "software"
	// AppDevNone folds application development into the design phase
	// (the paper's ASIC accounting: Eq. 7 with T_FE = T_BE = 0).
	AppDevNone AppDevClass = "none"
)

// ReusePolicy states how a platform class amortizes its lifecycle
// carbon — the property that used to be scattered as Kind == FPGA
// checks across the scenario engine.
type ReusePolicy struct {
	// Reusable selects the accounting equation: true means the
	// embodied carbon is paid once and reused across applications
	// (Eq. 2); false means it is re-paid per application (Eq. 1).
	Reusable bool
	// CapacityGanged means applications are sized in equivalent gates
	// and deployments gang ceil(appsize/CapacityGates) devices
	// (Eq. 3's N_FPGA). Specs of such kinds must declare a positive
	// CapacityGates; other kinds must leave it zero.
	CapacityGanged bool
	// AppDev is the default application-development class.
	AppDev AppDevClass
}

// policies maps each kind to its reuse policy.
var policies = map[Kind]ReusePolicy{
	ASIC: {Reusable: false, CapacityGanged: false, AppDev: AppDevNone},
	FPGA: {Reusable: true, CapacityGanged: true, AppDev: AppDevHardware},
	GPU:  {Reusable: true, CapacityGanged: false, AppDev: AppDevSoftware},
	CPU:  {Reusable: true, CapacityGanged: false, AppDev: AppDevSoftware},
}

// Kinds lists the known platform classes in a stable order.
func Kinds() []Kind { return []Kind{ASIC, FPGA, GPU, CPU} }

// Policy returns the kind's reuse policy. Unknown kinds return the
// zero policy; Validate rejects them.
func (k Kind) Policy() ReusePolicy { return policies[k] }

// Validate checks that the kind is a known platform class.
func (k Kind) Validate() error {
	if _, ok := policies[k]; !ok {
		return fmt.Errorf("device: unknown kind %q (known: asic, fpga, gpu, cpu)", k)
	}
	return nil
}

// Spec describes one device.
type Spec struct {
	// Name identifies the device in reports.
	Name string
	// Kind is the platform class (asic, fpga, gpu, cpu).
	Kind Kind
	// Node is the manufacturing technology.
	Node technode.Node
	// DieArea is the silicon area.
	DieArea units.Area
	// PeakPower is the TDP used by the operational model.
	PeakPower units.Power
	// CapacityGates is the usable application capacity in equivalent
	// logic gates, required for capacity-ganged kinds (FPGAs). FPGA
	// fabric spends silicon on configurability, so capacity is well
	// below the die's raw gate count.
	CapacityGates float64
	// BasedOn records the public device the testcase approximates.
	BasedOn string
}

// Validate checks the spec. Capacity semantics follow the kind's reuse
// policy: capacity-ganged kinds need a positive CapacityGates, every
// other kind must leave it zero (their applications always fit one
// device per deployment unit).
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("device: unnamed spec")
	}
	if err := s.Kind.Validate(); err != nil {
		return fmt.Errorf("device %s: %v", s.Name, err)
	}
	if err := s.Node.Validate(); err != nil {
		return fmt.Errorf("device %s: %v", s.Name, err)
	}
	if s.DieArea.MM2() <= 0 {
		return fmt.Errorf("device %s: die area must be positive, got %v", s.Name, s.DieArea)
	}
	if s.PeakPower.Watts() <= 0 {
		return fmt.Errorf("device %s: peak power must be positive, got %v", s.Name, s.PeakPower)
	}
	pol := s.Kind.Policy()
	if pol.CapacityGanged && s.CapacityGates <= 0 {
		return fmt.Errorf("device %s: %s needs a positive gate capacity", s.Name, s.Kind)
	}
	if !pol.CapacityGanged && s.CapacityGates != 0 {
		return fmt.Errorf("device %s: %s has no gate-capacity ganging", s.Name, s.Kind)
	}
	return nil
}

// SiliconGates is the raw equivalent-gate count of the die at its node,
// the N_gates input of the design model (Eq. 4).
func (s Spec) SiliconGates() float64 {
	return s.Node.GatesForArea(s.DieArea)
}

// Required computes the devices ganged per deployment unit for an
// application of the given size (Eq. 3's N_FPGA). Kinds without
// capacity ganging always require exactly one device (the paper's
// footnote for ASICs; GPUs and CPUs scale in software), as do
// applications of unspecified (zero) size.
func (s Spec) Required(appGates float64) (int, error) {
	if appGates < 0 {
		return 0, fmt.Errorf("device %s: negative application size %g", s.Name, appGates)
	}
	if !s.Kind.Policy().CapacityGanged || appGates == 0 {
		return 1, nil
	}
	if s.CapacityGates <= 0 {
		return 0, fmt.Errorf("device %s: %s capacity not set", s.Name, s.Kind)
	}
	return int(math.Ceil(appGates / s.CapacityGates)), nil
}

// mustNode resolves a table node at init time.
func mustNode(name string) technode.Node {
	n, err := technode.ByName(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Industry testcases of Table 3, extended with one GPU and one CPU
// reference for the four-way platform comparison. Areas, powers and
// nodes are the table's values (public datasheet figures for the
// extension entries); capacities are plausible equivalent-gate figures
// for the referenced device families.
var catalog = []Spec{
	{
		Name:      "IndustryASIC1",
		Kind:      ASIC,
		Node:      mustNode("12nm"),
		DieArea:   units.MM2(340),
		PeakPower: units.Watts(70),
		BasedOn:   "Moffett Antoum deep-sparse inference SoC",
	},
	{
		Name:      "IndustryASIC2",
		Kind:      ASIC,
		Node:      mustNode("7nm"),
		DieArea:   units.MM2(600),
		PeakPower: units.Watts(192),
		BasedOn:   "Google TPU v4",
	},
	{
		Name:          "IndustryFPGA1",
		Kind:          FPGA,
		Node:          mustNode("14nm"),
		DieArea:       units.MM2(380),
		PeakPower:     units.Watts(160),
		CapacityGates: 40e6,
		BasedOn:       "Intel Agilex 7 I-Series",
	},
	{
		Name:          "IndustryFPGA2",
		Kind:          FPGA,
		Node:          mustNode("10nm"),
		DieArea:       units.MM2(550),
		PeakPower:     units.Watts(220),
		CapacityGates: 30e6,
		BasedOn:       "Intel Stratix 10",
	},
	{
		Name:      "IndustryGPU1",
		Kind:      GPU,
		Node:      mustNode("7nm"),
		DieArea:   units.MM2(826),
		PeakPower: units.Watts(400),
		BasedOn:   "NVIDIA A100 (GA100)",
	},
	{
		Name:      "IndustryCPU1",
		Kind:      CPU,
		Node:      mustNode("10nm"),
		DieArea:   units.MM2(660),
		PeakPower: units.Watts(270),
		BasedOn:   "Intel Xeon Platinum 8380",
	},
}

// Catalog lists the industry testcases in Table 3 order (the GPU and
// CPU extension entries follow the paper's four).
func Catalog() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	return out
}

// ByName looks up a catalog device.
func ByName(name string) (Spec, error) {
	for _, s := range catalog {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, len(catalog))
	for i, s := range catalog {
		names[i] = s.Name
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("device: unknown device %q (known: %v)", name, names)
}
