// Package device describes the chips GreenFPGA evaluates: ASIC
// accelerators and FPGAs, with the capacity math behind N_FPGA in
// Eq. 3 (N_FPGA = ceil(appsize / FPGAcapacity), both in equivalent
// logic gates) and the industry testcase catalog of Table 3.
package device

import (
	"fmt"
	"math"
	"sort"

	"greenfpga/internal/technode"
	"greenfpga/internal/units"
)

// Kind distinguishes fixed-function from reconfigurable silicon.
type Kind string

// Device kinds.
const (
	// ASIC devices serve exactly one application and are remanufactured
	// for each new one (Eq. 1).
	ASIC Kind = "asic"
	// FPGA devices are reconfigured across applications and amortize
	// their embodied carbon (Eq. 2).
	FPGA Kind = "fpga"
)

// Spec describes one device.
type Spec struct {
	// Name identifies the device in reports.
	Name string
	// Kind is ASIC or FPGA.
	Kind Kind
	// Node is the manufacturing technology.
	Node technode.Node
	// DieArea is the silicon area.
	DieArea units.Area
	// PeakPower is the TDP used by the operational model.
	PeakPower units.Power
	// CapacityGates is the usable application capacity in equivalent
	// logic gates (FPGAs only). FPGA fabric spends silicon on
	// configurability, so capacity is well below the die's raw gate
	// count.
	CapacityGates float64
	// BasedOn records the public device the testcase approximates.
	BasedOn string
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("device: unnamed spec")
	}
	if s.Kind != ASIC && s.Kind != FPGA {
		return fmt.Errorf("device %s: unknown kind %q", s.Name, s.Kind)
	}
	if err := s.Node.Validate(); err != nil {
		return fmt.Errorf("device %s: %v", s.Name, err)
	}
	if s.DieArea.MM2() <= 0 {
		return fmt.Errorf("device %s: die area must be positive, got %v", s.Name, s.DieArea)
	}
	if s.PeakPower.Watts() <= 0 {
		return fmt.Errorf("device %s: peak power must be positive, got %v", s.Name, s.PeakPower)
	}
	if s.Kind == FPGA && s.CapacityGates <= 0 {
		return fmt.Errorf("device %s: FPGA needs a positive gate capacity", s.Name)
	}
	if s.Kind == ASIC && s.CapacityGates != 0 {
		return fmt.Errorf("device %s: ASICs have no reconfigurable capacity", s.Name)
	}
	return nil
}

// SiliconGates is the raw equivalent-gate count of the die at its node,
// the N_gates input of the design model (Eq. 4).
func (s Spec) SiliconGates() float64 {
	return s.Node.GatesForArea(s.DieArea)
}

// Required computes N_FPGA for an application of the given size
// (Eq. 3): the number of devices ganged to reach iso-performance.
// ASICs always require exactly one device (the paper's footnote), as do
// applications of unspecified (zero) size.
func (s Spec) Required(appGates float64) (int, error) {
	if appGates < 0 {
		return 0, fmt.Errorf("device %s: negative application size %g", s.Name, appGates)
	}
	if s.Kind == ASIC || appGates == 0 {
		return 1, nil
	}
	if s.CapacityGates <= 0 {
		return 0, fmt.Errorf("device %s: FPGA capacity not set", s.Name)
	}
	return int(math.Ceil(appGates / s.CapacityGates)), nil
}

// mustNode resolves a table node at init time.
func mustNode(name string) technode.Node {
	n, err := technode.ByName(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Industry testcases of Table 3. Areas, powers and nodes are the
// table's values; capacities are plausible equivalent-gate figures for
// the referenced device families.
var catalog = []Spec{
	{
		Name:      "IndustryASIC1",
		Kind:      ASIC,
		Node:      mustNode("12nm"),
		DieArea:   units.MM2(340),
		PeakPower: units.Watts(70),
		BasedOn:   "Moffett Antoum deep-sparse inference SoC",
	},
	{
		Name:      "IndustryASIC2",
		Kind:      ASIC,
		Node:      mustNode("7nm"),
		DieArea:   units.MM2(600),
		PeakPower: units.Watts(192),
		BasedOn:   "Google TPU v4",
	},
	{
		Name:          "IndustryFPGA1",
		Kind:          FPGA,
		Node:          mustNode("14nm"),
		DieArea:       units.MM2(380),
		PeakPower:     units.Watts(160),
		CapacityGates: 40e6,
		BasedOn:       "Intel Agilex 7 I-Series",
	},
	{
		Name:          "IndustryFPGA2",
		Kind:          FPGA,
		Node:          mustNode("10nm"),
		DieArea:       units.MM2(550),
		PeakPower:     units.Watts(220),
		CapacityGates: 30e6,
		BasedOn:       "Intel Stratix 10",
	},
}

// Catalog lists the industry testcases in Table 3 order.
func Catalog() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	return out
}

// ByName looks up a catalog device.
func ByName(name string) (Spec, error) {
	for _, s := range catalog {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, len(catalog))
	for i, s := range catalog {
		names[i] = s.Name
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("device: unknown device %q (known: %v)", name, names)
}
