package device

import (
	"testing"
	"testing/quick"

	"greenfpga/internal/technode"
	"greenfpga/internal/units"
)

func TestCatalogMatchesTable3(t *testing.T) {
	want := []struct {
		name  string
		kind  Kind
		area  float64
		power float64
		node  float64
	}{
		{"IndustryASIC1", ASIC, 340, 70, 12},
		{"IndustryASIC2", ASIC, 600, 192, 7},
		{"IndustryFPGA1", FPGA, 380, 160, 14},
		{"IndustryFPGA2", FPGA, 550, 220, 10},
		{"IndustryGPU1", GPU, 826, 400, 7},
		{"IndustryCPU1", CPU, 660, 270, 10},
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog size %d, want %d", len(cat), len(want))
	}
	for i, w := range want {
		s := cat[i]
		if s.Name != w.name || s.Kind != w.kind ||
			s.DieArea.MM2() != w.area || s.PeakPower.Watts() != w.power ||
			s.Node.FeatureNM != w.node {
			t.Errorf("catalog[%d] = %+v, want %+v", i, s, w)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", s.Name, err)
		}
		if s.BasedOn == "" {
			t.Errorf("%s missing provenance", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("IndustryFPGA2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != FPGA || s.CapacityGates <= 0 {
		t.Errorf("IndustryFPGA2: %+v", s)
	}
	if _, err := ByName("IndustryNPU1"); err == nil {
		t.Error("unknown device must error")
	}
	g, err := ByName("IndustryGPU1")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != GPU || g.CapacityGates != 0 {
		t.Errorf("IndustryGPU1: %+v", g)
	}
}

// TestReusePolicies pins the per-kind policy table the scenario engine
// keys its accounting off.
func TestReusePolicies(t *testing.T) {
	want := map[Kind]ReusePolicy{
		ASIC: {Reusable: false, CapacityGanged: false, AppDev: AppDevNone},
		FPGA: {Reusable: true, CapacityGanged: true, AppDev: AppDevHardware},
		GPU:  {Reusable: true, CapacityGanged: false, AppDev: AppDevSoftware},
		CPU:  {Reusable: true, CapacityGanged: false, AppDev: AppDevSoftware},
	}
	if len(Kinds()) != len(want) {
		t.Fatalf("Kinds() lists %d kinds, want %d", len(Kinds()), len(want))
	}
	for _, k := range Kinds() {
		if got := k.Policy(); got != want[k] {
			t.Errorf("%s policy %+v, want %+v", k, got, want[k])
		}
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
	if Kind("npu").Validate() == nil {
		t.Error("unknown kind must fail validation")
	}
	if got := Kind("npu").Policy(); got != (ReusePolicy{}) {
		t.Errorf("unknown kind policy %+v, want zero", got)
	}
}

func TestValidate(t *testing.T) {
	node, _ := technode.ByName("10nm")
	good := Spec{Name: "x", Kind: FPGA, Node: node, DieArea: units.MM2(100),
		PeakPower: units.Watts(10), CapacityGates: 1e6}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec invalid: %v", err)
	}
	// GPU and CPU are first-class kinds: capacity-free specs validate.
	for _, k := range []Kind{GPU, CPU} {
		s := Spec{Name: "x", Kind: k, Node: node, DieArea: units.MM2(100), PeakPower: units.Watts(10)}
		if err := s.Validate(); err != nil {
			t.Errorf("%s spec invalid: %v", k, err)
		}
	}
	bad := []Spec{
		{},
		{Name: "x", Kind: "npu", Node: node, DieArea: units.MM2(1), PeakPower: units.Watts(1)},
		{Name: "x", Kind: ASIC, DieArea: units.MM2(1), PeakPower: units.Watts(1)},
		{Name: "x", Kind: ASIC, Node: node, DieArea: units.MM2(0), PeakPower: units.Watts(1)},
		{Name: "x", Kind: ASIC, Node: node, DieArea: units.MM2(1), PeakPower: units.Watts(0)},
		{Name: "x", Kind: FPGA, Node: node, DieArea: units.MM2(1), PeakPower: units.Watts(1)},
		{Name: "x", Kind: ASIC, Node: node, DieArea: units.MM2(1), PeakPower: units.Watts(1), CapacityGates: 5},
		{Name: "x", Kind: GPU, Node: node, DieArea: units.MM2(1), PeakPower: units.Watts(1), CapacityGates: 5},
		{Name: "x", Kind: CPU, Node: node, DieArea: units.MM2(1), PeakPower: units.Watts(1), CapacityGates: 5},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestSiliconGates(t *testing.T) {
	node, _ := technode.ByName("10nm")
	s := Spec{Name: "x", Kind: ASIC, Node: node, DieArea: units.MM2(150), PeakPower: units.Watts(1)}
	if got := s.SiliconGates(); got != 150*9e6 {
		t.Errorf("silicon gates %g", got)
	}
}

func TestRequired(t *testing.T) {
	node, _ := technode.ByName("10nm")
	fpga := Spec{Name: "f", Kind: FPGA, Node: node, DieArea: units.MM2(100),
		PeakPower: units.Watts(10), CapacityGates: 10e6}
	asic := Spec{Name: "a", Kind: ASIC, Node: node, DieArea: units.MM2(100), PeakPower: units.Watts(10)}
	gpu := Spec{Name: "g", Kind: GPU, Node: node, DieArea: units.MM2(100), PeakPower: units.Watts(10)}

	cases := []struct {
		spec Spec
		app  float64
		want int
	}{
		{fpga, 0, 1},        // unspecified app fits one device
		{fpga, 5e6, 1},      // half capacity
		{fpga, 10e6, 1},     // exact fit
		{fpga, 10e6 + 1, 2}, // one gate over
		{fpga, 35e6, 4},     // ceil(3.5)
		{asic, 1e12, 1},     // ASIC is always one device (paper footnote)
		{gpu, 1e12, 1},      // software-reusable kinds never gang by capacity
	}
	for _, c := range cases {
		got, err := c.spec.Required(c.app)
		if err != nil {
			t.Errorf("Required(%g): %v", c.app, err)
			continue
		}
		if got != c.want {
			t.Errorf("Required(%s, %g) = %d, want %d", c.spec.Name, c.app, got, c.want)
		}
	}
	if _, err := fpga.Required(-1); err == nil {
		t.Error("negative app size must error")
	}
	broken := fpga
	broken.CapacityGates = 0
	if _, err := broken.Required(1e6); err == nil {
		t.Error("zero capacity must error")
	}
}

// Property: N_FPGA is the true ceiling — it always covers the
// application and N_FPGA-1 devices never do.
func TestQuickRequiredIsCeiling(t *testing.T) {
	node, _ := technode.ByName("7nm")
	fpga := Spec{Name: "f", Kind: FPGA, Node: node, DieArea: units.MM2(100),
		PeakPower: units.Watts(10), CapacityGates: 12.5e6}
	f := func(raw uint32) bool {
		app := float64(raw) * 1000
		n, err := fpga.Required(app)
		if err != nil {
			return false
		}
		if app == 0 {
			return n == 1
		}
		covers := float64(n)*fpga.CapacityGates >= app
		tight := float64(n-1)*fpga.CapacityGates < app
		return covers && tight
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
