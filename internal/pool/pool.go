// Package pool runs a fixed-size worker pool over an indexed range of
// independent cells — the execution engine behind the parameter sweeps
// and Monte-Carlo draws. Workers pull chunked index ranges off a
// shared atomic counter (one goroutine per CPU instead of one per
// cell), and results are deterministic regardless of scheduling: every
// cell below the lowest failing index is evaluated, and that index's
// error is the one reported.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Eval evaluates one cell.
type Eval func(i int) error

// Run evaluates cells 0..n-1 with eval, which must be safe for
// concurrent use. chunk is how many consecutive cells one worker
// claims per fetch: large enough to keep contention on the shared
// counter negligible, small enough to balance uneven per-cell cost.
func Run(n, chunk int, eval Eval) error {
	return RunWorkers(n, chunk, func() Eval { return eval })
}

// RunWorkers is Run for evaluators that need per-worker scratch state
// (a reusable map, a resettable RNG): newWorker is called once per
// worker goroutine and the returned Eval is only ever used from that
// goroutine.
func RunWorkers(n, chunk int, newWorker func() Eval) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	// Shrink the chunk when n is small relative to the worker count:
	// a 12-cell range with chunk 8 would otherwise run on 2 workers no
	// matter how expensive each cell is.
	if c := n / workers; c < chunk {
		chunk = c
	}
	if chunk < 1 {
		chunk = 1
	}
	if m := (n + chunk - 1) / chunk; workers > m {
		workers = m
	}

	errs := make([]error, n)
	// minFail is the lowest failing index seen so far (n = none).
	// Chunks are claimed in increasing order, so once a chunk starts
	// at or past minFail nothing it could compute changes the outcome
	// and workers stop claiming — a study that fails on an early draw
	// does not grind through the full range first. minFail only
	// decreases, so every index below its final value is evaluated and
	// the reported error is deterministically the lowest one.
	var next, minFail atomic.Int64
	minFail.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval := newWorker()
			for {
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n || int64(start) >= minFail.Load() {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if err := eval(i); err != nil {
						errs[i] = err
						for {
							cur := minFail.Load()
							if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
								break
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
