package pool

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryCell(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 1000} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n+1)
		err := Run(n, 8, func(i int) error {
			hits.Add(1)
			if seen[i].Swap(true) {
				return fmt.Errorf("cell %d evaluated twice", i)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := hits.Load(); got != int64(n) {
			t.Fatalf("n=%d: %d evaluations", n, got)
		}
	}
}

func TestRunReportsLowestError(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		err := Run(500, 4, func(i int) error {
			if i >= 137 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "boom 137") {
			t.Fatalf("trial %d: want lowest failing cell, got %v", trial, err)
		}
	}
}

func TestRunStopsClaimingAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := Run(1_000_000, 16, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// Workers may finish in-flight chunks, but must not grind through
	// the whole range once cell 0 has failed.
	if got := calls.Load(); got > 100_000 {
		t.Fatalf("evaluated %d cells after an index-0 failure", got)
	}
}

// TestSmallRangeUsesAllWorkers asserts the chunk shrinks when n is
// small, so expensive few-cell sweeps still get full parallelism.
func TestSmallRangeUsesAllWorkers(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	var workers atomic.Int64
	err := RunWorkers(gmp, 8, func() Eval {
		workers.Add(1)
		return func(int) error { return nil }
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := workers.Load(); got != int64(gmp) {
		t.Fatalf("%d workers for %d cells, want one each", got, gmp)
	}
}

func TestRunWorkersScratchIsPerWorker(t *testing.T) {
	var workers atomic.Int64
	var total atomic.Int64
	err := RunWorkers(10_000, 8, func() Eval {
		workers.Add(1)
		count := 0 // worker-local: mutated without synchronization
		return func(i int) error {
			count++
			total.Add(1)
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 10_000 {
		t.Fatalf("evaluated %d cells", total.Load())
	}
	if workers.Load() < 1 {
		t.Fatal("no workers created")
	}
}
