package fab

import (
	"fmt"

	"greenfpga/internal/units"
	"greenfpga/internal/yield"
)

// WaferResult is the wafer-level view of the manufacturing model: the
// per-die model (PerDie) charges exactly die-area/yield of wafer
// processing, while real wafers also waste edge silicon and saw
// streets. The gap quantifies the geometry overhead.
type WaferResult struct {
	// GrossDice is the whole-die count per wafer.
	GrossDice int
	// GoodDice is the expected yielded-die count per wafer.
	GoodDice float64
	// PerWafer is the full wafer's processing carbon.
	PerWafer units.Mass
	// PerGoodDie is PerWafer amortized over the good dice.
	PerGoodDie units.Mass
	// WaferEnergy is the full wafer's fab electricity.
	WaferEnergy units.Energy
	// Yield is the die yield applied.
	Yield float64
}

// PerWafer evaluates the manufacturing model for whole wafers of the
// given geometry.
func PerWafer(in Inputs, w yield.Wafer) (WaferResult, error) {
	// Validate and resolve shared knobs through the per-die path.
	perDie, err := PerDie(in)
	if err != nil {
		return WaferResult{}, err
	}
	gross, err := w.DiesPerWafer(in.DieArea)
	if err != nil {
		return WaferResult{}, err
	}
	if gross == 0 {
		return WaferResult{}, fmt.Errorf("fab: die %v does not fit the %gmm wafer",
			in.DieArea, w.DiameterMM)
	}
	good := float64(gross) * perDie.Yield
	if good <= 0 {
		return WaferResult{}, fmt.Errorf("fab: no good dice expected per wafer")
	}

	waferArea := units.MM2(3.14159265358979 / 4 *
		(w.DiameterMM - 2*w.EdgeExclusionMM) * (w.DiameterMM - 2*w.EdgeExclusionMM))
	// Per-area carbon at yield 1 (the whole wafer is processed once).
	rho := in.RecycledMaterialFraction
	mpaEff := in.Node.MPANew.KgPerCM2() *
		(rho*(1-in.Node.RecycledMaterialSaving) + (1 - rho))
	energy := in.Node.EPA.Times(waferArea)
	perWafer := energy.Carbon(perDie.FabIntensity) +
		in.Node.GPA.Times(waferArea) +
		units.KgPerCM2(mpaEff).Times(waferArea)

	return WaferResult{
		GrossDice:   gross,
		GoodDice:    good,
		PerWafer:    perWafer,
		PerGoodDie:  perWafer.Scale(1 / good),
		WaferEnergy: energy,
		Yield:       perDie.Yield,
	}, nil
}
