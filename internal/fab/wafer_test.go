package fab

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/technode"
	"greenfpga/internal/units"
	"greenfpga/internal/yield"
)

func TestPerWaferBasics(t *testing.T) {
	n := node10(t)
	in := Inputs{Node: n, DieArea: units.MM2(150)}
	res, err := PerWafer(in, yield.Wafer300)
	if err != nil {
		t.Fatal(err)
	}
	if res.GrossDice <= 0 || res.GoodDice <= 0 || res.GoodDice > float64(res.GrossDice) {
		t.Errorf("dice counts: gross %d good %g", res.GrossDice, res.GoodDice)
	}
	if res.PerWafer <= 0 || res.WaferEnergy <= 0 {
		t.Errorf("wafer totals: %v %v", res.PerWafer, res.WaferEnergy)
	}
	// Per-good-die carbon must sit above the idealized per-die model:
	// whole wafers waste edge silicon and saw streets.
	die, _ := PerDie(in)
	if res.PerGoodDie.Kilograms() <= die.Total().Kilograms() {
		t.Errorf("wafer-amortized %v should exceed idealized %v",
			res.PerGoodDie, die.Total())
	}
	// But not absurdly so (within 25% for a 150mm2 die on 300mm).
	if res.PerGoodDie.Kilograms() > 1.25*die.Total().Kilograms() {
		t.Errorf("geometry overhead implausible: %v vs %v", res.PerGoodDie, die.Total())
	}
}

func TestPerWaferConservation(t *testing.T) {
	// PerGoodDie x GoodDice recovers the wafer total exactly.
	n := node10(t)
	res, err := PerWafer(Inputs{Node: n, DieArea: units.MM2(300)}, yield.Wafer300)
	if err != nil {
		t.Fatal(err)
	}
	back := res.PerGoodDie.Scale(res.GoodDice)
	if math.Abs(back.Kilograms()-res.PerWafer.Kilograms()) > 1e-9 {
		t.Errorf("conservation: %v vs %v", back, res.PerWafer)
	}
}

func TestPerWaferErrors(t *testing.T) {
	n := node10(t)
	if _, err := PerWafer(Inputs{Node: n, DieArea: units.MM2(0)}, yield.Wafer300); err == nil {
		t.Error("bad die must error")
	}
	// A die larger than the wafer cannot be built.
	if _, err := PerWafer(Inputs{Node: n, DieArea: units.CM2(700)}, yield.Wafer300); err == nil {
		t.Error("oversized die must error")
	}
	if _, err := PerWafer(Inputs{Node: n, DieArea: units.MM2(100)},
		yield.Wafer{DiameterMM: 0}); err == nil {
		t.Error("bad wafer must error")
	}
}

// Property: wafer-amortized per-die carbon always upper-bounds the
// idealized per-die model, for any die size that fits.
func TestQuickWaferUpperBound(t *testing.T) {
	n, err := technode.ByName("7nm")
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		area := 20 + math.Mod(math.Abs(raw), 600)
		if math.IsNaN(area) {
			return true
		}
		in := Inputs{Node: n, DieArea: units.MM2(area)}
		w, err1 := PerWafer(in, yield.Wafer300)
		d, err2 := PerDie(in)
		if err1 != nil || err2 != nil {
			return false
		}
		return w.PerGoodDie.Kilograms() >= d.Total().Kilograms()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
