package fab

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/grid"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
	"greenfpga/internal/yield"
)

func node10(t *testing.T) technode.Node {
	t.Helper()
	n, err := technode.ByName("10nm")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPerDieComposition(t *testing.T) {
	n := node10(t)
	res, err := PerDie(Inputs{Node: n, DieArea: units.MM2(150)})
	if err != nil {
		t.Fatal(err)
	}
	// Components must sum to total and all be positive.
	sum := res.EnergyCarbon + res.GasCarbon + res.MaterialCarbon
	if math.Abs(sum.Kilograms()-res.Total().Kilograms()) > 1e-12 {
		t.Errorf("components %v != total %v", sum, res.Total())
	}
	if res.EnergyCarbon <= 0 || res.GasCarbon <= 0 || res.MaterialCarbon <= 0 {
		t.Errorf("non-positive component: %+v", res)
	}
	// 150 mm^2 at 10 nm is a few kg CO2e in ACT-class models.
	if res.Total().Kilograms() < 1 || res.Total().Kilograms() > 10 {
		t.Errorf("10nm 150mm2 total %v outside 1-10 kg band", res.Total())
	}
	if res.Yield <= 0 || res.Yield > 1 {
		t.Errorf("yield %g out of range", res.Yield)
	}
}

func TestPerDieHandValues(t *testing.T) {
	// Pin the arithmetic with a fully specified input.
	n := node10(t)
	mix := grid.Mix{grid.Coal: 1}
	res, err := PerDie(Inputs{
		Node:    n,
		DieArea: units.CM2(1),
		FabMix:  mix,
		Yield:   yield.Calculator{Model: yield.Poisson, DefectDensity: 0}, // yield 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield != 1 {
		t.Fatalf("yield: %g", res.Yield)
	}
	wantEnergy := 1.475               // kWh for 1 cm^2
	wantEnergyCarbon := 1.475 * 0.820 // coal
	if math.Abs(res.FabEnergy.KWh()-wantEnergy) > 1e-9 {
		t.Errorf("fab energy %v, want %g kWh", res.FabEnergy, wantEnergy)
	}
	if math.Abs(res.EnergyCarbon.Kilograms()-wantEnergyCarbon) > 1e-9 {
		t.Errorf("energy carbon %v, want %g kg", res.EnergyCarbon, wantEnergyCarbon)
	}
	if math.Abs(res.GasCarbon.Kilograms()-0.280) > 1e-9 {
		t.Errorf("gas carbon %v, want 0.28 kg", res.GasCarbon)
	}
	if math.Abs(res.MaterialCarbon.Kilograms()-0.500) > 1e-9 {
		t.Errorf("material carbon %v, want 0.5 kg", res.MaterialCarbon)
	}
}

func TestRecycledMaterialsEq5(t *testing.T) {
	n := node10(t)
	base, err := PerDie(Inputs{Node: n, DieArea: units.MM2(100)})
	if err != nil {
		t.Fatal(err)
	}
	half, err := PerDie(Inputs{Node: n, DieArea: units.MM2(100), RecycledMaterialFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	full, err := PerDie(Inputs{Node: n, DieArea: units.MM2(100), RecycledMaterialFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 5: rho=1 leaves (1-saving) of the virgin material carbon.
	wantFull := base.MaterialCarbon.Kilograms() * (1 - n.RecycledMaterialSaving)
	if math.Abs(full.MaterialCarbon.Kilograms()-wantFull) > 1e-9 {
		t.Errorf("full recycling %v, want %g kg", full.MaterialCarbon, wantFull)
	}
	// rho=0.5 must sit exactly halfway.
	wantHalf := (base.MaterialCarbon.Kilograms() + wantFull) / 2
	if math.Abs(half.MaterialCarbon.Kilograms()-wantHalf) > 1e-9 {
		t.Errorf("half recycling %v, want %g kg", half.MaterialCarbon, wantHalf)
	}
	// Recycling must not touch energy or gas components.
	if half.EnergyCarbon != base.EnergyCarbon || half.GasCarbon != base.GasCarbon {
		t.Error("recycling fraction leaked into energy/gas components")
	}
}

func TestRenewableTargetLowersEnergyCarbon(t *testing.T) {
	n := node10(t)
	base, _ := PerDie(Inputs{Node: n, DieArea: units.MM2(100)})
	green, err := PerDie(Inputs{Node: n, DieArea: units.MM2(100), RenewableTarget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if green.EnergyCarbon >= base.EnergyCarbon {
		t.Errorf("renewable fab should cut energy carbon: %v vs %v",
			green.EnergyCarbon, base.EnergyCarbon)
	}
	if green.GasCarbon != base.GasCarbon {
		t.Error("renewables must not change process-gas carbon")
	}
}

func TestYieldAmplification(t *testing.T) {
	// Doubling area more than doubles footprint because yield drops.
	n := node10(t)
	small, _ := PerDie(Inputs{Node: n, DieArea: units.MM2(150)})
	big, _ := PerDie(Inputs{Node: n, DieArea: units.MM2(300)})
	ratio := big.Total().Kilograms() / small.Total().Kilograms()
	if ratio <= 2 {
		t.Errorf("yield loss should amplify area scaling: ratio %g", ratio)
	}
	if ratio > 2.5 {
		t.Errorf("amplification implausibly high: %g", ratio)
	}
}

func TestPerDieErrors(t *testing.T) {
	n := node10(t)
	cases := []Inputs{
		{Node: technode.Node{}, DieArea: units.MM2(100)},
		{Node: n, DieArea: units.MM2(0)},
		{Node: n, DieArea: units.MM2(100), RecycledMaterialFraction: -0.1},
		{Node: n, DieArea: units.MM2(100), RecycledMaterialFraction: 1.1},
		{Node: n, DieArea: units.MM2(100), RenewableTarget: 2},
		{Node: n, DieArea: units.MM2(100), FabMix: grid.Mix{"diesel": 1}},
		{Node: n, DieArea: units.MM2(100), Yield: yield.Calculator{Model: "magic", DefectDensity: 0.1}},
	}
	for i, in := range cases {
		if _, err := PerDie(in); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Property: manufacturing carbon is monotone in area and in recycled
// fraction (more recycling never raises the footprint).
func TestQuickMonotonicity(t *testing.T) {
	n, err := technode.ByName("7nm")
	if err != nil {
		t.Fatal(err)
	}
	f := func(a1, a2, r1, r2 float64) bool {
		a1 = 1 + math.Mod(math.Abs(a1), 800)
		a2 = 1 + math.Mod(math.Abs(a2), 800)
		r1 = math.Mod(math.Abs(r1), 1)
		r2 = math.Mod(math.Abs(r2), 1)
		if math.IsNaN(a1 + a2 + r1 + r2) {
			return true
		}
		aLo, aHi := math.Min(a1, a2), math.Max(a1, a2)
		rLo, rHi := math.Min(r1, r2), math.Max(r1, r2)
		s, err1 := PerDie(Inputs{Node: n, DieArea: units.MM2(aLo), RecycledMaterialFraction: rHi})
		b, err2 := PerDie(Inputs{Node: n, DieArea: units.MM2(aHi), RecycledMaterialFraction: rHi})
		if err1 != nil || err2 != nil {
			return false
		}
		if b.Total() < s.Total() {
			return false
		}
		lessRec, err3 := PerDie(Inputs{Node: n, DieArea: units.MM2(aHi), RecycledMaterialFraction: rLo})
		if err3 != nil {
			return false
		}
		return lessRec.Total() >= b.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: leading-edge nodes cost at least as much carbon per die of
// identical area as mature nodes.
func TestQuickNodeOrdering(t *testing.T) {
	nodes := technode.List()
	f := func(areaRaw float64, i, j uint8) bool {
		area := 10 + math.Mod(math.Abs(areaRaw), 400)
		if math.IsNaN(area) {
			return true
		}
		a := nodes[int(i)%len(nodes)]
		b := nodes[int(j)%len(nodes)]
		if a.FeatureNM < b.FeatureNM {
			a, b = b, a // a mature, b advanced
		}
		ra, err1 := PerDie(Inputs{Node: a, DieArea: units.MM2(area)})
		rb, err2 := PerDie(Inputs{Node: b, DieArea: units.MM2(area)})
		if err1 != nil || err2 != nil {
			return false
		}
		return rb.Total() >= ra.Total()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
