// Package fab implements the manufacturing carbon-footprint model of
// GreenFPGA (paper §3.2(2)). Per good die,
//
//	C_mfg = (CI_fab x EPA + GPA + MPA_eff) x A / Y(A)
//
// where CI_fab is the fab's energy carbon intensity, EPA/GPA/MPA come
// from the technology-node database, Y is the die yield, and the
// materials term follows Eq. 5 of the paper:
//
//	MPA_eff = rho x MPA_recycled + (1 - rho) x MPA_new
//
// with rho the recycled-material sourcing fraction.
package fab

import (
	"fmt"

	"greenfpga/internal/grid"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
	"greenfpga/internal/yield"
)

// Inputs describes one die to be manufactured.
type Inputs struct {
	// Node supplies the per-area coefficients and defaults for yield.
	Node technode.Node
	// DieArea is the silicon area of the die.
	DieArea units.Area
	// FabMix is the energy mix powering the fab. Nil means the Taiwan
	// preset, where the bulk of the cited capacity sits.
	FabMix grid.Mix
	// RenewableTarget optionally raises the fab mix's renewable share
	// (power-purchase agreements); zero leaves the mix untouched.
	RenewableTarget float64
	// RecycledMaterialFraction is rho in Eq. 5 (0..1).
	RecycledMaterialFraction float64
	// Yield overrides the yield calculation. A zero value uses the
	// Murphy model with the node's defect density.
	Yield yield.Calculator
}

// Result is the per-good-die manufacturing footprint, broken into the
// sources the paper's Fig. 3 distinguishes.
type Result struct {
	// EnergyCarbon is the fab electricity component (CI_fab x EPA x A/Y).
	EnergyCarbon units.Mass
	// GasCarbon is the direct process-gas component (GPA x A/Y).
	GasCarbon units.Mass
	// MaterialCarbon is the sourcing component after recycling credit
	// (MPA_eff x A/Y).
	MaterialCarbon units.Mass
	// FabEnergy is the electricity consumed for this good die.
	FabEnergy units.Energy
	// Yield is the die yield used.
	Yield float64
	// FabIntensity is the carbon intensity of the fab energy after any
	// renewable uplift.
	FabIntensity units.CarbonIntensity
}

// Total is the complete manufacturing footprint per good die.
func (r Result) Total() units.Mass {
	return r.EnergyCarbon + r.GasCarbon + r.MaterialCarbon
}

// PerDie evaluates the manufacturing model for one good die.
func PerDie(in Inputs) (Result, error) {
	if err := in.Node.Validate(); err != nil {
		return Result{}, err
	}
	if in.DieArea.MM2() <= 0 {
		return Result{}, fmt.Errorf("fab: die area must be positive, got %v", in.DieArea)
	}
	if in.RecycledMaterialFraction < 0 || in.RecycledMaterialFraction > 1 {
		return Result{}, fmt.Errorf("fab: recycled-material fraction %g outside [0,1]",
			in.RecycledMaterialFraction)
	}
	if in.RenewableTarget < 0 || in.RenewableTarget > 1 {
		return Result{}, fmt.Errorf("fab: renewable target %g outside [0,1]", in.RenewableTarget)
	}

	mix := in.FabMix
	if mix == nil {
		var err error
		mix, err = grid.ByRegion(grid.RegionTaiwan)
		if err != nil {
			return Result{}, err
		}
	}
	if in.RenewableTarget > 0 {
		var err error
		mix, err = mix.WithRenewables(in.RenewableTarget)
		if err != nil {
			return Result{}, err
		}
	}
	ci, err := mix.Intensity()
	if err != nil {
		return Result{}, err
	}

	yc := in.Yield
	if yc.Model == "" && yc.DefectDensity == 0 {
		yc = yield.Calculator{
			Model:          yield.Murphy,
			DefectDensity:  in.Node.DefectDensity,
			CriticalLayers: in.Node.CriticalLayers,
		}
	}
	y, err := yc.DieYield(in.DieArea)
	if err != nil {
		return Result{}, err
	}
	if y <= 0 {
		return Result{}, fmt.Errorf("fab: yield collapsed to %g for %v", y, in.DieArea)
	}

	// Effective processed area per good die.
	effArea := in.DieArea.Scale(1 / y)

	energy := in.Node.EPA.Times(effArea)
	rho := in.RecycledMaterialFraction
	mpaEff := in.Node.MPANew.KgPerCM2() *
		(rho*(1-in.Node.RecycledMaterialSaving) + (1 - rho))

	return Result{
		EnergyCarbon:   energy.Carbon(ci),
		GasCarbon:      in.Node.GPA.Times(effArea),
		MaterialCarbon: units.KgPerCM2(mpaEff).Times(effArea),
		FabEnergy:      energy,
		Yield:          y,
		FabIntensity:   ci,
	}, nil
}
