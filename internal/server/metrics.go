package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// metrics holds the server's counters. Request counts are kept per
// endpoint; cache counters are read from the caches themselves so the
// numbers can never drift from the structures they describe.
type metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Uint64
	inflight atomic.Int64
	rejected atomic.Uint64
	// shed counts requests (or batch items) refused with 503 +
	// Retry-After because no limiter slot freed within the queue-wait
	// bound.
	shed atomic.Uint64
	// deadlines counts requests answered 504 because the handler
	// overran its deadline.
	deadlines atomic.Uint64
	// panics counts handler panics recovered into internal envelopes.
	panics atomic.Uint64
	// coalesced counts requests that shared another request's
	// in-flight evaluation instead of computing (the singleflight
	// followers; the leader counts as the result-cache miss).
	coalesced atomic.Uint64
}

// counter returns the request counter for an endpoint, creating it on
// first use.
func (m *metrics) counter(endpoint string) *atomic.Uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requests == nil {
		m.requests = make(map[string]*atomic.Uint64)
	}
	c, ok := m.requests[endpoint]
	if !ok {
		c = new(atomic.Uint64)
		m.requests[endpoint] = c
	}
	return c
}

// write renders the counters in the Prometheus text exposition
// format, endpoints sorted for deterministic output.
func (s *Server) writeMetrics(w io.Writer) error {
	s.m.mu.Lock()
	endpoints := make([]string, 0, len(s.m.requests))
	for ep := range s.m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	counts := make([]uint64, len(endpoints))
	for i, ep := range endpoints {
		counts[i] = s.m.requests[ep].Load()
	}
	s.m.mu.Unlock()

	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	add("# HELP greenfpga_requests_total Requests received, by endpoint.\n")
	add("# TYPE greenfpga_requests_total counter\n")
	for i, ep := range endpoints {
		add("greenfpga_requests_total{endpoint=%q} %d\n", ep, counts[i])
	}
	rcHits, rcMisses := s.results.Stats()
	add("# HELP greenfpga_result_cache_hits_total Content-addressed result cache hits.\n")
	add("# TYPE greenfpga_result_cache_hits_total counter\n")
	add("greenfpga_result_cache_hits_total %d\n", rcHits)
	add("# HELP greenfpga_result_cache_misses_total Content-addressed result cache misses.\n")
	add("# TYPE greenfpga_result_cache_misses_total counter\n")
	add("greenfpga_result_cache_misses_total %d\n", rcMisses)
	add("# HELP greenfpga_result_cache_entries Resident result cache entries.\n")
	add("# TYPE greenfpga_result_cache_entries gauge\n")
	add("greenfpga_result_cache_entries %d\n", s.results.Len())
	aHits, aMisses := s.artifacts.Stats()
	add("# HELP greenfpga_artifact_cache_hits_total Rendered-experiment cache hits.\n")
	add("# TYPE greenfpga_artifact_cache_hits_total counter\n")
	add("greenfpga_artifact_cache_hits_total %d\n", aHits)
	add("# HELP greenfpga_artifact_cache_misses_total Rendered-experiment cache misses.\n")
	add("# TYPE greenfpga_artifact_cache_misses_total counter\n")
	add("greenfpga_artifact_cache_misses_total %d\n", aMisses)
	cpHits, cpMisses := s.eval.CompileStats()
	add("# HELP greenfpga_compiled_platform_cache_hits_total Compiled-platform cache hits.\n")
	add("# TYPE greenfpga_compiled_platform_cache_hits_total counter\n")
	add("greenfpga_compiled_platform_cache_hits_total %d\n", cpHits)
	add("# HELP greenfpga_compiled_platform_cache_misses_total Compiled-platform cache misses.\n")
	add("# TYPE greenfpga_compiled_platform_cache_misses_total counter\n")
	add("greenfpga_compiled_platform_cache_misses_total %d\n", cpMisses)
	add("# HELP greenfpga_inflight_requests Requests currently being served.\n")
	add("# TYPE greenfpga_inflight_requests gauge\n")
	add("greenfpga_inflight_requests %d\n", s.m.inflight.Load())
	add("# HELP greenfpga_rejected_total Requests abandoned while waiting for a concurrency slot.\n")
	add("# TYPE greenfpga_rejected_total counter\n")
	add("greenfpga_rejected_total %d\n", s.m.rejected.Load())
	add("# HELP greenfpga_shed_total Requests shed with 503 after the bounded queue wait elapsed.\n")
	add("# TYPE greenfpga_shed_total counter\n")
	add("greenfpga_shed_total %d\n", s.m.shed.Load())
	add("# HELP greenfpga_deadline_exceeded_total Requests answered 504 after overrunning their deadline.\n")
	add("# TYPE greenfpga_deadline_exceeded_total counter\n")
	add("greenfpga_deadline_exceeded_total %d\n", s.m.deadlines.Load())
	add("# HELP greenfpga_panics_total Handler panics recovered into internal-error envelopes.\n")
	add("# TYPE greenfpga_panics_total counter\n")
	add("greenfpga_panics_total %d\n", s.m.panics.Load())
	add("# HELP greenfpga_coalesced_total Requests that shared a concurrent identical evaluation (singleflight followers).\n")
	add("# TYPE greenfpga_coalesced_total counter\n")
	add("greenfpga_coalesced_total %d\n", s.m.coalesced.Load())
	add("# HELP greenfpga_queue_depth Requests currently waiting for an evaluation slot.\n")
	add("# TYPE greenfpga_queue_depth gauge\n")
	add("greenfpga_queue_depth %d\n", s.limiter.Waiting())
	_, err := w.Write(b)
	return err
}
