package server

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"greenfpga/internal/telemetry"
)

// Histogram bucket layouts. Durations span 1µs–10s (log-spaced, 3
// buckets per decade): cache hits land near the bottom, Monte-Carlo
// runs near the top. Response sizes span 100B–10MB: an error envelope
// to an admitted full-size sweep.
var (
	durationBuckets = telemetry.LogBuckets(1e-6, 10, 3)
	sizeBuckets     = telemetry.LogBuckets(100, 1e7, 2)
)

// metrics holds the server's counters and histograms. Request counts
// are kept per endpoint; cache counters are read from the caches
// themselves so the numbers can never drift from the structures they
// describe. The duration histogram's per-outcome series sum to the
// endpoint's request counter (minus requests still in flight) — the
// reconciliation the chaos suite asserts.
type metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Uint64
	inflight atomic.Int64
	rejected atomic.Uint64
	// shed counts requests (or batch items) refused with 503 +
	// Retry-After because no limiter slot freed within the queue-wait
	// bound.
	shed atomic.Uint64
	// deadlines counts requests answered 504 because the handler
	// overran its deadline.
	deadlines atomic.Uint64
	// panics counts handler panics recovered into internal envelopes.
	panics atomic.Uint64
	// coalesced counts requests that shared another request's
	// in-flight evaluation instead of computing (the singleflight
	// followers; the leader counts as the result-cache miss).
	coalesced atomic.Uint64
	// storeHits counts synchronous requests answered from the durable
	// store tier — results that survived a restart or were finished by
	// an asynchronous job.
	storeHits atomic.Uint64

	// reqDur is wall-clock time per finished request, by endpoint and
	// outcome (ok, cache-hit, coalesced, shed, deadline, panic,
	// canceled, invalid, error).
	reqDur *telemetry.Vec
	// respSize is response body bytes per finished request, by
	// endpoint.
	respSize *telemetry.Vec
	// stageDur is accumulated time per pipeline stage (decode,
	// resolve, compute, encode) across all endpoints.
	stageDur *telemetry.Vec
	// queueWait is time spent waiting for a limiter slot, for
	// admitted and shed requests alike — saturation shows here before
	// the shed counter moves.
	queueWait *telemetry.Histogram
}

// init builds the histogram vectors (the atomic counters need none).
func (m *metrics) init() {
	m.reqDur = telemetry.NewVec(durationBuckets, "endpoint", "outcome")
	m.respSize = telemetry.NewVec(sizeBuckets, "endpoint")
	m.stageDur = telemetry.NewVec(durationBuckets, "stage")
	m.queueWait = telemetry.NewHistogram(durationBuckets)
}

// counter returns the request counter for an endpoint, creating it on
// first use.
func (m *metrics) counter(endpoint string) *atomic.Uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requests == nil {
		m.requests = make(map[string]*atomic.Uint64)
	}
	c, ok := m.requests[endpoint]
	if !ok {
		c = new(atomic.Uint64)
		m.requests[endpoint] = c
	}
	return c
}

// promFamilies holds every /metrics family header pre-rendered once:
// scraping appends samples to static HELP/TYPE bytes instead of
// formatting them per scrape.
var promFamilies = struct {
	requests, reqDur, respSize, stageDur, queueWait,
	rcHits, rcMisses, rcEntries, aHits, aMisses, cpHits, cpMisses,
	inflight, rejected, shed, deadlines, panics, coalesced, queueDepth,
	jobsTotal, jobsActive, jobChunks, storeHits, storeKeys, storeBytes *telemetry.FamilyPrefab
}{
	requests: telemetry.NewFamilyPrefab("greenfpga_requests_total", "counter",
		"Requests received, by endpoint."),
	reqDur: telemetry.NewFamilyPrefab("greenfpga_request_duration_seconds", "histogram",
		"Wall-clock request duration, by endpoint and outcome."),
	respSize: telemetry.NewFamilyPrefab("greenfpga_response_size_bytes", "histogram",
		"Response body size, by endpoint."),
	stageDur: telemetry.NewFamilyPrefab("greenfpga_stage_duration_seconds", "histogram",
		"Accumulated time per request pipeline stage (decode, resolve, compute, encode)."),
	queueWait: telemetry.NewFamilyPrefab("greenfpga_queue_wait_seconds", "histogram",
		"Time spent queued for an evaluation slot (admitted and shed requests)."),
	rcHits: telemetry.NewFamilyPrefab("greenfpga_result_cache_hits_total", "counter",
		"Content-addressed result cache hits."),
	rcMisses: telemetry.NewFamilyPrefab("greenfpga_result_cache_misses_total", "counter",
		"Content-addressed result cache misses."),
	rcEntries: telemetry.NewFamilyPrefab("greenfpga_result_cache_entries", "gauge",
		"Resident result cache entries."),
	aHits: telemetry.NewFamilyPrefab("greenfpga_artifact_cache_hits_total", "counter",
		"Rendered-experiment cache hits."),
	aMisses: telemetry.NewFamilyPrefab("greenfpga_artifact_cache_misses_total", "counter",
		"Rendered-experiment cache misses."),
	cpHits: telemetry.NewFamilyPrefab("greenfpga_compiled_platform_cache_hits_total", "counter",
		"Compiled-platform cache hits."),
	cpMisses: telemetry.NewFamilyPrefab("greenfpga_compiled_platform_cache_misses_total", "counter",
		"Compiled-platform cache misses."),
	inflight: telemetry.NewFamilyPrefab("greenfpga_inflight_requests", "gauge",
		"Requests currently being served."),
	rejected: telemetry.NewFamilyPrefab("greenfpga_rejected_total", "counter",
		"Requests abandoned while waiting for a concurrency slot."),
	shed: telemetry.NewFamilyPrefab("greenfpga_shed_total", "counter",
		"Requests shed with 503 after the bounded queue wait elapsed."),
	deadlines: telemetry.NewFamilyPrefab("greenfpga_deadline_exceeded_total", "counter",
		"Requests answered 504 after overrunning their deadline."),
	panics: telemetry.NewFamilyPrefab("greenfpga_panics_total", "counter",
		"Handler panics recovered into internal-error envelopes."),
	coalesced: telemetry.NewFamilyPrefab("greenfpga_coalesced_total", "counter",
		"Requests that shared a concurrent identical evaluation (singleflight followers)."),
	queueDepth: telemetry.NewFamilyPrefab("greenfpga_queue_depth", "gauge",
		"Requests currently waiting for an evaluation slot."),
	jobsTotal: telemetry.NewFamilyPrefab("greenfpga_jobs_total", "counter",
		"Jobs by lifecycle event (submitted, resumed, done, failed, canceled)."),
	jobsActive: telemetry.NewFamilyPrefab("greenfpga_jobs_active", "gauge",
		"Jobs currently queued or running."),
	jobChunks: telemetry.NewFamilyPrefab("greenfpga_job_chunks_total", "counter",
		"Study chunks freshly computed vs served from a durable checkpoint."),
	storeHits: telemetry.NewFamilyPrefab("greenfpga_store_result_hits_total", "counter",
		"Synchronous requests answered from the durable store tier."),
	storeKeys: telemetry.NewFamilyPrefab("greenfpga_store_keys", "gauge",
		"Live keys in the durable store."),
	storeBytes: telemetry.NewFamilyPrefab("greenfpga_store_log_bytes", "gauge",
		"Durable store log size, split into live and garbage (superseded) bytes."),
}

// expositions pools scrape builders; the retained buffer grows to the
// page size once and is reused across scrapes.
var expositions = sync.Pool{New: func() any { return telemetry.NewExposition() }}

// writeMetrics renders the page in the Prometheus text exposition
// format via the telemetry builder — HELP/TYPE always precede
// samples, label values are escaped per the format, endpoints are
// sorted for deterministic output. The server's own tests parse this
// page with the strict checker, so it cannot drift from what real
// scrapers accept. Family headers are pre-rendered (promFamilies) and
// the builder is pooled, so a scrape formats only the sample values.
func (s *Server) writeMetrics(w io.Writer) error {
	s.m.mu.Lock()
	endpoints := make([]string, 0, len(s.m.requests))
	for ep := range s.m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	counts := make([]uint64, len(endpoints))
	for i, ep := range endpoints {
		counts[i] = s.m.requests[ep].Load()
	}
	s.m.mu.Unlock()

	e := expositions.Get().(*telemetry.Exposition)
	defer func() {
		e.Reset()
		expositions.Put(e)
	}()
	e.Prefab(promFamilies.requests)
	for i, ep := range endpoints {
		e.Sample(float64(counts[i]), "endpoint", ep)
	}
	e.Prefab(promFamilies.reqDur)
	for _, ser := range s.m.reqDur.Snapshots() {
		e.Histogram(ser.Snap, "endpoint", ser.Labels[0], "outcome", ser.Labels[1])
	}
	e.Prefab(promFamilies.respSize)
	for _, ser := range s.m.respSize.Snapshots() {
		e.Histogram(ser.Snap, "endpoint", ser.Labels[0])
	}
	e.Prefab(promFamilies.stageDur)
	for _, ser := range s.m.stageDur.Snapshots() {
		e.Histogram(ser.Snap, "stage", ser.Labels[0])
	}
	e.Prefab(promFamilies.queueWait)
	e.Histogram(s.m.queueWait.Snapshot())

	rcHits, rcMisses := s.results.Stats()
	e.Prefab(promFamilies.rcHits).Sample(float64(rcHits))
	e.Prefab(promFamilies.rcMisses).Sample(float64(rcMisses))
	e.Prefab(promFamilies.rcEntries).Sample(float64(s.results.Len()))
	aHits, aMisses := s.artifacts.Stats()
	e.Prefab(promFamilies.aHits).Sample(float64(aHits))
	e.Prefab(promFamilies.aMisses).Sample(float64(aMisses))
	cpHits, cpMisses := s.eval.CompileStats()
	e.Prefab(promFamilies.cpHits).Sample(float64(cpHits))
	e.Prefab(promFamilies.cpMisses).Sample(float64(cpMisses))
	e.Prefab(promFamilies.inflight).Sample(float64(s.m.inflight.Load()))
	e.Prefab(promFamilies.rejected).Sample(float64(s.m.rejected.Load()))
	e.Prefab(promFamilies.shed).Sample(float64(s.m.shed.Load()))
	e.Prefab(promFamilies.deadlines).Sample(float64(s.m.deadlines.Load()))
	e.Prefab(promFamilies.panics).Sample(float64(s.m.panics.Load()))
	e.Prefab(promFamilies.coalesced).Sample(float64(s.m.coalesced.Load()))
	e.Prefab(promFamilies.queueDepth).Sample(float64(s.limiter.Waiting()))
	if s.jobs != nil {
		js := s.jobs.Stats()
		e.Prefab(promFamilies.jobsTotal)
		e.Sample(float64(js.Submitted), "state", "submitted")
		e.Sample(float64(js.Resumed), "state", "resumed")
		e.Sample(float64(js.Done), "state", "done")
		e.Sample(float64(js.Failed), "state", "failed")
		e.Sample(float64(js.Canceled), "state", "canceled")
		e.Prefab(promFamilies.jobsActive)
		e.Sample(float64(js.Queued), "state", "queued")
		e.Sample(float64(js.Running), "state", "running")
		e.Prefab(promFamilies.jobChunks)
		e.Sample(float64(js.ChunksComputed), "kind", "computed")
		e.Sample(float64(js.ChunksSkipped), "kind", "skipped")
	}
	if s.store != nil {
		total, garbage := s.store.Size()
		e.Prefab(promFamilies.storeHits).Sample(float64(s.m.storeHits.Load()))
		e.Prefab(promFamilies.storeKeys).Sample(float64(s.store.Len()))
		e.Prefab(promFamilies.storeBytes)
		e.Sample(float64(total-garbage), "section", "live")
		e.Sample(float64(garbage), "section", "garbage")
	}
	_, err := e.WriteTo(w)
	return err
}
