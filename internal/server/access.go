package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"greenfpga/api"
	"greenfpga/internal/telemetry"
)

// statusWriter wraps the wire writer to record what the middleware
// stack ultimately sent — status code and body bytes — for the
// request-duration histogram and the access log. When the client
// opted into Server-Timing, it also injects the header at the first
// WriteHeader: for compute endpoints the buffered deadline writer
// flushes only after the handler goroutine finished, so every stage
// timer (encode included) has stopped by then.
type statusWriter struct {
	http.ResponseWriter
	timing *telemetry.Trace // non-nil → inject Server-Timing
	status int
	bytes  int64
}

// WriteHeader implements http.ResponseWriter; like the wire writer,
// only the first call sticks.
func (sw *statusWriter) WriteHeader(code int) {
	if sw.status != 0 {
		return
	}
	sw.status = code
	if sw.timing != nil {
		if v := sw.timing.ServerTiming(); v != "" {
			sw.Header().Set("Server-Timing", v)
		}
	}
	sw.ResponseWriter.WriteHeader(code)
}

// Write implements http.ResponseWriter.
func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.WriteHeader(http.StatusOK)
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// outcomeFor classifies a finished request for the duration
// histogram's outcome label. A trace-recorded outcome wins (the panic
// handler marks "panic" there, since any internal failure answers
// 500); then the status code and the X-Cache header decide. Status 0
// means nothing was written — the client went away while the request
// was queued or its handler was still running.
func outcomeFor(tr *telemetry.Trace, status int, cacheState string) string {
	if o := tr.Outcome(); o != "" {
		return o
	}
	switch {
	case status == 0, status == 499:
		return "canceled"
	case status == http.StatusServiceUnavailable:
		return "shed"
	case status == http.StatusGatewayTimeout:
		return "deadline"
	case status >= 500:
		return "error"
	case status >= 400:
		return "invalid"
	}
	switch cacheState {
	case "hit":
		return "cache-hit"
	case "coalesced":
		return "coalesced"
	}
	return "ok"
}

// accessLogger writes one-line JSON access records, serialized so
// concurrent requests never interleave lines.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// logBuffers pools the access-log encode buffers so a logged request
// allocates no per-line scratch (json.Encoder appends the newline the
// line format needs, where json.Marshal would cost a copy to add it).
var logBuffers = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeLine encodes v as one line and writes it under the logger's
// lock.
func (l *accessLogger) writeLine(v any) {
	buf := logBuffers.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		logBuffers.Put(buf)
	}()
	enc := json.NewEncoder(buf)
	if err := enc.Encode(v); err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(buf.Bytes())
}

// accessRecord is one access-log line. Durations are milliseconds —
// the human-scanning unit — while the histograms keep seconds, the
// Prometheus convention.
type accessRecord struct {
	Time    string             `json:"time"`
	ID      string             `json:"id"`
	Method  string             `json:"method"`
	Path    string             `json:"path"`
	Status  int                `json:"status"`
	Bytes   int64              `json:"bytes"`
	DurMS   float64            `json:"dur_ms"`
	Outcome string             `json:"outcome"`
	Cache   string             `json:"cache,omitempty"`
	Stages  map[string]float64 `json:"stages_ms,omitempty"`
}

// log renders and writes one record.
func (l *accessLogger) log(rec accessRecord) {
	if l == nil {
		return
	}
	l.writeLine(&rec)
}

// preamble writes the first line of an access log: which build is
// serving, where — so a rotated log file identifies its process
// without external context.
func (l *accessLogger) preamble(addr string) {
	if l == nil {
		return
	}
	v := api.BuildVersion()
	rec := struct {
		Time    string `json:"time"`
		Msg     string `json:"msg"`
		Addr    string `json:"addr"`
		Version string `json:"version"`
		Go      string `json:"go_version"`
		Rev     string `json:"revision,omitempty"`
		Dirty   bool   `json:"dirty,omitempty"`
	}{
		Time: time.Now().UTC().Format(time.RFC3339Nano), Msg: "serving",
		Addr: addr, Version: v.Version, Go: v.GoVersion, Rev: v.Revision, Dirty: v.Dirty,
	}
	l.writeLine(&rec)
}

// observe flushes one finished request into the telemetry surfaces:
// the per-endpoint duration and size histograms, the per-stage
// histograms, and the access log.
func (s *Server) observe(r *http.Request, sw *statusWriter, tr *telemetry.Trace,
	endpoint string, elapsed time.Duration) {
	outcome := outcomeFor(tr, sw.status, sw.Header().Get("X-Cache"))
	s.m.reqDur.With(endpoint, outcome).Observe(elapsed.Seconds())
	s.m.respSize.With(endpoint).Observe(float64(sw.bytes))
	stages := tr.Stages()
	for _, st := range stages {
		s.m.stageDur.With(st.Name).Observe(st.Duration.Seconds())
	}
	if s.access == nil {
		return
	}
	rec := accessRecord{
		Time: time.Now().UTC().Format(time.RFC3339Nano), ID: tr.ID,
		Method: r.Method, Path: r.URL.Path, Status: sw.status, Bytes: sw.bytes,
		DurMS:   float64(elapsed) / float64(time.Millisecond),
		Outcome: outcome, Cache: sw.Header().Get("X-Cache"),
	}
	if len(stages) > 0 {
		rec.Stages = make(map[string]float64, len(stages))
		for _, st := range stages {
			// Round to the 3 decimals ServerTiming uses; full float64
			// nanoseconds are noise in a log line.
			rec.Stages[st.Name] = roundMS(st.Duration)
		}
	}
	s.access.log(rec)
}

// roundMS renders a duration in milliseconds at microsecond grain.
func roundMS(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}
