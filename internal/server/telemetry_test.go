package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"greenfpga/api"
	"greenfpga/internal/telemetry"
)

// doRequest issues one request with extra headers, returning the
// response status, headers and body.
func doRequest(t *testing.T, method, url, body string, headers map[string]string) (int, http.Header, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// accessLines decodes an access-log buffer into one generic map per
// line. Reading after the response completed is safe: the telemetry
// wrapper logs before the handler returns, and net/http finishes the
// response only after that.
func accessLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		m := make(map[string]any)
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("access log line %q is not JSON: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// TestAccessLogRecords checks one line lands per request, with the
// method, path, status, outcome, cache verdict and per-stage timings a
// reader needs to reconstruct what the server did.
func TestAccessLogRecords(t *testing.T) {
	var buf bytes.Buffer
	_, hts := newTestServer(t, Options{AccessLog: &buf})

	postJSON(t, hts.URL+"/v1/evaluate", evaluateBody())
	postJSON(t, hts.URL+"/v1/evaluate", evaluateBody())
	postRaw(t, hts.URL+"/v1/evaluate", `{"unknown_field":1}`)
	get(t, hts.URL+"/healthz")

	lines := accessLines(t, &buf)
	if len(lines) != 4 {
		t.Fatalf("got %d access log lines, want 4:\n%s", len(lines), buf.String())
	}
	type want struct {
		method, path, outcome, cache string
		status                       float64
		stages                       []string
	}
	wants := []want{
		{"POST", "/v1/evaluate", "ok", "miss", 200, []string{"decode", "resolve", "compute", "encode"}},
		{"POST", "/v1/evaluate", "cache-hit", "hit", 200, []string{"decode", "encode"}},
		{"POST", "/v1/evaluate", "invalid", "", 400, []string{"decode"}},
		{"GET", "/healthz", "ok", "", 200, []string{"encode"}},
	}
	for i, w := range wants {
		l := lines[i]
		if l["method"] != w.method || l["path"] != w.path {
			t.Errorf("line %d: %v %v, want %s %s", i, l["method"], l["path"], w.method, w.path)
		}
		if l["status"] != w.status || l["outcome"] != w.outcome {
			t.Errorf("line %d: status=%v outcome=%v, want %g %q", i, l["status"], l["outcome"], w.status, w.outcome)
		}
		if w.cache == "" {
			if _, ok := l["cache"]; ok {
				t.Errorf("line %d: unexpected cache field %v", i, l["cache"])
			}
		} else if l["cache"] != w.cache {
			t.Errorf("line %d: cache=%v, want %q", i, l["cache"], w.cache)
		}
		id, _ := l["id"].(string)
		if !telemetry.ValidRequestID(id) || id == "" {
			t.Errorf("line %d: bad request id %v", i, l["id"])
		}
		if dur, ok := l["dur_ms"].(float64); !ok || dur < 0 {
			t.Errorf("line %d: bad dur_ms %v", i, l["dur_ms"])
		}
		stages, _ := l["stages_ms"].(map[string]any)
		for _, st := range w.stages {
			if _, ok := stages[st]; !ok {
				t.Errorf("line %d: stage %q missing from stages_ms %v", i, st, l["stages_ms"])
			}
		}
	}
}

// TestAccessLogPreamble starts a real listener and checks the log's
// first line identifies the build: a rotated file names its process
// without external context.
func TestAccessLogPreamble(t *testing.T) {
	var buf bytes.Buffer
	s, err := New(Options{Addr: "127.0.0.1:0", AccessLog: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	lines := accessLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d preamble lines, want 1", len(lines))
	}
	pre := lines[0]
	v := api.BuildVersion()
	if pre["msg"] != "serving" || pre["version"] != v.Version || pre["go_version"] != v.GoVersion {
		t.Errorf("preamble %v does not carry the build identity %+v", pre, v)
	}
	if addr, _ := pre["addr"].(string); !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Errorf("preamble addr %v, want a bound 127.0.0.1 address", pre["addr"])
	}
}

// TestRequestIDAcceptGenerateEcho checks the three ID paths: a valid
// client-sent ID is used verbatim, a missing one is generated, and an
// invalid one (unprintable or oversized) is replaced — the response
// header always carries the ID the access log recorded.
func TestRequestIDAcceptGenerateEcho(t *testing.T) {
	var buf bytes.Buffer
	_, hts := newTestServer(t, Options{AccessLog: &buf})

	_, hdr, _ := doRequest(t, http.MethodGet, hts.URL+"/healthz", "", map[string]string{
		"X-Request-ID": "chaos-run-42"})
	if got := hdr.Get("X-Request-ID"); got != "chaos-run-42" {
		t.Errorf("valid client ID: echoed %q, want it verbatim", got)
	}

	_, hdr, _ = doRequest(t, http.MethodGet, hts.URL+"/healthz", "", nil)
	generated := hdr.Get("X-Request-ID")
	if !telemetry.ValidRequestID(generated) || generated == "" {
		t.Errorf("missing client ID: generated %q is not a valid ID", generated)
	}

	bad := `evil"id` + strings.Repeat("x", 200)
	_, hdr, _ = doRequest(t, http.MethodGet, hts.URL+"/healthz", "", map[string]string{
		"X-Request-ID": bad})
	replaced := hdr.Get("X-Request-ID")
	if replaced == bad || !telemetry.ValidRequestID(replaced) {
		t.Errorf("invalid client ID: echoed %q, want a fresh valid ID", replaced)
	}

	lines := accessLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("got %d access lines, want 3", len(lines))
	}
	for i, want := range []string{"chaos-run-42", generated, replaced} {
		if lines[i]["id"] != want {
			t.Errorf("access line %d: id %v, want %q (the echoed header)", i, lines[i]["id"], want)
		}
	}
}

// TestServerTimingOptIn checks the Server-Timing header appears only
// when the client asks for it, and then carries every pipeline stage.
func TestServerTimingOptIn(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	body, err := json.Marshal(evaluateBody())
	if err != nil {
		t.Fatal(err)
	}

	_, hdr, _ := doRequest(t, http.MethodPost, hts.URL+"/v1/evaluate", string(body), nil)
	if got := hdr.Get("Server-Timing"); got != "" {
		t.Errorf("without opt-in: Server-Timing %q, want none", got)
	}

	_, hdr, _ = doRequest(t, http.MethodPost, hts.URL+"/v1/evaluate", string(body), map[string]string{
		"X-Server-Timing": "1"})
	st := hdr.Get("Server-Timing")
	// The second request is a cache hit: decode and encode ran, compute
	// did not.
	for _, stage := range []string{"decode;dur=", "encode;dur="} {
		if !strings.Contains(st, stage) {
			t.Errorf("opt-in Server-Timing %q missing %q", st, stage)
		}
	}
	if strings.Contains(st, "compute") {
		t.Errorf("cache-hit Server-Timing %q should not carry a compute stage", st)
	}
}

// TestVersionEndpoint checks /v1/version serves the same build
// identity the CLI prints and the preamble logs.
func TestVersionEndpoint(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, _, data := get(t, hts.URL+"/v1/version")
	if code != http.StatusOK {
		t.Fatalf("/v1/version: %d", code)
	}
	var got api.VersionInfo
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("/v1/version body %q: %v", data, err)
	}
	if want := api.BuildVersion(); got != want {
		t.Errorf("/v1/version = %+v, want %+v", got, want)
	}
}
