//go:build race

package server

// raceEnabled reports whether this binary was built with -race.
const raceEnabled = true
