package server

import (
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightCoalescesIdenticalMisses proves the acceptance
// behavior: N concurrent identical cache misses cost exactly one
// evaluation. A barrier in the compute wrap holds every request until
// all have arrived, so they reach the singleflight group together;
// the leader answers X-Cache: miss, the rest coalesced, and all
// bodies are byte-identical.
func TestSingleflightCoalescesIdenticalMisses(t *testing.T) {
	const n = 8
	var arrived sync.WaitGroup
	arrived.Add(n)
	_, hts := newTestServer(t, Options{
		ComputeWrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				arrived.Done()
				arrived.Wait()
				next.ServeHTTP(w, r)
			})
		},
	})
	// ~1s of Monte-Carlo per evaluation: long enough that every
	// request released by the barrier joins the live flight.
	const body = `{"samples":20000,"seed":11}`
	var wg sync.WaitGroup
	headers := make([]string, n)
	bodies := make([][]byte, n)
	for i := range n {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, hdr, data := postRaw(t, hts.URL+"/v1/mc", body)
			if code != http.StatusOK {
				t.Errorf("request %d: %d %s", i, code, data)
				return
			}
			headers[i] = hdr.Get("X-Cache")
			bodies[i] = data
		}(i)
	}
	wg.Wait()
	var misses, coalesced int
	for i, h := range headers {
		switch h {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("request %d: X-Cache=%q, want miss or coalesced", i, h)
		}
		if string(bodies[i]) != string(bodies[0]) {
			t.Errorf("request %d: body diverged from request 0", i)
		}
	}
	if misses != 1 {
		t.Errorf("%d evaluations ran, want exactly 1 (singleflight)", misses)
	}
	if coalesced != n-1 {
		t.Errorf("%d coalesced, want %d", coalesced, n-1)
	}
	if got := metricValue(t, hts, "greenfpga_coalesced_total"); got != n-1 {
		t.Errorf("greenfpga_coalesced_total = %d, want %d", got, n-1)
	}
}

// TestDeadlineCancelsCompute proves the other acceptance behavior: a
// compute overrunning its deadline answers a 504 deadline_exceeded
// envelope promptly, and the workers observe the cancellation — the
// handler goroutine finishes in seconds where the uncancelled
// evaluation (200k Monte-Carlo samples, ~10s) could not have.
func TestDeadlineCancelsCompute(t *testing.T) {
	handlerDone := make(chan time.Time, 1)
	_, hts := newTestServer(t, Options{
		RequestTimeout: 150 * time.Millisecond,
		ComputeWrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				next.ServeHTTP(w, r)
				handlerDone <- time.Now()
			})
		},
	})
	start := time.Now()
	code, _, data := postRaw(t, hts.URL+"/v1/mc", `{"samples":200000,"seed":1}`)
	responded := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d %s, want 504", code, data)
	}
	if e := decodeErr(t, data); e.Code != "deadline_exceeded" {
		t.Fatalf("envelope code = %q, want deadline_exceeded", e.Code)
	}
	if responded > 5*time.Second {
		t.Errorf("504 took %v, want shortly after the 150ms deadline", responded)
	}
	select {
	case at := <-handlerDone:
		if took := at.Sub(start); took > 8*time.Second {
			t.Errorf("compute kept running %v after cancellation", took)
		}
	case <-time.After(15 * time.Second):
		t.Error("compute never observed the canceled context")
	}
	if got := metricValue(t, hts, "greenfpga_deadline_exceeded_total"); got != 1 {
		t.Errorf("greenfpga_deadline_exceeded_total = %d, want 1", got)
	}
}

// TestShedWhenSaturated proves the load-shedding behavior (and the
// limiter-saturation satellite): with one slot held and a 100ms queue
// bound, the next request is shed with 503 + Retry-After within the
// wait bound, and the blocked request still completes.
func TestShedWhenSaturated(t *testing.T) {
	release := make(chan struct{})
	var first atomic.Bool
	_, hts := newTestServer(t, Options{
		MaxConcurrent: 1,
		MaxQueueWait:  100 * time.Millisecond,
		ComputeWrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if first.CompareAndSwap(false, true) {
					<-release
				}
				next.ServeHTTP(w, r)
			})
		},
	})
	blocked := make(chan int, 1)
	go func() {
		code, _, _ := postJSON(t, hts.URL+"/v1/evaluate", evaluateBody())
		blocked <- code
	}()
	// Wait until the first request holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for !first.Load() {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	code, hdr, data := postRaw(t, hts.URL+"/v1/crossover", `{"domain":"ImgProc"}`)
	waited := time.Since(start)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d %s, want 503", code, data)
	}
	if e := decodeErr(t, data); e.Code != "overloaded" {
		t.Errorf("envelope code = %q, want overloaded", e.Code)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q", ra, "1")
	}
	if waited < 100*time.Millisecond || waited > 3*time.Second {
		t.Errorf("shed after %v, want just past the 100ms queue bound", waited)
	}
	close(release)
	if code := <-blocked; code != http.StatusOK {
		t.Errorf("blocked request finished %d, want 200", code)
	}
	if got := metricValue(t, hts, "greenfpga_shed_total"); got != 1 {
		t.Errorf("greenfpga_shed_total = %d, want 1", got)
	}
}

// TestPanicRecoveredIntoEnvelope proves a panicking compute handler
// becomes a clean 500 internal envelope, is counted, and leaves the
// server serving.
func TestPanicRecoveredIntoEnvelope(t *testing.T) {
	_, hts := newTestServer(t, Options{
		ComputeWrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				panic("kaboom")
			})
		},
	})
	code, _, data := postJSON(t, hts.URL+"/v1/evaluate", evaluateBody())
	if code != http.StatusInternalServerError {
		t.Fatalf("status = %d %s, want 500", code, data)
	}
	e := decodeErr(t, data)
	if e.Code != "internal" || !strings.Contains(e.Message, "panic serving /v1/evaluate") {
		t.Fatalf("envelope = %+v, want internal panic message", e)
	}
	code, _, _ = get(t, hts.URL+"/healthz")
	if code != http.StatusOK {
		t.Error("server unhealthy after a recovered panic")
	}
	if got := metricValue(t, hts, "greenfpga_panics_total"); got != 1 {
		t.Errorf("greenfpga_panics_total = %d, want 1", got)
	}
}

// TestQueueWaitAdmitsWhenSlotFrees checks bounded queueing is a
// queue, not a door: a request arriving while the only slot is held
// is admitted (not shed) when the slot frees within the bound.
func TestQueueWaitAdmitsWhenSlotFrees(t *testing.T) {
	release := make(chan struct{})
	var first atomic.Bool
	_, hts := newTestServer(t, Options{
		MaxConcurrent: 1,
		MaxQueueWait:  5 * time.Second,
		ComputeWrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if first.CompareAndSwap(false, true) {
					<-release
				}
				next.ServeHTTP(w, r)
			})
		},
	})
	blocked := make(chan int, 1)
	go func() {
		code, _, _ := postJSON(t, hts.URL+"/v1/evaluate", evaluateBody())
		blocked <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !first.Load() {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}
	// Free the slot shortly after the second request queues.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	code, _, data := postRaw(t, hts.URL+"/v1/crossover", `{"domain":"ImgProc"}`)
	if code != http.StatusOK {
		t.Fatalf("queued request: %d %s, want 200 after the slot freed", code, data)
	}
	if got := <-blocked; got != http.StatusOK {
		t.Errorf("blocked request finished %d, want 200", got)
	}
}

// TestEndpointTimeoutOverride checks a per-endpoint deadline wins
// over the global one.
func TestEndpointTimeoutOverride(t *testing.T) {
	_, hts := newTestServer(t, Options{
		RequestTimeout:   50 * time.Millisecond,
		EndpointTimeouts: map[string]time.Duration{"/v1/mc": 30 * time.Second},
	})
	// ~1s of compute: over the 50ms global deadline, far under the
	// 30s override.
	code, _, data := postRaw(t, hts.URL+"/v1/mc", `{"samples":20000,"seed":4}`)
	if code != http.StatusOK {
		t.Fatalf("mc under override: %d %s, want 200", code, data)
	}
}

// TestBodyLimitEnvelope checks the 1 MiB body cap answers the
// dedicated message, not a raw decoder error.
func TestBodyLimitEnvelope(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	big := `{"filler":"` + strings.Repeat("x", maxBody+1024) + `"}`
	code, _, data := postRaw(t, hts.URL+"/v1/evaluate", big)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized body: %d, want 400", code)
	}
	e := decodeErr(t, data)
	if e.Code != "invalid_request" || !strings.Contains(e.Message, "exceeds the 1 MiB limit") {
		t.Fatalf("envelope = %+v, want the 1 MiB limit message", e)
	}
}
