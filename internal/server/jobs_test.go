package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"greenfpga/api"
	"greenfpga/internal/store"
)

// newJobServer is newTestServer plus a durable store in a temp dir.
func newJobServer(t *testing.T, dir string) (*Server, string) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, hts := newTestServer(t, Options{Store: st})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		_ = st.Close()
	})
	return s, hts.URL
}

// submitJob posts a job and returns its 202 status document.
func submitJob(t *testing.T, base, endpoint, request string) api.JobStatus {
	t.Helper()
	code, _, body := postRaw(t, base+"/v1/jobs",
		`{"endpoint": "`+endpoint+`", "request": `+request+`}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st api.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, base, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, _, body := get(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var st api.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return api.JobStatus{}
}

// TestJobResultMatchesSyncEndpoint is the end-to-end byte-identity
// contract: a job's result is exactly what the synchronous endpoint
// answers for the same request — and once the job is done, the
// synchronous endpoint itself serves those bytes from the store tier.
func TestJobResultMatchesSyncEndpoint(t *testing.T) {
	_, base := newJobServer(t, t.TempDir())
	const req = `{"domain": "DNN", "samples": 9000, "seed": 42}`

	st := submitJob(t, base, "mc", req)
	if st.State != "queued" && st.State != "running" {
		t.Fatalf("submitted state %q", st.State)
	}
	if st.Endpoint != "/v1/mc" || st.Chunks != 3 || st.Key == "" {
		t.Fatalf("submitted status: %+v", st)
	}
	fin := waitJob(t, base, st.ID)
	if fin.State != "done" || fin.ChunksDone != fin.Chunks {
		t.Fatalf("final status: %+v", fin)
	}

	code, h, jobBody := get(t, base+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, jobBody)
	}
	if h.Get("X-Cache") != "store" || h.Get("Content-Type") != "application/json" {
		t.Fatalf("result headers: %v", h)
	}

	// The synchronous endpoint must answer the job's bytes from the
	// durable tier without recomputing.
	code, h, syncBody := postRaw(t, base+"/v1/mc", req)
	if code != http.StatusOK {
		t.Fatalf("sync: %d %s", code, syncBody)
	}
	if h.Get("X-Cache") != "store" {
		t.Fatalf("sync request recomputed: X-Cache=%q", h.Get("X-Cache"))
	}
	if !bytes.Equal(jobBody, syncBody) {
		t.Fatalf("job result differs from sync response:\njob:  %.200s\nsync: %.200s", jobBody, syncBody)
	}
}

// TestStoreTierSurvivesRestart computes synchronously on one server,
// then serves the same request from a second server over the same
// store — the persistent result tier.
func TestStoreTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	const req = `{"domain": "Crypto", "samples": 2000, "seed": 5}`

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, hts1 := newTestServer(t, Options{Store: st1})
	code, h, first := postRaw(t, hts1.URL+"/v1/mc", req)
	if code != http.StatusOK || h.Get("X-Cache") != "miss" {
		t.Fatalf("first compute: %d X-Cache=%q", code, h.Get("X-Cache"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	_, base := newJobServer(t, dir)
	code, h, second := postRaw(t, base+"/v1/mc", req)
	if code != http.StatusOK {
		t.Fatalf("after restart: %d %s", code, second)
	}
	if h.Get("X-Cache") != "store" {
		t.Fatalf("after restart X-Cache=%q, want store (no recompute)", h.Get("X-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Fatal("restarted bytes differ")
	}
}

// TestJobNDJSONResult pins the streaming frame: an envelope line with
// the point count, then one point per line, together carrying the same
// points as the JSON document.
func TestJobNDJSONResult(t *testing.T) {
	_, base := newJobServer(t, t.TempDir())
	st := submitJob(t, base, "sweep",
		`{"domain": "DNN", "axis": "lifetime", "from": 1, "to": 10, "points": 2500}`)
	if fin := waitJob(t, base, st.ID); fin.State != "done" {
		t.Fatalf("final: %+v", fin)
	}

	_, _, jsonBody := get(t, base+"/v1/jobs/"+st.ID+"/result")
	var doc api.SweepResponse
	if err := json.Unmarshal(jsonBody, &doc); err != nil {
		t.Fatal(err)
	}

	code, h, nd := get(t, base+"/v1/jobs/"+st.ID+"/result?format=ndjson")
	if code != http.StatusOK {
		t.Fatalf("ndjson: %d %s", code, nd)
	}
	if ct := h.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("ndjson Content-Type %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(string(nd), "\n"), "\n")
	if len(lines) != 1+len(doc.Points) {
		t.Fatalf("%d ndjson lines for %d points", len(lines), len(doc.Points))
	}
	var env struct {
		Domain string `json:"domain"`
		Points int    `json:"points"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &env); err != nil {
		t.Fatal(err)
	}
	if env.Domain != doc.Domain || env.Points != len(doc.Points) {
		t.Fatalf("envelope %s vs doc %s/%d", lines[0], doc.Domain, len(doc.Points))
	}
	for _, i := range []int{0, len(doc.Points) - 1} {
		want, err := api.EncodeJSON(&doc.Points[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := lines[1+i] + "\n"; got != string(want) {
			t.Fatalf("point line %d %q != document point %q", i, got, want)
		}
	}

	// NDJSON framing is sweep-only.
	mc := submitJob(t, base, "mc", `{"domain": "DNN", "samples": 1000}`)
	waitJob(t, base, mc.ID)
	if code, _, body := get(t, base+"/v1/jobs/"+mc.ID+"/result?format=ndjson"); code != http.StatusBadRequest {
		t.Fatalf("mc ndjson: %d %s", code, body)
	}
}

// TestJobLifecycleEndpoints covers list, cancel-by-delete, and the
// error envelopes for unknown ids and not-done results.
func TestJobLifecycleEndpoints(t *testing.T) {
	_, base := newJobServer(t, t.TempDir())

	if code, _, body := postRaw(t, base+"/v1/jobs", `{"endpoint": "bogus", "request": {}}`); code != http.StatusBadRequest {
		t.Fatalf("bogus endpoint: %d %s", code, body)
	}
	if code, _, body := postRaw(t, base+"/v1/jobs", `{"request": {}}`); code != http.StatusBadRequest {
		t.Fatalf("missing endpoint: %d %s", code, body)
	}
	if code, _, _ := get(t, base+"/v1/jobs/deadbeef00000000"); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", code)
	}

	st := submitJob(t, base, "mc", `{"domain": "DNN", "samples": 5000, "seed": 1}`)
	code, _, body := get(t, base+"/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list api.JobList
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range list.Jobs {
		found = found || j.ID == st.ID
	}
	if !found {
		t.Fatalf("job %s missing from list %s", st.ID, body)
	}

	waitJob(t, base, st.ID)
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if code, _, _ := get(t, base+"/v1/jobs/"+st.ID); code != http.StatusNotFound {
		t.Fatalf("status after delete: %d", code)
	}
}

// TestShutdownRefusesJobSubmissions pins the drain ordering: once
// Shutdown begins, new submissions answer 503 while the jobs manager
// parks in-flight work resumable.
func TestShutdownRefusesJobSubmissions(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, hts := newTestServer(t, Options{Store: st})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, _, body := postRaw(t, hts.URL+"/v1/jobs",
		`{"endpoint": "mc", "request": {"domain": "DNN", "samples": 1000}}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit during shutdown: %d %s", code, body)
	}
	if e := decodeErr(t, body); e.Code != "overloaded" {
		t.Fatalf("error code %q", e.Code)
	}
}

// TestJobResumesAcrossRestart is the acceptance run: a 200k-sample
// Monte-Carlo job survives a server kill mid-study, resumes from its
// chunk checkpoints on a fresh process over the same store, and its
// final bytes are identical to the synchronous /v1/mc response — here
// computed independently by a storeless server, so the comparison
// cannot be satisfied by the durable tier echoing itself.
func TestJobResumesAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second Monte-Carlo study")
	}
	dir := t.TempDir()
	const req = `{"domain": "DNN", "samples": 200000, "seed": 7}`

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, hts1 := newTestServer(t, Options{Store: st1})
	sub := submitJob(t, hts1.URL, "mc", req)
	if sub.Chunks < 40 {
		t.Fatalf("200k samples produced only %d chunks; the kill window is too small", sub.Chunks)
	}

	// Let a few chunks checkpoint, then kill the server mid-study.
	var progressed int
	deadline := time.Now().Add(30 * time.Second)
	for progressed < 3 {
		if !time.Now().Before(deadline) {
			t.Fatal("job made no chunk progress")
		}
		code, _, body := get(t, hts1.URL+"/v1/jobs/"+sub.ID)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var st api.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done", "failed", "canceled":
			t.Fatalf("job reached %q before the kill; raise samples", st.State)
		}
		progressed = st.ChunksDone
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// The restarted process re-enqueues the parked job, serves the
	// checkpointed chunks from the store, and computes only the rest.
	s2, base := newJobServer(t, dir)
	fin := waitJob(t, base, sub.ID)
	if fin.State != "done" || fin.ChunksDone != fin.Chunks {
		t.Fatalf("resumed job: %+v", fin)
	}
	stats := s2.jobs.Stats()
	if stats.Resumed != 1 {
		t.Fatalf("resumed %d jobs, want 1", stats.Resumed)
	}
	if stats.ChunksSkipped < uint64(progressed) {
		t.Fatalf("resume skipped %d chunks, want >= %d (the pre-kill checkpoints)",
			stats.ChunksSkipped, progressed)
	}
	if stats.ChunksComputed >= uint64(fin.Chunks) {
		t.Fatalf("resume recomputed all %d chunks (%d computed)", fin.Chunks, stats.ChunksComputed)
	}
	code, _, jobBody := get(t, base+"/v1/jobs/"+sub.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, jobBody)
	}

	// Independent ground truth: a storeless server computes the same
	// request synchronously from scratch.
	_, plain := newTestServer(t, Options{})
	code, h, syncBody := postRaw(t, plain.URL+"/v1/mc", req)
	if code != http.StatusOK || h.Get("X-Cache") != "miss" {
		t.Fatalf("sync compute: %d X-Cache=%q", code, h.Get("X-Cache"))
	}
	if !bytes.Equal(jobBody, syncBody) {
		t.Fatalf("resumed job bytes differ from sync compute:\njob:  %.200s\nsync: %.200s", jobBody, syncBody)
	}
}

// TestMetricsIncludeJobFamilies asserts the scrape grows the job and
// store families when the durable tier is on.
func TestMetricsIncludeJobFamilies(t *testing.T) {
	_, base := newJobServer(t, t.TempDir())
	st := submitJob(t, base, "mc", `{"domain": "DNN", "samples": 5000, "seed": 3}`)
	waitJob(t, base, st.ID)
	_, _, page := get(t, base+"/metrics")
	for _, want := range []string{
		`greenfpga_jobs_total{state="done"} 1`,
		`greenfpga_jobs_total{state="submitted"} 1`,
		`greenfpga_job_chunks_total{kind="computed"} 2`,
		"greenfpga_store_keys ",
		`greenfpga_store_log_bytes{section="live"}`,
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}
