package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"greenfpga/api"
	"greenfpga/internal/store"
)

func TestRegionsEndpoint(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, _, data := get(t, hts.URL+"/v1/regions")
	if code != http.StatusOK {
		t.Fatalf("regions: %d", code)
	}
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, api.Regions()); err != nil {
		t.Fatal(err)
	}
	if string(data) != buf.String() {
		t.Error("/v1/regions differs from api.Regions()")
	}
	var rl api.RegionList
	if err := json.Unmarshal(data, &rl); err != nil {
		t.Fatal(err)
	}
	traced := 0
	for _, r := range rl.Regions {
		if r.Traced {
			traced++
		}
	}
	if traced < 4 {
		t.Errorf("registry lists %d traced regions, want >= 4", traced)
	}
}

func TestFleetEndpoint(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	const req = `{"regions": ["iceland", "taiwan", "oregon"], "shift": "daily"}`
	code, h, body := postRaw(t, hts.URL+"/v1/fleet", req)
	if code != http.StatusOK || h.Get("X-Cache") != "miss" {
		t.Fatalf("fleet miss: %d X-Cache=%q %s", code, h.Get("X-Cache"), body)
	}
	var resp api.FleetResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("fleet response: %v\n%s", err, body)
	}
	if resp.Domain != "DNN" || len(resp.Regions) != 3 || len(resp.Platforms) != 2 {
		t.Fatalf("fleet shape: %+v", resp)
	}
	if resp.Best.Region != "iceland" {
		t.Errorf("hydro grid must win, got %+v", resp.Best)
	}
	code, h, body2 := postRaw(t, hts.URL+"/v1/fleet", req)
	if code != http.StatusOK || h.Get("X-Cache") != "hit" {
		t.Fatalf("fleet hit: %d X-Cache=%q", code, h.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached fleet bytes differ from the miss")
	}
}

func TestFleetEndpointRejectsSitedSpecs(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, _, body := postRaw(t, hts.URL+"/v1/fleet",
		`{"platforms": [{"kind": "fpga", "use_region": "iceland"}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("sited platform spec must 400, got %d %s", code, body)
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Code != "invalid_request" {
		t.Errorf("envelope: %v %s", err, body)
	}
}

// TestFleetJobSurvivesRestart pins the durability contract for the
// trace-integrated study: a fleet job submitted to a -store service
// checkpoints per-region chunks, survives a shutdown/restart cycle,
// and its stored result is byte-identical to the synchronous /v1/fleet
// response computed from scratch by an independent storeless server.
func TestFleetJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	const req = `{"regions": ["oregon", "california", "texas", "virginia"], "shift": "daily"}`

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, hts1 := newTestServer(t, Options{Store: st1})
	sub := submitJob(t, hts1.URL, "fleet", req)
	if sub.Chunks != 4 {
		t.Fatalf("fleet job has %d chunks, want one per region (4)", sub.Chunks)
	}
	fin := waitJob(t, hts1.URL, sub.ID)
	if fin.State != "done" || fin.ChunksDone != fin.Chunks {
		t.Fatalf("fleet job: %+v", fin)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// The restarted process serves the finished study from the store.
	_, base := newJobServer(t, dir)
	code, _, jobBody := get(t, base+"/v1/jobs/"+sub.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result after restart: %d %s", code, jobBody)
	}

	// Independent ground truth: a storeless server computes the same
	// request synchronously from scratch.
	_, plain := newTestServer(t, Options{})
	code, h, syncBody := postRaw(t, plain.URL+"/v1/fleet", req)
	if code != http.StatusOK || h.Get("X-Cache") != "miss" {
		t.Fatalf("sync compute: %d X-Cache=%q", code, h.Get("X-Cache"))
	}
	if !bytes.Equal(jobBody, syncBody) {
		t.Fatalf("restarted fleet job bytes differ from sync compute:\njob:  %.200s\nsync: %.200s",
			jobBody, syncBody)
	}
}
