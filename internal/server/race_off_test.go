//go:build !race

package server

// raceEnabled reports whether this binary was built with -race; the
// allocation guard skips its strict budget there (the detector's
// shadow bookkeeping inflates counts).
const raceEnabled = false
