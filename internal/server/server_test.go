package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"greenfpga/api"
	"greenfpga/internal/config"
)

// newTestServer returns a service plus an httptest front end.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(hts.Close)
	return s, hts
}

// postJSON posts body (marshaled) and returns status and response
// bytes.
func postJSON(t *testing.T, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, body); err != nil {
		t.Fatal(err)
	}
	return postRaw(t, url, buf.String())
}

// postRaw posts a literal body.
func postRaw(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// get fetches a URL.
func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// decodeErr decodes an error envelope.
func decodeErr(t *testing.T, data []byte) api.Error {
	t.Helper()
	var e api.Error
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("not an error envelope: %q", data)
	}
	return e
}

// evaluateBody wraps the example config as an evaluate request.
func evaluateBody() *api.EvaluateRequest {
	return &api.EvaluateRequest{Scenario: config.Example()}
}

func TestHealthz(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, _, data := get(t, hts.URL+"/healthz")
	if code != http.StatusOK || string(data) != "{\"status\":\"ok\"}\n" {
		t.Errorf("healthz: %d %q", code, data)
	}
}

// TestEvaluateMatchesSharedCompute checks the endpoint returns
// exactly what the shared compute path (and therefore the CLI)
// produces.
func TestEvaluateMatchesSharedCompute(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, _, data := postJSON(t, hts.URL+"/v1/evaluate", evaluateBody())
	if code != http.StatusOK {
		t.Fatalf("evaluate: %d %s", code, data)
	}
	want, err := api.NewEvaluator(4).Evaluate(context.Background(), evaluateBody())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	if string(data) != buf.String() {
		t.Errorf("server response differs from shared compute:\n%s\nvs\n%s", data, buf.String())
	}
}

func TestEvaluateValidationErrors(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	for _, tc := range []struct {
		name, body string
		wantStatus int
		wantCode   string
	}{
		{"malformed", `{"scenario":`, http.StatusBadRequest, "invalid_request"},
		{"unknown field", `{"scenario":{"name":"x"},"bogus":1}`, http.StatusBadRequest, "invalid_request"},
		{"missing scenario", `{}`, http.StatusBadRequest, "invalid_request"},
		{"trailing data", `{"scenario":{"name":"x"}} garbage`, http.StatusBadRequest, "invalid_request"},
		{"no platforms", `{"scenario":{"name":"x","apps":[{"name":"a","lifetime_years":1,"volume":10}]}}`,
			http.StatusBadRequest, "invalid_request"},
		{"unknown device", `{"scenario":{"name":"x","fpga":{"device":"nope","duty_cycle":0.3},` +
			`"apps":[{"name":"a","lifetime_years":1,"volume":10}]}}`,
			http.StatusBadRequest, "invalid_request"},
	} {
		code, _, data := postRaw(t, hts.URL+"/v1/evaluate", tc.body)
		if code != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.wantStatus, data)
			continue
		}
		if e := decodeErr(t, data); e.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.name, e.Code, tc.wantCode)
		}
	}
	// Wrong method falls through to ServeMux's 405.
	code, _, _ := get(t, hts.URL+"/v1/evaluate")
	if code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate: %d, want 405", code)
	}
}

// metricValue extracts one un-labeled metric value from /metrics.
func metricValue(t *testing.T, hts *httptest.Server, name string) int {
	t.Helper()
	_, _, data := get(t, hts.URL+"/metrics")
	for _, line := range strings.Split(string(data), "\n") {
		var v int
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, data)
	return 0
}

func TestCacheHitMissCounters(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	if v := metricValue(t, hts, "greenfpga_result_cache_hits_total"); v != 0 {
		t.Fatalf("fresh server has %d hits", v)
	}

	code, hdr, first := postJSON(t, hts.URL+"/v1/evaluate", evaluateBody())
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first evaluate: %d X-Cache=%q", code, hdr.Get("X-Cache"))
	}
	code, hdr, second := postJSON(t, hts.URL+"/v1/evaluate", evaluateBody())
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("second evaluate: %d X-Cache=%q", code, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Error("cache hit returned different bytes")
	}
	if hits := metricValue(t, hts, "greenfpga_result_cache_hits_total"); hits != 1 {
		t.Errorf("hits %d, want 1", hits)
	}
	if misses := metricValue(t, hts, "greenfpga_result_cache_misses_total"); misses != 1 {
		t.Errorf("misses %d, want 1", misses)
	}

	// A semantically identical body with shuffled key order is the
	// same content address.
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, evaluateBody()); err != nil {
		t.Fatal(err)
	}
	var loose map[string]any
	if err := json.Unmarshal(buf.Bytes(), &loose); err != nil {
		t.Fatal(err)
	}
	reordered, err := json.Marshal(loose) // map marshaling re-sorts keys
	if err != nil {
		t.Fatal(err)
	}
	code, hdr, _ = postRaw(t, hts.URL+"/v1/evaluate", string(reordered))
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Errorf("reordered body: %d X-Cache=%q, want hit", code, hdr.Get("X-Cache"))
	}
}

func TestBatchEvaluate(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	good := evaluateBody()
	bad := &api.EvaluateRequest{Scenario: &api.ScenarioConfig{Name: "broken"}}
	code, _, data := postJSON(t, hts.URL+"/v1/evaluate/batch", &api.BatchEvaluateRequest{
		Requests: []api.EvaluateRequest{*good, *bad, *good},
	})
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, data)
	}
	var resp api.BatchEvaluateResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Response == nil || resp.Results[0].Error != nil {
		t.Errorf("item 0 should succeed: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != "invalid_request" {
		t.Errorf("item 1 should fail with invalid_request: %+v", resp.Results[1])
	}
	if resp.Results[2].Response == nil {
		t.Fatalf("item 2 should succeed: %+v", resp.Results[2])
	}
	a, _ := json.Marshal(resp.Results[0].Response)
	b, _ := json.Marshal(resp.Results[2].Response)
	if !bytes.Equal(a, b) {
		t.Error("identical batch items returned different results")
	}

	// The batch warmed the single-evaluate cache.
	_, hdr, _ := postJSON(t, hts.URL+"/v1/evaluate", good)
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("single evaluate after batch: X-Cache=%q, want hit", hdr.Get("X-Cache"))
	}

	// Empty and oversized batches are rejected.
	code, _, data = postJSON(t, hts.URL+"/v1/evaluate/batch", &api.BatchEvaluateRequest{})
	if code != http.StatusBadRequest {
		t.Errorf("empty batch: %d %s", code, data)
	}
}

// TestBatchUnderTightLimiter checks batches drain through a 1-slot
// limiter (per-item acquisition; a whole-batch slot would deadlock).
func TestBatchUnderTightLimiter(t *testing.T) {
	_, hts := newTestServer(t, Options{MaxConcurrent: 1})
	reqs := make([]api.EvaluateRequest, 8)
	for i := range reqs {
		cfg := config.Example()
		cfg.Name = fmt.Sprintf("tight-%d", i)
		reqs[i] = api.EvaluateRequest{Scenario: cfg}
	}
	code, _, data := postJSON(t, hts.URL+"/v1/evaluate/batch", &api.BatchEvaluateRequest{Requests: reqs})
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, data)
	}
	var resp api.BatchEvaluateResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	for i, item := range resp.Results {
		if item.Response == nil {
			t.Errorf("item %d failed: %+v", i, item.Error)
		}
	}
}

func TestCrossoverDefaultsAndNormalization(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, hdr, data := postRaw(t, hts.URL+"/v1/crossover", `{}`)
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("crossover {}: %d X-Cache=%q %s", code, hdr.Get("X-Cache"), data)
	}
	var resp api.CrossoverResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Domain != "DNN" || !resp.A2FNumApps.Found || resp.A2FNumApps.Value != 6 {
		t.Errorf("default crossover: %+v", resp)
	}
	// Spelling out the defaults lands on the same cache entry.
	code, hdr, _ = postRaw(t, hts.URL+"/v1/crossover",
		`{"domain":"DNN","lifetime_years":2,"napps":5,"volume":1e6,"max_apps":30}`)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Errorf("normalized crossover: %d X-Cache=%q, want hit", code, hdr.Get("X-Cache"))
	}
	code, _, data = postRaw(t, hts.URL+"/v1/crossover", `{"domain":"Quantum"}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown domain: %d %s", code, data)
	}
}

// TestLegacySpecSharedCacheEntry is the serve-side cache contract of
// the unified request model: a study posted in legacy form and then in
// its spec-form spelling lands on one cache entry — the second POST is
// an X-Cache hit with byte-identical body — on every retrofitted
// endpoint shape.
func TestLegacySpecSharedCacheEntry(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	for _, tc := range []struct {
		name, path, legacy, spec string
	}{
		{
			"sweep", "/v1/sweep",
			`{"domain":"DNN","axis":"napps","to":4}`,
			`{"axis":"napps","to":4,"platforms":[{"domain":"DNN","kind":"fpga"},{"domain":"DNN","kind":"asic"}],` +
				`"workload":{"lifetime_years":2,"volume":1e6}}`,
		},
		{
			"compare", "/v1/compare",
			`{"domain":"Crypto","platforms":["gpu","asic"],"napps":2,"max_apps":3}`,
			`{"platforms":[{"domain":"Crypto","kind":"gpu"},{"domain":"Crypto","kind":"asic"}],` +
				`"workload":{"napps":2,"lifetime_years":2,"volume":1e6},"max_apps":3}`,
		},
		{
			"crossover", "/v1/crossover",
			`{"domain":"DNN","platform_a":"fpga","platform_b":"gpu"}`,
			`{"platforms":[{"domain":"DNN","kind":"fpga"},{"domain":"DNN","kind":"gpu"}],` +
				`"workload":{"napps":5,"lifetime_years":2,"volume":1e6}}`,
		},
		{
			"timeline", "/v1/timeline",
			`{"napps":2,"platforms":["fpga","asic"],"chip_lifetime_years":8}`,
			`{"platforms":[{"domain":"DNN","kind":"fpga","chip_lifetime_years":8},` +
				`{"domain":"DNN","kind":"asic","chip_lifetime_years":8}],` +
				`"workload":{"sizing":"shared","deployments":[` +
				`{"name":"app1","lifetime_years":2,"volume":1e6},` +
				`{"name":"app2","start_years":0.5,"lifetime_years":2,"volume":1e6}]}}`,
		},
		{
			"mc", "/v1/mc",
			`{"samples":60,"seed":5,"napps":3}`,
			`{"samples":60,"seed":5,"platforms":["fpga","asic"],"workload":{"napps":3}}`,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, hdr, legacyBody := postRaw(t, hts.URL+tc.path, tc.legacy)
			if code != http.StatusOK {
				t.Fatalf("legacy body: %d %s", code, legacyBody)
			}
			if hdr.Get("X-Cache") != "miss" {
				t.Fatalf("legacy body: X-Cache=%q, want miss", hdr.Get("X-Cache"))
			}
			code, hdr, specBody := postRaw(t, hts.URL+tc.path, tc.spec)
			if code != http.StatusOK {
				t.Fatalf("spec body: %d %s", code, specBody)
			}
			if hdr.Get("X-Cache") != "hit" {
				t.Errorf("spec spelling missed the legacy cache entry (X-Cache=%q)", hdr.Get("X-Cache"))
			}
			if !bytes.Equal(legacyBody, specBody) {
				t.Errorf("legacy and spec responses differ:\n%s\nvs\n%s", legacyBody, specBody)
			}
		})
	}
	// Evaluate: the scenario document vs its spec spelling.
	cfg := config.Example()
	code, hdr, legacyBody := postJSON(t, hts.URL+"/v1/evaluate", evaluateBody())
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("legacy evaluate: %d X-Cache=%q", code, hdr.Get("X-Cache"))
	}
	code, hdr, specBody := postJSON(t, hts.URL+"/v1/evaluate", &api.EvaluateRequest{
		Name:      cfg.Name,
		Platforms: []api.PlatformSpec{{Config: cfg.FPGA}, {Config: cfg.ASIC}},
		Workload:  &api.WorkloadSpec{Apps: cfg.Apps},
	})
	if code != http.StatusOK {
		t.Fatalf("spec evaluate: %d %s", code, specBody)
	}
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("spec evaluate missed the scenario's cache entry (X-Cache=%q)", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(legacyBody, specBody) {
		t.Errorf("evaluate responses differ:\n%s\nvs\n%s", legacyBody, specBody)
	}
}

// TestSpecEndpointShapes covers the new spec-only studies over HTTP:
// platform-set sweeps carry per-platform totals, GPU-vs-FPGA mc
// echoes its pair, and a GPU platform routed at the legacy evaluate
// shape is rejected with a pointer to /v1/compare.
func TestSpecEndpointShapes(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, _, data := postRaw(t, hts.URL+"/v1/sweep",
		`{"axis":"napps","to":3,"platforms":["gpu","cpu"]}`)
	if code != http.StatusOK {
		t.Fatalf("set sweep: %d %s", code, data)
	}
	var sw api.SweepResponse
	if err := json.Unmarshal(data, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Platforms) != 2 || len(sw.Points) != 3 || len(sw.Points[0].TotalsKg) != 2 {
		t.Errorf("set sweep response: %+v", sw)
	}
	code, _, data = postRaw(t, hts.URL+"/v1/mc",
		`{"samples":40,"platforms":["gpu","fpga"]}`)
	if code != http.StatusOK {
		t.Fatalf("mc: %d %s", code, data)
	}
	var mc api.MonteCarloResponse
	if err := json.Unmarshal(data, &mc); err != nil {
		t.Fatal(err)
	}
	if mc.PlatformA != "gpu" || mc.PlatformB != "fpga" {
		t.Errorf("mc echoes: %+v", mc)
	}
	code, _, data = postRaw(t, hts.URL+"/v1/evaluate",
		`{"platforms":[{"domain":"DNN","kind":"gpu"},{"domain":"DNN","kind":"asic"}],`+
			`"workload":{"napps":1,"lifetime_years":1,"volume":10}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("gpu at evaluate: %d %s", code, data)
	}
	if e := decodeErr(t, data); e.Code != "invalid_request" || !strings.Contains(e.Message, "/v1/compare") {
		t.Errorf("gpu-at-evaluate error: %+v", e)
	}
}

func TestSweepAndMonteCarlo(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, _, data := postRaw(t, hts.URL+"/v1/sweep", `{"domain":"Crypto","axis":"lifetime","points":5}`)
	if code != http.StatusOK {
		t.Fatalf("sweep: %d %s", code, data)
	}
	var sw api.SweepResponse
	if err := json.Unmarshal(data, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 5 || sw.Domain != "Crypto" {
		t.Errorf("sweep response: %+v", sw)
	}
	code, _, data = postRaw(t, hts.URL+"/v1/mc", `{"samples":100,"seed":3}`)
	if code != http.StatusOK {
		t.Fatalf("mc: %d %s", code, data)
	}
	var mc api.MonteCarloResponse
	if err := json.Unmarshal(data, &mc); err != nil {
		t.Fatal(err)
	}
	if mc.Samples != 100 || mc.Seed != 3 || len(mc.Tornado) == 0 {
		t.Errorf("mc response: %+v", mc)
	}
	_, hdr, _ := postRaw(t, hts.URL+"/v1/mc", `{"seed":3,"samples":100}`)
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("repeated mc: X-Cache=%q, want hit", hdr.Get("X-Cache"))
	}
}

// TestCompareEndpoint covers the /v1/compare route: the response
// matches the shared compute byte-for-byte, a repeat request is a
// result-cache hit (normalized keying: an empty body and spelled-out
// defaults share one entry), and /metrics carries the per-endpoint
// request counter.
func TestCompareEndpoint(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, hdr, data := postRaw(t, hts.URL+"/v1/compare", `{}`)
	if code != http.StatusOK {
		t.Fatalf("compare: %d %s", code, data)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Errorf("first compare should miss, got %q", hdr.Get("X-Cache"))
	}
	want, err := api.RunCompare(api.CompareRequest{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	if string(data) != buf.String() {
		t.Errorf("server compare differs from shared compute:\n%s\nvs\n%s", data, buf.String())
	}
	// Spelled-out defaults normalize onto the same cache entry.
	code, hdr, data2 := postRaw(t, hts.URL+"/v1/compare",
		`{"domain":"DNN","napps":5,"lifetime_years":2,"volume":1e6,"max_apps":12}`)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Errorf("normalized repeat should hit: %d %q", code, hdr.Get("X-Cache"))
	}
	if string(data2) != string(data) {
		t.Error("cache hit returned a different document")
	}
	var resp api.CompareResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Platforms) != 4 || resp.Winner == "" || len(resp.Frontier) != 12 {
		t.Errorf("compare response shape: %+v", resp)
	}
	// Error envelope for bad selectors.
	code, _, data = postRaw(t, hts.URL+"/v1/compare", `{"platforms":["fpga","npu"]}`)
	if code != http.StatusBadRequest || decodeErr(t, data).Code != "invalid_request" {
		t.Errorf("bad selector: %d %s", code, data)
	}
	// The per-endpoint request counter counts all three requests.
	_, _, metrics := get(t, hts.URL+"/metrics")
	if !strings.Contains(string(metrics), `greenfpga_requests_total{endpoint="/v1/compare"} 3`) {
		t.Errorf("metrics missing the /v1/compare counter:\n%s", metrics)
	}
}

// TestTimelineEndpoint covers the /v1/timeline route: the response
// matches the shared compute byte-for-byte, the generator shorthand
// and its spelled-out deployment list share one cache entry, and
// /metrics carries the per-endpoint counter.
func TestTimelineEndpoint(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, hdr, data := postRaw(t, hts.URL+"/v1/timeline", `{}`)
	if code != http.StatusOK {
		t.Fatalf("timeline: %d %s", code, data)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Errorf("first timeline should miss, got %q", hdr.Get("X-Cache"))
	}
	want, err := api.RunTimeline(api.TimelineRequest{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	if string(data) != buf.String() {
		t.Errorf("server timeline differs from shared compute:\n%s\nvs\n%s", data, buf.String())
	}
	// The explicit-deployment spelling of the default staggered
	// timeline normalizes onto the same cache entry.
	explicit := `{"domain":"DNN","sizing":"shared","deployments":[` +
		`{"name":"app1","start_years":0,"lifetime_years":2,"volume":1e6},` +
		`{"name":"app2","start_years":0.5,"lifetime_years":2,"volume":1e6},` +
		`{"name":"app3","start_years":1,"lifetime_years":2,"volume":1e6},` +
		`{"name":"app4","start_years":1.5,"lifetime_years":2,"volume":1e6},` +
		`{"name":"app5","start_years":2,"lifetime_years":2,"volume":1e6}]}`
	code, hdr, data2 := postRaw(t, hts.URL+"/v1/timeline", explicit)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Errorf("normalized repeat should hit: %d %q", code, hdr.Get("X-Cache"))
	}
	if string(data2) != string(data) {
		t.Error("cache hit returned a different document")
	}
	var resp api.TimelineResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Platforms) != 4 || resp.Winner == "" || resp.SpanYears != 4 || resp.PeakConcurrent != 4 {
		t.Errorf("timeline response shape: %+v", resp)
	}
	// Error envelope for invalid requests.
	code, _, data = postRaw(t, hts.URL+"/v1/timeline", `{"sizing":"elastic"}`)
	if code != http.StatusBadRequest || decodeErr(t, data).Code != "invalid_request" {
		t.Errorf("bad sizing: %d %s", code, data)
	}
	code, _, data = postRaw(t, hts.URL+"/v1/timeline", `{"deployments":[{"lifetime_years":-1,"volume":1}]}`)
	if code != http.StatusBadRequest || decodeErr(t, data).Code != "invalid_request" {
		t.Errorf("bad deployment: %d %s", code, data)
	}
	// Unknown fields are rejected like every other endpoint.
	code, _, data = postRaw(t, hts.URL+"/v1/timeline", `{"bogus":1}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown field: %d %s", code, data)
	}
	_, _, metrics := get(t, hts.URL+"/metrics")
	if !strings.Contains(string(metrics), `greenfpga_requests_total{endpoint="/v1/timeline"} 5`) {
		t.Errorf("metrics missing the /v1/timeline counter:\n%s", metrics)
	}
}

// TestCrossoverPlatformSelectors covers the selector extension of the
// crossover endpoint end to end.
func TestCrossoverPlatformSelectors(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, _, data := postRaw(t, hts.URL+"/v1/crossover", `{"platform_a":"fpga","platform_b":"gpu"}`)
	if code != http.StatusOK {
		t.Fatalf("crossover with selectors: %d %s", code, data)
	}
	var resp api.CrossoverResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PlatformA != "fpga" || resp.PlatformB != "gpu" || !resp.A2FNumApps.Found {
		t.Errorf("selector crossover: %+v", resp)
	}
	code, _, data = postRaw(t, hts.URL+"/v1/crossover", `{"platform_a":"fpga"}`)
	if code != http.StatusBadRequest || decodeErr(t, data).Code != "invalid_request" {
		t.Errorf("half-set selectors: %d %s", code, data)
	}
}

func TestCatalogEndpoints(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, _, data := get(t, hts.URL+"/v1/devices")
	if code != http.StatusOK {
		t.Fatalf("devices: %d", code)
	}
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, api.Devices()); err != nil {
		t.Fatal(err)
	}
	if string(data) != buf.String() {
		t.Error("/v1/devices differs from api.Devices()")
	}
	code, _, data = get(t, hts.URL+"/v1/domains")
	if code != http.StatusOK || !strings.Contains(string(data), "ImgProc") {
		t.Errorf("domains: %d %s", code, data)
	}
	code, _, data = get(t, hts.URL+"/v1/experiments")
	if code != http.StatusOK || !strings.Contains(string(data), "table1") {
		t.Errorf("experiments: %d %s", code, data)
	}
}

func TestExperimentArtifact(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, hdr, data := get(t, hts.URL+"/v1/experiments/table3?format=text")
	if code != http.StatusOK || !strings.Contains(string(data), "IndustryASIC1") {
		t.Fatalf("table3 text: %d %s", code, data)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Errorf("first artifact fetch: X-Cache=%q", hdr.Get("X-Cache"))
	}
	_, hdr, again := get(t, hts.URL+"/v1/experiments/table3?format=text")
	if hdr.Get("X-Cache") != "hit" || !bytes.Equal(data, again) {
		t.Errorf("second artifact fetch: X-Cache=%q, equal=%v", hdr.Get("X-Cache"), bytes.Equal(data, again))
	}
	code, _, data = get(t, hts.URL+"/v1/experiments/table3")
	if code != http.StatusOK {
		t.Fatalf("table3 json: %d", code)
	}
	var res api.ExperimentResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != "table3" || len(res.Tables) == 0 {
		t.Errorf("json artifact: %+v", res)
	}
	code, _, data = get(t, hts.URL+"/v1/experiments/fig99")
	if code != http.StatusNotFound {
		t.Errorf("unknown experiment: %d %s", code, data)
	} else if e := decodeErr(t, data); e.Code != "not_found" {
		t.Errorf("unknown experiment code %q", e.Code)
	}
	code, _, _ = get(t, hts.URL+"/v1/experiments/table3?format=pdf")
	if code != http.StatusBadRequest {
		t.Errorf("bad format: %d", code)
	}
	// Artifact traffic must not touch the result-cache counters.
	if hits := metricValue(t, hts, "greenfpga_result_cache_hits_total"); hits != 0 {
		t.Errorf("artifact fetches leaked into result-cache hits: %d", hits)
	}
	if hits := metricValue(t, hts, "greenfpga_artifact_cache_hits_total"); hits != 1 {
		t.Errorf("artifact cache hits %d, want 1", hits)
	}
}

func TestSweepEmptyRangeRejected(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	code, _, data := postRaw(t, hts.URL+"/v1/sweep", `{"axis":"napps","from":10,"to":3}`)
	if code != http.StatusBadRequest {
		t.Fatalf("inverted range: %d %s", code, data)
	}
	if e := decodeErr(t, data); e.Code != "invalid_request" {
		t.Errorf("inverted range code %q", e.Code)
	}
}

// TestConcurrentRequests hammers the compute endpoints through a
// 2-slot limiter; every response must be a 200 and identical to its
// siblings (run under -race in CI).
func TestConcurrentRequests(t *testing.T) {
	_, hts := newTestServer(t, Options{MaxConcurrent: 2})
	const n = 16
	var wg sync.WaitGroup
	evalBodies := make([][]byte, n)
	crossBodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, data := postJSON(t, hts.URL+"/v1/evaluate", evaluateBody())
			if code == http.StatusOK {
				evalBodies[i] = data
			}
			code, _, data = postRaw(t, hts.URL+"/v1/crossover", `{"domain":"ImgProc"}`)
			if code == http.StatusOK {
				crossBodies[i] = data
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if evalBodies[i] == nil || !bytes.Equal(evalBodies[0], evalBodies[i]) {
			t.Fatalf("evaluate %d diverged or failed", i)
		}
		if crossBodies[i] == nil || !bytes.Equal(crossBodies[0], crossBodies[i]) {
			t.Fatalf("crossover %d diverged or failed", i)
		}
	}
}

// TestGracefulShutdown starts a real listener, verifies it serves,
// shuts down, and verifies in-flight drain plus refusal of new work.
func TestGracefulShutdown(t *testing.T) {
	s, err := New(Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	code, _, _ := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz before shutdown: %d", code)
	}

	// An in-flight request must complete during the drain.
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/mc", "application/json",
			strings.NewReader(`{"samples":20000,"seed":9}`))
		if err != nil {
			inflight <- -1
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		inflight <- resp.StatusCode
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-s.Done(); err != nil {
		t.Fatalf("serve loop: %v", err)
	}
	if code := <-inflight; code != http.StatusOK {
		t.Errorf("in-flight request during drain: %d, want 200", code)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("request after shutdown must fail")
	}
}
