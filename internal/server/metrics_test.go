package server

import (
	"net/http/httptest"
	"testing"

	"greenfpga/internal/telemetry"
)

// scrapeMetrics fetches the full /metrics page and runs it through the
// strict exposition parser, so any formatting drift — a sample without
// its HELP/TYPE, a duplicate series, a broken label quoting, an
// inconsistent histogram — fails the suite instead of a scraper.
func scrapeMetrics(t *testing.T, hts *httptest.Server) *telemetry.Scrape {
	t.Helper()
	code, _, data := get(t, hts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: status %d", code)
	}
	sc, err := telemetry.ParseExposition(string(data))
	if err != nil {
		t.Fatalf("/metrics does not parse strictly: %v\npage:\n%s", err, data)
	}
	return sc
}

// allOutcomes is every label value outcomeFor can produce.
var allOutcomes = []string{
	"ok", "cache-hit", "coalesced", "shed", "deadline",
	"panic", "canceled", "invalid", "error",
}

// durationCount sums one endpoint's request-duration samples across
// every outcome.
func durationCount(sc *telemetry.Scrape, endpoint string) float64 {
	var sum float64
	for _, o := range allOutcomes {
		if v, ok := sc.Value("greenfpga_request_duration_seconds_count",
			"endpoint", endpoint, "outcome", o); ok {
			sum += v
		}
	}
	return sum
}

// reconcileRequestDurations asserts the acceptance invariant: for each
// finished endpoint, the duration histogram holds exactly one sample
// per counted request — no request slips past the telemetry wrapper,
// and no unknown outcome label hides samples from the per-outcome sum.
func reconcileRequestDurations(t *testing.T, sc *telemetry.Scrape, endpoints []string) {
	t.Helper()
	for _, ep := range endpoints {
		total, ok := sc.Value("greenfpga_requests_total", "endpoint", ep)
		if !ok {
			t.Errorf("%s: no greenfpga_requests_total series", ep)
			continue
		}
		if got := durationCount(sc, ep); got != total {
			t.Errorf("%s: %g duration samples != %g requests counted", ep, got, total)
		}
	}
	// Page-wide, the only unreconciled request is the /metrics scrape
	// itself: counted on entry, observed only after this very page was
	// rendered.
	counted := sc.Total("greenfpga_requests_total")
	observed := sc.Total("greenfpga_request_duration_seconds_count")
	if counted-observed != 1 {
		t.Errorf("page-wide: %g counted - %g observed = %g, want exactly 1 (the live scrape)",
			counted, observed, counted-observed)
	}
}

// TestMetricsPageParsesStrictly drives a spread of outcomes through
// the server and strict-parses the resulting page: the telemetry
// families are present with their declared types, per-outcome duration
// series land where expected, the pipeline stages all recorded time,
// and the histograms reconcile with the request counters.
func TestMetricsPageParsesStrictly(t *testing.T) {
	_, hts := newTestServer(t, Options{})

	if code, _, _ := postJSON(t, hts.URL+"/v1/evaluate", evaluateBody()); code != 200 {
		t.Fatalf("first evaluate: %d", code)
	}
	if code, hdr, _ := postJSON(t, hts.URL+"/v1/evaluate", evaluateBody()); code != 200 || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("second evaluate: %d X-Cache=%q", code, hdr.Get("X-Cache"))
	}
	if code, _, _ := postRaw(t, hts.URL+"/v1/evaluate", `{"unknown_field":1}`); code != 400 {
		t.Fatalf("bad evaluate: %d", code)
	}
	if code, _, _ := get(t, hts.URL+"/healthz"); code != 200 {
		t.Fatal("healthz failed")
	}

	sc := scrapeMetrics(t, hts)
	for family, typ := range map[string]string{
		"greenfpga_requests_total":           "counter",
		"greenfpga_request_duration_seconds": "histogram",
		"greenfpga_response_size_bytes":      "histogram",
		"greenfpga_stage_duration_seconds":   "histogram",
		"greenfpga_queue_wait_seconds":       "histogram",
		"greenfpga_result_cache_hits_total":  "counter",
		"greenfpga_inflight_requests":        "gauge",
	} {
		if got := sc.Type(family); got != typ {
			t.Errorf("family %s: type %q, want %q", family, got, typ)
		}
	}

	// One sample per outcome the run produced, under the right label.
	for outcome, want := range map[string]float64{
		"ok": 1, "cache-hit": 1, "invalid": 1,
	} {
		got, ok := sc.Value("greenfpga_request_duration_seconds_count",
			"endpoint", "/v1/evaluate", "outcome", outcome)
		if !ok || got != want {
			t.Errorf("duration{/v1/evaluate,%s} = %g (present=%v), want %g", outcome, got, ok, want)
		}
	}

	// Every pipeline stage recorded time: decode and encode on each
	// evaluate, resolve and compute on the one cache miss.
	for _, stage := range []string{"decode", "resolve", "compute", "encode"} {
		if v, ok := sc.Value("greenfpga_stage_duration_seconds_count", "stage", stage); !ok || v < 1 {
			t.Errorf("stage %s: count %g (present=%v), want >= 1", stage, v, ok)
		}
	}

	// Response sizes were observed for the answered endpoints.
	if v, ok := sc.Value("greenfpga_response_size_bytes_count", "endpoint", "/v1/evaluate"); !ok || v != 3 {
		t.Errorf("response_size{/v1/evaluate} count = %g (present=%v), want 3", v, ok)
	}

	reconcileRequestDurations(t, sc, []string{"/healthz", "/v1/evaluate"})
}
