package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"greenfpga/api"
)

// computeBodies is one representative request per compute endpoint —
// the byte-identity matrix the hot path must hold for.
func computeBodies(t *testing.T) map[string]string {
	t.Helper()
	bodies := make(map[string]string)
	for path, v := range map[string]any{
		"/v1/evaluate":  evaluateBody(),
		"/v1/compare":   api.CompareRequest{Domain: "DNN"},
		"/v1/timeline":  api.TimelineRequest{Domain: "DNN"},
		"/v1/crossover": api.CrossoverRequest{Domain: "DNN"},
		"/v1/sweep":     api.SweepRequest{Domain: "DNN", Axis: "napps"},
		"/v1/mc":        api.MonteCarloRequest{Domain: "DNN", Samples: 200, Seed: 7},
	} {
		var buf bytes.Buffer
		if err := api.WriteJSON(&buf, v); err != nil {
			t.Fatal(err)
		}
		bodies[path] = buf.String()
	}
	return bodies
}

// TestHitBytesIdentical sends each compute endpoint the same request
// twice: the miss computes and encodes, the hit replays stored bytes.
// The two responses must be byte-identical — the invariant that makes
// the encoded-byte cache invisible to clients.
func TestHitBytesIdentical(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	for path, body := range computeBodies(t) {
		t.Run(strings.TrimPrefix(path, "/v1/"), func(t *testing.T) {
			code, h1, miss := postRaw(t, hts.URL+path, body)
			if code != http.StatusOK {
				t.Fatalf("miss: %d %s", code, miss)
			}
			if got := h1.Get("X-Cache"); got != "miss" {
				t.Errorf("first response X-Cache = %q, want miss", got)
			}
			code, h2, hit := postRaw(t, hts.URL+path, body)
			if code != http.StatusOK {
				t.Fatalf("hit: %d %s", code, hit)
			}
			if got := h2.Get("X-Cache"); got != "hit" {
				t.Errorf("second response X-Cache = %q, want hit", got)
			}
			if !bytes.Equal(miss, hit) {
				t.Errorf("hit bytes differ from miss bytes:\n%s\nvs\n%s", miss, hit)
			}
			if got := h2.Get("Content-Length"); got != strconv.Itoa(len(hit)) {
				t.Errorf("hit Content-Length = %q, body is %d bytes", got, len(hit))
			}
		})
	}
}

// TestHitBytesMatchGolden pins the cached bytes to the shared compute
// path's canonical encoding: what the cache replays is exactly what
// api.EncodeJSON produces for the evaluated envelope (same compact
// layout, EscapeHTML off, trailing newline) — so CLI output and
// server responses stay comparable with cmp.
func TestHitBytesMatchGolden(t *testing.T) {
	_, hts := newTestServer(t, Options{})
	body := computeBodies(t)["/v1/evaluate"]
	postRaw(t, hts.URL+"/v1/evaluate", body) // warm
	code, _, hit := postRaw(t, hts.URL+"/v1/evaluate", body)
	if code != http.StatusOK {
		t.Fatalf("hit: %d %s", code, hit)
	}
	norm := evaluateBody().Normalized()
	want, err := api.NewEvaluator(4).Evaluate(context.Background(), &norm)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := api.EncodeJSON(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hit, golden) {
		t.Errorf("cached bytes differ from EncodeJSON golden:\n%s\nvs\n%s", hit, golden)
	}
	if len(golden) == 0 || golden[len(golden)-1] != '\n' {
		t.Errorf("golden bytes missing trailing newline: %q", golden)
	}
}

// TestHitPathAllocs bounds per-request heap allocations on the
// cache-hit path, the floor the zero-copy work bought: a hit must
// never touch encoding/json, so a regression that re-encodes (or
// re-buffers) shows up here as a step change long before it shows in
// a benchmark. The budget includes the test's own per-run request and
// recorder construction, so it is deliberately loose — it exists to
// catch order-of-magnitude regressions, not to pin the exact count.
func TestHitPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	body := []byte(computeBodies(t)["/v1/evaluate"])
	do := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/evaluate", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	if rec := do(); rec.Code != http.StatusOK { // warm: the one real encode
		t.Fatalf("warm request: %d %s", rec.Code, rec.Body.Bytes())
	}
	if rec := do(); rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request not a hit: X-Cache=%q", rec.Header().Get("X-Cache"))
	}
	const budget = 120
	avg := testing.AllocsPerRun(200, func() { do() })
	if avg > budget {
		t.Errorf("cache-hit request allocates %.1f objects/run, budget %d", avg, budget)
	}
	t.Logf("cache-hit path: %.1f allocs/run (budget %d)", avg, budget)
}
