package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"greenfpga/api"
	"greenfpga/client"
	"greenfpga/internal/faults"
)

// chaosBodies is one valid request body per compute endpoint, plus a
// malformed variant exercised alongside them.
var chaosBodies = []struct {
	path string
	body string
}{
	{"/v1/evaluate", ""}, // filled with the example scenario at init
	{"/v1/evaluate/batch", ""},
	{"/v1/compare", `{}`},
	{"/v1/timeline", `{}`},
	{"/v1/crossover", `{"domain":"ImgProc"}`},
	{"/v1/sweep", `{"domain":"Crypto","axis":"lifetime","points":5}`},
	{"/v1/mc", `{"samples":100,"seed":3}`},
}

func init() {
	var eval string
	{
		b, err := json.Marshal(evaluateBody())
		if err != nil {
			panic(err)
		}
		eval = string(b)
	}
	chaosBodies[0].body = eval
	chaosBodies[1].body = fmt.Sprintf(`{"requests":[%s,%s]}`, eval, eval)
}

// TestChaosEnvelopesStayWellFormed drives every compute endpoint
// through a fault injector mixing panics, latency spikes and
// transient 503s, and checks the acceptance invariants: the server
// never crashes, every single response is either a success or a
// well-formed error envelope with a known code, and /metrics accounts
// for every injected panic.
func TestChaosEnvelopesStayWellFormed(t *testing.T) {
	inj := faults.New(42, faults.Plan{
		PanicRate:       0.15,
		LatencyRate:     0.10,
		Latency:         2 * time.Millisecond,
		UnavailableRate: 0.15,
	})
	_, hts := newTestServer(t, Options{ComputeWrap: inj.Wrap})

	const rounds = 25
	type result struct {
		path string
		code int
		body []byte
	}
	results := make(chan result, rounds*(len(chaosBodies)+1))
	var wg sync.WaitGroup
	for round := range rounds {
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			for _, ep := range chaosBodies {
				code, _, data := postRaw(t, hts.URL+ep.path, ep.body)
				results <- result{ep.path, code, data}
			}
			// A malformed body must stay a clean 400 even amid faults.
			code, _, data := postRaw(t, hts.URL+"/v1/evaluate", `{"unknown_field":1}`)
			results <- result{"/v1/evaluate(bad)", code, data}
		}(round)
	}
	wg.Wait()
	close(results)

	okCodes := map[string]bool{
		"invalid_request": true, "overloaded": true,
		"deadline_exceeded": true, "internal": true,
	}
	var total int
	for res := range results {
		total++
		switch {
		case res.code/100 == 2:
			if !json.Valid(res.body) {
				t.Errorf("%s: 2xx with invalid JSON: %q", res.path, res.body)
			}
		default:
			var e api.Error
			if err := json.Unmarshal(res.body, &e); err != nil || !okCodes[e.Code] {
				t.Errorf("%s: status %d with malformed envelope %q", res.path, res.code, res.body)
			}
		}
	}
	if want := rounds * (len(chaosBodies) + 1); total != want {
		t.Fatalf("collected %d responses, want %d", total, want)
	}
	// The server survived and still serves.
	if code, _, _ := get(t, hts.URL+"/healthz"); code != http.StatusOK {
		t.Error("server unhealthy after the chaos run")
	}
	// Every injected panic is accounted for on /metrics.
	if inj.Panics.Load() == 0 {
		t.Fatal("chaos run injected no panics; raise rounds or rates")
	}
	if got := metricValue(t, hts, "greenfpga_panics_total"); uint64(got) != inj.Panics.Load() {
		t.Errorf("greenfpga_panics_total = %d, injector panicked %d times", got, inj.Panics.Load())
	}
	// The duration histogram reconciles with the request counters even
	// under faults: every counted request — panicking, delayed, 503'd
	// by the injector — produced exactly one duration sample, and the
	// whole page still parses strictly.
	sc := scrapeMetrics(t, hts)
	eps := []string{"/healthz"}
	for _, ep := range chaosBodies {
		eps = append(eps, ep.path)
	}
	reconcileRequestDurations(t, sc, eps)
}

// TestChaosClientRetriesConverge closes the loop end to end: with the
// injector also truncating response bodies, a retrying client gets a
// correct answer from every endpoint despite panics and cut-short
// responses on the wire.
func TestChaosClientRetriesConverge(t *testing.T) {
	inj := faults.New(7, faults.Plan{
		PanicRate:    0.2,
		TruncateRate: 0.2,
		TruncateAt:   16,
	})
	_, hts := newTestServer(t, Options{ComputeWrap: inj.Wrap})
	c := client.New(hts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 12,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for round := range 3 {
		if _, err := c.Evaluate(ctx, evaluateBody()); err != nil {
			t.Errorf("round %d evaluate: %v", round, err)
		}
		if _, err := c.EvaluateBatch(ctx, &api.BatchEvaluateRequest{
			Requests: []api.EvaluateRequest{*evaluateBody()}}); err != nil {
			t.Errorf("round %d batch: %v", round, err)
		}
		if _, err := c.Compare(ctx, api.CompareRequest{}); err != nil {
			t.Errorf("round %d compare: %v", round, err)
		}
		if _, err := c.Timeline(ctx, api.TimelineRequest{}); err != nil {
			t.Errorf("round %d timeline: %v", round, err)
		}
		if _, err := c.Crossover(ctx, api.CrossoverRequest{Domain: "ImgProc"}); err != nil {
			t.Errorf("round %d crossover: %v", round, err)
		}
		if _, err := c.Sweep(ctx, api.SweepRequest{Domain: "Crypto", Axis: "lifetime", Points: 5}); err != nil {
			t.Errorf("round %d sweep: %v", round, err)
		}
		if _, err := c.MonteCarlo(ctx, api.MonteCarloRequest{Samples: 100, Seed: 3}); err != nil {
			t.Errorf("round %d mc: %v", round, err)
		}
	}
	if inj.Total() == 0 {
		t.Fatal("chaos run injected nothing; raise rounds or rates")
	}
}
