// Package server implements the `greenfpga serve` HTTP evaluation
// service: the api package's request/response types exposed at
// /v1/..., plus /healthz and /metrics.
//
// Request flow: every request is counted, compute endpoints pass
// through a bounded-wait concurrency limiter (a saturated server sheds
// load with 503 + Retry-After instead of queueing unboundedly) and a
// per-endpoint request deadline (overruns answer 504 with a
// deadline_exceeded envelope and cancel the compute context, which the
// api layer's sweeps, frontiers and Monte-Carlo workers observe), and
// each POST body is decoded strictly (unknown fields rejected) into
// its typed api request, normalized, and content-addressed with
// api.CanonicalKey. A hit in the result cache returns the stored
// response without re-evaluating; concurrent identical misses coalesce
// through a singleflight group so N waiters cost one evaluation (the
// followers answer X-Cache: coalesced); the leader computes through
// the shared api entry points — the same code the CLI runs — and
// caches the result. Handler panics are recovered into internal-error
// envelopes and counted instead of dropping the connection. Batch
// evaluation fans items out over internal/pool and shares the
// single-evaluate cache entries and singleflight keyspace, so a batch
// warms the cache for later singles and vice versa. Compiled platforms
// and experiment artifacts are likewise cached across requests (see
// api.Evaluator and the artifact cache here), so repeated and swept
// queries hit PR 1's compiled fast path or skip evaluation entirely.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"greenfpga/api"
	"greenfpga/internal/cache"
	"greenfpga/internal/experiments"
	"greenfpga/internal/jobs"
	"greenfpga/internal/pool"
	"greenfpga/internal/resilience"
	"greenfpga/internal/store"
	"greenfpga/internal/telemetry"
)

// maxBody bounds a request body (1 MiB): scenario documents are a few
// KiB, so anything larger is a mistake or abuse.
const maxBody = 1 << 20

// maxBatch bounds the items of one batch evaluate.
const maxBatch = 1024

// maxCachedSweepPoints bounds the sweep responses admitted to the
// result cache; larger ones are served but recomputed per request.
const maxCachedSweepPoints = 10_000

// Options configures a Server. Zero values take defaults.
type Options struct {
	// Addr is the listen address ("127.0.0.1:8080"; use port 0 for an
	// ephemeral port).
	Addr string
	// MaxConcurrent bounds the compute requests evaluated at once
	// (default 64); excess requests queue up to MaxQueueWait.
	MaxConcurrent int
	// CacheEntries bounds the content-addressed result cache
	// (default 1024).
	CacheEntries int
	// CompiledPlatforms bounds the compiled-platform cache
	// (default 256).
	CompiledPlatforms int
	// RequestTimeout is the wall-clock deadline of one compute request
	// (default 30s; negative disables). An overrun answers 504 with a
	// deadline_exceeded envelope and cancels the compute context.
	RequestTimeout time.Duration
	// EndpointTimeouts overrides RequestTimeout per endpoint path
	// (e.g. {"/v1/mc": 2 * time.Minute}).
	EndpointTimeouts map[string]time.Duration
	// MaxQueueWait bounds how long a compute request may wait for a
	// limiter slot before the server sheds it with 503 + Retry-After
	// (default 2s; negative queues without bound).
	MaxQueueWait time.Duration
	// ComputeWrap, when non-nil, wraps every compute handler innermost
	// — inside the deadline and panic-recovery middleware — so tests
	// can inject faults (panics, latency, truncation) exactly where a
	// misbehaving handler would produce them. Test-only.
	ComputeWrap func(http.Handler) http.Handler
	// AccessLog, when non-nil, receives one-line JSON access records —
	// request ID, method, path, status, bytes, duration, outcome,
	// per-stage timings — plus a build-identity preamble at Start.
	AccessLog io.Writer
	// PprofAddr, when non-empty, serves net/http/pprof on a separate
	// listener. It must resolve to a loopback address: the profiler
	// exposes heap contents and must never ride the service port or an
	// external interface.
	PprofAddr string
	// Store, when non-nil, enables the durable tier: computed results
	// persist across restarts (result-cache misses fall through to the
	// store before computing) and the /v1/jobs endpoints accept
	// asynchronous, checkpoint-resumable studies. The caller owns the
	// store's lifecycle and closes it after Shutdown returns.
	Store *store.Store
	// JobWorkers bounds concurrently running jobs (default 1 — each
	// chunk already parallelizes over the shared worker pool).
	JobWorkers int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:8080"
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.CompiledPlatforms <= 0 {
		o.CompiledPlatforms = 256
	}
	switch {
	case o.RequestTimeout == 0:
		o.RequestTimeout = 30 * time.Second
	case o.RequestTimeout < 0:
		o.RequestTimeout = 0 // disabled
	}
	switch {
	case o.MaxQueueWait == 0:
		o.MaxQueueWait = 2 * time.Second
	case o.MaxQueueWait < 0:
		o.MaxQueueWait = -1 // unbounded
	}
	return o
}

// timeoutFor resolves an endpoint's request deadline.
func (o Options) timeoutFor(endpoint string) time.Duration {
	if d, ok := o.EndpointTimeouts[endpoint]; ok {
		return d
	}
	return o.RequestTimeout
}

// Server is the GreenFPGA evaluation service.
type Server struct {
	opts    Options
	eval    *api.Evaluator
	results *cache.LRU
	// artifacts caches rendered experiments per (id, format),
	// separately from results so artifact traffic neither evicts
	// evaluation entries nor skews the result-cache metrics.
	artifacts *cache.LRU
	limiter   *resilience.Limiter
	// flight coalesces concurrent identical cache misses: N waiters on
	// one CanonicalKey cost exactly one evaluation.
	flight resilience.Group
	mux    *http.ServeMux
	m      metrics

	known map[string]bool // experiment IDs, for 404 vs 400

	access *accessLogger // nil without -access-log

	// store and jobs are the durable tier (nil without Options.Store):
	// finished results persist at result:<CanonicalKey> and the jobs
	// manager checkpoints asynchronous studies into the same store.
	store *store.Store
	jobs  *jobs.Manager

	hs      *http.Server
	ln      net.Listener
	pprofHS *http.Server
	pprofLn net.Listener
	done    chan error
}

// New builds a Server; call Handler for an http.Handler (tests) or
// Start/Shutdown to run it. It fails only when the durable tier cannot
// start (a corrupt job record queue overflowing, which recovery
// surfaces here rather than at first submission).
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts: opts,
		eval: api.NewEvaluator(opts.CompiledPlatforms),
		// ~24 experiment IDs x 4 formats bounds the artifact space.
		artifacts: cache.New(128),
		results:   cache.New(opts.CacheEntries),
		limiter:   resilience.NewLimiter(opts.MaxConcurrent),
		known:     make(map[string]bool),
	}
	for _, id := range experiments.List() {
		s.known[id] = true
	}
	s.m.init()
	if opts.AccessLog != nil {
		s.access = &accessLogger{w: opts.AccessLog}
	}
	s.mux = http.NewServeMux()
	s.route("GET /healthz", "/healthz", false, false, s.handleHealthz)
	s.route("GET /metrics", "/metrics", false, false, s.handleMetrics)
	s.route("GET /v1/version", "/v1/version", false, false, s.handleVersion)
	s.route("GET /v1/devices", "/v1/devices", false, false, s.handleDevices)
	s.route("GET /v1/domains", "/v1/domains", false, false, s.handleDomains)
	s.route("GET /v1/regions", "/v1/regions", false, false, s.handleRegions)
	s.route("GET /v1/experiments", "/v1/experiments", false, false, s.handleExperimentList)
	s.route("GET /v1/experiments/{id}", "/v1/experiments/{id}", true, true, s.handleExperiment)
	s.route("POST /v1/evaluate", "/v1/evaluate", true, true, s.handleEvaluate)
	// The batch endpoint is not limited as a whole: it charges the
	// limiter per item inside the fan-out, so -max-concurrent bounds
	// actual concurrent evaluations across every request shape (a
	// whole-batch slot would both under-count the work and deadlock
	// against per-item slots). It still gets the compute stack — one
	// deadline over the whole batch, panic recovery, fault wrap.
	s.route("POST /v1/evaluate/batch", "/v1/evaluate/batch", false, true, s.handleBatch)
	s.route("POST /v1/compare", "/v1/compare", true, true, s.handleCompare)
	s.route("POST /v1/timeline", "/v1/timeline", true, true, s.handleTimeline)
	s.route("POST /v1/crossover", "/v1/crossover", true, true, s.handleCrossover)
	s.route("POST /v1/sweep", "/v1/sweep", true, true, s.handleSweep)
	s.route("POST /v1/mc", "/v1/mc", true, true, s.handleMonteCarlo)
	s.route("POST /v1/fleet", "/v1/fleet", true, true, s.handleFleet)
	if opts.Store != nil {
		s.store = opts.Store
		mgr, err := jobs.New(jobs.Options{
			Store:   opts.Store,
			Build:   jobs.EvaluatorBuilder(s.eval),
			Workers: opts.JobWorkers,
		})
		if err != nil {
			return nil, err
		}
		s.jobs = mgr
		// Job endpoints are not limiter-gated: submission and polling
		// are metadata operations, and the study itself executes on the
		// manager's workers, not in-request. They are registered only
		// with a store — an async job must outlive the process that
		// accepted it, which requires the durable tier.
		s.route("POST /v1/jobs", "/v1/jobs", false, false, s.handleJobSubmit)
		s.route("GET /v1/jobs", "/v1/jobs", false, false, s.handleJobList)
		s.route("GET /v1/jobs/{id}", "/v1/jobs/{id}", false, false, s.handleJobStatus)
		s.route("GET /v1/jobs/{id}/result", "/v1/jobs/{id}/result", false, false, s.handleJobResult)
		s.route("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", false, false, s.handleJobDelete)
	}
	return s, nil
}

// route registers a handler behind the middleware stack, outermost
// first: the telemetry wrapper (request ID accept-or-generate, trace
// context, duration/size/stage histograms, the access log), request
// counting, bounded-wait concurrency limiting (limited endpoints;
// saturation sheds with 503 + Retry-After), the request deadline
// (compute endpoints; overruns answer 504 and cancel the compute
// context), panic recovery (all endpoints; panics answer 500 internal
// envelopes and are counted), and the test-only fault wrap (compute
// endpoints, innermost — where a misbehaving handler would fault).
// The deadline middleware runs its inner handler on a child goroutine
// against a buffered writer, so recovery sits inside it: a panicking
// compute handler is recovered on that goroutine and its half-written
// buffer replaced with a clean envelope. The telemetry wrapper sits
// outside everything so a shed, timed-out or panicking request is
// observed like any other.
func (s *Server) route(pattern, endpoint string, limited, compute bool, h http.HandlerFunc) {
	var inner http.Handler = h
	if compute && s.opts.ComputeWrap != nil {
		inner = s.opts.ComputeWrap(inner)
	}
	inner = resilience.Recover(inner, s.onPanic)
	if compute {
		inner = resilience.Deadline(s.opts.timeoutFor(endpoint), inner, s.onDeadline)
	}
	ctr := s.m.counter(endpoint)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if !telemetry.ValidRequestID(id) {
			id = telemetry.NewRequestID()
		}
		tr := telemetry.NewTrace(id)
		r = r.WithContext(telemetry.WithTrace(r.Context(), tr))
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-ID", id)
		if r.Header.Get("X-Server-Timing") != "" {
			sw.timing = tr
		}
		defer func() { s.observe(r, sw, tr, endpoint, time.Since(start)) }()
		ctr.Add(1)
		s.m.inflight.Add(1)
		defer s.m.inflight.Add(-1)
		if limited {
			wait, err := s.limiter.AcquireWait(r.Context(), s.opts.MaxQueueWait)
			s.m.queueWait.Observe(wait.Seconds())
			if err != nil {
				if errors.Is(err, resilience.ErrShed) {
					s.m.shed.Add(1)
					s.writeShed(sw)
				} else {
					// The client gave up while queued; nothing to write.
					s.m.rejected.Add(1)
				}
				return
			}
			defer s.limiter.Release()
		}
		inner.ServeHTTP(sw, r)
	})
}

// onPanic converts a recovered handler panic into an internal-error
// envelope. Under the deadline middleware the writer is buffered, so a
// half-written response is reset cleanly before the envelope.
func (s *Server) onPanic(w http.ResponseWriter, r *http.Request, v any) {
	s.m.panics.Add(1)
	// Status alone cannot tell a panic from any other internal error;
	// the trace outcome can.
	telemetry.FromContext(r.Context()).SetOutcome("panic")
	if rw, ok := w.(interface{ Reset() }); ok {
		rw.Reset()
	}
	s.writeError(w, &api.Error{Code: "internal",
		Message: fmt.Sprintf("panic serving %s: %v", r.URL.Path, v)})
}

// onDeadline answers a request whose handler overran its deadline.
func (s *Server) onDeadline(w http.ResponseWriter, r *http.Request) {
	s.m.deadlines.Add(1)
	s.writeError(w, &api.Error{Code: "deadline_exceeded",
		Message: "request deadline exceeded before the evaluation finished"})
}

// writeShed answers a request shed by the saturated limiter: 503 with
// a Retry-After hint sized to the queue-wait bound.
func (s *Server) writeShed(w http.ResponseWriter) {
	after := int64(1)
	if wait := s.opts.MaxQueueWait; wait > time.Second {
		after = int64((wait + time.Second - 1) / time.Second)
	}
	w.Header().Set("Retry-After", strconv.FormatInt(after, 10))
	s.writeError(w, &api.Error{Code: "overloaded",
		Message: "saturated: no evaluation slot freed within the queue-wait bound; retry later"})
}

// Handler returns the service's http.Handler (for httptest and
// embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on the configured address and serves in the
// background, returning the bound address (which resolves port 0).
// With PprofAddr set it also starts the loopback-only profiler
// listener, and with an access log configured it writes the
// build-identity preamble.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	if s.opts.PprofAddr != "" {
		if err := s.startPprof(); err != nil {
			ln.Close()
			return "", err
		}
	}
	s.access.preamble(ln.Addr().String())
	s.hs = &http.Server{
		Handler: s.mux,
		// A client that dribbles its headers (or never sends them)
		// must not hold a connection forever; idle keep-alive
		// connections are likewise bounded.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	s.done = make(chan error, 1)
	go func() {
		err := s.hs.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	return ln.Addr().String(), nil
}

// Done reports the Serve loop's exit (nil after a clean Shutdown).
func (s *Server) Done() <-chan error { return s.done }

// startPprof serves net/http/pprof on its own listener with its own
// mux — never the service mux, so the profiler cannot leak onto the
// service port, and never DefaultServeMux, so nothing else leaks onto
// the profiler port. The address must resolve to loopback.
func (s *Server) startPprof() error {
	host, _, err := net.SplitHostPort(s.opts.PprofAddr)
	if err != nil {
		return fmt.Errorf("pprof addr: %w", err)
	}
	if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
		return fmt.Errorf("pprof addr %q is not loopback; the profiler exposes heap contents and must stay local", s.opts.PprofAddr)
	}
	ln, err := net.Listen("tcp", s.opts.PprofAddr)
	if err != nil {
		return fmt.Errorf("pprof listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.pprofLn = ln
	s.pprofHS = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.pprofHS.Serve(ln) }()
	return nil
}

// PprofAddr returns the profiler's bound address ("" when disabled).
func (s *Server) PprofAddr() string {
	if s.pprofLn == nil {
		return ""
	}
	return s.pprofLn.Addr().String()
}

// Shutdown stops the service in dependency order: new job submissions
// are refused first (503, so nothing durable is accepted that the
// dying process cannot run), then the HTTP listener drains in-flight
// requests, then the jobs manager interrupts running studies after
// their current chunk — parking them resumable in the store and
// syncing it — so the caller can close the store last. Everything is
// bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.pprofHS != nil {
		_ = s.pprofHS.Close()
	}
	if s.jobs != nil {
		s.jobs.Drain()
	}
	var err error
	if s.hs != nil {
		err = s.hs.Shutdown(ctx)
	}
	if s.jobs != nil {
		if jerr := s.jobs.Shutdown(ctx); err == nil {
			err = jerr
		}
	}
	return err
}

// writeJSON writes v as the service's canonical JSON, timing the
// encode stage on the request's trace.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	defer telemetry.StartStage(r.Context(), "encode")()
	w.Header().Set("Content-Type", "application/json")
	if err := api.WriteJSON(w, v); err != nil {
		// The header is gone; nothing recoverable remains.
		return
	}
}

// status maps an error code to its HTTP status.
func status(code string) int {
	switch code {
	case "invalid_request":
		return http.StatusBadRequest
	case "not_found":
		return http.StatusNotFound
	case "overloaded":
		return http.StatusServiceUnavailable
	case "deadline_exceeded":
		return http.StatusGatewayTimeout
	case "canceled":
		// 499 Client Closed Request (nginx convention): the client
		// abandoned the request; usually no one reads this.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// writeError writes the JSON error envelope.
func (s *Server) writeError(w http.ResponseWriter, e *api.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status(e.Code))
	_ = api.WriteJSON(w, e)
}

// decodeJSON strictly decodes the request body into dst, writing the
// validation error itself when the body is malformed.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	defer telemetry.StartStage(r.Context(), "decode")()
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, &api.Error{Code: "invalid_request",
				Message: "request body exceeds the 1 MiB limit"})
			return false
		}
		s.writeError(w, &api.Error{Code: "invalid_request", Message: "bad request body: " + err.Error()})
		return false
	}
	if dec.More() {
		s.writeError(w, &api.Error{Code: "invalid_request", Message: "bad request body: trailing data"})
		return false
	}
	return true
}

// deadFlight reports a flight result that died with its leader — a
// context error or panic belonging to the leader's request — rather
// than a verdict about the computation itself. A follower whose own
// context is still live should retry such a flight.
func deadFlight(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, resilience.ErrLeaderPanic)
}

// computeCoalesced runs compute through the singleflight group: the
// first caller of a key evaluates while everyone who arrives during
// the flight shares the result (shared=true, counted as coalesced).
// A flight that died with its leader — the leader's deadline fired,
// its client hung up, its handler panicked — proves nothing about the
// request, so a follower whose own context is still live starts a
// fresh flight instead of inheriting the corpse.
func (s *Server) computeCoalesced(ctx context.Context, key string,
	compute func() (any, error)) (v any, err error, shared bool) {
	for {
		v, err, shared = s.flight.Do(key, compute)
		if shared && err != nil && deadFlight(err) && ctx.Err() == nil {
			continue
		}
		if shared {
			s.m.coalesced.Add(1)
		}
		return v, err, shared
	}
}

// cachedResponse is what the result cache retains: the response
// envelope pre-encoded to its canonical wire bytes, plus the decoded
// value for callers that embed rather than stream it (the batch
// handler) and for admission predicates. The bytes are immutable once
// cached — every hit writes the same slice, which is what makes
// miss-then-hit responses byte-identical by construction.
type cachedResponse struct {
	body []byte // canonical JSON incl. trailing newline; never mutated
	val  any    // the decoded response the bytes encode
}

// writeCached answers with a pre-encoded envelope: one Write, no
// marshaling. The encode stage is still timed so the stage histogram
// shows what the byte cache removed (~0 on hits vs the miss path's
// real marshal).
func (s *Server) writeCached(w http.ResponseWriter, r *http.Request, state string, cr *cachedResponse) {
	defer telemetry.StartStage(r.Context(), "encode")()
	h := w.Header()
	h.Set("X-Cache", state)
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(cr.body)))
	_, _ = w.Write(cr.body)
}

// encodeResponse marshals a computed envelope into its cachedResponse
// form, timing the encode stage on the computing request's trace.
func encodeResponse(ctx context.Context, v any) (*cachedResponse, error) {
	stop := telemetry.StartStage(ctx, "encode")
	body, err := api.EncodeJSON(v)
	stop()
	if err != nil {
		return nil, err
	}
	return &cachedResponse{body: body, val: v}, nil
}

// serveCached answers from the content-addressed result cache, or
// computes, caches and answers; concurrent identical misses coalesce
// onto one evaluation through the singleflight group, with the
// followers marked X-Cache: coalesced. req must already be normalized
// — it is the content being addressed. A non-nil cacheIf gates
// admission (for responses too large to be worth pinning).
//
// The cache stores encoded bytes, not decoded values: a hit (and a
// coalesced follower — the flight's result is the leader's encoded
// envelope) is a single Write that never touches encoding/json.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint string, req any,
	compute func(ctx context.Context) (any, error), cacheIf func(any) bool) {
	key, err := api.CanonicalKey(endpoint, req)
	if err != nil {
		s.writeError(w, &api.Error{Code: "internal", Message: err.Error()})
		return
	}
	if v, ok := s.results.Get(key); ok {
		s.writeCached(w, r, "hit", v.(*cachedResponse))
		return
	}
	// The durable tier sits under the LRU: a result computed before a
	// restart — or finished by an asynchronous job — serves without
	// recomputing. It answers bytes only (the decoded value is gone
	// with the old process), so it must not enter the LRU, whose batch
	// consumers type-assert the decoded value.
	if s.store != nil {
		if body, ok, err := s.store.Get("result:" + key); err == nil && ok {
			s.m.storeHits.Add(1)
			s.writeCached(w, r, "store", &cachedResponse{body: body})
			return
		}
	}
	v, err, shared := s.computeCoalesced(r.Context(), key, func() (any, error) {
		out, err := compute(r.Context())
		if err != nil {
			return nil, err
		}
		return encodeResponse(r.Context(), out)
	})
	if err != nil {
		s.writeError(w, api.ToError(err))
		return
	}
	cr := v.(*cachedResponse)
	state := "coalesced"
	if !shared {
		state = "miss"
		if cacheIf == nil || cacheIf(cr.val) {
			s.results.Put(key, cr)
			// Persist under the same admission predicate, so the next
			// process (or an eviction) finds it in the durable tier.
			if s.store != nil {
				_ = s.store.Put("result:"+key, cr.body)
			}
		}
	}
	s.writeCached(w, r, state, cr)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, api.Health{Status: "ok"})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, api.BuildVersion())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.writeMetrics(w)
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, api.Devices())
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, api.Domains())
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, api.Regions())
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, api.Experiments())
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req api.EvaluateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	// Keying on the normalized request makes a legacy scenario body
	// and its spec spelling one cache entry.
	norm := req.Normalized()
	s.serveCached(w, r, "/v1/evaluate", &norm, func(ctx context.Context) (any, error) {
		return s.eval.Evaluate(ctx, &norm)
	}, nil)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchEvaluateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, &api.Error{Code: "invalid_request", Message: "empty batch"})
		return
	}
	if len(req.Requests) > maxBatch {
		s.writeError(w, &api.Error{Code: "invalid_request",
			Message: fmt.Sprintf("batch of %d exceeds the %d-item limit", len(req.Requests), maxBatch)})
		return
	}
	resp := api.BatchEvaluateResponse{Results: make([]api.BatchItem, len(req.Requests))}
	// Fan out over the worker pool, acquiring one limiter slot per
	// item so batches share the -max-concurrent budget with single
	// evaluates — and shed per item when the slot wait exceeds the
	// bound. Items share the single-evaluate cache keyspace and
	// singleflight group, so a batch both benefits from and warms the
	// /v1/evaluate entries and coalesces with concurrent singles.
	// Item errors land in the item, never abort the batch.
	_ = pool.Run(len(req.Requests), 1, func(i int) error {
		if err := s.limiter.Acquire(r.Context(), s.opts.MaxQueueWait); err != nil {
			if errors.Is(err, resilience.ErrShed) {
				s.m.shed.Add(1)
				resp.Results[i] = api.BatchItem{Error: &api.Error{
					Code: "overloaded", Message: "saturated: item shed after the queue-wait bound; retry later"}}
			} else {
				s.m.rejected.Add(1)
				resp.Results[i] = api.BatchItem{Error: &api.Error{
					Code: "overloaded", Message: "client gave up while the item was queued"}}
			}
			return nil
		}
		defer s.limiter.Release()
		item := req.Requests[i].Normalized()
		key, err := api.CanonicalKey("/v1/evaluate", &item)
		if err != nil {
			out, evalErr := s.eval.Evaluate(r.Context(), &item)
			if evalErr != nil {
				resp.Results[i] = api.BatchItem{Error: api.ToError(evalErr)}
				return nil
			}
			resp.Results[i] = api.BatchItem{Response: out}
			return nil
		}
		if v, ok := s.results.Get(key); ok {
			resp.Results[i] = api.BatchItem{Response: v.(*cachedResponse).val.(*api.EvaluateResponse)}
			return nil
		}
		// The flight produces the same encoded-byte entry the single
		// endpoint would, so a batch miss warms the byte cache for
		// later singles (and coalesces with concurrent ones); the
		// batch document embeds the decoded value the bytes retain.
		v, evalErr, shared := s.computeCoalesced(r.Context(), key, func() (any, error) {
			out, err := s.eval.Evaluate(r.Context(), &item)
			if err != nil {
				return nil, err
			}
			return encodeResponse(r.Context(), out)
		})
		if evalErr != nil {
			resp.Results[i] = api.BatchItem{Error: api.ToError(evalErr)}
			return nil
		}
		cr := v.(*cachedResponse)
		if !shared {
			s.results.Put(key, cr)
		}
		resp.Results[i] = api.BatchItem{Response: cr.val.(*api.EvaluateResponse)}
		return nil
	})
	s.writeJSON(w, r, resp)
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req api.CompareRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, r, "/v1/compare", norm, func(ctx context.Context) (any, error) {
		return s.eval.RunCompare(ctx, norm)
	}, nil)
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	var req api.TimelineRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, r, "/v1/timeline", norm, func(ctx context.Context) (any, error) {
		return s.eval.RunTimeline(ctx, norm)
	}, nil)
}

func (s *Server) handleCrossover(w http.ResponseWriter, r *http.Request) {
	var req api.CrossoverRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, r, "/v1/crossover", norm, func(ctx context.Context) (any, error) {
		return s.eval.RunCrossover(ctx, norm)
	}, nil)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, r, "/v1/sweep", norm, func(ctx context.Context) (any, error) {
		return s.eval.RunSweep(ctx, norm)
	}, func(v any) bool {
		// Admit only plot-sized sweeps: a full LRU of MaxSweepPoints
		// responses would pin gigabytes. Oversized sweeps recompute,
		// which the compiled pair makes cheap.
		resp, ok := v.(*api.SweepResponse)
		return ok && len(resp.Points) <= maxCachedSweepPoints
	})
}

func (s *Server) handleMonteCarlo(w http.ResponseWriter, r *http.Request) {
	var req api.MonteCarloRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, r, "/v1/mc", norm, func(ctx context.Context) (any, error) {
		return s.eval.RunMonteCarlo(ctx, norm)
	}, nil)
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	var req api.FleetRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, r, "/v1/fleet", norm, func(ctx context.Context) (any, error) {
		return s.eval.RunFleet(ctx, norm)
	}, nil)
}

// artifact is a cached rendered experiment.
type artifact struct {
	contentType string
	body        []byte
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.known[id] {
		s.writeError(w, &api.Error{Code: "not_found", Message: fmt.Sprintf("unknown experiment %q", id)})
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "text", "markdown", "csv":
	default:
		s.writeError(w, &api.Error{Code: "invalid_request",
			Message: fmt.Sprintf("unknown format %q (json, text, markdown, csv)", format)})
		return
	}
	key, err := api.CanonicalKey("/v1/experiments", struct {
		ID     string `json:"id"`
		Format string `json:"format"`
	}{id, format})
	if err != nil {
		s.writeError(w, &api.Error{Code: "internal", Message: err.Error()})
		return
	}
	if v, ok := s.artifacts.Get(key); ok {
		a := v.(artifact)
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", a.contentType)
		_, _ = w.Write(a.body)
		return
	}
	a, err := renderArtifact(id, format)
	if err != nil {
		s.writeError(w, &api.Error{Code: "internal", Message: err.Error()})
		return
	}
	s.artifacts.Put(key, a)
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("Content-Type", a.contentType)
	_, _ = w.Write(a.body)
}

// renderArtifact regenerates one experiment in the requested format.
func renderArtifact(id, format string) (artifact, error) {
	if format == "json" {
		res, err := api.Experiment(id)
		if err != nil {
			return artifact{}, err
		}
		var buf bytes.Buffer
		if err := api.WriteJSON(&buf, res); err != nil {
			return artifact{}, err
		}
		return artifact{contentType: "application/json", body: buf.Bytes()}, nil
	}
	out, err := experiments.Run(id)
	if err != nil {
		return artifact{}, err
	}
	var buf bytes.Buffer
	switch format {
	case "text":
		err = out.Render(&buf)
	case "markdown":
		err = out.RenderMarkdown(&buf)
	case "csv":
		err = out.RenderCSV(&buf)
	}
	if err != nil {
		return artifact{}, err
	}
	ct := "text/plain; charset=utf-8"
	if format == "csv" {
		ct = "text/csv"
	}
	return artifact{contentType: ct, body: buf.Bytes()}, nil
}
