// Package server implements the `greenfpga serve` HTTP evaluation
// service: the api package's request/response types exposed at
// /v1/..., plus /healthz and /metrics.
//
// Request flow: every request is counted, compute endpoints pass
// through a concurrency limiter, and each POST body is decoded
// strictly (unknown fields rejected) into its typed api request,
// normalized, and content-addressed with api.CanonicalKey. A hit in
// the result cache returns the stored response without re-evaluating;
// a miss computes through the shared api entry points — the same code
// the CLI runs — and caches the result. Batch evaluation fans items
// out over internal/pool and shares the single-evaluate cache
// entries, so a batch warms the cache for later singles and vice
// versa. Compiled platforms and experiment artifacts are likewise
// cached across requests (see api.Evaluator and the artifact cache
// here), so repeated and swept queries hit PR 1's compiled fast path
// or skip evaluation entirely.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"greenfpga/api"
	"greenfpga/internal/cache"
	"greenfpga/internal/experiments"
	"greenfpga/internal/pool"
)

// maxBody bounds a request body (1 MiB): scenario documents are a few
// KiB, so anything larger is a mistake or abuse.
const maxBody = 1 << 20

// maxBatch bounds the items of one batch evaluate.
const maxBatch = 1024

// maxCachedSweepPoints bounds the sweep responses admitted to the
// result cache; larger ones are served but recomputed per request.
const maxCachedSweepPoints = 10_000

// Options configures a Server. Zero values take defaults.
type Options struct {
	// Addr is the listen address ("127.0.0.1:8080"; use port 0 for an
	// ephemeral port).
	Addr string
	// MaxConcurrent bounds the compute requests evaluated at once
	// (default 64); excess requests queue until a slot frees or the
	// client gives up.
	MaxConcurrent int
	// CacheEntries bounds the content-addressed result cache
	// (default 1024).
	CacheEntries int
	// CompiledPlatforms bounds the compiled-platform cache
	// (default 256).
	CompiledPlatforms int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:8080"
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.CompiledPlatforms <= 0 {
		o.CompiledPlatforms = 256
	}
	return o
}

// Server is the GreenFPGA evaluation service.
type Server struct {
	opts    Options
	eval    *api.Evaluator
	results *cache.LRU
	// artifacts caches rendered experiments per (id, format),
	// separately from results so artifact traffic neither evicts
	// evaluation entries nor skews the result-cache metrics.
	artifacts *cache.LRU
	limiter   chan struct{}
	mux       *http.ServeMux
	m         metrics

	known map[string]bool // experiment IDs, for 404 vs 400

	hs   *http.Server
	ln   net.Listener
	done chan error
}

// New builds a Server; call Handler for an http.Handler (tests) or
// Start/Shutdown to run it.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts: opts,
		eval: api.NewEvaluator(opts.CompiledPlatforms),
		// ~24 experiment IDs x 4 formats bounds the artifact space.
		artifacts: cache.New(128),
		results:   cache.New(opts.CacheEntries),
		limiter:   make(chan struct{}, opts.MaxConcurrent),
		known:     make(map[string]bool),
	}
	for _, id := range experiments.List() {
		s.known[id] = true
	}
	s.mux = http.NewServeMux()
	s.route("GET /healthz", "/healthz", false, s.handleHealthz)
	s.route("GET /metrics", "/metrics", false, s.handleMetrics)
	s.route("GET /v1/devices", "/v1/devices", false, s.handleDevices)
	s.route("GET /v1/domains", "/v1/domains", false, s.handleDomains)
	s.route("GET /v1/experiments", "/v1/experiments", false, s.handleExperimentList)
	s.route("GET /v1/experiments/{id}", "/v1/experiments/{id}", true, s.handleExperiment)
	s.route("POST /v1/evaluate", "/v1/evaluate", true, s.handleEvaluate)
	// The batch endpoint is not limited as a whole: it charges the
	// limiter per item inside the fan-out, so -max-concurrent bounds
	// actual concurrent evaluations across every request shape (a
	// whole-batch slot would both under-count the work and deadlock
	// against per-item slots).
	s.route("POST /v1/evaluate/batch", "/v1/evaluate/batch", false, s.handleBatch)
	s.route("POST /v1/compare", "/v1/compare", true, s.handleCompare)
	s.route("POST /v1/timeline", "/v1/timeline", true, s.handleTimeline)
	s.route("POST /v1/crossover", "/v1/crossover", true, s.handleCrossover)
	s.route("POST /v1/sweep", "/v1/sweep", true, s.handleSweep)
	s.route("POST /v1/mc", "/v1/mc", true, s.handleMonteCarlo)
	return s
}

// route registers a handler behind the counting and, for compute
// endpoints, concurrency-limiting middleware.
func (s *Server) route(pattern, endpoint string, limited bool, h http.HandlerFunc) {
	ctr := s.m.counter(endpoint)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		ctr.Add(1)
		s.m.inflight.Add(1)
		defer s.m.inflight.Add(-1)
		if limited {
			select {
			case s.limiter <- struct{}{}:
				defer func() { <-s.limiter }()
			case <-r.Context().Done():
				// The client gave up while queued; nothing to write.
				s.m.rejected.Add(1)
				return
			}
		}
		h(w, r)
	})
}

// Handler returns the service's http.Handler (for httptest and
// embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on the configured address and serves in the
// background, returning the bound address (which resolves port 0).
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.mux}
	s.done = make(chan error, 1)
	go func() {
		err := s.hs.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	return ln.Addr().String(), nil
}

// Done reports the Serve loop's exit (nil after a clean Shutdown).
func (s *Server) Done() <-chan error { return s.done }

// Shutdown stops accepting connections and waits for in-flight
// requests to finish, up to the context's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.hs == nil {
		return nil
	}
	return s.hs.Shutdown(ctx)
}

// writeJSON writes v as the service's canonical JSON.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := api.WriteJSON(w, v); err != nil {
		// The header is gone; nothing recoverable remains.
		return
	}
}

// status maps an error code to its HTTP status.
func status(code string) int {
	switch code {
	case "invalid_request":
		return http.StatusBadRequest
	case "not_found":
		return http.StatusNotFound
	case "overloaded":
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError writes the JSON error envelope.
func (s *Server) writeError(w http.ResponseWriter, e *api.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status(e.Code))
	_ = api.WriteJSON(w, e)
}

// decodeJSON strictly decodes the request body into dst, writing the
// validation error itself when the body is malformed.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.writeError(w, &api.Error{Code: "invalid_request", Message: "bad request body: " + err.Error()})
		return false
	}
	if dec.More() {
		s.writeError(w, &api.Error{Code: "invalid_request", Message: "bad request body: trailing data"})
		return false
	}
	return true
}

// serveCached answers from the content-addressed result cache, or
// computes, caches and answers. req must already be normalized — it
// is the content being addressed. A non-nil cacheIf gates admission
// (for responses too large to be worth pinning).
func (s *Server) serveCached(w http.ResponseWriter, endpoint string, req any,
	compute func() (any, error), cacheIf func(any) bool) {
	key, err := api.CanonicalKey(endpoint, req)
	if err != nil {
		s.writeError(w, &api.Error{Code: "internal", Message: err.Error()})
		return
	}
	if v, ok := s.results.Get(key); ok {
		w.Header().Set("X-Cache", "hit")
		s.writeJSON(w, v)
		return
	}
	v, err := compute()
	if err != nil {
		s.writeError(w, api.ToError(err))
		return
	}
	if cacheIf == nil || cacheIf(v) {
		s.results.Put(key, v)
	}
	w.Header().Set("X-Cache", "miss")
	s.writeJSON(w, v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, api.Health{Status: "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.writeMetrics(w)
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, api.Devices())
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, api.Domains())
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, api.Experiments())
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req api.EvaluateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	// Keying on the normalized request makes a legacy scenario body
	// and its spec spelling one cache entry.
	norm := req.Normalized()
	s.serveCached(w, "/v1/evaluate", &norm, func() (any, error) {
		return s.eval.Evaluate(&norm)
	}, nil)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchEvaluateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, &api.Error{Code: "invalid_request", Message: "empty batch"})
		return
	}
	if len(req.Requests) > maxBatch {
		s.writeError(w, &api.Error{Code: "invalid_request",
			Message: fmt.Sprintf("batch of %d exceeds the %d-item limit", len(req.Requests), maxBatch)})
		return
	}
	resp := api.BatchEvaluateResponse{Results: make([]api.BatchItem, len(req.Requests))}
	// Fan out over the worker pool, acquiring one limiter slot per
	// item so batches share the -max-concurrent budget with single
	// evaluates. Items share the single-evaluate cache keyspace, so a
	// batch both benefits from and warms the /v1/evaluate entries.
	// Item errors land in the item, never abort the batch.
	_ = pool.Run(len(req.Requests), 1, func(i int) error {
		select {
		case s.limiter <- struct{}{}:
			defer func() { <-s.limiter }()
		case <-r.Context().Done():
			s.m.rejected.Add(1)
			resp.Results[i] = api.BatchItem{Error: &api.Error{
				Code: "overloaded", Message: "client gave up while the item was queued"}}
			return nil
		}
		item := req.Requests[i].Normalized()
		key, err := api.CanonicalKey("/v1/evaluate", &item)
		if err == nil {
			if v, ok := s.results.Get(key); ok {
				resp.Results[i] = api.BatchItem{Response: v.(*api.EvaluateResponse)}
				return nil
			}
		}
		out, evalErr := s.eval.Evaluate(&item)
		if evalErr != nil {
			resp.Results[i] = api.BatchItem{Error: api.ToError(evalErr)}
			return nil
		}
		if err == nil {
			s.results.Put(key, out)
		}
		resp.Results[i] = api.BatchItem{Response: out}
		return nil
	})
	s.writeJSON(w, resp)
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req api.CompareRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, "/v1/compare", norm, func() (any, error) {
		return s.eval.RunCompare(norm)
	}, nil)
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	var req api.TimelineRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, "/v1/timeline", norm, func() (any, error) {
		return s.eval.RunTimeline(norm)
	}, nil)
}

func (s *Server) handleCrossover(w http.ResponseWriter, r *http.Request) {
	var req api.CrossoverRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, "/v1/crossover", norm, func() (any, error) {
		return s.eval.RunCrossover(norm)
	}, nil)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, "/v1/sweep", norm, func() (any, error) {
		return s.eval.RunSweep(norm)
	}, func(v any) bool {
		// Admit only plot-sized sweeps: a full LRU of MaxSweepPoints
		// responses would pin gigabytes. Oversized sweeps recompute,
		// which the compiled pair makes cheap.
		resp, ok := v.(*api.SweepResponse)
		return ok && len(resp.Points) <= maxCachedSweepPoints
	})
}

func (s *Server) handleMonteCarlo(w http.ResponseWriter, r *http.Request) {
	var req api.MonteCarloRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	norm := req.Normalized()
	s.serveCached(w, "/v1/mc", norm, func() (any, error) {
		return s.eval.RunMonteCarlo(norm)
	}, nil)
}

// artifact is a cached rendered experiment.
type artifact struct {
	contentType string
	body        []byte
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.known[id] {
		s.writeError(w, &api.Error{Code: "not_found", Message: fmt.Sprintf("unknown experiment %q", id)})
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "text", "markdown", "csv":
	default:
		s.writeError(w, &api.Error{Code: "invalid_request",
			Message: fmt.Sprintf("unknown format %q (json, text, markdown, csv)", format)})
		return
	}
	key, err := api.CanonicalKey("/v1/experiments", struct {
		ID     string `json:"id"`
		Format string `json:"format"`
	}{id, format})
	if err != nil {
		s.writeError(w, &api.Error{Code: "internal", Message: err.Error()})
		return
	}
	if v, ok := s.artifacts.Get(key); ok {
		a := v.(artifact)
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", a.contentType)
		_, _ = w.Write(a.body)
		return
	}
	a, err := renderArtifact(id, format)
	if err != nil {
		s.writeError(w, &api.Error{Code: "internal", Message: err.Error()})
		return
	}
	s.artifacts.Put(key, a)
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("Content-Type", a.contentType)
	_, _ = w.Write(a.body)
}

// renderArtifact regenerates one experiment in the requested format.
func renderArtifact(id, format string) (artifact, error) {
	if format == "json" {
		res, err := api.Experiment(id)
		if err != nil {
			return artifact{}, err
		}
		var buf bytes.Buffer
		if err := api.WriteJSON(&buf, res); err != nil {
			return artifact{}, err
		}
		return artifact{contentType: "application/json", body: buf.Bytes()}, nil
	}
	out, err := experiments.Run(id)
	if err != nil {
		return artifact{}, err
	}
	var buf bytes.Buffer
	switch format {
	case "text":
		err = out.Render(&buf)
	case "markdown":
		err = out.RenderMarkdown(&buf)
	case "csv":
		err = out.RenderCSV(&buf)
	}
	if err != nil {
		return artifact{}, err
	}
	ct := "text/plain; charset=utf-8"
	if format == "csv" {
		ct = "text/csv"
	}
	return artifact{contentType: ct, body: buf.Bytes()}, nil
}
