package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"greenfpga/api"
	"greenfpga/internal/jobs"
	"greenfpga/internal/telemetry"
)

// This file serves the asynchronous job surface. A job is a compute
// request accepted at POST /v1/jobs (202) and executed on the jobs
// manager's workers, checkpointing into the durable store; the other
// handlers poll its record, fetch its result (the exact bytes the
// synchronous endpoint would have written, or NDJSON for large sweep
// surfaces) and cancel or delete it. The endpoints are registered only
// when the server has a store — without a durable tier, an async job
// could not outlive the request that submitted it, let alone the
// process.

// jobStatus converts a durable job record into its wire shape.
func jobStatus(rec jobs.Record) api.JobStatus {
	st := api.JobStatus{
		ID:            rec.ID,
		Endpoint:      rec.Endpoint,
		State:         string(rec.State),
		Chunks:        rec.Chunks,
		ChunksDone:    rec.ChunksDone,
		Key:           rec.Key,
		CreatedUnixMs: rec.CreatedUnixMs,
		UpdatedUnixMs: rec.UpdatedUnixMs,
	}
	if rec.Error != "" {
		code := rec.ErrorCode
		if code == "" {
			code = "internal"
		}
		st.Error = &api.Error{Code: code, Message: rec.Error}
	}
	return st
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobSubmitRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Endpoint == "" {
		s.writeError(w, &api.Error{Code: "invalid_request", Message: "missing job endpoint"})
		return
	}
	if len(req.Request) == 0 {
		req.Request = json.RawMessage("{}")
	}
	rec, err := s.jobs.Submit(r.Context(), req.Endpoint, req.Request)
	if err != nil {
		s.writeError(w, api.ToError(err))
		return
	}
	defer telemetry.StartStage(r.Context(), "encode")()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = api.WriteJSON(w, jobStatus(rec))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	recs, err := s.jobs.List()
	if err != nil {
		s.writeError(w, api.ToError(err))
		return
	}
	out := api.JobList{Jobs: make([]api.JobStatus, len(recs))}
	for i, rec := range recs {
		out.Jobs[i] = jobStatus(rec)
	}
	s.writeJSON(w, r, out)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	rec, err := s.jobs.Status(r.PathValue("id"))
	if err != nil {
		s.writeError(w, api.ToError(err))
		return
	}
	s.writeJSON(w, r, jobStatus(rec))
}

// handleJobResult serves a done job's response. The default is the
// stored bytes verbatim — byte-identical to the synchronous endpoint's
// response for the same request, which is what the acceptance tests
// pin. ?format=ndjson re-frames a sweep result as one envelope line
// followed by one point per line, so a million-point surface can be
// consumed incrementally instead of parsed as one document.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	rec, body, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		s.writeError(w, api.ToError(err))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		defer telemetry.StartStage(r.Context(), "encode")()
		h := w.Header()
		h.Set("X-Cache", "store")
		h.Set("Content-Type", "application/json")
		h.Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write(body)
	case "ndjson":
		if rec.Endpoint != "/v1/sweep" {
			s.writeError(w, &api.Error{Code: "invalid_request",
				Message: "ndjson framing is only available for sweep results"})
			return
		}
		s.writeSweepNDJSON(w, r, body)
	default:
		s.writeError(w, &api.Error{Code: "invalid_request",
			Message: fmt.Sprintf("unknown result format %q (json, ndjson)", format)})
	}
}

// sweepEnvelope is the first NDJSON line: the sweep response minus its
// points, plus the point count so a consumer can preallocate (and tell
// a truncated stream from a complete one).
type sweepEnvelope struct {
	Domain    string   `json:"domain"`
	Axis      string   `json:"axis"`
	Platforms []string `json:"platforms,omitempty"`
	Points    int      `json:"points"`
}

// writeSweepNDJSON re-frames stored sweep bytes as NDJSON.
func (s *Server) writeSweepNDJSON(w http.ResponseWriter, r *http.Request, body []byte) {
	var resp api.SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		s.writeError(w, &api.Error{Code: "internal", Message: "corrupt stored sweep result: " + err.Error()})
		return
	}
	defer telemetry.StartStage(r.Context(), "encode")()
	w.Header().Set("X-Cache", "store")
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	// api.WriteJSON emits compact JSON plus a trailing newline — exactly
	// one NDJSON line per call.
	if err := api.WriteJSON(bw, sweepEnvelope{
		Domain: resp.Domain, Axis: resp.Axis, Platforms: resp.Platforms, Points: len(resp.Points),
	}); err != nil {
		return
	}
	for i := range resp.Points {
		if err := api.WriteJSON(bw, &resp.Points[i]); err != nil {
			return
		}
	}
	_ = bw.Flush()
}

// handleJobDelete cancels the job if active and removes its record and
// checkpoints; the content-addressed result bytes stay (they may be
// serving the synchronous cache tier or an identical job).
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.jobs.Delete(id); err != nil {
		s.writeError(w, api.ToError(err))
		return
	}
	s.writeJSON(w, r, api.JobStatus{ID: id, State: "deleted"})
}
