package carbon

import (
	"math"
	"strings"
	"testing"

	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

// testTrace builds a deterministic non-flat trace of n samples.
func testTrace(n int) Trace {
	t := make(Trace, n)
	for i := range t {
		t[i] = units.GramsPerKWh(300 + 200*math.Sin(2*math.Pi*float64(i)/24) + 50*math.Sin(2*math.Pi*float64(i)/86))
	}
	return t
}

// TestFlatWindowExact pins the scalar-equivalence property: a flat
// trace integrates to exactly hours x intensity — bit-for-bit, not
// approximately — for any start offset and span.
func TestFlatWindowExact(t *testing.T) {
	for _, ci := range []float64{0, 0.011, 0.436, 0.7121212121} {
		it, err := NewIntegrator(Flat(units.KgPerKWh(ci), 24))
		if err != nil {
			t.Fatalf("NewIntegrator: %v", err)
		}
		for _, start := range []float64{0, 1.5, 8760, 12345.678, 3 * 8760.0} {
			for _, hours := range []float64{0.25, 1, 7.3, 8760, 17520, 8760 * 1.7} {
				got := it.Window(start, hours)
				want := hours * ci
				if got != want {
					t.Errorf("Window(%g, %g) with flat ci %g = %v, want exactly %v", start, hours, ci, got, want)
				}
			}
		}
	}
}

// TestWindowMatchesBruteForce checks the prefix-sum antiderivative
// against a literal hour-by-hour accumulation, including fractional
// endpoints and multi-cycle wraparound.
func TestWindowMatchesBruteForce(t *testing.T) {
	tr := testTrace(48)
	it, err := NewIntegrator(tr)
	if err != nil {
		t.Fatalf("NewIntegrator: %v", err)
	}
	brute := func(start, hours float64) float64 {
		const step = 1.0 / 64
		var sum float64
		for x := 0.0; x < hours-step/2; x += step {
			h := math.Mod(start+x, float64(len(tr)))
			sum += tr[int(h)].KgPerKWh() * step
		}
		return sum
	}
	for _, c := range []struct{ start, hours float64 }{
		{0, 24}, {0, 48}, {12, 48}, {7.5, 3.25}, {47.5, 1}, {100.25, 96.5}, {8760, 48},
	} {
		got := it.Window(c.start, c.hours)
		want := brute(c.start, c.hours)
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("Window(%g, %g) = %v, brute force %v", c.start, c.hours, got, want)
		}
	}
}

// TestWindowAdditive checks that adjacent windows sum to their union —
// the property the schedule evaluator leans on when deployments abut.
func TestWindowAdditive(t *testing.T) {
	it, err := NewIntegrator(testTrace(8760))
	if err != nil {
		t.Fatalf("NewIntegrator: %v", err)
	}
	whole := it.Window(0, 3*8760)
	split := it.Window(0, 8760) + it.Window(8760, 8760) + it.Window(2*8760, 8760)
	if math.Abs(whole-split) > 1e-6 {
		t.Errorf("3-year window %v != sum of annual windows %v", whole, split)
	}
}

// TestConvolve pins the utilization convolution on a flat trace (equal
// to mean utilization x 8760 x ci) and checks profile validation.
func TestConvolve(t *testing.T) {
	it, err := NewIntegrator(Flat(units.KgPerKWh(0.4), 24))
	if err != nil {
		t.Fatalf("NewIntegrator: %v", err)
	}
	got, err := it.Convolve([]float64{1, 0, 1, 0})
	if err != nil {
		t.Fatalf("Convolve: %v", err)
	}
	want := 0.5 * 8760 * 0.4
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Convolve = %v, want %v", got, want)
	}
	if _, err := it.Convolve(nil); err == nil {
		t.Error("Convolve(nil) succeeded, want error")
	}
	if _, err := it.Convolve([]float64{1.5}); err == nil {
		t.Error("Convolve(1.5) succeeded, want error")
	}
}

// TestShiftFlatEqualsUnshifted: on a flat trace, packing run-hours
// into the "cleanest" hours changes nothing — shifted and uniform
// operation burn the same carbon.
func TestShiftFlatEqualsUnshifted(t *testing.T) {
	const ci, duty = 0.35, 0.3
	it, err := NewIntegrator(Flat(units.KgPerKWh(ci), 48))
	if err != nil {
		t.Fatalf("NewIntegrator: %v", err)
	}
	sp, err := it.Shift(duty * 24)
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	for _, hours := range []float64{24, 8760, 2.5 * 8760} {
		shifted := sp.Window(0, hours)       // x peak hourly energy
		uniform := duty * it.Window(0, hours) // duty-scaled draw, x peak hourly energy
		if math.Abs(shifted-uniform) > 1e-9*uniform {
			t.Errorf("flat shift over %g h = %v, uniform %v", hours, shifted, uniform)
		}
	}
}

// TestShiftPicksCleanHours: on a varying trace the daily policy must
// beat uniform operation, and by no more than the trace's range bound.
func TestShiftPicksCleanHours(t *testing.T) {
	tr := testTrace(8760)
	it, err := NewIntegrator(tr)
	if err != nil {
		t.Fatalf("NewIntegrator: %v", err)
	}
	sp, err := it.Shift(0.3 * 24)
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	shifted := sp.Window(0, 8760)
	uniform := 0.3 * it.Window(0, 8760)
	if shifted >= uniform {
		t.Errorf("shifted %v not below uniform %v on a varying trace", shifted, uniform)
	}
	min, _ := tr.Bounds()
	if floor := 0.3 * 24 * 365 * min.KgPerKWh(); shifted < floor {
		t.Errorf("shifted %v below physical floor %v", shifted, floor)
	}
}

// TestShiftValidation rejects bad run-hours and partial-day traces.
func TestShiftValidation(t *testing.T) {
	it, err := NewIntegrator(Flat(units.KgPerKWh(0.3), 24))
	if err != nil {
		t.Fatalf("NewIntegrator: %v", err)
	}
	for _, h := range []float64{0, -1, 25, math.NaN()} {
		if _, err := it.Shift(h); err == nil {
			t.Errorf("Shift(%g) succeeded, want error", h)
		}
	}
	odd, err := NewIntegrator(testTrace(30))
	if err != nil {
		t.Fatalf("NewIntegrator: %v", err)
	}
	if _, err := odd.Shift(8); err == nil {
		t.Error("Shift on a 30-hour trace succeeded, want whole-day error")
	}
}

// TestSynthesize checks determinism and the structural signatures the
// siting studies depend on: solar-heavy grids dip at midday relative
// to evening, and the annual mean stays in the mix's neighborhood.
func TestSynthesize(t *testing.T) {
	reg, err := ByName("california")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	a, err := Synthesize(reg.Mix)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	b, _ := Synthesize(reg.Mix)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Synthesize not deterministic at hour %d: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) != 8760 {
		t.Fatalf("trace length %d, want 8760", len(a))
	}
	var noon, evening float64
	for d := 0; d < 365; d++ {
		noon += a[d*24+12].KgPerKWh()
		evening += a[d*24+20].KgPerKWh()
	}
	if noon >= evening {
		t.Errorf("solar-heavy region: mean noon intensity %v not below evening %v", noon/365, evening/365)
	}
	scalar, err := reg.Intensity()
	if err != nil {
		t.Fatalf("Intensity: %v", err)
	}
	mean := a.Mean().KgPerKWh()
	if ratio := mean / scalar.KgPerKWh(); ratio < 0.7 || ratio > 1.3 {
		t.Errorf("trace mean %v strays from scalar mix intensity %v (ratio %v)", mean, scalar, ratio)
	}
}

// TestRegions covers the registry: sorted names, scalar/traced split,
// the valid-set error message, and integrator caching.
func TestRegions(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %q before %q", names[i-1], names[i])
		}
	}
	for _, gr := range grid.Regions() {
		r, err := ByName(string(gr))
		if err != nil {
			t.Fatalf("grid region %q missing from carbon registry: %v", gr, err)
		}
		if r.Traced {
			t.Errorf("grid region %q must stay scalar", gr)
		}
		if tr, _ := r.Trace(); tr != nil {
			t.Errorf("scalar region %q returned a trace", gr)
		}
	}
	_, err := ByName("atlantis")
	if err == nil {
		t.Fatal("ByName(atlantis) succeeded")
	}
	if !strings.Contains(err.Error(), "oregon") || !strings.Contains(err.Error(), "world") {
		t.Errorf("unknown-region error does not name the valid set: %v", err)
	}
	it1, err := IntegratorFor("oregon")
	if err != nil || it1 == nil {
		t.Fatalf("IntegratorFor(oregon) = %v, %v", it1, err)
	}
	it2, _ := IntegratorFor("oregon")
	if it1 != it2 {
		t.Error("IntegratorFor not cached: distinct pointers for the same region")
	}
	if it, err := IntegratorFor("world"); err != nil || it != nil {
		t.Errorf("IntegratorFor(world) = %v, %v; want nil, nil for a scalar region", it, err)
	}
}

// TestValidate exercises the trace gate.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		t    Trace
		ok   bool
	}{
		{"empty", nil, false},
		{"negative", Trace{-0.1}, false},
		{"nan", Trace{units.CarbonIntensity(math.NaN())}, false},
		{"inf", Trace{units.CarbonIntensity(math.Inf(1))}, false},
		{"huge", Trace{99}, false},
		{"zero", Trace{0}, true},
		{"ok", testTrace(24), true},
		{"too-long", make(Trace, MaxTraceHours+1), false},
	}
	for _, c := range cases {
		if err := c.t.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestParseCSV covers both column shapes, headers, comments and the
// failure modes.
func TestParseCSV(t *testing.T) {
	tr, err := ParseCSV([]byte("# comment\nhour,g_per_kwh\n0,400\n1,350.5\n2,300\n"))
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	if len(tr) != 3 || tr[1] != units.GramsPerKWh(350.5) {
		t.Errorf("ParseCSV = %v", tr)
	}
	if tr, err = ParseCSV([]byte("400\n350\n")); err != nil || len(tr) != 2 {
		t.Errorf("bare-column ParseCSV = %v, %v", tr, err)
	}
	for _, bad := range []string{"", "0,400\n2,300\n", "a,b,c\n", "0,banana\n", "1,400\n"} {
		if _, err := ParseCSV([]byte(bad)); err == nil {
			t.Errorf("ParseCSV(%q) succeeded, want error", bad)
		}
	}
}

// TestParseJSON covers the bare-array and object forms.
func TestParseJSON(t *testing.T) {
	tr, err := ParseJSON([]byte("[400, 350, 300]"))
	if err != nil || len(tr) != 3 {
		t.Fatalf("ParseJSON array = %v, %v", tr, err)
	}
	tr, err = ParseJSON([]byte(`{"g_per_kwh": [420, 11]}`))
	if err != nil || len(tr) != 2 || tr[0] != units.GramsPerKWh(420) {
		t.Fatalf("ParseJSON object = %v, %v", tr, err)
	}
	for _, bad := range []string{"", "{}", `{"g_per_kwh": []}`, `{"other": [1]}`, "[-4]", "[1e99]", `"x"`} {
		if _, err := ParseJSON([]byte(bad)); err == nil {
			t.Errorf("ParseJSON(%q) succeeded, want error", bad)
		}
	}
}

// TestGramsRoundTrip pins the wire-unit round trip.
func TestGramsRoundTrip(t *testing.T) {
	in := []float64{400, 11, 0}
	tr, err := FromGrams(in)
	if err != nil {
		t.Fatalf("FromGrams: %v", err)
	}
	out := tr.Grams()
	for i := range in {
		if math.Abs(out[i]-in[i]) > 1e-12 {
			t.Errorf("Grams[%d] = %v, want %v", i, out[i], in[i])
		}
	}
}
