package carbon

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

// Region is a named grid a platform can be sited in. Scalar regions
// (the grid package presets) carry only a mix and reduce every model
// to the legacy closed-form path; traced regions additionally carry an
// hourly intensity trace synthesized from their mix, and platforms
// sited there integrate operational CFP hour-by-hour.
type Region struct {
	Name        string
	Description string
	Mix         grid.Mix
	Traced      bool
}

// scalarDescriptions annotates the grid package presets.
var scalarDescriptions = map[grid.Region]string{
	grid.RegionTaiwan:    "Taiwan national blend (fab host)",
	grid.RegionUSA:       "United States national blend",
	grid.RegionEurope:    "European Union blend",
	grid.RegionKorea:     "South Korea national blend (fab host)",
	grid.RegionJapan:     "Japan national blend",
	grid.RegionIceland:   "Iceland hydro/geothermal grid",
	grid.RegionWorld:     "World-average blend (paper default)",
	grid.RegionRenewable: "All-renewable procurement blend",
}

// tracedDefs are the hourly-signal regions: coarse US balancing-area
// blends whose variable-renewable shares give the synthesized traces
// their structure (hydro seasons in Oregon, midday solar dips in
// California, synoptic wind swings in Texas, gas-flat Virginia).
var tracedDefs = []Region{
	{
		Name:        "oregon",
		Description: "Pacific Northwest hydro-heavy grid (hourly trace)",
		Mix:         grid.Mix{grid.Hydro: 0.55, grid.Wind: 0.12, grid.Gas: 0.18, grid.Solar: 0.04, grid.Nuclear: 0.03, grid.Coal: 0.08},
		Traced:      true,
	},
	{
		Name:        "virginia",
		Description: "Mid-Atlantic gas-heavy data-center grid (hourly trace)",
		Mix:         grid.Mix{grid.Gas: 0.55, grid.Nuclear: 0.29, grid.Coal: 0.04, grid.Solar: 0.06, grid.Biomass: 0.03, grid.Hydro: 0.03},
		Traced:      true,
	},
	{
		Name:        "california",
		Description: "California solar-heavy grid with midday dips (hourly trace)",
		Mix:         grid.Mix{grid.Solar: 0.27, grid.Gas: 0.38, grid.Wind: 0.07, grid.Hydro: 0.09, grid.Nuclear: 0.08, grid.Geothermal: 0.05, grid.Biomass: 0.02, grid.Coal: 0.04},
		Traced:      true,
	},
	{
		Name:        "texas",
		Description: "Texas wind-and-gas grid with synoptic swings (hourly trace)",
		Mix:         grid.Mix{grid.Wind: 0.25, grid.Gas: 0.42, grid.Coal: 0.16, grid.Solar: 0.06, grid.Nuclear: 0.10, grid.Hydro: 0.01},
		Traced:      true,
	},
}

// regions is the full registry, built once and sorted by name.
var regions = buildRegions()

func buildRegions() []Region {
	out := make([]Region, 0, len(scalarDescriptions)+len(tracedDefs))
	for _, r := range grid.Regions() {
		mix, err := grid.ByRegion(r)
		if err != nil {
			panic(err) // registry presets cannot be invalid
		}
		out = append(out, Region{
			Name:        string(r),
			Description: scalarDescriptions[r],
			Mix:         mix,
		})
	}
	for _, def := range tracedDefs {
		mix, err := def.Mix.Normalize()
		if err != nil {
			panic(err) // registry presets cannot be invalid
		}
		def.Mix = mix
		out = append(out, def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Regions lists every known region sorted by name.
func Regions() []Region {
	out := make([]Region, len(regions))
	copy(out, regions)
	return out
}

// Names lists the known region names sorted.
func Names() []string {
	out := make([]string, len(regions))
	for i, r := range regions {
		out[i] = r.Name
	}
	return out
}

// NamesList renders the valid region set for error envelopes.
func NamesList() string { return strings.Join(Names(), ", ") }

// ByName looks a region up; the error names the valid set so API
// validation can surface it verbatim in a 400 envelope.
func ByName(name string) (Region, error) {
	i := sort.Search(len(regions), func(i int) bool { return regions[i].Name >= name })
	if i < len(regions) && regions[i].Name == name {
		return regions[i], nil
	}
	return Region{}, fmt.Errorf("carbon: unknown region %q (valid: %s)", name, NamesList())
}

// Intensity is the region's scalar (annual-average) grid intensity,
// computed from its mix — the figure scalar regions use directly and
// traced regions report for context.
func (r Region) Intensity() (units.CarbonIntensity, error) {
	return r.Mix.Intensity()
}

// traceCache holds each traced region's synthesized trace, built on
// first use — synthesis walks 8760 hours, so it is done once.
var traceCache sync.Map // name -> Trace

// Trace returns the region's hourly trace, synthesizing and caching it
// on first use. Scalar regions return nil with no error.
func (r Region) Trace() (Trace, error) {
	if !r.Traced {
		return nil, nil
	}
	if t, ok := traceCache.Load(r.Name); ok {
		return t.(Trace), nil
	}
	t, err := Synthesize(r.Mix)
	if err != nil {
		return nil, err
	}
	actual, _ := traceCache.LoadOrStore(r.Name, t)
	return actual.(Trace), nil
}

// integCache holds each traced region's compiled Integrator — the
// per-region trace constants, cached like platform constants.
var integCache sync.Map // name -> *Integrator

// IntegratorFor compiles (once) and returns the named region's trace
// integrator. Scalar regions return nil with no error.
func IntegratorFor(name string) (*Integrator, error) {
	if it, ok := integCache.Load(name); ok {
		return it.(*Integrator), nil
	}
	r, err := ByName(name)
	if err != nil {
		return nil, err
	}
	if !r.Traced {
		return nil, nil
	}
	t, err := r.Trace()
	if err != nil {
		return nil, err
	}
	it, err := NewIntegrator(t)
	if err != nil {
		return nil, err
	}
	actual, _ := integCache.LoadOrStore(name, it)
	return actual.(*Integrator), nil
}
