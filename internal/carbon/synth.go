package carbon

import (
	"math"

	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

// This file composes synthetic 8760-hour annual intensity traces from
// the grid.Mix presets. The shapes are deterministic closed forms (no
// clock, no randomness, bit-reproducible): solar follows a daylight
// arc with a summer-peaked seasonal envelope, wind a multi-day
// oscillation that strengthens in winter, hydro a spring-melt swell.
// Dispatchable fossil sources fill whatever the variable renewables
// leave uncovered each hour, which is what makes solar-heavy grids dip
// at midday and gas-heavy grids flatten out — the structure the fleet
// siting studies exercise.

// synthHours is one year of hourly samples.
const synthHours = 8760

// solarShape is the relative solar availability at hour h of the year:
// a half-sine daylight arc between 06:00 and 18:00 scaled by a
// seasonal envelope peaking near the summer solstice.
func solarShape(h int) float64 {
	d, hod := h/24, h%24
	seasonal := 1 - 0.45*math.Cos(2*math.Pi*float64(d+10)/365)
	daylight := math.Sin(math.Pi * (float64(hod) + 0.5 - 6) / 12)
	if hod < 6 || hod >= 18 || daylight < 0 {
		return 0
	}
	return daylight * seasonal
}

// windShape is the relative wind availability: an 86-hour synoptic
// oscillation (weather fronts) over a winter-strong seasonal base,
// floored so the fleet never sees a dead calm year-round.
func windShape(h int) float64 {
	d := h / 24
	v := 1 + 0.55*math.Sin(2*math.Pi*float64(h)/86) + 0.25*math.Cos(2*math.Pi*float64(d)/365)
	return math.Max(v, 0.05)
}

// hydroShape is the relative hydro availability: a spring-melt swell
// cresting around day 190.
func hydroShape(h int) float64 {
	d := h / 24
	v := 1 + 0.3*math.Sin(2*math.Pi*float64(d-100)/365)
	return math.Max(v, 0.3)
}

// meanNormalize scales a shape series so its annual mean is exactly 1,
// keeping the synthesized trace's annual energy shares equal to the
// mix shares it was composed from.
func meanNormalize(s []float64) {
	var sum float64
	for _, v := range s {
		sum += v
	}
	if sum == 0 {
		return
	}
	mean := sum / float64(len(s))
	for i := range s {
		s[i] /= mean
	}
}

// Synthesize composes an 8760-hour annual intensity trace from a grid
// mix. Variable renewables (solar, wind, hydro) follow their
// availability shapes, baseload sources (nuclear, geothermal, biomass)
// hold constant shares, and dispatchable fossils (coal, gas, oil)
// expand or contract to fill the residual demand each hour; surplus
// renewable hours are curtailed proportionally. The result is
// deterministic for a given mix.
func Synthesize(m grid.Mix) (Trace, error) {
	norm, err := m.Normalize()
	if err != nil {
		return nil, err
	}
	solar := make([]float64, synthHours)
	wind := make([]float64, synthHours)
	hydro := make([]float64, synthHours)
	for h := 0; h < synthHours; h++ {
		solar[h] = solarShape(h)
		wind[h] = windShape(h)
		hydro[h] = hydroShape(h)
	}
	meanNormalize(solar)
	meanNormalize(wind)
	meanNormalize(hydro)

	fossil := norm[grid.Coal] + norm[grid.Gas] + norm[grid.Oil]
	baseload := norm[grid.Nuclear] + norm[grid.Geothermal] + norm[grid.Biomass]
	trace := make(Trace, synthHours)
	sources := grid.Sources()
	share := make([]float64, len(sources))
	for h := 0; h < synthHours; h++ {
		variable := norm[grid.Solar]*solar[h] + norm[grid.Wind]*wind[h] + norm[grid.Hydro]*hydro[h]
		nonFossil := variable + baseload
		residual := 1 - nonFossil
		// Scale factors for the fossil fill and renewable curtailment.
		fossilScale, renewScale := 0.0, 1.0
		switch {
		case residual > 0 && fossil > 0:
			fossilScale = residual / fossil
		case residual > 0:
			// No dispatchable source in the mix: the clean sources
			// themselves scale up to meet demand.
			renewScale = 1 / nonFossil
		case residual < 0:
			// Renewable surplus: curtail everything proportionally.
			renewScale = 1 / nonFossil
		}
		for i, s := range sources {
			switch s {
			case grid.Coal, grid.Gas, grid.Oil:
				share[i] = norm[s] * fossilScale
			case grid.Solar:
				share[i] = norm[s] * solar[h] * renewScale
			case grid.Wind:
				share[i] = norm[s] * wind[h] * renewScale
			case grid.Hydro:
				share[i] = norm[s] * hydro[h] * renewScale
			default:
				share[i] = norm[s] * renewScale
			}
		}
		var ci float64
		for i, s := range sources {
			si, _ := grid.Intensity(s)
			ci += share[i] * si.KgPerKWh()
		}
		trace[h] = units.KgPerKWh(ci)
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	return trace, nil
}
