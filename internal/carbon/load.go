package carbon

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// This file loads measured intensity series. Both formats carry g/kWh
// samples — the unit grid operators publish — and both land in the
// same Validate gate as the synthesized traces, so a malformed or
// physically implausible series is rejected before it can reach an
// Integrator. FuzzTrace drives these parsers.

// ParseCSV reads an hourly trace from CSV text: one sample per line,
// either a bare g/kWh value or an "hour,g_per_kwh" pair (the hour
// column must count 0,1,2,... so shuffled exports are caught). Blank
// lines and #-comments are skipped, and a non-numeric header line
// (e.g. "hour,g_per_kwh") is tolerated.
func ParseCSV(data []byte) (Trace, error) {
	var values []float64
	row := 0
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		var raw string
		switch len(fields) {
		case 1:
			raw = strings.TrimSpace(fields[0])
		case 2:
			hour := strings.TrimSpace(fields[0])
			raw = strings.TrimSpace(fields[1])
			idx, err := strconv.Atoi(hour)
			if err != nil {
				// A non-numeric first row is a header.
				if row == 0 {
					continue
				}
				return nil, fmt.Errorf("carbon: csv line %d: bad hour %q", ln+1, hour)
			}
			if idx != row {
				return nil, fmt.Errorf("carbon: csv line %d: hour %d out of order (want %d)", ln+1, idx, row)
			}
		default:
			return nil, fmt.Errorf("carbon: csv line %d: want 1 or 2 fields, got %d", ln+1, len(fields))
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			// A non-numeric first row is a header.
			if row == 0 && len(fields) == 1 {
				continue
			}
			return nil, fmt.Errorf("carbon: csv line %d: bad value %q", ln+1, raw)
		}
		values = append(values, v)
		row++
		if row > MaxTraceHours {
			return nil, fmt.Errorf("carbon: csv trace exceeds %d samples", MaxTraceHours)
		}
	}
	return FromGrams(values)
}

// ParseJSON reads an hourly trace from JSON: either a bare array of
// g/kWh samples or an object {"g_per_kwh": [...]}.
func ParseJSON(data []byte) (Trace, error) {
	trimmed := strings.TrimSpace(string(data))
	var values []float64
	if strings.HasPrefix(trimmed, "{") {
		var doc struct {
			Grams []float64 `json:"g_per_kwh"`
		}
		dec := json.NewDecoder(strings.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&doc); err != nil {
			return nil, fmt.Errorf("carbon: json trace: %w", err)
		}
		values = doc.Grams
	} else {
		if err := json.Unmarshal(data, &values); err != nil {
			return nil, fmt.Errorf("carbon: json trace: %w", err)
		}
	}
	return FromGrams(values)
}
