// Package carbon is the time-varying grid-signal engine. Where
// internal/grid reduces a regional mix to one scalar carbon intensity,
// this package carries hourly intensity traces — synthetic annual
// profiles composed from the grid presets, or measured series loaded
// from CSV/JSON — and integrates them against device operating windows
// so operational CFP can be accumulated hour-by-hour over a
// deployment's [start, start+lifetime) span.
//
// Traces tile cyclically: an 8760-sample trace repeats every year, a
// 24-sample trace every day. Regions whose grid signal is a scalar
// keep no trace at all, so every model built on them stays on the
// legacy closed-form path bit-for-bit.
package carbon

import (
	"fmt"
	"math"

	"greenfpga/internal/units"
)

// ShiftDaily names the daily load-shifting policy: each day's
// run-hours pack into that day's cleanest hours (see
// Integrator.Shift). It is the only policy besides "" (none).
const ShiftDaily = "daily"

// MaxTraceHours bounds loadable traces to ten years of hourly samples,
// which is enough for any measured series the tool ingests and keeps
// adversarial inputs from allocating unbounded prefix tables.
const MaxTraceHours = 10 * 8760

// maxIntensity rejects nonsense samples: no grid on earth emits more
// than 5 kgCO2e/kWh (lignite peaks near 1.2).
const maxIntensity = 5.0

// Trace is an hourly carbon-intensity series. Element h is the grid
// intensity during hour [h, h+1); the series tiles cyclically over the
// operating calendar.
type Trace []units.CarbonIntensity

// Validate checks that the trace is usable: non-empty, bounded, and
// every sample finite, non-negative and physically plausible.
func (t Trace) Validate() error {
	if len(t) == 0 {
		return fmt.Errorf("carbon: empty trace")
	}
	if len(t) > MaxTraceHours {
		return fmt.Errorf("carbon: trace has %d samples, max %d", len(t), MaxTraceHours)
	}
	for i, ci := range t {
		v := ci.KgPerKWh()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("carbon: trace sample %d is not finite", i)
		}
		if v < 0 {
			return fmt.Errorf("carbon: trace sample %d is negative (%g kg/kWh)", i, v)
		}
		if v > maxIntensity {
			return fmt.Errorf("carbon: trace sample %d is %g kg/kWh, above the %g kg/kWh plausibility bound", i, v, maxIntensity)
		}
	}
	return nil
}

// Flat reports whether every sample equals the first — a flat trace
// integrates to exactly hours x intensity, the scalar-grid case.
func (t Trace) Flat() bool {
	for _, ci := range t {
		if ci != t[0] {
			return false
		}
	}
	return len(t) > 0
}

// Mean is the arithmetic mean intensity of one cycle, summed in index
// order so repeated calls are bit-identical.
func (t Trace) Mean() units.CarbonIntensity {
	if len(t) == 0 {
		return 0
	}
	var sum float64
	for _, ci := range t {
		sum += ci.KgPerKWh()
	}
	return units.KgPerKWh(sum / float64(len(t)))
}

// Bounds reports the minimum and maximum sample of the trace.
func (t Trace) Bounds() (min, max units.CarbonIntensity) {
	if len(t) == 0 {
		return 0, 0
	}
	min, max = t[0], t[0]
	for _, ci := range t[1:] {
		if ci < min {
			min = ci
		}
		if ci > max {
			max = ci
		}
	}
	return min, max
}

// Flat builds a trace of n identical samples.
func Flat(ci units.CarbonIntensity, n int) Trace {
	t := make(Trace, n)
	for i := range t {
		t[i] = ci
	}
	return t
}

// FromGrams builds a trace from g/kWh samples — the unit measured
// series and the API's inline profiles are expressed in.
func FromGrams(values []float64) (Trace, error) {
	t := make(Trace, len(values))
	for i, v := range values {
		t[i] = units.GramsPerKWh(v)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Grams returns the trace samples in g/kWh, the wire unit.
func (t Trace) Grams() []float64 {
	out := make([]float64, len(t))
	for i, ci := range t {
		out[i] = ci.GramsPerKWh()
	}
	return out
}
