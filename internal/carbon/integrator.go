package carbon

import (
	"fmt"
	"math"
	"sort"

	"greenfpga/internal/units"
)

// Integrator is a trace compiled for O(1) window integrals: a prefix
// table over one cycle plus the cycle total, so the integral over any
// [start, start+hours) span costs two antiderivative evaluations no
// matter how many years the span covers. Integrators are immutable and
// safe for concurrent use; they are compiled once per region and
// cached exactly like the platform constants in core.Compile.
type Integrator struct {
	values []float64 // kg/kWh per hour, one cycle
	prefix []float64 // prefix[i] = sum of values[:i]; len(values)+1 entries
	cycle  float64   // prefix[len(values)]
	flat   float64   // the constant intensity when isFlat
	isFlat bool
}

// NewIntegrator validates the trace and compiles its prefix tables.
func NewIntegrator(t Trace) (*Integrator, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	it := &Integrator{
		values: make([]float64, len(t)),
		prefix: make([]float64, len(t)+1),
		isFlat: t.Flat(),
		flat:   t[0].KgPerKWh(),
	}
	for i, ci := range t {
		it.values[i] = ci.KgPerKWh()
		it.prefix[i+1] = it.prefix[i] + it.values[i]
	}
	it.cycle = it.prefix[len(t)]
	return it, nil
}

// Len reports the cycle length in hours.
func (it *Integrator) Len() int { return len(it.values) }

// Mean is the mean intensity over one cycle.
func (it *Integrator) Mean() units.CarbonIntensity {
	return units.KgPerKWh(it.cycle / float64(len(it.values)))
}

// anti is the antiderivative of the tiled trace: the integral of the
// intensity signal over [0, t) hours, in (kg/kWh)·h.
func (it *Integrator) anti(t float64) float64 {
	n := float64(len(it.values))
	cycles := math.Floor(t / n)
	rem := t - cycles*n
	// Floating-point slop can push rem to n exactly; fold it back.
	i := int(rem)
	if i >= len(it.values) {
		i = len(it.values) - 1
		rem = n
	}
	return cycles*it.cycle + it.prefix[i] + (rem-float64(i))*it.values[i]
}

// Window integrates the intensity signal over [startHours,
// startHours+hours), returning (kg/kWh)·h: multiply by a constant
// hourly energy draw in kWh to get kg CO2e. A flat trace returns
// exactly hours x intensity — the scalar-grid identity the property
// tests pin — rather than a difference of antiderivatives.
func (it *Integrator) Window(startHours, hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	if it.isFlat {
		return hours * it.flat
	}
	return it.anti(startHours+hours) - it.anti(startHours)
}

// Convolve weights one operating year of the trace by an hourly
// utilization profile (tiled cyclically like the trace itself) and
// returns the utilization-weighted intensity integral in (kg/kWh)·h:
// multiply by the device's peak hourly energy draw to get annual kg.
func (it *Integrator) Convolve(util []float64) (float64, error) {
	if len(util) == 0 {
		return 0, fmt.Errorf("carbon: empty utilization profile")
	}
	for i, u := range util {
		if math.IsNaN(u) || u < 0 || u > 1 {
			return 0, fmt.Errorf("carbon: utilization sample %d (%g) outside [0,1]", i, u)
		}
	}
	var sum float64
	for h := 0; h < int(units.HoursPerYear); h++ {
		sum += util[h%len(util)] * it.values[h%len(it.values)]
	}
	return sum, nil
}

// ShiftProfile is the "daily" load-shifting policy compiled against a
// trace for one duty cycle: each day's run-hours are packed into that
// day's cleanest hours instead of spreading uniformly, modelling a
// deferrable workload that follows the grid signal. The energy drawn
// per day is unchanged — only its placement moves — so a flat trace
// shifts to exactly the unshifted total.
type ShiftProfile struct {
	runHours float64
	dayCost  []float64 // (kg/kWh)·h per day at the cheapest runHours hours
	prefix   []float64 // len(dayCost)+1 entries
	cycle    float64
}

// Shift compiles the daily policy for runHours of operation per day
// (0 < runHours <= 24, the duty cycle times 24). The trace cycle must
// cover whole days.
func (it *Integrator) Shift(runHours float64) (*ShiftProfile, error) {
	if math.IsNaN(runHours) || runHours <= 0 || runHours > 24 {
		return nil, fmt.Errorf("carbon: shift run-hours %g outside (0, 24]", runHours)
	}
	if len(it.values)%24 != 0 {
		return nil, fmt.Errorf("carbon: daily shift needs a whole-day trace, got %d hours", len(it.values))
	}
	days := len(it.values) / 24
	sp := &ShiftProfile{
		runHours: runHours,
		dayCost:  make([]float64, days),
		prefix:   make([]float64, days+1),
	}
	day := make([]float64, 24)
	whole := int(runHours)
	frac := runHours - float64(whole)
	for d := 0; d < days; d++ {
		copy(day, it.values[d*24:(d+1)*24])
		sort.Float64s(day)
		var cost float64
		for h := 0; h < whole; h++ {
			cost += day[h]
		}
		if whole < 24 {
			cost += frac * day[whole]
		}
		sp.dayCost[d] = cost
		sp.prefix[d+1] = sp.prefix[d] + cost
	}
	sp.cycle = sp.prefix[days]
	return sp, nil
}

// RunHours reports the operating hours packed into each day.
func (sp *ShiftProfile) RunHours() float64 { return sp.runHours }

// anti integrates the shifted day costs over [0, t) hours, charging a
// partial day its pro-rata share of that day's shifted cost.
func (sp *ShiftProfile) anti(t float64) float64 {
	days := t / 24
	n := float64(len(sp.dayCost))
	cycles := math.Floor(days / n)
	rem := days - cycles*n
	i := int(rem)
	if i >= len(sp.dayCost) {
		i = len(sp.dayCost) - 1
		rem = n
	}
	return cycles*sp.cycle + sp.prefix[i] + (rem-float64(i))*sp.dayCost[i]
}

// Window integrates the shifted intensity cost over [startHours,
// startHours+hours) in (kg/kWh)·h: multiply by the device's peak
// hourly energy draw (power x PUE, not duty-scaled — the duty cycle is
// already inside the packed run-hours) to get kg CO2e.
func (sp *ShiftProfile) Window(startHours, hours float64) float64 {
	if hours <= 0 {
		return 0
	}
	return sp.anti(startHours+hours) - sp.anti(startHours)
}
