package carbon

import (
	"bytes"
	"math"
	"testing"
)

// FuzzTrace drives the CSV and JSON trace loaders with arbitrary
// bytes. Whatever parses must then survive the whole downstream
// pipeline: validation holds, the integrator compiles, and window
// integrals stay finite, non-negative and inside the bounds the trace
// extremes imply. The seed corpus under testdata/fuzz/FuzzTrace keeps
// the interesting shapes (headers, indexed rows, object form,
// boundary intensities) in every run, fuzzing or not.
func FuzzTrace(f *testing.F) {
	f.Add([]byte("400\n350\n300\n"))
	f.Add([]byte("hour,g_per_kwh\n0,420\n1,11\n"))
	f.Add([]byte("[400, 350, 300]"))
	f.Add([]byte(`{"g_per_kwh": [820, 0, 24]}`))
	f.Add([]byte("# comment\n\n5000\n"))
	f.Add([]byte("0,400\n2,300\n"))
	f.Add([]byte("[-1]"))
	f.Add([]byte("[1e309]"))
	f.Fuzz(func(t *testing.T, data []byte) {
		traces := make([]Trace, 0, 2)
		if tr, err := ParseCSV(data); err == nil {
			traces = append(traces, tr)
		}
		if bytes.HasPrefix(bytes.TrimSpace(data), []byte("[")) || bytes.HasPrefix(bytes.TrimSpace(data), []byte("{")) {
			if tr, err := ParseJSON(data); err == nil {
				traces = append(traces, tr)
			}
		}
		for _, tr := range traces {
			if err := tr.Validate(); err != nil {
				t.Fatalf("parser accepted a trace Validate rejects: %v", err)
			}
			it, err := NewIntegrator(tr)
			if err != nil {
				t.Fatalf("NewIntegrator on a validated trace: %v", err)
			}
			min, max := tr.Bounds()
			for _, hours := range []float64{1, 24, 8760, 3.5 * 8760} {
				w := it.Window(17.25, hours)
				if math.IsNaN(w) || math.IsInf(w, 0) {
					t.Fatalf("Window(17.25, %g) not finite: %v", hours, w)
				}
				lo, hi := hours*min.KgPerKWh(), hours*max.KgPerKWh()
				if w < lo-1e-6*math.Max(1, hi) || w > hi+1e-6*math.Max(1, hi) {
					t.Fatalf("Window(17.25, %g) = %v outside [%v, %v]", hours, w, lo, hi)
				}
			}
			if tr.Flat() && it.Window(0, 8760) != 8760*tr[0].KgPerKWh() {
				t.Fatalf("flat trace window not exactly hours x intensity")
			}
			if len(tr)%24 == 0 {
				sp, err := it.Shift(7.2)
				if err != nil {
					t.Fatalf("Shift on whole-day trace: %v", err)
				}
				shifted, uniform := sp.Window(0, 8760), 0.3*it.Window(0, 8760)
				if shifted > uniform*(1+1e-9)+1e-12 {
					t.Fatalf("daily shift (%v) burned more than uniform operation (%v)", shifted, uniform)
				}
			}
		}
	})
}
