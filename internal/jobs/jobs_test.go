package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"greenfpga/api"
	"greenfpga/internal/store"
)

// fakeStudy is a controllable study: each chunk's payload is its
// index, compute calls are counted per chunk, and an optional gate
// blocks a chosen chunk until its context dies — the hook that lets
// tests interrupt a job mid-study deterministically.
type fakeStudy struct {
	chunks   int
	computed []atomic.Int64
	blockAt  int // chunk index that blocks until ctx is done; -1 for none
	started  chan struct{}
}

func newFakeStudy(chunks, blockAt int) *fakeStudy {
	return &fakeStudy{
		chunks:   chunks,
		computed: make([]atomic.Int64, chunks),
		blockAt:  blockAt,
		started:  make(chan struct{}, chunks+1),
	}
}

func (f *fakeStudy) NumChunks() int { return f.chunks }

func (f *fakeStudy) ComputeChunk(ctx context.Context, i int) ([]byte, error) {
	select {
	case f.started <- struct{}{}:
	default:
	}
	if i == f.blockAt {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	f.computed[i].Add(1)
	return []byte(fmt.Sprintf("chunk-%d", i)), nil
}

func (f *fakeStudy) Finalize(_ context.Context, chunks [][]byte) ([]byte, error) {
	return bytes.Join(chunks, []byte("|")), nil
}

// builderFor serves one fake study per build call, recording them so
// the test can inspect compute counts across manager generations.
type fakeBuilder struct {
	chunks  int
	blockAt int
	key     string
	builds  []*fakeStudy
}

func (b *fakeBuilder) build(_ context.Context, _ string, _ json.RawMessage) (Study, string, error) {
	s := newFakeStudy(b.chunks, b.blockAt)
	b.builds = append(b.builds, s)
	return s, b.key, nil
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

func newManager(t *testing.T, st *store.Store, b Builder) *Manager {
	t.Helper()
	m, err := New(Options{Store: st, Build: b})
	if err != nil {
		t.Fatalf("jobs.New: %v", err)
	}
	return m
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) Record {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := m.Status(id)
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		if rec.State == want {
			return rec
		}
		if terminal(rec.State) && rec.State != want {
			t.Fatalf("job reached %s (error %q), want %s", rec.State, rec.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job never reached %s", want)
	return Record{}
}

func TestJobRunsToDone(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	b := &fakeBuilder{chunks: 5, blockAt: -1, key: "mc:abc"}
	m := newManager(t, st, b.build)
	defer m.Shutdown(context.Background())

	rec, err := m.Submit(context.Background(), "mc", json.RawMessage(`{"samples": 5}`))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if rec.Endpoint != "/v1/mc" || rec.Chunks != 5 || rec.State != StateQueued {
		t.Fatalf("bad submit record: %+v", rec)
	}
	final := waitState(t, m, rec.ID, StateDone)
	if final.ChunksDone != 5 {
		t.Errorf("ChunksDone = %d, want 5", final.ChunksDone)
	}

	_, body, err := m.Result(rec.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	want := "chunk-0|chunk-1|chunk-2|chunk-3|chunk-4"
	if string(body) != want {
		t.Fatalf("result = %q, want %q", body, want)
	}
	// The result lives at the content address, not under the job.
	if v, ok, _ := st.Get("result:mc:abc"); !ok || string(v) != want {
		t.Fatalf("result:mc:abc = %q, %v", v, ok)
	}
	// Checkpoints are tombstoned once the result lands.
	if ks := st.Keys(ckptPrefix(rec.ID)); len(ks) != 0 {
		t.Fatalf("checkpoints remain after done: %v", ks)
	}
	s := m.Stats()
	if s.Done != 1 || s.ChunksComputed != 5 || s.ChunksSkipped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestResumeAfterShutdown is the crash contract: kill the manager
// mid-study, open a new one on the same store, and the job resumes
// from its checkpoints — completed chunks are never recomputed.
func TestResumeAfterShutdown(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	b := &fakeBuilder{chunks: 6, blockAt: 3, key: "mc:xyz"}
	m := newManager(t, st, b.build)

	rec, err := m.Submit(context.Background(), "mc", json.RawMessage(`{"samples": 6}`))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait until the job has durably finished chunks 0-2 and is
	// blocked inside chunk 3.
	deadline := time.Now().Add(10 * time.Second)
	for len(st.Keys(ckptPrefix(rec.ID))) < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(st.Keys(ckptPrefix(rec.ID))); got != 3 {
		t.Fatalf("%d checkpoints before shutdown, want 3", got)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The durable record still says running — resumable, not lost.
	raw, ok, _ := st.Get("job:" + rec.ID)
	if !ok {
		t.Fatal("job record gone after shutdown")
	}
	var parked Record
	if err := json.Unmarshal(raw, &parked); err != nil {
		t.Fatal(err)
	}
	if parked.State != StateRunning {
		t.Fatalf("parked state = %s, want running", parked.State)
	}
	st.Close()

	// "Restart": new store handle, new manager, unblocked builder.
	st2 := openStore(t, dir)
	defer st2.Close()
	b2 := &fakeBuilder{chunks: 6, blockAt: -1, key: "mc:xyz"}
	m2 := newManager(t, st2, b2.build)
	defer m2.Shutdown(context.Background())
	final := waitState(t, m2, rec.ID, StateDone)
	if final.Chunks != 6 {
		t.Fatalf("resumed chunks = %d", final.Chunks)
	}
	_, body, err := m2.Result(rec.ID)
	if err != nil {
		t.Fatalf("Result after resume: %v", err)
	}
	want := "chunk-0|chunk-1|chunk-2|chunk-3|chunk-4|chunk-5"
	if string(body) != want {
		t.Fatalf("resumed result = %q", body)
	}
	// Chunks 0-2 were checkpointed before the kill: the resumed study
	// must not have recomputed them.
	if len(b2.builds) != 1 {
		t.Fatalf("resume built %d studies, want 1", len(b2.builds))
	}
	for i := 0; i < 3; i++ {
		if n := b2.builds[0].computed[i].Load(); n != 0 {
			t.Errorf("chunk %d recomputed %d times after resume", i, n)
		}
	}
	for i := 3; i < 6; i++ {
		if n := b2.builds[0].computed[i].Load(); n != 1 {
			t.Errorf("chunk %d computed %d times on resume, want 1", i, n)
		}
	}
	s := m2.Stats()
	if s.Resumed != 1 || s.ChunksSkipped != 3 || s.ChunksComputed != 3 {
		t.Fatalf("resume stats = %+v", s)
	}
}

func TestCancelRunningJob(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	b := &fakeBuilder{chunks: 4, blockAt: 1, key: "k"}
	m := newManager(t, st, b.build)
	defer m.Shutdown(context.Background())

	rec, err := m.Submit(context.Background(), "sweep", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, rec.ID, StateRunning)
	<-b.builds[0].started // the worker is inside a chunk
	if _, err := m.Cancel(rec.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final := waitState(t, m, rec.ID, StateCanceled)
	if final.ErrorCode == "" {
		t.Error("canceled job carries no error code")
	}
	if _, _, err := m.Result(rec.ID); err == nil {
		t.Error("Result of a canceled job succeeded")
	}
	// Cancel is terminal across restarts: a new manager must not
	// resurrect it.
	if recs, _ := m.List(); len(recs) != 1 || recs[0].State != StateCanceled {
		t.Fatalf("List = %+v", recs)
	}
}

func TestSubmitWhileDraining(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	b := &fakeBuilder{chunks: 1, blockAt: -1, key: "k"}
	m := newManager(t, st, b.build)
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err := m.Submit(context.Background(), "mc", json.RawMessage(`{}`))
	ae := api.ToError(err)
	if ae == nil || ae.Code != "overloaded" {
		t.Fatalf("submit while draining: %v", err)
	}
}

func TestDeleteJob(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	b := &fakeBuilder{chunks: 2, blockAt: -1, key: "kd"}
	m := newManager(t, st, b.build)
	defer m.Shutdown(context.Background())

	rec, err := m.Submit(context.Background(), "mc", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, rec.ID, StateDone)
	if err := m.Delete(rec.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := m.Status(rec.ID); err == nil {
		t.Fatal("deleted job still has status")
	}
	// The content-addressed result outlives the job record.
	if _, ok, _ := st.Get("result:kd"); !ok {
		t.Fatal("result deleted with the job")
	}
	if err := m.Delete("no-such-job"); err == nil {
		t.Fatal("deleting an unknown job succeeded")
	}
}

func TestSubmitValidationFailure(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	m := newManager(t, st, func(_ context.Context, _ string, _ json.RawMessage) (Study, string, error) {
		return nil, "", &api.Error{Code: "invalid_request", Message: "nope"}
	})
	defer m.Shutdown(context.Background())
	_, err := m.Submit(context.Background(), "mc", json.RawMessage(`{}`))
	ae := api.ToError(err)
	if ae == nil || ae.Code != "invalid_request" {
		t.Fatalf("err = %v", err)
	}
	// A rejected submission leaves no durable residue.
	if n := st.Len(); n != 0 {
		t.Fatalf("store has %d keys after rejected submit", n)
	}
}

// TestRealStudyBytesMatchSync runs a real Monte-Carlo job end to end
// through the manager and asserts the stored result bytes are
// identical to the synchronous /v1/mc path — the property that lets
// the store serve the synchronous cache tier.
func TestRealStudyBytesMatchSync(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	e := api.NewEvaluator(8)
	m := newManager(t, st, EvaluatorBuilder(e))
	defer m.Shutdown(context.Background())

	body := `{"domain": "DNN", "samples": 9000, "seed": 3}`
	rec, err := m.Submit(context.Background(), "mc", json.RawMessage(body))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, rec.ID, StateDone)
	_, got, err := m.Result(rec.ID)
	if err != nil {
		t.Fatal(err)
	}

	var req api.MonteCarloRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	resp, err := e.RunMonteCarlo(context.Background(), req.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	want, err := api.EncodeJSON(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("job result differs from sync endpoint:\njob:  %.200s\nsync: %.200s", got, want)
	}
}
