// Package jobs runs compute requests asynchronously with durable,
// resumable progress. A job is one of the service's compute requests
// decomposed into chunks (api.Study); the manager executes chunks on
// worker goroutines, checkpointing each completed chunk's payload into
// the store, so a killed process re-runs only the chunks that had not
// landed. Because chunk outputs are deterministic (Monte-Carlo draws
// are sub-seeded by index, sweep points depend only on the axis), a
// resumed job's final bytes are identical to an uninterrupted run's —
// and identical to the synchronous endpoint's for the same request.
//
// Store layout (all under one store.Store):
//
//	job:<id>          job record (JSON: endpoint, raw request, state)
//	ckpt:<id>:<n>     chunk n's checkpoint payload
//	result:<key>      finished response bytes, keyed by CanonicalKey —
//	                  the same content address the result cache uses,
//	                  so finished jobs serve later synchronous requests
//
// Lifecycle: queued → running → done | failed | canceled. Shutdown
// interrupts running jobs after their current chunk and leaves them in
// state running; the next Open re-enqueues them and they resume from
// their checkpoints.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"greenfpga/api"
	"greenfpga/internal/store"
)

// State is a job lifecycle state.
type State string

// The job lifecycle.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a state ends the lifecycle.
func terminal(s State) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Record is the durable job metadata, stored at job:<id>. The raw
// request rides along so a restarted process can rebuild the study.
type Record struct {
	// ID is the job handle.
	ID string `json:"id"`
	// Endpoint is the canonical compute endpoint ("/v1/mc", ...).
	Endpoint string `json:"endpoint"`
	// Request is the submitted request body.
	Request json.RawMessage `json:"request"`
	// Key is the result's content address (api.CanonicalKey).
	Key string `json:"key"`
	// State is the lifecycle state.
	State State `json:"state"`
	// Chunks and ChunksDone report progress. ChunksDone is refreshed
	// from the store's checkpoints on load, so a crashed job reports
	// its durable progress, not its in-memory high-water mark.
	Chunks     int `json:"chunks"`
	ChunksDone int `json:"chunks_done"`
	// Error and ErrorCode describe a failed job.
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`
	// CreatedUnixMs and UpdatedUnixMs are wall-clock bookkeeping.
	CreatedUnixMs int64 `json:"created_unix_ms"`
	UpdatedUnixMs int64 `json:"updated_unix_ms"`
}

// Study is the slice of api.Study the manager runs: a fixed chunk
// count, independently computable chunks, and a finalizer over all
// chunk payloads.
type Study interface {
	NumChunks() int
	ComputeChunk(ctx context.Context, i int) ([]byte, error)
	Finalize(ctx context.Context, chunks [][]byte) ([]byte, error)
}

// Builder turns a submitted (endpoint, request) into a Study and its
// result key. The default wraps api.Evaluator.NewStudy; tests inject
// counting fakes.
type Builder func(ctx context.Context, endpoint string, raw json.RawMessage) (Study, string, error)

// EvaluatorBuilder adapts an api.Evaluator into the default Builder.
func EvaluatorBuilder(e *api.Evaluator) Builder {
	return func(ctx context.Context, endpoint string, raw json.RawMessage) (Study, string, error) {
		s, err := e.NewStudy(ctx, endpoint, raw)
		if err != nil {
			return nil, "", err
		}
		return s, s.Key, nil
	}
}

// Options configures a Manager.
type Options struct {
	// Store is the durable tier (required).
	Store *store.Store
	// Build turns submissions into studies (required).
	Build Builder
	// Workers is the number of jobs run concurrently (default 1 —
	// each chunk already parallelizes over the shared worker pool, so
	// more job workers trade single-job latency for queue fairness).
	Workers int
	// QueueDepth bounds the submission queue (default 256).
	QueueDepth int
}

// Stats is a point-in-time snapshot of the manager's counters.
type Stats struct {
	// Queued and Running are current gauges.
	Queued, Running int
	// Submitted, Done, Failed, Canceled and Resumed are lifetime
	// totals (Resumed counts jobs re-enqueued from a previous
	// process's store).
	Submitted, Done, Failed, Canceled, Resumed uint64
	// ChunksComputed and ChunksSkipped split chunk work into freshly
	// evaluated vs served from a checkpoint — skipped chunks are the
	// work a restart did NOT redo.
	ChunksComputed, ChunksSkipped uint64
}

// errShutdown is the cancel cause for jobs interrupted by Shutdown —
// distinct from a user cancel, so the worker leaves the job resumable
// instead of marking it canceled.
var errShutdown = errors.New("jobs: shutting down")

// errCanceled is the cancel cause for user-requested cancels.
var errCanceled = errors.New("jobs: canceled by request")

// job is one in-memory active job.
type job struct {
	rec    Record
	study  Study // nil for jobs resumed from the store until a worker rebuilds them
	cancel context.CancelCauseFunc
}

// Manager owns the job queue, the worker goroutines and the durable
// records. It is safe for concurrent use.
type Manager struct {
	store *store.Store
	build Builder

	mu     sync.Mutex
	active map[string]*job // queued or running

	queue    chan *job
	draining atomic.Bool
	wg       sync.WaitGroup
	base     context.Context
	stop     context.CancelCauseFunc

	submitted, done, failed, canceled, resumed atomic.Uint64
	chunksComputed, chunksSkipped              atomic.Uint64
	running                                    atomic.Int64
}

// New starts a manager over the store, re-enqueuing any job a previous
// process left queued or running — the crash-resume path.
func New(opts Options) (*Manager, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("jobs: nil store")
	}
	if opts.Build == nil {
		return nil, fmt.Errorf("jobs: nil builder")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	base, stop := context.WithCancelCause(context.Background())
	m := &Manager{
		store:  opts.Store,
		build:  opts.Build,
		active: make(map[string]*job),
		queue:  make(chan *job, depth),
		base:   base,
		stop:   stop,
	}
	if err := m.recover(); err != nil {
		stop(nil)
		return nil, err
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// recover re-enqueues jobs a previous process left unfinished.
func (m *Manager) recover() error {
	for _, key := range m.store.Keys("job:") {
		raw, ok, err := m.store.Get(key)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A malformed record (foreign writer, partial migration)
			// should not take the service down; skip it.
			continue
		}
		if terminal(rec.State) {
			continue
		}
		rec.State = StateQueued
		rec.ChunksDone = len(m.store.Keys(ckptPrefix(rec.ID)))
		j := &job{rec: rec}
		if len(m.queue) == cap(m.queue) {
			return fmt.Errorf("jobs: recovery overflows the %d-deep queue", cap(m.queue))
		}
		m.active[rec.ID] = j
		m.queue <- j
		m.resumed.Add(1)
	}
	return nil
}

// Submit validates, records and enqueues one job, returning its
// durable record. During shutdown it refuses with an overloaded error
// (the caller maps it to 503).
func (m *Manager) Submit(ctx context.Context, endpoint string, raw json.RawMessage) (Record, error) {
	if m.draining.Load() {
		return Record{}, &api.Error{Code: "overloaded", Message: "server is shutting down; submit to another replica"}
	}
	study, key, err := m.build(ctx, endpoint, raw)
	if err != nil {
		return Record{}, err
	}
	canon, err := api.CanonicalEndpoint(endpoint)
	if err != nil {
		return Record{}, err
	}
	id, err := newID()
	if err != nil {
		return Record{}, err
	}
	now := time.Now().UnixMilli()
	rec := Record{
		ID: id, Endpoint: canon, Request: append(json.RawMessage(nil), raw...),
		Key: key, State: StateQueued, Chunks: study.NumChunks(),
		CreatedUnixMs: now, UpdatedUnixMs: now,
	}
	j := &job{rec: rec, study: study}
	m.mu.Lock()
	if err := m.persist(&rec); err != nil {
		m.mu.Unlock()
		return Record{}, err
	}
	m.active[id] = j
	m.mu.Unlock()
	m.submitted.Add(1)
	select {
	case m.queue <- j:
		return rec, nil
	default:
		// Queue full: roll the record back to a terminal state so it
		// does not resurrect on restart.
		m.finish(j, StateFailed, &api.Error{Code: "overloaded", Message: "job queue is full; retry later"})
		return Record{}, &api.Error{Code: "overloaded", Message: "job queue is full; retry later"}
	}
}

// Status returns a job's record — from memory while active (freshest),
// from the store once terminal or after a restart.
func (m *Manager) Status(id string) (Record, error) {
	m.mu.Lock()
	if j, ok := m.active[id]; ok {
		rec := j.rec
		m.mu.Unlock()
		return rec, nil
	}
	m.mu.Unlock()
	raw, ok, err := m.store.Get("job:" + id)
	if err != nil {
		return Record{}, err
	}
	if !ok {
		return Record{}, &api.Error{Code: "not_found", Message: fmt.Sprintf("unknown job %q", id)}
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return Record{}, fmt.Errorf("jobs: corrupt record %s: %w", id, err)
	}
	return rec, nil
}

// Result returns a done job's response bytes — exactly what the
// synchronous endpoint would have written for the same request.
func (m *Manager) Result(id string) (Record, []byte, error) {
	rec, err := m.Status(id)
	if err != nil {
		return Record{}, nil, err
	}
	if rec.State != StateDone {
		return rec, nil, &api.Error{Code: "invalid_request",
			Message: fmt.Sprintf("job %s is %s, not done", id, rec.State)}
	}
	body, ok, err := m.store.Get("result:" + rec.Key)
	if err != nil {
		return rec, nil, err
	}
	if !ok {
		return rec, nil, &api.Error{Code: "not_found",
			Message: fmt.Sprintf("job %s's result was evicted from the store", id)}
	}
	return rec, body, nil
}

// Cancel stops an active job (its context is cancelled after the
// current chunk) or reports the terminal state it already reached.
func (m *Manager) Cancel(id string) (Record, error) {
	m.mu.Lock()
	j, ok := m.active[id]
	if ok && j.cancel != nil {
		j.cancel(errCanceled)
	}
	if ok && j.rec.State == StateQueued {
		// Not picked up yet: mark it so the worker drops it on pickup.
		j.rec.State = StateCanceled
		j.rec.UpdatedUnixMs = time.Now().UnixMilli()
		_ = m.persist(&j.rec)
		rec := j.rec
		delete(m.active, id)
		m.mu.Unlock()
		m.canceled.Add(1)
		return rec, nil
	}
	var rec Record
	if ok {
		rec = j.rec
	}
	m.mu.Unlock()
	if !ok {
		return m.Status(id)
	}
	return rec, nil
}

// Delete cancels the job if active and removes its record and
// checkpoints. The result bytes stay: they are content-addressed and
// may be serving the cache tier or other jobs.
func (m *Manager) Delete(id string) error {
	if _, err := m.Cancel(id); err != nil {
		return err
	}
	for _, k := range m.store.Keys(ckptPrefix(id)) {
		if err := m.store.Delete(k); err != nil {
			return err
		}
	}
	return m.store.Delete("job:" + id)
}

// List returns every job record, newest first.
func (m *Manager) List() ([]Record, error) {
	var out []Record
	seen := map[string]bool{}
	m.mu.Lock()
	for _, j := range m.active {
		out = append(out, j.rec)
		seen[j.rec.ID] = true
	}
	m.mu.Unlock()
	for _, key := range m.store.Keys("job:") {
		id := key[len("job:"):]
		if seen[id] {
			continue
		}
		rec, err := m.Status(id)
		if err != nil {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].CreatedUnixMs != out[k].CreatedUnixMs {
			return out[i].CreatedUnixMs > out[k].CreatedUnixMs
		}
		return out[i].ID > out[k].ID
	})
	return out, nil
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	queued := 0
	for _, j := range m.active {
		if j.rec.State == StateQueued {
			queued++
		}
	}
	m.mu.Unlock()
	return Stats{
		Queued:         queued,
		Running:        int(m.running.Load()),
		Submitted:      m.submitted.Load(),
		Done:           m.done.Load(),
		Failed:         m.failed.Load(),
		Canceled:       m.canceled.Load(),
		Resumed:        m.resumed.Load(),
		ChunksComputed: m.chunksComputed.Load(),
		ChunksSkipped:  m.chunksSkipped.Load(),
	}
}

// Drain makes Submit refuse immediately (the server's first shutdown
// step, before the HTTP listener drains) without interrupting running
// jobs — they keep checkpointing until Shutdown proper.
func (m *Manager) Drain() { m.draining.Store(true) }

// Shutdown refuses new submissions, interrupts running jobs after
// their in-flight chunk, waits for the workers (bounded by ctx) and
// syncs the store. Interrupted jobs keep state running in the store —
// the next New resumes them from their checkpoints, so a SIGTERM
// mid-study never loses completed chunks.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.draining.Store(true)
	m.stop(errShutdown) // every job context inherits the cause
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("jobs: workers still draining: %w", ctx.Err())
	}
	return m.store.Sync()
}

// worker drains the queue until shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.base.Done():
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one job to a terminal state — or, on shutdown, parks it
// resumable.
func (m *Manager) run(j *job) {
	m.mu.Lock()
	if j.rec.State != StateQueued {
		// Canceled while queued.
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(m.base)
	defer cancel(nil)
	j.cancel = cancel
	j.rec.State = StateRunning
	j.rec.UpdatedUnixMs = time.Now().UnixMilli()
	err := m.persist(&j.rec)
	m.mu.Unlock()
	if err != nil {
		m.finish(j, StateFailed, err)
		return
	}
	m.running.Add(1)
	defer m.running.Add(-1)

	study := j.study
	if study == nil {
		// Resumed from the store: rebuild from the recorded request.
		var berr error
		study, _, berr = m.build(ctx, j.rec.Endpoint, j.rec.Request)
		if berr != nil {
			m.finish(j, StateFailed, berr)
			return
		}
		j.study = study
	}

	chunks := make([][]byte, study.NumChunks())
	for i := range chunks {
		key := ckptKey(j.rec.ID, i)
		if c, ok, err := m.store.Get(key); err == nil && ok {
			chunks[i] = c
			m.chunksSkipped.Add(1)
			m.progress(j, i+1)
			continue
		}
		c, err := study.ComputeChunk(ctx, i)
		if err != nil {
			m.interrupted(j, ctx, err)
			return
		}
		if err := m.store.Put(key, c); err != nil {
			m.finish(j, StateFailed, err)
			return
		}
		chunks[i] = c
		m.chunksComputed.Add(1)
		m.progress(j, i+1)
	}
	body, err := study.Finalize(ctx, chunks)
	if err != nil {
		m.interrupted(j, ctx, err)
		return
	}
	if err := m.store.Put("result:"+j.rec.Key, body); err != nil {
		m.finish(j, StateFailed, err)
		return
	}
	// The result supersedes the checkpoints; tombstone them.
	for i := range chunks {
		_ = m.store.Delete(ckptKey(j.rec.ID, i))
	}
	m.finish(j, StateDone, nil)
}

// interrupted routes a chunk/finalize error: shutdown parks the job
// resumable, a user cancel ends it canceled, anything else fails it.
func (m *Manager) interrupted(j *job, ctx context.Context, err error) {
	cause := context.Cause(ctx)
	switch {
	case errors.Is(cause, errShutdown):
		// Shutdown: leave state running in the store; drop from the
		// active set so Status reads the durable record. The next New
		// re-enqueues it.
		m.mu.Lock()
		delete(m.active, j.rec.ID)
		m.mu.Unlock()
	case errors.Is(cause, errCanceled):
		m.finish(j, StateCanceled, err)
	default:
		m.finish(j, StateFailed, err)
	}
}

// progress records durable chunk progress on the in-memory record (the
// checkpoint write itself is the durable part).
func (m *Manager) progress(j *job, done int) {
	m.mu.Lock()
	j.rec.ChunksDone = done
	j.rec.UpdatedUnixMs = time.Now().UnixMilli()
	m.mu.Unlock()
}

// finish moves a job to a terminal state, persists it and syncs the
// store — terminal states are the durability points a client may act
// on (fetch the result, resubmit), so they must survive a crash.
func (m *Manager) finish(j *job, s State, err error) {
	m.mu.Lock()
	j.rec.State = s
	j.rec.UpdatedUnixMs = time.Now().UnixMilli()
	if s == StateDone {
		j.rec.ChunksDone = j.rec.Chunks
	}
	if err != nil && s != StateDone {
		ae := api.ToError(err)
		j.rec.Error = ae.Message
		j.rec.ErrorCode = ae.Code
	}
	_ = m.persist(&j.rec)
	delete(m.active, j.rec.ID)
	m.mu.Unlock()
	_ = m.store.Sync()
	switch s {
	case StateDone:
		m.done.Add(1)
	case StateFailed:
		m.failed.Add(1)
	case StateCanceled:
		m.canceled.Add(1)
	}
}

// persist writes the record at job:<id>.
func (m *Manager) persist(rec *Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return m.store.Put("job:"+rec.ID, raw)
}

// ckptPrefix is the checkpoint keyspace of one job.
func ckptPrefix(id string) string { return "ckpt:" + id + ":" }

// ckptKey is chunk i's checkpoint key.
func ckptKey(id string, i int) string { return ckptPrefix(id) + strconv.Itoa(i) }

// newID returns a 16-hex-char random job handle.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
