// Package sweep runs the parameter sweeps behind the paper's
// evaluation: 1-D sweeps over N_app, T_i or N_vol (Figs. 4-6) and 2-D
// grids with FPGA:ASIC ratio heatmaps and iso-ratio crossover contours
// (Fig. 8). Sweeps evaluate points in parallel across CPUs.
package sweep

import (
	"fmt"
	"math"

	"greenfpga/internal/pool"
	"greenfpga/internal/units"
)

// Axis is a named set of sample points.
type Axis struct {
	// Name labels the axis in reports ("Num Apps", "App Lifetime", ...).
	Name string
	// Values are the sample points in evaluation order.
	Values []float64
	// Log marks the axis as logarithmically spaced for chart rendering.
	Log bool
}

// Validate checks the axis.
func (a Axis) Validate() error {
	if len(a.Values) == 0 {
		return fmt.Errorf("sweep: axis %q has no values", a.Name)
	}
	for _, v := range a.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sweep: axis %q contains %g", a.Name, v)
		}
	}
	return nil
}

// Linspace returns n evenly spaced values covering [lo, hi].
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulation error at the endpoint
	return out
}

// Logspace returns n log-evenly spaced values covering [lo, hi]; both
// endpoints must be positive.
func Logspace(lo, hi float64, n int) []float64 {
	if n <= 0 || lo <= 0 || hi <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	step := (lhi - llo) / float64(n-1)
	for i := range out {
		out[i] = math.Pow(10, llo+float64(i)*step)
	}
	out[0], out[n-1] = lo, hi
	return out
}

// IntRange returns the integers lo..hi as float values (for N_app
// axes).
func IntRange(lo, hi int) []float64 {
	if hi < lo {
		return nil
	}
	out := make([]float64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, float64(v))
	}
	return out
}

// PairEval evaluates both platforms at one axis value.
type PairEval func(x float64) (fpga, asic units.Mass, err error)

// Point1D is one sample of a 1-D sweep.
type Point1D struct {
	// X is the axis value.
	X float64
	// FPGA and ASIC are the platform totals.
	FPGA, ASIC units.Mass
	// Ratio is FPGA:ASIC.
	Ratio float64
}

// Run1D evaluates the axis in parallel and returns points in axis
// order.
func Run1D(axis Axis, eval PairEval) ([]Point1D, error) {
	if err := axis.Validate(); err != nil {
		return nil, err
	}
	if eval == nil {
		return nil, fmt.Errorf("sweep: nil evaluator")
	}
	pts := make([]Point1D, len(axis.Values))
	err := runPool(len(axis.Values), func(i int) error {
		x := axis.Values[i]
		f, a, err := eval(x)
		if err != nil {
			return err
		}
		pts[i] = Point1D{X: x, FPGA: f, ASIC: a, Ratio: ratio(f, a)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// SetEval evaluates an N-platform set at one axis value, filling one
// total per platform in set order. The totals slice is the point's
// own backing array — implementations must not retain it.
type SetEval func(x float64, totals []units.Mass) error

// PointN is one sample of an N-platform sweep.
type PointN struct {
	// X is the axis value.
	X float64
	// Totals holds one platform total per set member, in set order.
	Totals []units.Mass
}

// RunN evaluates the axis for an n-platform set in parallel and
// returns points in axis order — the N-platform generalization of
// Run1D (which remains the dedicated FPGA/ASIC pair shape with its
// ratio column).
func RunN(axis Axis, n int, eval SetEval) ([]PointN, error) {
	return RunRangeN(axis, n, 0, len(axis.Values), eval)
}

// RunRangeN evaluates axis indices [lo, hi) for an n-platform set in
// parallel, returning those points in axis order. Point values depend
// only on the axis, so a range evaluation is identical to the same
// slice of a full RunN — the primitive behind chunked, resumable
// sweep jobs.
func RunRangeN(axis Axis, n, lo, hi int, eval SetEval) ([]PointN, error) {
	if err := axis.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("sweep: need at least one platform, got %d", n)
	}
	if eval == nil {
		return nil, fmt.Errorf("sweep: nil evaluator")
	}
	if lo < 0 || hi < lo || hi > len(axis.Values) {
		return nil, fmt.Errorf("sweep: point range [%d, %d) outside [0, %d)", lo, hi, len(axis.Values))
	}
	pts := make([]PointN, hi-lo)
	err := runPool(hi-lo, func(i int) error {
		x := axis.Values[lo+i]
		totals := make([]units.Mass, n)
		if err := eval(x, totals); err != nil {
			return err
		}
		pts[i] = PointN{X: x, Totals: totals}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// PairEval2D evaluates both platforms at one grid cell.
type PairEval2D func(x, y float64) (fpga, asic units.Mass, err error)

// Grid is a 2-D sweep result: Ratio[yi][xi] is the FPGA:ASIC total CFP
// ratio at (XAxis.Values[xi], YAxis.Values[yi]).
type Grid struct {
	// XAxis and YAxis are the swept parameters.
	XAxis, YAxis Axis
	// FPGA and ASIC hold the platform totals per cell.
	FPGA, ASIC [][]units.Mass
	// Ratio holds FPGA:ASIC per cell.
	Ratio [][]float64
}

// Run2D evaluates the grid in parallel.
func Run2D(x, y Axis, eval PairEval2D) (*Grid, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	if err := y.Validate(); err != nil {
		return nil, err
	}
	if eval == nil {
		return nil, fmt.Errorf("sweep: nil evaluator")
	}
	g := &Grid{XAxis: x, YAxis: y}
	g.FPGA = make([][]units.Mass, len(y.Values))
	g.ASIC = make([][]units.Mass, len(y.Values))
	g.Ratio = make([][]float64, len(y.Values))
	for yi := range y.Values {
		g.FPGA[yi] = make([]units.Mass, len(x.Values))
		g.ASIC[yi] = make([]units.Mass, len(x.Values))
		g.Ratio[yi] = make([]float64, len(x.Values))
	}
	err := runPool(len(x.Values)*len(y.Values), func(i int) error {
		xi, yi := i%len(x.Values), i/len(x.Values)
		f, a, err := eval(x.Values[xi], y.Values[yi])
		if err != nil {
			return err
		}
		g.FPGA[yi][xi] = f
		g.ASIC[yi][xi] = a
		g.Ratio[yi][xi] = ratio(f, a)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// ContourPoint is one point of an iso-ratio contour.
type ContourPoint struct {
	// X and Y are in axis units.
	X, Y float64
}

// Contour extracts the points where the ratio crosses the level along
// each row and column by linear interpolation — the pink crossover
// dashes of Fig. 8. Points are ordered by Y then X.
func (g *Grid) Contour(level float64) []ContourPoint {
	var out []ContourPoint
	// Row-wise crossings.
	for yi, row := range g.Ratio {
		for xi := 0; xi+1 < len(row); xi++ {
			p := interpolateCrossing(g.XAxis.Values[xi], g.XAxis.Values[xi+1],
				row[xi], row[xi+1], level, g.XAxis.Log)
			if !math.IsNaN(p) {
				out = append(out, ContourPoint{X: p, Y: g.YAxis.Values[yi]})
			}
		}
	}
	// Column-wise crossings.
	for xi := range g.XAxis.Values {
		for yi := 0; yi+1 < len(g.Ratio); yi++ {
			p := interpolateCrossing(g.YAxis.Values[yi], g.YAxis.Values[yi+1],
				g.Ratio[yi][xi], g.Ratio[yi+1][xi], level, g.YAxis.Log)
			if !math.IsNaN(p) {
				out = append(out, ContourPoint{X: g.XAxis.Values[xi], Y: p})
			}
		}
	}
	return out
}

// interpolateCrossing finds the axis value in [a, b] where the ratio
// passes level, or NaN when it does not. Log axes interpolate in log
// space.
func interpolateCrossing(a, b, ra, rb, level float64, logAxis bool) float64 {
	da, db := ra-level, rb-level
	if da == 0 {
		return a
	}
	if db == 0 || (da > 0) == (db > 0) {
		return math.NaN()
	}
	t := da / (da - db)
	if logAxis && a > 0 && b > 0 {
		return math.Pow(10, math.Log10(a)+t*(math.Log10(b)-math.Log10(a)))
	}
	return a + t*(b-a)
}

// ratio is FPGA:ASIC with a +Inf guard for zero ASIC totals.
func ratio(f, a units.Mass) float64 {
	if a == 0 {
		return math.Inf(1)
	}
	return f.Kilograms() / a.Kilograms()
}

// poolChunk is how many consecutive cells one sweep worker claims per
// fetch: sweep cells are cheap and uniform, so a small chunk balances
// well.
const poolChunk = 8

// runPool evaluates cells 0..n-1 on the shared fixed worker pool.
func runPool(n int, eval func(i int) error) error {
	return pool.Run(n, poolChunk, eval)
}
