package sweep

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"greenfpga/internal/units"
)

func TestLinspace(t *testing.T) {
	got := Linspace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("linspace[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if Linspace(0, 1, 0) != nil {
		t.Error("n=0 must be nil")
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("n=1: %v", got)
	}
}

func TestLogspace(t *testing.T) {
	got := Logspace(1e3, 1e6, 4)
	want := []float64{1e3, 1e4, 1e5, 1e6}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6*want[i] {
			t.Errorf("logspace[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if Logspace(-1, 10, 3) != nil || Logspace(1, 10, 0) != nil {
		t.Error("invalid inputs must be nil")
	}
}

func TestIntRange(t *testing.T) {
	got := IntRange(1, 4)
	if len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("IntRange: %v", got)
	}
	if IntRange(4, 1) != nil {
		t.Error("inverted range must be nil")
	}
}

func TestRun1D(t *testing.T) {
	axis := Axis{Name: "x", Values: Linspace(1, 10, 10)}
	pts, err := Run1D(axis, func(x float64) (units.Mass, units.Mass, error) {
		return units.Kilograms(2 * x), units.Kilograms(x), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("points: %d", len(pts))
	}
	for i, p := range pts {
		if p.X != axis.Values[i] {
			t.Errorf("order violated at %d: %g", i, p.X)
		}
		if math.Abs(p.Ratio-2) > 1e-12 {
			t.Errorf("ratio at %g: %g", p.X, p.Ratio)
		}
	}
}

func TestRun1DErrors(t *testing.T) {
	ok := func(x float64) (units.Mass, units.Mass, error) { return 1, 1, nil }
	if _, err := Run1D(Axis{Name: "empty"}, ok); err == nil {
		t.Error("empty axis must error")
	}
	if _, err := Run1D(Axis{Name: "nan", Values: []float64{math.NaN()}}, ok); err == nil {
		t.Error("NaN axis must error")
	}
	if _, err := Run1D(Axis{Name: "x", Values: []float64{1}}, nil); err == nil {
		t.Error("nil evaluator must error")
	}
	boom := errors.New("boom")
	_, err := Run1D(Axis{Name: "x", Values: Linspace(0, 1, 8)},
		func(x float64) (units.Mass, units.Mass, error) {
			if x > 0.5 {
				return 0, 0, boom
			}
			return 1, 1, nil
		})
	if !errors.Is(err, boom) {
		t.Errorf("evaluator error not propagated: %v", err)
	}
}

func TestRun2D(t *testing.T) {
	x := Axis{Name: "x", Values: Linspace(1, 4, 4)}
	y := Axis{Name: "y", Values: Linspace(1, 3, 3)}
	g, err := Run2D(x, y, func(xv, yv float64) (units.Mass, units.Mass, error) {
		return units.Kilograms(xv * yv), units.Kilograms(2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Ratio) != 3 || len(g.Ratio[0]) != 4 {
		t.Fatalf("grid shape %dx%d", len(g.Ratio), len(g.Ratio[0]))
	}
	if math.Abs(g.Ratio[2][3]-(4*3)/2.0) > 1e-12 {
		t.Errorf("ratio[2][3] = %g", g.Ratio[2][3])
	}
	if g.FPGA[1][1].Kilograms() != 2*2 {
		t.Errorf("fpga[1][1] = %v", g.FPGA[1][1])
	}
}

func TestRun2DErrors(t *testing.T) {
	okAxis := Axis{Name: "x", Values: []float64{1}}
	ok := func(x, y float64) (units.Mass, units.Mass, error) { return 1, 1, nil }
	if _, err := Run2D(Axis{Name: "bad"}, okAxis, ok); err == nil {
		t.Error("bad x axis must error")
	}
	if _, err := Run2D(okAxis, Axis{Name: "bad"}, ok); err == nil {
		t.Error("bad y axis must error")
	}
	if _, err := Run2D(okAxis, okAxis, nil); err == nil {
		t.Error("nil evaluator must error")
	}
	boom := errors.New("boom")
	_, err := Run2D(Axis{Name: "x", Values: Linspace(0, 1, 4)},
		Axis{Name: "y", Values: Linspace(0, 1, 4)},
		func(x, y float64) (units.Mass, units.Mass, error) {
			if x > 0.5 && y > 0.5 {
				return 0, 0, boom
			}
			return 1, 1, nil
		})
	if !errors.Is(err, boom) {
		t.Errorf("evaluator error not propagated: %v", err)
	}
}

func TestContour(t *testing.T) {
	// ratio(x, y) = x/y: the level-1 contour is the diagonal x = y.
	x := Axis{Name: "x", Values: Linspace(0.5, 4.5, 9)}
	y := Axis{Name: "y", Values: Linspace(0.5, 4.5, 9)}
	g, err := Run2D(x, y, func(xv, yv float64) (units.Mass, units.Mass, error) {
		return units.Kilograms(xv), units.Kilograms(yv), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Contour(1)
	if len(pts) == 0 {
		t.Fatal("no contour points")
	}
	for _, p := range pts {
		if math.Abs(p.X-p.Y) > 0.51 {
			t.Errorf("contour point (%g, %g) far from diagonal", p.X, p.Y)
		}
	}
	// A constant grid has no contour.
	flat, _ := Run2D(x, y, func(_, _ float64) (units.Mass, units.Mass, error) {
		return units.Kilograms(3), units.Kilograms(1), nil
	})
	if pts := flat.Contour(1); len(pts) != 0 {
		t.Errorf("flat grid contour: %d points", len(pts))
	}
}

func TestContourLogInterpolation(t *testing.T) {
	// On a log axis the crossing interpolates geometrically.
	g := &Grid{
		XAxis: Axis{Name: "v", Values: []float64{1e3, 1e5}, Log: true},
		YAxis: Axis{Name: "y", Values: []float64{1}},
		Ratio: [][]float64{{0.5, 1.5}},
	}
	pts := g.Contour(1)
	if len(pts) != 1 {
		t.Fatalf("points: %d", len(pts))
	}
	if math.Abs(pts[0].X-1e4) > 1 {
		t.Errorf("log crossing at %g, want 1e4", pts[0].X)
	}
}

// TestRunPoolCoversEveryCell drives the worker pool over a grid much
// larger than the worker count with an evaluator that hammers shared
// state, so `go test -race` exercises the pool's synchronization and
// the result check catches dropped or double-evaluated cells.
func TestRunPoolCoversEveryCell(t *testing.T) {
	const nx, ny = 53, 31 // deliberately not multiples of the chunk size
	var calls atomic.Int64
	x := Axis{Name: "x", Values: Linspace(0, 1, nx)}
	y := Axis{Name: "y", Values: Linspace(0, 1, ny)}
	g, err := Run2D(x, y, func(xv, yv float64) (units.Mass, units.Mass, error) {
		calls.Add(1)
		return units.Kilograms(xv + 2*yv + 1), units.Kilograms(1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != nx*ny {
		t.Fatalf("evaluator ran %d times, want %d", got, nx*ny)
	}
	for yi := range g.Ratio {
		for xi := range g.Ratio[yi] {
			want := x.Values[xi] + 2*y.Values[yi] + 1
			if math.Abs(g.Ratio[yi][xi]-want) > 1e-12 {
				t.Fatalf("cell (%d,%d) = %g, want %g", xi, yi, g.Ratio[yi][xi], want)
			}
		}
	}
}

// TestRunPoolFirstErrorDeterministic asserts the pool reports the
// lowest-indexed failure regardless of worker scheduling.
func TestRunPoolFirstErrorDeterministic(t *testing.T) {
	axis := Axis{Name: "x", Values: IntRange(0, 100)}
	for trial := 0; trial < 10; trial++ {
		_, err := Run1D(axis, func(x float64) (units.Mass, units.Mass, error) {
			if x >= 50 {
				return 0, 0, fmt.Errorf("boom at %d", int(x))
			}
			return 1, 1, nil
		})
		if err == nil || !strings.Contains(err.Error(), "boom at 50") {
			t.Fatalf("trial %d: want the lowest failing cell's error, got %v", trial, err)
		}
	}
}

// Property: 1-D sweeps preserve pointwise results regardless of
// parallel execution order.
func TestQuickRun1DDeterministic(t *testing.T) {
	f := func(seed uint8) bool {
		axis := Axis{Name: "x", Values: Linspace(float64(seed), float64(seed)+10, 16)}
		eval := func(x float64) (units.Mass, units.Mass, error) {
			return units.Kilograms(x * x), units.Kilograms(x + 1), nil
		}
		a, err1 := Run1D(axis, eval)
		b, err2 := Run1D(axis, eval)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRunN checks the N-platform sweep: totals land in axis and set
// order, and it agrees with Run1D on the two-platform shape.
func TestRunN(t *testing.T) {
	axis := Axis{Name: "x", Values: Linspace(1, 4, 4)}
	pts, err := RunN(axis, 3, func(x float64, totals []units.Mass) error {
		for i := range totals {
			totals[i] = units.Kilograms(x * float64(i+1))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		wantX := axis.Values[i]
		if p.X != wantX || len(p.Totals) != 3 {
			t.Fatalf("point %d: %+v", i, p)
		}
		for j, m := range p.Totals {
			if m != units.Kilograms(wantX*float64(j+1)) {
				t.Errorf("point %d total %d: %v", i, j, m)
			}
		}
	}
	// Two-platform agreement with Run1D.
	pairEval := func(x float64) (units.Mass, units.Mass, error) {
		return units.Kilograms(x * x), units.Kilograms(x + 1), nil
	}
	p1, err := Run1D(axis, pairEval)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := RunN(axis, 2, func(x float64, totals []units.Mass) error {
		f, a, err := pairEval(x)
		totals[0], totals[1] = f, a
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i].FPGA != pn[i].Totals[0] || p1[i].ASIC != pn[i].Totals[1] {
			t.Errorf("point %d: Run1D %+v vs RunN %+v", i, p1[i], pn[i])
		}
	}
}

// TestRunNErrors covers the argument checks and evaluator failures.
func TestRunNErrors(t *testing.T) {
	axis := Axis{Name: "x", Values: Linspace(1, 2, 2)}
	if _, err := RunN(axis, 0, func(float64, []units.Mass) error { return nil }); err == nil {
		t.Error("zero platforms must error")
	}
	if _, err := RunN(axis, 1, nil); err == nil {
		t.Error("nil evaluator must error")
	}
	if _, err := RunN(Axis{}, 1, func(float64, []units.Mass) error { return nil }); err == nil {
		t.Error("invalid axis must error")
	}
	boom := fmt.Errorf("boom")
	if _, err := RunN(axis, 1, func(float64, []units.Mass) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("evaluator error not surfaced: %v", err)
	}
}
