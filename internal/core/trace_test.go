package core

import (
	"math"
	"reflect"
	"testing"

	"greenfpga/internal/carbon"
	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

// diurnalTrace builds a deterministic day/night intensity swing.
func diurnalTrace(n int) carbon.Trace {
	tr := make(carbon.Trace, n)
	for i := range tr {
		tr[i] = units.GramsPerKWh(300 + 250*math.Sin(2*math.Pi*float64(i%24)/24))
	}
	return tr
}

// relDiff is the relative difference between two masses.
func relDiff(a, b units.Mass) float64 {
	if b == 0 {
		return math.Abs(a.Kilograms())
	}
	return math.Abs(a.Kilograms()-b.Kilograms()) / math.Abs(b.Kilograms())
}

// TestTracedFlatMatchesScalar: siting a platform on a flat trace whose
// level equals its scalar grid intensity must reproduce the scalar
// operational carbon (up to float associativity — the flat-window
// identity is pinned exactly in the carbon package).
func TestTracedFlatMatchesScalar(t *testing.T) {
	fpga, asic := testPlatforms(t)
	for _, p := range []Platform{fpga, asic} {
		mix, err := grid.ByRegion(grid.RegionWorld)
		if err != nil {
			t.Fatal(err)
		}
		ci, err := mix.Intensity()
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		traced := p
		traced.UseTrace = carbon.Flat(ci, 24)
		tc, err := Compile(traced)
		if err != nil {
			t.Fatal(err)
		}
		s := Uniform("flat", 4, units.YearsOf(1.5), 1e5, 0)
		a, err := scalar.Evaluate(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tc.Evaluate(s)
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(b.Breakdown.Operation, a.Breakdown.Operation); d > 1e-12 {
			t.Errorf("%s: flat-traced operation %v vs scalar %v (rel %g)", p.Spec.Kind, b.Breakdown.Operation, a.Breakdown.Operation, d)
		}
		if b.Breakdown.Manufacturing != a.Breakdown.Manufacturing || b.Breakdown.Design != a.Breakdown.Design {
			t.Errorf("%s: embodied terms moved under a trace", p.Spec.Kind)
		}
	}
}

// TestTracedEvaluateMatchesSequential: on a traced platform the legacy
// Evaluate and the schedule engine on the equivalent back-to-back
// timeline must agree bit for bit — Evaluate accumulates arrival
// offsets exactly as Sequential writes them.
func TestTracedEvaluateMatchesSequential(t *testing.T) {
	fpga, asic := testPlatforms(t)
	for _, p := range []Platform{fpga, asic} {
		p.UseTrace = diurnalTrace(8760)
		c, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		s := Scenario{Name: "seq", Apps: []Application{
			{Name: "a", Lifetime: units.YearsOf(0.7), Volume: 1e5},
			{Name: "b", Lifetime: units.YearsOf(1.3), Volume: 5e4, UtilizationScale: 0.6},
			{Name: "c", Lifetime: units.YearsOf(2.1), Volume: 2e5},
		}}
		direct, err := c.Evaluate(s)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := c.EvaluateSchedule(Sequential(s))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct, sched.Assessment) {
			t.Errorf("%s: Evaluate != EvaluateSchedule(Sequential): %+v vs %+v", p.Spec.Kind, direct, sched.Assessment)
		}
	}
}

// TestTracedUniformMatchesEvaluate: the uniform fast path must agree
// with the per-application loop on traced platforms (same windows,
// summed the same way) to a relative ulp bound.
func TestTracedUniformMatchesEvaluate(t *testing.T) {
	fpga, _ := testPlatforms(t)
	fpga.UseTrace = diurnalTrace(8760)
	c, err := Compile(fpga)
	if err != nil {
		t.Fatal(err)
	}
	const n, vol = 5, 1e5
	life := units.YearsOf(0.9)
	u, err := c.EvaluateUniform(n, life, vol, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := c.Evaluate(Uniform("u", n, life, vol, 0))
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(u.Breakdown.Operation, e.Breakdown.Operation); d > 1e-12 {
		t.Errorf("uniform traced operation %v vs loop %v (rel %g)", u.Breakdown.Operation, e.Breakdown.Operation, d)
	}
}

// TestTracedStartMatters: moving a residency window across a varying
// trace must move its operational carbon — the whole point of the
// engine — while scalar platforms stay position-independent.
func TestTracedStartMatters(t *testing.T) {
	fpga, _ := testPlatforms(t)
	app := Application{Name: "x", Lifetime: units.YearsOf(0.5), Volume: 1e5}
	at := func(p Platform, start float64) units.Mass {
		c, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		a, err := c.EvaluateSchedule(Schedule{Name: "s", Deployments: []Deployment{{App: app, Start: units.YearsOf(start)}}})
		if err != nil {
			t.Fatal(err)
		}
		return a.Breakdown.Operation
	}
	traced := fpga
	traced.UseTrace = diurnalTrace(8760)
	if a, b := at(traced, 0), at(traced, 0.5); a == b {
		t.Errorf("traced operation identical (%v) across a half-year start shift", a)
	}
	if a, b := at(fpga, 0), at(fpga, 0.5); a != b {
		t.Errorf("scalar operation moved with start: %v vs %v", a, b)
	}
}

// TestShiftBeatsUniform: the daily policy on a varying trace must cut
// operational carbon and leave every embodied term alone; on the
// scalar path shift selectors are rejected outright.
func TestShiftBeatsUniform(t *testing.T) {
	fpga, _ := testPlatforms(t)
	fpga.UseTrace = diurnalTrace(8760)
	plain, err := Compile(fpga)
	if err != nil {
		t.Fatal(err)
	}
	shifted := fpga
	shifted.UseShift = carbon.ShiftDaily
	sc, err := Compile(shifted)
	if err != nil {
		t.Fatal(err)
	}
	s := Uniform("w", 3, units.YearsOf(2), 1e5, 0)
	a, err := plain.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.Breakdown.Operation.Kilograms() >= a.Breakdown.Operation.Kilograms() {
		t.Errorf("shifted operation %v not below uniform %v", b.Breakdown.Operation, a.Breakdown.Operation)
	}
	if b.Breakdown.Manufacturing != a.Breakdown.Manufacturing {
		t.Errorf("shift moved embodied carbon")
	}

	bad := fpga
	bad.UseTrace = nil
	bad.UseShift = carbon.ShiftDaily
	if err := bad.Validate(); err == nil {
		t.Error("shift without a trace validated")
	}
	bad.UseShift = "hourly"
	if err := bad.Validate(); err == nil {
		t.Error("unknown shift policy validated")
	}
}

// TestWithDutyCycleTraced: the Monte-Carlo duty-cycle derivation must
// recompile the trace state (the shift packing depends on duty) and
// land exactly where a fresh Compile lands.
func TestWithDutyCycleTraced(t *testing.T) {
	fpga, _ := testPlatforms(t)
	fpga.UseTrace = diurnalTrace(8760)
	fpga.UseShift = carbon.ShiftDaily
	c, err := Compile(fpga)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := c.WithDutyCycle(0.55)
	if err != nil {
		t.Fatal(err)
	}
	direct := fpga
	direct.DutyCycle = 0.55
	dc, err := Compile(direct)
	if err != nil {
		t.Fatal(err)
	}
	s := Uniform("d", 2, units.YearsOf(1.5), 1e4, 0)
	a, err := derived.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dc.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("WithDutyCycle traced result diverges from fresh compile: %+v vs %+v", a, b)
	}
	if derived.AnnualOperationCarbon() != dc.AnnualOperationCarbon() {
		t.Errorf("opAnnual diverges: %v vs %v", derived.AnnualOperationCarbon(), dc.AnnualOperationCarbon())
	}
}

// TestRegionIntegratorReuse: compiling two platforms against the same
// cached region integrator must share the constants (pointer
// equality), the "compiled per-region trace constants" contract.
func TestRegionIntegratorReuse(t *testing.T) {
	it, err := carbon.IntegratorFor("oregon")
	if err != nil {
		t.Fatal(err)
	}
	fpga, asic := testPlatforms(t)
	fpga.UseIntegrator = it
	asic.UseIntegrator = it
	cf, err := Compile(fpga)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := Compile(asic)
	if err != nil {
		t.Fatal(err)
	}
	if cf.op == nil || ca.op == nil || cf.op.integ != ca.op.integ {
		t.Error("compiled platforms did not share the cached region integrator")
	}
}
