package core

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/units"
)

func testPair(t *testing.T) Pair {
	t.Helper()
	fpga, asic := testPlatforms(t)
	return Pair{FPGA: fpga, ASIC: asic}
}

func TestCompare(t *testing.T) {
	pr := testPair(t)
	c, err := pr.Compare(Uniform("cmp", 2, units.YearsOf(2), 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	wantRatio := c.FPGA.Total().Kilograms() / c.ASIC.Total().Kilograms()
	if math.Abs(c.Ratio-wantRatio) > 1e-12 {
		t.Errorf("ratio %g, want %g", c.Ratio, wantRatio)
	}
	if c.FPGA.Kind == c.ASIC.Kind {
		t.Error("kinds should differ")
	}
	// Errors on either side propagate with context.
	bad := pr
	bad.FPGA.DutyCycle = 5
	if _, err := bad.Compare(Uniform("x", 1, units.YearsOf(1), 10, 0)); err == nil {
		t.Error("FPGA-side error must propagate")
	}
	bad2 := pr
	bad2.ASIC.DutyCycle = 5
	if _, err := bad2.Compare(Uniform("x", 1, units.YearsOf(1), 10, 0)); err == nil {
		t.Error("ASIC-side error must propagate")
	}
}

func TestBisect(t *testing.T) {
	// Root of x^2 - 2 on [0, 2] is sqrt(2).
	x, found, err := Bisect(0, 2, 1e-9, func(x float64) (float64, error) {
		return x*x - 2, nil
	})
	if err != nil || !found {
		t.Fatalf("bisect: %v %v", found, err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-8 {
		t.Errorf("root %g, want sqrt(2)", x)
	}
	// No sign change: not found, no error.
	_, found, err = Bisect(0, 1, 1e-9, func(x float64) (float64, error) {
		return x + 1, nil
	})
	if err != nil || found {
		t.Errorf("no-bracket case: found=%v err=%v", found, err)
	}
	// Exact zero at an endpoint.
	x, found, _ = Bisect(0, 1, 1e-9, func(x float64) (float64, error) { return x, nil })
	if !found || x != 0 {
		t.Errorf("endpoint zero: %g %v", x, found)
	}
	// Input validation.
	if _, _, err := Bisect(2, 1, 1e-9, nil); err == nil {
		t.Error("inverted range must error")
	}
	if _, _, err := Bisect(0, 1, 0, nil); err == nil {
		t.Error("zero tolerance must error")
	}
}

func TestCrossoverNumApps(t *testing.T) {
	pr := testPair(t)
	// The test FPGA has 2x silicon and 2x power of the ASIC, so it can
	// never win on operation alone, but at short lifetimes the per-app
	// ASIC design + hardware cost amortizes and a crossover exists.
	n, found, err := pr.CrossoverNumApps(units.YearsOf(0.2), 1e5, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !found || n < 2 {
		t.Fatalf("crossover N=%d found=%v", n, found)
	}
	// Verify the reported N is genuinely the first winning count.
	dPrev, _ := pr.diff(Uniform("p", n-1, units.YearsOf(0.2), 1e5, 0))
	dAt, _ := pr.diff(Uniform("a", n, units.YearsOf(0.2), 1e5, 0))
	if !(dPrev >= 0 && dAt < 0) {
		t.Errorf("crossover not tight: diff(%d)=%g diff(%d)=%g", n-1, dPrev, n, dAt)
	}
	// Long lifetimes keep the 2x-power FPGA above the ASIC forever.
	_, found, err = pr.CrossoverNumApps(units.YearsOf(5), 1e5, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("no crossover expected at 5-year lifetimes")
	}
	if _, _, err := pr.CrossoverNumApps(units.YearsOf(1), 1e5, 0, 0); err == nil {
		t.Error("maxN < 1 must error")
	}
}

func TestCrossoverLifetime(t *testing.T) {
	pr := testPair(t)
	// With several applications the FPGA wins at short lifetimes and
	// loses at long ones; the boundary is the F2A point.
	tstar, found, err := pr.CrossoverLifetime(6, 1e5, 0, units.YearsOf(0.05), units.YearsOf(20))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("expected a lifetime crossover")
	}
	lo, _ := pr.diff(Uniform("lo", 6, units.YearsOf(tstar.Years()*0.9), 1e5, 0))
	hi, _ := pr.diff(Uniform("hi", 6, units.YearsOf(tstar.Years()*1.1), 1e5, 0))
	if !(lo < 0 && hi > 0) {
		t.Errorf("F2A point not bracketed: lo=%g hi=%g at T*=%v", lo, hi, tstar)
	}
	if _, _, err := pr.CrossoverLifetime(0, 1e5, 0, units.YearsOf(0.1), units.YearsOf(1)); err == nil {
		t.Error("nApps < 1 must error")
	}
}

func TestCrossoverVolume(t *testing.T) {
	pr := testPair(t)
	// Short lifetimes, several apps: at small volumes the per-app ASIC
	// design CFP dominates (FPGA wins); at large volumes the FPGA's 2x
	// hardware and power lose. An F2A volume crossover must exist.
	v, found, err := pr.CrossoverVolume(6, units.YearsOf(0.5), 0, 1, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	if !found || v <= 1 {
		t.Fatalf("volume crossover %g found=%v", v, found)
	}
	lo, _ := pr.diff(Uniform("lo", 6, units.YearsOf(0.5), v*0.9, 0))
	hi, _ := pr.diff(Uniform("hi", 6, units.YearsOf(0.5), v*1.1, 0))
	if !(lo < 0 && hi > 0) {
		t.Errorf("volume crossover not bracketed: lo=%g hi=%g at V*=%g", lo, hi, v)
	}
	if _, _, err := pr.CrossoverVolume(0, units.YearsOf(1), 0, 1, 10); err == nil {
		t.Error("nApps < 1 must error")
	}
	if _, _, err := pr.CrossoverVolume(2, units.YearsOf(1), 0, -1, 10); err == nil {
		t.Error("negative volume range must error")
	}
}

// Property: Bisect finds roots of shifted linear functions anywhere in
// the bracket to the requested tolerance.
func TestQuickBisectLinear(t *testing.T) {
	f := func(rootRaw, slopeRaw float64) bool {
		root := math.Mod(math.Abs(rootRaw), 100)
		slope := 0.1 + math.Mod(math.Abs(slopeRaw), 10)
		if math.IsNaN(root + slope) {
			return true
		}
		x, found, err := Bisect(-1, 101, 1e-6, func(x float64) (float64, error) {
			return slope * (x - root), nil
		})
		return err == nil && found && math.Abs(x-root) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
