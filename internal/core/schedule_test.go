package core

import (
	"math/rand"
	"reflect"
	"testing"

	"greenfpga/internal/device"
	"greenfpga/internal/units"
)

// allKinds cycles the property tests through every platform class.
var allKinds = []device.Kind{device.ASIC, device.FPGA, device.GPU, device.CPU}

// TestQuickSequentialScheduleMatchesEvaluate is the degenerate-schedule
// equivalence property: serializing any legacy Scenario onto the
// timeline (Sequential) and evaluating it as a Schedule reproduces
// Evaluate — and the frozen reference implementation — bit for bit,
// for all four platform kinds, including chip-lifetime caps.
func TestQuickSequentialScheduleMatchesEvaluate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		kind := allKinds[i%len(allKinds)]
		p := randomPlatform(t, r, kind)
		s := randomScenario(r)

		want, err := Evaluate(p, s)
		if err != nil {
			t.Fatalf("iter %d: Evaluate: %v", i, err)
		}
		ref, err := evaluateReference(p, s)
		if err != nil {
			t.Fatalf("iter %d: reference: %v", i, err)
		}
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("iter %d: Compile: %v", i, err)
		}
		got, err := c.EvaluateSchedule(Sequential(s))
		if err != nil {
			t.Fatalf("iter %d: EvaluateSchedule: %v", i, err)
		}
		if !reflect.DeepEqual(got.Assessment, want) {
			t.Fatalf("iter %d: %s sequential schedule diverges from Evaluate:\ngot  %+v\nwant %+v",
				i, kind, got.Assessment, want)
		}
		if !reflect.DeepEqual(got.Assessment, ref) {
			t.Fatalf("iter %d: %s sequential schedule diverges from frozen reference", i, kind)
		}
		if got.Span.Years() != s.TotalYears().Years() {
			t.Fatalf("iter %d: span %v, scenario total %v", i, got.Span, s.TotalYears())
		}
		if got.PeakConcurrent != 1 {
			t.Fatalf("iter %d: back-to-back schedule has peak concurrency %d, want 1",
				i, got.PeakConcurrent)
		}
	}
}

// TestQuickSimultaneousScheduleMatchesUniform is the second half of
// the degenerate-schedule property: n identical applications arriving
// simultaneously (Staggered with interval 0) on an uncapped platform
// match Evaluate on the Uniform scenario bit for bit and
// EvaluateUniform to within the documented 1e-9 reassociation
// tolerance, for all four platform kinds. (Capped reusable platforms
// are the designed divergence — wall-clock refresh — and are pinned by
// TestScheduleSpanDrivesRefresh below; capped non-reusable platforms
// stay exact and are exercised here.)
func TestQuickSimultaneousScheduleMatchesUniform(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		kind := allKinds[i%len(allKinds)]
		p := randomPlatform(t, r, kind)
		if kind != device.ASIC {
			p.ChipLifetime = 0
		}
		n := 1 + r.Intn(12)
		lifetime := units.YearsOf(0.2 + r.Float64()*4)
		volume := 1 + r.Float64()*1e6
		var sizeGates float64
		if r.Intn(2) == 0 {
			sizeGates = r.Float64() * 2e8
		}

		c, err := Compile(p)
		if err != nil {
			t.Fatalf("iter %d: Compile: %v", i, err)
		}
		sch := Staggered("u", n, 0, lifetime, volume, sizeGates)
		got, err := c.EvaluateSchedule(sch)
		if err != nil {
			t.Fatalf("iter %d: EvaluateSchedule: %v", i, err)
		}

		want, err := c.Evaluate(Uniform("u", n, lifetime, volume, sizeGates))
		if err != nil {
			t.Fatalf("iter %d: Evaluate: %v", i, err)
		}
		if !reflect.DeepEqual(got.Assessment, want) {
			t.Fatalf("iter %d: %s simultaneous schedule diverges from Evaluate:\ngot  %+v\nwant %+v",
				i, kind, got.Assessment, want)
		}

		uni, err := c.EvaluateUniform(n, lifetime, volume, sizeGates)
		if err != nil {
			t.Fatalf("iter %d: EvaluateUniform: %v", i, err)
		}
		pairs := []struct {
			name      string
			got, want units.Mass
		}{
			{"design", got.Breakdown.Design, uni.Breakdown.Design},
			{"manufacturing", got.Breakdown.Manufacturing, uni.Breakdown.Manufacturing},
			{"packaging", got.Breakdown.Packaging, uni.Breakdown.Packaging},
			{"eol", got.Breakdown.EOL, uni.Breakdown.EOL},
			{"operation", got.Breakdown.Operation, uni.Breakdown.Operation},
			{"appdev", got.Breakdown.AppDevelopment, uni.Breakdown.AppDevelopment},
			{"configuration", got.Breakdown.Configuration, uni.Breakdown.Configuration},
			{"total", got.Total(), uni.Total()},
		}
		for _, pr := range pairs {
			if !relClose(pr.got, pr.want) {
				t.Fatalf("iter %d: %s %s diverges from EvaluateUniform: got %v want %v",
					i, kind, pr.name, pr.got, pr.want)
			}
		}
		if got.FleetSize != uni.FleetSize || got.HardwareGenerations != uni.HardwareGenerations {
			t.Fatalf("iter %d: fleet quantities diverge: %+v vs %+v", i, got.Assessment, uni)
		}
		if got.PeakConcurrent != n {
			t.Fatalf("iter %d: peak concurrency %d, want %d", i, got.PeakConcurrent, n)
		}
	}
}

// TestQuickScheduleSetMatchesLegacyPaths pins the set plumbing: a
// CompiledSet evaluated on a degenerate schedule reproduces the legacy
// pair and set comparisons bit for bit (ratios, winner, assessments).
func TestQuickScheduleSetMatchesLegacyPaths(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		set := Set{
			randomPlatform(t, r, device.FPGA),
			randomPlatform(t, r, device.ASIC),
			randomPlatform(t, r, device.GPU),
			randomPlatform(t, r, device.CPU),
		}
		s := randomScenario(r)
		cs, err := set.Compile()
		if err != nil {
			t.Fatalf("iter %d: compile: %v", i, err)
		}
		want, err := cs.Compare(s)
		if err != nil {
			t.Fatalf("iter %d: Compare: %v", i, err)
		}
		got, err := cs.CompareSchedule(Sequential(s))
		if err != nil {
			t.Fatalf("iter %d: CompareSchedule: %v", i, err)
		}
		for j := range cs {
			if !reflect.DeepEqual(got.Assessments[j].Assessment, want.Assessments[j]) {
				t.Fatalf("iter %d: platform %d diverges from set compare", i, j)
			}
		}
		if !reflect.DeepEqual(got.Ratios, want.Ratios) || got.Winner != want.Winner {
			t.Fatalf("iter %d: ratios/winner diverge: %+v vs %+v", i, got, want)
		}
		if got.WinnerAssessment().Platform != want.WinnerAssessment().Platform {
			t.Fatalf("iter %d: winner assessment mismatch", i)
		}
		// The pair view agrees through the same schedule.
		pairCmp, err := CompiledPair{FPGA: cs[0], ASIC: cs[1]}.Compare(s)
		if err != nil {
			t.Fatal(err)
		}
		if got.Ratios[0][1] != pairCmp.Ratio {
			t.Fatalf("iter %d: schedule ratio %g, pair ratio %g", i, got.Ratios[0][1], pairCmp.Ratio)
		}
	}
}

// TestScheduleSpanDrivesRefresh pins the designed semantic difference
// from the legacy path: a reusable fleet refreshes on wall-clock span,
// so overlapping deployments compress generations and late arrivals
// stretch them.
func TestScheduleSpanDrivesRefresh(t *testing.T) {
	fpga, _ := testPlatforms(t)
	fpga.ChipLifetime = units.YearsOf(8)
	c, err := Compile(fpga)
	if err != nil {
		t.Fatal(err)
	}

	// Five 2-year apps back to back: 10-year span, two generations —
	// exactly the legacy accounting.
	seq, err := c.EvaluateSchedule(Sequential(Uniform("s", 5, units.YearsOf(2), 1e5, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if seq.HardwareGenerations != 2 || seq.Span.Years() != 10 {
		t.Fatalf("sequential: gens %d span %v, want 2 gens over 10y", seq.HardwareGenerations, seq.Span)
	}

	// The same five apps staggered every six months: 4-year span, one
	// generation — overlap compresses the refresh clock.
	stag, err := c.EvaluateSchedule(Staggered("s", 5, units.YearsOf(0.5), units.YearsOf(2), 1e5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if stag.HardwareGenerations != 1 || stag.Span.Years() != 4 {
		t.Fatalf("staggered: gens %d span %v, want 1 gen over 4y", stag.HardwareGenerations, stag.Span)
	}
	if stag.Total() >= seq.Total() {
		t.Errorf("staggering under a refresh cap must cut the FPGA total: %v vs %v",
			stag.Total(), seq.Total())
	}

	// A late arrival stretches the span past a refresh boundary.
	late := Schedule{Name: "late", Deployments: []Deployment{
		{App: Application{Name: "a", Lifetime: units.YearsOf(2), Volume: 1e5}},
		{App: Application{Name: "b", Lifetime: units.YearsOf(2), Volume: 1e5}, Start: units.YearsOf(9)},
	}}
	got, err := c.EvaluateSchedule(late)
	if err != nil {
		t.Fatal(err)
	}
	if got.Span.Years() != 11 || got.HardwareGenerations != 2 {
		t.Fatalf("late arrival: span %v gens %d, want 11y and 2 gens", got.Span, got.HardwareGenerations)
	}
	// The span starts at the first arrival, not at t=0.
	shifted := Schedule{Name: "shifted", Deployments: []Deployment{
		{App: Application{Name: "a", Lifetime: units.YearsOf(2), Volume: 1e5}, Start: units.YearsOf(5)},
		{App: Application{Name: "b", Lifetime: units.YearsOf(2), Volume: 1e5}, Start: units.YearsOf(7)},
	}}
	sgot, err := c.EvaluateSchedule(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if sgot.Span.Years() != 4 || sgot.HardwareGenerations != 1 {
		t.Fatalf("shifted schedule: span %v gens %d, want 4y and 1 gen", sgot.Span, sgot.HardwareGenerations)
	}
}

// TestScheduleSizing pins shared vs dedicated fleet provisioning and
// the concurrency sweep's half-open residency semantics.
func TestScheduleSizing(t *testing.T) {
	fpga, _ := testPlatforms(t)
	c, err := Compile(fpga)
	if err != nil {
		t.Fatal(err)
	}
	overlap := Staggered("o", 3, units.YearsOf(0.5), units.YearsOf(2), 1e5, 0)

	shared, err := c.EvaluateSchedule(overlap)
	if err != nil {
		t.Fatal(err)
	}
	if shared.FleetSize != 1e5 {
		t.Errorf("shared fleet %g, want 1e5 (largest resident)", shared.FleetSize)
	}
	if shared.PeakConcurrent != 3 || shared.PeakDemand != 3e5 {
		t.Errorf("peaks: %d deployments / %g devices, want 3 / 3e5",
			shared.PeakConcurrent, shared.PeakDemand)
	}

	overlap.Sizing = SizeDedicated
	ded, err := c.EvaluateSchedule(overlap)
	if err != nil {
		t.Fatal(err)
	}
	if ded.FleetSize != 3e5 || ded.DevicesManufactured != 3e5 {
		t.Errorf("dedicated fleet %g (%g manufactured), want 3e5", ded.FleetSize, ded.DevicesManufactured)
	}
	if ded.Total() <= shared.Total() {
		t.Errorf("dedicated sizing must cost more than shared: %v vs %v", ded.Total(), shared.Total())
	}

	// Half-open residencies: a retirement at t does not overlap an
	// arrival at t, so back-to-back deployments never stack.
	seq := Staggered("s", 3, units.YearsOf(2), units.YearsOf(2), 1e5, 0)
	seq.Sizing = SizeDedicated
	got, err := c.EvaluateSchedule(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got.PeakConcurrent != 1 || got.FleetSize != 1e5 {
		t.Errorf("back-to-back dedicated: peak %d fleet %g, want 1 / 1e5",
			got.PeakConcurrent, got.FleetSize)
	}
}

// TestScheduleValidation exercises the error paths.
func TestScheduleValidation(t *testing.T) {
	fpga, _ := testPlatforms(t)
	c, err := Compile(fpga)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Schedule{
		{Name: "empty"},
		{Name: "neg-start", Deployments: []Deployment{
			{App: Application{Name: "a", Lifetime: units.YearsOf(1), Volume: 1}, Start: units.YearsOf(-1)},
		}},
		{Name: "bad-app", Deployments: []Deployment{
			{App: Application{Name: "a", Lifetime: units.YearsOf(1)}},
		}},
		{Name: "bad-sizing", Sizing: "elastic", Deployments: []Deployment{
			{App: Application{Name: "a", Lifetime: units.YearsOf(1), Volume: 1}},
		}},
	}
	for _, sch := range cases {
		if _, err := c.EvaluateSchedule(sch); err == nil {
			t.Errorf("schedule %q must not evaluate", sch.Name)
		}
	}
	if (Schedule{}).Span() != 0 {
		t.Error("empty schedule must span zero")
	}
	if _, err := (CompiledSet{}).CompareSchedule(Sequential(Uniform("x", 1, units.YearsOf(1), 1, 0))); err == nil {
		t.Error("empty compiled set must not compare")
	}
	if sch := Staggered("n", -3, 0, units.YearsOf(1), 1, 0); len(sch.Deployments) != 0 || sch.Validate() == nil {
		t.Error("negative n must yield an empty (invalid) schedule")
	}
}
