package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"greenfpga/internal/deploy"
	"greenfpga/internal/device"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
)

// deployZero returns an all-zero app-dev profile (no engineering, no
// configuration carbon).
func deployZero() deploy.AppDev { return deploy.AppDev{} }

// testPlatforms builds a small ASIC/FPGA pair on 10nm for engine tests.
func testPlatforms(t *testing.T) (fpga, asic Platform) {
	t.Helper()
	node, err := technode.ByName("10nm")
	if err != nil {
		t.Fatal(err)
	}
	asic = Platform{
		Spec: device.Spec{
			Name: "test-asic", Kind: device.ASIC, Node: node,
			DieArea: units.MM2(100), PeakPower: units.Watts(10),
		},
		DutyCycle: 0.5,
	}
	fpga = Platform{
		Spec: device.Spec{
			Name: "test-fpga", Kind: device.FPGA, Node: node,
			DieArea: units.MM2(200), PeakPower: units.Watts(20),
			CapacityGates: 50e6,
		},
		DutyCycle: 0.5,
	}
	return fpga, asic
}

func TestScenarioValidate(t *testing.T) {
	good := Uniform("ok", 3, units.YearsOf(2), 1e6, 0)
	if err := good.Validate(); err != nil {
		t.Errorf("good scenario invalid: %v", err)
	}
	if got := good.TotalYears().Years(); got != 6 {
		t.Errorf("total years %g, want 6", got)
	}
	if len(good.Apps) != 3 || !strings.HasPrefix(good.Apps[0].Name, "ok-app") {
		t.Errorf("uniform apps: %+v", good.Apps)
	}
	bad := []Scenario{
		{Name: "empty"},
		{Name: "zeroT", Apps: []Application{{Lifetime: 0, Volume: 1}}},
		{Name: "zeroV", Apps: []Application{{Lifetime: units.YearsOf(1), Volume: 0}}},
		{Name: "negSize", Apps: []Application{{Lifetime: units.YearsOf(1), Volume: 1, SizeGates: -1}}},
	}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Errorf("scenario %q should be invalid", s.Name)
		}
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{
		Design: 1, Manufacturing: 2, Packaging: 3, EOL: -1,
		Operation: 10, AppDevelopment: 4, Configuration: 0.5,
	}
	if b.Embodied() != 5 {
		t.Errorf("embodied %v", b.Embodied())
	}
	if b.Deployment() != 14.5 {
		t.Errorf("deployment %v", b.Deployment())
	}
	if b.Total() != 19.5 {
		t.Errorf("total %v", b.Total())
	}
	sum := b.Add(b)
	if sum.Total() != 39 {
		t.Errorf("add: %v", sum.Total())
	}
	if b.Scale(2) != sum {
		t.Errorf("scale(2) != add(self): %+v vs %+v", b.Scale(2), sum)
	}
}

func TestEvaluateASICPaysEmbodiedPerApp(t *testing.T) {
	_, asic := testPlatforms(t)
	one, err := Evaluate(asic, Uniform("one", 1, units.YearsOf(2), 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	three, err := Evaluate(asic, Uniform("three", 3, units.YearsOf(2), 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 1: three applications = exactly three times one application.
	if math.Abs(three.Total().Kilograms()-3*one.Total().Kilograms()) > 1e-6 {
		t.Errorf("ASIC scaling: %v vs 3x %v", three.Total(), one.Total())
	}
	if three.DevicesManufactured != 3000 {
		t.Errorf("devices manufactured %g, want 3000", three.DevicesManufactured)
	}
	if len(three.PerApp) != 3 {
		t.Errorf("per-app results: %d", len(three.PerApp))
	}
}

func TestEvaluateFPGAPaysEmbodiedOnce(t *testing.T) {
	fpga, _ := testPlatforms(t)
	one, err := Evaluate(fpga, Uniform("one", 1, units.YearsOf(2), 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	three, err := Evaluate(fpga, Uniform("three", 3, units.YearsOf(2), 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 2: embodied carbon is identical; only deployment scales.
	if one.Breakdown.Embodied() != three.Breakdown.Embodied() {
		t.Errorf("FPGA embodied changed: %v vs %v",
			one.Breakdown.Embodied(), three.Breakdown.Embodied())
	}
	if three.Breakdown.Operation.Kilograms() <= 2.9*one.Breakdown.Operation.Kilograms() {
		t.Errorf("FPGA operation should triple: %v vs %v",
			three.Breakdown.Operation, one.Breakdown.Operation)
	}
	if three.DevicesManufactured != 1000 {
		t.Errorf("devices manufactured %g, want 1000 (single fleet)", three.DevicesManufactured)
	}
}

func TestEvaluateNFPGAGangs(t *testing.T) {
	fpga, _ := testPlatforms(t) // capacity 50e6 gates
	s := Uniform("big", 1, units.YearsOf(1), 100, 125e6)
	res, err := Evaluate(fpga, s)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(125/50) = 3 devices per unit.
	if res.PerApp[0].DevicesPerUnit != 3 {
		t.Errorf("N_FPGA = %d, want 3", res.PerApp[0].DevicesPerUnit)
	}
	if res.FleetSize != 300 {
		t.Errorf("fleet %g, want 300", res.FleetSize)
	}
	small, _ := Evaluate(fpga, Uniform("small", 1, units.YearsOf(1), 100, 0))
	if res.Breakdown.Manufacturing.Kilograms() <= 2.9*small.Breakdown.Manufacturing.Kilograms() {
		t.Error("ganged fleet should triple manufacturing carbon")
	}
}

func TestChipLifetimeGenerations(t *testing.T) {
	fpga, _ := testPlatforms(t)
	fpga.ChipLifetime = units.YearsOf(15)
	// 10 apps x 2 years = 20 years > 15: two hardware generations.
	res, err := Evaluate(fpga, Uniform("long", 10, units.YearsOf(2), 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.HardwareGenerations != 2 {
		t.Errorf("generations %d, want 2", res.HardwareGenerations)
	}
	if res.DevicesManufactured != 2000 {
		t.Errorf("devices %g, want 2000", res.DevicesManufactured)
	}
	// Within the lifetime no rebuy happens.
	short, _ := Evaluate(fpga, Uniform("short", 7, units.YearsOf(2), 1000, 0))
	if short.HardwareGenerations != 1 {
		t.Errorf("14-year scenario should fit one generation, got %d", short.HardwareGenerations)
	}
	// Design carbon is not re-paid for the second generation.
	long2 := res.Breakdown
	short2 := short.Breakdown
	if long2.Design != short2.Design {
		t.Error("design CFP must not scale with hardware generations")
	}
	// ASIC with an application outliving the chip also rebuys.
	_, asic := testPlatforms(t)
	asic.ChipLifetime = units.YearsOf(5)
	a, err := Evaluate(asic, Uniform("aging", 1, units.YearsOf(12), 1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a.DevicesManufactured != 3000 { // ceil(12/5) = 3 generations
		t.Errorf("ASIC devices %g, want 3000", a.DevicesManufactured)
	}
}

func TestUtilizationScale(t *testing.T) {
	fpga, asic := testPlatforms(t)
	for _, p := range []Platform{fpga, asic} {
		full := Uniform("full", 1, units.YearsOf(2), 1000, 0)
		half := full
		half.Apps = append([]Application(nil), full.Apps...)
		half.Apps[0].UtilizationScale = 0.5
		a, err := Evaluate(p, full)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Evaluate(p, half)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b.Breakdown.Operation.Kilograms()-a.Breakdown.Operation.Kilograms()/2) > 1e-9 {
			t.Errorf("%s: half utilization operation %v, want half of %v",
				p.Spec.Name, b.Breakdown.Operation, a.Breakdown.Operation)
		}
		if a.Breakdown.Embodied() != b.Breakdown.Embodied() {
			t.Errorf("%s: utilization must not change embodied carbon", p.Spec.Name)
		}
	}
	// Out-of-range scales are rejected.
	bad := Uniform("bad", 1, units.YearsOf(1), 10, 0)
	bad.Apps[0].UtilizationScale = 1.5
	if bad.Validate() == nil {
		t.Error("utilization > 1 must be invalid")
	}
	bad.Apps[0].UtilizationScale = -0.1
	if bad.Validate() == nil {
		t.Error("negative utilization must be invalid")
	}
}

func TestStrictEq2ScalesAppDev(t *testing.T) {
	fpga, _ := testPlatforms(t)
	loose := Uniform("loose", 2, units.YearsOf(3), 1000, 0)
	strict := loose
	strict.StrictEq2 = true
	a, err := Evaluate(fpga, loose)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(fpga, strict)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Breakdown.AppDevelopment.Scale(3) // T_i = 3 years
	if math.Abs(b.Breakdown.AppDevelopment.Kilograms()-want.Kilograms()) > 1e-9 {
		t.Errorf("strict app-dev %v, want %v", b.Breakdown.AppDevelopment, want)
	}
	if a.Breakdown.Operation != b.Breakdown.Operation {
		t.Error("strict mode must not change operation")
	}
}

func TestEvaluateErrors(t *testing.T) {
	fpga, asic := testPlatforms(t)
	good := Uniform("ok", 1, units.YearsOf(1), 10, 0)
	badPlatform := fpga
	badPlatform.DutyCycle = 2
	if _, err := Evaluate(badPlatform, good); err == nil {
		t.Error("bad duty cycle must error")
	}
	badYield := asic
	badYield.YieldOverride = 1.5
	if _, err := Evaluate(badYield, good); err == nil {
		t.Error("bad yield override must error")
	}
	negLife := fpga
	negLife.ChipLifetime = units.YearsOf(-1)
	if _, err := Evaluate(negLife, good); err == nil {
		t.Error("negative chip lifetime must error")
	}
	negStaff := fpga
	negStaff.DesignEngineers = -1
	if _, err := Evaluate(negStaff, good); err == nil {
		t.Error("negative staffing must error")
	}
	if _, err := Evaluate(fpga, Scenario{Name: "empty"}); err == nil {
		t.Error("empty scenario must error")
	}
}

func TestYieldOverride(t *testing.T) {
	_, asic := testPlatforms(t)
	asic.YieldOverride = 0.5
	dc, err := asic.DeviceCost()
	if err != nil {
		t.Fatal(err)
	}
	if dc.Manufacturing.Yield != 0.5 {
		t.Errorf("yield %g, want 0.5", dc.Manufacturing.Yield)
	}
	natural := asic
	natural.YieldOverride = 0
	nat, _ := natural.DeviceCost()
	// Halving yield doubles the per-die manufacturing carbon relative
	// to a perfect-yield baseline.
	perfect := asic
	perfect.YieldOverride = 1
	p, _ := perfect.DeviceCost()
	if math.Abs(dc.Manufacturing.Total().Kilograms()-2*p.Manufacturing.Total().Kilograms()) > 1e-9 {
		t.Errorf("override scaling: %v vs 2x %v", dc.Manufacturing.Total(), p.Manufacturing.Total())
	}
	if nat.Manufacturing.Yield <= 0.5 || nat.Manufacturing.Yield >= 1 {
		t.Errorf("natural yield %g implausible", nat.Manufacturing.Yield)
	}
}

func TestLegacyDesignModelSwitch(t *testing.T) {
	_, asic := testPlatforms(t)
	modern, err := asic.DesignCFP()
	if err != nil {
		t.Fatal(err)
	}
	asic.UseLegacyDesignModel = true
	legacy, err := asic.DesignCFP()
	if err != nil {
		t.Fatal(err)
	}
	if legacy >= modern {
		t.Errorf("legacy model should underestimate: %v vs %v", legacy, modern)
	}
}

func TestPerAppSumsToTotal(t *testing.T) {
	// The per-application breakdowns plus the shared embodied carbon
	// (FPGA) must reconstruct the scenario total exactly.
	fpga, asic := testPlatforms(t)
	s := Scenario{Name: "mixed", Apps: []Application{
		{Name: "a", Lifetime: units.YearsOf(0.5), Volume: 100},
		{Name: "b", Lifetime: units.YearsOf(2), Volume: 5000, SizeGates: 120e6},
		{Name: "c", Lifetime: units.YearsOf(1), Volume: 900, UtilizationScale: 0.4},
	}}
	for _, p := range []Platform{fpga, asic} {
		res, err := Evaluate(p, s)
		if err != nil {
			t.Fatal(err)
		}
		var perApp Breakdown
		for _, a := range res.PerApp {
			perApp = perApp.Add(a.Breakdown)
		}
		shared := res.Breakdown.Total() - perApp.Total()
		if p.Spec.Kind == device.ASIC {
			if math.Abs(shared.Kilograms()) > 1e-9 {
				t.Errorf("ASIC per-app sums miss total by %v", shared)
			}
		} else {
			// The FPGA's shared remainder is exactly the embodied carbon.
			if math.Abs(shared.Kilograms()-res.Breakdown.Embodied().Kilograms()) > 1e-9 {
				t.Errorf("FPGA shared remainder %v != embodied %v",
					shared, res.Breakdown.Embodied())
			}
		}
	}
}

// Property: FPGA total CFP is monotone in every scenario axis (more
// apps, longer lifetimes, higher volumes never reduce carbon).
func TestQuickEvaluateMonotone(t *testing.T) {
	fpga, asic := testPlatforms(t)
	f := func(n1, n2 uint8, tRaw, vRaw float64) bool {
		nLo := 1 + int(n1)%8
		nHi := nLo + int(n2)%8
		tYears := 0.25 + math.Mod(math.Abs(tRaw), 5)
		vol := 10 + math.Mod(math.Abs(vRaw), 1e6)
		if math.IsNaN(tYears + vol) {
			return true
		}
		for _, p := range []Platform{fpga, asic} {
			lo, err1 := Evaluate(p, Uniform("lo", nLo, units.YearsOf(tYears), vol, 0))
			hi, err2 := Evaluate(p, Uniform("hi", nHi, units.YearsOf(tYears), vol, 0))
			if err1 != nil || err2 != nil {
				return false
			}
			if hi.Total() < lo.Total() {
				return false
			}
			hv, err3 := Evaluate(p, Uniform("hv", nLo, units.YearsOf(tYears), vol*2, 0))
			if err3 != nil || hv.Total() < lo.Total() {
				return false
			}
			ht, err4 := Evaluate(p, Uniform("ht", nLo, units.YearsOf(tYears*2), vol, 0))
			if err4 != nil || ht.Total() < lo.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: an "FPGA" with identical silicon, power and a single
// application costs the same as the ASIC except for the
// app-development overhead — the reconfigurability advantage is
// exactly the multi-application amortization.
func TestQuickSingleAppEquivalence(t *testing.T) {
	fpga, asic := testPlatforms(t)
	fpga.Spec.DieArea = asic.Spec.DieArea
	fpga.Spec.PeakPower = asic.Spec.PeakPower
	noDev := deployZero()
	fpga.AppDev = &noDev
	f := func(tRaw, vRaw float64) bool {
		tYears := 0.25 + math.Mod(math.Abs(tRaw), 5)
		vol := 10 + math.Mod(math.Abs(vRaw), 1e5)
		if math.IsNaN(tYears + vol) {
			return true
		}
		s := Uniform("eq", 1, units.YearsOf(tYears), vol, 0)
		a, err1 := Evaluate(fpga, s)
		b, err2 := Evaluate(asic, s)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.Total().Kilograms()-b.Total().Kilograms()) <
			1e-9*math.Max(1, b.Total().Kilograms())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
