package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"greenfpga/internal/device"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
)

// evaluateReference is a frozen copy of the pre-compiled-pipeline
// Evaluate, kept verbatim so the equivalence property below compares
// the compiled paths against a genuinely independent implementation
// rather than against themselves.
func evaluateReference(p Platform, s Scenario) (Assessment, error) {
	if err := p.Validate(); err != nil {
		return Assessment{}, err
	}
	if err := s.Validate(); err != nil {
		return Assessment{}, err
	}

	dc, err := p.DeviceCost()
	if err != nil {
		return Assessment{}, err
	}
	des, err := p.DesignCFP()
	if err != nil {
		return Assessment{}, err
	}
	opAnnual, err := p.operation().AnnualCarbon()
	if err != nil {
		return Assessment{}, err
	}
	ad := p.appDev()
	perApp, err := ad.PerApplication()
	if err != nil {
		return Assessment{}, err
	}
	perCfg, err := ad.PerConfiguration()
	if err != nil {
		return Assessment{}, err
	}

	out := Assessment{
		Platform:            p.Spec.Name,
		Kind:                p.Spec.Kind,
		HardwareGenerations: 1,
	}
	addHardware := func(b *Breakdown, devices float64) {
		b.Manufacturing += dc.Manufacturing.Total().Scale(devices)
		b.Packaging += dc.Packaging.Total().Scale(devices)
		b.EOL += dc.EOL.Net().Scale(devices)
	}

	if p.Spec.Kind == device.ASIC {
		for _, app := range s.Apps {
			n, err := p.Spec.Required(app.SizeGates)
			if err != nil {
				return Assessment{}, err
			}
			devices := app.Volume * float64(n)
			gens := 1
			if p.ChipLifetime > 0 && app.Lifetime > p.ChipLifetime {
				gens = int(math.Ceil(app.Lifetime.Years() / p.ChipLifetime.Years()))
			}
			var b Breakdown
			b.Design = des
			addHardware(&b, devices*float64(gens))
			b.Operation = opAnnual.Scale(devices * app.Lifetime.Years() * app.utilization())
			appDevCost := perApp
			cfgCost := perCfg.Scale(devices)
			if s.StrictEq2 {
				appDevCost = appDevCost.Scale(app.Lifetime.Years())
				cfgCost = cfgCost.Scale(app.Lifetime.Years())
			}
			b.AppDevelopment = appDevCost
			b.Configuration = cfgCost
			out.PerApp = append(out.PerApp, AppAssessment{
				Name: app.Name, DevicesPerUnit: n, Breakdown: b,
			})
			out.Breakdown = out.Breakdown.Add(b)
			out.DevicesManufactured += devices * float64(gens)
			out.FleetSize = math.Max(out.FleetSize, devices)
		}
		return out, nil
	}

	var fleet float64
	for _, app := range s.Apps {
		n, err := p.Spec.Required(app.SizeGates)
		if err != nil {
			return Assessment{}, err
		}
		fleet = math.Max(fleet, app.Volume*float64(n))
	}
	gens := 1
	if p.ChipLifetime > 0 {
		total := s.TotalYears().Years()
		if total > p.ChipLifetime.Years() {
			gens = int(math.Ceil(total / p.ChipLifetime.Years()))
		}
	}
	out.FleetSize = fleet
	out.HardwareGenerations = gens
	out.DevicesManufactured = fleet * float64(gens)
	out.Breakdown.Design = des
	addHardware(&out.Breakdown, fleet*float64(gens))

	for _, app := range s.Apps {
		n, _ := p.Spec.Required(app.SizeGates)
		devices := app.Volume * float64(n)
		var b Breakdown
		b.Operation = opAnnual.Scale(devices * app.Lifetime.Years() * app.utilization())
		appDevCost := perApp
		cfgCost := perCfg.Scale(devices)
		if s.StrictEq2 {
			appDevCost = appDevCost.Scale(app.Lifetime.Years())
			cfgCost = cfgCost.Scale(app.Lifetime.Years())
		}
		b.AppDevelopment = appDevCost
		b.Configuration = cfgCost
		out.PerApp = append(out.PerApp, AppAssessment{
			Name: app.Name, DevicesPerUnit: n, Breakdown: b,
		})
		out.Breakdown = out.Breakdown.Add(b)
	}
	return out, nil
}

// randomPlatform draws a valid platform with randomized die, power,
// deployment and lifetime knobs.
func randomPlatform(t *testing.T, r *rand.Rand, kind device.Kind) Platform {
	t.Helper()
	nodes := []string{"28nm", "10nm", "7nm"}
	node, err := technode.ByName(nodes[r.Intn(len(nodes))])
	if err != nil {
		t.Fatal(err)
	}
	p := Platform{
		Spec: device.Spec{
			Name:      "rand-" + string(kind),
			Kind:      kind,
			Node:      node,
			DieArea:   units.MM2(20 + r.Float64()*400),
			PeakPower: units.Watts(0.5 + r.Float64()*50),
		},
		DutyCycle: 0.05 + r.Float64()*0.9,
	}
	if kind == device.FPGA {
		p.Spec.CapacityGates = 1e6 + r.Float64()*1e8
	}
	if r.Intn(2) == 0 {
		p.PUE = 1 + r.Float64()
	}
	if r.Intn(3) == 0 {
		p.YieldOverride = 0.2 + r.Float64()*0.8
	}
	if r.Intn(3) == 0 {
		p.ChipLifetime = units.YearsOf(1 + r.Float64()*10)
	}
	if r.Intn(2) == 0 {
		p.DesignEngineers = 50 + r.Float64()*500
		p.DesignDuration = units.YearsOf(0.5 + r.Float64()*3)
	}
	return p
}

// randomScenario draws a non-uniform scenario with 1-6 applications.
func randomScenario(r *rand.Rand) Scenario {
	s := Scenario{Name: "rand", StrictEq2: r.Intn(4) == 0}
	n := 1 + r.Intn(6)
	for i := 0; i < n; i++ {
		app := Application{
			Name:     "app",
			Lifetime: units.YearsOf(0.2 + r.Float64()*5),
			Volume:   1 + r.Float64()*1e6,
		}
		if r.Intn(2) == 0 {
			app.SizeGates = r.Float64() * 2e8
		}
		if r.Intn(3) == 0 {
			app.UtilizationScale = 0.1 + r.Float64()*0.9
		}
		s.Apps = append(s.Apps, app)
	}
	return s
}

// TestQuickCompiledMatchesReference asserts that Evaluate and
// Compiled.Evaluate reproduce the frozen reference implementation
// bit-for-bit across randomized platforms and scenarios.
func TestQuickCompiledMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		kind := device.ASIC
		if i%2 == 0 {
			kind = device.FPGA
		}
		p := randomPlatform(t, r, kind)
		s := randomScenario(r)

		want, err := evaluateReference(p, s)
		if err != nil {
			t.Fatalf("iter %d: reference: %v", i, err)
		}
		got, err := Evaluate(p, s)
		if err != nil {
			t.Fatalf("iter %d: Evaluate: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: Evaluate diverges from reference:\ngot  %+v\nwant %+v", i, got, want)
		}
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("iter %d: Compile: %v", i, err)
		}
		got, err = c.Evaluate(s)
		if err != nil {
			t.Fatalf("iter %d: Compiled.Evaluate: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: Compiled.Evaluate diverges from reference:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
}

// relClose compares masses to within a tiny relative tolerance — the
// O(1) uniform path multiplies the shared per-application contribution
// by n where the loop adds it n times, which reassociates the sum.
func relClose(a, b units.Mass) bool {
	x, y := a.Kilograms(), b.Kilograms()
	if x == y {
		return true
	}
	return math.Abs(x-y) <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
}

// TestQuickEvaluateUniformMatchesLoop asserts that the O(1) uniform
// path matches the per-application loop on Uniform scenarios: exactly
// on every count and fleet quantity, and to within reassociation
// tolerance on every breakdown component.
func TestQuickEvaluateUniformMatchesLoop(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		kind := device.ASIC
		if i%2 == 0 {
			kind = device.FPGA
		}
		p := randomPlatform(t, r, kind)
		n := 1 + r.Intn(40)
		lifetime := units.YearsOf(0.2 + r.Float64()*5)
		volume := 1 + r.Float64()*1e6
		var sizeGates float64
		if r.Intn(2) == 0 {
			sizeGates = r.Float64() * 2e8
		}

		want, err := evaluateReference(p, Uniform("u", n, lifetime, volume, sizeGates))
		if err != nil {
			t.Fatalf("iter %d: reference: %v", i, err)
		}
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("iter %d: Compile: %v", i, err)
		}
		got, err := c.EvaluateUniform(n, lifetime, volume, sizeGates)
		if err != nil {
			t.Fatalf("iter %d: EvaluateUniform: %v", i, err)
		}

		if got.Platform != want.Platform || got.Kind != want.Kind {
			t.Fatalf("iter %d: identity mismatch: %+v vs %+v", i, got, want)
		}
		if got.FleetSize != want.FleetSize ||
			got.HardwareGenerations != want.HardwareGenerations {
			t.Fatalf("iter %d: fleet quantities diverge:\ngot  %+v\nwant %+v", i, got, want)
		}
		// DevicesManufactured accumulates devices*gens per application
		// in the loop; the O(1) path multiplies once, so it reassociates
		// like the breakdown components.
		if !relClose(units.Kilograms(got.DevicesManufactured), units.Kilograms(want.DevicesManufactured)) {
			t.Fatalf("iter %d: devices manufactured diverge: got %g want %g",
				i, got.DevicesManufactured, want.DevicesManufactured)
		}
		if got.PerApp != nil {
			t.Fatalf("iter %d: EvaluateUniform must not allocate per-app entries", i)
		}
		pairs := []struct {
			name      string
			got, want units.Mass
		}{
			{"design", got.Breakdown.Design, want.Breakdown.Design},
			{"manufacturing", got.Breakdown.Manufacturing, want.Breakdown.Manufacturing},
			{"packaging", got.Breakdown.Packaging, want.Breakdown.Packaging},
			{"eol", got.Breakdown.EOL, want.Breakdown.EOL},
			{"operation", got.Breakdown.Operation, want.Breakdown.Operation},
			{"appdev", got.Breakdown.AppDevelopment, want.Breakdown.AppDevelopment},
			{"configuration", got.Breakdown.Configuration, want.Breakdown.Configuration},
			{"total", got.Total(), want.Total()},
		}
		for _, pr := range pairs {
			if !relClose(pr.got, pr.want) {
				t.Fatalf("iter %d: %s diverges: got %v want %v", i, pr.name, pr.got, pr.want)
			}
		}
	}
}

// TestCompiledCrossoversMatchLegacyScan asserts the binary-search
// CrossoverNumApps agrees with an exhaustive scan of the O(1) diff
// across randomized pairs.
func TestCompiledCrossoversMatchLegacyScan(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const maxN = 64
	for i := 0; i < 60; i++ {
		pr := Pair{
			FPGA: randomPlatform(t, r, device.FPGA),
			ASIC: randomPlatform(t, r, device.ASIC),
		}
		// The affine-diff argument needs uncapped generations; the
		// capped fall-back is the scan itself.
		pr.FPGA.ChipLifetime = 0
		pr.ASIC.ChipLifetime = 0
		cp, err := pr.Compile()
		if err != nil {
			t.Fatal(err)
		}
		lifetime := units.YearsOf(0.2 + r.Float64()*4)
		volume := 1 + r.Float64()*1e6

		wantN, wantFound := 0, false
		for n := 1; n <= maxN; n++ {
			d, err := cp.DiffUniform(n, lifetime, volume, 0)
			if err != nil {
				t.Fatal(err)
			}
			if d < 0 {
				wantN, wantFound = n, true
				break
			}
		}
		gotN, gotFound, err := cp.CrossoverNumApps(lifetime, volume, 0, maxN)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != wantN || gotFound != wantFound {
			t.Fatalf("iter %d: crossover (n=%d found=%v) vs scan (n=%d found=%v)",
				i, gotN, gotFound, wantN, wantFound)
		}
	}
}

// TestCompiledPairCompareMatchesPair asserts CompiledPair.Compare and
// Pair.Compare agree bit-for-bit.
func TestCompiledPairCompareMatchesPair(t *testing.T) {
	pr := testPair(t)
	cp, err := pr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	s := Uniform("cmp", 4, units.YearsOf(1.5), 2e5, 0)
	want, err := pr.Compare(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Compare(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CompiledPair.Compare diverges:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestWithDutyCycle asserts the cheap duty-cycle variant matches a
// full recompile.
func TestWithDutyCycle(t *testing.T) {
	fpga, _ := testPlatforms(t)
	c, err := Compile(fpga)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.WithDutyCycle(0.25)
	if err != nil {
		t.Fatal(err)
	}
	direct := fpga
	direct.DutyCycle = 0.25
	dc, err := Compile(direct)
	if err != nil {
		t.Fatal(err)
	}
	s := Uniform("w", 3, units.YearsOf(2), 1e5, 0)
	a, err := v.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dc.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("WithDutyCycle diverges from recompile:\ngot  %+v\nwant %+v", a, b)
	}
	if same, err := c.WithDutyCycle(fpga.DutyCycle); err != nil || same != c {
		t.Errorf("unchanged duty cycle must return the receiver, got %p vs %p (err %v)", same, c, err)
	}
	if _, err := c.WithDutyCycle(2); err == nil {
		t.Error("invalid duty cycle must error")
	}
}

// TestEvaluateUniformGenerationBoundary pins the chip-lifetime
// boundary case: 0.7*10 is exactly 7.0 under IEEE-754 but summing ten
// 0.7s exceeds it, so a multiplied total would under-count hardware
// generations by one relative to the loop path. The uniform path must
// sum like Scenario.TotalYears does.
func TestEvaluateUniformGenerationBoundary(t *testing.T) {
	fpga, _ := testPlatforms(t)
	fpga.ChipLifetime = units.YearsOf(7)
	c, err := Compile(fpga)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(fpga, Uniform("b", 10, units.YearsOf(0.7), 1e6, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.EvaluateUniform(10, units.YearsOf(0.7), 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.HardwareGenerations != want.HardwareGenerations {
		t.Fatalf("generations: uniform path %d, loop path %d",
			got.HardwareGenerations, want.HardwareGenerations)
	}
	if !relClose(got.Total(), want.Total()) {
		t.Fatalf("totals diverge at the generation boundary: %v vs %v",
			got.Total(), want.Total())
	}
}

// TestEvaluateUniformErrors exercises the O(1) path's validation.
func TestEvaluateUniformErrors(t *testing.T) {
	fpga, _ := testPlatforms(t)
	c, err := Compile(fpga)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EvaluateUniform(0, units.YearsOf(1), 1, 0); err == nil {
		t.Error("n = 0 must error")
	}
	if _, err := c.EvaluateUniform(1, units.YearsOf(-1), 1, 0); err == nil {
		t.Error("negative lifetime must error")
	}
	if _, err := c.EvaluateUniform(1, units.YearsOf(1), 0, 0); err == nil {
		t.Error("zero volume must error")
	}
	if _, err := c.EvaluateUniform(1, units.YearsOf(1), 1, -5); err == nil {
		t.Error("negative size must error")
	}
}
