package core

import (
	"fmt"
	"math"
	"sort"

	"greenfpga/internal/units"
)

// Deployment is one scheduled application residency: an application
// plus its arrival time on a shared wall-clock timeline. The
// application's Lifetime is its residency duration, so a deployment
// occupies [Start, Start+Lifetime).
type Deployment struct {
	// App is the deployed workload (name, lifetime, volume, size).
	App Application
	// Start is the arrival offset from the schedule origin.
	Start units.Years
}

// End is the deployment's retirement time.
func (d Deployment) End() units.Years {
	return units.YearsOf(d.Start.Years() + d.App.Lifetime.Years())
}

// Validate checks the deployment.
func (d Deployment) Validate() error {
	if d.Start.Years() < 0 {
		return fmt.Errorf("core: deployment %q starts at negative time %v", d.App.Name, d.Start)
	}
	return d.App.Validate()
}

// FleetSizing selects how overlapping residents of a reusable fleet
// (FPGA, GPU, CPU) are provisioned. Non-reusable kinds (ASICs) always
// manufacture per deployment, so sizing does not apply to them.
type FleetSizing string

const (
	// SizeShared (the default) sizes the fleet to the largest resident
	// deployment: overlapping applications time-share reconfigured
	// devices, the reading behind the paper's Eq. 2 fleet (N_vol
	// devices serve every application of the scenario). Under this
	// sizing a degenerate schedule reduces exactly to the legacy
	// Scenario path.
	SizeShared FleetSizing = "shared"
	// SizeDedicated sizes the fleet to the peak aggregate device
	// demand: every resident holds its own devices for its whole
	// residency, so overlap multiplies the fleet.
	SizeDedicated FleetSizing = "dedicated"
)

// Validate checks the sizing selector ("" means SizeShared).
func (fs FleetSizing) Validate() error {
	switch fs {
	case "", SizeShared, SizeDedicated:
		return nil
	}
	return fmt.Errorf("core: unknown fleet sizing %q (shared, dedicated)", fs)
}

// Schedule is a time-phased deployment plan: applications arriving,
// retiring and overlapping on one wall-clock timeline — the
// generalization of Scenario, whose applications run strictly back to
// back from t=0. Hardware refresh follows the platform's ChipLifetime
// against the schedule's wall-clock span (a fleet generation ages by
// calendar time), where the legacy path ages the fleet by the sum of
// application lifetimes.
type Schedule struct {
	// Name labels the schedule in reports.
	Name string
	// Deployments is the timeline; order is preserved in reports, and
	// deployments may overlap or leave gaps freely.
	Deployments []Deployment
	// Sizing selects shared (default) or dedicated fleet provisioning
	// for reusable platforms.
	Sizing FleetSizing
	// StrictEq2 applies the paper's Eq. 2 literally, as in Scenario.
	StrictEq2 bool
}

// Validate checks the schedule.
func (sch Schedule) Validate() error {
	if len(sch.Deployments) == 0 {
		return fmt.Errorf("core: schedule %q has no deployments", sch.Name)
	}
	if err := sch.Sizing.Validate(); err != nil {
		return err
	}
	for _, d := range sch.Deployments {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Span is the wall-clock extent of the schedule: from the first
// arrival to the last retirement. The empty schedule spans zero.
func (sch Schedule) Span() units.Years {
	if len(sch.Deployments) == 0 {
		return 0
	}
	minStart := math.Inf(1)
	maxEnd := math.Inf(-1)
	for _, d := range sch.Deployments {
		minStart = math.Min(minStart, d.Start.Years())
		maxEnd = math.Max(maxEnd, d.End().Years())
	}
	return units.YearsOf(maxEnd - minStart)
}

// PeakConcurrent is the largest number of simultaneously-resident
// deployments. Residencies are half-open [start, end): a deployment
// retiring exactly when another arrives does not overlap it.
func (sch Schedule) PeakConcurrent() int {
	peak, _ := sch.peaks(nil)
	return peak
}

// peaks sweeps the arrival/retirement events once, returning the peak
// resident-deployment count and, when demand is non-nil (one device
// count per deployment), the peak aggregate device demand.
func (sch Schedule) peaks(demand []float64) (int, float64) {
	type event struct {
		t     float64
		start bool
		d     float64
	}
	events := make([]event, 0, 2*len(sch.Deployments))
	for i, dep := range sch.Deployments {
		var dev float64
		if demand != nil {
			dev = demand[i]
		}
		events = append(events,
			event{t: dep.Start.Years(), start: true, d: dev},
			event{t: dep.End().Years(), start: false, d: dev})
	}
	// Retirements sort before arrivals at equal times (half-open
	// residencies: an end at t frees the fleet for a start at t).
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return !events[i].start && events[j].start
	})
	var cur, peak int
	var curD, peakD float64
	for _, e := range events {
		if e.start {
			cur++
			curD += e.d
			if cur > peak {
				peak = cur
			}
			if curD > peakD {
				peakD = curD
			}
		} else {
			cur--
			curD -= e.d
		}
	}
	return peak, peakD
}

// Sequential serializes a legacy Scenario onto the timeline: each
// application starts the instant the previous one retires, exactly the
// back-to-back semantics the Scenario engine assumes. Evaluating the
// result reproduces Evaluate(p, s) bit for bit (the equivalence
// property test in schedule_test.go pins this against the frozen
// reference).
func Sequential(s Scenario) Schedule {
	sch := Schedule{Name: s.Name, StrictEq2: s.StrictEq2}
	var at float64
	for _, app := range s.Apps {
		sch.Deployments = append(sch.Deployments, Deployment{App: app, Start: units.YearsOf(at)})
		at += app.Lifetime.Years()
	}
	return sch
}

// Staggered builds a schedule of n identical applications arriving
// every interval years (interval 0 means all arrive at t=0), the
// timeline generalization of Uniform. Applications are named like
// Uniform's so degenerate schedules compare bit-for-bit against the
// legacy path.
func Staggered(name string, n int, interval, lifetime units.Years, volume, sizeGates float64) Schedule {
	if n < 0 {
		n = 0
	}
	sch := Schedule{Name: name, Deployments: make([]Deployment, n)}
	for i := range sch.Deployments {
		sch.Deployments[i] = Deployment{
			App: Application{
				Name:      fmt.Sprintf("%s-app%d", name, i+1),
				Lifetime:  lifetime,
				Volume:    volume,
				SizeGates: sizeGates,
			},
			Start: units.YearsOf(float64(i) * interval.Years()),
		}
	}
	return sch
}

// ScheduleAssessment is an Assessment plus the timeline quantities
// that have no legacy counterpart.
type ScheduleAssessment struct {
	Assessment
	// Span is the schedule's wall-clock extent (first arrival to last
	// retirement), the time base of hardware refresh.
	Span units.Years
	// PeakConcurrent counts the most simultaneously-resident
	// deployments.
	PeakConcurrent int
	// PeakDemand is the peak aggregate device demand across resident
	// deployments, in devices (reflecting this platform's per-kind
	// ganging). Under SizeDedicated it equals FleetSize; under
	// SizeShared it reports how much demand the shared fleet absorbs.
	PeakDemand float64
}

// EvaluateSchedule computes the total CFP of running the time-phased
// schedule on the compiled platform.
//
// Non-reusable kinds (Eq. 1) pay design, hardware and deployment per
// deployment; arrival times do not change their totals (each
// deployment's hardware lives and dies with it), so any schedule of
// the same deployments matches the legacy per-application accounting
// bit for bit.
//
// Reusable kinds (Eq. 2) build one fleet serving every resident
// deployment — sized by the schedule's FleetSizing — and refresh it
// every ChipLifetime years of wall-clock span. A schedule whose
// deployments run back to back from t=0 (see Sequential) reduces bit
// for bit to Evaluate; overlapping deployments compress the span
// (fewer refreshes), and gaps or late arrivals stretch it.
func (c *Compiled) EvaluateSchedule(sch Schedule) (ScheduleAssessment, error) {
	if err := sch.Validate(); err != nil {
		return ScheduleAssessment{}, err
	}

	p := &c.platform
	out := ScheduleAssessment{
		Assessment: Assessment{
			Platform:            p.Spec.Name,
			Kind:                p.Spec.Kind,
			HardwareGenerations: 1,
		},
		Span: sch.Span(),
	}

	// Device demand per deployment, computed once for both the sizing
	// sweep and the per-deployment pass.
	counts := make([]int, len(sch.Deployments))
	demand := make([]float64, len(sch.Deployments))
	for i, dep := range sch.Deployments {
		n, err := p.Spec.Required(dep.App.SizeGates)
		if err != nil {
			return ScheduleAssessment{}, err
		}
		counts[i] = n
		demand[i] = dep.App.Volume * float64(n)
	}
	out.PeakConcurrent, out.PeakDemand = sch.peaks(demand)

	if !p.Spec.Kind.Policy().Reusable {
		// Eq. 1: every deployment pays design + hardware + deployment;
		// its hardware generation count follows its own lifetime, as in
		// the legacy per-application loop.
		for i, dep := range sch.Deployments {
			app := dep.App
			devices := demand[i]
			gens := 1
			if p.ChipLifetime > 0 && app.Lifetime > p.ChipLifetime {
				gens = int(math.Ceil(app.Lifetime.Years() / p.ChipLifetime.Years()))
			}
			b := c.appBreakdown(app, devices, sch.StrictEq2, dep.Start.Years())
			b.Design = c.design
			c.addHardware(&b, devices*float64(gens))
			out.PerApp = append(out.PerApp, AppAssessment{
				Name: app.Name, DevicesPerUnit: counts[i], Breakdown: b,
			})
			out.Breakdown = out.Breakdown.Add(b)
			out.DevicesManufactured += devices * float64(gens)
			out.FleetSize = math.Max(out.FleetSize, devices)
		}
		return out, nil
	}

	// Eq. 2: one reusable fleet serves every resident deployment.
	var fleet float64
	if sch.Sizing == SizeDedicated {
		fleet = out.PeakDemand
	} else {
		// Shared: residents time-share reconfigured devices, so the
		// fleet covers the largest single deployment (the paper's
		// Eq. 2 fleet), folded in deployment order like the legacy
		// path.
		for _, d := range demand {
			fleet = math.Max(fleet, d)
		}
	}
	gens := 1
	if p.ChipLifetime > 0 {
		if span := out.Span.Years(); span > p.ChipLifetime.Years() {
			gens = int(math.Ceil(span / p.ChipLifetime.Years()))
		}
	}
	out.FleetSize = fleet
	out.HardwareGenerations = gens
	out.DevicesManufactured = fleet * float64(gens)
	out.Breakdown.Design = c.design
	c.addHardware(&out.Breakdown, fleet*float64(gens))

	for i, dep := range sch.Deployments {
		b := c.appBreakdown(dep.App, demand[i], sch.StrictEq2, dep.Start.Years())
		out.PerApp = append(out.PerApp, AppAssessment{
			Name: dep.App.Name, DevicesPerUnit: counts[i], Breakdown: b,
		})
		out.Breakdown = out.Breakdown.Add(b)
	}
	return out, nil
}

// ScheduleComparison is the outcome of evaluating every platform of a
// compiled set on one shared schedule.
type ScheduleComparison struct {
	// Assessments holds one schedule assessment per set platform, in
	// set order.
	Assessments []ScheduleAssessment
	// Ratios holds the pairwise total-CFP ratios, as in SetComparison.
	Ratios [][]float64
	// Winner indexes the minimum-total assessment.
	Winner int
	// Span and PeakConcurrent are schedule-wide (platform-independent);
	// per-platform device demand lives on each assessment.
	Span           units.Years
	PeakConcurrent int
}

// WinnerAssessment returns the minimum-CFP assessment.
func (sc ScheduleComparison) WinnerAssessment() ScheduleAssessment {
	return sc.Assessments[sc.Winner]
}

// CompareSchedule evaluates every platform of the set on the schedule.
func (cs CompiledSet) CompareSchedule(sch Schedule) (ScheduleComparison, error) {
	if len(cs) == 0 {
		return ScheduleComparison{}, fmt.Errorf("core: empty compiled set")
	}
	out := ScheduleComparison{Assessments: make([]ScheduleAssessment, len(cs))}
	plain := make([]Assessment, len(cs))
	for i, c := range cs {
		a, err := c.EvaluateSchedule(sch)
		if err != nil {
			return ScheduleComparison{}, fmt.Errorf("core: platform %s: %w", c.platform.Spec.Name, err)
		}
		out.Assessments[i] = a
		plain[i] = a.Assessment
	}
	sc := newSetComparison(plain)
	out.Ratios = sc.Ratios
	out.Winner = sc.Winner
	out.Span = out.Assessments[0].Span
	out.PeakConcurrent = out.Assessments[0].PeakConcurrent
	return out, nil
}
