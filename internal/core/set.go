package core

import (
	"fmt"
	"math"

	"greenfpga/internal/device"
	"greenfpga/internal/units"
)

// Set is an ordered list of platforms compared on one shared scenario
// — the N-platform generalization of Pair. The two-platform FPGA/ASIC
// comparison of the paper is Set{fpga, asic}; the follow-up four-way
// comparison adds GPU and CPU platforms. Which accounting equation
// each member uses follows its device kind's reuse policy, so a set
// may freely mix embodied-once and embodied-per-application platforms.
type Set []Platform

// Validate checks every platform and that the set can be compared.
func (set Set) Validate() error {
	if len(set) == 0 {
		return fmt.Errorf("core: empty platform set")
	}
	for i, p := range set {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("core: set platform %d: %w", i, err)
		}
	}
	return nil
}

// Member finds the set platform of the given device kind; the error
// lists the kinds the set does carry.
func (set Set) Member(kind device.Kind) (Platform, error) {
	kinds := make([]device.Kind, len(set))
	for i, p := range set {
		kinds[i] = p.Spec.Kind
		if kinds[i] == kind {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("core: set has no %q platform (have: %v)", kind, kinds)
}

// Compile compiles every platform of the set.
func (set Set) Compile() (CompiledSet, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("core: empty platform set")
	}
	out := make(CompiledSet, len(set))
	for i, p := range set {
		c, err := Compile(p)
		if err != nil {
			return nil, fmt.Errorf("core: set platform %d (%s): %w", i, p.Spec.Name, err)
		}
		out[i] = c
	}
	return out, nil
}

// CompiledSet is a Set whose platforms have been compiled once for
// dense sweeps, crossover probes and Monte-Carlo draws. It is
// immutable after Compile and safe for concurrent use.
type CompiledSet []*Compiled

// Set returns the compiled platforms' inputs in set order.
func (cs CompiledSet) Set() Set {
	out := make(Set, len(cs))
	for i, c := range cs {
		out[i] = c.platform
	}
	return out
}

// SetComparison is the outcome of evaluating every platform of a set
// on one shared scenario.
type SetComparison struct {
	// Assessments holds one assessment per set platform, in set order.
	Assessments []Assessment
	// Ratios holds the pairwise total-CFP ratios:
	// Ratios[i][j] = total(i) / total(j), +Inf when total(j) is zero
	// and i differs from j (the diagonal is 1).
	Ratios [][]float64
	// Winner indexes the assessment with the minimum total CFP (ties
	// go to the earliest set position).
	Winner int
}

// WinnerAssessment returns the minimum-CFP assessment.
func (sc SetComparison) WinnerAssessment() Assessment {
	return sc.Assessments[sc.Winner]
}

// Ratio returns total(i)/total(j), the generalization of
// Comparison.Ratio (which is Ratio of the FPGA index over the ASIC
// index in a two-platform set).
func (sc SetComparison) Ratio(i, j int) float64 { return sc.Ratios[i][j] }

// newSetComparison derives ratios and the winner from assessments.
func newSetComparison(as []Assessment) SetComparison {
	sc := SetComparison{Assessments: as, Ratios: make([][]float64, len(as))}
	totals := make([]float64, len(as))
	for i, a := range as {
		totals[i] = a.Total().Kilograms()
		if totals[i] < totals[sc.Winner] {
			sc.Winner = i
		}
	}
	for i := range as {
		sc.Ratios[i] = make([]float64, len(as))
		for j := range as {
			switch {
			case i == j:
				sc.Ratios[i][j] = 1
			case totals[j] != 0:
				sc.Ratios[i][j] = totals[i] / totals[j]
			default:
				sc.Ratios[i][j] = math.Inf(1)
			}
		}
	}
	return sc
}

// Compare evaluates every platform of the set on the scenario.
func (cs CompiledSet) Compare(s Scenario) (SetComparison, error) {
	if len(cs) == 0 {
		return SetComparison{}, fmt.Errorf("core: empty compiled set")
	}
	as := make([]Assessment, len(cs))
	for i, c := range cs {
		a, err := c.Evaluate(s)
		if err != nil {
			return SetComparison{}, fmt.Errorf("core: platform %s: %w", c.platform.Spec.Name, err)
		}
		as[i] = a
	}
	return newSetComparison(as), nil
}

// CompareUniform evaluates every platform of the set on a uniform
// scenario through the O(1) path.
func (cs CompiledSet) CompareUniform(n int, lifetime units.Years, volume, sizeGates float64) (SetComparison, error) {
	if len(cs) == 0 {
		return SetComparison{}, fmt.Errorf("core: empty compiled set")
	}
	as := make([]Assessment, len(cs))
	for i, c := range cs {
		a, err := c.EvaluateUniform(n, lifetime, volume, sizeGates)
		if err != nil {
			return SetComparison{}, fmt.Errorf("core: platform %s: %w", c.platform.Spec.Name, err)
		}
		as[i] = a
	}
	return newSetComparison(as), nil
}

// DiffUniformBetween is the signed a-minus-b uniform-scenario total in
// kilograms — the quantity every crossover solver drives to zero,
// generalized from the pair's FPGA-minus-ASIC diff to any two
// compiled platforms.
func DiffUniformBetween(a, b *Compiled, n int, lifetime units.Years, volume, sizeGates float64) (float64, error) {
	at, err := a.UniformTotal(n, lifetime, volume, sizeGates)
	if err != nil {
		return 0, fmt.Errorf("core: platform %s: %w", a.platform.Spec.Name, err)
	}
	bt, err := b.UniformTotal(n, lifetime, volume, sizeGates)
	if err != nil {
		return 0, fmt.Errorf("core: platform %s: %w", b.platform.Spec.Name, err)
	}
	return at.Kilograms() - bt.Kilograms(), nil
}

// cappedEither reports whether either platform limits hardware
// generations, which makes the a-minus-b diff piecewise in the swept
// parameter instead of affine.
func cappedEither(a, b *Compiled) bool {
	return a.platform.ChipLifetime > 0 || b.platform.ChipLifetime > 0
}

// CrossoverNumAppsBetween finds the smallest N_app in 1..maxN at which
// platform a's total drops below platform b's — the A2F crossover of
// experiment A (Fig. 4) when a is the FPGA and b the ASIC, and the
// same question between any other two platforms. Without chip-lifetime
// caps both totals are affine in N_app, so the diff is monotone and
// the first negative N is located by binary search in O(log maxN)
// probes; with caps the diff is piecewise and the solver falls back to
// a linear scan (still O(1) per probe). found is false when no
// crossover occurs within maxN.
func CrossoverNumAppsBetween(a, b *Compiled, lifetime units.Years, volume, sizeGates float64, maxN int) (n int, found bool, err error) {
	if maxN < 1 {
		return 0, false, fmt.Errorf("core: maxN must be >= 1, got %d", maxN)
	}
	probe := func(n int) (float64, error) {
		return DiffUniformBetween(a, b, n, lifetime, volume, sizeGates)
	}
	if cappedEither(a, b) {
		for n := 1; n <= maxN; n++ {
			d, err := probe(n)
			if err != nil {
				return 0, false, err
			}
			if d < 0 {
				return n, true, nil
			}
		}
		return 0, false, nil
	}
	d, err := probe(1)
	if err != nil {
		return 0, false, err
	}
	if d < 0 {
		return 1, true, nil
	}
	if maxN == 1 {
		return 0, false, nil
	}
	d, err = probe(maxN)
	if err != nil {
		return 0, false, err
	}
	if d >= 0 {
		// The diff is affine in n: non-negative at both ends means
		// non-negative everywhere between.
		return 0, false, nil
	}
	// Invariant: diff(lo) >= 0, diff(hi) < 0.
	lo, hi := 1, maxN
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		d, err := probe(mid)
		if err != nil {
			return 0, false, err
		}
		if d < 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// CrossoverLifetimeBetween bisects the application lifetime T_i on
// [lo, hi] with fixed N_app and volume for the point where the two
// platform totals meet — the F2A point of experiment B (Fig. 5) for
// the FPGA/ASIC pair, generalized to any two compiled platforms.
func CrossoverLifetimeBetween(a, b *Compiled, nApps int, volume, sizeGates float64, lo, hi units.Years) (units.Years, bool, error) {
	if nApps < 1 {
		return 0, false, fmt.Errorf("core: nApps must be >= 1, got %d", nApps)
	}
	x, found, err := Bisect(lo.Years(), hi.Years(), 1e-4, func(t float64) (float64, error) {
		return DiffUniformBetween(a, b, nApps, units.YearsOf(t), volume, sizeGates)
	})
	return units.YearsOf(x), found, err
}

// CrossoverVolumeBetween bisects the application volume N_vol on
// [lo, hi] with fixed N_app and lifetime — the F2A point of
// experiment C (Fig. 6), generalized to any two compiled platforms.
func CrossoverVolumeBetween(a, b *Compiled, nApps int, lifetime units.Years, sizeGates float64, lo, hi float64) (float64, bool, error) {
	if nApps < 1 {
		return 0, false, fmt.Errorf("core: nApps must be >= 1, got %d", nApps)
	}
	if lo <= 0 {
		return 0, false, fmt.Errorf("core: volume range must be positive, got lo=%g", lo)
	}
	return Bisect(lo, hi, math.Max(1, lo*1e-6), func(v float64) (float64, error) {
		return DiffUniformBetween(a, b, nApps, lifetime, v, sizeGates)
	})
}
