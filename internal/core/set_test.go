package core

import (
	"math/rand"
	"reflect"
	"testing"

	"greenfpga/internal/device"
	"greenfpga/internal/units"
)

// TestQuickSetMatchesPair is the set/policy equivalence property: for
// FPGA/ASIC inputs, the N-platform path (CompiledSet, the *Between
// crossover solvers) reproduces the legacy Pair/CompiledPair results
// exactly — same frozen-reference harness as compiled_test.go, so the
// set path is compared against the pre-set implementation rather than
// against itself.
func TestQuickSetMatchesPair(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		pr := Pair{
			FPGA: randomPlatform(t, r, device.FPGA),
			ASIC: randomPlatform(t, r, device.ASIC),
		}
		s := randomScenario(r)

		cp, err := pr.Compile()
		if err != nil {
			t.Fatalf("iter %d: pair compile: %v", i, err)
		}
		cs, err := pr.Set().Compile()
		if err != nil {
			t.Fatalf("iter %d: set compile: %v", i, err)
		}

		// Full-scenario comparison: assessments and the FPGA:ASIC ratio
		// must be bit-identical, and each side must match the frozen
		// reference implementation.
		want, err := cp.Compare(s)
		if err != nil {
			t.Fatalf("iter %d: pair compare: %v", i, err)
		}
		got, err := cs.Compare(s)
		if err != nil {
			t.Fatalf("iter %d: set compare: %v", i, err)
		}
		if !reflect.DeepEqual(got.Assessments[0], want.FPGA) ||
			!reflect.DeepEqual(got.Assessments[1], want.ASIC) {
			t.Fatalf("iter %d: set assessments diverge from pair", i)
		}
		if got.Ratios[0][1] != want.Ratio {
			t.Fatalf("iter %d: set ratio %g, pair ratio %g", i, got.Ratios[0][1], want.Ratio)
		}
		ref, err := evaluateReference(pr.FPGA, s)
		if err != nil {
			t.Fatalf("iter %d: reference: %v", i, err)
		}
		if !reflect.DeepEqual(got.Assessments[0], ref) {
			t.Fatalf("iter %d: set FPGA assessment diverges from frozen reference", i)
		}
		wantWinner := 1
		if want.Ratio < 1 {
			wantWinner = 0
		}
		if got.Winner != wantWinner {
			t.Fatalf("iter %d: winner %d, want %d (ratio %g)", i, got.Winner, wantWinner, want.Ratio)
		}

		// Uniform comparison through the O(1) path.
		n := 1 + r.Intn(12)
		lifetime := units.YearsOf(0.2 + r.Float64()*4)
		volume := 1 + r.Float64()*1e6
		wantU, err := cp.CompareUniform(n, lifetime, volume, 0)
		if err != nil {
			t.Fatalf("iter %d: pair uniform: %v", i, err)
		}
		gotU, err := cs.CompareUniform(n, lifetime, volume, 0)
		if err != nil {
			t.Fatalf("iter %d: set uniform: %v", i, err)
		}
		if !reflect.DeepEqual(gotU.Assessments[0], wantU.FPGA) ||
			!reflect.DeepEqual(gotU.Assessments[1], wantU.ASIC) ||
			gotU.Ratios[0][1] != wantU.Ratio {
			t.Fatalf("iter %d: uniform set comparison diverges from pair", i)
		}

		// Crossover solvers between the set members must reproduce the
		// legacy pair solvers exactly.
		wn, wf, err := cp.CrossoverNumApps(lifetime, volume, 0, 30)
		if err != nil {
			t.Fatal(err)
		}
		gn, gf, err := CrossoverNumAppsBetween(cs[0], cs[1], lifetime, volume, 0, 30)
		if err != nil {
			t.Fatal(err)
		}
		if wn != gn || wf != gf {
			t.Fatalf("iter %d: num-apps crossover (%d,%v) vs pair (%d,%v)", i, gn, gf, wn, wf)
		}
		wt, wtf, err := cp.CrossoverLifetime(5, volume, 0, units.YearsOf(0.05), units.YearsOf(10))
		if err != nil {
			t.Fatal(err)
		}
		gt, gtf, err := CrossoverLifetimeBetween(cs[0], cs[1], 5, volume, 0, units.YearsOf(0.05), units.YearsOf(10))
		if err != nil {
			t.Fatal(err)
		}
		if wt != gt || wtf != gtf {
			t.Fatalf("iter %d: lifetime crossover (%v,%v) vs pair (%v,%v)", i, gt, gtf, wt, wtf)
		}
		wv, wvf, err := cp.CrossoverVolume(5, lifetime, 0, 1e2, 1e8)
		if err != nil {
			t.Fatal(err)
		}
		gv, gvf, err := CrossoverVolumeBetween(cs[0], cs[1], 5, lifetime, 0, 1e2, 1e8)
		if err != nil {
			t.Fatal(err)
		}
		if wv != gv || wvf != gvf {
			t.Fatalf("iter %d: volume crossover (%g,%v) vs pair (%g,%v)", i, gv, gvf, wv, wvf)
		}
	}
}

// TestQuickReusableKindsMatchReference extends the frozen-reference
// equivalence to the new first-class GPU and CPU kinds: their reuse
// policies select the reference's Eq. 2 branch, so the policy-driven
// engine must agree bit-for-bit.
func TestQuickReusableKindsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		kind := device.GPU
		if i%2 == 0 {
			kind = device.CPU
		}
		p := randomPlatform(t, r, kind)
		s := randomScenario(r)
		want, err := evaluateReference(p, s)
		if err != nil {
			t.Fatalf("iter %d: reference: %v", i, err)
		}
		got, err := Evaluate(p, s)
		if err != nil {
			t.Fatalf("iter %d: Evaluate: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: %s evaluation diverges from reference:\ngot  %+v\nwant %+v",
				i, kind, got, want)
		}
	}
}

// TestSetComparisonShape pins the ratio matrix and winner semantics on
// a mixed four-kind set.
func TestSetComparisonShape(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	set := Set{
		randomPlatform(t, r, device.FPGA),
		randomPlatform(t, r, device.ASIC),
		randomPlatform(t, r, device.GPU),
		randomPlatform(t, r, device.CPU),
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	cs, err := set.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.Set(); len(got) != 4 || got[2].Spec.Kind != device.GPU {
		t.Fatalf("CompiledSet.Set round trip: %+v", got)
	}
	sc, err := cs.CompareUniform(5, units.YearsOf(2), 1e5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Assessments) != 4 || len(sc.Ratios) != 4 {
		t.Fatalf("comparison shape: %d assessments, %d ratio rows", len(sc.Assessments), len(sc.Ratios))
	}
	minTotal := sc.Assessments[sc.Winner].Total()
	for i, a := range sc.Assessments {
		if a.Total() < minTotal {
			t.Errorf("winner %d is not minimal: %d has %v < %v", sc.Winner, i, a.Total(), minTotal)
		}
		for j := range sc.Assessments {
			want := sc.Assessments[i].Total().Kilograms() / sc.Assessments[j].Total().Kilograms()
			if i == j {
				want = 1
			}
			if sc.Ratio(i, j) != want {
				t.Errorf("ratio[%d][%d] = %g, want %g", i, j, sc.Ratio(i, j), want)
			}
		}
	}
	if sc.WinnerAssessment().Platform != sc.Assessments[sc.Winner].Platform {
		t.Error("WinnerAssessment must return the winner entry")
	}
	if _, err := (Set{}).Compile(); err == nil {
		t.Error("empty set must not compile")
	}
	if (Set{}).Validate() == nil {
		t.Error("empty set must not validate")
	}
	if _, err := (CompiledSet{}).Compare(Uniform("x", 1, units.YearsOf(1), 1, 0)); err == nil {
		t.Error("empty compiled set must not compare")
	}
}
