package core

import (
	"fmt"

	"greenfpga/internal/device"
	"greenfpga/internal/units"
)

// Application is one workload in a scenario.
type Application struct {
	// Name labels the application in reports.
	Name string
	// Lifetime is T_i: how long the application stays deployed.
	Lifetime units.Years
	// Volume is N_vol: how many deployment units (chips for ASICs,
	// device groups for FPGAs) serve the application. It is a float so
	// crossover solvers can bisect it continuously.
	Volume float64
	// SizeGates is the application's size in equivalent logic gates,
	// driving N_FPGA = ceil(size/capacity). Zero means the application
	// fits a single device.
	SizeGates float64
	// UtilizationScale scales the platform's per-device operational
	// power for this application, modelling designs that exercise only
	// part of the device (an FPGA app occupying a fraction of the
	// fabric, with the rest clock-gated). Zero means 1 (full power);
	// values must lie in (0, 1].
	UtilizationScale float64
}

// Validate checks the application.
func (a Application) Validate() error {
	switch {
	case a.Lifetime.Years() <= 0:
		return fmt.Errorf("core: application %q needs a positive lifetime, got %v", a.Name, a.Lifetime)
	case a.Volume <= 0:
		return fmt.Errorf("core: application %q needs a positive volume, got %g", a.Name, a.Volume)
	case a.SizeGates < 0:
		return fmt.Errorf("core: application %q has negative size", a.Name)
	case a.UtilizationScale < 0 || a.UtilizationScale > 1:
		return fmt.Errorf("core: application %q utilization scale %g outside (0,1]",
			a.Name, a.UtilizationScale)
	}
	return nil
}

// utilization resolves the power-utilization factor.
func (a Application) utilization() float64 {
	if a.UtilizationScale == 0 {
		return 1
	}
	return a.UtilizationScale
}

// Scenario is a sequence of applications served back to back, the
// setting of every experiment in the paper's §4.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Apps run sequentially; an FPGA fleet is reconfigured between
	// them, while ASICs are remanufactured per application.
	Apps []Application
	// StrictEq2 applies the paper's Eq. 2 literally, scaling the
	// application-development CFP by each application's lifetime.
	// The default treats engineering and configuration as one-time
	// costs, matching the paper's prose; see DESIGN.md.
	StrictEq2 bool
}

// Validate checks the scenario.
func (s Scenario) Validate() error {
	if len(s.Apps) == 0 {
		return fmt.Errorf("core: scenario %q has no applications", s.Name)
	}
	for _, a := range s.Apps {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalYears is the wall-clock span of the sequential applications.
func (s Scenario) TotalYears() units.Years {
	var t float64
	for _, a := range s.Apps {
		t += a.Lifetime.Years()
	}
	return units.YearsOf(t)
}

// Uniform builds a scenario of n identical applications, the shape of
// experiments A-C (Figs. 4-8). Non-positive n yields an empty (invalid)
// scenario that Evaluate rejects.
func Uniform(name string, n int, lifetime units.Years, volume float64, sizeGates float64) Scenario {
	if n < 0 {
		n = 0
	}
	apps := make([]Application, n)
	for i := range apps {
		apps[i] = Application{
			Name:      fmt.Sprintf("%s-app%d", name, i+1),
			Lifetime:  lifetime,
			Volume:    volume,
			SizeGates: sizeGates,
		}
	}
	return Scenario{Name: name, Apps: apps}
}

// Breakdown splits a platform's total CFP into the component sources
// of Figs. 7, 10 and 11.
type Breakdown struct {
	// Design is C_des (embodied).
	Design units.Mass
	// Manufacturing is N x C_mfg (embodied).
	Manufacturing units.Mass
	// Packaging is N x C_package (embodied).
	Packaging units.Mass
	// EOL is N x C_EOL (embodied; may be a negative credit).
	EOL units.Mass
	// Operation is the field-use CFP (deployment).
	Operation units.Mass
	// AppDevelopment is the per-application engineering CFP (deployment).
	AppDevelopment units.Mass
	// Configuration is the per-device (re)configuration CFP (deployment).
	Configuration units.Mass
}

// Embodied is C_emb: design + manufacturing + packaging + EOL.
func (b Breakdown) Embodied() units.Mass {
	return b.Design + b.Manufacturing + b.Packaging + b.EOL
}

// Deployment is the operation + application-development CFP.
func (b Breakdown) Deployment() units.Mass {
	return b.Operation + b.AppDevelopment + b.Configuration
}

// Total is the platform's total CFP.
func (b Breakdown) Total() units.Mass {
	return b.Embodied() + b.Deployment()
}

// Add accumulates another breakdown.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Design:         b.Design + o.Design,
		Manufacturing:  b.Manufacturing + o.Manufacturing,
		Packaging:      b.Packaging + o.Packaging,
		EOL:            b.EOL + o.EOL,
		Operation:      b.Operation + o.Operation,
		AppDevelopment: b.AppDevelopment + o.AppDevelopment,
		Configuration:  b.Configuration + o.Configuration,
	}
}

// Scale multiplies every component by k.
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{
		Design:         b.Design.Scale(k),
		Manufacturing:  b.Manufacturing.Scale(k),
		Packaging:      b.Packaging.Scale(k),
		EOL:            b.EOL.Scale(k),
		Operation:      b.Operation.Scale(k),
		AppDevelopment: b.AppDevelopment.Scale(k),
		Configuration:  b.Configuration.Scale(k),
	}
}

// AppAssessment is the contribution of one application.
type AppAssessment struct {
	// Name is the application's name.
	Name string
	// DevicesPerUnit is N_FPGA for this application (1 for ASICs).
	DevicesPerUnit int
	// Breakdown is the application's CFP contribution. For FPGAs the
	// shared embodied carbon is not attributed to individual
	// applications; it appears only in the scenario breakdown.
	Breakdown Breakdown
}

// Assessment is the result of evaluating a platform over a scenario.
type Assessment struct {
	// Platform is the device name.
	Platform string
	// Kind is ASIC or FPGA.
	Kind device.Kind
	// Breakdown is the total CFP split by source.
	Breakdown Breakdown
	// PerApp lists each application's contribution.
	PerApp []AppAssessment
	// DevicesManufactured counts every device built over the scenario,
	// including FPGA fleet regenerations.
	DevicesManufactured float64
	// FleetSize is the concurrent device count (FPGA fleets); for
	// ASICs it is the largest single-application volume.
	FleetSize float64
	// HardwareGenerations counts FPGA fleet rebuilds forced by the
	// chip-lifetime cap (1 when uncapped).
	HardwareGenerations int
}

// Total is the scenario total CFP.
func (a Assessment) Total() units.Mass { return a.Breakdown.Total() }

// Evaluate computes the total CFP of running the scenario on the
// platform, applying Eq. 1 for ASICs and Eq. 2 for FPGAs. It compiles
// the platform and evaluates once; callers evaluating many scenarios
// against the same platform should Compile once themselves and reuse
// the result.
func Evaluate(p Platform, s Scenario) (Assessment, error) {
	c, err := Compile(p)
	if err != nil {
		return Assessment{}, err
	}
	return c.Evaluate(s)
}
