package core

import (
	"fmt"
	"math"

	"greenfpga/internal/carbon"
	"greenfpga/internal/units"
)

// Compiled is a Platform whose expensive, platform-constant quantities
// have been evaluated once and cached: the per-device embodied cost,
// the design-phase CFP, the annual per-device operation carbon, and
// the per-application and per-configuration app-development CFP.
// Evaluate re-derives all five on every call; a Compiled platform pays
// for them once, which is the whole constant factor of the paper's
// dense sweeps (Figs. 4-11 are thousands of evaluations of the same
// two platforms).
//
// A Compiled platform is immutable after Compile and safe for
// concurrent use.
type Compiled struct {
	platform Platform

	deviceCost DeviceCost
	design     units.Mass
	opAnnual   units.Mass
	perApp     units.Mass
	perCfg     units.Mass

	// Per-device hardware totals, pre-summed from deviceCost so the
	// evaluation loops scale three cached scalars instead of re-summing
	// the fab/packaging/EOL sub-results per application.
	mfgTotal units.Mass
	pkgTotal units.Mass
	eolNet   units.Mass

	// op holds the compiled trace state for platforms sited on an
	// hourly intensity signal; nil keeps every evaluation on the legacy
	// scalar path, byte-for-byte.
	op *tracedOp
}

// tracedOp is the hour-by-hour operational state compiled once per
// platform: the trace integrator (shared, cached per region) plus the
// device's constant hourly energy draws, so each deployment window
// costs two O(1) antiderivative probes.
type tracedOp struct {
	// integ integrates the intensity signal.
	integ *carbon.Integrator
	// hourly is the duty-scaled energy drawn per hour (kWh), the
	// multiplier for uniform (unshifted) operation.
	hourly float64
	// shift, when non-nil, replaces uniform operation with the daily
	// clean-hours packing, and peakHourly (kWh per run-hour, duty
	// folded into the packed hours) replaces hourly.
	shift      *carbon.ShiftProfile
	peakHourly float64
}

// compileTrace builds the traced operational state when the platform
// carries an hourly signal. Traced platforms also re-anchor opAnnual
// to the first trace year so the cached "annual operation" constant
// reports the signal-integrated figure.
func (c *Compiled) compileTrace() error {
	c.op = nil
	p := &c.platform
	integ := p.UseIntegrator
	if integ == nil {
		if len(p.UseTrace) == 0 {
			return nil
		}
		var err error
		integ, err = carbon.NewIntegrator(p.UseTrace)
		if err != nil {
			return err
		}
	}
	pue := p.PUE
	if pue == 0 {
		pue = 1
	}
	op := &tracedOp{
		integ:  integ,
		hourly: p.Spec.PeakPower.Scale(p.DutyCycle * pue).OverHours(1).KWh(),
	}
	// A zero duty cycle draws nothing; shifting nothing is nothing.
	if p.UseShift == carbon.ShiftDaily && p.DutyCycle > 0 {
		sp, err := integ.Shift(p.DutyCycle * 24)
		if err != nil {
			return err
		}
		op.shift = sp
		op.peakHourly = p.Spec.PeakPower.Scale(pue).OverHours(1).KWh()
	}
	c.op = op
	c.opAnnual = c.opWindow(0, 1)
	return nil
}

// opWindow is the operational carbon of one device over the
// wall-clock window [start, start+span) years under the compiled
// trace state.
func (c *Compiled) opWindow(startYears, spanYears float64) units.Mass {
	if c.op.shift != nil {
		return units.Mass(c.op.peakHourly * c.op.shift.Window(startYears*units.HoursPerYear, spanYears*units.HoursPerYear))
	}
	return units.Mass(c.op.hourly * c.op.integ.Window(startYears*units.HoursPerYear, spanYears*units.HoursPerYear))
}

// Compile validates the platform and caches the five platform-constant
// quantities Evaluate would otherwise re-derive per call.
func Compile(p Platform) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dc, err := p.DeviceCost()
	if err != nil {
		return nil, err
	}
	des, err := p.DesignCFP()
	if err != nil {
		return nil, err
	}
	opAnnual, err := p.operation().AnnualCarbon()
	if err != nil {
		return nil, err
	}
	ad := p.appDev()
	perApp, err := ad.PerApplication()
	if err != nil {
		return nil, err
	}
	perCfg, err := ad.PerConfiguration()
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		platform:   p,
		deviceCost: dc,
		design:     des,
		opAnnual:   opAnnual,
		perApp:     perApp,
		perCfg:     perCfg,
		mfgTotal:   dc.Manufacturing.Total(),
		pkgTotal:   dc.Packaging.Total(),
		eolNet:     dc.EOL.Net(),
	}
	if err := c.compileTrace(); err != nil {
		return nil, err
	}
	return c, nil
}

// Platform returns the compiled platform inputs.
func (c *Compiled) Platform() Platform { return c.platform }

// DeviceCost returns the cached per-device embodied cost.
func (c *Compiled) DeviceCost() DeviceCost { return c.deviceCost }

// DesignCFP returns the cached design-phase CFP (Eq. 4).
func (c *Compiled) DesignCFP() units.Mass { return c.design }

// AnnualOperationCarbon returns the cached C_op for one device-year.
func (c *Compiled) AnnualOperationCarbon() units.Mass { return c.opAnnual }

// WithDutyCycle derives a compiled platform with a different duty
// cycle without re-running the embodied models: only the operational
// carbon depends on it. This is the Monte-Carlo hot path — Table 1
// uncertainty studies redraw the duty cycle per sample while the die,
// node and design inputs stay fixed.
func (c *Compiled) WithDutyCycle(duty float64) (*Compiled, error) {
	if duty == c.platform.DutyCycle {
		return c, nil
	}
	out := *c
	out.platform.DutyCycle = duty
	if err := out.platform.Validate(); err != nil {
		return nil, err
	}
	opAnnual, err := out.platform.operation().AnnualCarbon()
	if err != nil {
		return nil, err
	}
	out.opAnnual = opAnnual
	// Traced platforms also re-pack the shift profile (it depends on
	// the duty cycle) and re-anchor opAnnual; the integrator itself is
	// duty-independent and shared.
	if err := out.compileTrace(); err != nil {
		return nil, err
	}
	return &out, nil
}

// addHardware spreads devices' worth of per-device embodied cost into
// the breakdown.
func (c *Compiled) addHardware(b *Breakdown, devices float64) {
	b.Manufacturing += c.mfgTotal.Scale(devices)
	b.Packaging += c.pkgTotal.Scale(devices)
	b.EOL += c.eolNet.Scale(devices)
}

// Evaluate computes the total CFP of running the scenario on the
// compiled platform, selecting Eq. 1 or Eq. 2 by the device kind's
// reuse policy (Eq. 1 for per-application embodied carbon, Eq. 2 for
// reusable fleets). Results are identical to Evaluate on the
// uncompiled platform.
func (c *Compiled) Evaluate(s Scenario) (Assessment, error) {
	if err := s.Validate(); err != nil {
		return Assessment{}, err
	}

	p := &c.platform
	out := Assessment{
		Platform:            p.Spec.Name,
		Kind:                p.Spec.Kind,
		HardwareGenerations: 1,
	}

	// Applications run back to back from t=0 (the Sequential timeline);
	// at accumulates the arrival offsets exactly like Sequential does,
	// so Evaluate and EvaluateSchedule(Sequential(s)) agree bit for bit
	// on traced platforms too. Scalar platforms ignore the offset.
	var at float64

	if !p.Spec.Kind.Policy().Reusable {
		// Eq. 1: every application pays design + hardware + deployment.
		for _, app := range s.Apps {
			n, err := p.Spec.Required(app.SizeGates)
			if err != nil {
				return Assessment{}, err
			}
			devices := app.Volume * float64(n)
			gens := 1
			if p.ChipLifetime > 0 && app.Lifetime > p.ChipLifetime {
				gens = int(math.Ceil(app.Lifetime.Years() / p.ChipLifetime.Years()))
			}
			b := c.appBreakdown(app, devices, s.StrictEq2, at)
			at += app.Lifetime.Years()
			b.Design = c.design
			c.addHardware(&b, devices*float64(gens))
			out.PerApp = append(out.PerApp, AppAssessment{
				Name: app.Name, DevicesPerUnit: n, Breakdown: b,
			})
			out.Breakdown = out.Breakdown.Add(b)
			out.DevicesManufactured += devices * float64(gens)
			out.FleetSize = math.Max(out.FleetSize, devices)
		}
		return out, nil
	}

	// Eq. 2: a reusable fleet (FPGA, GPU, CPU) is built once (per
	// hardware generation) and reconfigured or reprogrammed across
	// applications. Device counts are computed once
	// here and reused below, so the per-application pass cannot hit a
	// Required error the fleet-sizing pass did not already surface.
	var fleet float64
	counts := make([]int, len(s.Apps))
	for i, app := range s.Apps {
		n, err := p.Spec.Required(app.SizeGates)
		if err != nil {
			return Assessment{}, err
		}
		counts[i] = n
		fleet = math.Max(fleet, app.Volume*float64(n))
	}
	gens := 1
	if p.ChipLifetime > 0 {
		total := s.TotalYears().Years()
		if total > p.ChipLifetime.Years() {
			gens = int(math.Ceil(total / p.ChipLifetime.Years()))
		}
	}
	out.FleetSize = fleet
	out.HardwareGenerations = gens
	out.DevicesManufactured = fleet * float64(gens)
	out.Breakdown.Design = c.design
	c.addHardware(&out.Breakdown, fleet*float64(gens))

	for i, app := range s.Apps {
		n := counts[i]
		devices := app.Volume * float64(n)
		b := c.appBreakdown(app, devices, s.StrictEq2, at)
		at += app.Lifetime.Years()
		out.PerApp = append(out.PerApp, AppAssessment{
			Name: app.Name, DevicesPerUnit: n, Breakdown: b,
		})
		out.Breakdown = out.Breakdown.Add(b)
	}
	return out, nil
}

// appBreakdown is one application's deployment contribution (operation
// + app development + configuration), shared by both equations.
// startYears places the residency window [start, start+Lifetime) on
// the wall clock; it only matters on traced platforms — the scalar
// path is position-independent and stays the legacy expression
// verbatim, which is what keeps scalar regions bit-for-bit stable.
func (c *Compiled) appBreakdown(app Application, devices float64, strictEq2 bool, startYears float64) Breakdown {
	var b Breakdown
	if c.op != nil {
		b.Operation = c.opWindow(startYears, app.Lifetime.Years()).Scale(devices * app.utilization())
	} else {
		b.Operation = c.opAnnual.Scale(devices * app.Lifetime.Years() * app.utilization())
	}
	appDevCost := c.perApp
	cfgCost := c.perCfg.Scale(devices)
	if strictEq2 {
		appDevCost = appDevCost.Scale(app.Lifetime.Years())
		cfgCost = cfgCost.Scale(app.Lifetime.Years())
	}
	b.AppDevelopment = appDevCost
	b.Configuration = cfgCost
	return b
}

// EvaluateUniform computes the assessment of a uniform scenario — n
// identical applications of the given lifetime, volume and size, the
// shape of experiments A-C (Figs. 4-8) and every crossover probe — in
// O(1): no []Application is built, no per-application names are
// formatted, and no per-application loop runs. (Platforms with a
// ChipLifetime cap pay one O(n) scalar summation to reproduce
// generation boundaries exactly; see below.)
//
// The returned assessment matches Evaluate on Uniform(name, n, ...)
// with two documented differences: PerApp is nil (all n entries would
// be identical — the totals carry the same information), and totals
// are computed by scaling the shared per-application contribution by n
// rather than adding it n times, which can differ from the loop in the
// last floating-point ulp. Uniform scenarios built by Uniform use the
// default (non-strict) Eq. 2 accounting, as does this path.
func (c *Compiled) EvaluateUniform(n int, lifetime units.Years, volume, sizeGates float64) (Assessment, error) {
	if n < 1 {
		return Assessment{}, fmt.Errorf("core: uniform scenario needs n >= 1, got %d", n)
	}
	if err := (Application{Name: "uniform", Lifetime: lifetime, Volume: volume, SizeGates: sizeGates}).Validate(); err != nil {
		return Assessment{}, err
	}

	p := &c.platform
	perUnit, err := p.Spec.Required(sizeGates)
	if err != nil {
		return Assessment{}, err
	}
	devices := volume * float64(perUnit)
	out := Assessment{
		Platform:            p.Spec.Name,
		Kind:                p.Spec.Kind,
		HardwareGenerations: 1,
	}
	app := Application{Lifetime: lifetime, Volume: volume, SizeGates: sizeGates}

	if !p.Spec.Kind.Policy().Reusable {
		gens := 1
		if p.ChipLifetime > 0 && lifetime > p.ChipLifetime {
			gens = int(math.Ceil(lifetime.Years() / p.ChipLifetime.Years()))
		}
		b := c.appBreakdown(app, devices, false, 0)
		b.Design = c.design
		c.addHardware(&b, devices*float64(gens))
		out.Breakdown = b.Scale(float64(n))
		if c.op != nil {
			out.Breakdown.Operation = c.uniformOperation(n, lifetime, devices*app.utilization())
		}
		out.DevicesManufactured = devices * float64(gens) * float64(n)
		out.FleetSize = devices
		return out, nil
	}

	gens := 1
	if p.ChipLifetime > 0 {
		// Sum the lifetime n times exactly as Scenario.TotalYears
		// does: multiplication rounds differently at generation
		// boundaries (0.7*10 is exactly 7, ten summed 0.7s exceed
		// it), and a flip here is a whole hardware generation, not an
		// ulp. Capped platforms pay this O(n) scalar loop; the common
		// uncapped case stays O(1).
		var total float64
		for i := 0; i < n; i++ {
			total += lifetime.Years()
		}
		if total > p.ChipLifetime.Years() {
			gens = int(math.Ceil(total / p.ChipLifetime.Years()))
		}
	}
	out.FleetSize = devices
	out.HardwareGenerations = gens
	out.DevicesManufactured = devices * float64(gens)
	out.Breakdown = c.appBreakdown(app, devices, false, 0).Scale(float64(n))
	if c.op != nil {
		out.Breakdown.Operation = c.uniformOperation(n, lifetime, devices*app.utilization())
	}
	out.Breakdown.Design = c.design
	c.addHardware(&out.Breakdown, devices*float64(gens))
	return out, nil
}

// uniformOperation sums the traced operational carbon of n identical
// back-to-back residency windows, accumulating arrival offsets exactly
// like Evaluate's loop so the O(1)-shaped uniform path and the
// per-application loop agree on traced platforms. scale carries
// devices x utilization. Only traced platforms pay this O(n) loop —
// on the scalar path the n windows are identical and EvaluateUniform
// multiplies instead.
func (c *Compiled) uniformOperation(n int, lifetime units.Years, scale float64) units.Mass {
	var at float64
	var op units.Mass
	for i := 0; i < n; i++ {
		op += c.opWindow(at, lifetime.Years())
		at += lifetime.Years()
	}
	return op.Scale(scale)
}

// UniformTotal is the total CFP of EvaluateUniform, for callers that
// only probe totals (the crossover solvers).
func (c *Compiled) UniformTotal(n int, lifetime units.Years, volume, sizeGates float64) (units.Mass, error) {
	a, err := c.EvaluateUniform(n, lifetime, volume, sizeGates)
	if err != nil {
		return 0, err
	}
	return a.Total(), nil
}

// CompiledPair couples a compiled FPGA platform with its compiled
// iso-performance ASIC alternative. Compile a Pair once, then run
// every sweep cell, crossover probe or Monte-Carlo draw against the
// cached quantities. It is a thin two-element view over the
// N-platform CompiledSet machinery: every solver delegates to the
// *Between generalizations in set.go.
type CompiledPair struct {
	// FPGA is the reconfigurable platform.
	FPGA *Compiled
	// ASIC is the fixed-function alternative.
	ASIC *Compiled
}

// Set widens the pair to a two-element compiled set (FPGA first).
func (cp CompiledPair) Set() CompiledSet { return CompiledSet{cp.FPGA, cp.ASIC} }

// Compile compiles both sides of the pair.
func (pr Pair) Compile() (CompiledPair, error) {
	f, err := Compile(pr.FPGA)
	if err != nil {
		return CompiledPair{}, fmt.Errorf("core: FPGA side: %w", err)
	}
	a, err := Compile(pr.ASIC)
	if err != nil {
		return CompiledPair{}, fmt.Errorf("core: ASIC side: %w", err)
	}
	return CompiledPair{FPGA: f, ASIC: a}, nil
}

// compare packages two assessments as a Comparison.
func compare(f, a Assessment) Comparison {
	c := Comparison{FPGA: f, ASIC: a}
	if at := a.Total().Kilograms(); at != 0 {
		c.Ratio = f.Total().Kilograms() / at
	} else {
		c.Ratio = math.Inf(1)
	}
	return c
}

// Compare evaluates both compiled platforms on the scenario.
func (cp CompiledPair) Compare(s Scenario) (Comparison, error) {
	f, err := cp.FPGA.Evaluate(s)
	if err != nil {
		return Comparison{}, fmt.Errorf("core: FPGA side: %w", err)
	}
	a, err := cp.ASIC.Evaluate(s)
	if err != nil {
		return Comparison{}, fmt.Errorf("core: ASIC side: %w", err)
	}
	return compare(f, a), nil
}

// CompareUniform evaluates both compiled platforms on a uniform
// scenario through the O(1) path.
func (cp CompiledPair) CompareUniform(n int, lifetime units.Years, volume, sizeGates float64) (Comparison, error) {
	f, err := cp.FPGA.EvaluateUniform(n, lifetime, volume, sizeGates)
	if err != nil {
		return Comparison{}, fmt.Errorf("core: FPGA side: %w", err)
	}
	a, err := cp.ASIC.EvaluateUniform(n, lifetime, volume, sizeGates)
	if err != nil {
		return Comparison{}, fmt.Errorf("core: ASIC side: %w", err)
	}
	return compare(f, a), nil
}

// DiffUniform is the signed FPGA-minus-ASIC uniform-scenario total in
// kilograms, the quantity every crossover solver drives to zero. It
// is DiffUniformBetween with the pair's fixed operand order.
func (cp CompiledPair) DiffUniform(n int, lifetime units.Years, volume, sizeGates float64) (float64, error) {
	return DiffUniformBetween(cp.FPGA, cp.ASIC, n, lifetime, volume, sizeGates)
}

// CrossoverNumApps finds the smallest N_app in 1..maxN at which the
// FPGA total drops below the ASIC total — the A2F crossover of
// experiment A (Fig. 4); CrossoverNumAppsBetween with the pair's
// operand order. found is false when no crossover occurs within maxN.
func (cp CompiledPair) CrossoverNumApps(lifetime units.Years, volume, sizeGates float64, maxN int) (n int, found bool, err error) {
	return CrossoverNumAppsBetween(cp.FPGA, cp.ASIC, lifetime, volume, sizeGates, maxN)
}

// CrossoverLifetime bisects the application lifetime T_i on [lo, hi]
// with fixed N_app and volume for the point where the FPGA and ASIC
// totals meet — the F2A point of experiment B (Fig. 5).
func (cp CompiledPair) CrossoverLifetime(nApps int, volume, sizeGates float64, lo, hi units.Years) (units.Years, bool, error) {
	return CrossoverLifetimeBetween(cp.FPGA, cp.ASIC, nApps, volume, sizeGates, lo, hi)
}

// CrossoverVolume bisects the application volume N_vol on [lo, hi]
// with fixed N_app and lifetime — the F2A point of experiment C
// (Fig. 6).
func (cp CompiledPair) CrossoverVolume(nApps int, lifetime units.Years, sizeGates float64, lo, hi float64) (float64, bool, error) {
	return CrossoverVolumeBetween(cp.FPGA, cp.ASIC, nApps, lifetime, sizeGates, lo, hi)
}
