// Package core is the GreenFPGA scenario engine: it assembles the
// design, manufacturing, packaging, end-of-life and deployment models
// into the paper's total-CFP equations,
//
//	C_ASIC = sum_i (C_emb,i + T_i x C_deploy,i)        (Eq. 1)
//	C_FPGA = C_emb + sum_i T_i x C_deploy,i            (Eq. 2)
//	C_emb  = C_des + N_vol x N_FPGA x (C_mfg + C_pkg + C_EOL)  (Eq. 3)
//
// and provides the crossover solvers (A2F and F2A points) used by the
// paper's evaluation.
package core

import (
	"fmt"

	"greenfpga/internal/carbon"
	"greenfpga/internal/deploy"
	"greenfpga/internal/design"
	"greenfpga/internal/device"
	"greenfpga/internal/eol"
	"greenfpga/internal/fab"
	"greenfpga/internal/grid"
	"greenfpga/internal/packaging"
	"greenfpga/internal/units"
	"greenfpga/internal/yield"
)

// Defaults for platform knobs left at their zero values.
const (
	// DefaultDesignEngineers is N_emp,des when unset.
	DefaultDesignEngineers = 300
	// DefaultDesignYears is T_proj when unset (Table 1: 1-3 years).
	DefaultDesignYears = 2
)

// Platform bundles a device with every lifecycle-model input of the
// tool (Fig. 3): embodied knobs on the left, deployment knobs on the
// right.
type Platform struct {
	// Spec is the device being deployed.
	Spec device.Spec

	// FabMix powers the fab; nil means the Taiwan preset.
	FabMix grid.Mix
	// FabRenewableTarget optionally raises the fab's renewable share.
	FabRenewableTarget float64
	// RecycledMaterialFraction is rho in Eq. 5.
	RecycledMaterialFraction float64
	// Yield overrides the node-default Murphy calculator when set.
	Yield yield.Calculator
	// YieldOverride forces a fixed die yield in (0,1] when positive.
	// The iso-performance testcases use it so the FPGA:ASIC embodied
	// ratio equals the silicon ratio of Table 2 (the paper's reading:
	// equivalent FPGA capacity is reached with devices of comparable
	// yield, not one giant low-yield die).
	YieldOverride float64

	// PackagingStyle selects the package model; empty means monolithic.
	PackagingStyle packaging.Style
	// PackagingAreaFactor overrides the package/die area ratio when > 0.
	PackagingAreaFactor float64

	// EOL configures Eq. 6.
	EOL eol.Params

	// DesignOrg is the design house (zero Employees means the default
	// fabless profile).
	DesignOrg design.Org
	// DesignEngineers is N_emp,des; zero means DefaultDesignEngineers.
	DesignEngineers float64
	// DesignDuration is T_proj; zero means DefaultDesignYears.
	DesignDuration units.Years
	// DesignReferenceGates is N_gates,des; zero disables the gate-count
	// ratio (staffing already reflects this chip).
	DesignReferenceGates float64
	// UseLegacyDesignModel switches Eq. 4 for the gates-only prior-art
	// model of [5] (the design-ablation experiment).
	UseLegacyDesignModel bool
	// LegacyModel configures the prior-art model when enabled.
	LegacyModel design.LegacyGateModel

	// DutyCycle is the deployment utilization (0..1).
	DutyCycle float64
	// PUE is the facility overhead; zero means 1.
	PUE float64
	// UseMix is the deployment grid; nil means the world preset.
	UseMix grid.Mix
	// UseTrace is an hourly use-phase intensity trace. When set, the
	// operational CFP integrates hour-by-hour over each deployment's
	// residency window instead of multiplying by the scalar UseMix
	// intensity; when nil the legacy scalar path runs untouched.
	UseTrace carbon.Trace
	// UseIntegrator supplies pre-compiled trace constants (the cached
	// per-region integrators) so Compile does not rebuild the prefix
	// tables; when nil, Compile compiles UseTrace itself.
	UseIntegrator *carbon.Integrator
	// UseShift selects a temporal load-shifting policy over the trace:
	// "" runs uniformly at DutyCycle, carbon.ShiftDaily packs each
	// day's run-hours into that day's cleanest hours.
	UseShift string
	// AppDev overrides the application-development profile. Nil uses
	// the device kind's reuse-policy default (deploy.DefaultAppDev):
	// the FPGA hardware flow, the GPU/CPU software port, or the
	// paper's ASIC accounting (Eq. 7 with T_FE = T_BE = 0).
	AppDev *deploy.AppDev
	// ChipLifetime caps how long one hardware generation can serve;
	// zero means uncapped. Fig. 9 uses 15 years.
	ChipLifetime units.Years
}

// Validate checks the platform inputs that the model packages do not
// check themselves.
func (p Platform) Validate() error {
	if err := p.Spec.Validate(); err != nil {
		return err
	}
	if p.DutyCycle < 0 || p.DutyCycle > 1 {
		return fmt.Errorf("core: duty cycle %g outside [0,1]", p.DutyCycle)
	}
	if len(p.UseTrace) > 0 {
		if err := p.UseTrace.Validate(); err != nil {
			return err
		}
	}
	switch p.UseShift {
	case "", carbon.ShiftDaily:
	default:
		return fmt.Errorf("core: unknown shift policy %q (valid: %s)", p.UseShift, carbon.ShiftDaily)
	}
	if p.UseShift != "" && len(p.UseTrace) == 0 && p.UseIntegrator == nil {
		return fmt.Errorf("core: shift policy %q needs an hourly intensity trace", p.UseShift)
	}
	if p.YieldOverride < 0 || p.YieldOverride > 1 {
		return fmt.Errorf("core: yield override %g must be 0 (disabled) or in (0,1]", p.YieldOverride)
	}
	if p.ChipLifetime.Years() < 0 {
		return fmt.Errorf("core: negative chip lifetime %v", p.ChipLifetime)
	}
	if p.DesignEngineers < 0 {
		return fmt.Errorf("core: negative design staffing %g", p.DesignEngineers)
	}
	if p.DesignDuration.Years() < 0 {
		return fmt.Errorf("core: negative design duration %v", p.DesignDuration)
	}
	return nil
}

// appDev resolves the application-development profile for the
// platform's device kind, following the kind's reuse policy.
func (p Platform) appDev() deploy.AppDev {
	if p.AppDev != nil {
		return *p.AppDev
	}
	return deploy.DefaultAppDev(p.Spec.Kind)
}

// operation builds the per-device operation profile.
func (p Platform) operation() deploy.OperationProfile {
	return deploy.OperationProfile{
		PeakPower: p.Spec.PeakPower,
		DutyCycle: p.DutyCycle,
		PUE:       p.PUE,
		UseMix:    p.UseMix,
	}
}

// AnnualOperationCarbon is C_op for one device over one year.
func (p Platform) AnnualOperationCarbon() (units.Mass, error) {
	return p.operation().AnnualCarbon()
}

// AppDevProfile resolves the application-development profile for the
// platform's device kind (Eq. 7 inputs).
func (p Platform) AppDevProfile() deploy.AppDev {
	return p.appDev()
}

// DeviceCost is the per-device embodied footprint (manufacturing,
// packaging, end-of-life) — the bracketed term of Eq. 3.
type DeviceCost struct {
	// Manufacturing is the fab result.
	Manufacturing fab.Result
	// Packaging is the package result.
	Packaging packaging.Result
	// EOL is the end-of-life result.
	EOL eol.Result
}

// Total is C_mfg + C_package + C_EOL for one device.
func (d DeviceCost) Total() units.Mass {
	return d.Manufacturing.Total() + d.Packaging.Total() + d.EOL.Net()
}

// DeviceCost evaluates the per-device embodied models.
func (p Platform) DeviceCost() (DeviceCost, error) {
	yc := p.Yield
	if p.YieldOverride > 0 {
		// A fixed yield is expressed as a zero-defect Poisson model and
		// explicit scaling below.
		yc = yield.Calculator{Model: yield.Poisson, DefectDensity: 0}
	}
	mfg, err := fab.PerDie(fab.Inputs{
		Node:                     p.Spec.Node,
		DieArea:                  p.Spec.DieArea,
		FabMix:                   p.FabMix,
		RenewableTarget:          p.FabRenewableTarget,
		RecycledMaterialFraction: p.RecycledMaterialFraction,
		Yield:                    yc,
	})
	if err != nil {
		return DeviceCost{}, err
	}
	if p.YieldOverride > 0 {
		inv := 1 / p.YieldOverride
		mfg.EnergyCarbon = mfg.EnergyCarbon.Scale(inv)
		mfg.GasCarbon = mfg.GasCarbon.Scale(inv)
		mfg.MaterialCarbon = mfg.MaterialCarbon.Scale(inv)
		mfg.FabEnergy = mfg.FabEnergy.Scale(inv)
		mfg.Yield = p.YieldOverride
	}

	pkg, err := packaging.CFP(packaging.Inputs{
		Style:             p.PackagingStyle,
		DieAreas:          []units.Area{p.Spec.DieArea},
		PackageAreaFactor: p.PackagingAreaFactor,
		AssemblyMix:       p.FabMix,
	})
	if err != nil {
		return DeviceCost{}, err
	}

	endOfLife, err := eol.CFP(eol.EstimateDeviceMassKg(pkg.PackageArea), p.EOL)
	if err != nil {
		return DeviceCost{}, err
	}
	return DeviceCost{Manufacturing: mfg, Packaging: pkg, EOL: endOfLife}, nil
}

// DesignCFP evaluates the design-phase model (Eq. 4), or the legacy
// gates-only model when the ablation switch is set.
func (p Platform) DesignCFP() (units.Mass, error) {
	if p.UseLegacyDesignModel {
		return p.LegacyModel.CFP(p.Spec.SiliconGates())
	}
	org := p.DesignOrg
	if org.Employees == 0 {
		org = design.DefaultOrg
	}
	proj := design.Project{
		Engineers:      p.DesignEngineers,
		Duration:       p.DesignDuration,
		Gates:          p.Spec.SiliconGates(),
		ReferenceGates: p.DesignReferenceGates,
	}
	if proj.Engineers == 0 {
		proj.Engineers = DefaultDesignEngineers
	}
	if proj.Duration == 0 {
		proj.Duration = units.YearsOf(DefaultDesignYears)
	}
	return design.CFP(org, proj)
}
