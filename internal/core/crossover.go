package core

import (
	"fmt"
	"math"

	"greenfpga/internal/units"
)

// Pair couples an FPGA platform with its iso-performance ASIC
// alternative, the comparison setting of the whole paper. It is
// retained as a thin two-element wrapper over the N-platform Set; use
// Set directly to compare more than two platforms.
type Pair struct {
	// FPGA is the reconfigurable platform.
	FPGA Platform
	// ASIC is the fixed-function alternative.
	ASIC Platform
}

// Set widens the pair to a two-element platform set (FPGA first).
func (pr Pair) Set() Set { return Set{pr.FPGA, pr.ASIC} }

// Comparison is the outcome of evaluating both platforms on the same
// scenario.
type Comparison struct {
	// FPGA and ASIC are the platform assessments.
	FPGA, ASIC Assessment
	// Ratio is FPGA:ASIC total CFP — below 1 the FPGA is the more
	// sustainable choice (the purple regions of Fig. 8).
	Ratio float64
}

// Compare evaluates both platforms on the scenario.
func (pr Pair) Compare(s Scenario) (Comparison, error) {
	f, err := Evaluate(pr.FPGA, s)
	if err != nil {
		return Comparison{}, fmt.Errorf("core: FPGA side: %w", err)
	}
	a, err := Evaluate(pr.ASIC, s)
	if err != nil {
		return Comparison{}, fmt.Errorf("core: ASIC side: %w", err)
	}
	c := Comparison{FPGA: f, ASIC: a}
	if at := a.Total().Kilograms(); at != 0 {
		c.Ratio = f.Total().Kilograms() / at
	} else {
		c.Ratio = math.Inf(1)
	}
	return c, nil
}

// diff is the signed FPGA-minus-ASIC total in kilograms.
func (pr Pair) diff(s Scenario) (float64, error) {
	c, err := pr.Compare(s)
	if err != nil {
		return 0, err
	}
	return c.FPGA.Total().Kilograms() - c.ASIC.Total().Kilograms(), nil
}

// Bisect locates a zero of f on [lo, hi] to within tol (absolute, on
// x). It requires a sign change between the endpoints and reports
// found=false without error when there is none. f is assumed
// continuous.
func Bisect(lo, hi, tol float64, f func(float64) (float64, error)) (x float64, found bool, err error) {
	if !(lo < hi) {
		return 0, false, fmt.Errorf("core: bisect needs lo < hi, got [%g, %g]", lo, hi)
	}
	if tol <= 0 {
		return 0, false, fmt.Errorf("core: bisect needs a positive tolerance, got %g", tol)
	}
	flo, err := f(lo)
	if err != nil {
		return 0, false, err
	}
	fhi, err := f(hi)
	if err != nil {
		return 0, false, err
	}
	if flo == 0 {
		return lo, true, nil
	}
	if fhi == 0 {
		return hi, true, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, false, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		fm, err := f(mid)
		if err != nil {
			return 0, false, err
		}
		if fm == 0 {
			return mid, true, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true, nil
}

// CrossoverNumApps finds the smallest N_app in 1..maxN at which the
// FPGA total drops below the ASIC total — the A2F crossover of
// experiment A (Fig. 4). found is false when no crossover occurs
// within maxN. The pair is compiled once and probed through the O(1)
// uniform path; see CompiledPair.CrossoverNumApps.
func (pr Pair) CrossoverNumApps(lifetime units.Years, volume, sizeGates float64, maxN int) (n int, found bool, err error) {
	cp, err := pr.Compile()
	if err != nil {
		return 0, false, err
	}
	return cp.CrossoverNumApps(lifetime, volume, sizeGates, maxN)
}

// CrossoverLifetime bisects the application lifetime T_i on [lo, hi]
// with fixed N_app and volume for the point where the FPGA and ASIC
// totals meet — the F2A point of experiment B (Fig. 5).
func (pr Pair) CrossoverLifetime(nApps int, volume, sizeGates float64, lo, hi units.Years) (units.Years, bool, error) {
	cp, err := pr.Compile()
	if err != nil {
		return 0, false, err
	}
	return cp.CrossoverLifetime(nApps, volume, sizeGates, lo, hi)
}

// CrossoverVolume bisects the application volume N_vol on [lo, hi]
// with fixed N_app and lifetime — the F2A point of experiment C
// (Fig. 6).
func (pr Pair) CrossoverVolume(nApps int, lifetime units.Years, sizeGates float64, lo, hi float64) (float64, bool, error) {
	cp, err := pr.Compile()
	if err != nil {
		return 0, false, err
	}
	return cp.CrossoverVolume(nApps, lifetime, sizeGates, lo, hi)
}
