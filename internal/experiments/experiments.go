// Package experiments regenerates every table and figure of the
// GreenFPGA paper's evaluation (§4), plus the ablations DESIGN.md calls
// out. Each experiment is a named Runner producing tables, rendered
// ASCII charts, and observations (crossover points, dominance notes)
// that can be compared against the paper; EXPERIMENTS.md records the
// comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"greenfpga/internal/core"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/report"
	"greenfpga/internal/units"
)

// Output is one experiment's renderable result.
type Output struct {
	// ID is the registry key ("fig4", "table2", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Tables hold tabular results.
	Tables []*report.Table
	// Charts hold pre-rendered ASCII figures.
	Charts []string
	// Notes hold headline observations (crossovers, dominance).
	Notes []string
}

// Render writes the experiment to a writer.
func (o *Output) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n\n", o.ID, o.Title); err != nil {
		return err
	}
	for _, t := range o.Tables {
		if err := t.WriteText(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, c := range o.Charts {
		if _, err := fmt.Fprintln(w, c); err != nil {
			return err
		}
	}
	for _, n := range o.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderMarkdown writes the experiment as Markdown: tables as GFM
// tables, charts fenced as code blocks, notes as a bullet list.
func (o *Output) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s: %s\n\n", o.ID, o.Title); err != nil {
		return err
	}
	for _, t := range o.Tables {
		if err := t.WriteMarkdown(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, c := range o.Charts {
		if _, err := fmt.Fprintf(w, "```\n%s```\n\n", c); err != nil {
			return err
		}
	}
	for _, n := range o.Notes {
		if _, err := fmt.Fprintf(w, "- %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the experiment's tables as CSV, separated by blank
// lines (charts and notes are omitted).
func (o *Output) RenderCSV(w io.Writer) error {
	for i, t := range o.Tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := t.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// Runner produces one experiment.
type Runner func() (*Output, error)

// registry maps experiment IDs to runners, populated by init functions
// in the per-figure files.
var registry = map[string]Runner{}

// register adds a runner; duplicate IDs are a programming error.
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// List returns the experiment IDs in run order: tables first, then
// figures, then extras, each numerically ordered.
func List() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return orderKey(ids[i]) < orderKey(ids[j]) })
	return ids
}

// orderKey sorts "table1" < "table2" < "fig2" < ... < "fig10" < extras.
func orderKey(id string) string {
	class, num := 2, 0
	switch {
	case strings.HasPrefix(id, "table"):
		class = 0
		fmt.Sscanf(id, "table%d", &num)
	case strings.HasPrefix(id, "fig"):
		class = 1
		fmt.Sscanf(id, "fig%d", &num)
	}
	return fmt.Sprintf("%d-%03d-%s", class, num, id)
}

// Run executes one experiment by ID.
func Run(id string) (*Output, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, List())
	}
	out, err := r()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return out, nil
}

// RunAll executes every experiment in List order.
func RunAll() ([]*Output, error) {
	var outs []*Output
	for _, id := range List() {
		o, err := Run(id)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// domainPair resolves an iso-performance pair by domain name. Pair
// results are memoized inside isoperf, so repeated resolution across
// artifacts does not rebuild the platforms.
func domainPair(name string) (core.Pair, error) {
	d, err := isoperf.ByName(name)
	if err != nil {
		return core.Pair{}, err
	}
	return d.Pair()
}

// compiledSets memoizes compiled domain platform sets across
// artifacts, so every sweep cell of every figure runs against cached
// platform constants instead of re-deriving them. Pair-based
// experiments view the same cache through compiledDomainPair, so each
// domain platform is compiled once per process however it is used.
var compiledSets sync.Map // domain name -> core.CompiledSet

// compiledDomainSet resolves and compiles a domain's full platform set
// (FPGA, ASIC, GPU, CPU) by name, memoized for the life of the
// process (the calibrated domains are immutable).
func compiledDomainSet(name string) (core.CompiledSet, error) {
	if cached, ok := compiledSets.Load(name); ok {
		return cached.(core.CompiledSet), nil
	}
	d, err := isoperf.ByName(name)
	if err != nil {
		return nil, err
	}
	set, err := d.Set()
	if err != nil {
		return nil, err
	}
	cs, err := set.Compile()
	if err != nil {
		return nil, err
	}
	compiledSets.Store(name, cs)
	return cs, nil
}

// compiledDomainPair views a domain set's FPGA/ASIC members as the
// legacy compiled pair the two-platform figures sweep.
func compiledDomainPair(name string) (core.CompiledPair, error) {
	cs, err := compiledDomainSet(name)
	if err != nil {
		return core.CompiledPair{}, err
	}
	return core.CompiledPair{FPGA: cs[0], ASIC: cs[1]}, nil
}

// uniformEval builds a sweep evaluator over n/lifetime/volume with two
// of the three pinned, probing through the compiled O(1) uniform path.
func uniformEval(cp core.CompiledPair, n int, lifetimeYears, volume float64) func(axis string, x float64) (units.Mass, units.Mass, error) {
	return func(axis string, x float64) (units.Mass, units.Mass, error) {
		nApps, t, v := n, lifetimeYears, volume
		switch axis {
		case "n":
			nApps = int(x + 0.5)
		case "t":
			t = x
		case "v":
			v = x
		default:
			return 0, 0, fmt.Errorf("experiments: unknown axis %q", axis)
		}
		c, err := cp.CompareUniform(nApps, units.YearsOf(t), v, 0)
		if err != nil {
			return 0, 0, err
		}
		return c.FPGA.Total(), c.ASIC.Total(), nil
	}
}

// kt formats a mass in kilotonnes for table cells.
func kt(m units.Mass) string { return fmt.Sprintf("%.2f", m.Kilotonnes()) }
