package experiments

import (
	"fmt"
	"strings"

	"greenfpga/internal/isoperf"
	"greenfpga/internal/lifecycle"
	"greenfpga/internal/report"
	"greenfpga/internal/units"
)

func init() {
	register("fig9", fig9)
}

// Fig. 9 settings: 15-year chip lifetime, one-year applications, and a
// 45-year horizon that forces two FPGA fleet rebuys.
const (
	fig9ChipLifetimeYears = 15
	fig9AppLifetimeYears  = 1
	fig9HorizonYears      = 45
)

// fig9 reproduces Fig. 9: cumulative CFP over wall-clock time with a
// finite FPGA chip lifetime. The FPGA curve jumps at each fleet rebuy
// (15 and 30 years); the ASIC curve steps at every application change
// instead.
func fig9() (*Output, error) {
	out := &Output{
		ID:    "fig9",
		Title: "CFP with a 15-year chip lifetime and 1-year applications (paper Fig. 9)",
	}
	summary := report.NewTable("Fig. 9 cumulative CFP at checkpoints [ktCO2e]",
		"Domain", "Platform", "10y", "20y", "35y", "45y")
	for _, d := range isoperf.Domains() {
		pr, err := d.Pair()
		if err != nil {
			return nil, err
		}
		fpga := pr.FPGA
		fpga.ChipLifetime = units.YearsOf(fig9ChipLifetimeYears)

		fRes, err := lifecycle.Run(lifecycle.Config{
			Platform:    fpga,
			AppLifetime: units.YearsOf(fig9AppLifetimeYears),
			Horizon:     units.YearsOf(fig9HorizonYears),
			Volume:      isoperf.ReferenceVolume,
			Samples:     180,
		})
		if err != nil {
			return nil, err
		}
		aRes, err := lifecycle.Run(lifecycle.Config{
			Platform:    pr.ASIC,
			AppLifetime: units.YearsOf(fig9AppLifetimeYears),
			Horizon:     units.YearsOf(fig9HorizonYears),
			Volume:      isoperf.ReferenceVolume,
			Samples:     180,
		})
		if err != nil {
			return nil, err
		}
		runs := []struct {
			name string
			res  lifecycle.Result
		}{{"FPGA", fRes}, {"ASIC", aRes}}

		var series []report.Series
		for _, r := range runs {
			xs := make([]float64, len(r.res.Curve))
			ys := make([]float64, len(r.res.Curve))
			for i, p := range r.res.Curve {
				xs[i] = p.Time.Years()
				ys[i] = p.Cumulative.Kilotonnes()
			}
			series = append(series, report.Series{Name: r.name, X: xs, Y: ys})
			summary.AddRow(d.Name, r.name,
				kt(curveAt(r.res, 10)), kt(curveAt(r.res, 20)),
				kt(curveAt(r.res, 35)), kt(curveAt(r.res, 45)))
		}
		var sb strings.Builder
		err = report.LineChart(&sb, report.ChartOptions{
			Title:  fmt.Sprintf("Fig. 9 - %s domain (chip life 15y, app life 1y)", d.Name),
			XLabel: "years of operation", YLabel: "cumulative CFP [ktCO2e]",
		}, series...)
		if err != nil {
			return nil, err
		}
		out.Charts = append(out.Charts, sb.String())

		// Note the rebuy jumps and where the leader flips: the paper
		// observes ImgProc alternating between A2F and F2A as the
		// rebuys land.
		var jumps []string
		for _, e := range fRes.Events {
			if e.Kind == lifecycle.EventHardware && e.Time > 0 {
				jumps = append(jumps, fmt.Sprintf("%gy", e.Time.Years()))
			}
		}
		crossings, err := lifecycle.CrossoverTimes(fRes.Curve, aRes.Curve)
		if err != nil {
			return nil, err
		}
		var at []string
		for _, x := range crossings {
			at = append(at, fmt.Sprintf("%.1fy", x.Years()))
		}
		where := "none"
		if len(at) > 0 {
			where = strings.Join(at, ", ")
		}
		out.Notes = append(out.Notes, fmt.Sprintf(
			"%s: FPGA fleet rebuys at %s; leader flips %d time(s) over %d years (at %s)",
			d.Name, strings.Join(jumps, ", "), len(crossings), fig9HorizonYears, where))
	}
	out.Tables = append(out.Tables, summary)
	return out, nil
}

// curveAt samples a lifecycle curve at the point nearest t.
func curveAt(r lifecycle.Result, t float64) units.Mass {
	if len(r.Curve) == 0 {
		return 0
	}
	best := r.Curve[0]
	for _, p := range r.Curve {
		if abs(p.Time.Years()-t) < abs(best.Time.Years()-t) {
			best = p
		}
	}
	return best.Cumulative
}

// abs avoids importing math for one call.
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
