package experiments

import (
	"fmt"

	"greenfpga/internal/carbon"
	"greenfpga/internal/core"
	"greenfpga/internal/report"
	"greenfpga/internal/units"
)

func init() {
	register("carbon-siting", carbonSiting)
	register("load-shifting", loadShifting)
}

// sitingWorkload pins the fleet-study anchor both carbon experiments
// share: the /v1/fleet defaults (5 apps, 2 years, 1e6 volume) so the
// artifacts cross-check against the endpoint.
const (
	sitingNApps  = 5
	sitingVolume = 1e6
	sitingMaxN   = 30
)

var sitingLifetime = units.YearsOf(2)

// sitedPair compiles the DNN FPGA/ASIC pair deployed in a carbon
// region: scalar regions swap the use-phase mix, traced regions
// additionally attach the cached hourly integrator (and optionally a
// shifting policy), exercising the trace-integrated operational path.
func sitedPair(reg carbon.Region, shift string) (core.CompiledPair, error) {
	pr, err := domainPair("DNN")
	if err != nil {
		return core.CompiledPair{}, err
	}
	for _, p := range []*core.Platform{&pr.FPGA, &pr.ASIC} {
		p.UseMix = reg.Mix
		p.UseTrace, p.UseIntegrator, p.UseShift = nil, nil, ""
		if reg.Traced {
			it, err := carbon.IntegratorFor(reg.Name)
			if err != nil {
				return core.CompiledPair{}, err
			}
			p.UseIntegrator = it
			p.UseShift = shift
		}
	}
	return pr.Compile()
}

// carbonSiting runs the fleet siting study as a paper-style artifact:
// the DNN pair deployed across every registry region, scalar presets
// and hourly-trace grids alike, with the A2F crossover re-solved per
// region. The deployment grid moves only the operational share, so
// clean grids stretch the FPGA-favourable region of the tradeoff —
// the grid-aware crossover shift the trace engine exists to expose.
func carbonSiting() (*Output, error) {
	t := report.NewTable(
		fmt.Sprintf("Carbon-aware siting: DNN pair (N=%d apps, T=%gy, V=%g) total CFP [kt]",
			sitingNApps, sitingLifetime.Years(), sitingVolume),
		"Region", "Signal", "Mean CI [g/kWh]", "FPGA", "ASIC", "Winner", "A2F N_app")
	bestKg, worstKg := 0.0, 0.0
	var bestRegion string
	minA2F, maxA2F := 0, 0
	for _, reg := range carbon.Regions() {
		cp, err := sitedPair(reg, "")
		if err != nil {
			return nil, err
		}
		cmp, err := cp.CompareUniform(sitingNApps, sitingLifetime, sitingVolume, 0)
		if err != nil {
			return nil, err
		}
		signal, mean := "scalar", 0.0
		if reg.Traced {
			signal = "hourly"
			tr, err := reg.Trace()
			if err != nil {
				return nil, err
			}
			mean = tr.Mean().GramsPerKWh()
		} else {
			ci, err := reg.Intensity()
			if err != nil {
				return nil, err
			}
			mean = ci.GramsPerKWh()
		}
		winner, winKg := cmp.FPGA.Platform, cmp.FPGA.Total().Kilograms()
		if cmp.ASIC.Total() < cmp.FPGA.Total() {
			winner, winKg = cmp.ASIC.Platform, cmp.ASIC.Total().Kilograms()
		}
		n, found, err := cp.CrossoverNumApps(sitingLifetime, sitingVolume, 0, sitingMaxN)
		if err != nil {
			return nil, err
		}
		a2f := "-"
		if found {
			a2f = fmt.Sprintf("%d", n)
			if minA2F == 0 || n < minA2F {
				minA2F = n
			}
			if n > maxA2F {
				maxA2F = n
			}
		}
		t.AddRow(reg.Name, signal, fmt.Sprintf("%.0f", mean),
			kt(cmp.FPGA.Total()), kt(cmp.ASIC.Total()), winner, a2f)
		if bestKg == 0 || winKg < bestKg {
			bestKg, bestRegion = winKg, reg.Name
		}
		if winKg > worstKg {
			worstKg = winKg
		}
	}
	return &Output{
		ID:     "carbon-siting",
		Title:  "Extension: carbon-aware fleet siting across grid regions",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("siting moves the best-platform CFP by %.1fx (%.2f to %.2f kt); "+
				"%s is the minimum-CFP placement", worstKg/bestKg, worstKg/1e6, bestKg/1e6, bestRegion),
			fmt.Sprintf("the A2F crossover shifts from %d to %d applications across regions — "+
				"grid mix changes which platform a fleet should buy, not just how much it emits",
				minA2F, maxA2F),
		},
	}, nil
}

// loadShifting quantifies the temporal lever in the hourly-trace
// regions: packing each day's run-hours into its cleanest hours (the
// daily shift policy) against running flat out. Only the operational
// share moves; volatile grids (solar midday dips, wind swings) reward
// shifting, near-flat ones don't.
func loadShifting() (*Output, error) {
	t := report.NewTable(
		fmt.Sprintf("Daily load shifting: DNN FPGA fleet (N=%d apps, T=%gy, V=%g)",
			sitingNApps, sitingLifetime.Years(), sitingVolume),
		"Region", "CI mean/min [g/kWh]", "Op CFP flat [kt]", "Op CFP shifted [kt]", "Op saved", "Total saved")
	bestSave, bestRegion := 0.0, ""
	for _, reg := range carbon.Regions() {
		if !reg.Traced {
			continue
		}
		flat, err := sitedPair(reg, "")
		if err != nil {
			return nil, err
		}
		shifted, err := sitedPair(reg, carbon.ShiftDaily)
		if err != nil {
			return nil, err
		}
		fa, err := flat.FPGA.EvaluateUniform(sitingNApps, sitingLifetime, sitingVolume, 0)
		if err != nil {
			return nil, err
		}
		sa, err := shifted.FPGA.EvaluateUniform(sitingNApps, sitingLifetime, sitingVolume, 0)
		if err != nil {
			return nil, err
		}
		tr, err := reg.Trace()
		if err != nil {
			return nil, err
		}
		min, _ := tr.Bounds()
		opFlat, opShift := fa.Breakdown.Operation, sa.Breakdown.Operation
		opSave := 1 - opShift.Kilograms()/opFlat.Kilograms()
		totSave := 1 - sa.Total().Kilograms()/fa.Total().Kilograms()
		t.AddRow(reg.Name,
			fmt.Sprintf("%.0f / %.0f", tr.Mean().GramsPerKWh(), min.GramsPerKWh()),
			kt(opFlat), kt(opShift),
			fmt.Sprintf("%.1f%%", 100*opSave), fmt.Sprintf("%.1f%%", 100*totSave))
		if opSave > bestSave {
			bestSave, bestRegion = opSave, reg.Name
		}
	}
	return &Output{
		ID:     "load-shifting",
		Title:  "Extension: temporal load shifting on hourly grid traces",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("daily shifting cuts operational CFP by up to %.1f%% (%s) with zero "+
				"hardware change; embodied carbon is untouched, so total savings are smaller",
				100*bestSave, bestRegion),
			"shifting only pays on volatile grids — the lever is the trace's daily swing, not its mean",
		},
	}, nil
}
