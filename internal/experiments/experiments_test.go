package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestListOrderAndCoverage(t *testing.T) {
	ids := List()
	// Every paper table and figure must be present.
	want := []string{
		"table1", "table2", "table3",
		"fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"scenarios", "design-ablation", "yield-ablation", "recycling-sweep",
		"timeline-staggered",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("missing experiment %q", w)
		}
	}
	// Tables come before figures, figures in numeric order.
	idx := map[string]int{}
	for i, id := range ids {
		idx[id] = i
	}
	if !(idx["table1"] < idx["fig2"] && idx["fig2"] < idx["fig4"] &&
		idx["fig9"] < idx["fig10"] && idx["fig10"] < idx["fig11"]) {
		t.Errorf("ordering: %v", ids)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99"); err == nil {
		t.Error("unknown id must error")
	}
}

func TestRunAllAndRender(t *testing.T) {
	outs, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(List()) {
		t.Fatalf("ran %d of %d experiments", len(outs), len(List()))
	}
	for _, o := range outs {
		if o.ID == "" || o.Title == "" {
			t.Errorf("experiment missing metadata: %+v", o)
		}
		if len(o.Tables)+len(o.Charts) == 0 {
			t.Errorf("%s produced nothing renderable", o.ID)
		}
		var buf bytes.Buffer
		if err := o.Render(&buf); err != nil {
			t.Errorf("%s render: %v", o.ID, err)
		}
		if !strings.Contains(buf.String(), o.ID) {
			t.Errorf("%s render missing header", o.ID)
		}
	}
}

func TestRenderMarkdownAndCSV(t *testing.T) {
	o, err := Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	var md bytes.Buffer
	if err := o.RenderMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## table2:", "| Testcase | DNN |", "| 4 | 7.42 | 1 |"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}
	var csv bytes.Buffer
	if err := o.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "Testcase,DNN,ImgProc,Crypto") {
		t.Errorf("csv:\n%s", csv.String())
	}
	// Charts render as fenced blocks, notes as bullets.
	fig, err := Run("fig4")
	if err != nil {
		t.Fatal(err)
	}
	md.Reset()
	if err := fig.RenderMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "```") || !strings.Contains(md.String(), "- DNN: A2F") {
		t.Errorf("fig4 markdown missing chart fences or notes:\n%.400s", md.String())
	}
}

func TestFig2Notes(t *testing.T) {
	o, err := Run("fig2")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(o.Notes, "\n")
	if !strings.Contains(joined, "lower-CFP") {
		t.Errorf("fig2 notes: %v", o.Notes)
	}
}

func TestFig4CrossoverNotes(t *testing.T) {
	o, err := Run("fig4")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(o.Notes, "\n")
	for _, want := range []string{"DNN: A2F", "ImgProc: A2F", "Crypto: A2F"} {
		if !strings.Contains(joined, want) {
			t.Errorf("fig4 notes missing %q: %v", want, o.Notes)
		}
	}
	if len(o.Charts) != 3 {
		t.Errorf("fig4 should chart all three domains, got %d", len(o.Charts))
	}
}

func TestFig5DominanceNotes(t *testing.T) {
	o, err := Run("fig5")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(o.Notes, "\n")
	if !strings.Contains(joined, "DNN: F2A crossover at 1.") {
		t.Errorf("fig5 notes missing DNN F2A: %v", o.Notes)
	}
	if !strings.Contains(joined, "ImgProc: no crossover; ASIC") {
		t.Errorf("fig5 notes missing ImgProc dominance: %v", o.Notes)
	}
	if !strings.Contains(joined, "Crypto: no crossover; FPGA") {
		t.Errorf("fig5 notes missing Crypto dominance: %v", o.Notes)
	}
}

func TestFig8ProducesContours(t *testing.T) {
	o, err := Run("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Charts) != 3 {
		t.Fatalf("fig8 should render three heatmaps, got %d", len(o.Charts))
	}
	for _, c := range o.Charts {
		if !strings.Contains(c, "X") {
			t.Error("heatmap missing crossover contour marks")
		}
	}
}

func TestFig9RebuyNotes(t *testing.T) {
	o, err := Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(o.Notes, "\n")
	if !strings.Contains(joined, "15y, 30y") {
		t.Errorf("fig9 notes missing rebuy schedule: %v", o.Notes)
	}
}

func TestFig10DesignShare(t *testing.T) {
	// The paper's §4.3 headline: design CFP ~15% of embodied for the
	// industry FPGAs, operation the primary contributor, EOL tiny.
	o, err := Run("fig10")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(o.Notes, "\n")
	for _, want := range []string{"design 15.0% of embodied", "operation 99% of total"} {
		if !strings.Contains(joined, want) {
			t.Errorf("fig10 notes missing %q: %v", want, o.Notes)
		}
	}
}

func TestIndustryPlatform(t *testing.T) {
	p, err := IndustryPlatform("IndustryFPGA1")
	if err != nil {
		t.Fatal(err)
	}
	if p.DutyCycle != industryDuty || p.PUE != industryPUE {
		t.Errorf("industry deployment knobs: %+v", p)
	}
	if _, err := IndustryPlatform("IndustryGPU9"); err == nil {
		t.Error("unknown device must error")
	}
}

func TestScenariosMatchesContribution5(t *testing.T) {
	o, err := Run("scenarios")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(o.Notes, "\n")
	if !strings.Contains(joined, "1.59-year") && !strings.Contains(joined, "1.6") {
		t.Errorf("scenarios notes missing lifetime headline: %v", o.Notes)
	}
}

func TestDesignAblationUnderestimate(t *testing.T) {
	o, err := Run("design-ablation")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Tables) == 0 || len(o.Tables[0].Rows) != 6 {
		t.Fatalf("ablation table: %+v", o.Tables)
	}
	if !strings.Contains(strings.Join(o.Notes, " "), "underestimates") {
		t.Errorf("ablation notes: %v", o.Notes)
	}
}
