package experiments

import (
	"fmt"
	"strings"

	"greenfpga/internal/isoperf"
	"greenfpga/internal/report"
	"greenfpga/internal/sweep"
	"greenfpga/internal/units"
)

func init() {
	register("fig8", fig8)
}

// fig8 reproduces Fig. 8: pairwise heatmaps of the FPGA:ASIC CFP ratio
// for the DNN domain, with the crossover contour marked.
func fig8() (*Output, error) {
	cp, err := compiledDomainPair("DNN")
	if err != nil {
		return nil, err
	}
	eval := func(n int, tYears, volume float64) (units.Mass, units.Mass, error) {
		c, err := cp.CompareUniform(n, units.YearsOf(tYears), volume, 0)
		if err != nil {
			return 0, 0, err
		}
		return c.FPGA.Total(), c.ASIC.Total(), nil
	}

	nAxis := sweep.Axis{Name: "Num Apps", Values: sweep.IntRange(1, 10)}
	tAxis := sweep.Axis{Name: "App Lifetime [y]", Values: sweep.Linspace(0.2, 2.5, 12)}
	vAxis := sweep.Axis{Name: "App Volume", Values: sweep.Logspace(1e3, 1e7, 13), Log: true}

	type panel struct {
		name     string
		constant string
		x, y     sweep.Axis
		run      func(x, y float64) (units.Mass, units.Mass, error)
	}
	ref := isoperf.ReferenceLifetime().Years()
	panels := []panel{
		{
			name: "(a) N_app x T_i", constant: "N_vol = 1e6",
			x: nAxis, y: tAxis,
			run: func(x, y float64) (units.Mass, units.Mass, error) {
				return eval(int(x+0.5), y, isoperf.ReferenceVolume)
			},
		},
		{
			name: "(b) N_vol x T_i", constant: "N_app = 5",
			x: vAxis, y: tAxis,
			run: func(x, y float64) (units.Mass, units.Mass, error) {
				return eval(isoperf.ReferenceNumApps, y, x)
			},
		},
		{
			name: "(c) N_vol x N_app", constant: "T_i = 2y",
			x: vAxis, y: nAxis,
			run: func(x, y float64) (units.Mass, units.Mass, error) {
				return eval(int(y+0.5), ref, x)
			},
		},
	}

	out := &Output{
		ID:    "fig8",
		Title: "Pairwise sweeps of the DNN FPGA:ASIC CFP ratio (paper Fig. 8)",
	}
	for _, p := range panels {
		g, err := sweep.Run2D(p.x, p.y, p.run)
		if err != nil {
			return nil, err
		}
		var sb strings.Builder
		title := fmt.Sprintf("Fig. 8 %s (%s)", p.name, p.constant)
		if err := report.HeatmapChart(&sb, title, g, 1); err != nil {
			return nil, err
		}
		out.Charts = append(out.Charts, sb.String())

		contour := g.Contour(1)
		if len(contour) == 0 {
			out.Notes = append(out.Notes, fmt.Sprintf("%s: no crossover inside the swept region", p.name))
			continue
		}
		lo, hi := contour[0], contour[len(contour)-1]
		out.Notes = append(out.Notes, fmt.Sprintf(
			"%s: crossover contour spans (%.3g, %.3g) to (%.3g, %.3g) over %d segments",
			p.name, lo.X, lo.Y, hi.X, hi.Y, len(contour)))
	}
	return out, nil
}
