package experiments

import (
	"fmt"

	"greenfpga/internal/core"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/report"
	"greenfpga/internal/units"
)

func init() {
	register("platform-frontier", platformFrontier)
}

// frontierRow renders one comparison of the full DNN platform set as a
// table row: the four totals plus the minimum-CFP winner.
func frontierRow(t *report.Table, label string, sc core.SetComparison) {
	cells := []string{label}
	for _, a := range sc.Assessments {
		cells = append(cells, kt(a.Total()))
	}
	cells = append(cells, sc.WinnerAssessment().Platform)
	t.AddRow(cells...)
}

// platformFrontier reproduces the TOCS-style four-way comparison
// (FPGAs against ASICs, GPUs and CPUs): which platform class is the
// greenest choice as the number of applications, the application
// lifetime and the deployment volume vary. Every cell evaluates the
// DNN domain's full compiled set through the O(1) uniform path.
func platformFrontier() (*Output, error) {
	cs, err := compiledDomainSet("DNN")
	if err != nil {
		return nil, err
	}
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Platform().Spec.Name
	}
	header := append(append([]string{"Sweep point"}, names...), "Winner")

	refT, refV := isoperf.ReferenceLifetime(), float64(isoperf.ReferenceVolume)

	// Sweep 1: winner per N_app at the §4.2 reference point.
	apps := report.NewTable("Four-way frontier vs N_app (T=2y, V=1e6) [ktCO2e]", header...)
	winners := map[string]bool{}
	var firstFPGAWin int
	for n := 1; n <= 12; n++ {
		sc, err := cs.CompareUniform(n, refT, refV, 0)
		if err != nil {
			return nil, err
		}
		frontierRow(apps, fmt.Sprintf("N_app=%d", n), sc)
		win := sc.WinnerAssessment()
		winners[win.Platform] = true
		if firstFPGAWin == 0 && win.Kind == "fpga" {
			firstFPGAWin = n
		}
	}

	// Sweep 2: winner per application lifetime at N_app = 5.
	life := report.NewTable("Four-way frontier vs app lifetime (N=5, V=1e6) [ktCO2e]", header...)
	for _, ty := range []float64{0.5, 1, 2, 4, 8} {
		sc, err := cs.CompareUniform(isoperf.ReferenceNumApps, units.YearsOf(ty), refV, 0)
		if err != nil {
			return nil, err
		}
		frontierRow(life, fmt.Sprintf("T=%gy", ty), sc)
	}

	// Sweep 3: winner per deployment volume at N_app = 5, T = 2y.
	vol := report.NewTable("Four-way frontier vs volume (N=5, T=2y) [ktCO2e]", header...)
	for _, v := range []float64{1e3, 1e4, 1e5, 1e6, 1e7} {
		sc, err := cs.CompareUniform(isoperf.ReferenceNumApps, refT, v, 0)
		if err != nil {
			return nil, err
		}
		frontierRow(vol, fmt.Sprintf("V=%g", v), sc)
	}

	// Headline crossovers between set members, through the generalized
	// solvers.
	fpga, asic, gpu, cpu := cs[0], cs[1], cs[2], cs[3]
	fpgaOverGPU, foundFG, err := core.CrossoverNumAppsBetween(fpga, gpu, refT, refV, 0, 30)
	if err != nil {
		return nil, err
	}
	gpuOverASIC, foundGA, err := core.CrossoverNumAppsBetween(gpu, asic, refT, refV, 0, 30)
	if err != nil {
		return nil, err
	}
	cpuEverWins := false
	for n := 1; n <= 30 && !cpuEverWins; n++ {
		d, err := core.DiffUniformBetween(cpu, fpga, n, refT, refV, 0)
		if err != nil {
			return nil, err
		}
		cpuEverWins = d < 0
	}

	notes := []string{
		fmt.Sprintf("winners across the N_app sweep: %d distinct platform(s); the FPGA takes the "+
			"frontier from N_app=%d on", len(winners), firstFPGAWin),
	}
	if foundFG {
		notes = append(notes, fmt.Sprintf(
			"FPGA overtakes the GPU from %d applications (CrossoverNumAppsBetween)", fpgaOverGPU))
	}
	if foundGA {
		notes = append(notes, fmt.Sprintf(
			"GPU overtakes the per-application ASICs from %d applications", gpuOverASIC))
	}
	if !cpuEverWins {
		notes = append(notes, "the CPU never beats the FPGA within 30 applications: software "+
			"reuse cannot repay a 15x iso-performance power penalty")
	}
	return &Output{
		ID:     "platform-frontier",
		Title:  "Extension: four-way platform frontier (FPGA vs ASIC vs GPU vs CPU)",
		Tables: []*report.Table{apps, life, vol},
		Notes:  notes,
	}, nil
}
