package experiments

import (
	"fmt"
	"strings"

	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/report"
	"greenfpga/internal/units"
)

func init() {
	register("fig10", fig10)
	register("fig11", fig11)
}

// Industry deployment assumptions for §4.3: datacenter accelerators at
// 30% average utilization behind a PUE-1.2 facility, one-million-unit
// volumes over six years.
const (
	industryDuty   = 0.30
	industryPUE    = 1.2
	industryVolume = 1e6
)

// industryDesignStaff documents the per-device design staffing (Eq. 4
// N_emp,des over a 2-year T_proj). FPGA staffing is calibrated so
// design CFP lands at ~15% of embodied CFP at 1e6 units, the share the
// paper reports after correcting prior art's underestimate.
var industryDesignStaff = map[string]float64{
	"IndustryASIC1": 400,
	"IndustryASIC2": 500,
	"IndustryFPGA1": 666,
	"IndustryFPGA2": 1230,
	"IndustryGPU1":  800,
	"IndustryCPU1":  900,
}

// IndustryPlatform wraps a Table 3 catalog device in its §4.3
// deployment assumptions.
func IndustryPlatform(name string) (core.Platform, error) {
	spec, err := device.ByName(name)
	if err != nil {
		return core.Platform{}, err
	}
	staff, ok := industryDesignStaff[name]
	if !ok {
		return core.Platform{}, fmt.Errorf("experiments: no design staffing for %q", name)
	}
	return core.Platform{
		Spec:            spec,
		DutyCycle:       industryDuty,
		PUE:             industryPUE,
		DesignEngineers: staff,
		DesignDuration:  units.YearsOf(2),
	}, nil
}

// industryBreakdown renders one device's component breakdown.
func industryBreakdown(names []string, scenario func() core.Scenario, figID, figTitle string) (*Output, error) {
	out := &Output{ID: figID, Title: figTitle}
	t := report.NewTable(figTitle+" [ktCO2e]",
		"Device", "Design", "Mfg", "Pkg", "EOL", "Operation", "App-dev+cfg", "Total")
	var bars []report.StackedBar
	for _, name := range names {
		p, err := IndustryPlatform(name)
		if err != nil {
			return nil, err
		}
		res, err := core.Evaluate(p, scenario())
		if err != nil {
			return nil, err
		}
		b := res.Breakdown
		t.AddRow(name, kt(b.Design), kt(b.Manufacturing), kt(b.Packaging), kt(b.EOL),
			kt(b.Operation), kt(b.AppDevelopment+b.Configuration), kt(b.Total()))
		bars = append(bars, report.StackedBar{Label: name, Segments: []report.Segment{
			{Name: "design", Value: b.Design.Kilotonnes()},
			{Name: "mfg", Value: b.Manufacturing.Kilotonnes()},
			{Name: "pkg", Value: b.Packaging.Kilotonnes()},
			{Name: "operation", Value: b.Operation.Kilotonnes()},
			{Name: "app-dev", Value: (b.AppDevelopment + b.Configuration).Kilotonnes()},
		}})
		designShare := b.Design.Kilograms() / b.Embodied().Kilograms() * 100
		out.Notes = append(out.Notes, fmt.Sprintf(
			"%s: operation %.0f%% of total; design %.1f%% of embodied; EOL %.3f ktCO2e",
			name,
			b.Operation.Kilograms()/b.Total().Kilograms()*100,
			designShare, b.EOL.Kilotonnes()))
	}
	out.Tables = append(out.Tables, t)
	var sb strings.Builder
	if err := report.StackedBarChart(&sb, figTitle, "ktCO2e", bars, 50); err != nil {
		return nil, err
	}
	out.Charts = append(out.Charts, sb.String())
	return out, nil
}

// fig10 reproduces Fig. 10: the two industry FPGAs running three
// applications over six years with three reconfigurations.
func fig10() (*Output, error) {
	return industryBreakdown(
		[]string{"IndustryFPGA1", "IndustryFPGA2"},
		func() core.Scenario {
			return core.Uniform("fig10", 3, units.YearsOf(2), industryVolume, 0)
		},
		"fig10",
		"Industry FPGA CFP components: 6 years, 3 applications, 1M units (paper Fig. 10)",
	)
}

// fig11 reproduces Fig. 11: the two industry ASICs serving a single
// application for six years.
func fig11() (*Output, error) {
	return industryBreakdown(
		[]string{"IndustryASIC1", "IndustryASIC2"},
		func() core.Scenario {
			return core.Uniform("fig11", 1, units.YearsOf(6), industryVolume, 0)
		},
		"fig11",
		"Industry ASIC CFP components: 6 years, 1 application, 1M units (paper Fig. 11)",
	)
}
