package experiments

import (
	"fmt"

	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/dse"
	"greenfpga/internal/fab"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/packaging"
	"greenfpga/internal/planner"
	"greenfpga/internal/report"
	"greenfpga/internal/units"
	"greenfpga/internal/workload"
)

func init() {
	register("gpu-extension", gpuExtension)
	register("chiplet-ablation", chipletAblation)
	register("dse", dseExperiment)
	register("planner", plannerExperiment)
	register("multi-fpga", multiFPGA)
}

// gpuExtension adds the third acceleration option the paper mentions
// but does not model: a GPU is reusable across applications like an
// FPGA (software reprogramming), but burns more power at
// iso-performance — the DNN domain calibrates it at 2.5x ASIC silicon
// and 5x ASIC power ("GPUs have high power and less flexibility than
// FPGAs", §1) — and needs only a software port per application. The
// GPU is the first-class catalog spec of the DNN domain set, and
// every probe runs through the compiled O(1) uniform path.
func gpuExtension() (*Output, error) {
	cs, err := compiledDomainSet("DNN")
	if err != nil {
		return nil, err
	}
	// Domain-set order: FPGA, ASIC, GPU (the CPU member belongs to the
	// platform-frontier experiment).
	fpga, asic, gpu := cs[0], cs[1], cs[2]

	t := report.NewTable("GPU extension: DNN totals vs N_app (T=2y, V=1e6) [ktCO2e]",
		"N_app", "ASIC", "FPGA", "GPU")
	var gpuCross, fpgaCross, fpgaOvertakesGPU int
	for n := 1; n <= 8; n++ {
		totals := make([]units.Mass, 3)
		for i, c := range []*core.Compiled{asic, fpga, gpu} {
			totals[i], err = c.UniformTotal(n, isoperf.ReferenceLifetime(), isoperf.ReferenceVolume, 0)
			if err != nil {
				return nil, err
			}
		}
		asicT, fpgaT, gpuT := totals[0], totals[1], totals[2]
		t.AddRow(fmt.Sprintf("%d", n), kt(asicT), kt(fpgaT), kt(gpuT))
		if fpgaOvertakesGPU == 0 && fpgaT < gpuT {
			fpgaOvertakesGPU = n
		}
		if gpuCross == 0 && gpuT < asicT {
			gpuCross = n
		}
		if fpgaCross == 0 && fpgaT < asicT {
			fpgaCross = n
		}
	}
	notes := []string{
		fmt.Sprintf("FPGA A2F at %d applications; GPU A2F at %s", fpgaCross, crossLabel(gpuCross)),
		fmt.Sprintf("the GPU's lean silicon wins for very few applications, but its 5x power "+
			"lets the FPGA overtake it from %d applications on — the paper's §1 rationale for "+
			"preferring FPGAs over GPUs", fpgaOvertakesGPU),
	}
	return &Output{
		ID:     "gpu-extension",
		Title:  "Extension: GPUs as a third reusable platform",
		Tables: []*report.Table{t},
		Notes:  notes,
	}, nil
}

// crossLabel renders a crossover count or its absence.
func crossLabel(n int) string {
	if n == 0 {
		return "no crossover within 8 applications"
	}
	return fmt.Sprintf("%d applications", n)
}

// chipletAblation compares one monolithic FPGA die against the same
// silicon split into chiplets on a 2.5D interposer — the ECO-CHIP
// tradeoff (yield recovery vs interposer overhead) applied to the DNN
// FPGA.
func chipletAblation() (*Output, error) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		return nil, err
	}
	pr, err := d.Pair()
	if err != nil {
		return nil, err
	}
	fpgaNode := pr.FPGA.Spec.Node
	total := pr.FPGA.Spec.DieArea // 600 mm^2 of fabric

	t := report.NewTable("Chiplet ablation: DNN FPGA embodied carbon per device",
		"Construction", "Die yield", "Mfg [kg]", "Pkg [kg]", "Total [kg]")
	type variant struct {
		name  string
		dice  []units.Area
		style packaging.Style
	}
	variants := []variant{
		{"monolithic 600mm2", []units.Area{total}, packaging.Monolithic},
		{"2 chiplets on interposer", []units.Area{total.Scale(0.5), total.Scale(0.5)}, packaging.Interposer25D},
		{"4 chiplets on interposer", []units.Area{total.Scale(0.25), total.Scale(0.25), total.Scale(0.25), total.Scale(0.25)}, packaging.Interposer25D},
	}
	var results []float64
	for _, v := range variants {
		var mfg units.Mass
		var yieldOne float64
		for _, die := range v.dice {
			res, err := fab.PerDie(fab.Inputs{Node: fpgaNode, DieArea: die})
			if err != nil {
				return nil, err
			}
			mfg += res.Total()
			yieldOne = res.Yield
		}
		pkg, err := packaging.CFP(packaging.Inputs{Style: v.style, DieAreas: v.dice})
		if err != nil {
			return nil, err
		}
		sum := mfg + pkg.Total()
		results = append(results, sum.Kilograms())
		t.AddRow(v.name, fmt.Sprintf("%.3f", yieldOne),
			fmt.Sprintf("%.2f", mfg.Kilograms()),
			fmt.Sprintf("%.2f", pkg.Total().Kilograms()),
			fmt.Sprintf("%.2f", sum.Kilograms()))
	}
	note := "chiplet yield recovery does not repay the interposer overhead at this die size"
	if results[1] < results[0] || results[2] < results[0] {
		note = "splitting the fabric into chiplets lowers embodied carbon despite the interposer"
	}
	return &Output{
		ID:     "chiplet-ablation",
		Title:  "Extension: monolithic vs 2.5D-chiplet FPGA construction",
		Tables: []*report.Table{t},
		Notes:  []string{note},
	}, nil
}

// dseExperiment runs the carbon-aware design-space exploration on a
// DNN roadmap.
func dseExperiment() (*Output, error) {
	k, err := workload.ByName("resnet50-int8")
	if err != nil {
		return nil, err
	}
	s, err := workload.Roadmap(k, 4000, 1.5, 6, units.YearsOf(1.5), 2e4)
	if err != nil {
		return nil, err
	}
	res, err := dse.Explore(dse.Inputs{Apps: s.Apps, DutyCycle: 0.3})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Carbon-aware DSE: six-generation resnet50 roadmap, 20K units, duty 30%",
		"Rank", "Candidate", "Embodied [kt]", "Operational [kt]", "Total [kt]")
	for i, c := range res.Candidates {
		if i >= 10 {
			break
		}
		t.AddRow(fmt.Sprintf("%d", i+1), c.String(),
			fmt.Sprintf("%.3f", c.Embodied.Kilotonnes()),
			fmt.Sprintf("%.3f", c.Operational.Kilotonnes()),
			fmt.Sprintf("%.3f", c.Total.Kilotonnes()))
	}
	best := res.Best()
	bestASIC, _ := res.BestOfKind(device.ASIC)
	bestFPGA, _ := res.BestOfKind(device.FPGA)
	return &Output{
		ID:     "dse",
		Title:  "Extension: carbon-aware design-space exploration",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("optimum: %s", best),
			fmt.Sprintf("best ASIC option: %s | best FPGA option: %s", bestASIC, bestFPGA),
			"advanced nodes dominate per-gate on both embodied and operational carbon (density outruns per-area fab carbon)",
		},
	}, nil
}

// plannerExperiment optimizes a heterogeneous portfolio across a
// shared FPGA fleet and dedicated ASICs.
func plannerExperiment() (*Output, error) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		return nil, err
	}
	pr, err := d.Pair()
	if err != nil {
		return nil, err
	}
	apps := []core.Application{
		{Name: "research-prototype", Lifetime: units.YearsOf(0.5), Volume: 2e3},
		{Name: "pilot-deployment", Lifetime: units.YearsOf(1), Volume: 2e4},
		{Name: "regional-product", Lifetime: units.YearsOf(2), Volume: 2e5},
		{Name: "flagship-product", Lifetime: units.YearsOf(4), Volume: 3e6},
		{Name: "legacy-refresh", Lifetime: units.YearsOf(1), Volume: 5e4},
	}
	plan, err := planner.Optimize(planner.Inputs{FPGA: pr.FPGA, ASIC: pr.ASIC, Apps: apps})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fleet planner: per-application platform assignment (DNN pair)",
		"Application", "Platform", "Attributed CFP")
	for _, a := range plan.Assignments {
		t.AddRow(a.App, string(a.Platform), a.Cost.String())
	}
	t.AddRow("(shared fleet embodied)", "-", plan.FleetEmbodied.String())
	return &Output{
		ID:     "planner",
		Title:  "Extension: portfolio platform planning",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("optimal mix: %d of %d applications on the FPGA fleet (exact=%v)",
				plan.FPGAApps(), len(apps), plan.Exact),
			fmt.Sprintf("portfolio total %v vs all-ASIC %v and all-FPGA %v (saves %v)",
				plan.Total, plan.AllASIC, plan.AllFPGA, plan.Savings()),
		},
	}, nil
}

// multiFPGA demonstrates Eq. 3's device ganging: applications larger
// than one device's capacity take N_FPGA = ceil(size/capacity)
// devices, multiplying the fleet.
func multiFPGA() (*Output, error) {
	spec, err := device.ByName("IndustryFPGA2") // 30 Mgate capacity
	if err != nil {
		return nil, err
	}
	k, err := workload.ByName("resnet50-int8")
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Multi-FPGA ganging on IndustryFPGA2 (30 Mgate capacity)",
		"Target [GOPS]", "PEs", "App size [Mgates]", "N_FPGA", "Fleet for 10K units", "Fleet embodied")
	p := core.Platform{Spec: spec, DutyCycle: 0.3, DesignEngineers: 1230, DesignDuration: units.YearsOf(2)}
	dc, err := p.DeviceCost()
	if err != nil {
		return nil, err
	}
	var maxGang int
	for _, target := range []float64{10e3, 40e3, 80e3, 160e3} {
		demand, err := k.Demand(target)
		if err != nil {
			return nil, err
		}
		n, err := spec.Required(demand.Gates)
		if err != nil {
			return nil, err
		}
		if n > maxGang {
			maxGang = n
		}
		fleet := 1e4 * float64(n)
		t.AddRow(fmt.Sprintf("%.0f", target),
			fmt.Sprintf("%d", demand.ProcessingElements),
			fmt.Sprintf("%.1f", demand.Gates/1e6),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f devices", fleet),
			dc.Total().Scale(fleet).String())
	}
	return &Output{
		ID:     "multi-fpga",
		Title:  "Extension: N_FPGA device ganging for oversized applications",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("the largest target needs a %d-device gang per deployment unit", maxGang),
		},
	}, nil
}
