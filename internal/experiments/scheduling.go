package experiments

import (
	"fmt"

	"greenfpga/internal/deploy"
	"greenfpga/internal/device"
	"greenfpga/internal/grid"
	"greenfpga/internal/report"
	"greenfpga/internal/units"
)

func init() {
	register("carbon-scheduling", carbonScheduling)
}

// carbonScheduling quantifies carbon-aware scheduling: the same FPGA
// fleet and the same work, shifted across the grid's day. A flat
// duty-cycle model (the paper's C_op) cannot distinguish the
// schedules; the hourly model shows the midday (solar) window winning.
func carbonScheduling() (*Output, error) {
	spec, err := device.ByName("IndustryFPGA1")
	if err != nil {
		return nil, err
	}
	base := units.GramsPerKWh(440) // world-average-like grid
	const fleet = 50e3

	windows := []struct {
		name  string
		start int
	}{
		{"midday (10:00-18:00)", 10},
		{"morning (06:00-14:00)", 6},
		{"evening (14:00-22:00)", 14},
		{"night (22:00-06:00)", 22},
	}

	t := report.NewTable(
		"Carbon-aware scheduling: 50K-card fleet, 8 busy hours at 90% (idle 10%)",
		"Busy window", "Flat-model [kt/yr]", "No solar [kt/yr]", "30% solar dip [kt/yr]", "60% solar dip [kt/yr]")

	var bestName, worstName string
	var bestKg, worstKg float64
	for _, w := range windows {
		tp := deploy.TraceProfile{
			PeakPower: spec.PeakPower,
			Trace:     deploy.Diurnal(w.start, 8, 0.9, 0.1),
			PUE:       1.2,
		}
		flatCarbon, err := tp.AnnualCarbon() // uses the default world mix
		if err != nil {
			return nil, err
		}
		row := []string{w.name, fmt.Sprintf("%.1f", flatCarbon.Scale(fleet).Kilotonnes())}
		for _, dip := range []float64{0, 0.3, 0.6} {
			it, err := grid.SolarDay(base, dip)
			if err != nil {
				return nil, err
			}
			c, err := tp.AnnualCarbonOnGrid(it)
			if err != nil {
				return nil, err
			}
			fleetKg := c.Scale(fleet).Kilograms()
			row = append(row, fmt.Sprintf("%.1f", fleetKg/1e6))
			if dip == 0.6 {
				if bestName == "" || fleetKg < bestKg {
					bestName, bestKg = w.name, fleetKg
				}
				if worstName == "" || fleetKg > worstKg {
					worstName, worstKg = w.name, fleetKg
				}
			}
		}
		t.AddRow(row...)
	}

	saving := (worstKg - bestKg) / worstKg * 100
	return &Output{
		ID:     "carbon-scheduling",
		Title:  "Extension: carbon-aware scheduling on a solar-influenced grid",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("on a 60%%-solar-dip grid, the %s window emits %.0f%% less than the %s window",
				bestName, saving, worstName),
			"the flat duty-cycle model of the paper cannot distinguish the schedules; the hourly model can",
		},
	}, nil
}
