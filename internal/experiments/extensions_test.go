package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtensionExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"gpu-extension", "chiplet-ablation", "dse", "planner",
		"multi-fpga", "platform-frontier"} {
		if _, err := Run(id); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

// TestPlatformFrontierStory pins the four-way comparison headline: the
// ASIC wins one-shot deployments, the FPGA takes the frontier from its
// paper crossover, and the CPU never wins.
func TestPlatformFrontierStory(t *testing.T) {
	o, err := Run("platform-frontier")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Tables) != 3 {
		t.Fatalf("frontier should sweep N_app, lifetime and volume: %d tables", len(o.Tables))
	}
	apps := o.Tables[0]
	if len(apps.Rows) != 12 || len(apps.Columns) != 6 {
		t.Fatalf("N_app frontier shape: %d rows x %d cols", len(apps.Rows), len(apps.Columns))
	}
	winner := func(row []string) string { return row[len(row)-1] }
	if winner(apps.Rows[0]) != "DNN-ASIC" {
		t.Errorf("single application should favour the ASIC, got %s", winner(apps.Rows[0]))
	}
	if winner(apps.Rows[11]) != "DNN-FPGA" {
		t.Errorf("twelve applications should favour the FPGA, got %s", winner(apps.Rows[11]))
	}
	for _, row := range apps.Rows {
		if w := winner(row); w == "DNN-CPU" {
			t.Errorf("the CPU should never win the N_app frontier: %v", row)
		}
	}
	joined := strings.Join(o.Notes, "\n")
	if !strings.Contains(joined, "FPGA takes the frontier from N_app=6") {
		t.Errorf("frontier notes missing the FPGA takeover: %v", o.Notes)
	}
	if !strings.Contains(joined, "FPGA overtakes the GPU from 3 applications") {
		t.Errorf("frontier notes missing the GPU crossover: %v", o.Notes)
	}
}

func TestGPUExtensionStory(t *testing.T) {
	o, err := Run("gpu-extension")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(o.Notes, "\n")
	// The FPGA must reach its paper crossover; the 5x-power GPU wins
	// only while application counts stay tiny.
	if !strings.Contains(joined, "FPGA A2F at 6 applications") {
		t.Errorf("gpu-extension notes: %v", o.Notes)
	}
	if !strings.Contains(joined, "overtake it from 3 applications") {
		t.Errorf("gpu-extension should report the FPGA-over-GPU takeover: %v", o.Notes)
	}
	if len(o.Tables) == 0 || len(o.Tables[0].Rows) != 8 {
		t.Error("gpu-extension should tabulate 8 application counts")
	}
}

func TestChipletAblationHasThreeVariants(t *testing.T) {
	o, err := Run("chiplet-ablation")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Tables) == 0 || len(o.Tables[0].Rows) != 3 {
		t.Fatalf("chiplet table: %+v", o.Tables)
	}
	// Yield must improve with smaller chiplets (column 1 of rows).
	if o.Tables[0].Rows[0][1] >= o.Tables[0].Rows[2][1] {
		t.Errorf("4-chiplet yield %s should beat monolithic %s",
			o.Tables[0].Rows[2][1], o.Tables[0].Rows[0][1])
	}
}

func TestDSEExperimentRanksCandidates(t *testing.T) {
	o, err := Run("dse")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Tables) == 0 || len(o.Tables[0].Rows) != 10 {
		t.Fatalf("dse table should list the top 10: %+v", o.Tables)
	}
	if !strings.Contains(strings.Join(o.Notes, " "), "optimum:") {
		t.Errorf("dse notes: %v", o.Notes)
	}
}

func TestPlannerExperimentSplitsPortfolio(t *testing.T) {
	o, err := Run("planner")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(o.Notes, "\n")
	if !strings.Contains(joined, "optimal mix:") || !strings.Contains(joined, "saves") {
		t.Errorf("planner notes: %v", o.Notes)
	}
	// The flagship product must be on an ASIC; at least one prototype
	// on the fleet.
	var sawASIC, sawFPGA bool
	for _, row := range o.Tables[0].Rows {
		if row[0] == "flagship-product" && row[1] == "asic" {
			sawASIC = true
		}
		if row[0] == "research-prototype" && row[1] == "fpga" {
			sawFPGA = true
		}
	}
	if !sawASIC || !sawFPGA {
		t.Errorf("expected a mixed assignment: %+v", o.Tables[0].Rows)
	}
}

func TestFabSitingLever(t *testing.T) {
	o, err := Run("fab-siting")
	if err != nil {
		t.Fatal(err)
	}
	rows := o.Tables[0].Rows
	if len(rows) != 6 {
		t.Fatalf("siting rows: %d", len(rows))
	}
	byRegion := map[string][]string{}
	for _, r := range rows {
		byRegion[r[0]] = r
	}
	tw, is := byRegion["taiwan"], byRegion["iceland"]
	if tw == nil || is == nil {
		t.Fatalf("missing regions: %v", rows)
	}
	// A coal-heavy grid must cost more than a hydro grid, and PPAs must
	// monotonically reduce the footprint (string compare works: same
	// %.2f width within a row's magnitude).
	twNoPPA, err1 := strconv.ParseFloat(tw[2], 64)
	twPPA, err2 := strconv.ParseFloat(tw[4], 64)
	isNoPPA, err3 := strconv.ParseFloat(is[2], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatalf("unparseable cells: %v", tw)
	}
	if twNoPPA <= isNoPPA {
		t.Errorf("taiwan fab (%g) should exceed iceland fab (%g)", twNoPPA, isNoPPA)
	}
	if twPPA >= twNoPPA {
		t.Errorf("90%% PPA (%g) should cut the no-PPA footprint (%g)", twPPA, twNoPPA)
	}
	if !strings.Contains(strings.Join(o.Notes, " "), "gases and materials set the floor") {
		t.Errorf("siting notes: %v", o.Notes)
	}
}

func TestEq2SensitivityIsSmall(t *testing.T) {
	o, err := Run("eq2-sensitivity")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Tables) == 0 || len(o.Tables[0].Rows) != 3 {
		t.Fatalf("eq2 table: %+v", o.Tables)
	}
	if !strings.Contains(strings.Join(o.Notes, " "), "no crossover conclusion changes") {
		t.Errorf("eq2 notes: %v", o.Notes)
	}
	// The strict column must be >= the one-time column (lifetimes are
	// 2 years, so strict doubles the app-dev share).
	for _, r := range o.Tables[0].Rows {
		if r[1] > r[2] {
			t.Errorf("strict accounting should not reduce the total: %v", r)
		}
	}
}

func TestCarbonSchedulingPrefersSolarWindow(t *testing.T) {
	o, err := Run("carbon-scheduling")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(o.Notes, "\n")
	if !strings.Contains(joined, "midday (10:00-18:00) window emits") {
		t.Errorf("scheduling notes: %v", o.Notes)
	}
	if len(o.Tables) == 0 || len(o.Tables[0].Rows) != 4 {
		t.Fatalf("scheduling table: %+v", o.Tables)
	}
	// The flat-model column must be identical across windows.
	flat := o.Tables[0].Rows[0][1]
	for _, r := range o.Tables[0].Rows {
		if r[1] != flat {
			t.Errorf("flat model should be schedule-invariant: %v", o.Tables[0].Rows)
		}
	}
}

func TestMultiFPGAGangGrowsWithTarget(t *testing.T) {
	o, err := Run("multi-fpga")
	if err != nil {
		t.Fatal(err)
	}
	rows := o.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("multi-fpga rows: %d", len(rows))
	}
	// N_FPGA (column 3) must be non-decreasing and end above 1.
	last := 0
	for _, r := range rows {
		n, err := strconv.Atoi(r[3])
		if err != nil {
			t.Fatalf("bad N_FPGA cell %q", r[3])
		}
		if n < last {
			t.Errorf("gang shrank: %v", rows)
		}
		last = n
	}
	if last < 2 {
		t.Errorf("largest target should need a gang, got %d", last)
	}
}
