// Golden-artifact conformance corpus: every registered experiment's
// rendered text and canonical JSON are snapshotted under
// testdata/golden/ and diffed on every run, locking all paper
// artifacts against accidental numeric drift. After an intentional
// model change, regenerate with:
//
//	go test ./internal/experiments -run TestGoldenArtifacts -update
//
// and review the diff like any other code change.
package experiments_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greenfpga/api"
	"greenfpga/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite the golden artifact files")

// goldenPath locates one artifact snapshot.
func goldenPath(id, ext string) string {
	return filepath.Join("testdata", "golden", id+"."+ext)
}

// renderGolden produces the two snapshotted forms of one experiment:
// the rendered text artifact and the canonical JSON document served by
// GET /v1/experiments/{id}?format=json.
func renderGolden(t *testing.T, id string) (text, jsonDoc []byte) {
	t.Helper()
	out, err := experiments.Run(id)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var tb bytes.Buffer
	if err := out.Render(&tb); err != nil {
		t.Fatalf("render: %v", err)
	}
	res, err := api.Experiment(id)
	if err != nil {
		t.Fatalf("api: %v", err)
	}
	var jb bytes.Buffer
	if err := api.WriteJSON(&jb, res); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return tb.Bytes(), jb.Bytes()
}

// TestGoldenArtifacts diffs every registered experiment against its
// snapshots, regenerating them under -update.
func TestGoldenArtifacts(t *testing.T) {
	ids := experiments.List()
	if len(ids) == 0 {
		t.Fatal("empty experiment registry")
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			text, jsonDoc := renderGolden(t, id)
			for _, g := range []struct {
				ext string
				got []byte
			}{{"txt", text}, {"json", jsonDoc}} {
				path := goldenPath(id, g.ext)
				if *update {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, g.got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden %s (regenerate with -update): %v", path, err)
				}
				if !bytes.Equal(g.got, want) {
					t.Errorf("%s drifted from its golden snapshot (%d vs %d bytes).\n"+
						"If the change is intentional, regenerate with -update and review the diff.\n%s",
						path, len(g.got), len(want), firstDiff(g.got, want))
				}
			}
		})
	}
}

// TestGoldenCorpusComplete fails when a golden file has no registered
// experiment (a renamed or removed ID leaves a stale snapshot) or when
// a registered experiment has no snapshot yet.
func TestGoldenCorpusComplete(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	known := map[string]bool{}
	for _, id := range experiments.List() {
		known[id] = true
		for _, ext := range []string{"txt", "json"} {
			if _, err := os.Stat(goldenPath(id, ext)); err != nil {
				t.Errorf("experiment %q has no golden .%s (regenerate with -update)", id, ext)
			}
		}
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		id := strings.TrimSuffix(strings.TrimSuffix(e.Name(), ".txt"), ".json")
		if !known[id] {
			t.Errorf("stale golden file %s: no experiment %q is registered", e.Name(), id)
		}
	}
}

// firstDiff renders the first divergent line for readable failures.
func firstDiff(got, want []byte) string {
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("first diff at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("lengths diverge: got %d lines, want %d", len(gl), len(wl))
}
