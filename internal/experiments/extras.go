package experiments

import (
	"fmt"

	"greenfpga/internal/core"
	"greenfpga/internal/design"
	"greenfpga/internal/device"
	"greenfpga/internal/fab"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/report"
	"greenfpga/internal/units"
	"greenfpga/internal/yield"
)

func init() {
	register("scenarios", scenarios)
	register("design-ablation", designAblation)
	register("yield-ablation", yieldAblation)
	register("recycling-sweep", recyclingSweep)
	register("eq2-sensitivity", eq2Sensitivity)
}

// eq2Sensitivity checks the documented deviation from the paper's
// Eq. 2: we account application-development CFP once per application,
// while the literal formula scales it by the application lifetime.
// The experiment quantifies how little the choice matters — the paper
// itself observes app-dev CFP is "minimal".
func eq2Sensitivity() (*Output, error) {
	t := report.NewTable("Eq. 2 accounting sensitivity (N=5, T=2y, V=1e6)",
		"Domain", "FPGA one-time [kt]", "FPGA strict [kt]", "Delta", "Ratio shift")
	var maxShift float64
	for _, d := range isoperf.Domains() {
		cp, err := compiledDomainPair(d.Name)
		if err != nil {
			return nil, err
		}
		loose := core.Uniform("loose", isoperf.ReferenceNumApps,
			isoperf.ReferenceLifetime(), isoperf.ReferenceVolume, 0)
		strict := loose
		strict.StrictEq2 = true
		cl, err := cp.Compare(loose)
		if err != nil {
			return nil, err
		}
		cs, err := cp.Compare(strict)
		if err != nil {
			return nil, err
		}
		delta := cs.FPGA.Total() - cl.FPGA.Total()
		shift := cs.Ratio - cl.Ratio
		if s := shift; s > maxShift {
			maxShift = s
		}
		t.AddRow(d.Name,
			fmt.Sprintf("%.2f", cl.FPGA.Total().Kilotonnes()),
			fmt.Sprintf("%.2f", cs.FPGA.Total().Kilotonnes()),
			delta.String(),
			fmt.Sprintf("%+.4f", shift))
	}
	return &Output{
		ID:     "eq2-sensitivity",
		Title:  "Sensitivity of the Eq. 2 app-dev accounting choice (see DESIGN.md)",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("the literal-Eq.2 accounting moves the FPGA:ASIC ratio by at most %+.4f — "+
				"no crossover conclusion changes", maxShift),
		},
	}, nil
}

// scenarios reproduces contribution (5): the three quantified settings
// in which FPGAs beat ASICs, solved directly with the crossover
// machinery.
func scenarios() (*Output, error) {
	t := report.NewTable("Contribution (5): when are FPGAs the sustainable choice?",
		"Domain", "A2F @ N_app (T=2y,V=1e6)", "F2A @ T_i (N=5,V=1e6)", "F2A @ N_vol (N=5,T=2y)")
	var notes []string
	for _, d := range isoperf.Domains() {
		// One compile serves all three solvers.
		cp, err := compiledDomainPair(d.Name)
		if err != nil {
			return nil, err
		}
		n, nFound, err := cp.CrossoverNumApps(isoperf.ReferenceLifetime(), isoperf.ReferenceVolume, 0, 20)
		if err != nil {
			return nil, err
		}
		tstar, tFound, err := cp.CrossoverLifetime(isoperf.ReferenceNumApps, isoperf.ReferenceVolume, 0,
			units.YearsOf(0.05), units.YearsOf(5))
		if err != nil {
			return nil, err
		}
		vstar, vFound, err := cp.CrossoverVolume(isoperf.ReferenceNumApps, isoperf.ReferenceLifetime(), 0,
			1e3, 1e7)
		if err != nil {
			return nil, err
		}
		cell := func(found bool, s string) string {
			if !found {
				return "none"
			}
			return s
		}
		t.AddRow(d.Name,
			cell(nFound, fmt.Sprintf("%d apps", n)),
			cell(tFound, fmt.Sprintf("%.2f years", tstar.Years())),
			cell(vFound, fmt.Sprintf("%.0f units", vstar)))
		if d.Name == "DNN" {
			notes = append(notes,
				fmt.Sprintf("DNN: FPGAs win below %.2f-year application lifetimes (paper: 1.6)", tstar.Years()),
				fmt.Sprintf("DNN: FPGAs win beyond %d applications (paper: >5)", n-1),
				fmt.Sprintf("DNN: FPGAs win below %.0fK units (paper extrapolates 2M; see EXPERIMENTS.md)", vstar/1e3))
		}
	}
	return &Output{
		ID:     "scenarios",
		Title:  "Headline crossover scenarios (paper contribution 5)",
		Tables: []*report.Table{t},
		Notes:  notes,
	}, nil
}

// designAblation reproduces contribution (2): the energy-based design
// model of Eq. 4 versus the gates-only prior-art model of [5], which
// the paper found to grossly underestimate design CFP.
func designAblation() (*Output, error) {
	t := report.NewTable("Design-model ablation: Eq. 4 vs gates-only prior art [5]",
		"Device", "Gates", "Eq. 4 C_des [t]", "Legacy C_des [t]", "Underestimate")
	var maxRatio float64
	for _, spec := range device.Catalog() {
		p, err := IndustryPlatform(spec.Name)
		if err != nil {
			return nil, err
		}
		modern, err := p.DesignCFP()
		if err != nil {
			return nil, err
		}
		legacy, err := design.LegacyGateModel{}.CFP(spec.SiliconGates())
		if err != nil {
			return nil, err
		}
		ratio := modern.Kilograms() / legacy.Kilograms()
		if ratio > maxRatio {
			maxRatio = ratio
		}
		t.AddRow(spec.Name, fmt.Sprintf("%.2fB", spec.SiliconGates()/1e9),
			fmt.Sprintf("%.0f", modern.Tonnes()), fmt.Sprintf("%.0f", legacy.Tonnes()),
			fmt.Sprintf("%.1fx", ratio))
	}
	return &Output{
		ID:     "design-ablation",
		Title:  "Design CFP model comparison (paper contribution 2)",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("the gates-only model underestimates design CFP by up to %.0fx "+
				"for staffed multi-year projects", maxRatio),
		},
	}, nil
}

// yieldAblation quantifies the yield-model choice on embodied carbon
// for the largest industry die.
func yieldAblation() (*Output, error) {
	spec, err := device.ByName("IndustryASIC2")
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Yield-model ablation (IndustryASIC2, 600mm2 at 7nm)",
		"Model", "Die yield", "C_mfg per die [kg]")
	for _, m := range yield.Models() {
		res, err := fab.PerDie(fab.Inputs{
			Node:    spec.Node,
			DieArea: spec.DieArea,
			Yield: yield.Calculator{
				Model:          m,
				DefectDensity:  spec.Node.DefectDensity,
				CriticalLayers: spec.Node.CriticalLayers,
			},
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(string(m), fmt.Sprintf("%.3f", res.Yield),
			fmt.Sprintf("%.2f", res.Total().Kilograms()))
	}
	return &Output{
		ID:     "yield-ablation",
		Title:  "Yield-model sensitivity of manufacturing CFP",
		Tables: []*report.Table{t},
		Notes: []string{
			"Murphy (the default) sits between Poisson and Seeds; the spread bounds the yield-model error",
		},
	}, nil
}

// recyclingSweep exercises Eq. 5 (recycled-material sourcing) and
// Eq. 6 (end-of-life recycling) across their 0..1 ranges.
func recyclingSweep() (*Output, error) {
	pr, err := domainPair("DNN")
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Recycling knobs: FPGA embodied CFP (DNN fleet, 1e6 devices) [ktCO2e]",
		"rho (materials)", "delta=0", "delta=0.25", "delta=0.5", "delta=1.0")
	s := core.Uniform("rec", 1, isoperf.ReferenceLifetime(), isoperf.ReferenceVolume, 0)
	for _, rho := range []float64{0, 0.25, 0.5, 1} {
		row := []string{fmt.Sprintf("%.2f", rho)}
		for _, delta := range []float64{0, 0.25, 0.5, 1} {
			p := pr.FPGA
			p.RecycledMaterialFraction = rho
			p.EOL.RecycleFraction = delta
			p.EOL.DisableRecycling = delta == 0
			res, err := core.Evaluate(p, s)
			if err != nil {
				return nil, err
			}
			row = append(row, kt(res.Breakdown.Embodied()))
		}
		t.AddRow(row...)
	}
	return &Output{
		ID:     "recycling-sweep",
		Title:  "Recycled sourcing (Eq. 5) and EOL recycling (Eq. 6) sweep",
		Tables: []*report.Table{t},
		Notes: []string{
			"embodied CFP falls monotonically with both recycling fractions",
		},
	}, nil
}
