package experiments

import (
	"fmt"

	"greenfpga/internal/core"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/report"
	"greenfpga/internal/units"
)

func init() {
	register("timeline-staggered", timelineStaggered)
}

// Timeline-staggered settings: the Fig. 4 DNN scenario (2-year apps,
// 1e6 units) under a refresh cap tight enough to bite near the paper's
// A2F point, with arrivals every six months instead of strictly back
// to back.
const (
	timelineChipLifetimeYears = 8
	timelineIntervalYears     = 0.5
	timelineMaxApps           = 12
)

// timelineStaggered contrasts the paper's sequential-deployment
// assumption with a staggered-arrival timeline. Eqs. 1–3 implicitly
// serialize the N applications, so the FPGA fleet ages by the sum of
// application lifetimes; real fleets overlap arrivals, compressing the
// wall-clock span the hardware must survive. Under a refresh cap the
// difference is a whole fleet rebuild: sequential accounting forces a
// second FPGA generation from the fifth 2-year application
// (span 10y > 8y), while half-year staggered arrivals stay within one
// chip lifetime through twelve applications — flipping the Fig. 4 A2F
// crossover back to the uncapped point.
func timelineStaggered() (*Output, error) {
	d, err := isoperf.ByName("DNN")
	if err != nil {
		return nil, err
	}
	pr, err := d.Pair()
	if err != nil {
		return nil, err
	}
	pr.FPGA.ChipLifetime = units.YearsOf(timelineChipLifetimeYears)
	pr.ASIC.ChipLifetime = units.YearsOf(timelineChipLifetimeYears)
	cp, err := pr.Compile()
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		fmt.Sprintf("DNN totals vs N_app with an %d-year refresh cap (T=2y, V=1e6) [ktCO2e]",
			timelineChipLifetimeYears),
		"N_app", "ASIC", "FPGA sequential", "gens", "FPGA staggered 0.5y", "gens")
	var seqCross, stagCross int
	for n := 1; n <= timelineMaxApps; n++ {
		uniform := core.Uniform("t", n, isoperf.ReferenceLifetime(), isoperf.ReferenceVolume, 0)
		asic, err := cp.ASIC.EvaluateSchedule(core.Sequential(uniform))
		if err != nil {
			return nil, err
		}
		seq, err := cp.FPGA.EvaluateSchedule(core.Sequential(uniform))
		if err != nil {
			return nil, err
		}
		stag, err := cp.FPGA.EvaluateSchedule(core.Staggered("t", n,
			units.YearsOf(timelineIntervalYears), isoperf.ReferenceLifetime(),
			isoperf.ReferenceVolume, 0))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), kt(asic.Total()),
			kt(seq.Total()), fmt.Sprintf("%d", seq.HardwareGenerations),
			kt(stag.Total()), fmt.Sprintf("%d", stag.HardwareGenerations))
		if seqCross == 0 && seq.Total() < asic.Total() {
			seqCross = n
		}
		if stagCross == 0 && stag.Total() < asic.Total() {
			stagCross = n
		}
	}
	notes := []string{
		fmt.Sprintf("sequential accounting (the paper's Eqs. 1-2 reading): A2F at %s under the %d-year refresh cap",
			crossLabelN(seqCross), timelineChipLifetimeYears),
		fmt.Sprintf("staggered arrivals every %gy: A2F at %s — overlap compresses the wall-clock span below one chip lifetime, saving a whole fleet rebuild",
			timelineIntervalYears, crossLabelN(stagCross)),
	}
	return &Output{
		ID:     "timeline-staggered",
		Title:  "Extension: staggered deployment timelines vs the sequential assumption",
		Tables: []*report.Table{t},
		Notes:  notes,
	}, nil
}

// crossLabelN renders an A2F application count or its absence.
func crossLabelN(n int) string {
	if n == 0 {
		return fmt.Sprintf("no crossover within %d applications", timelineMaxApps)
	}
	return fmt.Sprintf("%d applications", n)
}
