package experiments

import (
	"fmt"

	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/grid"
	"greenfpga/internal/report"
)

func init() {
	register("fab-siting", fabSiting)
}

// fabSiting quantifies the embodied-carbon lever the fab's energy
// sourcing provides: the same device manufactured on different
// regional grids, with and without renewable power-purchase
// agreements. Process gases and materials are location-independent, so
// the lever only moves the fab-electricity share — exactly the split
// the manufacturing model exposes.
func fabSiting() (*Output, error) {
	spec, err := device.ByName("IndustryFPGA2")
	if err != nil {
		return nil, err
	}
	regions := []grid.Region{
		grid.RegionTaiwan, grid.RegionKorea, grid.RegionJapan,
		grid.RegionUSA, grid.RegionEurope, grid.RegionIceland,
	}
	t := report.NewTable(
		fmt.Sprintf("Fab siting: %s (%s, %s) embodied carbon per device [kg]",
			spec.Name, spec.Node.Name, spec.DieArea),
		"Fab region", "Grid CI", "No PPA", "50% renewable", "90% renewable")
	var worst, best float64
	for _, r := range regions {
		mix, err := grid.ByRegion(r)
		if err != nil {
			return nil, err
		}
		ci, err := mix.Intensity()
		if err != nil {
			return nil, err
		}
		row := []string{string(r), ci.String()}
		for _, target := range []float64{0, 0.5, 0.9} {
			p := core.Platform{Spec: spec, FabMix: mix, FabRenewableTarget: target}
			dc, err := p.DeviceCost()
			if err != nil {
				return nil, err
			}
			total := dc.Manufacturing.Total() + dc.Packaging.Total()
			kg := total.Kilograms()
			row = append(row, fmt.Sprintf("%.2f", kg))
			if worst == 0 || kg > worst {
				worst = kg
			}
			if best == 0 || kg < best {
				best = kg
			}
		}
		t.AddRow(row...)
	}
	return &Output{
		ID:     "fab-siting",
		Title:  "Extension: fab grid siting and renewable PPAs",
		Tables: []*report.Table{t},
		Notes: []string{
			fmt.Sprintf("fab energy sourcing moves per-device embodied carbon by %.1fx "+
				"(%.2f to %.2f kg); gases and materials set the floor", worst/best, worst, best),
		},
	}, nil
}
