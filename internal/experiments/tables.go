package experiments

import (
	"fmt"

	"greenfpga/internal/deploy"
	"greenfpga/internal/design"
	"greenfpga/internal/device"
	"greenfpga/internal/eol"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/report"
)

func init() {
	register("table1", table1)
	register("table2", table2)
	register("table3", table3)
}

// table1 reproduces Table 1: the input-parameter ranges of the tool,
// annotated with the defaults this implementation ships.
func table1() (*Output, error) {
	t := report.NewTable("Table 1: input parameter ranges to GreenFPGA",
		"Model", "Parameter", "Range", "Unit", "Default", "Source")
	t.AddRow("C_materials", "rho (recycled fraction)", "0 - 1", "-", "0", "Apple recycling report / user")
	t.AddRow("C_EOL", "delta (recycle split)", "0 - 1", "-",
		fmt.Sprintf("%.2f", eol.DefaultRecycleFraction), "EPA WARM")
	t.AddRow("C_EOL", "C_recycle", fmt.Sprintf("%.2f - %.2f", eol.MinRecycleRate, eol.MaxRecycleRate),
		"MTCO2E/ton", fmt.Sprintf("%.2f", eol.DefaultRecycleRate), "EPA WARM")
	t.AddRow("C_EOL", "C_dis", fmt.Sprintf("%.2f - %.2f", eol.MinDiscardRate, eol.MaxDiscardRate),
		"MTCO2E/ton", fmt.Sprintf("%.2f", eol.DefaultDiscardRate), "EPA WARM")
	t.AddRow("C_app-dev", "T_app,FE", "1.5 - 2.5", "months",
		fmt.Sprintf("%.1f", deploy.DefaultFPGAAppDev.FrontEnd.Months()), "user-defined")
	t.AddRow("C_app-dev", "T_app,BE", "0.5 - 1.5", "months",
		fmt.Sprintf("%.1f", deploy.DefaultFPGAAppDev.BackEnd.Months()), "user-defined")
	t.AddRow("C_des", "E_des", "2 - 7.3", "GWh",
		fmt.Sprintf("%.1f", design.DefaultOrg.AnnualEnergy.GWh()), "Microchip/NVIDIA/AMD reports")
	t.AddRow("C_des", "C_src,des", "30 - 700", "gCO2/kWh", "US grid (~367)", "ACT / PPACE")
	t.AddRow("C_des", "N_emp,des", "20K - 160K", "employees",
		fmt.Sprintf("%d (org) / %d (project)", design.DefaultOrg.Employees, 300), "sustainability reports")
	t.AddRow("C_des", "T_proj", "1 - 3", "years", "2", "NVIDIA roadmap cadence")

	return &Output{
		ID:     "table1",
		Title:  "Input parameter ranges (paper Table 1)",
		Tables: []*report.Table{t},
		Notes: []string{
			"every range is a user-tunable knob; defaults sit inside the paper's bands",
		},
	}, nil
}

// table2 reproduces Table 2: iso-performance area and power ratios.
func table2() (*Output, error) {
	t := report.NewTable("Table 2: FPGA testcases for iso-performance with ASIC [12]",
		"Testcase", "DNN", "ImgProc", "Crypto")
	byName := map[string]isoperf.Domain{}
	for _, d := range isoperf.Domains() {
		byName[d.Name] = d
	}
	t.AddRow("Area (normalized to ASIC)",
		fmt.Sprintf("%g", byName["DNN"].AreaRatio),
		fmt.Sprintf("%g", byName["ImgProc"].AreaRatio),
		fmt.Sprintf("%g", byName["Crypto"].AreaRatio))
	t.AddRow("Power (normalized to ASIC)",
		fmt.Sprintf("%g", byName["DNN"].PowerRatio),
		fmt.Sprintf("%g", byName["ImgProc"].PowerRatio),
		fmt.Sprintf("%g", byName["Crypto"].PowerRatio))

	cal := report.NewTable("Calibrated ASIC reference testcases (10nm)",
		"Domain", "ASIC area", "ASIC power", "Duty", "Design staff")
	for _, d := range isoperf.Domains() {
		cal.AddRow(d.Name, d.ASICArea.String(), d.ASICPeakPower.String(),
			fmt.Sprintf("%.0f%%", d.DutyCycle*100), fmt.Sprintf("%.0f", d.DesignEngineers))
	}
	return &Output{
		ID:     "table2",
		Title:  "Iso-performance testcases (paper Table 2)",
		Tables: []*report.Table{t, cal},
	}, nil
}

// table3 reproduces Table 3: the industry testcases.
func table3() (*Output, error) {
	t := report.NewTable("Table 3: summary of industry testcases",
		"Testcase", "Kind", "Area", "Power", "Tech. node", "Based on")
	for _, s := range device.Catalog() {
		t.AddRow(s.Name, string(s.Kind), s.DieArea.String(), s.PeakPower.String(),
			s.Node.Name, s.BasedOn)
	}
	return &Output{
		ID:     "table3",
		Title:  "Industry testcases (paper Table 3)",
		Tables: []*report.Table{t},
	}, nil
}
