package experiments

import (
	"fmt"
	"strings"

	"greenfpga/internal/core"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/report"
	"greenfpga/internal/sweep"
	"greenfpga/internal/units"
)

func init() {
	register("fig2", fig2)
	register("fig4", fig4)
	register("fig5", fig5)
	register("fig6", fig6)
	register("fig7", fig7)
}

// fig2 reproduces Fig. 2: ASIC vs FPGA total CFP for a single DNN
// application and for ten applications.
func fig2() (*Output, error) {
	pr, err := domainPair("DNN")
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 2: CFP of ASIC vs FPGA computing (DNN, T=2y, V=1e6)",
		"Scenario", "FPGA [ktCO2e]", "ASIC [ktCO2e]", "FPGA:ASIC")
	var bars []report.StackedBar
	var notes []string
	for _, n := range []int{1, 10} {
		c, err := pr.Compare(core.Uniform("fig2", n, isoperf.ReferenceLifetime(), isoperf.ReferenceVolume, 0))
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d application(s)", n)
		t.AddRow(label, kt(c.FPGA.Total()), kt(c.ASIC.Total()), fmt.Sprintf("%.3f", c.Ratio))
		bars = append(bars,
			report.StackedBar{Label: fmt.Sprintf("FPGA %danc", n), Segments: []report.Segment{
				{Name: "embodied", Value: c.FPGA.Breakdown.Embodied().Kilotonnes()},
				{Name: "operational", Value: c.FPGA.Breakdown.Deployment().Kilotonnes()},
			}},
			report.StackedBar{Label: fmt.Sprintf("ASIC %danc", n), Segments: []report.Segment{
				{Name: "embodied", Value: c.ASIC.Breakdown.Embodied().Kilotonnes()},
				{Name: "operational", Value: c.ASIC.Breakdown.Deployment().Kilotonnes()},
			}},
		)
		if n == 10 {
			notes = append(notes, fmt.Sprintf(
				"ten applications make the FPGA %.0f%% lower-CFP than the ASIC (paper: ~25%%)",
				(1-c.Ratio)*100))
		} else {
			notes = append(notes, fmt.Sprintf(
				"a single application leaves the FPGA %.1fx the ASIC CFP", c.Ratio))
		}
	}
	for i := range bars {
		bars[i].Label = strings.ReplaceAll(bars[i].Label, "anc", " apps")
	}
	var chart strings.Builder
	if err := report.StackedBarChart(&chart, "Fig. 2 (DNN domain)", "ktCO2e", bars, 50); err != nil {
		return nil, err
	}
	return &Output{
		ID:     "fig2",
		Title:  "ASIC vs FPGA CFP, one vs ten applications (paper Fig. 2)",
		Tables: []*report.Table{t},
		Charts: []string{chart.String()},
		Notes:  notes,
	}, nil
}

// domainSweep1D runs one of the Figs. 4-6 sweeps for every domain.
func domainSweep1D(axisName string, axis sweep.Axis, n int, tYears, volume float64) (
	map[string][]sweep.Point1D, error) {
	out := make(map[string][]sweep.Point1D, 3)
	for _, d := range isoperf.Domains() {
		cp, err := compiledDomainPair(d.Name)
		if err != nil {
			return nil, err
		}
		eval := uniformEval(cp, n, tYears, volume)
		pts, err := sweep.Run1D(axis, func(x float64) (units.Mass, units.Mass, error) {
			return eval(axisName, x)
		})
		if err != nil {
			return nil, err
		}
		out[d.Name] = pts
	}
	return out, nil
}

// sweepTable tabulates a per-domain sweep.
func sweepTable(title, xHeader string, axis sweep.Axis, byDomain map[string][]sweep.Point1D, xFmt string) *report.Table {
	t := report.NewTable(title, xHeader,
		"DNN FPGA", "DNN ASIC", "ImgProc FPGA", "ImgProc ASIC", "Crypto FPGA", "Crypto ASIC")
	for i := range axis.Values {
		row := []string{fmt.Sprintf(xFmt, axis.Values[i])}
		for _, dom := range []string{"DNN", "ImgProc", "Crypto"} {
			p := byDomain[dom][i]
			row = append(row, kt(p.FPGA), kt(p.ASIC))
		}
		t.AddRow(row...)
	}
	return t
}

// sweepCharts renders one ratio chart per domain.
func sweepCharts(titlePrefix, xLabel string, logX bool, byDomain map[string][]sweep.Point1D) ([]string, error) {
	var charts []string
	for _, dom := range []string{"DNN", "ImgProc", "Crypto"} {
		pts := byDomain[dom]
		xs := make([]float64, len(pts))
		fy := make([]float64, len(pts))
		ay := make([]float64, len(pts))
		for i, p := range pts {
			xs[i] = p.X
			fy[i] = p.FPGA.Kilotonnes()
			ay[i] = p.ASIC.Kilotonnes()
		}
		var sb strings.Builder
		err := report.LineChart(&sb, report.ChartOptions{
			Title:  fmt.Sprintf("%s - %s domain", titlePrefix, dom),
			XLabel: xLabel, YLabel: "total CFP [ktCO2e]", LogX: logX,
		},
			report.Series{Name: "FPGA", X: xs, Y: fy},
			report.Series{Name: "ASIC", X: xs, Y: ay})
		if err != nil {
			return nil, err
		}
		charts = append(charts, sb.String())
	}
	return charts, nil
}

// crossoverNotes summarizes where each domain's sweep crosses ratio 1.
func crossoverNotes(byDomain map[string][]sweep.Point1D, describe func(x float64) string) []string {
	var notes []string
	for _, dom := range []string{"DNN", "ImgProc", "Crypto"} {
		pts := byDomain[dom]
		found := false
		for i := 0; i+1 < len(pts); i++ {
			if (pts[i].Ratio-1)*(pts[i+1].Ratio-1) < 0 {
				// Linear interpolation for the report note.
				t := (1 - pts[i].Ratio) / (pts[i+1].Ratio - pts[i].Ratio)
				x := pts[i].X + t*(pts[i+1].X-pts[i].X)
				kind := "A2F"
				if pts[i].Ratio < 1 {
					kind = "F2A"
				}
				notes = append(notes, fmt.Sprintf("%s: %s crossover at %s", dom, kind, describe(x)))
				found = true
			}
		}
		if !found {
			winner := "FPGA"
			if pts[0].Ratio > 1 {
				winner = "ASIC"
			}
			notes = append(notes, fmt.Sprintf("%s: no crossover; %s is always the lower-CFP platform", dom, winner))
		}
	}
	return notes
}

// fig4 reproduces Fig. 4: CFP versus the number of applications.
func fig4() (*Output, error) {
	axis := sweep.Axis{Name: "Num Apps", Values: sweep.IntRange(1, 12)}
	byDomain, err := domainSweep1D("n", axis, 0, 2, isoperf.ReferenceVolume)
	if err != nil {
		return nil, err
	}
	charts, err := sweepCharts("Fig. 4: CFP vs Num Apps (T=2y, V=1e6)", "N_app", false, byDomain)
	if err != nil {
		return nil, err
	}
	return &Output{
		ID:     "fig4",
		Title:  "Impact of number of applications (paper Fig. 4)",
		Tables: []*report.Table{sweepTable("Fig. 4 data [ktCO2e]", "N_app", axis, byDomain, "%.0f")},
		Charts: charts,
		Notes: crossoverNotes(byDomain, func(x float64) string {
			return fmt.Sprintf("%.1f applications", x)
		}),
	}, nil
}

// fig5 reproduces Fig. 5: CFP versus application lifetime.
func fig5() (*Output, error) {
	axis := sweep.Axis{Name: "App Lifetime", Values: sweep.Linspace(0.2, 2.5, 24)}
	byDomain, err := domainSweep1D("t", axis, isoperf.ReferenceNumApps, 0, isoperf.ReferenceVolume)
	if err != nil {
		return nil, err
	}
	charts, err := sweepCharts("Fig. 5: CFP vs App Lifetime (N=5, V=1e6)", "T_i [years]", false, byDomain)
	if err != nil {
		return nil, err
	}
	return &Output{
		ID:     "fig5",
		Title:  "Impact of application lifetime (paper Fig. 5)",
		Tables: []*report.Table{sweepTable("Fig. 5 data [ktCO2e]", "T_i [y]", axis, byDomain, "%.2f")},
		Charts: charts,
		Notes: crossoverNotes(byDomain, func(x float64) string {
			return fmt.Sprintf("%.2f years", x)
		}),
	}, nil
}

// fig6 reproduces Fig. 6: CFP versus application volume.
func fig6() (*Output, error) {
	axis := sweep.Axis{Name: "App Volume", Values: sweep.Logspace(1e3, 1e6, 13), Log: true}
	byDomain, err := domainSweep1D("v", axis, isoperf.ReferenceNumApps, 2, 0)
	if err != nil {
		return nil, err
	}
	charts, err := sweepCharts("Fig. 6: CFP vs App Volume (N=5, T=2y)", "N_vol", true, byDomain)
	if err != nil {
		return nil, err
	}
	return &Output{
		ID:     "fig6",
		Title:  "Impact of application volume (paper Fig. 6)",
		Tables: []*report.Table{sweepTable("Fig. 6 data [ktCO2e]", "N_vol", axis, byDomain, "%.3g")},
		Charts: charts,
		Notes: crossoverNotes(byDomain, func(x float64) string {
			return fmt.Sprintf("%.0f units", x)
		}),
	}, nil
}

// fig7 reproduces Fig. 7: the embodied/operational breakdown for the
// DNN domain across the three sweeps.
func fig7() (*Output, error) {
	pr, err := domainPair("DNN")
	if err != nil {
		return nil, err
	}
	type panel struct {
		name   string
		labels []string
		make   func(i int) core.Scenario
	}
	ref := isoperf.ReferenceLifetime()
	panels := []panel{
		{
			name:   "(a) varying N_app (T=2y, V=1e6)",
			labels: []string{"N=1", "N=3", "N=5", "N=7"},
			make: func(i int) core.Scenario {
				return core.Uniform("a", []int{1, 3, 5, 7}[i], ref, isoperf.ReferenceVolume, 0)
			},
		},
		{
			name:   "(b) varying T_i (N=5, V=1e6)",
			labels: []string{"T=0.5y", "T=1y", "T=2y", "T=2.5y"},
			make: func(i int) core.Scenario {
				t := []float64{0.5, 1, 2, 2.5}[i]
				return core.Uniform("b", 5, units.YearsOf(t), isoperf.ReferenceVolume, 0)
			},
		},
		{
			name:   "(c) varying N_vol (N=5, T=2y)",
			labels: []string{"V=1e3", "V=1e4", "V=1e5", "V=1e6"},
			make: func(i int) core.Scenario {
				return core.Uniform("c", 5, ref, []float64{1e3, 1e4, 1e5, 1e6}[i], 0)
			},
		},
	}

	var charts []string
	var tables []*report.Table
	for _, p := range panels {
		tbl := report.NewTable("Fig. 7 "+p.name+" [ktCO2e]",
			"Point", "FPGA EC", "FPGA OC", "ASIC EC", "ASIC OC")
		var bars []report.StackedBar
		for i, label := range p.labels {
			c, err := pr.Compare(p.make(i))
			if err != nil {
				return nil, err
			}
			tbl.AddRow(label,
				kt(c.FPGA.Breakdown.Embodied()), kt(c.FPGA.Breakdown.Deployment()),
				kt(c.ASIC.Breakdown.Embodied()), kt(c.ASIC.Breakdown.Deployment()))
			bars = append(bars,
				report.StackedBar{Label: label + " FPGA", Segments: []report.Segment{
					{Name: "EC", Value: c.FPGA.Breakdown.Embodied().Kilotonnes()},
					{Name: "OC", Value: c.FPGA.Breakdown.Deployment().Kilotonnes()},
				}},
				report.StackedBar{Label: label + " ASIC", Segments: []report.Segment{
					{Name: "EC", Value: c.ASIC.Breakdown.Embodied().Kilotonnes()},
					{Name: "OC", Value: c.ASIC.Breakdown.Deployment().Kilotonnes()},
				}})
		}
		tables = append(tables, tbl)
		var sb strings.Builder
		if err := report.StackedBarChart(&sb, "Fig. 7 "+p.name, "ktCO2e", bars, 46); err != nil {
			return nil, err
		}
		charts = append(charts, sb.String())
	}
	return &Output{
		ID:     "fig7",
		Title:  "DNN-domain CFP component breakdown (paper Fig. 7)",
		Tables: tables,
		Charts: charts,
		Notes: []string{
			"ASIC embodied carbon grows with N_app (new chips per application) and dominates",
			"FPGA embodied carbon is flat in N_app; operational carbon grows with lifetime",
			"at low volume, embodied carbon dominates both platforms",
		},
	}, nil
}
