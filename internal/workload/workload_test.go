package workload

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/units"
)

func TestLibraryCoversAllDomains(t *testing.T) {
	lib := Library()
	if len(lib) < 9 {
		t.Fatalf("library too small: %d kernels", len(lib))
	}
	byDomain := map[string]int{}
	for _, k := range lib {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
		byDomain[k.Domain]++
	}
	for _, dom := range []string{"DNN", "ImgProc", "Crypto"} {
		if byDomain[dom] < 3 {
			t.Errorf("domain %s has %d kernels, want >= 3", dom, byDomain[dom])
		}
	}
	// Sorted by domain then name.
	for i := 1; i < len(lib); i++ {
		a, b := lib[i-1], lib[i]
		if a.Domain > b.Domain || (a.Domain == b.Domain && a.Name > b.Name) {
			t.Fatalf("library unsorted at %d: %s/%s after %s/%s", i, b.Domain, b.Name, a.Domain, a.Name)
		}
	}
}

func TestByNameAndDomain(t *testing.T) {
	k, err := ByName("aes256-gcm")
	if err != nil {
		t.Fatal(err)
	}
	if k.Domain != "Crypto" || k.Unit != "Gbps" {
		t.Errorf("aes kernel: %+v", k)
	}
	if _, err := ByName("quantum-fft"); err == nil {
		t.Error("unknown kernel must error")
	}
	dnn := ByDomain("DNN")
	if len(dnn) != 3 {
		t.Errorf("DNN kernels: %d", len(dnn))
	}
	if len(ByDomain("HFT")) != 0 {
		t.Error("unknown domain should be empty")
	}
}

func TestDemandReplication(t *testing.T) {
	k, _ := ByName("resnet50-int8") // 1.6 Mgates, 2000 GOPS per PE
	d, err := k.Demand(5000)        // needs ceil(2.5) = 3 PEs
	if err != nil {
		t.Fatal(err)
	}
	if d.ProcessingElements != 3 {
		t.Errorf("PEs = %d, want 3", d.ProcessingElements)
	}
	if d.Gates != 3*1.6e6 {
		t.Errorf("gates = %g", d.Gates)
	}
	if d.Throughput != 6000 {
		t.Errorf("delivered throughput = %g, want 6000", d.Throughput)
	}
	wantPower := 3 * 1.6 * 0.55 // MGates x W/MGate
	if math.Abs(d.PeakPower.Watts()-wantPower) > 1e-9 {
		t.Errorf("power = %v, want %g W", d.PeakPower, wantPower)
	}
	// Exact-fit target uses exactly that many PEs.
	d2, _ := k.Demand(4000)
	if d2.ProcessingElements != 2 {
		t.Errorf("exact fit PEs = %d, want 2", d2.ProcessingElements)
	}
}

func TestDemandErrors(t *testing.T) {
	k, _ := ByName("sha3-512")
	for _, bad := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := k.Demand(bad); err == nil {
			t.Errorf("Demand(%g) must error", bad)
		}
	}
	if _, err := (Kernel{}).Demand(10); err == nil {
		t.Error("invalid kernel must error")
	}
}

func TestApplication(t *testing.T) {
	k, _ := ByName("h265-encode-4k")
	app, err := Application(k, 1000, units.YearsOf(2), 5e4)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Errorf("built application invalid: %v", err)
	}
	if app.SizeGates != 4*3.0e6 { // ceil(1000/250) = 4 PEs
		t.Errorf("app size %g", app.SizeGates)
	}
	if app.Name == "" {
		t.Error("application should be named")
	}
	if _, err := Application(k, -1, units.YearsOf(1), 1); err == nil {
		t.Error("bad target must propagate")
	}
}

func TestRoadmap(t *testing.T) {
	k, _ := ByName("bert-large-int8")
	s, err := Roadmap(k, 2000, 2, 4, units.YearsOf(1.5), 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("roadmap scenario invalid: %v", err)
	}
	if len(s.Apps) != 4 {
		t.Fatalf("generations: %d", len(s.Apps))
	}
	// Sizes must be non-decreasing (targets double each generation).
	for i := 1; i < len(s.Apps); i++ {
		if s.Apps[i].SizeGates < s.Apps[i-1].SizeGates {
			t.Errorf("generation %d shrank: %g < %g", i+1,
				s.Apps[i].SizeGates, s.Apps[i-1].SizeGates)
		}
	}
	// Final generation: target 16000 GOPS, 1800 per PE => 9 PEs.
	if s.Apps[3].SizeGates != 9*2.4e6 {
		t.Errorf("final generation size %g", s.Apps[3].SizeGates)
	}
	if _, err := Roadmap(k, 100, 2, 0, units.YearsOf(1), 1); err == nil {
		t.Error("zero generations must error")
	}
	if _, err := Roadmap(k, 100, -1, 2, units.YearsOf(1), 1); err == nil {
		t.Error("negative growth must error")
	}
}

func TestCarbonPerUnitHour(t *testing.T) {
	k, _ := ByName("resnet50-int8")
	d, _ := k.Demand(4000) // delivers 4000 GOPS
	// 1 tonne over 1 year, 100 units, duty 0.5:
	// work = 4000 * 0.5 * 8760 * 100 unit-hours.
	got, err := CarbonPerUnitHour(units.Tonnes(1), d, units.YearsOf(1), 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e6 / (4000 * 0.5 * 8760 * 100)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("intensity %g, want %g g/GOPS-hour", got, want)
	}
	// Errors.
	if _, err := CarbonPerUnitHour(1, Demand{}, units.YearsOf(1), 1, 0.5); err == nil {
		t.Error("no throughput must error")
	}
	if _, err := CarbonPerUnitHour(1, d, 0, 1, 0.5); err == nil {
		t.Error("zero lifetime must error")
	}
	if _, err := CarbonPerUnitHour(1, d, units.YearsOf(1), 0, 0.5); err == nil {
		t.Error("zero volume must error")
	}
	if _, err := CarbonPerUnitHour(1, d, units.YearsOf(1), 1, 0); err == nil {
		t.Error("zero duty must error")
	}
	if _, err := CarbonPerUnitHour(1, d, units.YearsOf(1), 1, 1.5); err == nil {
		t.Error("duty > 1 must error")
	}
}

// Property: demand covers the target and is tight — one fewer PE would
// miss it; gates and power scale exactly with PE count.
func TestQuickDemandTight(t *testing.T) {
	kernels := Library()
	f := func(rawTarget float64, which uint8) bool {
		k := kernels[int(which)%len(kernels)]
		target := math.Mod(math.Abs(rawTarget), 1e6)
		if target <= 0 || math.IsNaN(target) {
			return true
		}
		d, err := k.Demand(target)
		if err != nil {
			return false
		}
		covers := d.Throughput >= target-1e-9
		tight := float64(d.ProcessingElements-1)*k.BaseThroughput < target
		scaled := d.Gates == float64(d.ProcessingElements)*k.BaseGates
		return covers && tight && scaled
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
