// Package workload characterizes accelerator applications so scenarios
// can be built from throughput targets instead of raw gate counts. The
// paper's Eq. 3 needs an application size in equivalent logic gates
// (N_FPGA = ceil(appsize / FPGAcapacity)); this package grounds that
// input with a library of parameterized kernels from the paper's three
// domains — DNN inference, image processing, and cryptography — each
// scaling by processing-element replication.
//
// The kernel coefficients are order-of-magnitude figures for pipelined
// accelerator implementations (gates per processing element and
// throughput per element at a nominal clock); they exist to generate
// realistic scenario inputs, not to time real RTL.
package workload

import (
	"fmt"
	"math"
	"sort"

	"greenfpga/internal/core"
	"greenfpga/internal/units"
)

// Kernel is a parameterizable accelerator workload.
type Kernel struct {
	// Name identifies the kernel ("resnet50-int8", ...).
	Name string
	// Domain is the paper's application domain (DNN, ImgProc, Crypto).
	Domain string
	// BaseGates is the equivalent logic gates of one processing
	// element (PE) including its share of control and buffering.
	BaseGates float64
	// BaseThroughput is the throughput one PE delivers, in Unit.
	BaseThroughput float64
	// Unit names the throughput unit ("GOPS", "Mpixel/s", "Gbps").
	Unit string
	// WattsPerMGate is active power per million gates at full
	// utilization — a coarse dynamic+static density at the 10 nm-class
	// nodes the paper evaluates.
	WattsPerMGate float64
}

// library holds the built-in kernels, three per paper domain.
var library = []Kernel{
	// DNN inference: MAC-array accelerators. One 32x32 int8 MAC array
	// with buffers is ~1.6 Mgates and sustains ~2 TOPS at ~1 GHz.
	{"resnet50-int8", "DNN", 1.6e6, 2000, "GOPS", 0.55},
	{"bert-large-int8", "DNN", 2.4e6, 1800, "GOPS", 0.60},
	{"lstm-speech", "DNN", 1.1e6, 900, "GOPS", 0.50},

	// Image processing: deep pixel pipelines.
	{"h265-encode-4k", "ImgProc", 3.0e6, 250, "Mpixel/s", 0.40},
	{"optical-flow-hd", "ImgProc", 1.8e6, 400, "Mpixel/s", 0.45},
	{"isp-pipeline", "ImgProc", 0.9e6, 600, "Mpixel/s", 0.35},

	// Cryptography: round-unrolled block/hash engines.
	{"aes256-gcm", "Crypto", 0.35e6, 40, "Gbps", 0.30},
	{"sha3-512", "Crypto", 0.25e6, 25, "Gbps", 0.30},
	{"rsa4096-sign", "Crypto", 1.2e6, 8, "kops/s", 0.45},
}

// Library lists the built-in kernels grouped by domain then name.
func Library() []Kernel {
	out := make([]Kernel, len(library))
	copy(out, library)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domain != out[j].Domain {
			return out[i].Domain < out[j].Domain
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByName looks a kernel up.
func ByName(name string) (Kernel, error) {
	for _, k := range library {
		if k.Name == name {
			return k, nil
		}
	}
	names := make([]string, len(library))
	for i, k := range library {
		names[i] = k.Name
	}
	sort.Strings(names)
	return Kernel{}, fmt.Errorf("workload: unknown kernel %q (known: %v)", name, names)
}

// ByDomain lists the kernels of one domain.
func ByDomain(domain string) []Kernel {
	var out []Kernel
	for _, k := range Library() {
		if k.Domain == domain {
			out = append(out, k)
		}
	}
	return out
}

// Validate checks the kernel coefficients.
func (k Kernel) Validate() error {
	switch {
	case k.Name == "" || k.Domain == "":
		return fmt.Errorf("workload: kernel needs name and domain")
	case k.BaseGates <= 0:
		return fmt.Errorf("workload: kernel %s: base gates must be positive", k.Name)
	case k.BaseThroughput <= 0:
		return fmt.Errorf("workload: kernel %s: base throughput must be positive", k.Name)
	case k.WattsPerMGate <= 0:
		return fmt.Errorf("workload: kernel %s: power density must be positive", k.Name)
	}
	return nil
}

// Demand is the hardware requirement of a kernel at a target
// throughput.
type Demand struct {
	// Kernel names the source kernel.
	Kernel string
	// ProcessingElements is the PE replication factor.
	ProcessingElements int
	// Gates is the total equivalent logic gates (the paper's appsize).
	Gates float64
	// PeakPower is the active power of the replicated design.
	PeakPower units.Power
	// Throughput is the delivered (not requested) throughput, in the
	// kernel's unit — replication quantizes upward.
	Throughput float64
}

// Demand sizes the kernel for a target throughput by replicating
// processing elements.
func (k Kernel) Demand(target float64) (Demand, error) {
	if err := k.Validate(); err != nil {
		return Demand{}, err
	}
	if target <= 0 || math.IsNaN(target) || math.IsInf(target, 0) {
		return Demand{}, fmt.Errorf("workload: kernel %s: invalid target throughput %g", k.Name, target)
	}
	pes := int(math.Ceil(target / k.BaseThroughput))
	gates := float64(pes) * k.BaseGates
	return Demand{
		Kernel:             k.Name,
		ProcessingElements: pes,
		Gates:              gates,
		PeakPower:          units.Watts(gates / 1e6 * k.WattsPerMGate),
		Throughput:         float64(pes) * k.BaseThroughput,
	}, nil
}

// Application builds a core.Application from a kernel demand: the
// demand's gate count becomes the application size driving N_FPGA.
func Application(k Kernel, target float64, lifetime units.Years, volume float64) (core.Application, error) {
	d, err := k.Demand(target)
	if err != nil {
		return core.Application{}, err
	}
	return core.Application{
		Name:      fmt.Sprintf("%s@%g%s", k.Name, target, k.Unit),
		Lifetime:  lifetime,
		Volume:    volume,
		SizeGates: d.Gates,
	}, nil
}

// CarbonPerUnitHour is an SCI-style efficiency metric: grams of CO2e
// per unit-hour of delivered throughput (e.g. g/GOPS-hour for DNN
// kernels). It divides a deployment's total CFP by the work the fleet
// delivers over the application lifetime:
//
//	work = throughput x duty x hours x volume
//
// Lower is greener; comparing platforms at iso-performance in this
// metric matches comparing their totals, but the metric also makes
// differently-sized deployments comparable.
func CarbonPerUnitHour(total units.Mass, d Demand, lifetime units.Years,
	volume, dutyCycle float64) (float64, error) {
	if d.Throughput <= 0 {
		return 0, fmt.Errorf("workload: demand has no throughput")
	}
	if lifetime.Years() <= 0 {
		return 0, fmt.Errorf("workload: lifetime must be positive, got %v", lifetime)
	}
	if volume <= 0 {
		return 0, fmt.Errorf("workload: volume must be positive, got %g", volume)
	}
	if dutyCycle <= 0 || dutyCycle > 1 {
		return 0, fmt.Errorf("workload: duty cycle %g outside (0,1]", dutyCycle)
	}
	work := d.Throughput * dutyCycle * lifetime.Hours() * volume
	return total.Grams() / work, nil
}

// Roadmap builds a multi-generation scenario: the same kernel with a
// throughput target that grows by growthFactor each generation — the
// paper's "rapidly changing workloads" setting where reconfigurability
// pays.
func Roadmap(k Kernel, initialTarget, growthFactor float64, generations int,
	lifetime units.Years, volume float64) (core.Scenario, error) {
	if generations < 1 {
		return core.Scenario{}, fmt.Errorf("workload: need at least one generation, got %d", generations)
	}
	if growthFactor <= 0 {
		return core.Scenario{}, fmt.Errorf("workload: growth factor must be positive, got %g", growthFactor)
	}
	s := core.Scenario{Name: fmt.Sprintf("%s-roadmap", k.Name)}
	target := initialTarget
	for g := 0; g < generations; g++ {
		app, err := Application(k, target, lifetime, volume)
		if err != nil {
			return core.Scenario{}, err
		}
		app.Name = fmt.Sprintf("%s-gen%d", app.Name, g+1)
		s.Apps = append(s.Apps, app)
		target *= growthFactor
	}
	return s, nil
}
