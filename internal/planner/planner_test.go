package planner

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
)

// pair builds a planner-friendly platform pair: the FPGA carries 2x
// silicon and 2x power of the ASIC template.
func pair(t *testing.T) (fpga, asic core.Platform) {
	t.Helper()
	node, err := technode.ByName("10nm")
	if err != nil {
		t.Fatal(err)
	}
	asic = core.Platform{
		Spec: device.Spec{
			Name: "plan-asic", Kind: device.ASIC, Node: node,
			DieArea: units.MM2(120), PeakPower: units.Watts(2),
		},
		DutyCycle:       0.15,
		DesignEngineers: 300,
		DesignDuration:  units.YearsOf(2),
	}
	fpga = core.Platform{
		Spec: device.Spec{
			Name: "plan-fpga", Kind: device.FPGA, Node: node,
			DieArea: units.MM2(240), PeakPower: units.Watts(4),
			CapacityGates: 1e9,
		},
		DutyCycle:       0.15,
		DesignEngineers: 300,
		DesignDuration:  units.YearsOf(2),
	}
	return fpga, asic
}

// app builds a portfolio application.
func app(name string, years, volume float64) core.Application {
	return core.Application{Name: name, Lifetime: units.YearsOf(years), Volume: volume}
}

func TestOptimizeBeatsBothBaselines(t *testing.T) {
	fpga, asic := pair(t)
	// A mixed portfolio: short-lived low-volume apps (FPGA territory)
	// plus a long-lived high-volume app (ASIC territory).
	in := Inputs{
		FPGA: fpga, ASIC: asic,
		Apps: []core.Application{
			app("proto-a", 0.5, 5e3),
			app("proto-b", 0.5, 5e3),
			app("proto-c", 0.75, 1e4),
			app("pilot", 1, 2e4),
			app("mass-market", 5, 2e6),
		},
	}
	plan, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Exact {
		t.Error("five apps should be solved exactly")
	}
	if plan.Total > plan.AllASIC || plan.Total > plan.AllFPGA {
		t.Errorf("optimum %v worse than a baseline (ASIC %v, FPGA %v)",
			plan.Total, plan.AllASIC, plan.AllFPGA)
	}
	if plan.Savings() < 0 {
		t.Errorf("negative savings %v", plan.Savings())
	}
	// The mass-market app must go to the ASIC; the prototypes to the
	// fleet.
	byName := map[string]device.Kind{}
	for _, a := range plan.Assignments {
		byName[a.App] = a.Platform
	}
	if byName["mass-market"] != device.ASIC {
		t.Errorf("mass-market app assigned to %s", byName["mass-market"])
	}
	if byName["proto-a"] != device.FPGA || byName["proto-b"] != device.FPGA {
		t.Errorf("prototypes assigned to %s/%s", byName["proto-a"], byName["proto-b"])
	}
	if plan.FPGAApps() < 3 {
		t.Errorf("expected most prototypes on the fleet, got %d", plan.FPGAApps())
	}
	if plan.FleetEmbodied <= 0 {
		t.Error("fleet embodied carbon should be reported")
	}
}

func TestAllASICWhenFleetNeverPays(t *testing.T) {
	fpga, asic := pair(t)
	// One giant long-lived application: sharing cannot help.
	plan, err := Optimize(Inputs{
		FPGA: fpga, ASIC: asic,
		Apps: []core.Application{app("only", 8, 5e6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.FPGAApps() != 0 {
		t.Errorf("single long-lived app should stay ASIC: %+v", plan.Assignments)
	}
	if plan.FleetEmbodied != 0 {
		t.Errorf("unused fleet must cost nothing, got %v", plan.FleetEmbodied)
	}
	if plan.Total != plan.AllASIC {
		t.Errorf("total %v should equal the all-ASIC baseline %v", plan.Total, plan.AllASIC)
	}
}

func TestAllFPGAWhenASICNeverPays(t *testing.T) {
	fpga, asic := pair(t)
	// Many tiny short-lived apps: per-app ASIC design dominates.
	var apps []core.Application
	for i := 0; i < 8; i++ {
		apps = append(apps, app(fmt.Sprintf("burst-%d", i), 0.25, 1e3))
	}
	plan, err := Optimize(Inputs{FPGA: fpga, ASIC: asic, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	if plan.FPGAApps() != len(apps) {
		t.Errorf("all apps should ride the fleet, got %d of %d", plan.FPGAApps(), len(apps))
	}
	if plan.Total != plan.AllFPGA {
		t.Errorf("total %v should equal the all-FPGA baseline %v", plan.Total, plan.AllFPGA)
	}
}

func TestGreedyLargePortfolio(t *testing.T) {
	fpga, asic := pair(t)
	var apps []core.Application
	for i := 0; i < 24; i++ {
		years := 0.5 + float64(i%4)
		volume := math.Pow(10, 3+float64(i%4))
		apps = append(apps, app(fmt.Sprintf("app-%02d", i), years, volume))
	}
	plan, err := Optimize(Inputs{FPGA: fpga, ASIC: asic, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Exact {
		t.Error("24 apps should use the greedy path")
	}
	if plan.Total > plan.AllASIC || plan.Total > plan.AllFPGA {
		t.Errorf("greedy plan %v worse than a baseline (ASIC %v, FPGA %v)",
			plan.Total, plan.AllASIC, plan.AllFPGA)
	}
	if len(plan.Assignments) != 24 {
		t.Errorf("assignments: %d", len(plan.Assignments))
	}
}

func TestChipLifetimeRaisesFleetCost(t *testing.T) {
	fpga, asic := pair(t)
	apps := []core.Application{
		app("a", 6, 1e4), app("b", 6, 1e4), app("c", 6, 1e4),
	}
	uncapped, err := Optimize(Inputs{FPGA: fpga, ASIC: asic, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	capped := fpga
	capped.ChipLifetime = units.YearsOf(10) // 18-year span: two generations
	cappedPlan, err := Optimize(Inputs{FPGA: capped, ASIC: asic, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	if cappedPlan.AllFPGA <= uncapped.AllFPGA {
		t.Errorf("chip lifetime should raise the all-FPGA cost: %v vs %v",
			cappedPlan.AllFPGA, uncapped.AllFPGA)
	}
}

func TestOptimizeErrors(t *testing.T) {
	fpga, asic := pair(t)
	good := []core.Application{app("x", 1, 100)}
	cases := []Inputs{
		{FPGA: core.Platform{}, ASIC: asic, Apps: good},
		{FPGA: fpga, ASIC: core.Platform{}, Apps: good},
		{FPGA: asic, ASIC: asic, Apps: good}, // wrong kind on the fleet
		{FPGA: fpga, ASIC: fpga, Apps: good}, // wrong kind on dedicated
		{FPGA: fpga, ASIC: asic},             // empty portfolio
		{FPGA: fpga, ASIC: asic, Apps: []core.Application{app("bad", 0, 10)}},
		{FPGA: fpga, ASIC: asic, Apps: make([]core.Application, MaxPortfolio+1)},
	}
	for i, in := range cases {
		if _, err := Optimize(in); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Property: for exact-solved portfolios the optimum never exceeds any
// of a sample of random assignments.
func TestQuickExactIsOptimal(t *testing.T) {
	fpga, asic := pair(t)
	apps := []core.Application{
		app("a", 0.5, 2e3), app("b", 1, 2e4), app("c", 2, 2e5), app("d", 4, 2e6),
	}
	in := Inputs{FPGA: fpga, ASIC: asic, Apps: apps}
	plan, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	costs, err := newCostTable(in)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawMask uint8) bool {
		mask := uint64(rawMask) & costs.fullMask()
		return costs.totalFor(mask) >= plan.Total.Kilograms()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
