// Package planner chooses, per application, whether to serve it from a
// shared reconfigurable FPGA fleet or from a dedicated ASIC, minimizing
// the portfolio's total carbon footprint. It operationalizes the
// paper's conclusion — FPGAs win for low-volume, short-lived,
// numerous applications; ASICs for high-volume long-lived ones — as an
// optimizer over a heterogeneous application portfolio (the
// "sustainability-minded design decisions" §5 anticipates).
//
// The cost structure: applications assigned to the FPGA share one
// fleet, sized by the largest concurrent demand and paid once per
// hardware generation; each ASIC application pays its own design and
// volume. For portfolios up to ExactLimit applications the planner
// enumerates all assignments (the fleet-sizing coupling makes the
// problem non-separable); beyond that it uses a sorted greedy pass
// with local-improvement swaps.
package planner

import (
	"fmt"
	"math"
	"sort"

	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/units"
)

// ExactLimit is the portfolio size up to which all 2^n assignments are
// enumerated.
const ExactLimit = 16

// Inputs describes the planning problem.
type Inputs struct {
	// FPGA is the reconfigurable platform candidate.
	FPGA core.Platform
	// ASIC is the dedicated-silicon template; its die and power stand
	// in for every ASIC build (iso-performance reading: each app's
	// ASIC is comparable silicon).
	ASIC core.Platform
	// Apps is the application portfolio. Order is free; the planner
	// treats lifetimes as concurrent demands (each app keeps the fleet
	// for its own lifetime) and sizes the FPGA fleet by the largest
	// assigned volume x N_FPGA.
	Apps []core.Application
	// StrictEq2 selects the literal Eq. 2 app-dev accounting.
	StrictEq2 bool
}

// Assignment is one application's platform decision.
type Assignment struct {
	// App is the application name.
	App string
	// Platform is the chosen device kind.
	Platform device.Kind
	// Cost is the application's attributed CFP (ASIC: its full Eq. 1
	// term; FPGA: its deployment share — the shared fleet embodied
	// carbon is reported once in Plan.FleetEmbodied).
	Cost units.Mass
}

// Plan is the optimizer's output.
type Plan struct {
	// Assignments lists every application's decision in input order.
	Assignments []Assignment
	// Total is the portfolio CFP.
	Total units.Mass
	// FleetEmbodied is the shared FPGA fleet's embodied carbon (zero
	// when no application is assigned to the FPGA).
	FleetEmbodied units.Mass
	// AllASIC and AllFPGA are the single-platform baselines the
	// optimum is measured against.
	AllASIC, AllFPGA units.Mass
	// Exact reports whether the plan came from full enumeration.
	Exact bool
}

// Savings is the CFP saved versus the better single-platform baseline.
func (p Plan) Savings() units.Mass {
	base := p.AllASIC
	if p.AllFPGA < base {
		base = p.AllFPGA
	}
	return base - p.Total
}

// FPGAApps counts applications assigned to the fleet.
func (p Plan) FPGAApps() int {
	n := 0
	for _, a := range p.Assignments {
		if a.Platform == device.FPGA {
			n++
		}
	}
	return n
}

// Optimize solves the assignment problem.
func Optimize(in Inputs) (Plan, error) {
	if err := in.FPGA.Validate(); err != nil {
		return Plan{}, fmt.Errorf("planner: fpga: %w", err)
	}
	if err := in.ASIC.Validate(); err != nil {
		return Plan{}, fmt.Errorf("planner: asic: %w", err)
	}
	if in.FPGA.Spec.Kind != device.FPGA {
		return Plan{}, fmt.Errorf("planner: fleet platform must be an FPGA, got %s", in.FPGA.Spec.Kind)
	}
	if in.ASIC.Spec.Kind != device.ASIC {
		return Plan{}, fmt.Errorf("planner: dedicated platform must be an ASIC, got %s", in.ASIC.Spec.Kind)
	}
	if len(in.Apps) == 0 {
		return Plan{}, fmt.Errorf("planner: empty portfolio")
	}
	if len(in.Apps) > MaxPortfolio {
		return Plan{}, fmt.Errorf("planner: portfolio of %d exceeds the %d-application limit",
			len(in.Apps), MaxPortfolio)
	}
	for _, a := range in.Apps {
		if err := a.Validate(); err != nil {
			return Plan{}, err
		}
	}

	costs, err := newCostTable(in)
	if err != nil {
		return Plan{}, err
	}

	var best assignment
	exact := len(in.Apps) <= ExactLimit
	if exact {
		best = costs.enumerate()
	} else {
		best = costs.greedy()
	}

	plan := Plan{Exact: exact}
	plan.Total = units.Mass(best.total)
	plan.FleetEmbodied = units.Mass(costs.fleetEmbodied(best.mask))
	for i, app := range in.Apps {
		a := Assignment{App: app.Name, Platform: device.ASIC, Cost: units.Mass(costs.asic[i])}
		if best.mask&(1<<i) != 0 {
			a.Platform = device.FPGA
			a.Cost = units.Mass(costs.fpgaDeploy[i])
		}
		plan.Assignments = append(plan.Assignments, a)
	}
	allASIC := assignment{mask: 0}
	allASIC.total = costs.totalFor(0)
	allFPGA := assignment{mask: costs.fullMask()}
	allFPGA.total = costs.totalFor(costs.fullMask())
	plan.AllASIC = units.Mass(allASIC.total)
	plan.AllFPGA = units.Mass(allFPGA.total)
	return plan, nil
}

// costTable precomputes the per-application costs so assignments can
// be scored in O(n).
type costTable struct {
	// asic[i] is app i's full Eq. 1 cost on a dedicated ASIC.
	asic []float64
	// fpgaDeploy[i] is app i's deployment cost on the fleet
	// (operation + app-dev + configuration), excluding shared embodied.
	fpgaDeploy []float64
	// fleetUnits[i] is app i's device demand (volume x N_FPGA).
	fleetUnits []float64
	// designOnce is the FPGA design CFP (paid once if any app uses it).
	designOnce float64
	// perDevice is the FPGA per-device hardware carbon.
	perDevice float64
	// lifetimes[i] supports chip-lifetime generation counting.
	lifetimes []float64
	// chipLifetime caps one FPGA hardware generation (0: uncapped).
	chipLifetime float64
}

// assignment is a candidate solution: bit i set means app i rides the
// FPGA fleet.
type assignment struct {
	mask  uint64
	total float64
}

// newCostTable evaluates the per-application building blocks.
func newCostTable(in Inputs) (*costTable, error) {
	t := &costTable{chipLifetime: in.FPGA.ChipLifetime.Years()}

	fdc, err := in.FPGA.DeviceCost()
	if err != nil {
		return nil, err
	}
	t.perDevice = fdc.Total().Kilograms()
	fdes, err := in.FPGA.DesignCFP()
	if err != nil {
		return nil, err
	}
	t.designOnce = fdes.Kilograms()

	for _, app := range in.Apps {
		single := core.Scenario{Name: app.Name, Apps: []core.Application{app}, StrictEq2: in.StrictEq2}

		asicRes, err := core.Evaluate(in.ASIC, single)
		if err != nil {
			return nil, err
		}
		t.asic = append(t.asic, asicRes.Total().Kilograms())

		fpgaRes, err := core.Evaluate(in.FPGA, single)
		if err != nil {
			return nil, err
		}
		t.fpgaDeploy = append(t.fpgaDeploy, fpgaRes.Breakdown.Deployment().Kilograms())
		t.fleetUnits = append(t.fleetUnits, fpgaRes.FleetSize)
		t.lifetimes = append(t.lifetimes, app.Lifetime.Years())
	}
	return t, nil
}

// MaxPortfolio bounds the portfolio so assignment masks fit a word.
const MaxPortfolio = 63

// fullMask selects every application.
func (t *costTable) fullMask() uint64 { return (1 << len(t.asic)) - 1 }

// fleetEmbodied is the shared FPGA embodied carbon for a mask.
func (t *costTable) fleetEmbodied(mask uint64) float64 {
	if mask == 0 {
		return 0
	}
	var fleet, span float64
	for i := range t.asic {
		if mask&(1<<i) != 0 {
			fleet = math.Max(fleet, t.fleetUnits[i])
			span += t.lifetimes[i]
		}
	}
	gens := 1.0
	if t.chipLifetime > 0 && span > t.chipLifetime {
		gens = math.Ceil(span / t.chipLifetime)
	}
	return t.designOnce + fleet*gens*t.perDevice
}

// totalFor scores one assignment mask.
func (t *costTable) totalFor(mask uint64) float64 {
	total := t.fleetEmbodied(mask)
	for i := range t.asic {
		if mask&(1<<i) != 0 {
			total += t.fpgaDeploy[i]
		} else {
			total += t.asic[i]
		}
	}
	return total
}

// enumerate scores every assignment (n <= ExactLimit).
func (t *costTable) enumerate() assignment {
	best := assignment{mask: 0, total: t.totalFor(0)}
	for mask := uint64(1); mask <= t.fullMask(); mask++ {
		if total := t.totalFor(mask); total < best.total {
			best = assignment{mask: mask, total: total}
		}
	}
	return best
}

// greedy runs single-flip local improvement from three seeds — the
// all-ASIC mask, the all-FPGA mask, and a constructive pass that
// offers the fleet to applications in descending ASIC-cost order — and
// returns the best local optimum. The two baseline seeds guarantee the
// result never loses to either single-platform portfolio.
func (t *costTable) greedy() assignment {
	order := make([]int, len(t.asic))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return t.asic[order[a]] > t.asic[order[b]] })

	constructive := assignment{mask: 0, total: t.totalFor(0)}
	for _, i := range order {
		trial := constructive.mask | 1<<i
		if total := t.totalFor(trial); total < constructive.total {
			constructive = assignment{mask: trial, total: total}
		}
	}

	best := assignment{mask: 0, total: math.Inf(1)}
	for _, seed := range []assignment{
		{mask: 0, total: t.totalFor(0)},
		{mask: t.fullMask(), total: t.totalFor(t.fullMask())},
		constructive,
	} {
		cur := seed
		for improved := true; improved; {
			improved = false
			for i := range t.asic {
				trial := cur.mask ^ 1<<i
				if total := t.totalFor(trial); total < cur.total {
					cur = assignment{mask: trial, total: total}
					improved = true
				}
			}
		}
		if cur.total < best.total {
			best = cur
		}
	}
	return best
}
