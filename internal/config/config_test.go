package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greenfpga/internal/core"
)

func TestExampleValidatesAndEvaluates(t *testing.T) {
	ex := Example()
	if err := ex.Validate(); err != nil {
		t.Fatalf("example invalid: %v", err)
	}
	fpga, err := ex.FPGA.ToPlatform()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ex.ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(fpga, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 {
		t.Errorf("example total: %v", res.Total())
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := Save(path, Example()); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != Example().Name || len(loaded.Apps) != 3 {
		t.Errorf("round trip: %+v", loaded)
	}
	if loaded.FPGA.Device != "IndustryFPGA1" {
		t.Errorf("fpga device: %q", loaded.FPGA.Device)
	}
}

func TestInlinePlatform(t *testing.T) {
	doc := `{
		"name": "inline",
		"fpga": {
			"name": "my-fpga", "kind": "fpga", "node": "7nm",
			"die_area_mm2": 400, "peak_power_w": 100,
			"capacity_gates": 50e6, "duty_cycle": 0.4,
			"use_region": "europe", "fab_region": "taiwan"
		},
		"apps": [{"name": "a", "lifetime_years": 2, "volume": 1000}]
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.FPGA.ToPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec.Name != "my-fpga" || p.Spec.Node.Name != "7nm" || p.UseMix == nil || p.FabMix == nil {
		t.Errorf("inline platform: %+v", p.Spec)
	}
}

func TestKernelReferencedApps(t *testing.T) {
	doc := `{
		"name": "kernel-apps",
		"fpga": {"device": "IndustryFPGA2", "duty_cycle": 0.3},
		"apps": [
			{"name": "inference", "lifetime_years": 2, "volume": 1e4,
			 "kernel": "resnet50-int8", "target": 80000},
			{"name": "plain", "lifetime_years": 1, "volume": 1e3, "utilization_scale": 0.5}
		]
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	scen, err := s.ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	// 80000 GOPS / 2000 per PE = 40 PEs x 1.6 Mgates = 64 Mgates.
	if scen.Apps[0].SizeGates != 40*1.6e6 {
		t.Errorf("kernel-derived size %g", scen.Apps[0].SizeGates)
	}
	if scen.Apps[1].UtilizationScale != 0.5 {
		t.Errorf("utilization scale lost: %g", scen.Apps[1].UtilizationScale)
	}
	// The app exceeds one device: evaluation must gang.
	p, err := s.FPGA.ToPlatform()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(p, scen)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerApp[0].DevicesPerUnit != 3 { // ceil(64/30)
		t.Errorf("N_FPGA = %d, want 3", res.PerApp[0].DevicesPerUnit)
	}

	badBoth := `{
		"name": "conflict",
		"fpga": {"device": "IndustryFPGA2", "duty_cycle": 0.3},
		"apps": [{"name": "x", "lifetime_years": 1, "volume": 1,
		          "kernel": "resnet50-int8", "target": 100, "size_gates": 5}]
	}`
	if _, err := Parse([]byte(badBoth)); err == nil {
		t.Error("kernel + size_gates must conflict")
	}
	badKernel := `{
		"name": "unknown",
		"fpga": {"device": "IndustryFPGA2", "duty_cycle": 0.3},
		"apps": [{"name": "x", "lifetime_years": 1, "volume": 1,
		          "kernel": "quantum-fft", "target": 100}]
	}`
	if _, err := Parse([]byte(badKernel)); err == nil {
		t.Error("unknown kernel must error")
	}
	badTarget := `{
		"name": "no-target",
		"fpga": {"device": "IndustryFPGA2", "duty_cycle": 0.3},
		"apps": [{"name": "x", "lifetime_years": 1, "volume": 1,
		          "kernel": "resnet50-int8"}]
	}`
	if _, err := Parse([]byte(badTarget)); err == nil {
		t.Error("kernel without target must error")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"bad json", `{`},
		{"no platforms", `{"name":"x","apps":[{"name":"a","lifetime_years":1,"volume":1}]}`},
		{"no apps", `{"name":"x","fpga":{"device":"IndustryFPGA1","duty_cycle":0.3}}`},
		{"unknown device", `{"name":"x","fpga":{"device":"nope","duty_cycle":0.3},"apps":[{"name":"a","lifetime_years":1,"volume":1}]}`},
		{"unknown node", `{"name":"x","fpga":{"name":"f","kind":"fpga","node":"1nm","die_area_mm2":1,"peak_power_w":1,"capacity_gates":1,"duty_cycle":0.3},"apps":[{"name":"a","lifetime_years":1,"volume":1}]}`},
		{"unknown region", `{"name":"x","fpga":{"device":"IndustryFPGA1","duty_cycle":0.3,"use_region":"atlantis"},"apps":[{"name":"a","lifetime_years":1,"volume":1}]}`},
		{"bad duty", `{"name":"x","fpga":{"device":"IndustryFPGA1","duty_cycle":1.5},"apps":[{"name":"a","lifetime_years":1,"volume":1}]}`},
		{"bad app", `{"name":"x","fpga":{"device":"IndustryFPGA1","duty_cycle":0.3},"apps":[{"name":"a","lifetime_years":0,"volume":1}]}`},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.doc)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	bad := &Scenario{Name: "bad"}
	if err := Save(filepath.Join(t.TempDir(), "x.json"), bad); err == nil {
		t.Error("invalid scenario must not save")
	}
}

func TestSavedJSONIsReadable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := Save(path, Example()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"\"name\"", "IndustryFPGA1", "lifetime_years", "\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("saved JSON missing %q", want)
		}
	}
}
