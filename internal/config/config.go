// Package config loads and saves GreenFPGA scenario descriptions as
// JSON, the input format of the cmd/greenfpga CLI. A config names the
// platform(s) — either a Table 3 catalog device or an inline spec —
// the deployment knobs of Fig. 3, and the application sequence.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/grid"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
	"greenfpga/internal/workload"
)

// Platform describes one platform in JSON form.
type Platform struct {
	// Device names a catalog device (Table 3); when set, the inline
	// spec fields are ignored.
	Device string `json:"device,omitempty"`
	// Name labels an inline device.
	Name string `json:"name,omitempty"`
	// Kind is "asic" or "fpga" for inline devices.
	Kind string `json:"kind,omitempty"`
	// Node is the technology node label ("10nm", ...).
	Node string `json:"node,omitempty"`
	// DieAreaMM2 is the inline die area.
	DieAreaMM2 float64 `json:"die_area_mm2,omitempty"`
	// PeakPowerW is the inline TDP.
	PeakPowerW float64 `json:"peak_power_w,omitempty"`
	// CapacityGates is the inline FPGA capacity.
	CapacityGates float64 `json:"capacity_gates,omitempty"`

	// DutyCycle is the deployment utilization (0..1).
	DutyCycle float64 `json:"duty_cycle"`
	// PUE is the facility overhead (0 means 1.0).
	PUE float64 `json:"pue,omitempty"`
	// UseRegion selects the deployment grid preset.
	UseRegion string `json:"use_region,omitempty"`
	// FabRegion selects the fab grid preset.
	FabRegion string `json:"fab_region,omitempty"`
	// FabRenewableTarget raises the fab's renewable share.
	FabRenewableTarget float64 `json:"fab_renewable_target,omitempty"`
	// RecycledMaterialFraction is rho in Eq. 5.
	RecycledMaterialFraction float64 `json:"recycled_material_fraction,omitempty"`
	// EOLRecycleFraction is delta in Eq. 6 (0 uses the default).
	EOLRecycleFraction float64 `json:"eol_recycle_fraction,omitempty"`
	// DesignEngineers is N_emp,des.
	DesignEngineers float64 `json:"design_engineers,omitempty"`
	// DesignYears is T_proj.
	DesignYears float64 `json:"design_years,omitempty"`
	// ChipLifetimeYears caps one hardware generation (0 = uncapped).
	ChipLifetimeYears float64 `json:"chip_lifetime_years,omitempty"`
}

// Application describes one workload in JSON form. Its size can be
// given directly in gates, or derived from a workload-library kernel
// and a throughput target.
type Application struct {
	// Name labels the application.
	Name string `json:"name"`
	// LifetimeYears is T_i.
	LifetimeYears float64 `json:"lifetime_years"`
	// Volume is N_vol.
	Volume float64 `json:"volume"`
	// SizeGates sizes the application for N_FPGA (0 fits one device).
	// Mutually exclusive with Kernel.
	SizeGates float64 `json:"size_gates,omitempty"`
	// Kernel references a workload-library kernel (see `greenfpga
	// kernels`); Target must be set with it.
	Kernel string `json:"kernel,omitempty"`
	// Target is the throughput target in the kernel's unit.
	Target float64 `json:"target,omitempty"`
	// UtilizationScale scales per-device operational power (0 means 1).
	UtilizationScale float64 `json:"utilization_scale,omitempty"`
}

// Scenario is the top-level config document.
type Scenario struct {
	// Name labels the run.
	Name string `json:"name"`
	// FPGA and ASIC describe the platforms; either may be omitted for
	// a single-platform assessment, and both enable comparison.
	FPGA *Platform `json:"fpga,omitempty"`
	ASIC *Platform `json:"asic,omitempty"`
	// Apps is the sequential application list.
	Apps []Application `json:"apps"`
	// StrictEq2 selects the literal Eq. 2 app-dev accounting.
	StrictEq2 bool `json:"strict_eq2,omitempty"`
}

// ToPlatform materializes a core.Platform.
func (p *Platform) ToPlatform() (core.Platform, error) {
	var spec device.Spec
	if p.Device != "" {
		var err error
		spec, err = device.ByName(p.Device)
		if err != nil {
			return core.Platform{}, err
		}
	} else {
		node, err := technode.ByName(p.Node)
		if err != nil {
			return core.Platform{}, err
		}
		spec = device.Spec{
			Name:          p.Name,
			Kind:          device.Kind(p.Kind),
			Node:          node,
			DieArea:       units.MM2(p.DieAreaMM2),
			PeakPower:     units.Watts(p.PeakPowerW),
			CapacityGates: p.CapacityGates,
			BasedOn:       "user config",
		}
	}
	out := core.Platform{
		Spec:                     spec,
		DutyCycle:                p.DutyCycle,
		PUE:                      p.PUE,
		FabRenewableTarget:       p.FabRenewableTarget,
		RecycledMaterialFraction: p.RecycledMaterialFraction,
		DesignEngineers:          p.DesignEngineers,
		DesignDuration:           units.YearsOf(p.DesignYears),
		ChipLifetime:             units.YearsOf(p.ChipLifetimeYears),
	}
	out.EOL.RecycleFraction = p.EOLRecycleFraction
	if p.UseRegion != "" {
		mix, err := grid.ByRegion(grid.Region(p.UseRegion))
		if err != nil {
			return core.Platform{}, err
		}
		out.UseMix = mix
	}
	if p.FabRegion != "" {
		mix, err := grid.ByRegion(grid.Region(p.FabRegion))
		if err != nil {
			return core.Platform{}, err
		}
		out.FabMix = mix
	}
	if err := out.Validate(); err != nil {
		return core.Platform{}, err
	}
	return out, nil
}

// ToScenario materializes the application sequence, resolving kernel
// references through the workload library.
func (s *Scenario) ToScenario() (core.Scenario, error) {
	out := core.Scenario{Name: s.Name, StrictEq2: s.StrictEq2}
	for _, a := range s.Apps {
		app := core.Application{
			Name:             a.Name,
			Lifetime:         units.YearsOf(a.LifetimeYears),
			Volume:           a.Volume,
			SizeGates:        a.SizeGates,
			UtilizationScale: a.UtilizationScale,
		}
		if a.Kernel != "" {
			if a.SizeGates != 0 {
				return core.Scenario{}, fmt.Errorf(
					"config: application %q sets both kernel and size_gates", a.Name)
			}
			k, err := workload.ByName(a.Kernel)
			if err != nil {
				return core.Scenario{}, err
			}
			d, err := k.Demand(a.Target)
			if err != nil {
				return core.Scenario{}, err
			}
			app.SizeGates = d.Gates
		}
		out.Apps = append(out.Apps, app)
	}
	if err := out.Validate(); err != nil {
		return core.Scenario{}, err
	}
	return out, nil
}

// Validate checks the document without materializing.
func (s *Scenario) Validate() error {
	if s.FPGA == nil && s.ASIC == nil {
		return fmt.Errorf("config: scenario %q needs at least one platform", s.Name)
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("config: scenario %q has no applications", s.Name)
	}
	if s.FPGA != nil {
		if _, err := s.FPGA.ToPlatform(); err != nil {
			return fmt.Errorf("config: fpga: %w", err)
		}
	}
	if s.ASIC != nil {
		if _, err := s.ASIC.ToPlatform(); err != nil {
			return fmt.Errorf("config: asic: %w", err)
		}
	}
	if _, err := s.ToScenario(); err != nil {
		return err
	}
	return nil
}

// Parse decodes a JSON document.
func Parse(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and decodes a JSON file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Save writes the document as indented JSON.
func Save(path string, s *Scenario) error {
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Example returns a complete sample document: an industry FPGA against
// an industry ASIC over three two-year applications.
func Example() *Scenario {
	return &Scenario{
		Name: "example-industry-comparison",
		FPGA: &Platform{Device: "IndustryFPGA1", DutyCycle: 0.3, PUE: 1.2,
			DesignEngineers: 666, DesignYears: 2, ChipLifetimeYears: 15},
		ASIC: &Platform{Device: "IndustryASIC1", DutyCycle: 0.3, PUE: 1.2,
			DesignEngineers: 400, DesignYears: 2},
		Apps: []Application{
			{Name: "recommendation-v1", LifetimeYears: 2, Volume: 1e6},
			{Name: "vision-v2", LifetimeYears: 2, Volume: 1e6},
			{Name: "llm-serving-v3", LifetimeYears: 2, Volume: 1e6},
		},
	}
}
