package config

import (
	"encoding/json"
	"testing"
)

// FuzzConfigScenario drives the decoder through structured field
// values rather than raw JSON: whatever the knobs, Validate must never
// panic, and every document it accepts must materialize to a core
// scenario and survive a save/parse round trip.
func FuzzConfigScenario(f *testing.F) {
	f.Add("example", "IndustryFPGA1", 0.3, 1.2, 2.0, 1e6, 0.0, 15.0, false)
	f.Add("inline", "", 0.5, 0.0, 1.0, 100.0, 5e7, 0.0, true)
	f.Add("bad-duty", "IndustryASIC1", 7.5, 1.0, 2.0, 1e3, 0.0, 0.0, false)
	f.Add("bad-lifetime", "IndustryFPGA2", 0.2, 1.0, -3.0, 1e3, 0.0, 0.0, false)
	f.Add("", "nope", 0.1, 1.0, 1.0, 0.0, -1.0, -2.0, true)
	f.Fuzz(func(t *testing.T, name, dev string, duty, pue, lifeYears, volume, sizeGates, chipLife float64, strict bool) {
		p := &Platform{Device: dev, DutyCycle: duty, PUE: pue, ChipLifetimeYears: chipLife}
		if dev == "" {
			p = &Platform{Name: "inline", Kind: "fpga", Node: "10nm",
				DieAreaMM2: 100, PeakPowerW: 10, CapacityGates: 1e8,
				DutyCycle: duty, PUE: pue, ChipLifetimeYears: chipLife}
		}
		s := &Scenario{
			Name: name, FPGA: p, StrictEq2: strict,
			Apps: []Application{{Name: "a", LifetimeYears: lifeYears, Volume: volume, SizeGates: sizeGates}},
		}
		if err := s.Validate(); err != nil {
			return
		}
		if _, err := s.ToScenario(); err != nil {
			t.Fatalf("validated scenario fails to materialize: %v", err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if _, err := Parse(data); err != nil {
			t.Fatalf("re-parse of %s: %v", data, err)
		}
	})
}

// FuzzParse checks the scenario-config parser never panics and that
// accepted documents re-serialize and re-parse.
func FuzzParse(f *testing.F) {
	if data, err := json.Marshal(Example()); err == nil {
		f.Add(string(data))
	}
	f.Add(`{"name":"x","fpga":{"device":"IndustryFPGA1","duty_cycle":0.3},` +
		`"apps":[{"name":"a","lifetime_years":1,"volume":1}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"apps": null}`)
	f.Add(`{"name":"k","fpga":{"device":"IndustryFPGA2","duty_cycle":0.3},` +
		`"apps":[{"name":"a","lifetime_years":1,"volume":1,"kernel":"resnet50-int8","target":1000}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		s, err := Parse([]byte(doc))
		if err != nil {
			return
		}
		// Accepted documents must materialize and round-trip.
		if _, err := s.ToScenario(); err != nil {
			t.Fatalf("validated scenario fails to materialize: %v", err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if _, err := Parse(data); err != nil {
			t.Fatalf("re-parse of %s: %v", data, err)
		}
	})
}
