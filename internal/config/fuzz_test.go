package config

import (
	"encoding/json"
	"testing"
)

// FuzzParse checks the scenario-config parser never panics and that
// accepted documents re-serialize and re-parse.
func FuzzParse(f *testing.F) {
	if data, err := json.Marshal(Example()); err == nil {
		f.Add(string(data))
	}
	f.Add(`{"name":"x","fpga":{"device":"IndustryFPGA1","duty_cycle":0.3},` +
		`"apps":[{"name":"a","lifetime_years":1,"volume":1}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"apps": null}`)
	f.Add(`{"name":"k","fpga":{"device":"IndustryFPGA2","duty_cycle":0.3},` +
		`"apps":[{"name":"a","lifetime_years":1,"volume":1,"kernel":"resnet50-int8","target":1000}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		s, err := Parse([]byte(doc))
		if err != nil {
			return
		}
		// Accepted documents must materialize and round-trip.
		if _, err := s.ToScenario(); err != nil {
			t.Fatalf("validated scenario fails to materialize: %v", err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if _, err := Parse(data); err != nil {
			t.Fatalf("re-parse of %s: %v", data, err)
		}
	})
}
