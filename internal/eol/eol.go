// Package eol implements the end-of-life carbon model of GreenFPGA
// (paper §3.2(4), Eq. 6):
//
//	C_EOL = (1 - delta) * C_dis - delta * C_recycle
//
// where delta is the fraction of the device (by mass) routed to
// recycling, C_dis is the carbon of discarding (collection, transport,
// landfill/incineration) and C_recycle is the avoided-emission credit
// for recovered materials. Rates follow the EPA WARM report ranges the
// paper cites in Table 1: discard 0.03-2.08 and recycling credit
// 7.65-29.83 MTCO2E per ton of e-waste (equivalently kg CO2e per kg).
package eol

import (
	"fmt"

	"greenfpga/internal/units"
)

// Table 1 rate bounds (kg CO2e per kg of device mass).
const (
	MinDiscardRate = 0.03
	MaxDiscardRate = 2.08
	MinRecycleRate = 7.65
	MaxRecycleRate = 29.83
)

// Defaults used when a Params field is zero.
const (
	// DefaultDiscardRate is a mid-band mixed-disposal rate.
	DefaultDiscardRate = 1.0
	// DefaultRecycleRate is a mid-band e-waste recovery credit.
	DefaultRecycleRate = 15.0
	// DefaultRecycleFraction is delta: the e-waste share actually
	// recycled.
	DefaultRecycleFraction = 0.25
	// DefaultDeviceMassPerPackageCM2 estimates device mass (kg) per
	// cm^2 of package footprint: laminate, lid, leadframe and die.
	DefaultDeviceMassPerPackageCM2 = 0.0012
	// DefaultBaseDeviceMassKg is the fixed mass floor per device.
	DefaultBaseDeviceMassKg = 0.002
)

// Params configures the end-of-life model.
type Params struct {
	// RecycleFraction is delta in Eq. 6 (0..1). Zero means the default;
	// use a small negative epsilon via DisableRecycling for a true zero.
	RecycleFraction float64
	// DisableRecycling forces delta = 0 (all discarded).
	DisableRecycling bool
	// DiscardRatePerKg is C_dis in kg CO2e per kg of device.
	DiscardRatePerKg float64
	// RecycleRatePerKg is the C_recycle credit in kg CO2e per kg.
	RecycleRatePerKg float64
}

// Result is the per-device end-of-life footprint.
type Result struct {
	// DiscardCarbon is the (1-delta)*C_dis component (>= 0).
	DiscardCarbon units.Mass
	// RecycleCredit is the delta*C_recycle component (>= 0, subtracted).
	RecycleCredit units.Mass
	// DeviceMassKg is the device mass used.
	DeviceMassKg float64
}

// Net is the signed end-of-life footprint (Eq. 6); negative values are
// net credits.
func (r Result) Net() units.Mass {
	return r.DiscardCarbon - r.RecycleCredit
}

// EstimateDeviceMassKg estimates the physical mass of a packaged device
// from its package footprint.
func EstimateDeviceMassKg(packageArea units.Area) float64 {
	return DefaultBaseDeviceMassKg + DefaultDeviceMassPerPackageCM2*packageArea.CM2()
}

// CFP evaluates Eq. 6 for one device of the given physical mass.
func CFP(deviceMassKg float64, p Params) (Result, error) {
	if deviceMassKg < 0 {
		return Result{}, fmt.Errorf("eol: negative device mass %g kg", deviceMassKg)
	}
	delta := p.RecycleFraction
	if delta == 0 && !p.DisableRecycling {
		delta = DefaultRecycleFraction
	}
	if p.DisableRecycling {
		delta = 0
	}
	if delta < 0 || delta > 1 {
		return Result{}, fmt.Errorf("eol: recycle fraction %g outside [0,1]", delta)
	}
	dis := p.DiscardRatePerKg
	if dis == 0 {
		dis = DefaultDiscardRate
	}
	rec := p.RecycleRatePerKg
	if rec == 0 {
		rec = DefaultRecycleRate
	}
	if dis < 0 || rec < 0 {
		return Result{}, fmt.Errorf("eol: rates must be non-negative (dis=%g rec=%g)", dis, rec)
	}
	return Result{
		DiscardCarbon: units.Kilograms((1 - delta) * dis * deviceMassKg),
		RecycleCredit: units.Kilograms(delta * rec * deviceMassKg),
		DeviceMassKg:  deviceMassKg,
	}, nil
}
