package eol

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/units"
)

func TestEq6HandValues(t *testing.T) {
	// 20 g device, delta=0.25, dis=1.0, rec=15:
	// discard = 0.75*1.0*0.02 = 0.015 kg; credit = 0.25*15*0.02 = 0.075 kg.
	res, err := CFP(0.02, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DiscardCarbon.Kilograms()-0.015) > 1e-12 {
		t.Errorf("discard %v, want 0.015 kg", res.DiscardCarbon)
	}
	if math.Abs(res.RecycleCredit.Kilograms()-0.075) > 1e-12 {
		t.Errorf("credit %v, want 0.075 kg", res.RecycleCredit)
	}
	if math.Abs(res.Net().Kilograms()-(-0.06)) > 1e-12 {
		t.Errorf("net %v, want -0.06 kg", res.Net())
	}
}

func TestDisableRecycling(t *testing.T) {
	res, err := CFP(0.02, Params{DisableRecycling: true, DiscardRatePerKg: 2.08})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecycleCredit != 0 {
		t.Errorf("credit should be zero, got %v", res.RecycleCredit)
	}
	if math.Abs(res.DiscardCarbon.Kilograms()-2.08*0.02) > 1e-12 {
		t.Errorf("discard %v", res.DiscardCarbon)
	}
	if res.Net() <= 0 {
		t.Error("all-discard EOL must be a net emission")
	}
}

func TestFullRecycling(t *testing.T) {
	res, err := CFP(0.02, Params{RecycleFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DiscardCarbon != 0 {
		t.Errorf("discard should be zero, got %v", res.DiscardCarbon)
	}
	if res.Net() >= 0 {
		t.Error("full recycling must be a net credit")
	}
}

func TestZeroMassDevice(t *testing.T) {
	res, err := CFP(0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net() != 0 {
		t.Errorf("zero-mass device must have zero EOL, got %v", res.Net())
	}
}

func TestErrors(t *testing.T) {
	if _, err := CFP(-1, Params{}); err == nil {
		t.Error("negative mass must error")
	}
	if _, err := CFP(1, Params{RecycleFraction: 1.5}); err == nil {
		t.Error("fraction > 1 must error")
	}
	if _, err := CFP(1, Params{RecycleFraction: -0.5}); err == nil {
		t.Error("negative fraction must error")
	}
	if _, err := CFP(1, Params{DiscardRatePerKg: -1}); err == nil {
		t.Error("negative discard rate must error")
	}
	if _, err := CFP(1, Params{RecycleRatePerKg: -1}); err == nil {
		t.Error("negative recycle rate must error")
	}
}

func TestEstimateDeviceMass(t *testing.T) {
	m := EstimateDeviceMassKg(units.CM2(3))
	want := DefaultBaseDeviceMassKg + 3*DefaultDeviceMassPerPackageCM2
	if math.Abs(m-want) > 1e-12 {
		t.Errorf("mass %g, want %g", m, want)
	}
	if EstimateDeviceMassKg(units.MM2(0)) != DefaultBaseDeviceMassKg {
		t.Error("zero-area device keeps the base mass")
	}
}

func TestDefaultsInsideTable1Bands(t *testing.T) {
	if DefaultDiscardRate < MinDiscardRate || DefaultDiscardRate > MaxDiscardRate {
		t.Errorf("default discard rate %g outside Table 1 band", DefaultDiscardRate)
	}
	if DefaultRecycleRate < MinRecycleRate || DefaultRecycleRate > MaxRecycleRate {
		t.Errorf("default recycle rate %g outside Table 1 band", DefaultRecycleRate)
	}
}

// Property: net EOL is monotone decreasing in the recycle fraction and
// linear in device mass.
func TestQuickMonotoneInDelta(t *testing.T) {
	f := func(massRaw, d1, d2 float64) bool {
		mass := math.Mod(math.Abs(massRaw), 10)
		d1 = math.Mod(math.Abs(d1), 1)
		d2 = math.Mod(math.Abs(d2), 1)
		if math.IsNaN(mass + d1 + d2) {
			return true
		}
		lo, hi := math.Min(d1, d2), math.Max(d1, d2)
		if lo == 0 {
			lo = 0.01 // zero means default; use DisableRecycling for 0
		}
		if hi < lo {
			hi = lo
		}
		a, err1 := CFP(mass, Params{RecycleFraction: lo})
		b, err2 := CFP(mass, Params{RecycleFraction: hi})
		if err1 != nil || err2 != nil {
			return false
		}
		if b.Net() > a.Net()+1e-12 {
			return false
		}
		double, err3 := CFP(2*mass, Params{RecycleFraction: lo})
		if err3 != nil {
			return false
		}
		return math.Abs(double.Net().Kilograms()-2*a.Net().Kilograms()) <
			1e-9*math.Max(1, math.Abs(double.Net().Kilograms()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
