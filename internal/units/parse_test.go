package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseMass(t *testing.T) {
	cases := []struct {
		in   string
		want float64 // kg
	}{
		{"2500 kg", 2500},
		{"2.5 t", 2500},
		{"2.5t", 2500},
		{"7.65 MTCO2E", 7650},
		{"500 g", 0.5},
		{"1.2 kt", 1.2e6},
		{"42", 42},
		{"-10 kg", -10},
	}
	for _, c := range cases {
		got, err := ParseMass(c.in)
		if err != nil {
			t.Errorf("ParseMass(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got.Kilograms()-c.want) > 1e-9 {
			t.Errorf("ParseMass(%q) = %g kg, want %g", c.in, got.Kilograms(), c.want)
		}
	}
}

func TestParseEnergy(t *testing.T) {
	cases := []struct {
		in   string
		want float64 // kWh
	}{
		{"450 kWh", 450},
		{"2.5 MWh", 2500},
		{"7.3 GWh", 7.3e6},
		{"100 Wh", 0.1},
		{"9", 9},
	}
	for _, c := range cases {
		got, err := ParseEnergy(c.in)
		if err != nil {
			t.Errorf("ParseEnergy(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got.KWh()-c.want) > 1e-9 {
			t.Errorf("ParseEnergy(%q) = %g kWh, want %g", c.in, got.KWh(), c.want)
		}
	}
}

func TestParsePowerAreaYearsIntensity(t *testing.T) {
	if p, err := ParsePower("1.5 kW"); err != nil || p.Watts() != 1500 {
		t.Errorf("ParsePower kW: %v %v", p, err)
	}
	if p, err := ParsePower("250 mW"); err != nil || p.Watts() != 0.25 {
		t.Errorf("ParsePower mW: %v %v", p, err)
	}
	if a, err := ParseArea("3.4 cm2"); err != nil || a.MM2() != 340 {
		t.Errorf("ParseArea cm2: %v %v", a, err)
	}
	if a, err := ParseArea("340 mm^2"); err != nil || a.MM2() != 340 {
		t.Errorf("ParseArea mm^2: %v %v", a, err)
	}
	if y, err := ParseYears("18 months"); err != nil || math.Abs(y.Years()-1.5) > 1e-12 {
		t.Errorf("ParseYears months: %v %v", y, err)
	}
	if y, err := ParseYears("2 yr"); err != nil || y.Years() != 2 {
		t.Errorf("ParseYears yr: %v %v", y, err)
	}
	if ci, err := ParseCarbonIntensity("700 g/kWh"); err != nil || math.Abs(ci.KgPerKWh()-0.7) > 1e-12 {
		t.Errorf("ParseCarbonIntensity g/kWh: %v %v", ci, err)
	}
	if ci, err := ParseCarbonIntensity("0.03 kg/kWh"); err != nil || math.Abs(ci.KgPerKWh()-0.03) > 1e-12 {
		t.Errorf("ParseCarbonIntensity kg/kWh: %v %v", ci, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []func() error{
		func() error { _, err := ParseMass(""); return err },
		func() error { _, err := ParseMass("12 lbs"); return err },
		func() error { _, err := ParseEnergy("12 BTU"); return err },
		func() error { _, err := ParsePower("12 hp"); return err },
		func() error { _, err := ParseArea("12 acres"); return err },
		func() error { _, err := ParseYears("12 fortnights"); return err },
		func() error { _, err := ParseCarbonIntensity("12 kg/mi"); return err },
		func() error { _, err := ParseMass("abc kg"); return err },
	}
	for i, f := range bad {
		if f() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Property: parse(format(x)) stays within formatting precision for
// positive masses, and unit round trips are exact.
func TestQuickMassRoundTrip(t *testing.T) {
	f := func(kg float64) bool {
		kg = math.Abs(kg)
		if math.IsNaN(kg) || math.IsInf(kg, 0) || kg > 1e15 {
			return true
		}
		m := Kilograms(kg)
		return m.Tonnes()*1000 == kg && Tonnes(m.Tonnes()).Kilograms() == kg ||
			math.Abs(Tonnes(m.Tonnes()).Kilograms()-kg) <= 1e-9*kg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: energy integration is linear in both power and time.
func TestQuickPowerLinearity(t *testing.T) {
	f := func(w, y float64) bool {
		w = math.Mod(math.Abs(w), 1e6)
		y = math.Mod(math.Abs(y), 100)
		if math.IsNaN(w) || math.IsNaN(y) {
			return true
		}
		e1 := Watts(w).Over(YearsOf(y)).KWh()
		e2 := Watts(2 * w).Over(YearsOf(y)).KWh()
		e3 := Watts(w).Over(YearsOf(2 * y)).KWh()
		return math.Abs(e2-2*e1) <= 1e-9*math.Max(1, e2) &&
			math.Abs(e3-2*e1) <= 1e-9*math.Max(1, e3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Carbon is monotone in intensity for non-negative energy.
func TestQuickCarbonMonotone(t *testing.T) {
	f := func(e, ci1, ci2 float64) bool {
		e = math.Abs(e)
		ci1, ci2 = math.Abs(ci1), math.Abs(ci2)
		if math.IsNaN(e) || math.IsInf(e, 0) || math.IsNaN(ci1) || math.IsNaN(ci2) {
			return true
		}
		lo, hi := math.Min(ci1, ci2), math.Max(ci1, ci2)
		return KWh(e).Carbon(KgPerKWh(lo)).Kilograms() <=
			KWh(e).Carbon(KgPerKWh(hi)).Kilograms()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
