package units

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Errorf("%s: got %g, want %g", msg, got, want)
	}
}

func TestMassConversions(t *testing.T) {
	m := Tonnes(2.5)
	approx(t, m.Kilograms(), 2500, 1e-12, "tonnes->kg")
	approx(t, m.Grams(), 2.5e6, 1e-12, "tonnes->g")
	approx(t, m.Tonnes(), 2.5, 1e-12, "tonnes round trip")
	approx(t, Kilotonnes(0.0025).Kilograms(), 2500, 1e-12, "kt->kg")
	approx(t, Grams(500).Kilograms(), 0.5, 1e-12, "g->kg")
}

func TestMassScaleAndNegative(t *testing.T) {
	credit := Kilograms(-10)
	if credit.Kilograms() >= 0 {
		t.Fatal("negative mass (recycling credit) must be representable")
	}
	approx(t, credit.Scale(2.5).Kilograms(), -25, 1e-12, "scale")
}

func TestEnergyConversions(t *testing.T) {
	e := GWh(7.3)
	approx(t, e.KWh(), 7.3e6, 1e-12, "GWh->kWh")
	approx(t, e.MWh(), 7300, 1e-12, "GWh->MWh")
	approx(t, MWh(2).KWh(), 2000, 1e-12, "MWh->kWh")
}

func TestEnergyCarbon(t *testing.T) {
	// 1000 kWh at 700 g/kWh = 700 kg.
	got := KWh(1000).Carbon(GramsPerKWh(700))
	approx(t, got.Kilograms(), 700, 1e-12, "energy x intensity")
}

func TestPowerIntegration(t *testing.T) {
	// 100 W for one year = 876 kWh.
	e := Watts(100).Over(YearsOf(1))
	approx(t, e.KWh(), 876, 1e-12, "W over year")
	// duty-cycle scaling: half duty halves energy.
	half := Watts(100).Scale(0.5).Over(YearsOf(1))
	approx(t, half.KWh(), 438, 1e-12, "duty scaling")
	approx(t, Kilowatts(2).OverHours(3).KWh(), 6, 1e-12, "kW over hours")
}

func TestAreaConversions(t *testing.T) {
	a := MM2(340)
	approx(t, a.CM2(), 3.4, 1e-12, "mm2->cm2")
	approx(t, CM2(1.5).MM2(), 150, 1e-12, "cm2->mm2")
}

func TestYearsConversions(t *testing.T) {
	approx(t, Months(18).Years(), 1.5, 1e-12, "months->years")
	approx(t, YearsOf(2).Months(), 24, 1e-12, "years->months")
	approx(t, YearsOf(1).Hours(), 8760, 1e-12, "years->hours")
	approx(t, Hours(8760).Years(), 1, 1e-12, "hours->years")
}

func TestCarbonIntensityConversions(t *testing.T) {
	ci := GramsPerKWh(700)
	approx(t, ci.KgPerKWh(), 0.7, 1e-12, "g/kWh->kg/kWh")
	approx(t, KgPerKWh(0.03).GramsPerKWh(), 30, 1e-12, "kg/kWh->g/kWh")
}

func TestDensityTimesArea(t *testing.T) {
	// 0.5 kg/cm2 over 200 mm2 (2 cm2) = 1 kg.
	approx(t, KgPerCM2(0.5).Times(MM2(200)).Kilograms(), 1, 1e-12, "MPA x area")
	// 1.475 kWh/cm2 over 100 mm2 = 1.475 kWh.
	approx(t, KWhPerCM2(1.475).Times(MM2(100)).KWh(), 1.475, 1e-12, "EPA x area")
}

func TestStringFormatting(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Tonnes(2.5).String(), "2.5 tCO2e"},
		{Kilograms(3).String(), "3 kgCO2e"},
		{Grams(12).String(), "12 gCO2e"},
		{Kilotonnes(1.2).String(), "1.2 ktCO2e"},
		{GWh(2).String(), "2 GWh"},
		{MWh(3).String(), "3 MWh"},
		{KWh(7).String(), "7 kWh"},
		{Watts(70).String(), "70 W"},
		{Kilowatts(1.5).String(), "1.5 kW"},
		{MM2(340).String(), "340 mm^2"},
		{CM2(15).String(), "15 cm^2"},
		{YearsOf(2).String(), "2 years"},
		{Months(6).String(), "6 months"},
		{GramsPerKWh(700).String(), "700 gCO2/kWh"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String: got %q, want %q", c.got, c.want)
		}
	}
}

func TestZeroValuesAreUsable(t *testing.T) {
	var (
		m  Mass
		e  Energy
		p  Power
		a  Area
		y  Years
		ci CarbonIntensity
	)
	if m.Kilograms() != 0 || e.KWh() != 0 || p.Watts() != 0 ||
		a.MM2() != 0 || y.Years() != 0 || ci.KgPerKWh() != 0 {
		t.Fatal("zero values must read as zero")
	}
	if got := m.String(); got != "0 kgCO2e" {
		t.Errorf("zero mass string: %q", got)
	}
}
