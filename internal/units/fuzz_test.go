package units

import (
	"math"
	"testing"
)

// FuzzParseMass checks the quantity parser never panics and that
// successful parses are self-consistent (formatting then re-parsing
// stays within formatting precision).
func FuzzParseMass(f *testing.F) {
	for _, seed := range []string{
		"2500 kg", "2.5 t", "7.65 MTCO2E", "500 g", "1.2 kt", "42", "-10 kg",
		"", "kg", "1e309 kg", "nan t", "12 lbs", "  3.5\tkg ", "+2.5kt",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMass(s)
		if err != nil {
			return
		}
		kg := m.Kilograms()
		if math.IsNaN(kg) {
			// NaN literals parse as floats; reject downstream is fine,
			// but round-tripping NaN is meaningless.
			return
		}
		back, err := ParseMass(m.String())
		if err != nil {
			t.Fatalf("formatted %q does not re-parse: %v", m.String(), err)
		}
		if kg != 0 && !math.IsInf(kg, 0) {
			rel := math.Abs(back.Kilograms()-kg) / math.Abs(kg)
			if rel > 0.01 { // String renders 3 significant digits
				t.Fatalf("round trip drifted: %q -> %v -> %v", s, m, back)
			}
		}
	})
}

// FuzzParseEnergy mirrors FuzzParseMass for energies.
func FuzzParseEnergy(f *testing.F) {
	for _, seed := range []string{"450 kWh", "2.5 MWh", "7.3 GWh", "100 Wh", "9", "x"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e, err := ParseEnergy(s)
		if err != nil {
			return
		}
		kwh := e.KWh()
		if math.IsNaN(kwh) || math.IsInf(kwh, 0) || kwh == 0 {
			return
		}
		back, err := ParseEnergy(e.String())
		if err != nil {
			t.Fatalf("formatted %q does not re-parse: %v", e.String(), err)
		}
		if rel := math.Abs(back.KWh()-kwh) / math.Abs(kwh); rel > 0.01 {
			t.Fatalf("round trip drifted: %q -> %v -> %v", s, e, back)
		}
	})
}
