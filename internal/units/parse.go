package units

import (
	"fmt"
	"strconv"
	"strings"
)

// splitQuantity separates "12.5 kg" (or "12.5kg") into value and unit.
// The numeric prefix is the longest leading substring that parses as a
// float; units may themselves contain digits ("cm2", "mm2").
func splitQuantity(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, "", fmt.Errorf("units: empty quantity")
	}
	best := -1
	for i := 1; i <= len(s); i++ {
		if _, err := strconv.ParseFloat(strings.TrimSpace(s[:i]), 64); err == nil {
			best = i
		}
	}
	if best < 0 {
		return 0, "", fmt.Errorf("units: cannot parse %q: no numeric prefix", s)
	}
	v, _ := strconv.ParseFloat(strings.TrimSpace(s[:best]), 64)
	return v, strings.TrimSpace(s[best:]), nil
}

// ParseMass parses a CO2e mass such as "250 kg", "1.3 t", "900 g",
// "2 kt", or a bare number (kilograms).
func ParseMass(s string) (Mass, error) {
	v, unit, err := splitQuantity(s)
	if err != nil {
		return 0, err
	}
	switch strings.ToLower(unit) {
	case "", "kg", "kgco2", "kgco2e":
		return Kilograms(v), nil
	case "g", "gco2", "gco2e":
		return Grams(v), nil
	case "t", "ton", "tonne", "tco2e", "mtco2e":
		// "MTCO2E" follows the EPA WARM report usage: metric tonnes.
		return Tonnes(v), nil
	case "kt", "ktco2e":
		return Kilotonnes(v), nil
	default:
		return 0, fmt.Errorf("units: unknown mass unit %q", unit)
	}
}

// ParseEnergy parses an energy such as "450 kWh", "2.5 MWh", "7.3 GWh",
// or a bare number (kilowatt-hours).
func ParseEnergy(s string) (Energy, error) {
	v, unit, err := splitQuantity(s)
	if err != nil {
		return 0, err
	}
	switch strings.ToLower(unit) {
	case "", "kwh":
		return KWh(v), nil
	case "mwh":
		return MWh(v), nil
	case "gwh":
		return GWh(v), nil
	case "wh":
		return KWh(v / 1000), nil
	default:
		return 0, fmt.Errorf("units: unknown energy unit %q", unit)
	}
}

// ParsePower parses a power such as "70 W", "1.5 kW", or a bare
// number (watts).
func ParsePower(s string) (Power, error) {
	v, unit, err := splitQuantity(s)
	if err != nil {
		return 0, err
	}
	switch strings.ToLower(unit) {
	case "", "w":
		return Watts(v), nil
	case "kw":
		return Kilowatts(v), nil
	case "mw":
		return Watts(v / 1000), nil // milliwatts
	default:
		return 0, fmt.Errorf("units: unknown power unit %q", unit)
	}
}

// ParseArea parses an area such as "340 mm2", "3.4 cm2", or a bare
// number (square millimetres).
func ParseArea(s string) (Area, error) {
	v, unit, err := splitQuantity(s)
	if err != nil {
		return 0, err
	}
	switch strings.ToLower(strings.ReplaceAll(unit, "^", "")) {
	case "", "mm2":
		return MM2(v), nil
	case "cm2":
		return CM2(v), nil
	default:
		return 0, fmt.Errorf("units: unknown area unit %q", unit)
	}
}

// ParseYears parses a calendar span such as "2 years", "18 months",
// "2400 hours", or a bare number (years).
func ParseYears(s string) (Years, error) {
	v, unit, err := splitQuantity(s)
	if err != nil {
		return 0, err
	}
	switch strings.ToLower(strings.TrimSuffix(strings.ToLower(unit), "s")) {
	case "", "y", "yr", "year":
		return YearsOf(v), nil
	case "mo", "month":
		return Months(v), nil
	case "h", "hr", "hour":
		return Hours(v), nil
	default:
		return 0, fmt.Errorf("units: unknown time unit %q", unit)
	}
}

// ParseCarbonIntensity parses an intensity such as "700 g/kWh",
// "0.7 kg/kWh", or a bare number (kilograms per kilowatt-hour).
func ParseCarbonIntensity(s string) (CarbonIntensity, error) {
	v, unit, err := splitQuantity(s)
	if err != nil {
		return 0, err
	}
	switch strings.ToLower(unit) {
	case "", "kg/kwh", "kgco2/kwh", "kgco2e/kwh":
		return KgPerKWh(v), nil
	case "g/kwh", "gco2/kwh", "gco2e/kwh":
		return GramsPerKWh(v), nil
	default:
		return 0, fmt.Errorf("units: unknown carbon-intensity unit %q", unit)
	}
}
