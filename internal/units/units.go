// Package units provides the physical quantities used throughout
// GreenFPGA: carbon mass (CO2-equivalent), energy, power, silicon area,
// calendar time, and carbon intensity of energy sources.
//
// Each quantity is a defined float64 type with an explicit base unit:
//
//	Mass            kilograms of CO2e
//	Energy          kilowatt-hours
//	Power           watts
//	Area            square millimetres
//	Years           calendar years
//	CarbonIntensity kilograms of CO2e per kilowatt-hour
//
// Constructors (Tonnes, GWh, ...) and accessors (Kilograms, KWh, ...)
// convert to and from the base unit so call sites never multiply by raw
// conversion factors. Cross-quantity arithmetic that changes dimension is
// expressed as methods (for example Power.Over, Energy.Carbon) so the type
// system documents every equation in the carbon models.
package units

import (
	"fmt"
	"math"
)

// Conversion factors between the base units and common multiples.
const (
	// HoursPerYear is the paper's 24x365 operating year.
	HoursPerYear = 8760.0
	// MonthsPerYear converts the application-development inputs of
	// Table 1 (given in months) to years.
	MonthsPerYear = 12.0
	// MM2PerCM2 converts die areas (mm^2) to fab areas (cm^2).
	MM2PerCM2 = 100.0
)

// Mass is a mass of CO2-equivalent in kilograms. Negative values are
// meaningful: the end-of-life model issues recycling credits (Eq. 6).
type Mass float64

// Kilograms returns m kilograms of CO2e.
func Kilograms(kg float64) Mass { return Mass(kg) }

// Grams returns g grams of CO2e.
func Grams(g float64) Mass { return Mass(g / 1000) }

// Tonnes returns t metric tonnes of CO2e.
func Tonnes(t float64) Mass { return Mass(t * 1000) }

// Kilotonnes returns kt thousand tonnes of CO2e.
func Kilotonnes(kt float64) Mass { return Mass(kt * 1e6) }

// Kilograms reports the mass in kilograms.
func (m Mass) Kilograms() float64 { return float64(m) }

// Grams reports the mass in grams.
func (m Mass) Grams() float64 { return float64(m) * 1000 }

// Tonnes reports the mass in metric tonnes.
func (m Mass) Tonnes() float64 { return float64(m) / 1000 }

// Kilotonnes reports the mass in thousands of metric tonnes.
func (m Mass) Kilotonnes() float64 { return float64(m) / 1e6 }

// Scale returns m scaled by the dimensionless factor k.
func (m Mass) Scale(k float64) Mass { return Mass(float64(m) * k) }

// String renders the mass with an auto-selected SI multiple.
func (m Mass) String() string {
	abs := math.Abs(float64(m))
	switch {
	case abs >= 1e6:
		return fmt.Sprintf("%.3g ktCO2e", float64(m)/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3g tCO2e", float64(m)/1e3)
	case abs >= 1 || abs == 0:
		return fmt.Sprintf("%.3g kgCO2e", float64(m))
	default:
		return fmt.Sprintf("%.3g gCO2e", float64(m)*1000)
	}
}

// Energy is an amount of electrical energy in kilowatt-hours.
type Energy float64

// KWh returns e kilowatt-hours.
func KWh(e float64) Energy { return Energy(e) }

// MWh returns e megawatt-hours.
func MWh(e float64) Energy { return Energy(e * 1e3) }

// GWh returns e gigawatt-hours.
func GWh(e float64) Energy { return Energy(e * 1e6) }

// KWh reports the energy in kilowatt-hours.
func (e Energy) KWh() float64 { return float64(e) }

// MWh reports the energy in megawatt-hours.
func (e Energy) MWh() float64 { return float64(e) / 1e3 }

// GWh reports the energy in gigawatt-hours.
func (e Energy) GWh() float64 { return float64(e) / 1e6 }

// Scale returns e scaled by the dimensionless factor k.
func (e Energy) Scale(k float64) Energy { return Energy(float64(e) * k) }

// Carbon converts the energy to emitted CO2e at carbon intensity ci.
// This is the C = CI x E product used by every operational-phase model.
func (e Energy) Carbon(ci CarbonIntensity) Mass {
	return Mass(float64(e) * float64(ci))
}

// String renders the energy with an auto-selected SI multiple.
func (e Energy) String() string {
	abs := math.Abs(float64(e))
	switch {
	case abs >= 1e6:
		return fmt.Sprintf("%.3g GWh", float64(e)/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3g MWh", float64(e)/1e3)
	default:
		return fmt.Sprintf("%.3g kWh", float64(e))
	}
}

// Power is electrical power in watts.
type Power float64

// Watts returns p watts.
func Watts(p float64) Power { return Power(p) }

// Kilowatts returns p kilowatts.
func Kilowatts(p float64) Power { return Power(p * 1e3) }

// Watts reports the power in watts.
func (p Power) Watts() float64 { return float64(p) }

// Kilowatts reports the power in kilowatts.
func (p Power) Kilowatts() float64 { return float64(p) / 1e3 }

// Scale returns p scaled by the dimensionless factor k (duty cycle,
// PUE, device count, ...).
func (p Power) Scale(k float64) Power { return Power(float64(p) * k) }

// Over integrates the power over a calendar span, yielding energy.
func (p Power) Over(y Years) Energy {
	return Energy(float64(p) / 1e3 * float64(y) * HoursPerYear)
}

// OverHours integrates the power over h hours, yielding energy.
func (p Power) OverHours(h float64) Energy {
	return Energy(float64(p) / 1e3 * h)
}

// String renders the power in watts or kilowatts.
func (p Power) String() string {
	if math.Abs(float64(p)) >= 1e3 {
		return fmt.Sprintf("%.3g kW", float64(p)/1e3)
	}
	return fmt.Sprintf("%.3g W", float64(p))
}

// Area is silicon or package area in square millimetres.
type Area float64

// MM2 returns a square millimetres of area.
func MM2(a float64) Area { return Area(a) }

// CM2 returns a square centimetres of area.
func CM2(a float64) Area { return Area(a * MM2PerCM2) }

// MM2 reports the area in square millimetres.
func (a Area) MM2() float64 { return float64(a) }

// CM2 reports the area in square centimetres, the unit the per-area
// manufacturing coefficients are expressed in.
func (a Area) CM2() float64 { return float64(a) / MM2PerCM2 }

// Scale returns a scaled by the dimensionless factor k.
func (a Area) Scale(k float64) Area { return Area(float64(a) * k) }

// String renders the area in mm^2 or cm^2.
func (a Area) String() string {
	if math.Abs(float64(a)) >= 1e3 {
		return fmt.Sprintf("%.3g cm^2", float64(a)/MM2PerCM2)
	}
	return fmt.Sprintf("%.3g mm^2", float64(a))
}

// Years is a span of calendar time in years. Application lifetimes T_i,
// project durations T_proj, and chip lifetimes all use this type.
type Years float64

// YearsOf returns y years.
func YearsOf(y float64) Years { return Years(y) }

// Months returns m months as a year fraction.
func Months(m float64) Years { return Years(m / MonthsPerYear) }

// Hours returns h hours as a year fraction of the 8760-hour year.
func Hours(h float64) Years { return Years(h / HoursPerYear) }

// Years reports the span in years.
func (y Years) Years() float64 { return float64(y) }

// Months reports the span in months.
func (y Years) Months() float64 { return float64(y) * MonthsPerYear }

// Hours reports the span in hours of the 8760-hour year.
func (y Years) Hours() float64 { return float64(y) * HoursPerYear }

// Scale returns y scaled by the dimensionless factor k.
func (y Years) Scale(k float64) Years { return Years(float64(y) * k) }

// String renders the span in years or months.
func (y Years) String() string {
	if math.Abs(float64(y)) < 1 && y != 0 {
		return fmt.Sprintf("%.3g months", float64(y)*MonthsPerYear)
	}
	return fmt.Sprintf("%.3g years", float64(y))
}

// CarbonIntensity is the CO2e emitted per unit of electrical energy,
// in kilograms per kilowatt-hour. The paper's C_src ranges (Table 1) are
// 30-700 gCO2/kWh depending on the energy source.
type CarbonIntensity float64

// KgPerKWh returns an intensity of ci kilograms CO2e per kWh.
func KgPerKWh(ci float64) CarbonIntensity { return CarbonIntensity(ci) }

// GramsPerKWh returns an intensity of ci grams CO2e per kWh.
func GramsPerKWh(ci float64) CarbonIntensity { return CarbonIntensity(ci / 1000) }

// KgPerKWh reports the intensity in kilograms CO2e per kWh.
func (ci CarbonIntensity) KgPerKWh() float64 { return float64(ci) }

// GramsPerKWh reports the intensity in grams CO2e per kWh.
func (ci CarbonIntensity) GramsPerKWh() float64 { return float64(ci) * 1000 }

// Scale returns ci scaled by the dimensionless factor k.
func (ci CarbonIntensity) Scale(k float64) CarbonIntensity {
	return CarbonIntensity(float64(ci) * k)
}

// String renders the intensity in g/kWh, the unit used in the paper.
func (ci CarbonIntensity) String() string {
	return fmt.Sprintf("%.3g gCO2/kWh", float64(ci)*1000)
}

// MassPerArea is an emission density in kilograms CO2e per square
// centimetre of wafer area; the GPA and MPA coefficients of the
// manufacturing model use it.
type MassPerArea float64

// KgPerCM2 returns d kilograms CO2e per cm^2.
func KgPerCM2(d float64) MassPerArea { return MassPerArea(d) }

// KgPerCM2 reports the density in kilograms CO2e per cm^2.
func (d MassPerArea) KgPerCM2() float64 { return float64(d) }

// Times returns the mass emitted over area a.
func (d MassPerArea) Times(a Area) Mass { return Mass(float64(d) * a.CM2()) }

// EnergyPerArea is fab energy use per square centimetre of wafer area
// (the EPA coefficient), in kilowatt-hours per cm^2.
type EnergyPerArea float64

// KWhPerCM2 returns d kilowatt-hours per cm^2.
func KWhPerCM2(d float64) EnergyPerArea { return EnergyPerArea(d) }

// KWhPerCM2 reports the density in kilowatt-hours per cm^2.
func (d EnergyPerArea) KWhPerCM2() float64 { return float64(d) }

// Times returns the energy consumed processing area a.
func (d EnergyPerArea) Times(a Area) Energy { return Energy(float64(d) * a.CM2()) }
