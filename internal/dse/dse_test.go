package dse

import (
	"math"
	"testing"

	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
	"greenfpga/internal/workload"
)

// roadmap builds a small DNN roadmap via the workload package.
func roadmap(t *testing.T, generations int, lifetimeYears float64, volume float64) []core.Application {
	t.Helper()
	k, err := workload.ByName("resnet50-int8")
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.Roadmap(k, 4000, 1.5, generations, units.YearsOf(lifetimeYears), volume)
	if err != nil {
		t.Fatal(err)
	}
	return s.Apps
}

func TestExploreCoversTheSpace(t *testing.T) {
	res, err := Explore(Inputs{
		Apps:      roadmap(t, 3, 1.5, 1e5),
		DutyCycle: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 11 nodes x (1 ASIC + 4 FPGA palettes) = 55 candidates.
	if len(res.Candidates) != 55 {
		t.Fatalf("candidates: %d, want 55", len(res.Candidates))
	}
	// Sorted ascending.
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].Total < res.Candidates[i-1].Total {
			t.Fatal("candidates not sorted")
		}
	}
	if res.Best() != res.Candidates[0] {
		t.Error("Best must be the first candidate")
	}
	// Both kinds are represented.
	if _, ok := res.BestOfKind(device.ASIC); !ok {
		t.Error("no ASIC candidate")
	}
	if _, ok := res.BestOfKind(device.FPGA); !ok {
		t.Error("no FPGA candidate")
	}
	// Every candidate is physically sensible.
	for _, c := range res.Candidates {
		if c.Total <= 0 || c.DevicesManufactured <= 0 {
			t.Errorf("degenerate candidate: %+v", c)
		}
		if c.Kind == device.FPGA && c.MaxNFPGA < 1 {
			t.Errorf("FPGA gang missing: %+v", c)
		}
		if c.String() == "" {
			t.Error("empty candidate rendering")
		}
	}
}

func TestAdvancedNodesDominatePerGate(t *testing.T) {
	// In ACT-class models, density gains (1.8 -> 33 Mgates/mm^2)
	// outpace per-area fab-carbon growth (~3x) and per-gate power
	// falls, so for a fixed gate count the most advanced node in the
	// search set wins on both embodied and operational carbon — at any
	// duty cycle. The explorer must find exactly that.
	apps := roadmap(t, 1, 6, 1e6)
	for _, duty := range []float64{0.01, 0.5, 1.0} {
		res, err := Explore(Inputs{Apps: apps, DutyCycle: duty, Kinds: []device.Kind{device.ASIC}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best().Node != "3nm" {
			t.Errorf("duty %g: best node %s, want 3nm", duty, res.Best().Node)
		}
	}
	// Restricting the search set moves the winner to the most advanced
	// node still available.
	n28, _ := technode.ByName("28nm")
	n14, _ := technode.ByName("14nm")
	res, err := Explore(Inputs{
		Apps: apps, DutyCycle: 0.5,
		Kinds: []device.Kind{device.ASIC},
		Nodes: []technode.Node{n28, n14},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Node != "14nm" {
		t.Errorf("restricted search best node %s, want 14nm", res.Best().Node)
	}
}

func TestRoadmapLengthFlipsKind(t *testing.T) {
	// One long-lived application: the ASIC's lean silicon wins. A fast
	// roadmap of short-lived generations at low volume: the FPGA fleet
	// wins (the paper's low-volume / short-lifetime scenarios).
	const volume = 2e4
	oneApp, err := Explore(Inputs{Apps: roadmap(t, 1, 6, volume), DutyCycle: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if oneApp.Best().Kind != device.ASIC {
		t.Errorf("single 6-year app should favour ASIC, got %s", oneApp.Best())
	}
	fast, err := Explore(Inputs{Apps: roadmap(t, 8, 0.75, volume), DutyCycle: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Best().Kind != device.FPGA {
		t.Errorf("eight 9-month generations should favour FPGA, got %s", fast.Best())
	}
	// High volume erases the advantage even on the fast roadmap.
	big, err := Explore(Inputs{Apps: roadmap(t, 8, 0.75, 1e6), DutyCycle: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if big.Best().Kind != device.ASIC {
		t.Errorf("1e6-unit roadmap should favour ASIC, got %s", big.Best())
	}
}

func TestGangingAppearsForLargeApps(t *testing.T) {
	// Constrain the palette to a small mature-node device (28nm, 40mm2:
	// 72 Mgates of silicon, 7.2 Mgates usable) so the later roadmap
	// generations (11.2 Mgates) need multi-FPGA gangs.
	apps := roadmap(t, 4, 1, 1e4)
	n28, err := technode.ByName("28nm")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(Inputs{
		Apps:               apps,
		DutyCycle:          0.3,
		Kinds:              []device.Kind{device.FPGA},
		Nodes:              []technode.Node{n28},
		FPGADeviceAreasMM2: []float64{40},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.MaxNFPGA < 2 {
			t.Errorf("expected ganging on 28nm 40mm2 devices: %+v", c)
		}
	}
}

func TestExploreErrors(t *testing.T) {
	good := roadmap(t, 2, 1, 1e4)
	noSize := make([]core.Application, len(good))
	copy(noSize, good)
	noSize[0].SizeGates = 0
	cases := []Inputs{
		{},                             // no apps
		{Apps: good},                   // zero duty
		{Apps: good, DutyCycle: 2},     // bad duty
		{Apps: noSize, DutyCycle: 0.5}, // missing size
		{Apps: good, DutyCycle: 0.5, PowerPerMGateW: -1},
		{Apps: good, DutyCycle: 0.5, FPGAAreaOverhead: 0.5},
		{Apps: good, DutyCycle: 0.5, FPGAPowerOverhead: 0.5},
		{Apps: good, DutyCycle: 0.5, EngineersPerBGate: -3},
		{Apps: good, DutyCycle: 0.5, Kinds: []device.Kind{"gpu"}},
	}
	for i, in := range cases {
		if _, err := Explore(in); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPowerScaleDrivesOperationalSplit(t *testing.T) {
	// At identical duty, the 28nm ASIC must burn more operational
	// carbon than the 7nm ASIC for the same roadmap.
	apps := roadmap(t, 1, 3, 1e5)
	n28, _ := technode.ByName("28nm")
	n7, _ := technode.ByName("7nm")
	mature, err := Explore(Inputs{Apps: apps, DutyCycle: 0.5,
		Kinds: []device.Kind{device.ASIC}, Nodes: []technode.Node{n28}})
	if err != nil {
		t.Fatal(err)
	}
	advanced, err := Explore(Inputs{Apps: apps, DutyCycle: 0.5,
		Kinds: []device.Kind{device.ASIC}, Nodes: []technode.Node{n7}})
	if err != nil {
		t.Fatal(err)
	}
	if mature.Best().Operational.Kilograms() <= advanced.Best().Operational.Kilograms() {
		t.Errorf("28nm operational %v should exceed 7nm %v",
			mature.Best().Operational, advanced.Best().Operational)
	}
	if mature.Best().Embodied.Kilograms() <= advanced.Best().Embodied.Kilograms() {
		// Same gates on 28nm take ~5x the area but cost much less per
		// cm^2... the balance must still favour embodied on advanced
		// nodes being cheaper overall? No: advanced nodes pack 7.8x
		// the density at ~2x the per-area carbon, so embodied falls.
		t.Errorf("28nm embodied %v should exceed 7nm %v (density beats per-area cost)",
			mature.Best().Embodied, advanced.Best().Embodied)
	}
}

func TestFPGACapacityMath(t *testing.T) {
	// A 100mm2 FPGA at 10nm with 10x overhead holds 90 Mgates / 10 =
	// 90e6/10 usable gates.
	node, _ := technode.ByName("10nm")
	in := Inputs{Apps: roadmap(t, 1, 1, 1e3), DutyCycle: 0.3}
	if err := (&in).normalize(); err != nil {
		t.Fatal(err)
	}
	c, err := evaluateFPGA(in, node, units.MM2(100))
	if err != nil {
		t.Fatal(err)
	}
	// roadmap(1 gen, target 4000 GOPS): ceil(4000/2000)=2 PEs x 1.6e6
	// gates = 3.2e6 gates; capacity 9e8/10 = 9e7 => one device.
	if c.MaxNFPGA != 1 {
		t.Errorf("gang %d, want 1", c.MaxNFPGA)
	}
	if math.Abs(c.DevicesManufactured-1e3) > 1e-9 {
		t.Errorf("devices %g, want 1000", c.DevicesManufactured)
	}
}
