// Package dse is a carbon-aware design-space explorer: given an
// application roadmap (gate sizes, lifetimes, volumes from the workload
// package), it searches technology nodes, platform kinds and FPGA
// device sizings for the lowest total carbon footprint. This extends
// GreenFPGA in the direction of the carbon-aware DSE work the paper
// cites ([16]) and its stated goal of "sustainability-minded design
// decisions".
//
// The explorer trades three effects the models expose:
//
//   - advanced nodes shrink silicon (less embodied per gate) but cost
//     more fab carbon per area and yield worse;
//   - advanced nodes burn less power per gate (technode.PowerScale),
//     cutting operational carbon;
//   - FPGAs amortize one fleet across the roadmap but pay an area and
//     power overhead per usable gate, with N_FPGA ganging for
//     applications beyond one device's capacity.
package dse

import (
	"fmt"
	"sort"

	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/grid"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
)

// Defaults for unset Inputs fields.
const (
	// DefaultFPGAAreaOverhead is silicon area per usable application
	// gate, relative to an ASIC implementation (LUT fabric, routing,
	// configuration memory).
	DefaultFPGAAreaOverhead = 10.0
	// DefaultFPGAPowerOverhead is active power per delivered
	// operation relative to an ASIC implementation.
	DefaultFPGAPowerOverhead = 3.0
	// DefaultPowerPerMGateW is active watts per million ASIC gates at
	// the 10 nm reference node, full utilization.
	DefaultPowerPerMGateW = 0.5
	// DefaultEngineersPerBGate staffs design projects per billion
	// silicon gates.
	DefaultEngineersPerBGate = 250.0
	// DefaultMinEngineers floors every project: tape-out, validation
	// and bring-up need a real team however small the die.
	DefaultMinEngineers = 150.0
)

// DefaultFPGADeviceAreasMM2 is the candidate FPGA die palette.
var DefaultFPGADeviceAreasMM2 = []float64{100, 200, 400, 600}

// Inputs describes the exploration.
type Inputs struct {
	// Apps is the application roadmap; every app needs SizeGates > 0.
	Apps []core.Application
	// PowerPerMGateW is the ASIC power density at 10 nm (W/Mgate at
	// full utilization); zero means DefaultPowerPerMGateW.
	PowerPerMGateW float64
	// DutyCycle is the deployment utilization.
	DutyCycle float64
	// Nodes restricts the node search; nil means the full table.
	Nodes []technode.Node
	// Kinds restricts the platform search; nil means ASIC and FPGA.
	Kinds []device.Kind
	// FPGADeviceAreasMM2 is the candidate FPGA die palette; nil means
	// DefaultFPGADeviceAreasMM2.
	FPGADeviceAreasMM2 []float64
	// FPGAAreaOverhead and FPGAPowerOverhead model the fabric cost per
	// usable gate; zero means the defaults.
	FPGAAreaOverhead  float64
	FPGAPowerOverhead float64
	// EngineersPerBGate scales design staffing with silicon size for
	// ASICs and with usable capacity for FPGAs (the regular fabric's
	// design effort does not scale with replicated tiles); zero means
	// DefaultEngineersPerBGate.
	EngineersPerBGate float64
	// MinEngineers floors project staffing; zero means
	// DefaultMinEngineers.
	MinEngineers float64
	// UseMix and FabMix select grids (nil: world / Taiwan presets).
	UseMix, FabMix grid.Mix
	// PUE is the facility overhead.
	PUE float64
}

// normalize fills defaults and validates.
func (in *Inputs) normalize() error {
	if len(in.Apps) == 0 {
		return fmt.Errorf("dse: no applications")
	}
	for _, a := range in.Apps {
		if err := a.Validate(); err != nil {
			return err
		}
		if a.SizeGates <= 0 {
			return fmt.Errorf("dse: application %q needs SizeGates > 0", a.Name)
		}
	}
	if in.DutyCycle <= 0 || in.DutyCycle > 1 {
		return fmt.Errorf("dse: duty cycle %g outside (0,1]", in.DutyCycle)
	}
	if in.PowerPerMGateW == 0 {
		in.PowerPerMGateW = DefaultPowerPerMGateW
	}
	if in.PowerPerMGateW < 0 {
		return fmt.Errorf("dse: negative power density %g", in.PowerPerMGateW)
	}
	if in.Nodes == nil {
		in.Nodes = technode.List()
	}
	if len(in.Kinds) == 0 {
		in.Kinds = []device.Kind{device.ASIC, device.FPGA}
	}
	if in.FPGADeviceAreasMM2 == nil {
		in.FPGADeviceAreasMM2 = DefaultFPGADeviceAreasMM2
	}
	if in.FPGAAreaOverhead == 0 {
		in.FPGAAreaOverhead = DefaultFPGAAreaOverhead
	}
	if in.FPGAAreaOverhead < 1 {
		return fmt.Errorf("dse: FPGA area overhead %g must be >= 1", in.FPGAAreaOverhead)
	}
	if in.FPGAPowerOverhead == 0 {
		in.FPGAPowerOverhead = DefaultFPGAPowerOverhead
	}
	if in.FPGAPowerOverhead < 1 {
		return fmt.Errorf("dse: FPGA power overhead %g must be >= 1", in.FPGAPowerOverhead)
	}
	if in.EngineersPerBGate == 0 {
		in.EngineersPerBGate = DefaultEngineersPerBGate
	}
	if in.EngineersPerBGate <= 0 {
		return fmt.Errorf("dse: staffing density %g must be positive", in.EngineersPerBGate)
	}
	if in.MinEngineers == 0 {
		in.MinEngineers = DefaultMinEngineers
	}
	if in.MinEngineers < 0 {
		return fmt.Errorf("dse: negative staffing floor %g", in.MinEngineers)
	}
	return nil
}

// staffing floors the per-project engineer count.
func (in Inputs) staffing(billionGates float64) float64 {
	eng := in.EngineersPerBGate * billionGates
	if eng < in.MinEngineers {
		return in.MinEngineers
	}
	return eng
}

// Candidate is one evaluated design point.
type Candidate struct {
	// Kind is the platform family.
	Kind device.Kind
	// Node is the technology node label.
	Node string
	// DeviceArea is the FPGA die size (zero for ASICs, whose dies are
	// sized per application).
	DeviceArea units.Area
	// MaxNFPGA is the largest per-application device gang (1 for
	// ASICs).
	MaxNFPGA int
	// Total is the scenario CFP.
	Total units.Mass
	// Embodied and Operational split the total.
	Embodied, Operational units.Mass
	// DevicesManufactured counts silicon built.
	DevicesManufactured float64
}

// String renders the candidate for reports.
func (c Candidate) String() string {
	if c.Kind == device.ASIC {
		return fmt.Sprintf("ASIC @ %s: %v", c.Node, c.Total)
	}
	return fmt.Sprintf("FPGA %.0fmm2 @ %s (max gang %d): %v",
		c.DeviceArea.MM2(), c.Node, c.MaxNFPGA, c.Total)
}

// Result is the full exploration outcome, best first.
type Result struct {
	// Candidates are every evaluated point, ascending by total CFP.
	Candidates []Candidate
}

// Best is the lowest-carbon candidate.
func (r Result) Best() Candidate {
	return r.Candidates[0]
}

// BestOfKind is the lowest-carbon candidate of one platform family.
func (r Result) BestOfKind(k device.Kind) (Candidate, bool) {
	for _, c := range r.Candidates {
		if c.Kind == k {
			return c, true
		}
	}
	return Candidate{}, false
}

// Explore evaluates the full design space.
func Explore(in Inputs) (Result, error) {
	if err := in.normalize(); err != nil {
		return Result{}, err
	}
	var out Result
	for _, node := range in.Nodes {
		for _, kind := range in.Kinds {
			switch kind {
			case device.ASIC:
				c, err := evaluateASIC(in, node)
				if err != nil {
					return Result{}, err
				}
				out.Candidates = append(out.Candidates, c)
			case device.FPGA:
				for _, area := range in.FPGADeviceAreasMM2 {
					c, err := evaluateFPGA(in, node, units.MM2(area))
					if err != nil {
						return Result{}, err
					}
					out.Candidates = append(out.Candidates, c)
				}
			default:
				return Result{}, fmt.Errorf("dse: unknown platform kind %q", kind)
			}
		}
	}
	sort.SliceStable(out.Candidates, func(i, j int) bool {
		return out.Candidates[i].Total < out.Candidates[j].Total
	})
	return out, nil
}

// evaluateASIC sums Eq. 1 across per-application sized dies on the
// node.
func evaluateASIC(in Inputs, node technode.Node) (Candidate, error) {
	cand := Candidate{Kind: device.ASIC, Node: node.Name, MaxNFPGA: 1}
	for _, app := range in.Apps {
		area, err := node.AreaForGates(app.SizeGates)
		if err != nil {
			return Candidate{}, err
		}
		p := core.Platform{
			Spec: device.Spec{
				Name:      fmt.Sprintf("dse-asic-%s-%s", node.Name, app.Name),
				Kind:      device.ASIC,
				Node:      node,
				DieArea:   area,
				PeakPower: units.Watts(app.SizeGates / 1e6 * in.PowerPerMGateW * node.PowerScale),
			},
			DutyCycle:       in.DutyCycle,
			PUE:             in.PUE,
			UseMix:          in.UseMix,
			FabMix:          in.FabMix,
			DesignEngineers: in.staffing(app.SizeGates / 1e9),
			DesignDuration:  units.YearsOf(2),
		}
		single := app
		single.SizeGates = 0 // the die is already sized to the app
		res, err := core.Evaluate(p, core.Scenario{Name: app.Name, Apps: []core.Application{single}})
		if err != nil {
			return Candidate{}, err
		}
		cand.Total += res.Total()
		cand.Embodied += res.Breakdown.Embodied()
		cand.Operational += res.Breakdown.Deployment()
		cand.DevicesManufactured += res.DevicesManufactured
	}
	return cand, nil
}

// evaluateFPGA runs the whole roadmap on one FPGA device choice
// (Eq. 2 with N_FPGA ganging).
func evaluateFPGA(in Inputs, node technode.Node, area units.Area) (Candidate, error) {
	capacity := node.GatesForArea(area) / in.FPGAAreaOverhead
	if capacity <= 0 {
		return Candidate{}, fmt.Errorf("dse: FPGA capacity collapsed for %v at %s", area, node.Name)
	}
	// Device power at full utilization: usable capacity times the ASIC
	// density, times the fabric power overhead.
	peak := units.Watts(capacity / 1e6 * in.PowerPerMGateW * in.FPGAPowerOverhead * node.PowerScale)
	spec := device.Spec{
		Name:          fmt.Sprintf("dse-fpga-%s-%.0fmm2", node.Name, area.MM2()),
		Kind:          device.FPGA,
		Node:          node,
		DieArea:       area,
		PeakPower:     peak,
		CapacityGates: capacity,
	}
	p := core.Platform{
		Spec:      spec,
		DutyCycle: in.DutyCycle,
		PUE:       in.PUE,
		UseMix:    in.UseMix,
		FabMix:    in.FabMix,
		// The fabric is an array of identical tiles: design effort
		// follows usable capacity, not replicated silicon.
		DesignEngineers: in.staffing(capacity / 1e9),
		DesignDuration:  units.YearsOf(2),
	}
	// Each application burns power in proportion to the fabric share it
	// occupies; idle tiles are clock-gated.
	apps := make([]core.Application, len(in.Apps))
	for i, app := range in.Apps {
		apps[i] = app
		n, err := spec.Required(app.SizeGates)
		if err != nil {
			return Candidate{}, err
		}
		util := app.SizeGates / (float64(n) * capacity)
		if util > 1 {
			util = 1
		}
		apps[i].UtilizationScale = util
	}
	res, err := core.Evaluate(p, core.Scenario{Name: "dse-fpga", Apps: apps})
	if err != nil {
		return Candidate{}, err
	}
	cand := Candidate{
		Kind:                device.FPGA,
		Node:                node.Name,
		DeviceArea:          area,
		Total:               res.Total(),
		Embodied:            res.Breakdown.Embodied(),
		Operational:         res.Breakdown.Deployment(),
		DevicesManufactured: res.DevicesManufactured,
	}
	for _, pa := range res.PerApp {
		if pa.DevicesPerUnit > cand.MaxNFPGA {
			cand.MaxNFPGA = pa.DevicesPerUnit
		}
	}
	return cand, nil
}
