package lifecycle

import (
	"math"
	"testing"

	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
)

func platforms(t *testing.T) (fpga, asic core.Platform) {
	t.Helper()
	node, err := technode.ByName("10nm")
	if err != nil {
		t.Fatal(err)
	}
	asic = core.Platform{
		Spec: device.Spec{
			Name: "lc-asic", Kind: device.ASIC, Node: node,
			DieArea: units.MM2(100), PeakPower: units.Watts(5),
		},
		DutyCycle: 0.3,
	}
	fpga = core.Platform{
		Spec: device.Spec{
			Name: "lc-fpga", Kind: device.FPGA, Node: node,
			DieArea: units.MM2(200), PeakPower: units.Watts(10),
			CapacityGates: 1e9,
		},
		DutyCycle:    0.3,
		ChipLifetime: units.YearsOf(15),
	}
	return fpga, asic
}

func TestFPGAJumpsAtChipLifetime(t *testing.T) {
	fpga, _ := platforms(t)
	res, err := Run(Config{
		Platform:    fpga,
		AppLifetime: units.YearsOf(1),
		Horizon:     units.YearsOf(45),
		Volume:      1000,
		Samples:     450,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9: fleet builds at 0, 15 and 30 years.
	var hwTimes []float64
	for _, e := range res.Events {
		if e.Kind == EventHardware {
			hwTimes = append(hwTimes, e.Time.Years())
		}
	}
	want := []float64{0, 15, 30}
	if len(hwTimes) != len(want) {
		t.Fatalf("hardware events at %v, want %v", hwTimes, want)
	}
	for i := range want {
		if hwTimes[i] != want[i] {
			t.Fatalf("hardware events at %v, want %v", hwTimes, want)
		}
	}
	// Exactly one design event: the second generation reuses the design.
	designs := 0
	for _, e := range res.Events {
		if e.Kind == EventDesign {
			designs++
		}
	}
	if designs != 1 {
		t.Errorf("design events: %d, want 1", designs)
	}
	// The curve must jump across the 15-year boundary by at least the
	// fleet cost (hardware step + accrued operation).
	dc, _ := fpga.DeviceCost()
	fleet := dc.Total().Scale(1000)
	before := curveAt(res, 14.9)
	after := curveAt(res, 15.1)
	if after.Kilograms()-before.Kilograms() < fleet.Kilograms() {
		t.Errorf("no rebuy jump: %v -> %v (fleet %v)", before, after, fleet)
	}
}

func TestASICStepsEveryApplication(t *testing.T) {
	_, asic := platforms(t)
	res, err := Run(Config{
		Platform:    asic,
		AppLifetime: units.YearsOf(1),
		Horizon:     units.YearsOf(10),
		Volume:      1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	designs, hw := 0, 0
	for _, e := range res.Events {
		switch e.Kind {
		case EventDesign:
			designs++
		case EventHardware:
			hw++
		}
	}
	if designs != 10 || hw != 10 {
		t.Errorf("ASIC events: %d designs, %d hardware, want 10 each", designs, hw)
	}
}

func TestCurveIsMonotone(t *testing.T) {
	fpga, asic := platforms(t)
	for _, p := range []core.Platform{fpga, asic} {
		res, err := Run(Config{
			Platform:    p,
			AppLifetime: units.YearsOf(1),
			Horizon:     units.YearsOf(30),
			Volume:      500,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Curve) != 201 {
			t.Fatalf("default samples: %d points", len(res.Curve))
		}
		for i := 1; i < len(res.Curve); i++ {
			if res.Curve[i].Cumulative < res.Curve[i-1].Cumulative {
				t.Fatalf("%s: cumulative CFP decreased at %v", p.Spec.Name, res.Curve[i].Time)
			}
		}
		if res.Total() <= 0 {
			t.Errorf("%s: non-positive total %v", p.Spec.Name, res.Total())
		}
	}
}

func TestConsistentWithScenarioEvaluation(t *testing.T) {
	// Over a horizon of exactly N app lifetimes with no chip-lifetime
	// cap, the lifecycle total must match core.Evaluate.
	fpga, asic := platforms(t)
	fpga.ChipLifetime = 0
	for _, p := range []core.Platform{fpga, asic} {
		res, err := Run(Config{
			Platform:    p,
			AppLifetime: units.YearsOf(2),
			Horizon:     units.YearsOf(10),
			Volume:      1000,
			Samples:     100,
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Evaluate(p, core.Uniform("ref", 5, units.YearsOf(2), 1000, 0))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Total().Kilograms()
		ref := want.Total().Kilograms()
		if math.Abs(got-ref) > 1e-6*ref {
			t.Errorf("%s: lifecycle total %g, scenario total %g", p.Spec.Name, got, ref)
		}
	}
}

func TestUncappedFPGABuildsOnce(t *testing.T) {
	fpga, _ := platforms(t)
	fpga.ChipLifetime = 0
	res, err := Run(Config{
		Platform:    fpga,
		AppLifetime: units.YearsOf(1),
		Horizon:     units.YearsOf(40),
		Volume:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	hw := 0
	for _, e := range res.Events {
		if e.Kind == EventHardware {
			hw++
		}
	}
	if hw != 1 {
		t.Errorf("uncapped FPGA hardware events: %d, want 1", hw)
	}
}

func TestConfigValidation(t *testing.T) {
	fpga, _ := platforms(t)
	good := Config{Platform: fpga, AppLifetime: units.YearsOf(1), Horizon: units.YearsOf(5), Volume: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("good config: %v", err)
	}
	bad := []Config{
		{Platform: core.Platform{}, AppLifetime: units.YearsOf(1), Horizon: units.YearsOf(5), Volume: 10},
		{Platform: fpga, AppLifetime: 0, Horizon: units.YearsOf(5), Volume: 10},
		{Platform: fpga, AppLifetime: units.YearsOf(1), Horizon: 0, Volume: 10},
		{Platform: fpga, AppLifetime: units.YearsOf(1), Horizon: units.YearsOf(5), Volume: 0},
		{Platform: fpga, AppLifetime: units.YearsOf(1), Horizon: units.YearsOf(5), Volume: 10, Samples: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
		if _, err := Run(c); err == nil {
			t.Errorf("case %d: Run should fail", i)
		}
	}
}

func TestCrossoverTimes(t *testing.T) {
	mk := func(vals ...float64) []Point {
		pts := make([]Point, len(vals))
		for i, v := range vals {
			pts[i] = Point{Time: units.YearsOf(float64(i)), Cumulative: units.Kilograms(v)}
		}
		return pts
	}
	// a starts below b, crosses between t=1 and t=2, crosses back
	// between t=3 and t=4.
	a := mk(0, 1, 3, 5, 5)
	b := mk(1, 2, 2, 4, 6)
	xs, err := CrossoverTimes(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 2 {
		t.Fatalf("crossings: %v", xs)
	}
	if math.Abs(xs[0].Years()-1.5) > 1e-9 || math.Abs(xs[1].Years()-3.5) > 1e-9 {
		t.Errorf("crossing times: %v", xs)
	}
	// Touching at a sample counts once.
	c := mk(0, 2, 4)
	d := mk(1, 2, 3)
	xs, err = CrossoverTimes(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 1 || xs[0].Years() != 1 {
		t.Errorf("touch crossing: %v", xs)
	}
	// Identical curves: no crossings.
	xs, err = CrossoverTimes(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 0 {
		t.Errorf("identical curves crossed: %v", xs)
	}
	// Errors.
	if _, err := CrossoverTimes(a, mk(1, 2)); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := CrossoverTimes(mk(1), mk(1)); err == nil {
		t.Error("single sample must error")
	}
	shifted := mk(1, 2, 3)
	shifted[1].Time = units.YearsOf(9)
	if _, err := CrossoverTimes(mk(1, 2, 3), shifted); err == nil {
		t.Error("misaligned times must error")
	}
}

// curveAt returns the cumulative value at the sample nearest to t.
func curveAt(r Result, t float64) units.Mass {
	best := r.Curve[0]
	for _, p := range r.Curve {
		if math.Abs(p.Time.Years()-t) < math.Abs(best.Time.Years()-t) {
			best = p
		}
	}
	return best.Cumulative
}
