// Package lifecycle simulates cumulative carbon over wall-clock time:
// the paper's experiment E (Fig. 9), where an FPGA fleet with a finite
// chip lifetime must be remanufactured every 15 years (visible jumps in
// cumulative CFP) while ASICs are remanufactured at every application
// change regardless.
//
// The simulation is event-based: embodied carbon lands as step events
// (design at time zero, hardware at fleet builds, application
// development at application starts) and operational carbon accrues
// continuously between events.
package lifecycle

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"greenfpga/internal/core"
	"greenfpga/internal/units"
)

// EventKind labels a step event on the timeline.
type EventKind string

// Event kinds.
const (
	// EventDesign is the one-time (per hardware design) design CFP.
	EventDesign EventKind = "design"
	// EventHardware is a fleet manufacture (manufacturing + packaging
	// + end-of-life for every device built).
	EventHardware EventKind = "hardware"
	// EventAppDev is an application's development + reconfiguration.
	EventAppDev EventKind = "app-dev"
)

// Event is one step emission on the timeline.
type Event struct {
	// Time is when the emission lands.
	Time units.Years
	// Kind labels the emission.
	Kind EventKind
	// Carbon is the step amount.
	Carbon units.Mass
	// Note describes the event for reports.
	Note string
}

// Config describes a Fig. 9-style run.
type Config struct {
	// Platform is the hardware under study; its ChipLifetime drives
	// the remanufacture jumps.
	Platform core.Platform
	// AppLifetime is each application's T_i; applications run back to
	// back from time zero.
	AppLifetime units.Years
	// Horizon is the simulated wall-clock span.
	Horizon units.Years
	// Volume is N_vol deployment units.
	Volume float64
	// SizeGates is the per-application size (zero: fits one device).
	SizeGates float64
	// Samples is the number of curve points (default 200).
	Samples int
}

// Point is one sample of the cumulative curve.
type Point struct {
	// Time is the sample position.
	Time units.Years
	// Cumulative is the total CFP emitted up to Time.
	Cumulative units.Mass
}

// Result is the full simulation output.
type Result struct {
	// Platform names the simulated hardware.
	Platform string
	// Events lists every step emission in time order.
	Events []Event
	// OperationRate is the continuous emission rate (per year) while
	// deployed.
	OperationRate units.Mass
	// Curve is the sampled cumulative CFP.
	Curve []Point
}

// Total is the cumulative CFP at the horizon.
func (r Result) Total() units.Mass {
	if len(r.Curve) == 0 {
		return 0
	}
	return r.Curve[len(r.Curve)-1].Cumulative
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	if c.AppLifetime.Years() <= 0 {
		return fmt.Errorf("lifecycle: app lifetime must be positive, got %v", c.AppLifetime)
	}
	if c.Horizon.Years() <= 0 {
		return fmt.Errorf("lifecycle: horizon must be positive, got %v", c.Horizon)
	}
	if c.Volume <= 0 {
		return fmt.Errorf("lifecycle: volume must be positive, got %g", c.Volume)
	}
	if c.Samples < 0 {
		return fmt.Errorf("lifecycle: negative sample count %d", c.Samples)
	}
	return nil
}

// Run simulates the timeline.
func Run(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	p := c.Platform
	dc, err := p.DeviceCost()
	if err != nil {
		return Result{}, err
	}
	des, err := p.DesignCFP()
	if err != nil {
		return Result{}, err
	}
	opAnnual, err := p.AnnualOperationCarbon()
	if err != nil {
		return Result{}, err
	}
	ad := p.AppDevProfile()
	perApp, err := ad.PerApplication()
	if err != nil {
		return Result{}, err
	}
	perCfg, err := ad.PerConfiguration()
	if err != nil {
		return Result{}, err
	}
	nDev, err := p.Spec.Required(c.SizeGates)
	if err != nil {
		return Result{}, err
	}
	devices := c.Volume * float64(nDev)
	perFleet := dc.Total().Scale(devices)

	res := Result{
		Platform:      p.Spec.Name,
		OperationRate: opAnnual.Scale(devices),
	}

	horizon := c.Horizon.Years()
	appLife := c.AppLifetime.Years()
	nApps := int(math.Ceil(horizon / appLife))

	if p.Spec.Kind.Policy().Reusable {
		// A reusable fleet (FPGA, GPU, CPU): one design; hardware at
		// t=0 and at chip-lifetime multiples; app-dev + full-fleet
		// reconfiguration at each app start.
		res.Events = append(res.Events,
			Event{Time: 0, Kind: EventDesign, Carbon: des,
				Note: fmt.Sprintf("%s design", strings.ToUpper(string(p.Spec.Kind)))},
		)
		life := p.ChipLifetime.Years()
		gen := 0
		for t := 0.0; t < horizon; {
			gen++
			res.Events = append(res.Events, Event{
				Time: units.YearsOf(t), Kind: EventHardware, Carbon: perFleet,
				Note: fmt.Sprintf("fleet generation %d (%g devices)", gen, devices),
			})
			if life <= 0 {
				break
			}
			t += life
		}
		for k := 0; k < nApps; k++ {
			res.Events = append(res.Events, Event{
				Time: units.YearsOf(float64(k) * appLife), Kind: EventAppDev,
				Carbon: perApp + perCfg.Scale(devices),
				Note:   fmt.Sprintf("application %d development + reconfiguration", k+1),
			})
		}
	} else {
		// ASICs: every application change pays design + hardware;
		// chips never outlive the application here (the paper's
		// setting), unless the chip lifetime is shorter.
		for k := 0; k < nApps; k++ {
			start := float64(k) * appLife
			res.Events = append(res.Events, Event{
				Time: units.YearsOf(start), Kind: EventDesign, Carbon: des,
				Note: fmt.Sprintf("ASIC design for application %d", k+1),
			})
			gens := 1
			if p.ChipLifetime > 0 && appLife > p.ChipLifetime.Years() {
				gens = int(math.Ceil(appLife / p.ChipLifetime.Years()))
			}
			for g := 0; g < gens; g++ {
				res.Events = append(res.Events, Event{
					Time: units.YearsOf(start + float64(g)*p.ChipLifetime.Years()),
					Kind: EventHardware, Carbon: perFleet,
					Note: fmt.Sprintf("ASIC volume for application %d", k+1),
				})
			}
			if perApp > 0 || perCfg > 0 {
				res.Events = append(res.Events, Event{
					Time: units.YearsOf(start), Kind: EventAppDev,
					Carbon: perApp + perCfg.Scale(devices),
					Note:   fmt.Sprintf("application %d bring-up", k+1),
				})
			}
		}
	}
	sort.SliceStable(res.Events, func(i, j int) bool {
		return res.Events[i].Time < res.Events[j].Time
	})

	samples := c.Samples
	if samples == 0 {
		samples = 200
	}
	res.Curve = sampleCurve(res.Events, res.OperationRate, horizon, samples)
	return res, nil
}

// CrossoverTimes locates the times where two cumulative curves cross —
// the paper's experiment E observes the ImgProc domain gaining multiple
// A2F and F2A points as FPGA fleet rebuys land. Both curves must share
// their sample times; crossings are linearly interpolated between
// samples, and a crossing exactly on a sample is reported once.
func CrossoverTimes(a, b []Point) ([]units.Years, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("lifecycle: curves have %d and %d samples", len(a), len(b))
	}
	if len(a) < 2 {
		return nil, fmt.Errorf("lifecycle: need at least two samples, got %d", len(a))
	}
	for i := range a {
		if a[i].Time != b[i].Time {
			return nil, fmt.Errorf("lifecycle: sample %d times differ (%v vs %v)",
				i, a[i].Time, b[i].Time)
		}
	}
	var out []units.Years
	for i := 1; i < len(a); i++ {
		d0 := a[i-1].Cumulative.Kilograms() - b[i-1].Cumulative.Kilograms()
		d1 := a[i].Cumulative.Kilograms() - b[i].Cumulative.Kilograms()
		switch {
		case d0 == 0 && d1 == 0:
			// Identical over the span; not a crossing.
		case d1 == 0:
			// Lands exactly on the next sample; the next iteration's
			// d0 == 0 avoids double counting.
			out = append(out, a[i].Time)
		case d0 == 0:
			// Counted by the previous iteration (or the curves started
			// equal, which is not a crossing).
		case (d0 > 0) != (d1 > 0):
			t := d0 / (d0 - d1)
			t0, t1 := a[i-1].Time.Years(), a[i].Time.Years()
			out = append(out, units.YearsOf(t0+t*(t1-t0)))
		}
	}
	return out, nil
}

// sampleCurve evaluates the cumulative CFP at evenly spaced times,
// always including the horizon endpoint.
func sampleCurve(events []Event, opRate units.Mass, horizon float64, samples int) []Point {
	pts := make([]Point, 0, samples+1)
	for i := 0; i <= samples; i++ {
		t := horizon * float64(i) / float64(samples)
		var c units.Mass
		for _, e := range events {
			if e.Time.Years() <= t {
				c += e.Carbon
			}
		}
		c += opRate.Scale(t)
		pts = append(pts, Point{Time: units.YearsOf(t), Cumulative: c})
	}
	return pts
}
