package grid

import (
	"fmt"

	"greenfpga/internal/units"
)

// IntensityTrace is a 24-hour carbon-intensity profile of a grid.
// Solar-heavy grids dip at midday; evening peaks lean on gas and coal.
// Pairing an intensity trace with an hourly utilization trace captures
// carbon-aware scheduling: the same energy emits less when the work
// runs in the clean hours.
type IntensityTrace []units.CarbonIntensity

// Validate checks the trace.
func (it IntensityTrace) Validate() error {
	if len(it) != 24 {
		return fmt.Errorf("grid: intensity trace needs 24 hours, got %d", len(it))
	}
	for h, ci := range it {
		if ci < 0 {
			return fmt.Errorf("grid: hour %d has negative intensity %v", h, ci)
		}
	}
	return nil
}

// Mean is the time-averaged intensity.
func (it IntensityTrace) Mean() (units.CarbonIntensity, error) {
	if err := it.Validate(); err != nil {
		return 0, err
	}
	var sum float64
	for _, ci := range it {
		sum += ci.KgPerKWh()
	}
	return units.KgPerKWh(sum / 24), nil
}

// FlatIntensity builds a constant 24-hour trace.
func FlatIntensity(ci units.CarbonIntensity) IntensityTrace {
	it := make(IntensityTrace, 24)
	for h := range it {
		it[h] = ci
	}
	return it
}

// SolarDay builds a solar-influenced day: the base intensity dips by
// middayDip (0..1) across 10:00-16:00 with half-depth shoulders at
// 08:00-10:00 and 16:00-18:00, and rises by middayDip/2 across the
// evening peak (18:00-22:00) when gas fills the solar gap.
func SolarDay(base units.CarbonIntensity, middayDip float64) (IntensityTrace, error) {
	if middayDip < 0 || middayDip > 1 {
		return nil, fmt.Errorf("grid: midday dip %g outside [0,1]", middayDip)
	}
	it := make(IntensityTrace, 24)
	for h := range it {
		scale := 1.0
		switch {
		case h >= 10 && h < 16:
			scale = 1 - middayDip
		case (h >= 8 && h < 10) || (h >= 16 && h < 18):
			scale = 1 - middayDip/2
		case h >= 18 && h < 22:
			scale = 1 + middayDip/2
		}
		it[h] = base.Scale(scale)
	}
	return it, nil
}
