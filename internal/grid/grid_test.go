package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceIntensities(t *testing.T) {
	coal, err := Intensity(Coal)
	if err != nil {
		t.Fatal(err)
	}
	wind, err := Intensity(Wind)
	if err != nil {
		t.Fatal(err)
	}
	if coal.GramsPerKWh() != 820 || wind.GramsPerKWh() != 11 {
		t.Errorf("coal=%v wind=%v", coal, wind)
	}
	if _, err := Intensity("plutonium"); err == nil {
		t.Error("expected error for unknown source")
	}
	// All sources bracket the paper's Table 1 range of 11-820 g/kWh.
	for _, s := range Sources() {
		ci, err := Intensity(s)
		if err != nil {
			t.Fatal(err)
		}
		if ci.GramsPerKWh() < 10 || ci.GramsPerKWh() > 830 {
			t.Errorf("%s intensity %v outside plausible band", s, ci)
		}
	}
}

func TestRenewableClassification(t *testing.T) {
	for _, s := range []Source{Solar, Wind, Hydro, Nuclear, Geothermal} {
		if !Renewable(s) {
			t.Errorf("%s should be renewable", s)
		}
	}
	for _, s := range []Source{Coal, Gas, Oil, Biomass} {
		if Renewable(s) {
			t.Errorf("%s should not be renewable", s)
		}
	}
}

func TestMixNormalize(t *testing.T) {
	m := Mix{Coal: 2, Gas: 2}
	n, err := m.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n[Coal] != 0.5 || n[Gas] != 0.5 {
		t.Errorf("normalize: %v", n)
	}
	if _, err := (Mix{}).Normalize(); err == nil {
		t.Error("empty mix must error")
	}
	if _, err := (Mix{Coal: -1, Gas: 2}).Normalize(); err == nil {
		t.Error("negative share must error")
	}
	if _, err := (Mix{"diesel": 1}).Normalize(); err == nil {
		t.Error("unknown source must error")
	}
	if _, err := (Mix{Coal: 0}).Normalize(); err == nil {
		t.Error("zero-sum mix must error")
	}
}

func TestMixIntensity(t *testing.T) {
	m := Mix{Coal: 0.5, Wind: 0.5}
	ci, err := m.Intensity()
	if err != nil {
		t.Fatal(err)
	}
	want := (820.0 + 11.0) / 2
	if math.Abs(ci.GramsPerKWh()-want) > 1e-9 {
		t.Errorf("intensity %v, want %g g/kWh", ci, want)
	}
}

func TestRenewableFraction(t *testing.T) {
	m := Mix{Coal: 0.6, Wind: 0.3, Solar: 0.1}
	f, err := m.RenewableFraction()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.4) > 1e-12 {
		t.Errorf("renewable fraction %g, want 0.4", f)
	}
}

func TestWithRenewables(t *testing.T) {
	m := Mix{Coal: 0.8, Wind: 0.2}
	up, err := m.WithRenewables(0.6)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := up.RenewableFraction()
	if math.Abs(f-0.6) > 1e-9 {
		t.Errorf("target fraction %g, want 0.6", f)
	}
	// Raising renewables must lower intensity.
	before, _ := m.Intensity()
	after, _ := up.Intensity()
	if after >= before {
		t.Errorf("intensity should drop: before %v after %v", before, after)
	}
	// Already-met targets leave the mix unchanged.
	same, err := m.WithRenewables(0.1)
	if err != nil {
		t.Fatal(err)
	}
	sf, _ := same.RenewableFraction()
	if math.Abs(sf-0.2) > 1e-9 {
		t.Errorf("fraction changed when target already met: %g", sf)
	}
	// All-fossil mixes get a wind+solar blend.
	fossil := Mix{Coal: 1}
	green, err := fossil.WithRenewables(0.5)
	if err != nil {
		t.Fatal(err)
	}
	gf, _ := green.RenewableFraction()
	if math.Abs(gf-0.5) > 1e-9 {
		t.Errorf("fossil mix fraction %g, want 0.5", gf)
	}
	if _, err := m.WithRenewables(1.5); err == nil {
		t.Error("target > 1 must error")
	}
}

func TestRegions(t *testing.T) {
	if len(Regions()) < 5 {
		t.Fatalf("expected several preset regions, got %d", len(Regions()))
	}
	for _, r := range Regions() {
		m, err := ByRegion(r)
		if err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		ci, err := m.Intensity()
		if err != nil {
			t.Fatalf("%s intensity: %v", r, err)
		}
		if ci.GramsPerKWh() <= 0 || ci.GramsPerKWh() > 830 {
			t.Errorf("%s intensity %v implausible", r, ci)
		}
	}
	tw, _ := ByRegion(RegionTaiwan)
	is, _ := ByRegion(RegionIceland)
	twi, _ := tw.Intensity()
	isi, _ := is.Intensity()
	if twi <= isi {
		t.Errorf("taiwan (%v) should be dirtier than iceland (%v)", twi, isi)
	}
	if _, err := ByRegion("atlantis"); err == nil {
		t.Error("unknown region must error")
	}
}

func TestMixString(t *testing.T) {
	s := Mix{Wind: 0.25, Coal: 0.75}.String()
	if s != "coal:75% wind:25%" {
		t.Errorf("String: %q", s)
	}
}

// Property: a normalized mix's intensity is a convex combination, so it
// must lie between the min and max source intensities in the mix.
func TestQuickMixIntensityBounds(t *testing.T) {
	srcs := Sources()
	f := func(shares [4]uint8, idx [4]uint8) bool {
		m := Mix{}
		for i := range shares {
			s := srcs[int(idx[i])%len(srcs)]
			m[s] += float64(shares[i])
		}
		n, err := m.Normalize()
		if err != nil {
			return true // degenerate all-zero draw
		}
		ci, err := n.Intensity()
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for s := range n {
			v := sourceIntensity[s].KgPerKWh()
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return ci.KgPerKWh() >= lo-1e-12 && ci.KgPerKWh() <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: WithRenewables never increases carbon intensity.
func TestQuickWithRenewablesMonotone(t *testing.T) {
	f := func(coalShare, gasShare, windShare uint8, targetPct uint8) bool {
		m := Mix{
			Coal: float64(coalShare),
			Gas:  float64(gasShare),
			Wind: float64(windShare),
		}
		n, err := m.Normalize()
		if err != nil {
			return true
		}
		target := float64(targetPct%101) / 100
		up, err := n.WithRenewables(target)
		if err != nil {
			return false
		}
		before, _ := n.Intensity()
		after, _ := up.Intensity()
		return after.KgPerKWh() <= before.KgPerKWh()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
