// Package grid models the carbon intensity of electrical energy sources
// and regional grid mixes. The design-house intensity C_src,des and the
// use-phase intensity C_src,use of the GreenFPGA model (Table 1 of the
// paper: 30-700 gCO2/kWh) are produced here, as is the fab-location
// intensity consumed by the manufacturing model.
package grid

import (
	"fmt"
	"sort"
	"strings"

	"greenfpga/internal/units"
)

// Source identifies a primary energy source.
type Source string

// Primary energy sources with life-cycle carbon intensities. The values
// follow the IPCC/ACT figures used by architectural carbon models:
// they bracket the paper's 30-700 gCO2/kWh range.
const (
	Coal       Source = "coal"
	Gas        Source = "gas"
	Oil        Source = "oil"
	Biomass    Source = "biomass"
	Solar      Source = "solar"
	Wind       Source = "wind"
	Hydro      Source = "hydro"
	Nuclear    Source = "nuclear"
	Geothermal Source = "geothermal"
)

// sourceIntensity holds the per-source life-cycle carbon intensities in
// gCO2e/kWh.
var sourceIntensity = map[Source]units.CarbonIntensity{
	Coal:       units.GramsPerKWh(820),
	Gas:        units.GramsPerKWh(490),
	Oil:        units.GramsPerKWh(650),
	Biomass:    units.GramsPerKWh(230),
	Solar:      units.GramsPerKWh(41),
	Wind:       units.GramsPerKWh(11),
	Hydro:      units.GramsPerKWh(24),
	Nuclear:    units.GramsPerKWh(12),
	Geothermal: units.GramsPerKWh(38),
}

// Intensity reports the life-cycle carbon intensity of a single source.
func Intensity(s Source) (units.CarbonIntensity, error) {
	ci, ok := sourceIntensity[s]
	if !ok {
		return 0, fmt.Errorf("grid: unknown energy source %q", s)
	}
	return ci, nil
}

// Sources lists the known sources in deterministic order.
func Sources() []Source {
	out := make([]Source, 0, len(sourceIntensity))
	for s := range sourceIntensity {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Renewable reports whether the source counts toward the renewable
// fraction knob of the design and manufacturing models.
func Renewable(s Source) bool {
	switch s {
	case Solar, Wind, Hydro, Nuclear, Geothermal:
		return true
	}
	return false
}

// Mix is a blend of energy sources with fractional shares. Shares should
// sum to 1; Normalize enforces it.
type Mix map[Source]float64

// Normalize scales the shares so they sum to one. It returns an error if
// the mix is empty, has negative shares, or references unknown sources.
func (m Mix) Normalize() (Mix, error) {
	if len(m) == 0 {
		return nil, fmt.Errorf("grid: empty mix")
	}
	for s, f := range m {
		if _, ok := sourceIntensity[s]; !ok {
			return nil, fmt.Errorf("grid: unknown energy source %q in mix", s)
		}
		if f < 0 {
			return nil, fmt.Errorf("grid: negative share %g for %q", f, s)
		}
	}
	// Sum in deterministic source order so normalization (and every
	// model built on it) is bit-reproducible across calls.
	total := 0.0
	for _, s := range Sources() {
		total += m[s]
	}
	if total <= 0 {
		return nil, fmt.Errorf("grid: mix shares sum to zero")
	}
	out := make(Mix, len(m))
	for s, f := range m {
		out[s] = f / total
	}
	return out, nil
}

// Intensity reports the share-weighted carbon intensity of the mix.
// Summation follows the deterministic source order so repeated calls
// are bit-identical.
func (m Mix) Intensity() (units.CarbonIntensity, error) {
	norm, err := m.Normalize()
	if err != nil {
		return 0, err
	}
	var ci float64
	for _, s := range Sources() {
		if f, ok := norm[s]; ok {
			ci += f * sourceIntensity[s].KgPerKWh()
		}
	}
	return units.KgPerKWh(ci), nil
}

// RenewableFraction reports the share of the mix supplied by renewable
// (including nuclear) sources.
func (m Mix) RenewableFraction() (float64, error) {
	norm, err := m.Normalize()
	if err != nil {
		return 0, err
	}
	var f float64
	for _, s := range Sources() {
		if Renewable(s) {
			f += norm[s]
		}
	}
	return f, nil
}

// WithRenewables returns a copy of the mix whose renewable share is
// raised to at least target (0..1) by displacing fossil sources
// proportionally with the mix's existing renewable blend (or wind+solar
// when the mix has none). This models power-purchase agreements reported
// in the industry sustainability reports the paper cites.
func (m Mix) WithRenewables(target float64) (Mix, error) {
	if target < 0 || target > 1 {
		return nil, fmt.Errorf("grid: renewable target %g outside [0,1]", target)
	}
	norm, err := m.Normalize()
	if err != nil {
		return nil, err
	}
	cur, _ := norm.RenewableFraction()
	if cur >= target {
		return norm, nil
	}
	// Split the mix into renewable and fossil components.
	ren := make(Mix)
	for s, f := range norm {
		if Renewable(s) {
			ren[s] = f
		}
	}
	if len(ren) == 0 {
		ren = Mix{Wind: 0.5, Solar: 0.5}
	}
	renNorm, _ := ren.Normalize()
	out := make(Mix, len(norm)+2)
	scale := (1 - target) / (1 - cur)
	for s, f := range norm {
		if !Renewable(s) {
			out[s] = f * scale
		}
	}
	for s, f := range renNorm {
		out[s] += f * target
	}
	return out.Normalize()
}

// String renders the mix in deterministic order, e.g.
// "coal:45% gas:30% nuclear:25%".
func (m Mix) String() string {
	keys := make([]string, 0, len(m))
	for s := range m {
		keys = append(keys, string(s))
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%.0f%%", k, m[Source(k)]*100))
	}
	return strings.Join(parts, " ")
}

// Region identifies a preset grid mix.
type Region string

// Preset regions. The mixes are coarse 2022-vintage national blends of
// the countries hosting fabs and design houses in the paper's sources.
const (
	RegionTaiwan    Region = "taiwan"
	RegionUSA       Region = "usa"
	RegionEurope    Region = "europe"
	RegionKorea     Region = "korea"
	RegionJapan     Region = "japan"
	RegionIceland   Region = "iceland"
	RegionWorld     Region = "world"
	RegionRenewable Region = "renewable"
)

var regionMixes = map[Region]Mix{
	RegionTaiwan:    {Coal: 0.44, Gas: 0.38, Nuclear: 0.09, Hydro: 0.03, Solar: 0.03, Wind: 0.03},
	RegionUSA:       {Coal: 0.20, Gas: 0.40, Nuclear: 0.19, Hydro: 0.06, Wind: 0.10, Solar: 0.05},
	RegionEurope:    {Coal: 0.16, Gas: 0.20, Nuclear: 0.22, Hydro: 0.17, Wind: 0.17, Solar: 0.08},
	RegionKorea:     {Coal: 0.34, Gas: 0.29, Nuclear: 0.29, Hydro: 0.01, Solar: 0.05, Wind: 0.02},
	RegionJapan:     {Coal: 0.31, Gas: 0.34, Nuclear: 0.08, Hydro: 0.08, Solar: 0.10, Oil: 0.09},
	RegionIceland:   {Hydro: 0.70, Geothermal: 0.30},
	RegionWorld:     {Coal: 0.36, Gas: 0.23, Nuclear: 0.09, Hydro: 0.15, Wind: 0.07, Solar: 0.05, Oil: 0.03, Biomass: 0.02},
	RegionRenewable: {Wind: 0.4, Solar: 0.3, Hydro: 0.3},
}

// ByRegion returns the preset mix for a region.
func ByRegion(r Region) (Mix, error) {
	m, ok := regionMixes[r]
	if !ok {
		return nil, fmt.Errorf("grid: unknown region %q", r)
	}
	return m.Normalize()
}

// Regions lists the preset regions in deterministic order.
func Regions() []Region {
	out := make([]Region, 0, len(regionMixes))
	for r := range regionMixes {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
