package grid

import (
	"math"
	"testing"

	"greenfpga/internal/units"
)

func TestIntensityTraceValidate(t *testing.T) {
	if err := FlatIntensity(units.GramsPerKWh(400)).Validate(); err != nil {
		t.Errorf("flat trace: %v", err)
	}
	if (IntensityTrace{units.GramsPerKWh(400)}).Validate() == nil {
		t.Error("short trace must error")
	}
	bad := FlatIntensity(units.GramsPerKWh(400))
	bad[5] = units.KgPerKWh(-1)
	if bad.Validate() == nil {
		t.Error("negative intensity must error")
	}
}

func TestIntensityMean(t *testing.T) {
	it := FlatIntensity(units.GramsPerKWh(500))
	m, err := it.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.GramsPerKWh()-500) > 1e-9 {
		t.Errorf("mean %v", m)
	}
	if _, err := (IntensityTrace{}).Mean(); err == nil {
		t.Error("invalid trace must error")
	}
}

func TestSolarDayShape(t *testing.T) {
	base := units.GramsPerKWh(400)
	it, err := SolarDay(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Validate(); err != nil {
		t.Fatal(err)
	}
	// Midday dips to half, night stays at base, evening peaks above.
	if math.Abs(it[12].GramsPerKWh()-200) > 1e-9 {
		t.Errorf("midday %v, want 200 g/kWh", it[12])
	}
	if math.Abs(it[2].GramsPerKWh()-400) > 1e-9 {
		t.Errorf("night %v, want 400 g/kWh", it[2])
	}
	if math.Abs(it[20].GramsPerKWh()-500) > 1e-9 {
		t.Errorf("evening peak %v, want 500 g/kWh", it[20])
	}
	if math.Abs(it[9].GramsPerKWh()-300) > 1e-9 {
		t.Errorf("shoulder %v, want 300 g/kWh", it[9])
	}
	if _, err := SolarDay(base, 1.5); err == nil {
		t.Error("dip > 1 must error")
	}
	if _, err := SolarDay(base, -0.1); err == nil {
		t.Error("negative dip must error")
	}
	// Zero dip reduces to the flat trace.
	flat, _ := SolarDay(base, 0)
	for h := range flat {
		if flat[h] != base {
			t.Fatalf("zero-dip hour %d: %v", h, flat[h])
		}
	}
}
