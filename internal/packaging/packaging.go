// Package packaging implements the package-manufacture and assembly
// carbon model (paper §3.2(3)). The paper uses the monolithic package
// model of ECO-CHIP [5]; this implementation also provides the 2.5D
// silicon-interposer variant from the same source as an extension, so
// chiplet-style FPGAs can be studied as an ablation.
//
// The monolithic model charges a substrate-manufacture carbon per unit
// package area plus an assembly-energy carbon, with the package area a
// multiple of the die area. The interposer variant adds the silicon
// interposer (manufactured on a mature node) and per-die bonding energy.
package packaging

import (
	"fmt"

	"greenfpga/internal/grid"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
)

// Style selects the package construction.
type Style string

// Supported package styles.
const (
	// Monolithic is a single-die laminate package (paper default).
	Monolithic Style = "monolithic"
	// Interposer25D is a 2.5D silicon-interposer package (extension).
	Interposer25D Style = "interposer-2.5d"
)

// Model coefficients. These are ECO-CHIP-magnitude defaults; all are
// overridable through Inputs.
const (
	// DefaultPackageAreaFactor is package area / total die area.
	DefaultPackageAreaFactor = 2.0
	// DefaultSubstrateCarbonKgPerCM2 is laminate substrate manufacture
	// carbon per package area.
	DefaultSubstrateCarbonKgPerCM2 = 0.10
	// DefaultAssemblyEnergyKWhPerCM2 is pick/place/bond/test energy per
	// package area.
	DefaultAssemblyEnergyKWhPerCM2 = 0.15
	// DefaultBondingEnergyKWhPerDie is the per-die hybrid-bonding energy
	// for 2.5D assembly.
	DefaultBondingEnergyKWhPerDie = 0.8
	// InterposerAreaFactor is interposer area / total die area.
	InterposerAreaFactor = 1.1
)

// Inputs describes one package.
type Inputs struct {
	// Style selects monolithic (default) or 2.5D assembly.
	Style Style
	// DieAreas are the silicon dice inside the package; monolithic
	// packages hold exactly one.
	DieAreas []units.Area
	// PackageAreaFactor overrides DefaultPackageAreaFactor when > 0.
	PackageAreaFactor float64
	// SubstrateCarbonKgPerCM2 overrides the substrate coefficient when > 0.
	SubstrateCarbonKgPerCM2 float64
	// AssemblyEnergyKWhPerCM2 overrides the assembly coefficient when > 0.
	AssemblyEnergyKWhPerCM2 float64
	// AssemblyMix powers the assembly line; nil means the Taiwan preset.
	AssemblyMix grid.Mix
	// InterposerNode manufactures the interposer for 2.5D packages;
	// a zero value means the mature 28nm table entry.
	InterposerNode technode.Node
}

// Result is the per-package carbon, split by source.
type Result struct {
	// SubstrateCarbon is laminate manufacture.
	SubstrateCarbon units.Mass
	// AssemblyCarbon is assembly and test energy.
	AssemblyCarbon units.Mass
	// InterposerCarbon is the silicon interposer (2.5D only).
	InterposerCarbon units.Mass
	// PackageArea is the resolved package footprint.
	PackageArea units.Area
}

// Total is the complete packaging footprint.
func (r Result) Total() units.Mass {
	return r.SubstrateCarbon + r.AssemblyCarbon + r.InterposerCarbon
}

// CFP evaluates the packaging model.
func CFP(in Inputs) (Result, error) {
	style := in.Style
	if style == "" {
		style = Monolithic
	}
	if style != Monolithic && style != Interposer25D {
		return Result{}, fmt.Errorf("packaging: unknown style %q", style)
	}
	if len(in.DieAreas) == 0 {
		return Result{}, fmt.Errorf("packaging: no dice")
	}
	if style == Monolithic && len(in.DieAreas) != 1 {
		return Result{}, fmt.Errorf("packaging: monolithic package holds one die, got %d", len(in.DieAreas))
	}
	var totalDie units.Area
	for _, a := range in.DieAreas {
		if a.MM2() <= 0 {
			return Result{}, fmt.Errorf("packaging: die area must be positive, got %v", a)
		}
		totalDie += a
	}

	factor := in.PackageAreaFactor
	if factor == 0 {
		factor = DefaultPackageAreaFactor
	}
	if factor < 1 {
		return Result{}, fmt.Errorf("packaging: package area factor %g must be >= 1", factor)
	}
	substrate := in.SubstrateCarbonKgPerCM2
	if substrate == 0 {
		substrate = DefaultSubstrateCarbonKgPerCM2
	}
	if substrate < 0 {
		return Result{}, fmt.Errorf("packaging: negative substrate coefficient %g", substrate)
	}
	assemblyE := in.AssemblyEnergyKWhPerCM2
	if assemblyE == 0 {
		assemblyE = DefaultAssemblyEnergyKWhPerCM2
	}
	if assemblyE < 0 {
		return Result{}, fmt.Errorf("packaging: negative assembly coefficient %g", assemblyE)
	}

	mix := in.AssemblyMix
	if mix == nil {
		var err error
		mix, err = grid.ByRegion(grid.RegionTaiwan)
		if err != nil {
			return Result{}, err
		}
	}
	ci, err := mix.Intensity()
	if err != nil {
		return Result{}, err
	}

	pkgArea := totalDie.Scale(factor)
	res := Result{
		SubstrateCarbon: units.KgPerCM2(substrate).Times(pkgArea),
		AssemblyCarbon:  units.KWhPerCM2(assemblyE).Times(pkgArea).Carbon(ci),
		PackageArea:     pkgArea,
	}

	if style == Interposer25D {
		node := in.InterposerNode
		if node.Name == "" {
			node, err = technode.ByName("28nm")
			if err != nil {
				return Result{}, err
			}
		}
		if err := node.Validate(); err != nil {
			return Result{}, err
		}
		interArea := totalDie.Scale(InterposerAreaFactor)
		interEnergy := node.EPA.Times(interArea)
		res.InterposerCarbon = interEnergy.Carbon(ci) +
			node.GPA.Times(interArea) + node.MPANew.Times(interArea) +
			units.KWh(DefaultBondingEnergyKWhPerDie*float64(len(in.DieAreas))).Carbon(ci)
	}
	return res, nil
}
