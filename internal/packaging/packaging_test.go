package packaging

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/grid"
	"greenfpga/internal/units"
)

func TestMonolithicHandValues(t *testing.T) {
	// 1 cm^2 die, factor 2 => 2 cm^2 package on a pure-coal line.
	res, err := CFP(Inputs{
		DieAreas:    []units.Area{units.CM2(1)},
		AssemblyMix: grid.Mix{grid.Coal: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PackageArea.CM2()-2) > 1e-12 {
		t.Errorf("package area %v, want 2 cm^2", res.PackageArea)
	}
	wantSubstrate := 0.10 * 2
	if math.Abs(res.SubstrateCarbon.Kilograms()-wantSubstrate) > 1e-12 {
		t.Errorf("substrate %v, want %g kg", res.SubstrateCarbon, wantSubstrate)
	}
	wantAssembly := 0.15 * 2 * 0.820
	if math.Abs(res.AssemblyCarbon.Kilograms()-wantAssembly) > 1e-12 {
		t.Errorf("assembly %v, want %g kg", res.AssemblyCarbon, wantAssembly)
	}
	if res.InterposerCarbon != 0 {
		t.Error("monolithic package must have no interposer carbon")
	}
	if math.Abs(res.Total().Kilograms()-(wantSubstrate+wantAssembly)) > 1e-12 {
		t.Errorf("total %v", res.Total())
	}
}

func TestMonolithicDefaults(t *testing.T) {
	res, err := CFP(Inputs{DieAreas: []units.Area{units.MM2(150)}})
	if err != nil {
		t.Fatal(err)
	}
	// A 150 mm^2 die should land in the sub-kilogram band.
	if res.Total().Kilograms() < 0.1 || res.Total().Kilograms() > 2 {
		t.Errorf("monolithic 150mm2 total %v outside 0.1-2 kg band", res.Total())
	}
}

func TestInterposerAddsCarbon(t *testing.T) {
	dies := []units.Area{units.MM2(100), units.MM2(100), units.MM2(50)}
	mono, err := CFP(Inputs{DieAreas: dies[:1]})
	if err != nil {
		t.Fatal(err)
	}
	chiplet, err := CFP(Inputs{Style: Interposer25D, DieAreas: dies})
	if err != nil {
		t.Fatal(err)
	}
	if chiplet.InterposerCarbon <= 0 {
		t.Error("2.5D package must charge interposer carbon")
	}
	if chiplet.Total() <= mono.Total() {
		t.Errorf("2.5D total %v should exceed monolithic %v", chiplet.Total(), mono.Total())
	}
}

func TestCustomCoefficients(t *testing.T) {
	base, _ := CFP(Inputs{DieAreas: []units.Area{units.CM2(1)}})
	custom, err := CFP(Inputs{
		DieAreas:                []units.Area{units.CM2(1)},
		PackageAreaFactor:       3,
		SubstrateCarbonKgPerCM2: 0.2,
		AssemblyEnergyKWhPerCM2: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if custom.Total() <= base.Total() {
		t.Errorf("larger coefficients must grow footprint: %v vs %v", custom.Total(), base.Total())
	}
	if math.Abs(custom.PackageArea.CM2()-3) > 1e-12 {
		t.Errorf("package area %v, want 3 cm^2", custom.PackageArea)
	}
}

func TestCFPErrors(t *testing.T) {
	good := []units.Area{units.MM2(100)}
	cases := []Inputs{
		{Style: "flip-chip-bga-9000", DieAreas: good},
		{DieAreas: nil},
		{DieAreas: []units.Area{units.MM2(100), units.MM2(100)}}, // monolithic, 2 dice
		{DieAreas: []units.Area{units.MM2(0)}},
		{DieAreas: good, PackageAreaFactor: 0.5},
		{DieAreas: good, SubstrateCarbonKgPerCM2: -1},
		{DieAreas: good, AssemblyEnergyKWhPerCM2: -1},
		{DieAreas: good, AssemblyMix: grid.Mix{"diesel": 1}},
	}
	for i, in := range cases {
		if _, err := CFP(in); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Property: packaging carbon scales linearly with die area for
// monolithic packages.
func TestQuickLinearInArea(t *testing.T) {
	f := func(raw float64) bool {
		a := 1 + math.Mod(math.Abs(raw), 500)
		if math.IsNaN(a) {
			return true
		}
		one, err1 := CFP(Inputs{DieAreas: []units.Area{units.MM2(a)}})
		two, err2 := CFP(Inputs{DieAreas: []units.Area{units.MM2(2 * a)}})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(two.Total().Kilograms()-2*one.Total().Kilograms()) <
			1e-9*math.Max(1, two.Total().Kilograms())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
