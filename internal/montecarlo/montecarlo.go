// Package montecarlo propagates input-parameter uncertainty through
// the GreenFPGA models. The paper's §5 stresses that its outputs are
// only as accurate as coarse, partly proprietary inputs (Table 1 lists
// ranges, not values); this package quantifies that: draw parameters
// from their ranges, evaluate the model, and report percentiles plus a
// tornado-style sensitivity ranking.
//
// All randomness is seeded and the evaluation order fixed, so runs are
// exactly reproducible.
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a one-dimensional parameter distribution.
type Dist interface {
	// Sample draws one value.
	Sample(r *rand.Rand) float64
	// Quantile inverts the CDF at p in [0,1].
	Quantile(p float64) float64
	// Mean is the distribution mean.
	Mean() float64
}

// Uniform is the flat distribution on [Lo, Hi] — the natural reading
// of Table 1's ranges.
type Uniform struct {
	// Lo and Hi bound the range.
	Lo, Hi float64
}

// Sample draws uniformly.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Quantile inverts the CDF.
func (u Uniform) Quantile(p float64) float64 { return u.Lo + clamp01(p)*(u.Hi-u.Lo) }

// Mean is the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Triangular is the triangular distribution on [Lo, Hi] with the given
// Mode — useful when a nominal value is known inside a range.
type Triangular struct {
	// Lo, Mode and Hi are the minimum, peak and maximum.
	Lo, Mode, Hi float64
}

// Sample draws by inverse CDF.
func (t Triangular) Sample(r *rand.Rand) float64 { return t.Quantile(r.Float64()) }

// Quantile inverts the CDF.
func (t Triangular) Quantile(p float64) float64 {
	p = clamp01(p)
	if t.Hi == t.Lo {
		return t.Lo
	}
	fc := (t.Mode - t.Lo) / (t.Hi - t.Lo)
	if p < fc {
		return t.Lo + math.Sqrt(p*(t.Hi-t.Lo)*(t.Mode-t.Lo))
	}
	return t.Hi - math.Sqrt((1-p)*(t.Hi-t.Lo)*(t.Hi-t.Mode))
}

// Mean is (Lo+Mode+Hi)/3.
func (t Triangular) Mean() float64 { return (t.Lo + t.Mode + t.Hi) / 3 }

// Fixed is a degenerate point distribution.
type Fixed float64

// Sample always returns the value.
func (f Fixed) Sample(*rand.Rand) float64 { return float64(f) }

// Quantile always returns the value.
func (f Fixed) Quantile(float64) float64 { return float64(f) }

// Mean is the value.
func (f Fixed) Mean() float64 { return float64(f) }

// Param is a named uncertain input.
type Param struct {
	// Name keys the draw map handed to the model.
	Name string
	// Dist is the parameter's distribution.
	Dist Dist
}

// Model evaluates the quantity of interest for one parameter draw.
type Model func(draw map[string]float64) (float64, error)

// Config describes one Monte-Carlo study.
type Config struct {
	// Params are the uncertain inputs.
	Params []Param
	// Samples is the number of draws (default 1000).
	Samples int
	// Seed makes the run reproducible.
	Seed int64
	// Model maps a draw to the output quantity.
	Model Model
}

// Sensitivity is one tornado-chart entry.
type Sensitivity struct {
	// Param is the input name.
	Param string
	// Low and High are the model outputs with the parameter pinned at
	// its 10th and 90th percentile (all others at their means).
	Low, High float64
}

// Swing is the absolute output range attributable to the parameter.
func (s Sensitivity) Swing() float64 { return math.Abs(s.High - s.Low) }

// Result summarizes a study.
type Result struct {
	// Samples are the sorted model outputs.
	Samples []float64
	// Mean and StdDev summarize the outputs.
	Mean, StdDev float64
	// Tornado ranks parameters by swing, largest first.
	Tornado []Sensitivity
}

// Percentile interpolates the p-th percentile (p in [0,100]).
func (r Result) Percentile(p float64) float64 {
	if len(r.Samples) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return r.Samples[0]
	}
	if p >= 100 {
		return r.Samples[len(r.Samples)-1]
	}
	pos := p / 100 * float64(len(r.Samples)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(r.Samples) {
		return r.Samples[i]
	}
	return r.Samples[i]*(1-frac) + r.Samples[i+1]*frac
}

// Run executes the study.
func Run(cfg Config) (Result, error) {
	if cfg.Model == nil {
		return Result{}, fmt.Errorf("montecarlo: nil model")
	}
	if len(cfg.Params) == 0 {
		return Result{}, fmt.Errorf("montecarlo: no parameters")
	}
	seen := map[string]bool{}
	for _, p := range cfg.Params {
		if p.Name == "" {
			return Result{}, fmt.Errorf("montecarlo: unnamed parameter")
		}
		if p.Dist == nil {
			return Result{}, fmt.Errorf("montecarlo: parameter %q has no distribution", p.Name)
		}
		if seen[p.Name] {
			return Result{}, fmt.Errorf("montecarlo: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
	}
	samples := cfg.Samples
	if samples == 0 {
		samples = 1000
	}
	if samples < 0 {
		return Result{}, fmt.Errorf("montecarlo: negative sample count %d", samples)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Samples: make([]float64, 0, samples)}
	draw := make(map[string]float64, len(cfg.Params))
	var sum, sumSq float64
	for i := 0; i < samples; i++ {
		for _, p := range cfg.Params {
			draw[p.Name] = p.Dist.Sample(rng)
		}
		v, err := cfg.Model(draw)
		if err != nil {
			return Result{}, fmt.Errorf("montecarlo: sample %d: %w", i, err)
		}
		res.Samples = append(res.Samples, v)
		sum += v
		sumSq += v * v
	}
	sort.Float64s(res.Samples)
	n := float64(samples)
	res.Mean = sum / n
	if variance := sumSq/n - res.Mean*res.Mean; variance > 0 {
		res.StdDev = math.Sqrt(variance)
	}

	// Tornado: vary one parameter across its 10-90 band with the rest
	// at their means.
	means := make(map[string]float64, len(cfg.Params))
	for _, p := range cfg.Params {
		means[p.Name] = p.Dist.Mean()
	}
	for _, p := range cfg.Params {
		entry := Sensitivity{Param: p.Name}
		for _, q := range []float64{0.1, 0.9} {
			d := make(map[string]float64, len(means))
			for k, v := range means {
				d[k] = v
			}
			d[p.Name] = p.Dist.Quantile(q)
			v, err := cfg.Model(d)
			if err != nil {
				return Result{}, fmt.Errorf("montecarlo: tornado %s@%g: %w", p.Name, q, err)
			}
			if q == 0.1 {
				entry.Low = v
			} else {
				entry.High = v
			}
		}
		res.Tornado = append(res.Tornado, entry)
	}
	sort.SliceStable(res.Tornado, func(i, j int) bool {
		return res.Tornado[i].Swing() > res.Tornado[j].Swing()
	})
	return res, nil
}

// clamp01 bounds p to [0,1].
func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
