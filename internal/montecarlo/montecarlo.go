// Package montecarlo propagates input-parameter uncertainty through
// the GreenFPGA models. The paper's §5 stresses that its outputs are
// only as accurate as coarse, partly proprietary inputs (Table 1 lists
// ranges, not values); this package quantifies that: draw parameters
// from their ranges, evaluate the model, and report percentiles plus a
// tornado-style sensitivity ranking.
//
// All randomness is seeded, so runs are exactly reproducible: every
// draw derives its own sub-seed from the study seed and its index, and
// draws are evaluated in parallel without changing any result. Note
// that the seed-to-stream mapping changed when the engine moved from a
// single sequential generator to per-draw sub-seeds: a Config.Seed
// reproduces results within this engine, not numbers recorded with the
// earlier sequential one.
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"greenfpga/internal/pool"
)

// Dist is a one-dimensional parameter distribution.
type Dist interface {
	// Sample draws one value.
	Sample(r *rand.Rand) float64
	// Quantile inverts the CDF at p in [0,1].
	Quantile(p float64) float64
	// Mean is the distribution mean.
	Mean() float64
}

// Uniform is the flat distribution on [Lo, Hi] — the natural reading
// of Table 1's ranges.
type Uniform struct {
	// Lo and Hi bound the range.
	Lo, Hi float64
}

// Sample draws uniformly.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Quantile inverts the CDF.
func (u Uniform) Quantile(p float64) float64 { return u.Lo + clamp01(p)*(u.Hi-u.Lo) }

// Mean is the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Triangular is the triangular distribution on [Lo, Hi] with the given
// Mode — useful when a nominal value is known inside a range.
type Triangular struct {
	// Lo, Mode and Hi are the minimum, peak and maximum.
	Lo, Mode, Hi float64
}

// Sample draws by inverse CDF.
func (t Triangular) Sample(r *rand.Rand) float64 { return t.Quantile(r.Float64()) }

// Quantile inverts the CDF.
func (t Triangular) Quantile(p float64) float64 {
	p = clamp01(p)
	if t.Hi == t.Lo {
		return t.Lo
	}
	fc := (t.Mode - t.Lo) / (t.Hi - t.Lo)
	if p < fc {
		return t.Lo + math.Sqrt(p*(t.Hi-t.Lo)*(t.Mode-t.Lo))
	}
	return t.Hi - math.Sqrt((1-p)*(t.Hi-t.Lo)*(t.Hi-t.Mode))
}

// Mean is (Lo+Mode+Hi)/3.
func (t Triangular) Mean() float64 { return (t.Lo + t.Mode + t.Hi) / 3 }

// Fixed is a degenerate point distribution.
type Fixed float64

// Sample always returns the value.
func (f Fixed) Sample(*rand.Rand) float64 { return float64(f) }

// Quantile always returns the value.
func (f Fixed) Quantile(float64) float64 { return float64(f) }

// Mean is the value.
func (f Fixed) Mean() float64 { return float64(f) }

// Param is a named uncertain input.
type Param struct {
	// Name keys the draw map handed to the model.
	Name string
	// Dist is the parameter's distribution.
	Dist Dist
}

// Model evaluates the quantity of interest for one parameter draw.
// Run invokes it from multiple goroutines concurrently (one draw per
// call, each with its own map), so the function must be safe for
// concurrent use: don't mutate captured state without synchronization,
// and don't retain the draw map past the call.
type Model func(draw map[string]float64) (float64, error)

// Config describes one Monte-Carlo study.
type Config struct {
	// Params are the uncertain inputs.
	Params []Param
	// Samples is the number of draws (default 1000).
	Samples int
	// Seed makes the run reproducible: results depend only on the
	// seed, never on scheduling or worker count.
	Seed int64
	// Model maps a draw to the output quantity. It is called
	// concurrently; see Model.
	Model Model
}

// Sensitivity is one tornado-chart entry.
type Sensitivity struct {
	// Param is the input name.
	Param string
	// Low and High are the model outputs with the parameter pinned at
	// its 10th and 90th percentile (all others at their means).
	Low, High float64
}

// Swing is the absolute output range attributable to the parameter.
func (s Sensitivity) Swing() float64 { return math.Abs(s.High - s.Low) }

// Result summarizes a study.
type Result struct {
	// Samples are the sorted model outputs.
	Samples []float64
	// Mean and StdDev summarize the outputs.
	Mean, StdDev float64
	// Tornado ranks parameters by swing, largest first.
	Tornado []Sensitivity
}

// Percentile interpolates the p-th percentile (p in [0,100]).
func (r Result) Percentile(p float64) float64 {
	if len(r.Samples) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return r.Samples[0]
	}
	if p >= 100 {
		return r.Samples[len(r.Samples)-1]
	}
	pos := p / 100 * float64(len(r.Samples)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(r.Samples) {
		return r.Samples[i]
	}
	return r.Samples[i]*(1-frac) + r.Samples[i+1]*frac
}

// Validate checks the study configuration and returns the effective
// sample count (the default applied when Samples is zero).
func Validate(cfg Config) (int, error) {
	if cfg.Model == nil {
		return 0, fmt.Errorf("montecarlo: nil model")
	}
	if len(cfg.Params) == 0 {
		return 0, fmt.Errorf("montecarlo: no parameters")
	}
	seen := map[string]bool{}
	for _, p := range cfg.Params {
		if p.Name == "" {
			return 0, fmt.Errorf("montecarlo: unnamed parameter")
		}
		if p.Dist == nil {
			return 0, fmt.Errorf("montecarlo: parameter %q has no distribution", p.Name)
		}
		if seen[p.Name] {
			return 0, fmt.Errorf("montecarlo: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
	}
	samples := cfg.Samples
	if samples == 0 {
		samples = 1000
	}
	if samples < 0 {
		return 0, fmt.Errorf("montecarlo: negative sample count %d", samples)
	}
	return samples, nil
}

// Run executes the study.
func Run(cfg Config) (Result, error) {
	samples, err := Validate(cfg)
	if err != nil {
		return Result{}, err
	}
	// Each draw runs against its own sub-seeded generator, so the
	// sample stream depends only on (seed, index) and the draws can be
	// evaluated by a worker pool in any order.
	out := make([]float64, samples)
	if err := evalDraws(cfg, 0, out); err != nil {
		return Result{}, err
	}
	return Finalize(cfg, out)
}

// RunRange evaluates draws [lo, hi) of the study and returns their
// outputs in index order: out[i] is draw lo+i. Because every draw is
// sub-seeded from (cfg.Seed, index), a range evaluation is bit-
// identical to the same indices of a full Run — the primitive that
// lets the jobs layer checkpoint a study in chunks and resume it after
// a crash without perturbing a single sample.
func RunRange(cfg Config, lo, hi int) ([]float64, error) {
	samples, err := Validate(cfg)
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi < lo || hi > samples {
		return nil, fmt.Errorf("montecarlo: draw range [%d, %d) outside [0, %d)", lo, hi, samples)
	}
	out := make([]float64, hi-lo)
	if err := evalDraws(cfg, lo, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Finalize turns the index-ordered draw outputs (a full Run's, or
// RunRange chunks concatenated in index order) into a Result. The
// statistics are accumulated sequentially over the index order before
// sorting, so chunked-then-finalized studies are bit-for-bit identical
// to Run: same sums, same percentiles, same tornado. samples is sorted
// in place and retained by the Result.
func Finalize(cfg Config, samples []float64) (Result, error) {
	want, err := Validate(cfg)
	if err != nil {
		return Result{}, err
	}
	if len(samples) != want {
		return Result{}, fmt.Errorf("montecarlo: finalizing %d outputs for a %d-sample study", len(samples), want)
	}
	res := Result{Samples: samples}
	var sum, sumSq float64
	for _, v := range res.Samples {
		sum += v
		sumSq += v * v
	}
	sort.Float64s(res.Samples)
	n := float64(len(res.Samples))
	res.Mean = sum / n
	if variance := sumSq/n - res.Mean*res.Mean; variance > 0 {
		res.StdDev = math.Sqrt(variance)
	}

	// Tornado: vary one parameter across its 10-90 band with the rest
	// at their means.
	means := make(map[string]float64, len(cfg.Params))
	for _, p := range cfg.Params {
		means[p.Name] = p.Dist.Mean()
	}
	for _, p := range cfg.Params {
		entry := Sensitivity{Param: p.Name}
		for _, q := range []float64{0.1, 0.9} {
			d := make(map[string]float64, len(means))
			for k, v := range means {
				d[k] = v
			}
			d[p.Name] = p.Dist.Quantile(q)
			v, err := cfg.Model(d)
			if err != nil {
				return Result{}, fmt.Errorf("montecarlo: tornado %s@%g: %w", p.Name, q, err)
			}
			if q == 0.1 {
				entry.Low = v
			} else {
				entry.High = v
			}
		}
		res.Tornado = append(res.Tornado, entry)
	}
	sort.SliceStable(res.Tornado, func(i, j int) bool {
		return res.Tornado[i].Swing() > res.Tornado[j].Swing()
	})
	return res, nil
}

// drawChunk is how many consecutive sample indices one worker claims
// per fetch: model evaluations are heavier than sweep cells, so a
// larger chunk amortizes the counter without hurting balance.
const drawChunk = 16

// evalDraws fills out[i] with the model output for draw base+i,
// fanning the draws across the shared fixed worker pool. Each draw's
// parameters come from a generator sub-seeded with (cfg.Seed, index),
// so the result is identical to a sequential run and independent of
// the worker count — including the reported error, which is always the
// lowest failing index's.
func evalDraws(cfg Config, base int, out []float64) error {
	return pool.RunWorkers(len(out), drawChunk, func() pool.Eval {
		// Per-worker scratch: the generator state is reset per draw,
		// the draw map is reused across draws.
		src := &splitmix{}
		rng := rand.New(src)
		draw := make(map[string]float64, len(cfg.Params))
		return func(i int) error {
			src.state = subSeed(cfg.Seed, base+i)
			for _, p := range cfg.Params {
				draw[p.Name] = p.Dist.Sample(rng)
			}
			v, err := cfg.Model(draw)
			if err != nil {
				return fmt.Errorf("montecarlo: sample %d: %w", base+i, err)
			}
			out[i] = v
			return nil
		}
	})
}

// subSeed derives draw i's generator state from the study seed by one
// round of splitmix64 finalization over the combined words, so
// neighbouring indices land on uncorrelated streams.
func subSeed(seed int64, i int) uint64 {
	return mix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(i) + 1)
}

// splitmix is a splitmix64 rand.Source64: one mix per output word,
// trivially seekable by assigning state. Its quality is ample for
// Monte-Carlo sampling and, unlike the default Go source, its state is
// two words instead of ~5 KB, so per-draw reseeding is free.
type splitmix struct{ state uint64 }

// Uint64 advances the state and mixes out one word.
func (s *splitmix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// Int63 implements rand.Source.
func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// clamp01 bounds p to [0,1].
func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
