package montecarlo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestUniformDist(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 6}
	if u.Mean() != 4 {
		t.Errorf("mean %g", u.Mean())
	}
	if u.Quantile(0) != 2 || u.Quantile(1) != 6 || u.Quantile(0.5) != 4 {
		t.Errorf("quantiles: %g %g %g", u.Quantile(0), u.Quantile(1), u.Quantile(0.5))
	}
	if u.Quantile(-1) != 2 || u.Quantile(2) != 6 {
		t.Error("quantile must clamp p")
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := u.Sample(r)
		if v < 2 || v > 6 {
			t.Fatalf("sample %g outside range", v)
		}
	}
}

func TestTriangularDist(t *testing.T) {
	tri := Triangular{Lo: 0, Mode: 2, Hi: 10}
	if math.Abs(tri.Mean()-4) > 1e-12 {
		t.Errorf("mean %g", tri.Mean())
	}
	if tri.Quantile(0) != 0 || tri.Quantile(1) != 10 {
		t.Errorf("extreme quantiles: %g %g", tri.Quantile(0), tri.Quantile(1))
	}
	// CDF at the mode is (mode-lo)/(hi-lo) = 0.2.
	if math.Abs(tri.Quantile(0.2)-2) > 1e-9 {
		t.Errorf("quantile at mode: %g", tri.Quantile(0.2))
	}
	r := rand.New(rand.NewSource(2))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := tri.Sample(r)
		if v < 0 || v > 10 {
			t.Fatalf("sample %g outside range", v)
		}
		sum += v
	}
	if math.Abs(sum/n-4) > 0.1 {
		t.Errorf("empirical mean %g, want ~4", sum/n)
	}
	// Degenerate triangular collapses to a point.
	pt := Triangular{Lo: 5, Mode: 5, Hi: 5}
	if pt.Quantile(0.7) != 5 {
		t.Error("degenerate triangular")
	}
}

func TestFixedDist(t *testing.T) {
	f := Fixed(3.5)
	if f.Mean() != 3.5 || f.Quantile(0.9) != 3.5 || f.Sample(nil) != 3.5 {
		t.Error("fixed dist")
	}
}

func TestRunReproducible(t *testing.T) {
	cfg := Config{
		Params:  []Param{{Name: "a", Dist: Uniform{1, 3}}, {Name: "b", Dist: Uniform{0, 1}}},
		Samples: 500,
		Seed:    42,
		Model: func(d map[string]float64) (float64, error) {
			return d["a"] + 10*d["b"], nil
		},
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Mean != r2.Mean || r1.StdDev != r2.StdDev {
		t.Error("same seed must reproduce")
	}
	for i := range r1.Samples {
		if r1.Samples[i] != r2.Samples[i] {
			t.Fatal("sample streams differ")
		}
	}
	r3, _ := Run(Config{Params: cfg.Params, Samples: 500, Seed: 43, Model: cfg.Model})
	if r3.Mean == r1.Mean {
		t.Error("different seeds should differ")
	}
}

// TestRunIndependentOfWorkerCount pins GOMAXPROCS to 1 and asserts the
// serial run reproduces the parallel run bit-for-bit: the sample
// stream depends only on (seed, index), never on scheduling.
func TestRunIndependentOfWorkerCount(t *testing.T) {
	cfg := Config{
		Params:  []Param{{Name: "a", Dist: Uniform{1, 3}}, {Name: "b", Dist: Triangular{0, 1, 4}}},
		Samples: 2000,
		Seed:    11,
		Model: func(d map[string]float64) (float64, error) {
			return d["a"]*d["b"] + d["a"], nil
		},
	}
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	serial, runErr := Run(cfg)
	runtime.GOMAXPROCS(prev)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if serial.Mean != parallel.Mean || serial.StdDev != parallel.StdDev {
		t.Errorf("statistics depend on worker count: %g/%g vs %g/%g",
			serial.Mean, serial.StdDev, parallel.Mean, parallel.StdDev)
	}
	for i := range serial.Samples {
		if serial.Samples[i] != parallel.Samples[i] {
			t.Fatalf("sample %d differs across worker counts", i)
		}
	}
}

// TestRunFirstErrorDeterministic asserts the engine reports the
// lowest-indexed failing draw regardless of scheduling.
func TestRunFirstErrorDeterministic(t *testing.T) {
	var calls atomic.Int64
	for trial := 0; trial < 5; trial++ {
		_, err := Run(Config{
			Params:  []Param{{Name: "a", Dist: Uniform{0, 1}}},
			Samples: 500,
			Seed:    3,
			Model: func(d map[string]float64) (float64, error) {
				calls.Add(1)
				if d["a"] > 0.5 {
					return 0, errors.New("boom")
				}
				return d["a"], nil
			},
		})
		if err == nil {
			t.Fatal("expected a model error")
		}
		want := firstFailingDraw(t, 500, 3, 0.5)
		if !strings.Contains(err.Error(), fmt.Sprintf("sample %d:", want)) {
			t.Fatalf("trial %d: got %v, want sample %d", trial, err, want)
		}
	}
	if calls.Load() == 0 {
		t.Fatal("model never ran")
	}
}

// firstFailingDraw replays the sub-seeded streams serially to find the
// lowest index whose draw exceeds the threshold.
func firstFailingDraw(t *testing.T, samples int, seed int64, threshold float64) int {
	t.Helper()
	u := Uniform{0, 1}
	src := &splitmix{}
	rng := rand.New(src)
	for i := 0; i < samples; i++ {
		src.state = subSeed(seed, i)
		if u.Sample(rng) > threshold {
			return i
		}
	}
	t.Fatal("no draw exceeds the threshold")
	return -1
}

func TestRunStatistics(t *testing.T) {
	// Output = a with a ~ U(0, 10): mean 5, p50 ~5, p10 ~1, p90 ~9.
	res, err := Run(Config{
		Params:  []Param{{Name: "a", Dist: Uniform{0, 10}}},
		Samples: 50000,
		Seed:    7,
		Model:   func(d map[string]float64) (float64, error) { return d["a"], nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-5) > 0.1 {
		t.Errorf("mean %g", res.Mean)
	}
	if math.Abs(res.StdDev-10/math.Sqrt(12)) > 0.1 {
		t.Errorf("stddev %g", res.StdDev)
	}
	for _, c := range []struct{ p, want, tol float64 }{
		{50, 5, 0.15}, {10, 1, 0.15}, {90, 9, 0.15}, {0, res.Samples[0], 0}, {100, res.Samples[len(res.Samples)-1], 0},
	} {
		if got := res.Percentile(c.p); math.Abs(got-c.want) > c.tol+1e-12 {
			t.Errorf("p%g = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestTornadoRanking(t *testing.T) {
	// Output = big + small: the wide parameter must rank first.
	res, err := Run(Config{
		Params: []Param{
			{Name: "small", Dist: Uniform{0, 1}},
			{Name: "big", Dist: Uniform{0, 100}},
		},
		Samples: 100,
		Seed:    1,
		Model: func(d map[string]float64) (float64, error) {
			return d["small"] + d["big"], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tornado) != 2 || res.Tornado[0].Param != "big" {
		t.Errorf("tornado: %+v", res.Tornado)
	}
	if res.Tornado[0].Swing() <= res.Tornado[1].Swing() {
		t.Error("tornado not sorted by swing")
	}
	// Swing of "big" is the 10-90 band: 80.
	if math.Abs(res.Tornado[0].Swing()-80) > 1e-9 {
		t.Errorf("big swing %g, want 80", res.Tornado[0].Swing())
	}
}

func TestRunErrors(t *testing.T) {
	ok := func(map[string]float64) (float64, error) { return 0, nil }
	cases := []Config{
		{Params: []Param{{Name: "a", Dist: Fixed(1)}}}, // nil model
		{Model: ok}, // no params
		{Model: ok, Params: []Param{{Name: "", Dist: Fixed(1)}}},                               // unnamed
		{Model: ok, Params: []Param{{Name: "a"}}},                                              // no dist
		{Model: ok, Params: []Param{{Name: "a", Dist: Fixed(1)}, {Name: "a", Dist: Fixed(2)}}}, // dup
		{Model: ok, Params: []Param{{Name: "a", Dist: Fixed(1)}}, Samples: -5},                 // negative
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	boom := errors.New("boom")
	_, err := Run(Config{
		Params: []Param{{Name: "a", Dist: Fixed(1)}},
		Model:  func(map[string]float64) (float64, error) { return 0, boom },
	})
	if !errors.Is(err, boom) {
		t.Errorf("model error not propagated: %v", err)
	}
}

func TestPercentileEmpty(t *testing.T) {
	var r Result
	if !math.IsNaN(r.Percentile(50)) {
		t.Error("empty result percentile must be NaN")
	}
}

// Property: percentiles are monotone in p and bounded by the sample
// extremes.
func TestQuickPercentileMonotone(t *testing.T) {
	res, err := Run(Config{
		Params:  []Param{{Name: "a", Dist: Uniform{-5, 5}}},
		Samples: 300,
		Seed:    9,
		Model:   func(d map[string]float64) (float64, error) { return d["a"] * d["a"], nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(p1, p2 float64) bool {
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if math.IsNaN(p1 + p2) {
			return true
		}
		lo, hi := math.Min(p1, p2), math.Max(p1, p2)
		a, b := res.Percentile(lo), res.Percentile(hi)
		return a <= b+1e-12 &&
			a >= res.Samples[0]-1e-12 && b <= res.Samples[len(res.Samples)-1]+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRunRangeFinalizeMatchesRun pins the resume contract the jobs
// layer depends on: splitting a study into arbitrary index ranges,
// concatenating the chunk outputs in order, and Finalizing must be
// bit-for-bit identical to a one-shot Run — samples, moments,
// percentiles and tornado alike.
func TestRunRangeFinalizeMatchesRun(t *testing.T) {
	cfg := Config{
		Params:  []Param{{Name: "a", Dist: Uniform{1, 3}}, {Name: "b", Dist: Triangular{0, 1, 4}}},
		Samples: 1777,
		Seed:    77,
		Model: func(d map[string]float64) (float64, error) {
			return d["a"]*d["b"] + d["a"], nil
		},
	}
	whole, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Uneven chunking on purpose: resume never sees tidy boundaries.
	var chunked []float64
	for lo := 0; lo < cfg.Samples; {
		hi := lo + 400
		if lo == 0 {
			hi = 13
		}
		if hi > cfg.Samples {
			hi = cfg.Samples
		}
		part, err := RunRange(cfg, lo, hi)
		if err != nil {
			t.Fatalf("RunRange(%d, %d): %v", lo, hi, err)
		}
		chunked = append(chunked, part...)
		lo = hi
	}
	res, err := Finalize(cfg, chunked)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != whole.Mean || res.StdDev != whole.StdDev {
		t.Errorf("moments differ: %g/%g vs %g/%g", res.Mean, res.StdDev, whole.Mean, whole.StdDev)
	}
	for i := range whole.Samples {
		if res.Samples[i] != whole.Samples[i] {
			t.Fatalf("sample %d differs after chunked evaluation", i)
		}
	}
	if len(res.Tornado) != len(whole.Tornado) {
		t.Fatalf("tornado lengths differ")
	}
	for i := range whole.Tornado {
		if res.Tornado[i] != whole.Tornado[i] {
			t.Fatalf("tornado entry %d differs", i)
		}
	}
}

// TestRunRangeBounds pins range validation.
func TestRunRangeBounds(t *testing.T) {
	cfg := Config{
		Params:  []Param{{Name: "a", Dist: Uniform{0, 1}}},
		Samples: 10,
		Model:   func(d map[string]float64) (float64, error) { return d["a"], nil },
	}
	for _, r := range [][2]int{{-1, 5}, {5, 4}, {0, 11}} {
		if _, err := RunRange(cfg, r[0], r[1]); err == nil {
			t.Errorf("RunRange(%d, %d) accepted", r[0], r[1])
		}
	}
	if _, err := Finalize(cfg, make([]float64, 9)); err == nil {
		t.Error("Finalize accepted a short sample vector")
	}
}
