package technode

import (
	"math"
	"testing"
	"testing/quick"

	"greenfpga/internal/units"
)

func TestByName(t *testing.T) {
	n, err := ByName("10nm")
	if err != nil {
		t.Fatal(err)
	}
	if n.FeatureNM != 10 || n.EPA.KWhPerCM2() != 1.475 {
		t.Errorf("10nm node: %+v", n)
	}
	if _, err := ByName("1nm"); err == nil {
		t.Error("unknown node must error")
	}
}

func TestListIsOrderedAndValid(t *testing.T) {
	nodes := List()
	if len(nodes) < 8 {
		t.Fatalf("expected a rich node table, got %d entries", len(nodes))
	}
	for i, n := range nodes {
		if err := n.Validate(); err != nil {
			t.Errorf("node %s invalid: %v", n.Name, err)
		}
		if i > 0 && n.FeatureNM >= nodes[i-1].FeatureNM {
			t.Errorf("table not descending at %s", n.Name)
		}
	}
}

func TestScalingTrends(t *testing.T) {
	// Advanced nodes must cost more energy per area, have more defects,
	// and pack more gates.
	n28, _ := ByName("28nm")
	n7, _ := ByName("7nm")
	n3, _ := ByName("3nm")
	if !(n28.EPA < n7.EPA && n7.EPA < n3.EPA) {
		t.Error("EPA must grow toward leading edge")
	}
	if !(n28.DefectDensity < n7.DefectDensity && n7.DefectDensity < n3.DefectDensity) {
		t.Error("defect density must grow toward leading edge")
	}
	if !(n28.GateDensity < n7.GateDensity && n7.GateDensity < n3.GateDensity) {
		t.Error("gate density must grow toward leading edge")
	}
	if !(n28.PowerScale > n7.PowerScale && n7.PowerScale > n3.PowerScale) {
		t.Error("power per gate must shrink toward leading edge")
	}
	n10, _ := ByName("10nm")
	if n10.PowerScale != 1.0 {
		t.Errorf("10nm is the power-scale reference, got %g", n10.PowerScale)
	}
}

func TestByFeatureExactAndClamped(t *testing.T) {
	n, err := ByFeature(10)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "10nm" {
		t.Errorf("exact lookup gave %s", n.Name)
	}
	big, err := ByFeature(90)
	if err != nil {
		t.Fatal(err)
	}
	if big.Name != "28nm" {
		t.Errorf("above-range lookup should clamp to 28nm, got %s", big.Name)
	}
	small, err := ByFeature(2)
	if err != nil {
		t.Fatal(err)
	}
	if small.Name != "3nm" {
		t.Errorf("below-range lookup should clamp to 3nm, got %s", small.Name)
	}
	for _, bad := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := ByFeature(bad); err == nil {
			t.Errorf("ByFeature(%g) must error", bad)
		}
	}
}

func TestByFeatureInterpolation(t *testing.T) {
	n9, err := ByFeature(9)
	if err != nil {
		t.Fatal(err)
	}
	n10, _ := ByName("10nm")
	n8, _ := ByName("8nm")
	if !(n9.EPA > n10.EPA && n9.EPA < n8.EPA) {
		t.Errorf("interpolated EPA %v not between %v and %v", n9.EPA, n10.EPA, n8.EPA)
	}
	if !(n9.GateDensity > n10.GateDensity && n9.GateDensity < n8.GateDensity) {
		t.Errorf("interpolated gate density %g not between neighbours", n9.GateDensity)
	}
	if n9.Name != "9nm" {
		t.Errorf("interpolated name %q", n9.Name)
	}
	if err := n9.Validate(); err != nil {
		t.Errorf("interpolated node invalid: %v", err)
	}
}

func TestGateAreaConversions(t *testing.T) {
	n, _ := ByName("10nm")
	a := units.MM2(150)
	gates := n.GatesForArea(a)
	if gates != 9.0e6*150 {
		t.Errorf("gates for 150mm2: %g", gates)
	}
	back, err := n.AreaForGates(gates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.MM2()-150) > 1e-9 {
		t.Errorf("area round trip: %v", back)
	}
	if _, err := n.AreaForGates(-1); err == nil {
		t.Error("negative gates must error")
	}
	if _, err := (Node{Name: "x", FeatureNM: 1}).AreaForGates(10); err == nil {
		t.Error("zero gate density must error")
	}
}

func TestValidate(t *testing.T) {
	good, _ := ByName("7nm")
	bad := []Node{
		{},
		func() Node { n := good; n.EPA = 0; return n }(),
		func() Node { n := good; n.GPA = units.KgPerCM2(-1); return n }(),
		func() Node { n := good; n.MPANew = units.KgPerCM2(-1); return n }(),
		func() Node { n := good; n.RecycledMaterialSaving = 2; return n }(),
		func() Node { n := good; n.DefectDensity = -0.1; return n }(),
		func() Node { n := good; n.GateDensity = 0; return n }(),
	}
	for i, n := range bad {
		if n.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
	if good.Validate() != nil {
		t.Error("table node should validate")
	}
}

func TestSortedByFeature(t *testing.T) {
	sorted := SortedByFeature(List())
	for i := 1; i < len(sorted); i++ {
		if sorted[i].FeatureNM < sorted[i-1].FeatureNM {
			t.Fatal("not ascending")
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if names[0] != "28nm" || names[len(names)-1] != "3nm" {
		t.Errorf("names: %v", names)
	}
}

// Property: interpolation stays within the bracketing nodes for every
// coefficient, for any feature size in the table's range.
func TestQuickInterpolationBounds(t *testing.T) {
	f := func(raw float64) bool {
		nm := 3 + math.Mod(math.Abs(raw), 25) // (3, 28)
		if math.IsNaN(nm) {
			return true
		}
		n, err := ByFeature(nm)
		if err != nil {
			return false
		}
		if n.Validate() != nil {
			return false
		}
		lo, _ := ByFeature(28)
		hi, _ := ByFeature(3)
		return n.EPA >= lo.EPA && n.EPA <= hi.EPA &&
			n.DefectDensity >= lo.DefectDensity && n.DefectDensity <= hi.DefectDensity &&
			n.GateDensity >= lo.GateDensity && n.GateDensity <= hi.GateDensity &&
			n.PowerScale <= lo.PowerScale && n.PowerScale >= hi.PowerScale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
