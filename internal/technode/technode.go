// Package technode is the technology-node database behind the
// manufacturing carbon model. For each node it records the per-area fab
// coefficients used by ACT-style models — energy per area (EPA), process
// gas emissions per area (GPA), and material emissions per area (MPA) —
// plus the defect density driving yield, the logic gate density used for
// N_FPGA capacity math (Eq. 3), and the Bose-Einstein critical-layer
// count.
//
// The magnitudes follow the ACT [Gupta et al., ISCA'22] and ECO-CHIP
// [Sudarshan et al., HPCA'24] parameter sets the paper consumes from
// their GitHub repositories: EPA grows from ~0.85 kWh/cm^2 at 28 nm to
// ~2.8 kWh/cm^2 at 3 nm, with GPA and MPA a few hundred grams per cm^2.
// Nodes not in the table are log-interpolated.
package technode

import (
	"fmt"
	"math"
	"sort"

	"greenfpga/internal/units"
)

// Node holds the per-node manufacturing coefficients.
type Node struct {
	// FeatureNM is the marketing feature size in nanometres.
	FeatureNM float64
	// Name is the conventional label, e.g. "10nm".
	Name string
	// EPA is fab energy use per processed wafer area.
	EPA units.EnergyPerArea
	// GPA is direct greenhouse-gas emission (process gases, already
	// CO2e-weighted and abatement-adjusted) per wafer area.
	GPA units.MassPerArea
	// MPANew is the carbon of sourcing virgin materials per wafer area.
	MPANew units.MassPerArea
	// RecycledMaterialSaving is the fraction of material carbon avoided
	// when a unit of material input is sourced from recycling streams
	// (Eq. 5's C_materials,recycled = (1-saving) * C_materials,new).
	RecycledMaterialSaving float64
	// DefectDensity is D0 in defects/cm^2 for the yield models.
	DefectDensity float64
	// GateDensity is equivalent logic gates per mm^2, used to convert
	// between application size in gates and silicon area.
	GateDensity float64
	// CriticalLayers feeds the Bose-Einstein yield model.
	CriticalLayers int
	// PowerScale is the active power per gate relative to the 10 nm
	// node (PPACE-style DTCO scaling [Garcia Bardon et al., IEDM'20]):
	// mature nodes burn more energy per operation, leading-edge nodes
	// less. The design-space explorer trades this against the higher
	// embodied carbon of advanced nodes.
	PowerScale float64
}

// table lists supported nodes from mature to leading-edge. Entries are
// ordered by descending feature size.
var table = []Node{
	{28, "28nm", units.KWhPerCM2(0.85), units.KgPerCM2(0.150), units.KgPerCM2(0.400), 0.65, 0.050, 1.8e6, 8, 2.20},
	{22, "22nm", units.KWhPerCM2(0.92), units.KgPerCM2(0.170), units.KgPerCM2(0.430), 0.65, 0.058, 2.4e6, 9, 1.90},
	{20, "20nm", units.KWhPerCM2(1.00), units.KgPerCM2(0.190), units.KgPerCM2(0.450), 0.65, 0.060, 3.0e6, 9, 1.80},
	{16, "16nm", units.KWhPerCM2(1.10), units.KgPerCM2(0.220), units.KgPerCM2(0.480), 0.65, 0.065, 4.5e6, 10, 1.45},
	{14, "14nm", units.KWhPerCM2(1.20), units.KgPerCM2(0.250), units.KgPerCM2(0.500), 0.65, 0.070, 5.5e6, 10, 1.30},
	{12, "12nm", units.KWhPerCM2(1.30), units.KgPerCM2(0.260), units.KgPerCM2(0.500), 0.65, 0.075, 7.0e6, 11, 1.15},
	{10, "10nm", units.KWhPerCM2(1.475), units.KgPerCM2(0.280), units.KgPerCM2(0.500), 0.65, 0.080, 9.0e6, 11, 1.00},
	{8, "8nm", units.KWhPerCM2(1.60), units.KgPerCM2(0.290), units.KgPerCM2(0.520), 0.65, 0.085, 12.0e6, 12, 0.90},
	{7, "7nm", units.KWhPerCM2(1.70), units.KgPerCM2(0.300), units.KgPerCM2(0.550), 0.65, 0.090, 14.0e6, 12, 0.85},
	{5, "5nm", units.KWhPerCM2(2.25), units.KgPerCM2(0.350), units.KgPerCM2(0.600), 0.65, 0.110, 22.0e6, 14, 0.70},
	{3, "3nm", units.KWhPerCM2(2.80), units.KgPerCM2(0.400), units.KgPerCM2(0.650), 0.65, 0.130, 33.0e6, 16, 0.60},
}

// List returns the supported nodes ordered from mature (28 nm) to
// leading-edge (3 nm).
func List() []Node {
	out := make([]Node, len(table))
	copy(out, table)
	return out
}

// ByName looks a node up by its conventional label ("10nm", "7nm", ...).
func ByName(name string) (Node, error) {
	for _, n := range table {
		if n.Name == name {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("technode: unknown node %q (known: 28nm..3nm)", name)
}

// ByFeature returns the node with the exact feature size, or a
// log-interpolated synthetic node when the size falls between table
// entries. Sizes outside the table range are clamped to the nearest
// entry and named accordingly.
func ByFeature(nm float64) (Node, error) {
	if nm <= 0 || math.IsNaN(nm) || math.IsInf(nm, 0) {
		return Node{}, fmt.Errorf("technode: invalid feature size %g nm", nm)
	}
	// Table is sorted descending by feature size.
	if nm >= table[0].FeatureNM {
		return table[0], nil
	}
	last := table[len(table)-1]
	if nm <= last.FeatureNM {
		return last, nil
	}
	for i := 0; i < len(table)-1; i++ {
		hi, lo := table[i], table[i+1] // hi = larger feature
		if nm == hi.FeatureNM {
			return hi, nil
		}
		if nm < hi.FeatureNM && nm > lo.FeatureNM {
			// Interpolate in log(feature) space, where the scaling
			// trends are closest to linear.
			t := (math.Log(hi.FeatureNM) - math.Log(nm)) /
				(math.Log(hi.FeatureNM) - math.Log(lo.FeatureNM))
			lerp := func(a, b float64) float64 { return a + t*(b-a) }
			return Node{
				FeatureNM:              nm,
				Name:                   fmt.Sprintf("%gnm", nm),
				EPA:                    units.KWhPerCM2(lerp(hi.EPA.KWhPerCM2(), lo.EPA.KWhPerCM2())),
				GPA:                    units.KgPerCM2(lerp(hi.GPA.KgPerCM2(), lo.GPA.KgPerCM2())),
				MPANew:                 units.KgPerCM2(lerp(hi.MPANew.KgPerCM2(), lo.MPANew.KgPerCM2())),
				RecycledMaterialSaving: lerp(hi.RecycledMaterialSaving, lo.RecycledMaterialSaving),
				DefectDensity:          lerp(hi.DefectDensity, lo.DefectDensity),
				GateDensity:            math.Exp(lerp(math.Log(hi.GateDensity), math.Log(lo.GateDensity))),
				CriticalLayers:         int(math.Round(lerp(float64(hi.CriticalLayers), float64(lo.CriticalLayers)))),
				PowerScale:             lerp(hi.PowerScale, lo.PowerScale),
			}, nil
		}
	}
	return last, nil
}

// Names lists the node labels in table order.
func Names() []string {
	out := make([]string, len(table))
	for i, n := range table {
		out[i] = n.Name
	}
	return out
}

// GatesForArea converts silicon area on this node to equivalent logic
// gates.
func (n Node) GatesForArea(a units.Area) float64 {
	return n.GateDensity * a.MM2()
}

// AreaForGates converts a gate count to silicon area on this node.
func (n Node) AreaForGates(gates float64) (units.Area, error) {
	if gates < 0 {
		return 0, fmt.Errorf("technode: negative gate count %g", gates)
	}
	if n.GateDensity <= 0 {
		return 0, fmt.Errorf("technode: node %s has no gate density", n.Name)
	}
	return units.MM2(gates / n.GateDensity), nil
}

// Validate checks that the node's coefficients are physically sensible.
func (n Node) Validate() error {
	switch {
	case n.FeatureNM <= 0:
		return fmt.Errorf("technode: node %q: feature size %g nm must be positive", n.Name, n.FeatureNM)
	case n.EPA.KWhPerCM2() <= 0:
		return fmt.Errorf("technode: node %q: EPA must be positive", n.Name)
	case n.GPA.KgPerCM2() < 0:
		return fmt.Errorf("technode: node %q: GPA must be non-negative", n.Name)
	case n.MPANew.KgPerCM2() < 0:
		return fmt.Errorf("technode: node %q: MPA must be non-negative", n.Name)
	case n.RecycledMaterialSaving < 0 || n.RecycledMaterialSaving > 1:
		return fmt.Errorf("technode: node %q: recycled saving %g outside [0,1]", n.Name, n.RecycledMaterialSaving)
	case n.DefectDensity < 0:
		return fmt.Errorf("technode: node %q: defect density must be non-negative", n.Name)
	case n.GateDensity <= 0:
		return fmt.Errorf("technode: node %q: gate density must be positive", n.Name)
	case n.PowerScale < 0:
		return fmt.Errorf("technode: node %q: power scale must be non-negative", n.Name)
	}
	return nil
}

// SortedByFeature returns the nodes sorted ascending by feature size
// (leading edge first).
func SortedByFeature(nodes []Node) []Node {
	out := make([]Node, len(nodes))
	copy(out, nodes)
	sort.Slice(out, func(i, j int) bool { return out[i].FeatureNM < out[j].FeatureNM })
	return out
}
