package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is the request-scoped observability record: the request ID
// plus per-stage timers (decode, resolve, compute, encode) that the
// serve path accumulates as a request flows decode → resolve →
// compute → encode. It rides the request context, so the api layer
// records stages without knowing about HTTP, and the server's
// telemetry middleware flushes them into the stage histograms and the
// access log when the request finishes. A Trace is safe for
// concurrent use — batch items time their stages from pool
// goroutines, and a deadline-abandoned handler may still be timing
// when the middleware reads the stages.
type Trace struct {
	// ID is the request ID: accepted from the client's X-Request-ID
	// or generated, echoed on the response, stamped on every access
	// log line.
	ID string

	mu      sync.Mutex
	order   []string
	stages  map[string]time.Duration
	outcome string
}

// NewTrace returns a trace with the given request ID.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, stages: make(map[string]time.Duration)}
}

// StartStage starts timing one stage; the returned func stops it and
// adds the elapsed time to the stage's total (stages that run more
// than once per request — resolve per platform, say — accumulate).
func (t *Trace) StartStage(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Add(name, time.Since(start)) }
}

// Add adds d to a stage's accumulated duration.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.stages[name]; !ok {
		t.order = append(t.order, name)
	}
	t.stages[name] += d
}

// Stage is one accumulated stage duration.
type Stage struct {
	Name     string
	Duration time.Duration
}

// Stages returns the accumulated stages in first-recorded order.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stage, len(t.order))
	for i, name := range t.order {
		out[i] = Stage{Name: name, Duration: t.stages[name]}
	}
	return out
}

// SetOutcome records a classification that the status code alone
// cannot carry (the panic-recovery middleware marks "panic" here,
// since any internal error answers 500).
func (t *Trace) SetOutcome(o string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.outcome = o
}

// Outcome returns the recorded classification, or "".
func (t *Trace) Outcome() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.outcome
}

// ServerTiming renders the stages as a Server-Timing header value
// (durations in milliseconds, the header's unit).
func (t *Trace) ServerTiming() string {
	var b strings.Builder
	for i, s := range t.Stages() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", s.Name, float64(s.Duration)/float64(time.Millisecond))
	}
	return b.String()
}

// traceKey is the context key for the request trace.
type traceKey struct{}

// WithTrace attaches a trace to a context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil — every Trace
// method is nil-safe, so callers never need to check.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartStage times one stage on the context's trace; without a trace
// (the CLI path, tests) it is a no-op.
func StartStage(ctx context.Context, name string) func() {
	return FromContext(ctx).StartStage(name)
}

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; an ID of
		// zeros still traces a request.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a client-supplied request ID is safe
// to accept: printable ASCII without quotes or backslashes (it lands
// in JSON logs and headers), at most 128 bytes.
func ValidRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}
