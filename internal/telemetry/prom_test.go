package telemetry

import (
	"strings"
	"testing"
)

func TestEscapeLabel(t *testing.T) {
	cases := map[string]string{
		"plain":             "plain",
		`/v1/eval`:          `/v1/eval`,
		`has"quote`:         `has\"quote`,
		`back\slash`:        `back\\slash`,
		"new\nline":         `new\nline`,
		`all"three\` + "\n": `all\"three\\\n`,
		"unicode µs ok":     "unicode µs ok",
	}
	for in, want := range cases {
		if got := EscapeLabel(in); got != want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	h := NewHistogram(LogBuckets(0.001, 10, 1))
	for _, v := range []float64{0.002, 0.05, 0.05, 3, 42} {
		h.Observe(v)
	}
	e := NewExposition()
	e.Family("app_requests_total", "counter", "Requests served.").
		Sample(7, "endpoint", "/v1/eval", "outcome", "ok").
		Sample(2, "endpoint", `tricky"ep\`, "outcome", "shed")
	e.Family("app_inflight", "gauge", "In-flight requests.").Sample(3)
	e.Family("app_latency_seconds", "histogram", "Latency.").
		Histogram(h.Snapshot(), "endpoint", "/v1/eval")

	scrape, err := ParseExposition(e.String())
	if err != nil {
		t.Fatalf("strict parse of own output failed: %v\npage:\n%s", err, e.String())
	}
	if v, ok := scrape.Value("app_requests_total", "endpoint", "/v1/eval", "outcome", "ok"); !ok || v != 7 {
		t.Fatalf("requests_total ok series: %g %v", v, ok)
	}
	// The escaped label must round-trip back to its raw value.
	if v, ok := scrape.Value("app_requests_total", "endpoint", `tricky"ep\`, "outcome", "shed"); !ok || v != 2 {
		t.Fatalf("escaped label did not round-trip: %g %v", v, ok)
	}
	if got := scrape.Total("app_requests_total"); got != 9 {
		t.Fatalf("Total = %g, want 9", got)
	}
	if v, ok := scrape.Value("app_latency_seconds_count", "endpoint", "/v1/eval"); !ok || v != 5 {
		t.Fatalf("histogram _count: %g %v", v, ok)
	}
	if v, ok := scrape.Value("app_latency_seconds_bucket", "endpoint", "/v1/eval", "le", "+Inf"); !ok || v != 5 {
		t.Fatalf("+Inf bucket: %g %v", v, ok)
	}
	if typ := scrape.Type("app_latency_seconds"); typ != "histogram" {
		t.Fatalf("Type = %q, want histogram", typ)
	}
}

func TestExpositionIntegersStayGreppable(t *testing.T) {
	e := NewExposition()
	e.Family("app_hits_total", "counter", "Hits.").Sample(1)
	if !strings.Contains(e.String(), "app_hits_total 1\n") {
		t.Fatalf("integer sample not rendered as integer:\n%s", e.String())
	}
}

func TestExpositionPanicsOnDuplicateFamily(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Family did not panic")
		}
	}()
	e := NewExposition()
	e.Family("x_total", "counter", "x")
	e.Family("x_total", "counter", "x again")
}

func TestParseExpositionRejectsMalformedPages(t *testing.T) {
	bad := map[string]string{
		"sample without family": "orphan_total 1\n",
		"TYPE before HELP":      "# TYPE x_total counter\n# HELP x_total x\nx_total 1\n",
		"unknown TYPE":          "# HELP x_total x\n# TYPE x_total flugel\nx_total 1\n",
		"duplicate TYPE":        "# HELP x x\n# TYPE x gauge\n# HELP y y\n# TYPE x gauge\n",
		"duplicate series":      "# HELP x x\n# TYPE x gauge\nx 1\nx 2\n",
		"duplicate series with labels": "# HELP x x\n# TYPE x gauge\n" +
			`x{b="2",a="1"} 1` + "\n" + `x{a="1",b="2"} 2` + "\n",
		"bad value":          "# HELP x x\n# TYPE x gauge\nx pancake\n",
		"unterminated label": "# HELP x x\n# TYPE x gauge\n" + `x{a="1 2` + "\n",
		"missing +Inf bucket": "# HELP h h\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"decreasing buckets": "# HELP h h\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"+Inf != count": "# HELP h h\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\nh_sum 1\nh_count 5\n",
		"histogram without count": "# HELP h h\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\nh_sum 1\n",
	}
	for name, page := range bad {
		if _, err := ParseExposition(page); err == nil {
			t.Errorf("%s: strict parser accepted malformed page:\n%s", name, page)
		}
	}
}

func TestParseExpositionToleratesLegalExtras(t *testing.T) {
	page := "# just a comment\n" +
		"# HELP x_total Total xs.\n# TYPE x_total counter\n" +
		"x_total 4 1712000000000\n" // trailing timestamp is legal
	s, err := ParseExposition(page)
	if err != nil {
		t.Fatalf("legal page rejected: %v", err)
	}
	if v, ok := s.Value("x_total"); !ok || v != 4 {
		t.Fatalf("x_total = %g %v, want 4", v, ok)
	}
}
