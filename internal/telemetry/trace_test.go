package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceStagesAccumulateInOrder(t *testing.T) {
	tr := NewTrace("abc123")
	tr.Add("decode", 2*time.Millisecond)
	tr.Add("compute", 10*time.Millisecond)
	tr.Add("decode", 3*time.Millisecond) // re-entry accumulates
	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	if stages[0].Name != "decode" || stages[0].Duration != 5*time.Millisecond {
		t.Fatalf("decode stage = %+v, want 5ms accumulated first", stages[0])
	}
	if stages[1].Name != "compute" || stages[1].Duration != 10*time.Millisecond {
		t.Fatalf("compute stage = %+v", stages[1])
	}
}

func TestTraceStartStageTimes(t *testing.T) {
	tr := NewTrace("t")
	done := tr.StartStage("compute")
	time.Sleep(5 * time.Millisecond)
	done()
	stages := tr.Stages()
	if len(stages) != 1 || stages[0].Duration <= 0 {
		t.Fatalf("StartStage recorded %+v", stages)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.StartStage("x")()
	tr.Add("x", time.Second)
	tr.SetOutcome("ok")
	if tr.Stages() != nil || tr.Outcome() != "" {
		t.Fatal("nil trace returned data")
	}
	// A context without a trace must be a no-op too.
	StartStage(context.Background(), "x")()
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace("race")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Add("compute", time.Microsecond)
				tr.Stages()
				tr.SetOutcome("ok")
			}
		}()
	}
	wg.Wait()
	if got := tr.Stages()[0].Duration; got != 1600*time.Microsecond {
		t.Fatalf("accumulated %v, want 1.6ms", got)
	}
}

func TestServerTimingFormat(t *testing.T) {
	tr := NewTrace("t")
	tr.Add("decode", 1500*time.Microsecond)
	tr.Add("compute", 42*time.Millisecond)
	got := tr.ServerTiming()
	want := "decode;dur=1.500, compute;dur=42.000"
	if got != want {
		t.Fatalf("ServerTiming = %q, want %q", got, want)
	}
}

func TestWithTraceFromContext(t *testing.T) {
	tr := NewTrace("ctx-id")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not return the attached trace")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare context not nil")
	}
	StartStage(ctx, "resolve")()
	if stages := tr.Stages(); len(stages) != 1 || stages[0].Name != "resolve" {
		t.Fatalf("context StartStage recorded %+v", stages)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("IDs %q/%q, want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatal("two generated IDs collided")
	}
	if !ValidRequestID(a) {
		t.Fatalf("generated ID %q fails its own validation", a)
	}
}

func TestValidRequestID(t *testing.T) {
	if !ValidRequestID("client-req-42_x.y") {
		t.Fatal("reasonable ID rejected")
	}
	for _, bad := range []string{
		"",
		"has space",
		"has\"quote",
		`has\slash`,
		"has\nnewline",
		"ünïcode",
		strings.Repeat("a", 129),
	} {
		if ValidRequestID(bad) {
			t.Errorf("ValidRequestID(%q) = true, want false", bad)
		}
	}
}
