package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestLogBucketsSpanAndGrowth(t *testing.T) {
	b := LogBuckets(1e-6, 10, 3)
	if b[0] != 1e-6 {
		t.Fatalf("first bound %g, want 1e-6", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Fatalf("last bound %g does not cover 10", last)
	}
	factor := math.Pow(10, 1.0/3)
	for i := 1; i < len(b); i++ {
		if got := b[i] / b[i-1]; math.Abs(got-factor) > 1e-9 {
			t.Fatalf("growth %g at %d, want %g", got, i, factor)
		}
	}
}

func TestHistogramCountSumMax(t *testing.T) {
	h := NewHistogram(LogBuckets(1, 100, 2))
	for _, v := range []float64{1, 2, 3, 500} { // 500 overflows
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count %d, want 4", s.Count)
	}
	if s.Sum != 506 {
		t.Fatalf("sum %g, want 506", s.Sum)
	}
	if s.Max != 500 {
		t.Fatalf("max %g, want 500", s.Max)
	}
	if over := s.Counts[len(s.Counts)-1]; over != 1 {
		t.Fatalf("overflow bucket %d, want 1", over)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestHistogramNegativeAndNaNClampToZero(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(-5)
	h.Observe(math.NaN())
	s := h.Snapshot()
	if s.Count != 2 || s.Counts[0] != 2 || s.Sum != 0 {
		t.Fatalf("clamped observations misrecorded: %+v", s)
	}
}

// TestQuantileAccuracy checks interpolated quantiles against a sorted
// reference on known distributions: the estimate must land within one
// bucket's relative width of the true order statistic.
func TestQuantileAccuracy(t *testing.T) {
	const perDecade = 5
	tolerance := math.Pow(10, 1.0/perDecade) // one bucket of relative error
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() float64{
		"uniform":   func() float64 { return 1e-4 + rng.Float64()*1e-2 },
		"lognormal": func() float64 { return 1e-4 * math.Exp(rng.NormFloat64()) },
		"bimodal": func() float64 {
			if rng.Intn(10) < 9 {
				return 60e-6 + rng.Float64()*10e-6 // the cache-hit mode
			}
			return 3e-3 + rng.Float64()*1e-3 // the compute mode
		},
	}
	for name, draw := range distributions {
		h := NewHistogram(LogBuckets(1e-6, 10, perDecade))
		values := make([]float64, 20000)
		for i := range values {
			values[i] = draw()
			h.Observe(values[i])
		}
		sort.Float64s(values)
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.99} {
			ref := values[int(math.Ceil(q*float64(len(values))))-1]
			got := s.Quantile(q)
			if ratio := got / ref; ratio > tolerance || ratio < 1/tolerance {
				t.Errorf("%s p%g: got %g, reference %g (ratio %.3f beyond bucket tolerance %.3f)",
					name, q*100, got, ref, ratio, tolerance)
			}
		}
		if got := s.Quantile(1); got != s.Max {
			t.Errorf("%s p100: got %g, want max %g", name, got, s.Max)
		}
	}
}

func TestQuantileEmptyAndSingleValue(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 %g, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.99} {
		if got := s.Quantile(q); got > 3 || got < 2 {
			t.Fatalf("constant-value p%g = %g, want within (2, 3]", q*100, got)
		}
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines;
// under -race this is the histogram's data-race proof, and the final
// snapshot must account for every observation exactly.
func TestConcurrentObserve(t *testing.T) {
	h := NewHistogram(LogBuckets(1e-6, 1, 3))
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(rng.Float64())
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if s.Max > 1 || s.Max <= 0 {
		t.Fatalf("max %g out of (0, 1]", s.Max)
	}
}

// TestSnapshotMergeDeterminism: merging per-shard snapshots must be
// associative and equal a single histogram fed the union, bucket for
// bucket.
func TestSnapshotMergeDeterminism(t *testing.T) {
	bounds := LogBuckets(1e-3, 1e3, 4)
	whole := NewHistogram(bounds)
	shards := make([]*Histogram, 3)
	for i := range shards {
		shards[i] = NewHistogram(bounds)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 9000; i++ {
		v := math.Exp(rng.NormFloat64() * 2)
		whole.Observe(v)
		shards[i%3].Observe(v)
	}
	ab := shards[0].Snapshot().Merge(shards[1].Snapshot()).Merge(shards[2].Snapshot())
	bc := shards[2].Snapshot().Merge(shards[1].Snapshot()).Merge(shards[0].Snapshot())
	want := whole.Snapshot()
	for name, got := range map[string]Snapshot{"left-fold": ab, "right-fold": bc} {
		if got.Count != want.Count || got.Max != want.Max ||
			math.Abs(got.Sum-want.Sum) > 1e-9*want.Sum {
			t.Fatalf("%s totals diverge: got %+v, want %+v", name, got, want)
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("%s bucket %d: got %d, want %d", name, i, got.Counts[i], want.Counts[i])
			}
		}
	}
	if got := (Snapshot{}).Merge(want); got.Count != want.Count {
		t.Fatalf("merge into zero snapshot lost data")
	}
}

func TestMergeRejectsMismatchedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched bounds did not panic")
		}
	}()
	a := NewHistogram([]float64{1, 2}).Snapshot()
	b := NewHistogram([]float64{1, 3}).Snapshot()
	a.Merge(b)
}

func TestVecLabelsAndDeterministicOrder(t *testing.T) {
	v := NewVec([]float64{1, 10}, "endpoint", "outcome")
	v.With("/v1/mc", "ok").Observe(0.5)
	v.With("/v1/evaluate", "ok").Observe(0.5)
	v.With("/v1/evaluate", "shed").Observe(0.5)
	if h1, h2 := v.With("/v1/mc", "ok"), v.With("/v1/mc", "ok"); h1 != h2 {
		t.Fatal("With returned distinct histograms for one label tuple")
	}
	series := v.Snapshots()
	if len(series) != 3 {
		t.Fatalf("got %d series, want 3", len(series))
	}
	want := [][]string{
		{"/v1/evaluate", "ok"},
		{"/v1/evaluate", "shed"},
		{"/v1/mc", "ok"},
	}
	for i, s := range series {
		if s.Labels[0] != want[i][0] || s.Labels[1] != want[i][1] {
			t.Fatalf("series %d labels %v, want %v", i, s.Labels, want[i])
		}
		if s.Snap.Count != 1 {
			t.Fatalf("series %d count %d, want 1", i, s.Snap.Count)
		}
	}
}
