package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Scrape is a parsed metrics page: every sample keyed by its
// canonical series identity (name plus sorted labels), with the
// declared family types. ParseExposition builds one strictly, so a
// page that parses is also a page real scrapers accept.
type Scrape struct {
	samples map[string]float64
	types   map[string]string
}

// ParseExposition parses a Prometheus text-format page strictly:
// every sample must belong to a family with HELP and TYPE declared
// first (histogram _bucket/_sum/_count samples belong to their base
// family), no family may be declared twice, no series may appear
// twice, and every histogram series must be internally consistent
// (le buckets cumulative and capped by a +Inf bucket equal to
// _count). The server's metrics test runs the full /metrics page
// through this, so a new series that forgets its HELP/TYPE — or a
// label that breaks the quoting — fails fast instead of breaking
// scrapers in production.
func ParseExposition(text string) (*Scrape, error) {
	s := &Scrape{
		samples: make(map[string]float64),
		types:   make(map[string]string),
	}
	help := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			switch kind {
			case "HELP":
				if help[name] {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				help[name] = true
			case "TYPE":
				if _, ok := s.types[name]; ok {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if !help[name] {
					return nil, fmt.Errorf("line %d: TYPE %s before its HELP", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
				s.types[name] = rest
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, ok := s.familyOf(name); !ok {
			return nil, fmt.Errorf("line %d: sample %s has no preceding HELP/TYPE family", lineNo, name)
		}
		key := seriesKey(name, labels)
		if _, dup := s.samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		s.samples[key] = value
	}
	if err := s.checkHistograms(); err != nil {
		return nil, err
	}
	return s, nil
}

// familyOf resolves a sample name to its declared family: the name
// itself, or — for _bucket/_sum/_count — a declared histogram or
// summary base.
func (s *Scrape) familyOf(name string) (string, bool) {
	if _, ok := s.types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		switch s.types[base] {
		case "histogram", "summary":
			return base, true
		}
	}
	return "", false
}

// checkHistograms validates every histogram family: each series (the
// labels minus le) must have a +Inf bucket equal to its _count, and
// cumulative bucket counts must be non-decreasing by le.
func (s *Scrape) checkHistograms() error {
	type serieskey struct{ family, rest string }
	buckets := make(map[serieskey]map[float64]float64)
	for key, v := range s.samples {
		name, labels := splitKey(key)
		base, found := strings.CutSuffix(name, "_bucket")
		if !found || s.types[base] != "histogram" {
			continue
		}
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("histogram %s: bucket series %s has no le label", base, key)
		}
		bound := inf
		if le != "+Inf" {
			var err error
			bound, err = strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", base, le)
			}
		}
		delete(labels, "le")
		k := serieskey{base, canonLabels(labels)}
		if buckets[k] == nil {
			buckets[k] = make(map[float64]float64)
		}
		buckets[k][bound] = v
	}
	for k, bs := range buckets {
		bounds := make([]float64, 0, len(bs))
		for b := range bs {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		if len(bounds) == 0 || bounds[len(bounds)-1] != inf {
			return fmt.Errorf("histogram %s{%s}: no +Inf bucket", k.family, k.rest)
		}
		prev := -1.0
		for _, b := range bounds {
			if bs[b] < prev {
				return fmt.Errorf("histogram %s{%s}: bucket counts decrease at le=%g", k.family, k.rest, b)
			}
			prev = bs[b]
		}
		countKey := k.family + "_count"
		if k.rest != "" {
			countKey += "{" + k.rest + "}"
		}
		count, ok := s.samples[countKey]
		if !ok {
			return fmt.Errorf("histogram %s{%s}: missing _count", k.family, k.rest)
		}
		if bs[inf] != count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != count %g",
				k.family, k.rest, bs[inf], count)
		}
	}
	return nil
}

var inf = math.Inf(1)

// Value returns one series' sample; labels are alternating name,
// value pairs, matched exactly.
func (s *Scrape) Value(name string, labels ...string) (float64, bool) {
	if len(labels)%2 != 0 {
		return 0, false
	}
	m := make(map[string]string, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		m[labels[i]] = labels[i+1]
	}
	key := name
	if c := canonLabels(m); c != "" {
		key += "{" + c + "}"
	}
	v, ok := s.samples[key]
	return v, ok
}

// Total sums every series of one metric name, across all label
// values — the page-wide requests_total, say.
func (s *Scrape) Total(name string) float64 {
	var sum float64
	for key, v := range s.samples {
		n, _ := splitKey(key)
		if n == name {
			sum += v
		}
	}
	return sum
}

// Names lists the distinct sample names on the page, sorted.
func (s *Scrape) Names() []string {
	seen := make(map[string]bool)
	for key := range s.samples {
		n, _ := splitKey(key)
		seen[n] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Type returns a declared family's TYPE.
func (s *Scrape) Type(family string) string { return s.types[family] }

// parseComment parses a "# HELP name text" / "# TYPE name type" line;
// other comments return kind "".
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	kind, after, _ := strings.Cut(body, " ")
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", nil
	}
	name, rest, ok := strings.Cut(after, " ")
	if name == "" || (kind == "TYPE" && !ok) {
		return "", "", "", fmt.Errorf("malformed %s line %q", kind, line)
	}
	return kind, name, rest, nil
}

// parseSample parses one "name{labels} value" sample line.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = make(map[string]string)
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq <= 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := rest[:eq]
			val, remain, err := unquoteLabel(rest[eq+1:])
			if err != nil {
				return "", nil, 0, fmt.Errorf("%v in %q", err, line)
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %s in %q", lname, line)
			}
			labels[lname] = val
			rest = remain
		}
	}
	rest = strings.TrimLeft(rest, " ")
	// A trailing timestamp is legal in the format; our writer never
	// emits one, but the parser stays honest about the grammar.
	valStr, _, _ := strings.Cut(rest, " ")
	value, err = strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", valStr)
	}
	return name, labels, value, nil
}

// unquoteLabel decodes a quoted label value starting at the opening
// quote, returning the value and the remainder after the closing
// quote.
func unquoteLabel(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("label value not quoted")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// seriesKey builds the canonical series identity: name{k="v",...}
// with labels sorted by name.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + canonLabels(labels) + "}"
}

// canonLabels renders labels sorted, escaped, comma-joined.
func canonLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(labels[n]))
		b.WriteByte('"')
	}
	return b.String()
}

// splitKey splits a canonical series key back into name and labels.
func splitKey(key string) (string, map[string]string) {
	name, rest, found := strings.Cut(key, "{")
	if !found {
		return key, nil
	}
	labels := make(map[string]string)
	rest = strings.TrimSuffix(rest, "}")
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			break
		}
		val, remain, err := unquoteLabel(rest[eq+1:])
		if err != nil {
			break
		}
		labels[rest[:eq]] = val
		rest = strings.TrimPrefix(remain, ",")
	}
	return name, labels
}
