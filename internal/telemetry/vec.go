package telemetry

import (
	"sort"
	"strings"
	"sync"
)

// Vec is a set of histograms sharing one bucket layout, keyed by
// label values — the shape behind
// greenfpga_request_duration_seconds{endpoint=...,outcome=...}.
// With is read-locked on the hot path; a label set's first
// observation takes the write lock once to create its histogram.
type Vec struct {
	bounds []float64
	names  []string // label names, fixed at construction

	mu sync.RWMutex
	m  map[string]*vecEntry
}

type vecEntry struct {
	values []string
	h      *Histogram
}

// NewVec returns a histogram vector over the given bucket bounds and
// label names.
func NewVec(bounds []float64, labelNames ...string) *Vec {
	return &Vec{
		bounds: bounds,
		names:  labelNames,
		m:      make(map[string]*vecEntry),
	}
}

// LabelNames returns the vector's label names, in declaration order.
func (v *Vec) LabelNames() []string { return v.names }

// With returns the histogram for one label-value tuple, creating it
// on first use. The value count must match the label names.
func (v *Vec) With(values ...string) *Histogram {
	if len(values) != len(v.names) {
		panic("telemetry: label value count does not match the vec's label names")
	}
	// \xff cannot appear in UTF-8 text, so the join is unambiguous.
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	e, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return e.h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if e, ok := v.m[key]; ok {
		return e.h
	}
	e = &vecEntry{values: append([]string(nil), values...), h: NewHistogram(v.bounds)}
	v.m[key] = e
	return e.h
}

// Series is one labeled snapshot of a Vec.
type Series struct {
	Labels []string // label values, in the vec's LabelNames order
	Snap   Snapshot
}

// Snapshots returns every series sorted by label values, for
// deterministic rendering.
func (v *Vec) Snapshots() []Series {
	v.mu.RLock()
	entries := make([]*vecEntry, 0, len(v.m))
	for _, e := range v.m {
		entries = append(entries, e)
	}
	v.mu.RUnlock()
	out := make([]Series, len(entries))
	for i, e := range entries {
		out[i] = Series{Labels: e.values, Snap: e.h.Snapshot()}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Labels, out[j].Labels
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
