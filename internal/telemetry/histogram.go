// Package telemetry holds the zero-dependency observability
// primitives behind `greenfpga serve` and `greenfpga loadgen`:
// a lock-cheap log-bucketed histogram (atomic buckets, mergeable
// snapshots, interpolated quantiles), a label-keyed histogram vector,
// a Prometheus text-exposition builder with proper label escaping and
// a strict parser for it, and a request-scoped trace (request ID plus
// per-stage timers) that rides a context.Context through the serve
// path. Nothing here imports the api or server packages, so every
// layer — server, client, load generator, tests — can share one
// measurement vocabulary.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// LogBuckets returns log-spaced histogram bucket upper bounds from
// min to at least max, with perDecade buckets per factor of ten.
// Durations in seconds and sizes in bytes both span several decades,
// which is exactly what fixed-width buckets cannot cover and
// log-spaced ones can: relative (not absolute) resolution everywhere.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade < 1 {
		panic(fmt.Sprintf("telemetry: bad bucket spec [%g, %g] x %d", min, max, perDecade))
	}
	var out []float64
	for i := 0; ; i++ {
		b := min * math.Pow(10, float64(i)/float64(perDecade))
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe
// calls: one atomic add per bucket, no locks, no allocation on the
// hot path. Values above the last bound land in an overflow bucket
// whose quantiles report the observed maximum.
type Histogram struct {
	bounds []float64 // sorted upper bounds; immutable after New
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-add
	max    atomic.Uint64 // float64 bits, CAS-max
}

// NewHistogram returns a histogram over the given sorted upper
// bounds (LogBuckets builds suitable ones).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: bucket bounds not increasing at %d: %g <= %g",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1), // +1: overflow
	}
}

// Observe records one value. Negative values clamp to zero (they can
// only arise from clock weirdness; losing them would skew counts).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	// First bound whose value >= v: the bucket is (prev, bound].
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Snapshot copies the histogram's current state. Buckets are read
// individually, so a snapshot taken mid-Observe can be off by the
// in-flight observation; totals are recomputed from the bucket copy
// so Count always equals the bucket sum.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Max:    math.Float64frombits(h.max.Load()),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Snapshot is an immutable copy of a histogram: per-bucket counts
// (the last entry is the overflow bucket), total count and sum, and
// the observed maximum. Snapshots with identical bounds merge.
type Snapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
	Max    float64
}

// Merge folds other into s and returns the result; both snapshots
// must share bucket bounds (histograms built from the same LogBuckets
// spec do).
func (s Snapshot) Merge(other Snapshot) Snapshot {
	if len(s.Bounds) == 0 {
		return other
	}
	if len(other.Bounds) == 0 {
		return s
	}
	if len(s.Bounds) != len(other.Bounds) {
		panic(fmt.Sprintf("telemetry: merging histograms with %d vs %d buckets",
			len(s.Bounds), len(other.Bounds)))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != other.Bounds[i] {
			panic(fmt.Sprintf("telemetry: merging histograms with different bounds at %d: %g vs %g",
				i, s.Bounds[i], other.Bounds[i]))
		}
	}
	out := Snapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + other.Count,
		Sum:    s.Sum + other.Sum,
		Max:    math.Max(s.Max, other.Max),
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + other.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank. The
// overflow bucket reports the observed maximum, and every estimate is
// capped at it (no observation exceeds Max, so the cap only removes
// bucket-edge overestimation).
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(s.Bounds) {
			return s.Max // overflow bucket
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		v := lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
		if s.Max > 0 && v > s.Max {
			v = s.Max
		}
		return v
	}
	return s.Max
}

// Mean is the average observed value.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
