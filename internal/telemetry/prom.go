package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exposition builds a Prometheus text-format (version 0.0.4) metrics
// page. Families are declared once (HELP and TYPE ahead of their
// samples, the order scrapers require) and label values are escaped
// per the format — the two properties the strict parser in this
// package checks, so the server's /metrics page can never silently
// drift from what scrapers accept.
type Exposition struct {
	buf      bytes.Buffer
	family   string
	familyTy string
	declared map[string]bool
}

// NewExposition returns an empty metrics page builder.
func NewExposition() *Exposition {
	return &Exposition{declared: make(map[string]bool)}
}

// Family starts a metric family: HELP and TYPE lines for name. Every
// subsequent Sample/Histogram call renders under it until the next
// Family. Re-declaring a family panics — that is exactly the
// duplicate-TYPE page corruption the strict checker exists to catch,
// and a programming error here, not a runtime condition.
func (e *Exposition) Family(name, typ, help string) *Exposition {
	if e.declared[name] {
		panic("telemetry: family " + name + " declared twice")
	}
	e.declared[name] = true
	e.family, e.familyTy = name, typ
	fmt.Fprintf(&e.buf, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&e.buf, "# TYPE %s %s\n", name, typ)
	return e
}

// FamilyPrefab is a metric family's static header — the HELP and TYPE
// lines rendered once at construction. Hot scrape paths declare
// families through prefabs so the per-scrape work is a single buffer
// write instead of two fmt.Fprintf calls per family.
type FamilyPrefab struct {
	name, typ string
	header    []byte
}

// NewFamilyPrefab renders a family header once, for reuse across
// every scrape.
func NewFamilyPrefab(name, typ, help string) *FamilyPrefab {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
	return &FamilyPrefab{name: name, typ: typ, header: b.Bytes()}
}

// Prefab starts a metric family from its precomputed header; it is
// Family minus the per-scrape formatting.
func (e *Exposition) Prefab(f *FamilyPrefab) *Exposition {
	if e.declared[f.name] {
		panic("telemetry: family " + f.name + " declared twice")
	}
	e.declared[f.name] = true
	e.family, e.familyTy = f.name, f.typ
	e.buf.Write(f.header)
	return e
}

// Reset empties the builder for reuse (pooled scrape paths); the
// underlying buffer's capacity is retained.
func (e *Exposition) Reset() {
	e.buf.Reset()
	e.family, e.familyTy = "", ""
	clear(e.declared)
}

// Sample renders one sample of the current family; labels are
// alternating name, value pairs.
func (e *Exposition) Sample(value float64, labels ...string) *Exposition {
	if e.family == "" || e.familyTy == "histogram" {
		panic("telemetry: Sample outside a counter/gauge family")
	}
	e.sample(e.family, value, labels)
	return e
}

// Histogram renders one histogram series of the current family:
// cumulative _bucket samples with le labels, then _sum and _count.
func (e *Exposition) Histogram(s Snapshot, labels ...string) *Exposition {
	if e.familyTy != "histogram" {
		panic("telemetry: Histogram outside a histogram family")
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		e.sample(e.family+"_bucket", float64(cum),
			append(append([]string(nil), labels...), "le", formatFloat(b)))
	}
	e.sample(e.family+"_bucket", float64(s.Count),
		append(append([]string(nil), labels...), "le", "+Inf"))
	e.sample(e.family+"_sum", s.Sum, labels)
	e.sample(e.family+"_count", float64(s.Count), labels)
	return e
}

// sample renders one line: name{labels} value.
func (e *Exposition) sample(name string, value float64, labels []string) {
	if len(labels)%2 != 0 {
		panic("telemetry: odd label list for " + name)
	}
	e.buf.WriteString(name)
	if len(labels) > 0 {
		e.buf.WriteByte('{')
		for i := 0; i < len(labels); i += 2 {
			if i > 0 {
				e.buf.WriteByte(',')
			}
			e.buf.WriteString(labels[i])
			e.buf.WriteString(`="`)
			e.buf.WriteString(EscapeLabel(labels[i+1]))
			e.buf.WriteByte('"')
		}
		e.buf.WriteByte('}')
	}
	e.buf.WriteByte(' ')
	e.buf.WriteString(formatFloat(value))
	e.buf.WriteByte('\n')
}

// WriteTo writes the page to w.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(e.buf.Bytes())
	return int64(n), err
}

// String returns the page text.
func (e *Exposition) String() string { return e.buf.String() }

// EscapeLabel escapes a label value per the text exposition format:
// backslash, double-quote and newline get backslash escapes — and
// nothing else does (Go's %q would also escape non-ASCII and control
// bytes in ways Prometheus parsers do not undo).
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline only (quotes
// are fine in help).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value the shortest exact way; integral
// values print as integers, which keeps counters grep-able.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
