package faults

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// okHandler writes a fixed 26-byte JSON body.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","pad":"xyz"}`)
	})
}

// run fires n sequential requests and tallies the injector.
func run(t *testing.T, inj *Injector, n int) {
	t.Helper()
	h := inj.Wrap(okHandler())
	for range n {
		w := httptest.NewRecorder()
		func() {
			defer func() { recover() }() // a real server recovers, so must the harness
			h.ServeHTTP(w, httptest.NewRequest("GET", "/x", nil))
		}()
	}
}

// TestDeterministicSequence checks two injectors with one seed inject
// identical fault totals over identical request streams.
func TestDeterministicSequence(t *testing.T) {
	plan := Plan{PanicRate: 0.2, LatencyRate: 0.2, Latency: time.Microsecond,
		UnavailableRate: 0.2, TruncateRate: 0.2}
	a, b := New(7, plan), New(7, plan)
	run(t, a, 200)
	run(t, b, 200)
	if a.Panics.Load() != b.Panics.Load() || a.Latencies.Load() != b.Latencies.Load() ||
		a.Unavailables.Load() != b.Unavailables.Load() || a.Truncates.Load() != b.Truncates.Load() {
		t.Fatalf("same seed, different injections: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Panics.Load(), a.Latencies.Load(), a.Unavailables.Load(), a.Truncates.Load(),
			b.Panics.Load(), b.Latencies.Load(), b.Unavailables.Load(), b.Truncates.Load())
	}
	if a.Total() == 0 {
		t.Fatal("no faults injected over 200 draws at 80% rate")
	}
	if got := a.Panics.Load() + a.Latencies.Load() + a.Unavailables.Load() + a.Truncates.Load(); got != a.Total() {
		t.Fatalf("Total() = %d, want sum %d", a.Total(), got)
	}
}

// TestTruncateCutsBody checks the truncation fault delivers a strict
// prefix of the real body.
func TestTruncateCutsBody(t *testing.T) {
	inj := New(1, Plan{TruncateRate: 1, TruncateAt: 8})
	w := httptest.NewRecorder()
	inj.Wrap(okHandler()).ServeHTTP(w, httptest.NewRequest("GET", "/x", nil))
	if got := w.Body.String(); got != `{"status` {
		t.Fatalf("truncated body = %q, want the 8-byte prefix", got)
	}
	if inj.Truncates.Load() != 1 {
		t.Fatalf("Truncates = %d, want 1", inj.Truncates.Load())
	}
}

// TestUnavailableShape checks the induced 503 looks like the server's
// own shed: envelope body plus Retry-After.
func TestUnavailableShape(t *testing.T) {
	inj := New(1, Plan{UnavailableRate: 1})
	w := httptest.NewRecorder()
	inj.Wrap(okHandler()).ServeHTTP(w, httptest.NewRequest("GET", "/x", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("induced 503 carries no Retry-After")
	}
	body, _ := io.ReadAll(w.Result().Body)
	if want := `"code":"overloaded"`; !strings.Contains(string(body), want) {
		t.Fatalf("body %q does not carry %s", body, want)
	}
}

// TestPanicFault checks the panic fault escapes to the caller (where
// recovery middleware lives) and is counted.
func TestPanicFault(t *testing.T) {
	inj := New(1, Plan{PanicRate: 1})
	defer func() {
		if recover() == nil {
			t.Error("panic fault did not panic")
		}
		if inj.Panics.Load() != 1 {
			t.Errorf("Panics = %d, want 1", inj.Panics.Load())
		}
	}()
	inj.Wrap(okHandler()).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
}
