// Package faults is a deterministic, seed-driven fault injector for
// resilience testing. An Injector wraps an http.Handler (it fits the
// server's test-only ComputeWrap hook) and, per request, draws from a
// seeded PRNG to decide whether to misbehave: panic, stall before
// computing, answer a transient 503, or cut the response body short.
// Every injected fault is counted, so a chaos test can reconcile the
// server's /metrics against what was actually inflicted.
//
// The draw sequence is fully determined by the seed; under concurrent
// requests the assignment of draws to requests follows arrival order,
// so totals are deterministic even when per-request outcomes are not.
// The package is test-only: nothing in the serving path imports it.
package faults

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"
)

// Plan sets per-request fault probabilities. Rates are cumulative
// draws from one uniform sample, so their sum must be <= 1; the
// remainder passes the request through untouched.
type Plan struct {
	// PanicRate is the chance the wrapped handler is replaced by a
	// panic (exercises recovery middleware).
	PanicRate float64
	// LatencyRate is the chance the request stalls for Latency before
	// the handler runs (exercises deadlines under slow compute).
	LatencyRate float64
	// Latency is the injected stall (default 10ms).
	Latency time.Duration
	// UnavailableRate is the chance the request answers a transient
	// 503 overloaded envelope with Retry-After: 1 (exercises client
	// retries).
	UnavailableRate float64
	// TruncateRate is the chance the response body is cut short after
	// TruncateAt bytes (exercises client handling of garbled 2xx).
	TruncateRate float64
	// TruncateAt is where the body is cut (default 8 bytes).
	TruncateAt int
}

// Injector injects the Plan's faults into wrapped handlers.
type Injector struct {
	plan Plan

	mu  sync.Mutex
	rng *rand.Rand

	// Panics, Latencies, Unavailables, Truncates count the faults
	// actually injected, by kind.
	Panics       atomic.Uint64
	Latencies    atomic.Uint64
	Unavailables atomic.Uint64
	Truncates    atomic.Uint64
}

// New builds an Injector drawing from a PRNG seeded with seed.
func New(seed int64, plan Plan) *Injector {
	if plan.Latency <= 0 {
		plan.Latency = 10 * time.Millisecond
	}
	if plan.TruncateAt <= 0 {
		plan.TruncateAt = 8
	}
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(seed))}
}

// fault kinds, in cumulative-draw order.
const (
	faultNone = iota
	faultPanic
	faultLatency
	faultUnavailable
	faultTruncate
)

// draw picks the next request's fate from the seeded sequence.
func (i *Injector) draw() int {
	i.mu.Lock()
	u := i.rng.Float64()
	i.mu.Unlock()
	p := i.plan
	switch {
	case u < p.PanicRate:
		return faultPanic
	case u < p.PanicRate+p.LatencyRate:
		return faultLatency
	case u < p.PanicRate+p.LatencyRate+p.UnavailableRate:
		return faultUnavailable
	case u < p.PanicRate+p.LatencyRate+p.UnavailableRate+p.TruncateRate:
		return faultTruncate
	default:
		return faultNone
	}
}

// Total reports every fault injected so far.
func (i *Injector) Total() uint64 {
	return i.Panics.Load() + i.Latencies.Load() + i.Unavailables.Load() + i.Truncates.Load()
}

// Wrap returns next behind the fault layer; pass it as the server's
// ComputeWrap.
func (i *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch i.draw() {
		case faultPanic:
			i.Panics.Add(1)
			panic("faults: induced panic")
		case faultLatency:
			i.Latencies.Add(1)
			t := time.NewTimer(i.plan.Latency)
			defer t.Stop()
			select {
			case <-r.Context().Done():
				// The deadline (or the client) gave up during the
				// stall; let the handler observe the dead context.
			case <-t.C:
			}
			next.ServeHTTP(w, r)
		case faultUnavailable:
			i.Unavailables.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"code":"overloaded","message":"faults: induced transient unavailability"}`) //nolint:errcheck
		case faultTruncate:
			i.Truncates.Add(1)
			next.ServeHTTP(&truncatingWriter{ResponseWriter: w, remaining: i.plan.TruncateAt}, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// truncatingWriter passes the first remaining bytes through and
// silently swallows the rest, simulating a response cut short on the
// wire. Writes report full length so handlers proceed obliviously.
type truncatingWriter struct {
	http.ResponseWriter
	remaining int
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	n := len(p)
	if t.remaining <= 0 {
		return n, nil
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	if _, err := t.ResponseWriter.Write(p); err != nil {
		return 0, err
	}
	t.remaining -= len(p)
	return n, nil
}
