// Fleet planner: a heterogeneous accelerator portfolio — prototypes,
// pilots, and a mass-market product — split optimally between one
// shared, reconfigurable FPGA fleet and dedicated ASICs. This turns
// the paper's conclusion (FPGAs for numerous low-volume short-lived
// applications, ASICs for high-volume long-lived ones) into a decision
// procedure.
//
//	go run ./examples/fleet-planner
package main

import (
	"fmt"
	"log"

	"greenfpga"
)

func main() {
	domain, err := greenfpga.DomainByName("DNN")
	if err != nil {
		log.Fatal(err)
	}
	pair, err := domain.Pair()
	if err != nil {
		log.Fatal(err)
	}

	portfolio := []greenfpga.Application{
		{Name: "research-prototype", Lifetime: greenfpga.Years(0.5), Volume: 2e3},
		{Name: "robotics-pilot", Lifetime: greenfpga.Years(1), Volume: 2e4},
		{Name: "smart-camera", Lifetime: greenfpga.Years(2), Volume: 2e5},
		{Name: "phone-npu", Lifetime: greenfpga.Years(4), Volume: 3e6},
		{Name: "legacy-refresh", Lifetime: greenfpga.Years(1), Volume: 5e4},
		{Name: "automotive-retrofit", Lifetime: greenfpga.Years(1.5), Volume: 8e4},
	}

	plan, err := greenfpga.OptimizePortfolio(greenfpga.PlannerInputs{
		FPGA: pair.FPGA,
		ASIC: pair.ASIC,
		Apps: portfolio,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Optimal platform assignment (DNN iso-performance pair):")
	for _, a := range plan.Assignments {
		fmt.Printf("  %-22s -> %-4s  (%v)\n", a.App, a.Platform, a.Cost)
	}
	fmt.Printf("  %-22s    %-4s  (%v)\n", "shared fleet embodied", "", plan.FleetEmbodied)

	fmt.Printf("\nPortfolio total: %v  (exact solve: %v)\n", plan.Total, plan.Exact)
	fmt.Printf("All-ASIC baseline: %v\n", plan.AllASIC)
	fmt.Printf("All-FPGA baseline: %v\n", plan.AllFPGA)
	fmt.Printf("Savings vs best single-platform strategy: %v\n", plan.Savings())
	fmt.Printf("%d of %d applications ride the FPGA fleet.\n", plan.FPGAApps(), len(portfolio))
}
