// Industry testcases: evaluate the Table 3 devices (Moffett Antoum and
// TPU-class ASICs, Agilex 7 and Stratix 10-class FPGAs) under the
// paper's §4.3 deployment assumptions and print the component
// breakdowns of Figs. 10 and 11.
//
//	go run ./examples/industry-testcases
package main

import (
	"fmt"
	"log"
	"os"

	"greenfpga"
)

func main() {
	fmt.Println("Industry devices (Table 3):")
	for _, s := range greenfpga.IndustryDevices() {
		capacity := ""
		if s.Kind == greenfpga.FPGA {
			capacity = fmt.Sprintf(", %.0f Mgate capacity", s.CapacityGates/1e6)
		}
		fmt.Printf("  %-14s %-4s %s, %s, %s%s  (%s)\n",
			s.Name, s.Kind, s.Node.Name, s.DieArea, s.PeakPower, capacity, s.BasedOn)
	}
	fmt.Println()

	// The full Fig. 10 / Fig. 11 reproduction comes straight from the
	// experiment registry.
	for _, id := range []string{"fig10", "fig11"} {
		if err := greenfpga.RenderExperiment(id, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	// A custom industry scenario: what if the TPU-class ASIC's single
	// application only lives three years instead of six?
	spec, err := greenfpga.DeviceByName("IndustryASIC2")
	if err != nil {
		log.Fatal(err)
	}
	platform := greenfpga.Platform{
		Spec:            spec,
		DutyCycle:       0.3,
		PUE:             1.2,
		DesignEngineers: 500,
		DesignDuration:  greenfpga.Years(2),
	}
	for _, years := range []float64{3, 6} {
		res, err := greenfpga.Evaluate(platform,
			greenfpga.Uniform("tpu", 1, greenfpga.Years(years), 1e6, 0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("IndustryASIC2, one application for %g years: total %v (operation %v)\n",
			years, res.Total(), res.Breakdown.Operation)
	}
}
