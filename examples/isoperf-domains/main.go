// Iso-performance domains: reproduce the paper's §4.2 story for the
// three Table 2 domains — where the A2F and F2A crossovers fall for
// DNN, image processing, and cryptography accelerators.
//
//	go run ./examples/isoperf-domains
package main

import (
	"fmt"
	"log"

	"greenfpga"
)

func main() {
	fmt.Println("Iso-performance FPGA vs ASIC (Table 2 testcases, V=1e6 units)")
	fmt.Println()

	for _, d := range greenfpga.Domains() {
		pair, err := d.Pair()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (FPGA/ASIC area %gx, power %gx):\n", d.Name, d.AreaRatio, d.PowerRatio)

		// Experiment A: how many applications until the FPGA wins?
		n, found, err := pair.CrossoverNumApps(greenfpga.Years(2), 1e6, 0, 20)
		if err != nil {
			log.Fatal(err)
		}
		if found {
			fmt.Printf("  A2F: FPGA wins from %d applications (T=2y)\n", n)
		} else {
			fmt.Println("  A2F: no crossover within 20 applications")
		}

		// Experiment B: below which application lifetime does it win?
		tstar, found, err := pair.CrossoverLifetime(5, 1e6, 0, greenfpga.Years(0.05), greenfpga.Years(5))
		if err != nil {
			log.Fatal(err)
		}
		if found {
			fmt.Printf("  F2A: FPGA wins below %.2f-year application lifetimes (N=5)\n", tstar.Years())
		} else {
			c, err := pair.Compare(greenfpga.Uniform("b", 5, greenfpga.Years(1), 1e6, 0))
			if err != nil {
				log.Fatal(err)
			}
			who := "FPGA"
			if c.Ratio > 1 {
				who = "ASIC"
			}
			fmt.Printf("  F2A: no lifetime crossover; %s always wins (N=5)\n", who)
		}

		// Experiment C: below which volume does it win?
		vstar, found, err := pair.CrossoverVolume(5, greenfpga.Years(2), 0, 1e3, 1e7)
		if err != nil {
			log.Fatal(err)
		}
		if found {
			fmt.Printf("  F2A: FPGA wins below %.0fK units (N=5, T=2y)\n", vstar/1e3)
		} else {
			fmt.Println("  F2A: no volume crossover in [1e3, 1e7]")
		}
		fmt.Println()
	}

	fmt.Println("Paper comparison: DNN crosses at 6 apps / 1.6 years; ImgProc at 12 apps")
	fmt.Println("and 300K units with ASICs winning every lifetime; Crypto favours FPGAs")
	fmt.Println("from the second application. See EXPERIMENTS.md for the full record.")
}
