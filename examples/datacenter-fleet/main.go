// Datacenter fleet: a cloud operator deploys 50K FPGA accelerator
// cards and reconfigures them across ML serving generations, the
// setting of the paper's cloud-FPGA motivation (Catapult-style). The
// example shows how deployment region, PUE and chip lifetime move the
// fleet's carbon footprint, and where the ASIC alternative would cross.
//
//	go run ./examples/datacenter-fleet
package main

import (
	"fmt"
	"log"

	"greenfpga"
)

const (
	fleetSize  = 50e3
	appYears   = 1.5 // ML serving generations turn over quickly
	generation = 8   // applications over the fleet's 12-year life
)

func main() {
	spec, err := greenfpga.DeviceByName("IndustryFPGA1")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fleet: %g x %s, %d application generations x %g years\n\n",
		fleetSize, spec.Name, generation, appYears)

	// Regional siting: the same fleet on different grids.
	fmt.Println("Deployment region (duty 30%, PUE 1.2):")
	for _, region := range []string{"usa", "europe", "taiwan", "iceland", "world"} {
		mix, err := greenfpga.GridByRegion(region)
		if err != nil {
			log.Fatal(err)
		}
		p := greenfpga.Platform{
			Spec:            spec,
			DutyCycle:       0.3,
			PUE:             1.2,
			UseMix:          mix,
			DesignEngineers: 666,
			DesignDuration:  greenfpga.Years(2),
			ChipLifetime:    greenfpga.Years(15),
		}
		res, err := greenfpga.Evaluate(p,
			greenfpga.Uniform("fleet", generation, greenfpga.Years(appYears), fleetSize, 0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s total %-12v operation %-12v embodied %v\n",
			region, res.Total(), res.Breakdown.Operation, res.Breakdown.Embodied())
	}

	// Facility efficiency: PUE is a straight multiplier on operation.
	fmt.Println("\nFacility PUE (US grid):")
	usa, _ := greenfpga.GridByRegion("usa")
	for _, pue := range []float64{1.1, 1.2, 1.5, 2.0} {
		p := greenfpga.Platform{
			Spec: spec, DutyCycle: 0.3, PUE: pue, UseMix: usa,
			DesignEngineers: 666, DesignDuration: greenfpga.Years(2),
		}
		res, err := greenfpga.Evaluate(p,
			greenfpga.Uniform("fleet", generation, greenfpga.Years(appYears), fleetSize, 0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  PUE %.1f: total %v\n", pue, res.Total())
	}

	// The cumulative timeline with a 15-year chip lifetime: one fleet
	// build serves all eight generations.
	p := greenfpga.Platform{
		Spec: spec, DutyCycle: 0.3, PUE: 1.2, UseMix: usa,
		DesignEngineers: 666, DesignDuration: greenfpga.Years(2),
		ChipLifetime: greenfpga.Years(15),
	}
	lc, err := greenfpga.RunLifecycle(greenfpga.LifecycleConfig{
		Platform:    p,
		AppLifetime: greenfpga.Years(appYears),
		Horizon:     greenfpga.Years(appYears * generation),
		Volume:      fleetSize,
		Samples:     8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCumulative fleet CFP over the deployment:")
	for _, pt := range lc.Curve {
		fmt.Printf("  year %5.1f: %v\n", pt.Time.Years(), pt.Cumulative)
	}
	fmt.Printf("\nFleet events: %d (design, hardware, per-generation reconfiguration)\n", len(lc.Events))
}
