// Quickstart: build a custom FPGA/ASIC pair with the public API,
// evaluate a multi-application scenario, and print the verdict.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"greenfpga"
)

func main() {
	// A 7nm edge-inference ASIC: one chip design per application.
	node, err := greenfpga.NodeByName("7nm")
	if err != nil {
		log.Fatal(err)
	}
	asic := greenfpga.Platform{
		Spec: greenfpga.DeviceSpec{
			Name:      "edge-npu-asic",
			Kind:      greenfpga.ASIC,
			Node:      node,
			DieArea:   greenfpga.MM2(120),
			PeakPower: greenfpga.Watts(8),
		},
		DutyCycle:       0.1,
		DesignEngineers: 250,
		DesignDuration:  greenfpga.Years(2),
	}

	// The reconfigurable alternative: 3x the silicon, ~1.9x the power,
	// one design amortized over every application.
	fpga := asic
	fpga.Spec = greenfpga.DeviceSpec{
		Name:          "edge-fpga",
		Kind:          greenfpga.FPGA,
		Node:          node,
		DieArea:       greenfpga.MM2(360),
		PeakPower:     greenfpga.Watts(15),
		CapacityGates: 200e6,
	}

	pair := greenfpga.Pair{FPGA: fpga, ASIC: asic}

	fmt.Println("Edge accelerator, 100K units, 1.5-year application generations:")
	for _, nApps := range []int{1, 2, 4, 6, 8} {
		scenario := greenfpga.Uniform("edge", nApps, greenfpga.Years(1.5), 100e3, 0)
		cmp, err := pair.Compare(scenario)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ASIC wins"
		if cmp.Ratio < 1 {
			verdict = "FPGA wins"
		}
		fmt.Printf("  %d application(s): FPGA %s vs ASIC %s  (ratio %.2f, %s)\n",
			nApps, cmp.FPGA.Total(), cmp.ASIC.Total(), cmp.Ratio, verdict)
	}

	// Where exactly does reconfigurability start paying off?
	n, found, err := pair.CrossoverNumApps(greenfpga.Years(1.5), 100e3, 0, 20)
	if err != nil {
		log.Fatal(err)
	}
	if found {
		fmt.Printf("\nA2F crossover: the FPGA is the lower-carbon choice from %d applications on.\n", n)
	} else {
		fmt.Println("\nNo crossover within 20 applications: the ASIC stays ahead.")
	}

	// Peek inside one assessment.
	res, err := greenfpga.Evaluate(fpga, greenfpga.Uniform("edge", 4, greenfpga.Years(1.5), 100e3, 0))
	if err != nil {
		log.Fatal(err)
	}
	b := res.Breakdown
	fmt.Printf("\nFPGA breakdown over 4 applications (%g devices):\n", res.DevicesManufactured)
	fmt.Printf("  design        %v\n", b.Design)
	fmt.Printf("  manufacturing %v\n", b.Manufacturing)
	fmt.Printf("  packaging     %v\n", b.Packaging)
	fmt.Printf("  end-of-life   %v\n", b.EOL)
	fmt.Printf("  operation     %v\n", b.Operation)
	fmt.Printf("  app-dev+cfg   %v\n", b.AppDevelopment+b.Configuration)
	fmt.Printf("  total         %v\n", res.Total())
}
