// Carbon-aware scheduling: the flat duty-cycle model of the paper
// charges the same operational carbon however the work is scheduled.
// With an hourly utilization trace and an hourly grid-intensity trace,
// moving an FPGA fleet's busy window into the solar hours cuts real
// emissions — an extension the GreenFPGA models compose naturally.
//
//	go run ./examples/carbon-scheduling
package main

import (
	"fmt"
	"log"

	"greenfpga"

	"greenfpga/internal/deploy"
	"greenfpga/internal/grid"
)

func main() {
	spec, err := greenfpga.DeviceByName("IndustryFPGA1")
	if err != nil {
		log.Fatal(err)
	}

	// A solar-heavy regional grid: 440 g/kWh on average, dipping 60%
	// at midday and peaking in the evening.
	solarGrid, err := grid.SolarDay(greenfpga.GramsPerKWh(440), 0.6)
	if err != nil {
		log.Fatal(err)
	}
	mean, _ := solarGrid.Mean()
	fmt.Printf("Grid: solar day, mean intensity %v\n", mean)
	fmt.Printf("Fleet: 50K x %s, 8 busy hours at 90%%, idle 10%%, PUE 1.2\n\n", spec.Name)

	const fleet = 50e3
	for _, w := range []struct {
		name  string
		start int
	}{
		{"midday", 10},
		{"morning", 6},
		{"evening", 14},
		{"night", 22},
	} {
		tp := deploy.TraceProfile{
			PeakPower: spec.PeakPower,
			Trace:     deploy.Diurnal(w.start, 8, 0.9, 0.1),
			PUE:       1.2,
		}
		c, err := tp.AnnualCarbonOnGrid(solarGrid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s window: %v per device-year, %v for the fleet\n",
			w.name, c, c.Scale(fleet))
	}

	// The flat model sees none of this.
	flatProfile := deploy.TraceProfile{
		PeakPower: spec.PeakPower,
		Trace:     deploy.Diurnal(10, 8, 0.9, 0.1),
		PUE:       1.2,
	}
	op, err := flatProfile.Flatten()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEquivalent flat duty cycle: %.3f — schedule-blind by construction.\n", op.DutyCycle)
	fmt.Println("Run `greenfpga experiment carbon-scheduling` for the full sweep.")
}
