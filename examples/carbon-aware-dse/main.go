// Carbon-aware design-space exploration: pick the lowest-carbon
// platform (ASIC vs FPGA), technology node (28nm..3nm) and FPGA device
// size for an ML-inference roadmap that grows 1.5x per generation — the
// direction the paper's §5 points to for "sustainability-minded design
// decisions".
//
//	go run ./examples/carbon-aware-dse
package main

import (
	"fmt"
	"log"

	"greenfpga"
)

func main() {
	kernel, err := greenfpga.KernelByName("resnet50-int8")
	if err != nil {
		log.Fatal(err)
	}

	// Six generations of inference serving, each 1.5 years, each
	// needing 1.5x the previous throughput, on 20K deployed units.
	scenario, err := greenfpga.KernelRoadmap(kernel, 4000, 1.5, 6, greenfpga.Years(1.5), 2e4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Roadmap: %d generations of %s\n", len(scenario.Apps), kernel.Name)
	for _, app := range scenario.Apps {
		fmt.Printf("  %-34s %6.1f Mgates, %g units\n", app.Name, app.SizeGates/1e6, app.Volume)
	}

	result, err := greenfpga.ExploreDesignSpace(greenfpga.DSEInputs{
		Apps:      scenario.Apps,
		DutyCycle: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nExplored %d design points. Top five:\n", len(result.Candidates))
	for i, c := range result.Candidates {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-44s embodied %-12v operational %v\n",
			i+1, c.String(), c.Embodied, c.Operational)
	}

	bestASIC, _ := result.BestOfKind(greenfpga.ASIC)
	bestFPGA, _ := result.BestOfKind(greenfpga.FPGA)
	fmt.Printf("\nBest ASIC plan: %v across %g dies (a new design every generation)\n",
		bestASIC.Total, bestASIC.DevicesManufactured)
	fmt.Printf("Best FPGA plan: %v across %g devices (one fleet, reconfigured)\n",
		bestFPGA.Total, bestFPGA.DevicesManufactured)

	saving := bestASIC.Total - bestFPGA.Total
	if saving > 0 {
		fmt.Printf("\nReconfigurability saves %v on this roadmap (%.0f%%).\n",
			saving, saving.Kilograms()/bestASIC.Total.Kilograms()*100)
	} else {
		fmt.Printf("\nDedicated silicon wins this roadmap by %v.\n", saving.Scale(-1))
	}

	// The same roadmap at mass-market volume flips the verdict.
	big, err := greenfpga.KernelRoadmap(kernel, 4000, 1.5, 6, greenfpga.Years(1.5), 2e6)
	if err != nil {
		log.Fatal(err)
	}
	massMarket, err := greenfpga.ExploreDesignSpace(greenfpga.DSEInputs{
		Apps:      big.Apps,
		DutyCycle: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt 2M units the optimum becomes: %s\n", massMarket.Best())
}
