// Uncertainty: the paper's §5 stresses that CFP outputs inherit the
// uncertainty of coarse industry inputs (Table 1 lists ranges, not
// values). This example propagates those ranges through the DNN
// FPGA-vs-ASIC comparison with a seeded Monte-Carlo study and asks:
// with honest input uncertainty, how confident is the "FPGA wins at 6
// applications" verdict?
//
//	go run ./examples/uncertainty
package main

import (
	"fmt"
	"log"

	"greenfpga"
)

func main() {
	domain, err := greenfpga.DomainByName("DNN")
	if err != nil {
		log.Fatal(err)
	}

	for _, nApps := range []int{3, 6, 9} {
		res, err := ratioStudy(domain, nApps)
		if err != nil {
			log.Fatal(err)
		}
		wins := 0.0
		for _, s := range res.Samples {
			if s < 1 {
				wins++
			}
		}
		fmt.Printf("DNN, %d applications: ratio p5=%.2f p50=%.2f p95=%.2f  P(FPGA wins)=%.0f%%\n",
			nApps, res.Percentile(5), res.Percentile(50), res.Percentile(95),
			wins/float64(len(res.Samples))*100)
		if nApps == 6 {
			fmt.Println("  tornado (parameter -> |ratio swing| across its 10th-90th percentile):")
			for _, e := range res.Tornado {
				fmt.Printf("    %-22s %.4f\n", e.Param, e.Swing())
			}
		}
	}
}

// ratioStudy propagates the Table 1 ranges that matter most through
// the FPGA:ASIC CFP ratio at the reference volume.
func ratioStudy(d greenfpga.Domain, nApps int) (greenfpga.MCResult, error) {
	return greenfpga.RunMonteCarlo(greenfpga.MCConfig{
		Samples: 2000,
		Seed:    2024,
		Params: []greenfpga.MCParam{
			// Deployment utilization is proprietary: +/-50% around the
			// calibrated duty cycle.
			{Name: "duty_cycle", Dist: greenfpga.TriangularDist{
				Lo: d.DutyCycle * 0.5, Mode: d.DutyCycle, Hi: d.DutyCycle * 1.5}},
			// Table 1 bands.
			{Name: "t_fe_months", Dist: greenfpga.UniformDist{Lo: 1.5, Hi: 2.5}},
			{Name: "t_be_months", Dist: greenfpga.UniformDist{Lo: 0.5, Hi: 1.5}},
			{Name: "recycled_fraction", Dist: greenfpga.UniformDist{Lo: 0, Hi: 1}},
			{Name: "eol_delta", Dist: greenfpga.UniformDist{Lo: 0.05, Hi: 0.95}},
			// Project staffing and application lifetime.
			{Name: "design_staff", Dist: greenfpga.TriangularDist{
				Lo: d.DesignEngineers * 0.7, Mode: d.DesignEngineers, Hi: d.DesignEngineers * 1.3}},
			{Name: "app_lifetime_years", Dist: greenfpga.UniformDist{Lo: 1, Hi: 3}},
		},
		Model: func(draw map[string]float64) (float64, error) {
			dd := d
			dd.DutyCycle = draw["duty_cycle"]
			dd.DesignEngineers = draw["design_staff"]
			pair, err := dd.Pair()
			if err != nil {
				return 0, err
			}
			appDev := pair.FPGA.AppDevProfile()
			appDev.FrontEnd = greenfpga.Months(draw["t_fe_months"])
			appDev.BackEnd = greenfpga.Months(draw["t_be_months"])
			pair.FPGA.AppDev = &appDev
			for _, p := range []*greenfpga.Platform{&pair.FPGA, &pair.ASIC} {
				p.RecycledMaterialFraction = draw["recycled_fraction"]
				p.EOL.RecycleFraction = draw["eol_delta"]
			}
			cmp, err := pair.Compare(greenfpga.Uniform("mc", nApps,
				greenfpga.Years(draw["app_lifetime_years"]), 1e6, 0))
			if err != nil {
				return 0, err
			}
			return cmp.Ratio, nil
		},
	})
}
