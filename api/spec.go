package api

import (
	"bytes"
	"encoding/json"
	"fmt"

	"greenfpga/internal/carbon"
	"greenfpga/internal/config"
	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/isoperf"
)

// PlatformSpec names one platform the same way on every compute
// endpoint. Exactly one selector arm must be set:
//
//   - {domain, kind}: a member of a Table 2 iso-performance set
//     ("fpga", "asic", "gpu", "cpu"). The domain may be omitted when
//     the request carries a top-level domain (or defaults to DNN);
//     normalization fills it in. In JSON a bare string "fpga" is
//     shorthand for {"kind":"fpga"}, which is what keeps the legacy
//     kind-list bodies ({"platforms":["gpu","asic"]}) decoding.
//   - {device}: a Table 3 catalog device by name, deployed with the
//     catalog head-to-head defaults (duty cycle 0.3, PUE 1.2, 500
//     design engineers over 2 years — the same knobs `greenfpga
//     compare -fpga/-asic` uses).
//   - {config}: an inline platform document, the same JSON the
//     scenario config's fpga/asic slots take.
//
// The override fields apply on top of any arm; a request that only
// differs in an override resolves (and caches) as a distinct platform.
type PlatformSpec struct {
	// Domain names the iso-performance testcase of a kind selector.
	Domain string `json:"domain,omitempty"`
	// Kind selects a domain-set member ("fpga", "asic", "gpu", "cpu").
	Kind string `json:"kind,omitempty"`
	// Device names a Table 3 catalog entry.
	Device string `json:"device,omitempty"`
	// Config is an inline platform description.
	Config *PlatformConfig `json:"config,omitempty"`

	// DutyCycle overrides the deployment utilization (0 keeps the
	// platform's own).
	DutyCycle float64 `json:"duty_cycle,omitempty"`
	// UseRegion sites the platform in a carbon-registry region: the
	// deployment grid takes the region's mix, and traced regions
	// additionally integrate their hourly intensity trace.
	UseRegion string `json:"use_region,omitempty"`
	// Trace supplies an inline hourly intensity profile instead of a
	// registry region's. Mutually exclusive with UseRegion.
	Trace *TraceSpec `json:"trace,omitempty"`
	// Shift selects a temporal load-shifting policy over the hourly
	// trace ("daily" packs each day's run-hours into its cleanest
	// hours); requires a trace, inline or via a traced region.
	Shift string `json:"shift,omitempty"`
	// ChipLifetimeYears caps one hardware generation (0 keeps the
	// platform's own policy).
	ChipLifetimeYears float64 `json:"chip_lifetime_years,omitempty"`
}

// platformSpecPlain avoids UnmarshalJSON recursion.
type platformSpecPlain PlatformSpec

// UnmarshalJSON accepts the object form or the bare-string kind
// shorthand ("fpga" ≡ {"kind":"fpga"}), which is how the legacy
// platform kind lists keep decoding. Object bodies are decoded
// strictly — unknown fields are rejected even when the surrounding
// decoder is lenient — so a typoed override never silently vanishes.
func (p *PlatformSpec) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '"' {
		var kind string
		if err := json.Unmarshal(trimmed, &kind); err != nil {
			return err
		}
		*p = PlatformSpec{Kind: kind}
		return nil
	}
	if string(trimmed) == "null" {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	var plain platformSpecPlain
	if err := dec.Decode(&plain); err != nil {
		return err
	}
	*p = PlatformSpec(plain)
	return nil
}

// KindSpecs builds domain-member specs from kind names, the spec form
// of the legacy kind lists. The domain is left empty for request
// normalization to fill.
func KindSpecs(kinds ...string) []PlatformSpec {
	if len(kinds) == 0 {
		return nil
	}
	out := make([]PlatformSpec, len(kinds))
	for i, k := range kinds {
		out[i] = PlatformSpec{Kind: k}
	}
	return out
}

// PlatformSpecs builds specs from CLI tokens: a known platform kind
// (per the device package's authoritative kind list) becomes a
// domain-member spec, anything else a catalog device spec.
func PlatformSpecs(tokens []string) []PlatformSpec {
	out := make([]PlatformSpec, len(tokens))
	for i, tok := range tokens {
		if device.Kind(tok).Validate() == nil {
			out[i] = PlatformSpec{Kind: tok}
		} else {
			out[i] = PlatformSpec{Device: tok}
		}
	}
	return out
}

// Validate checks the selector-arm exclusivity and the override
// ranges; selector existence (domain, device, region names) is checked
// at resolution.
func (p PlatformSpec) Validate() error {
	arms := 0
	if p.Kind != "" {
		arms++
	}
	if p.Device != "" {
		arms++
	}
	if p.Config != nil {
		arms++
	}
	switch {
	case arms == 0:
		return &Error{Code: "invalid_request",
			Message: "platform spec needs exactly one of kind, device, config"}
	case arms > 1:
		return &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"platform spec %s sets more than one selector (kind, device, config are mutually exclusive)",
			p.describe())}
	case p.Kind == "" && p.Domain != "":
		return &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"platform spec %s: domain only applies to kind selectors", p.describe())}
	case p.Kind != "" && p.Domain == "":
		return &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"platform kind %q needs a domain", p.Kind)}
	case p.DutyCycle < 0 || p.DutyCycle > 1:
		return &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"platform spec %s: duty cycle %g outside (0,1]", p.describe(), p.DutyCycle)}
	case p.ChipLifetimeYears < 0:
		return &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"platform spec %s: negative chip lifetime %g", p.describe(), p.ChipLifetimeYears)}
	case p.UseRegion != "" && p.Trace != nil:
		return &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"platform spec %s sets both use_region and an inline trace; they are mutually exclusive",
			p.describe())}
	}
	traced := p.Trace != nil
	if p.UseRegion != "" {
		reg, err := carbon.ByName(p.UseRegion)
		if err != nil {
			return &Error{Code: "invalid_request", Message: fmt.Sprintf(
				"platform spec %s: unknown region %q (valid: %s)",
				p.describe(), p.UseRegion, carbon.NamesList())}
		}
		traced = traced || reg.Traced
	}
	if p.Trace != nil {
		if _, err := carbon.FromGrams(p.Trace.GPerKWh); err != nil {
			return &Error{Code: "invalid_request", Message: fmt.Sprintf(
				"platform spec %s: %v", p.describe(), err)}
		}
	}
	switch p.Shift {
	case "", carbon.ShiftDaily:
	default:
		return &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"platform spec %s: unknown shift policy %q (valid: %s)",
			p.describe(), p.Shift, carbon.ShiftDaily)}
	}
	if p.Shift != "" && !traced {
		return &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"platform spec %s: shift %q needs an hourly trace — an inline trace or a traced region",
			p.describe(), p.Shift)}
	}
	return nil
}

// describe names the spec in error messages and duplicate checks.
func (p PlatformSpec) describe() string {
	switch {
	case p.Device != "":
		return fmt.Sprintf("%q", p.Device)
	case p.Config != nil:
		if p.Config.Device != "" {
			return fmt.Sprintf("%q", p.Config.Device)
		}
		return fmt.Sprintf("%q", p.Config.Name)
	case p.Domain != "":
		return fmt.Sprintf("%q", p.Domain+"/"+p.Kind)
	default:
		return fmt.Sprintf("%q", p.Kind)
	}
}

// hasOverrides reports whether any cross-cutting override is set.
func (p PlatformSpec) hasOverrides() bool {
	return p.DutyCycle != 0 || p.UseRegion != "" || p.Trace != nil ||
		p.Shift != "" || p.ChipLifetimeYears != 0
}

// normalizedWith fills a kind selector's empty domain from the
// request-level default.
func (p PlatformSpec) normalizedWith(domain string) PlatformSpec {
	if p.Kind != "" && p.Domain == "" {
		p.Domain = domain
	}
	return p
}

// isPlainKind reports a bare domain-member selector: the given kind of
// the given domain with no overrides — the shape every legacy request
// expands to, and the shape that may reuse the memoized domain-set
// compilations.
func (p PlatformSpec) isPlainKind(domain, kind string) bool {
	return p.Kind == kind && p.Domain == domain && p.Device == "" && p.Config == nil && !p.hasOverrides()
}

// specDomains fills empty kind-selector domains from the request
// default and returns the selectors' common domain: the unique domain
// among kind selectors, or "" when there is none (or they disagree).
// The normalized request records this as its domain, so the kind-list
// legacy spelling and the explicit-spec spelling hash identically.
func specDomains(specs []PlatformSpec, domain string) string {
	common, disagree := "", false
	for i := range specs {
		specs[i] = specs[i].normalizedWith(domain)
		if specs[i].Kind == "" {
			continue
		}
		switch {
		case common == "":
			common = specs[i].Domain
		case common != specs[i].Domain:
			disagree = true
		}
	}
	if disagree {
		return ""
	}
	return common
}

// needsDomain reports whether normalization must supply a default
// domain: an empty platform list (implying a domain set) or a kind
// selector that has not named its own.
func needsDomain(specs []PlatformSpec) bool {
	if len(specs) == 0 {
		return true
	}
	for _, sp := range specs {
		if sp.Kind != "" && sp.Domain == "" {
			return true
		}
	}
	return false
}

// domainKindSpecs expands "the domain's full platform set" into
// explicit kind specs, in set order. Unknown domains return nil; the
// compute entry points surface the lookup error.
func domainKindSpecs(domain string) []PlatformSpec {
	d, err := isoperf.ByName(domain)
	if err != nil {
		return nil
	}
	set, err := d.Set()
	if err != nil {
		return nil
	}
	specs := make([]PlatformSpec, len(set))
	for i, p := range set {
		specs[i] = PlatformSpec{Domain: domain, Kind: string(p.Spec.Kind)}
	}
	return specs
}

// AppConfig is one explicit application of a workload spec, sharing
// the scenario document's JSON schema (internal/config.Application):
// sized directly in gates or derived from a workload-library kernel.
type AppConfig = config.Application

// WorkloadSpec describes the work one way on every compute endpoint.
// Exactly one arm applies:
//
//   - uniform: napps identical applications of lifetime_years and
//     volume (size_gates optionally sizing each for N_FPGA) — the
//     shape of the paper's §4.2 studies;
//   - apps: an explicit application list, the scenario document's
//     "apps" schema;
//   - timeline: deployments on a wall-clock timeline, given explicitly
//     or via the staggered-arrival generator (napps arriving every
//     interval_years), with a fleet-sizing policy.
//
// The uniform fields double as the timeline generator's knobs: on a
// timeline endpoint a workload with only uniform fields is the
// generator shorthand, and normalization expands it into explicit
// deployments so both spellings share one cache entry. Endpoints
// accept the arms their response can express — evaluate takes uniform
// or apps, compare/crossover/sweep/mc take uniform, timeline takes a
// timeline — and reject the others rather than silently reinterpreting
// them.
type WorkloadSpec struct {
	// NApps is the uniform application count (or the generator's).
	NApps int `json:"napps,omitempty"`
	// LifetimeYears is each application's T_i.
	LifetimeYears float64 `json:"lifetime_years,omitempty"`
	// Volume is each application's N_vol.
	Volume float64 `json:"volume,omitempty"`
	// SizeGates sizes each application for N_FPGA (0 fits one device).
	SizeGates float64 `json:"size_gates,omitempty"`

	// Apps is the explicit application list.
	Apps []AppConfig `json:"apps,omitempty"`

	// Deployments is the explicit timeline.
	Deployments []TimelineDeployment `json:"deployments,omitempty"`
	// IntervalYears is the staggered generator's arrival interval.
	IntervalYears float64 `json:"interval_years,omitempty"`
	// Sizing provisions reusable fleets: "shared" or "dedicated".
	Sizing string `json:"sizing,omitempty"`

	// StrictEq2 selects the literal Eq. 2 app-dev accounting (apps and
	// timeline arms; the uniform compute path always uses the default
	// accounting).
	StrictEq2 bool `json:"strict_eq2,omitempty"`
}

// workloadArm identifies which arm a spec uses.
type workloadArm int

const (
	armUniform workloadArm = iota
	armApps
	armTimeline
)

// arm classifies the spec. The uniform fields alone read as uniform;
// timeline endpoints treat that as the generator shorthand and expand
// it before this is consulted.
func (w WorkloadSpec) arm() workloadArm {
	switch {
	case len(w.Apps) > 0:
		return armApps
	case len(w.Deployments) > 0 || w.IntervalYears != 0 || w.Sizing != "":
		return armTimeline
	default:
		return armUniform
	}
}

// uniformArm checks the spec is purely uniform and returns it, for the
// endpoints whose response carries one (napps, lifetime, volume)
// scenario.
func (w WorkloadSpec) uniformArm(what string) (WorkloadSpec, error) {
	switch w.arm() {
	case armApps:
		return w, &Error{Code: "invalid_request",
			Message: what + " takes a uniform workload (napps/lifetime_years/volume), not explicit apps"}
	case armTimeline:
		return w, &Error{Code: "invalid_request",
			Message: what + " takes a uniform workload (napps/lifetime_years/volume), not a timeline"}
	}
	if w.StrictEq2 {
		return w, &Error{Code: "invalid_request",
			Message: "strict_eq2 applies to apps and timeline workloads; the uniform path always uses the default accounting"}
	}
	return w, nil
}

// withUniformDefaults fills zero uniform fields with the given
// defaults (a zero default leaves the field alone), so spelled-out and
// omitted defaults are one cache entry. Non-uniform arms pass through
// untouched for the arm check to reject.
func (w WorkloadSpec) withUniformDefaults(napps int, lifetime, volume float64) WorkloadSpec {
	if w.arm() != armUniform {
		return w
	}
	if w.NApps == 0 && napps != 0 {
		w.NApps = napps
	}
	if w.LifetimeYears == 0 && lifetime != 0 {
		w.LifetimeYears = lifetime
	}
	if w.Volume == 0 && volume != 0 {
		w.Volume = volume
	}
	return w
}

// normalizedTimeline canonicalizes a timeline workload: the generator
// shorthand expands into explicit deployments (bounded regardless of
// the requested count — one entry past MaxTimelineDeployments is
// enough to reject without allocating billions), explicit deployments
// win over (and clear) the generator fields, empty deployment names
// become "app1", "app2", ... in timeline order, and the fleet sizing
// defaults to shared. Negative generator counts are preserved
// un-expanded so the compute entry point can reject them rather than
// silently serving the default timeline.
func (w WorkloadSpec) normalizedTimeline() (WorkloadSpec, error) {
	if len(w.Apps) > 0 {
		return w, &Error{Code: "invalid_request",
			Message: "timeline takes deployments or the staggered generator, not explicit apps"}
	}
	if w.Sizing == "" {
		w.Sizing = string(core.SizeShared)
	}
	switch {
	case len(w.Deployments) == 0 && w.NApps >= 0:
		n := w.NApps
		if n == 0 {
			n = 5
		}
		if n > MaxTimelineDeployments {
			n = MaxTimelineDeployments + 1
		}
		interval := w.IntervalYears
		if interval == 0 {
			interval = 0.5
		}
		lifetime := w.LifetimeYears
		if lifetime == 0 {
			lifetime = 2
		}
		volume := w.Volume
		if volume == 0 {
			volume = 1e6
		}
		for i := 0; i < n; i++ {
			w.Deployments = append(w.Deployments, TimelineDeployment{
				StartYears:    float64(i) * interval,
				LifetimeYears: lifetime,
				Volume:        volume,
				SizeGates:     w.SizeGates,
			})
		}
		w.NApps, w.IntervalYears, w.LifetimeYears, w.Volume, w.SizeGates = 0, 0, 0, 0, 0
	case len(w.Deployments) > 0:
		// The copy keeps re-normalizing from sharing the input's
		// backing array.
		w.Deployments = append([]TimelineDeployment(nil), w.Deployments...)
		w.NApps, w.IntervalYears, w.LifetimeYears, w.Volume, w.SizeGates = 0, 0, 0, 0, 0
	}
	for i := range w.Deployments {
		if w.Deployments[i].Name == "" {
			w.Deployments[i].Name = fmt.Sprintf("app%d", i+1)
		}
	}
	return w, nil
}
