package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"greenfpga/internal/config"
)

// decodeNormalizedKey mirrors the server: strictly decode the body
// into the endpoint's typed request, normalize, and content-address.
func decodeNormalizedKey(t *testing.T, endpoint, body string) string {
	t.Helper()
	decode := func(dst any) {
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(dst); err != nil {
			t.Fatalf("%s: body %s did not decode: %v", endpoint, body, err)
		}
	}
	var norm any
	switch endpoint {
	case "/v1/evaluate":
		var r EvaluateRequest
		decode(&r)
		n := r.Normalized()
		norm = &n
	case "/v1/compare":
		var r CompareRequest
		decode(&r)
		norm = r.Normalized()
	case "/v1/crossover":
		var r CrossoverRequest
		decode(&r)
		norm = r.Normalized()
	case "/v1/timeline":
		var r TimelineRequest
		decode(&r)
		norm = r.Normalized()
	case "/v1/sweep":
		var r SweepRequest
		decode(&r)
		norm = r.Normalized()
	case "/v1/mc":
		var r MonteCarloRequest
		decode(&r)
		norm = r.Normalized()
	default:
		t.Fatalf("unknown endpoint %s", endpoint)
	}
	key, err := CanonicalKey(endpoint, norm)
	if err != nil {
		t.Fatalf("%s: key: %v", endpoint, err)
	}
	return key
}

// TestLegacySpecKeyUnification is the core cache contract of the
// request-model redesign: every legacy body and its spec-form spelling
// normalize to one CanonicalKey, so they share one server cache entry
// (and therefore one response document).
func TestLegacySpecKeyUnification(t *testing.T) {
	for _, tc := range []struct {
		name, endpoint, legacy, spec string
	}{
		{
			"compare kinds list", "/v1/compare",
			`{"domain":"DNN","platforms":["gpu","asic"],"napps":3}`,
			`{"platforms":[{"domain":"DNN","kind":"gpu"},{"domain":"DNN","kind":"asic"}],` +
				`"workload":{"napps":3,"lifetime_years":2,"volume":1e6},"max_apps":12}`,
		},
		{
			"compare defaults", "/v1/compare",
			`{}`,
			`{"domain":"DNN","platforms":["fpga","asic","gpu","cpu"],` +
				`"workload":{"napps":5,"lifetime_years":2,"volume":1000000}}`,
		},
		{
			"crossover selectors", "/v1/crossover",
			`{"domain":"ImgProc","platform_a":"fpga","platform_b":"gpu","napps":4}`,
			`{"platforms":[{"domain":"ImgProc","kind":"fpga"},{"domain":"ImgProc","kind":"gpu"}],` +
				`"workload":{"napps":4,"lifetime_years":2,"volume":1e6},"max_apps":30}`,
		},
		{
			"crossover defaults", "/v1/crossover",
			`{"domain":"Crypto"}`,
			`{"platforms":["fpga","asic"],"domain":"Crypto",` +
				`"workload":{"napps":5,"lifetime_years":2,"volume":1e6}}`,
		},
		{
			"sweep pair", "/v1/sweep",
			`{"domain":"Crypto","axis":"lifetime","points":5}`,
			`{"axis":"lifetime","points":5,` +
				`"platforms":[{"domain":"Crypto","kind":"fpga"},{"domain":"Crypto","kind":"asic"}],` +
				`"workload":{"napps":5,"volume":1e6}}`,
		},
		{
			"sweep on-axis value ignored", "/v1/sweep",
			`{"axis":"napps"}`,
			`{"axis":"napps","platforms":["fpga","asic"],` +
				`"workload":{"napps":99,"lifetime_years":2,"volume":1e6}}`,
		},
		{
			"mc napps", "/v1/mc",
			`{"napps":7,"seed":3}`,
			`{"domain":"DNN","seed":3,"samples":2000,"platforms":["fpga","asic"],` +
				`"workload":{"napps":7}}`,
		},
		{
			"timeline generator", "/v1/timeline",
			`{"napps":2,"chip_lifetime_years":8}`,
			`{"platforms":[` +
				`{"domain":"DNN","kind":"fpga","chip_lifetime_years":8},` +
				`{"domain":"DNN","kind":"asic","chip_lifetime_years":8},` +
				`{"domain":"DNN","kind":"gpu","chip_lifetime_years":8},` +
				`{"domain":"DNN","kind":"cpu","chip_lifetime_years":8}],` +
				`"workload":{"sizing":"shared","deployments":[` +
				`{"name":"app1","lifetime_years":2,"volume":1e6},` +
				`{"name":"app2","start_years":0.5,"lifetime_years":2,"volume":1e6}]}}`,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			kl := decodeNormalizedKey(t, tc.endpoint, tc.legacy)
			ks := decodeNormalizedKey(t, tc.endpoint, tc.spec)
			if kl != ks {
				t.Errorf("legacy body and spec spelling hash differently:\n legacy %s -> %s\n spec   %s -> %s",
					tc.legacy, kl, tc.spec, ks)
			}
		})
	}
	// A body with genuinely different content must not collide.
	ka := decodeNormalizedKey(t, "/v1/compare", `{"napps":3}`)
	kb := decodeNormalizedKey(t, "/v1/compare", `{"napps":4}`)
	if ka == kb {
		t.Error("different compare scenarios share a key")
	}
}

// TestEvaluateKeyUnification covers the sixth endpoint with its
// structured scenario document: the legacy scenario body and the
// spec spelling built from the same document are one key.
func TestEvaluateKeyUnification(t *testing.T) {
	cfg := config.Example()
	legacy := EvaluateRequest{Scenario: cfg}
	spec := EvaluateRequest{
		Name: cfg.Name,
		Platforms: []PlatformSpec{
			{Config: cfg.FPGA},
			{Config: cfg.ASIC},
		},
		Workload: &WorkloadSpec{Apps: cfg.Apps},
	}
	ln := legacy.Normalized()
	sn := spec.Normalized()
	kl, err := CanonicalKey("/v1/evaluate", &ln)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := CanonicalKey("/v1/evaluate", &sn)
	if err != nil {
		t.Fatal(err)
	}
	if kl != ks {
		t.Errorf("scenario body and its spec spelling hash differently: %s vs %s", kl, ks)
	}
	// And they evaluate to byte-identical responses.
	e := NewEvaluator(8)
	rl, err := e.Evaluate(context.Background(), &legacy)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := e.Evaluate(context.Background(), &spec)
	if err != nil {
		t.Fatal(err)
	}
	var bl, bs bytes.Buffer
	if err := WriteJSON(&bl, rl); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&bs, rs); err != nil {
		t.Fatal(err)
	}
	if bl.String() != bs.String() {
		t.Errorf("legacy and spec evaluations differ:\n%s\nvs\n%s", bl.String(), bs.String())
	}
}

// TestRandomizedKeyUnification is the property form: across random
// domains, kind pairs and scenario values, the legacy spelling and the
// spec spelling of the same request hash identically on every
// endpoint, and normalization stays idempotent under the key.
func TestRandomizedKeyUnification(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	domains := []string{"DNN", "ImgProc", "Crypto"}
	kinds := []string{"fpga", "asic", "gpu", "cpu"}
	key := func(endpoint string, norm any) string {
		t.Helper()
		k, err := CanonicalKey(endpoint, norm)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	for i := 0; i < 200; i++ {
		domain := domains[rng.Intn(len(domains))]
		ka := kinds[rng.Intn(len(kinds))]
		kb := kinds[rng.Intn(len(kinds))]
		napps := rng.Intn(12) + 1
		lifetime := float64(rng.Intn(40)+1) / 10
		volume := float64(rng.Intn(9)+1) * 1e5
		maxapps := rng.Intn(20) + 1

		legacyCross := CrossoverRequest{
			Domain: domain, PlatformA: ka, PlatformB: kb,
			NApps: napps, LifetimeYears: lifetime, Volume: volume, MaxApps: maxapps,
		}.Normalized()
		specCross := CrossoverRequest{
			Platforms: []PlatformSpec{{Domain: domain, Kind: ka}, {Domain: domain, Kind: kb}},
			Workload:  &WorkloadSpec{NApps: napps, LifetimeYears: lifetime, Volume: volume},
			MaxApps:   maxapps,
		}.Normalized()
		if k1, k2 := key("/v1/crossover", legacyCross), key("/v1/crossover", specCross); k1 != k2 {
			t.Fatalf("iter %d: crossover legacy %s vs spec %s", i, k1, k2)
		}

		legacyCmp := CompareRequest{
			Domain: domain, Platforms: KindSpecs(ka, kb),
			NApps: napps, LifetimeYears: lifetime, Volume: volume, MaxApps: maxapps,
		}.Normalized()
		specCmp := CompareRequest{
			Platforms: []PlatformSpec{{Domain: domain, Kind: ka}, {Domain: domain, Kind: kb}},
			Workload:  &WorkloadSpec{NApps: napps, LifetimeYears: lifetime, Volume: volume},
			MaxApps:   maxapps,
		}.Normalized()
		if k1, k2 := key("/v1/compare", legacyCmp), key("/v1/compare", specCmp); k1 != k2 {
			t.Fatalf("iter %d: compare legacy %s vs spec %s", i, k1, k2)
		}

		legacyMC := MonteCarloRequest{Domain: domain, NApps: napps, Seed: int64(i + 1)}.Normalized()
		specMC := MonteCarloRequest{
			Platforms: []PlatformSpec{{Domain: domain, Kind: "fpga"}, {Domain: domain, Kind: "asic"}},
			Workload:  &WorkloadSpec{NApps: napps},
			Seed:      int64(i + 1),
		}.Normalized()
		if k1, k2 := key("/v1/mc", legacyMC), key("/v1/mc", specMC); k1 != k2 {
			t.Fatalf("iter %d: mc legacy %s vs spec %s", i, k1, k2)
		}

		// Marshal/decode round trips and double normalization never
		// move a key.
		var buf bytes.Buffer
		if err := WriteJSON(&buf, legacyCmp); err != nil {
			t.Fatal(err)
		}
		var back CompareRequest
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("iter %d: round trip: %v\n%s", i, err, buf.String())
		}
		if k1, k2 := key("/v1/compare", legacyCmp), key("/v1/compare", back.Normalized()); k1 != k2 {
			t.Fatalf("iter %d: compare round trip moved the key", i)
		}
		if k1, k2 := key("/v1/crossover", legacyCross), key("/v1/crossover", legacyCross.Normalized()); k1 != k2 {
			t.Fatalf("iter %d: crossover normalization not idempotent", i)
		}
	}
}

// TestResolveSpecArms exercises the three selector arms and the
// overrides through the shared resolver.
func TestResolveSpecArms(t *testing.T) {
	e := NewEvaluator(16)

	// Plain domain members share the memoized domain-set compilations.
	c, err := e.resolveSpec(PlatformSpec{Domain: "DNN", Kind: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	cs, _, err := compiledDomainSet("DNN")
	if err != nil {
		t.Fatal(err)
	}
	member, err := setMember(cs, "gpu")
	if err != nil {
		t.Fatal(err)
	}
	if c != member {
		t.Error("plain kind spec must reuse the memoized domain-set compilation")
	}

	// Catalog devices deploy with the head-to-head defaults.
	c, err = e.resolveSpec(PlatformSpec{Device: "IndustryFPGA1"})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Platform()
	if p.Spec.Name != "IndustryFPGA1" || p.DutyCycle != 0.3 || p.PUE != 1.2 || p.DesignEngineers != 500 {
		t.Errorf("catalog defaults: %+v", p)
	}

	// Inline configs resolve through the scenario-config pipeline.
	c, err = e.resolveSpec(PlatformSpec{Config: &PlatformConfig{Device: "IndustryASIC1", DutyCycle: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if p := c.Platform(); p.Spec.Name != "IndustryASIC1" || p.DutyCycle != 0.5 {
		t.Errorf("config arm: %+v", p)
	}

	// Overrides apply on top of any arm and produce a distinct
	// compilation.
	plain, err := e.resolveSpec(PlatformSpec{Domain: "DNN", Kind: "fpga"})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := e.resolveSpec(PlatformSpec{
		Domain: "DNN", Kind: "fpga",
		DutyCycle: 0.8, ChipLifetimeYears: 4, UseRegion: "iceland",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tuned == plain {
		t.Error("override spec must not alias the plain compilation")
	}
	tp := tuned.Platform()
	if tp.DutyCycle != 0.8 || tp.ChipLifetime.Years() != 4 {
		t.Errorf("overrides not applied: %+v", tp)
	}
	if fmt.Sprint(tp.UseMix) == fmt.Sprint(plain.Platform().UseMix) {
		t.Error("use-region override not applied")
	}

	// Repeated resolution hits the compiled-platform cache.
	again, err := e.resolveSpec(PlatformSpec{Device: "IndustryFPGA1"})
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.resolveSpec(PlatformSpec{Device: "IndustryFPGA1"})
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Error("repeated device resolution must return the cached compilation")
	}

	// Error paths: arm exclusivity, missing arms, unknown names, bad
	// overrides.
	for _, bad := range []PlatformSpec{
		{},
		{Kind: "fpga", Device: "IndustryFPGA1"},
		{Device: "IndustryFPGA1", Config: &PlatformConfig{}},
		{Domain: "DNN"},
		{Kind: "fpga"},
		{Domain: "DNN", Device: "IndustryFPGA1"},
		{Domain: "Quantum", Kind: "fpga"},
		{Domain: "DNN", Kind: "npu"},
		{Device: "nope"},
		{Domain: "DNN", Kind: "fpga", DutyCycle: 1.5},
		{Domain: "DNN", Kind: "fpga", DutyCycle: -0.1},
		{Domain: "DNN", Kind: "fpga", ChipLifetimeYears: -1},
		{Domain: "DNN", Kind: "fpga", UseRegion: "atlantis"},
	} {
		if _, err := e.resolveSpec(bad); err == nil {
			t.Errorf("spec %+v must not resolve", bad)
		}
	}
}

// TestEvaluateSpecForm covers the spec spelling of /v1/evaluate and
// the legacy-shape constraint: the response carries dedicated
// fpga/asic sides, so GPU/CPU platforms are rejected, not dropped.
func TestEvaluateSpecForm(t *testing.T) {
	e := NewEvaluator(8)
	resp, err := e.Evaluate(context.Background(), &EvaluateRequest{
		Name: "uniform-study",
		Platforms: []PlatformSpec{
			{Domain: "DNN", Kind: "fpga"},
			{Domain: "DNN", Kind: "asic"},
		},
		Workload: &WorkloadSpec{NApps: 5, LifetimeYears: 2, Volume: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scenario != "uniform-study" || resp.FPGA == nil || resp.ASIC == nil || resp.Ratio == nil {
		t.Fatalf("spec evaluate: %+v", resp)
	}
	// The §4.2 reference point: ASIC wins at five applications.
	if resp.Verdict != "asic" {
		t.Errorf("DNN at N=5: verdict %q, want asic", resp.Verdict)
	}
	// Single-platform studies keep working.
	single, err := e.Evaluate(context.Background(), &EvaluateRequest{
		Platforms: []PlatformSpec{{Device: "IndustryASIC1"}},
		Workload:  &WorkloadSpec{NApps: 1, LifetimeYears: 2, Volume: 1e5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if single.FPGA != nil || single.ASIC == nil || single.Verdict != "" {
		t.Fatalf("single-platform evaluate: %+v", single)
	}

	for _, tc := range []struct {
		name string
		req  EvaluateRequest
		want string
	}{
		{"gpu rejected", EvaluateRequest{
			Platforms: []PlatformSpec{{Domain: "DNN", Kind: "gpu"}, {Domain: "DNN", Kind: "asic"}},
			Workload:  &WorkloadSpec{NApps: 1, LifetimeYears: 1, Volume: 10},
		}, "/v1/compare"},
		{"duplicate side", EvaluateRequest{
			Platforms: []PlatformSpec{{Domain: "DNN", Kind: "fpga"}, {Device: "IndustryFPGA1"}},
			Workload:  &WorkloadSpec{NApps: 1, LifetimeYears: 1, Volume: 10},
		}, "one per side"},
		{"too many", EvaluateRequest{
			Platforms: KindSpecs("fpga", "asic", "gpu"),
			Workload:  &WorkloadSpec{NApps: 1, LifetimeYears: 1, Volume: 10},
		}, "/v1/compare"},
		{"missing workload", EvaluateRequest{
			Platforms: []PlatformSpec{{Domain: "DNN", Kind: "fpga"}},
		}, "workload"},
		{"mixed forms", EvaluateRequest{
			Scenario:  config.Example(),
			Platforms: []PlatformSpec{{Domain: "DNN", Kind: "fpga"}},
		}, "exactly one form"},
		{"timeline arm", EvaluateRequest{
			Platforms: []PlatformSpec{{Domain: "DNN", Kind: "fpga"}},
			Workload:  &WorkloadSpec{Deployments: []TimelineDeployment{{LifetimeYears: 1, Volume: 1}}},
		}, "/v1/timeline"},
		{"apps plus timeline fields", EvaluateRequest{
			Platforms: []PlatformSpec{{Domain: "DNN", Kind: "fpga"}},
			Workload: &WorkloadSpec{
				Apps:        []AppConfig{{Name: "a", LifetimeYears: 1, Volume: 1}},
				Deployments: []TimelineDeployment{{LifetimeYears: 1, Volume: 1}},
			},
		}, "exactly one arm"},
		{"apps plus sizing", EvaluateRequest{
			Platforms: []PlatformSpec{{Domain: "DNN", Kind: "fpga"}},
			Workload: &WorkloadSpec{
				Apps:   []AppConfig{{Name: "a", LifetimeYears: 1, Volume: 1}},
				Sizing: "dedicated",
			},
		}, "exactly one arm"},
	} {
		_, err := e.Evaluate(context.Background(), &tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// Kind specs without a domain default to DNN at evaluate (the
	// request carries no domain field of its own), and the bare-kind
	// spelling shares a key with the explicit-domain spelling.
	bare := EvaluateRequest{
		Platforms: KindSpecs("fpga"),
		Workload:  &WorkloadSpec{NApps: 1, LifetimeYears: 1, Volume: 10},
	}
	resp2, err := e.Evaluate(context.Background(), &bare)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.FPGA == nil || resp2.FPGA.Platform != "DNN-FPGA" {
		t.Fatalf("bare kind at evaluate must default to DNN: %+v", resp2)
	}
	bn := bare.Normalized()
	explicit := EvaluateRequest{
		Platforms: []PlatformSpec{{Domain: "DNN", Kind: "fpga"}},
		Workload:  &WorkloadSpec{NApps: 1, LifetimeYears: 1, Volume: 10},
	}
	en := explicit.Normalized()
	kb, _ := CanonicalKey("/v1/evaluate", &bn)
	ke, _ := CanonicalKey("/v1/evaluate", &en)
	if kb != ke {
		t.Errorf("bare-kind and explicit-domain evaluate spellings hash differently")
	}
	// A legacy scenario with an empty apps list keeps its
	// no-applications error (not a complaint about napps).
	_, err = e.Evaluate(context.Background(), &EvaluateRequest{Scenario: &ScenarioConfig{
		Name: "x", FPGA: &PlatformConfig{Device: "IndustryFPGA1", DutyCycle: 0.3},
	}})
	if err == nil || !strings.Contains(err.Error(), "no applications") {
		t.Errorf("empty-apps scenario error: %v", err)
	}
}

// TestOrthogonalityMatrix spot-checks the studies the redesign
// unlocks: sweeping a GPU/CPU set, Monte-Carlo over GPU-vs-FPGA,
// crossover between catalog devices, a timeline over inline configs.
func TestOrthogonalityMatrix(t *testing.T) {
	// Sweep any platform set: per-platform totals, no pair fields.
	sw, err := RunSweep(SweepRequest{
		Axis:      "napps",
		To:        3,
		Platforms: KindSpecs("gpu", "cpu"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Platforms) != 2 || sw.Platforms[0] != "DNN-GPU" || sw.Platforms[1] != "DNN-CPU" {
		t.Fatalf("sweep platforms: %+v", sw.Platforms)
	}
	if len(sw.Points) != 3 {
		t.Fatalf("sweep points: %d", len(sw.Points))
	}
	for _, p := range sw.Points {
		if len(p.TotalsKg) != 2 || p.TotalsKg[0] <= 0 || p.TotalsKg[1] <= 0 {
			t.Errorf("point totals: %+v", p)
		}
		if p.FPGAKg != 0 || p.ASICKg != 0 || p.Ratio != 0 {
			t.Errorf("non-pair sweep must not fill pair fields: %+v", p)
		}
	}
	// The legacy pair shape keeps its dedicated fields.
	legacy, err := RunSweep(SweepRequest{Domain: "DNN", Axis: "napps", To: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Platforms) != 0 {
		t.Errorf("legacy sweep must omit the platform list: %+v", legacy.Platforms)
	}
	for _, p := range legacy.Points {
		if p.FPGAKg <= 0 || p.ASICKg <= 0 || p.Ratio <= 0 || p.TotalsKg != nil {
			t.Errorf("legacy point: %+v", p)
		}
	}
	// A three-platform sweep works too (the old engine was hardwired
	// to the pair).
	wide, err := RunSweep(SweepRequest{Axis: "lifetime", Points: 4, Platforms: KindSpecs("fpga", "asic", "gpu")})
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.Platforms) != 3 || len(wide.Points[0].TotalsKg) != 3 {
		t.Fatalf("3-platform sweep: %+v", wide.Platforms)
	}

	// Monte-Carlo over GPU-vs-FPGA.
	mc, err := RunMonteCarlo(MonteCarloRequest{
		Samples: 50, Seed: 9,
		Platforms: KindSpecs("gpu", "fpga"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if mc.PlatformA != "gpu" || mc.PlatformB != "fpga" {
		t.Errorf("mc echoes: %+v", mc)
	}
	if mc.Mean <= 0 || len(mc.Tornado) == 0 {
		t.Errorf("mc result: %+v", mc)
	}
	// The legacy default keeps its shape (no echoes) and exactly the
	// DomainRatioStudy numbers (the Between generalization pins the
	// (fpga, asic) instance bit-for-bit through the shared model).
	legacyMC, err := RunMonteCarlo(MonteCarloRequest{Samples: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if legacyMC.PlatformA != "" || legacyMC.PlatformB != "" {
		t.Errorf("legacy mc must omit echoes: %+v", legacyMC)
	}
	specMC, err := RunMonteCarlo(MonteCarloRequest{Samples: 50, Seed: 9, Platforms: KindSpecs("fpga", "asic")})
	if err != nil {
		t.Fatal(err)
	}
	var lb, sb bytes.Buffer
	if err := WriteJSON(&lb, legacyMC); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&sb, specMC); err != nil {
		t.Fatal(err)
	}
	if lb.String() != sb.String() {
		t.Error("spec spelling of the default mc pair changed the response")
	}
	for _, bad := range []MonteCarloRequest{
		{Platforms: []PlatformSpec{{Device: "IndustryFPGA1"}, {Domain: "DNN", Kind: "asic"}}, Samples: 10},
		{Platforms: []PlatformSpec{{Domain: "DNN", Kind: "fpga", DutyCycle: 0.5}, {Domain: "DNN", Kind: "asic"}}, Samples: 10},
		{Platforms: []PlatformSpec{{Domain: "DNN", Kind: "fpga"}, {Domain: "Crypto", Kind: "asic"}}, Samples: 10},
		{Platforms: KindSpecs("fpga", "fpga"), Samples: 10},
		{Platforms: KindSpecs("fpga"), Samples: 10},
		{Workload: &WorkloadSpec{NApps: 3, Volume: 10}, Samples: 10},
	} {
		if _, err := RunMonteCarlo(bad); err == nil {
			t.Errorf("mc request %+v must error", bad)
		}
	}

	// Crossover between two catalog devices, echoing their names.
	cx, err := RunCrossover(CrossoverRequest{
		Platforms: []PlatformSpec{{Device: "IndustryFPGA1"}, {Device: "IndustryASIC1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cx.PlatformA != "IndustryFPGA1" || cx.PlatformB != "IndustryASIC1" {
		t.Errorf("catalog crossover echoes: %+v", cx)
	}
	if cx.Domain != "" {
		t.Errorf("catalog crossover has no domain, got %q", cx.Domain)
	}
	// With the catalog deployment knobs the big industry FPGA die never
	// catches the ASIC within the default search — the solve must still
	// report that deterministically rather than error.
	if cx.A2FNumApps.Found {
		t.Errorf("industry FPGA unexpectedly crossed at %g applications", cx.A2FNumApps.Value)
	}
	// Flipping the operands asks where the ASIC beats the FPGA: from
	// the first application.
	flip, err := RunCrossover(CrossoverRequest{
		Platforms: []PlatformSpec{{Device: "IndustryASIC1"}, {Device: "IndustryFPGA1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !flip.A2FNumApps.Found || flip.A2FNumApps.Value != 1 {
		t.Errorf("flipped catalog crossover: %+v", flip.A2FNumApps)
	}

	// Timeline over inline configs.
	inline := func(name, kind string, area, power float64, gates float64) *PlatformConfig {
		return &PlatformConfig{
			Name: name, Kind: kind, Node: "10nm",
			DieAreaMM2: area, PeakPowerW: power, CapacityGates: gates,
			DutyCycle: 0.2, DesignEngineers: 300, DesignYears: 2,
		}
	}
	tl, err := RunTimeline(TimelineRequest{
		Platforms: []PlatformSpec{
			{Config: inline("custom-fpga", "fpga", 600, 3, 60e6)},
			{Config: inline("custom-asic", "asic", 150, 1, 0)},
		},
		Workload: &WorkloadSpec{NApps: 3, IntervalYears: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Domain != "" || len(tl.Platforms) != 2 || tl.Winner == "" {
		t.Fatalf("inline timeline: %+v", tl)
	}
	if tl.Platforms[0].Platform != "custom-fpga" || tl.Platforms[1].Platform != "custom-asic" {
		t.Errorf("inline timeline platforms: %+v", tl.Platforms)
	}

	// Compare across catalog devices: domain-free, winner well-defined.
	cmp, err := RunCompare(CompareRequest{
		Platforms: []PlatformSpec{{Device: "IndustryFPGA1"}, {Device: "IndustryASIC1"}},
		NApps:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Domain != "" || len(cmp.Platforms) != 2 || cmp.Winner == "" {
		t.Fatalf("catalog compare: %+v", cmp)
	}
}

// TestLegacySugarConflicts checks that a request setting a legacy
// field alongside its spec form is rejected, not silently resolved.
func TestLegacySugarConflicts(t *testing.T) {
	uniform := &WorkloadSpec{NApps: 2, LifetimeYears: 1, Volume: 10}
	for name, err := range map[string]error{
		"compare":   errOf(RunCompare(CompareRequest{NApps: 3, Workload: uniform})),
		"crossover": errOf(RunCrossover(CrossoverRequest{Volume: 5, Workload: uniform})),
		"crossover selectors": errOf(RunCrossover(CrossoverRequest{
			PlatformA: "fpga", PlatformB: "gpu", Platforms: KindSpecs("fpga", "gpu"),
		})),
		"mc": errOf(RunMonteCarlo(MonteCarloRequest{NApps: 3, Workload: &WorkloadSpec{NApps: 2}})),
		"timeline": errOf(RunTimeline(TimelineRequest{
			NApps: 3, Workload: &WorkloadSpec{NApps: 2},
		})),
		"sweep arm": errOf(RunSweep(SweepRequest{
			Workload: &WorkloadSpec{Apps: []AppConfig{{Name: "a", LifetimeYears: 1, Volume: 1}}},
		})),
	} {
		if err == nil {
			t.Errorf("%s: conflicting request must error", name)
		}
	}
}

// errOf discards a response, keeping the error for table-driven
// conflict checks.
func errOf[T any](_ T, err error) error { return err }

// TestSpecStringForm pins the bare-string platform shorthand and the
// strictness of spec objects.
func TestSpecStringForm(t *testing.T) {
	var req CompareRequest
	if err := json.Unmarshal([]byte(`{"platforms":["gpu",{"domain":"DNN","kind":"asic"}]}`), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Platforms) != 2 || req.Platforms[0].Kind != "gpu" || req.Platforms[1].Domain != "DNN" {
		t.Fatalf("mixed string/object platforms: %+v", req.Platforms)
	}
	// Unknown fields inside a spec object are rejected even under a
	// lenient outer decoder.
	if err := json.Unmarshal([]byte(`{"platforms":[{"kindd":"gpu"}]}`), &req); err == nil {
		t.Error("typoed spec field must not decode")
	}
	var sp PlatformSpec
	if err := json.Unmarshal([]byte(`null`), &sp); err != nil {
		t.Fatalf("null spec: %v", err)
	}
	if sp != (PlatformSpec{}) {
		t.Errorf("null spec must decode to the zero value: %+v", sp)
	}
}

// TestSweepWorkloadOffAxis checks the new off-axis workload knob: a
// lifetime sweep at a non-default application count differs from the
// default, and the swept axis ignores its own workload field.
func TestSweepWorkloadOffAxis(t *testing.T) {
	base, err := RunSweep(SweepRequest{Axis: "lifetime", Points: 3})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := RunSweep(SweepRequest{Axis: "lifetime", Points: 3, Workload: &WorkloadSpec{NApps: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Points[0].FPGAKg >= heavy.Points[0].FPGAKg {
		t.Errorf("nine applications must cost more than five: %g vs %g",
			base.Points[0].FPGAKg, heavy.Points[0].FPGAKg)
	}
	onAxis, err := RunSweep(SweepRequest{Axis: "napps", To: 2, Workload: &WorkloadSpec{NApps: 99}})
	if err != nil {
		t.Fatal(err)
	}
	def, err := RunSweep(SweepRequest{Axis: "napps", To: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(onAxis.Points) != fmt.Sprint(def.Points) {
		t.Error("the swept axis must ignore its own workload field")
	}
}

// TestMCSpecValidation pins the multi-arm rejection on /v1/mc: the
// only endpoint that resolves kinds without compiling must still run
// every spec through Validate.
func TestMCSpecValidation(t *testing.T) {
	_, err := RunMonteCarlo(MonteCarloRequest{
		Samples: 10,
		Platforms: []PlatformSpec{
			{Kind: "gpu", Device: "IndustryASIC1"},
			{Kind: "asic"},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "more than one selector") {
		t.Errorf("multi-arm mc spec must be rejected by Validate, got %v", err)
	}
}
