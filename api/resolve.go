// Resolution: the shared layer that turns []PlatformSpec +
// WorkloadSpec into compiled platforms and core scenarios/schedules.
// Every compute endpoint — evaluate, compare, crossover, timeline,
// sweep, mc — resolves its request through this file, so one spec
// grammar reaches the whole engine and equivalent spellings share the
// Evaluator's compiled-platform cache.

package api

import (
	"fmt"

	"greenfpga/internal/carbon"
	"greenfpga/internal/config"
	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/units"
)

// Catalog-device deployment defaults: a Table 3 device selected by
// name is deployed with the same knobs as the CLI's catalog
// head-to-head (`greenfpga compare -fpga/-asic`). Spec overrides apply
// on top.
const (
	catalogDutyCycle       = 0.3
	catalogPUE             = 1.2
	catalogDesignEngineers = 500
	catalogDesignYears     = 2
)

// platform materializes the spec's core.Platform: the selector arm's
// base platform with the cross-cutting overrides applied. Validation
// of the resulting platform happens in core.Compile.
func (p PlatformSpec) platform() (core.Platform, error) {
	var base core.Platform
	switch {
	case p.Kind != "":
		d, err := isoperf.ByName(p.Domain)
		if err != nil {
			return core.Platform{}, err
		}
		set, err := d.Set()
		if err != nil {
			return core.Platform{}, err
		}
		base, err = set.Member(device.Kind(p.Kind))
		if err != nil {
			return core.Platform{}, &Error{Code: "invalid_request",
				Message: fmt.Sprintf("domain %s: %v", d.Name, err)}
		}
	case p.Device != "":
		spec, err := device.ByName(p.Device)
		if err != nil {
			return core.Platform{}, err
		}
		base = core.Platform{
			Spec:            spec,
			DutyCycle:       catalogDutyCycle,
			PUE:             catalogPUE,
			DesignEngineers: catalogDesignEngineers,
			DesignDuration:  units.YearsOf(catalogDesignYears),
		}
	case p.Config != nil:
		var err error
		base, err = p.Config.ToPlatform()
		if err != nil {
			return core.Platform{}, err
		}
	}
	if p.DutyCycle != 0 {
		base.DutyCycle = p.DutyCycle
	}
	if p.UseRegion != "" {
		reg, err := carbon.ByName(p.UseRegion)
		if err != nil {
			return core.Platform{}, &Error{Code: "invalid_request", Message: err.Error()}
		}
		base.UseMix = reg.Mix
		base.UseTrace, base.UseIntegrator = nil, nil
		if reg.Traced {
			// Traced regions ship their cached compiled constants so
			// every spec siting a platform there shares one prefix table.
			it, err := carbon.IntegratorFor(reg.Name)
			if err != nil {
				return core.Platform{}, err
			}
			base.UseIntegrator = it
		}
	}
	if p.Trace != nil {
		tr, err := carbon.FromGrams(p.Trace.GPerKWh)
		if err != nil {
			return core.Platform{}, &Error{Code: "invalid_request", Message: err.Error()}
		}
		base.UseTrace, base.UseIntegrator = tr, nil
	}
	if p.Shift != "" {
		base.UseShift = p.Shift
	}
	if p.ChipLifetimeYears != 0 {
		base.ChipLifetime = units.YearsOf(p.ChipLifetimeYears)
	}
	return base, nil
}

// resolveSpec resolves one spec to a compiled platform. Plain domain
// members reuse the memoized domain-set compilations (shared with
// every legacy-shaped request); everything else — catalog devices,
// inline configs, any spec with overrides — is compiled once and
// content-addressed in the Evaluator's compiled-platform cache under
// the spec's canonical JSON.
func (e *Evaluator) resolveSpec(sp PlatformSpec) (*core.Compiled, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if c, ok, err := e.plainMember(sp); ok || err != nil {
		return c, err
	}
	// Hash only the specs that reach the content-addressed cache: the
	// plain-member fast path above never needs a key.
	key, err := CanonicalKey("spec", sp)
	if err != nil {
		return nil, err
	}
	return e.compiledForSpec(sp, key)
}

// resolveSpecKeyed is resolveSpec with the spec's canonical key
// already computed (resolveAll derives one per spec for duplicate
// detection anyway, so resolution never hashes a spec twice).
func (e *Evaluator) resolveSpecKeyed(sp PlatformSpec, key string) (*core.Compiled, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if c, ok, err := e.plainMember(sp); ok || err != nil {
		return c, err
	}
	return e.compiledForSpec(sp, key)
}

// plainMember resolves a bare {domain, kind} selector through the
// memoized domain-set compilations; ok is false when the spec needs
// the content-addressed path instead.
func (e *Evaluator) plainMember(sp PlatformSpec) (*core.Compiled, bool, error) {
	if sp.Kind == "" || sp.hasOverrides() {
		return nil, false, nil
	}
	cs, _, err := compiledDomainSet(sp.Domain)
	if err != nil {
		return nil, true, err
	}
	c, err := setMember(cs, sp.Kind)
	return c, true, err
}

// compiledForSpec is the content-addressed compile: hit the
// compiled-platform cache under the spec's canonical key, or build,
// compile and admit.
func (e *Evaluator) compiledForSpec(sp PlatformSpec, key string) (*core.Compiled, error) {
	if v, ok := e.compiled.Get(key); ok {
		return v.(*core.Compiled), nil
	}
	p, err := sp.platform()
	if err != nil {
		return nil, err
	}
	c, err := core.Compile(p)
	if err != nil {
		return nil, err
	}
	e.compiled.Put(key, c)
	return c, nil
}

// ResolveSet resolves a spec list into a compiled platform set, in
// spec order, rejecting duplicate specs. It is the entry point behind
// every endpoint's platform resolution (and the BenchmarkResolveSpecs
// subject).
func (e *Evaluator) ResolveSet(specs []PlatformSpec) (core.CompiledSet, error) {
	return e.resolveAll(specs, "", "platform set", 1)
}

// resolveAll resolves specs with an endpoint-named error context, a
// minimum platform count, and an unknown-domain fallback: a request
// whose full-set expansion failed (empty specs with a named domain)
// surfaces the domain lookup error instead of a generic one.
func (e *Evaluator) resolveAll(specs []PlatformSpec, domain, what string, min int) (core.CompiledSet, error) {
	if len(specs) == 0 {
		if domain != "" {
			if _, err := isoperf.ByName(domain); err != nil {
				return nil, err
			}
		}
		return nil, &Error{Code: "invalid_request",
			Message: what + " needs at least one platform"}
	}
	seen := make(map[string]bool, len(specs))
	cs := make(core.CompiledSet, len(specs))
	for i, sp := range specs {
		key, err := CanonicalKey("spec", sp)
		if err != nil {
			return nil, err
		}
		if seen[key] {
			return nil, &Error{Code: "invalid_request",
				Message: fmt.Sprintf("duplicate platform %s", sp.describe())}
		}
		seen[key] = true
		c, err := e.resolveSpecKeyed(sp, key)
		if err != nil {
			return nil, err
		}
		cs[i] = c
	}
	if len(cs) < min {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("%s needs at least %d platforms", what, min)}
	}
	return cs, nil
}

// scenario materializes the workload's core.Scenario (uniform or apps
// arm); timeline workloads are rejected — their results need the
// timeline response shape.
func (w WorkloadSpec) scenario(name string) (core.Scenario, error) {
	switch w.arm() {
	case armApps:
		if w.NApps != 0 || w.LifetimeYears != 0 || w.Volume != 0 || w.SizeGates != 0 {
			return core.Scenario{}, &Error{Code: "invalid_request",
				Message: "workload sets both explicit apps and uniform fields; use exactly one arm"}
		}
		if len(w.Deployments) > 0 || w.IntervalYears != 0 || w.Sizing != "" {
			return core.Scenario{}, &Error{Code: "invalid_request",
				Message: "workload sets both explicit apps and timeline fields; use exactly one arm"}
		}
		cfg := config.Scenario{Name: name, Apps: w.Apps, StrictEq2: w.StrictEq2}
		return cfg.ToScenario()
	case armTimeline:
		return core.Scenario{}, &Error{Code: "invalid_request",
			Message: "this endpoint takes a uniform or apps workload, not a timeline; POST /v1/timeline instead"}
	}
	if w.NApps == 0 && w.LifetimeYears == 0 && w.Volume == 0 && w.SizeGates == 0 {
		// An entirely empty workload — a scenario document with an
		// empty apps list, say — reads as "no applications", not as a
		// malformed napps the client never sent.
		return core.Scenario{}, core.Scenario{Name: name}.Validate()
	}
	if w.NApps < 1 {
		return core.Scenario{}, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("napps must be >= 1, got %d", w.NApps)}
	}
	s := core.Uniform(name, w.NApps, units.YearsOf(w.LifetimeYears), w.Volume, w.SizeGates)
	s.StrictEq2 = w.StrictEq2
	if err := s.Validate(); err != nil {
		return core.Scenario{}, err
	}
	return s, nil
}

// schedule materializes a normalized timeline workload's
// core.Schedule.
func (w WorkloadSpec) schedule(name string) core.Schedule {
	sch := core.Schedule{
		Name:      name,
		Sizing:    core.FleetSizing(w.Sizing),
		StrictEq2: w.StrictEq2,
	}
	for _, d := range w.Deployments {
		sch.Deployments = append(sch.Deployments, core.Deployment{
			App: core.Application{
				Name:      d.Name,
				Lifetime:  units.YearsOf(d.LifetimeYears),
				Volume:    d.Volume,
				SizeGates: d.SizeGates,
			},
			Start: units.YearsOf(d.StartYears),
		})
	}
	return sch
}
