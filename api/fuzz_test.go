package api

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzCanonicalKey is the content-addressing property: two bodies that
// describe the same semantic request — different field order, spelled
// defaults vs omitted, legacy sugar vs spec form, shorthand vs
// expanded timeline — must share one canonical key, and keys must be
// deterministic across re-normalizing.
func FuzzCanonicalKey(f *testing.F) {
	f.Add("DNN", 5, 2.0, 1e6, 30, 0.5, 8.0)
	f.Add("", 0, 0.0, 0.0, 0, 0.0, 0.0)
	f.Add("Crypto", 1, 0.05, 1e2, 1, 0.25, 15.0)
	f.Add("ImgProc", 12, 9.9, 1e8, 64, 3.0, 1.0)
	f.Add("Quantum", -3, -1.0, -2.0, -4, -0.5, -1.0)
	f.Fuzz(func(t *testing.T, domain string, napps int, lifetime, volume float64, maxapps int, interval, chipLife float64) {
		// Typed requests only ever come out of the JSON decoder, which
		// coerces invalid UTF-8 to U+FFFD; mirror that here (a raw Go
		// string with invalid bytes marshals as a � escape where
		// its decoded round trip re-marshals as raw replacement bytes,
		// a divergence no decodable body can produce).
		domain = strings.ToValidUTF8(domain, "�")
		// Crossover requests: a strictly-decoded body with fields
		// re-ordered must normalize to the same key as the typed
		// request.
		cross := CrossoverRequest{
			Domain: domain, NApps: napps, LifetimeYears: lifetime,
			Volume: volume, MaxApps: maxapps,
		}
		norm := cross.Normalized()
		k1, err := CanonicalKey("/v1/crossover", norm)
		if err != nil {
			t.Fatalf("key: %v", err)
		}
		spelled, err := json.Marshal(map[string]any{
			"max_apps": maxapps, "volume": volume, "napps": napps,
			"lifetime_years": lifetime, "domain": domain,
		})
		if err != nil {
			t.Fatal(err)
		}
		var decoded CrossoverRequest
		if err := json.Unmarshal(spelled, &decoded); err != nil {
			t.Fatal(err)
		}
		k2, err := CanonicalKey("/v1/crossover", decoded.Normalized())
		if err != nil {
			t.Fatalf("key: %v", err)
		}
		if k1 != k2 {
			t.Fatalf("re-ordered spelled-out body changed the key: %s vs %s", k1, k2)
		}
		// Normalization must be idempotent under the key.
		k3, err := CanonicalKey("/v1/crossover", norm.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k3 {
			t.Fatalf("re-normalizing changed the key: %s vs %s", k1, k3)
		}
		// The legacy scenario fields are sugar for the workload spec:
		// the spec spelling of the same solves is the same entry.
		spec := CrossoverRequest{
			Domain:   domain,
			Workload: &WorkloadSpec{NApps: napps, LifetimeYears: lifetime, Volume: volume},
			MaxApps:  maxapps,
		}
		k4, err := CanonicalKey("/v1/crossover", spec.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k4 {
			t.Fatalf("workload spec spelling changed the key: %s vs %s", k1, k4)
		}

		// Timeline requests: the generator shorthand, its expanded
		// legacy-explicit equivalent and the spec form are one key, and
		// normalizing is idempotent.
		short := TimelineRequest{
			Domain: domain, NApps: napps, IntervalYears: interval,
			LifetimeYears: lifetime, Volume: volume, ChipLifetimeYears: chipLife,
		}
		tnorm := short.Normalized()
		tk1, err := CanonicalKey("/v1/timeline", tnorm)
		if err != nil {
			t.Fatal(err)
		}
		// Negative counts are preserved un-expanded (for RunTimeline to
		// reject), so the explicit-spelling equivalence only applies
		// when the generator produced a timeline.
		if tw := tnorm.Workload; len(tw.Deployments) > 0 {
			explicit := TimelineRequest{
				Domain:            domain,
				ChipLifetimeYears: chipLife,
				Sizing:            tw.Sizing,
				Deployments:       append([]TimelineDeployment(nil), tw.Deployments...),
			}
			tk2, err := CanonicalKey("/v1/timeline", explicit.Normalized())
			if err != nil {
				t.Fatal(err)
			}
			if tk1 != tk2 {
				t.Fatalf("expanded timeline changed the key: %s vs %s", tk1, tk2)
			}
		} else if tnorm.Workload.NApps >= 0 {
			t.Fatalf("only negative napps may normalize to an empty timeline: %+v", tnorm.Workload)
		}
		tk3, err := CanonicalKey("/v1/timeline", tnorm.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		if tk1 != tk3 {
			t.Fatalf("re-normalizing the timeline changed the key: %s vs %s", tk1, tk3)
		}
		// Distinct endpoints never share a key space.
		if k1 == tk1 {
			t.Fatal("crossover and timeline requests share a key")
		}
	})
}

// FuzzPlatformSpec is the spec-grammar property: any decodable
// platform spec body must decode strictly and deterministically —
// the bare-string kind shorthand is the same spec as its object form,
// normalization is idempotent, a marshal/decode round trip preserves
// the canonical key, and validation plus resolution never panic
// (resolution of the same valid spec twice agrees with itself).
func FuzzPlatformSpec(f *testing.F) {
	f.Add(`{"domain":"DNN","kind":"fpga"}`)
	f.Add(`"gpu"`)
	f.Add(`{"kind":"cpu","duty_cycle":0.4}`)
	f.Add(`{"device":"IndustryFPGA1"}`)
	f.Add(`{"device":"IndustryASIC1","use_region":"france","chip_lifetime_years":8}`)
	f.Add(`{"config":{"name":"inline","kind":"asic","node":"10nm","die_area_mm2":100,"peak_power_w":2,"duty_cycle":0.2}}`)
	f.Add(`{"domain":"Crypto","kind":"asic","duty_cycle":1.5}`)
	f.Add(`{"kind":"fpga","device":"IndustryFPGA1"}`)
	f.Fuzz(func(t *testing.T, body string) {
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		var sp PlatformSpec
		if err := dec.Decode(&sp); err != nil {
			return // not a decodable spec; nothing to check
		}
		// Kind-only specs and their bare-string shorthand are one spec.
		if sp == (PlatformSpec{Kind: sp.Kind}) && sp.Kind != "" {
			shorthand, err := json.Marshal(sp.Kind)
			if err != nil {
				t.Fatal(err)
			}
			var viaString PlatformSpec
			if err := json.Unmarshal(shorthand, &viaString); err != nil {
				t.Fatalf("bare-string kind did not decode: %v", err)
			}
			if viaString != sp {
				t.Fatalf("string shorthand decoded to %+v, object to %+v", viaString, sp)
			}
		}
		// Domain normalization is idempotent.
		n1 := sp.normalizedWith("DNN")
		n2 := n1.normalizedWith("DNN")
		if n1 != n2 {
			t.Fatalf("normalizedWith not idempotent: %+v vs %+v", n1, n2)
		}
		// The canonical key survives a marshal/decode round trip.
		k1, err := CanonicalKey("spec", n1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, n1); err != nil {
			t.Fatal(err)
		}
		var back PlatformSpec
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("re-decoding a marshaled spec failed: %v\n%s", err, buf.String())
		}
		k2, err := CanonicalKey("spec", back.normalizedWith("DNN"))
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("round trip changed the key: %s vs %s\n%s", k1, k2, buf.String())
		}
		// Validation and resolution must never panic, and resolving the
		// same valid spec twice must agree (the second hit comes from
		// the compiled-platform cache).
		if err := n1.Validate(); err != nil {
			return
		}
		e := NewEvaluator(8)
		c1, err1 := e.resolveSpec(n1)
		c2, err2 := e.resolveSpec(n1)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("resolution not deterministic: %v vs %v", err1, err2)
		}
		if err1 == nil && c1 != c2 {
			t.Fatalf("re-resolving the same spec returned a different compilation")
		}
	})
}
