package api

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzCanonicalKey is the content-addressing property: two bodies that
// describe the same semantic request — different field order, spelled
// defaults vs omitted, shorthand vs expanded timeline — must share one
// canonical key, and keys must be deterministic across re-normalizing.
func FuzzCanonicalKey(f *testing.F) {
	f.Add("DNN", 5, 2.0, 1e6, 30, 0.5, 8.0)
	f.Add("", 0, 0.0, 0.0, 0, 0.0, 0.0)
	f.Add("Crypto", 1, 0.05, 1e2, 1, 0.25, 15.0)
	f.Add("ImgProc", 12, 9.9, 1e8, 64, 3.0, 1.0)
	f.Add("Quantum", -3, -1.0, -2.0, -4, -0.5, -1.0)
	f.Fuzz(func(t *testing.T, domain string, napps int, lifetime, volume float64, maxapps int, interval, chipLife float64) {
		// Typed requests only ever come out of the JSON decoder, which
		// coerces invalid UTF-8 to U+FFFD; mirror that here (a raw Go
		// string with invalid bytes marshals as a � escape where
		// its decoded round trip re-marshals as raw replacement bytes,
		// a divergence no decodable body can produce).
		domain = strings.ToValidUTF8(domain, "�")
		// Crossover requests: a strictly-decoded body with fields
		// re-ordered and defaults spelled out must normalize to the
		// same key as the typed request.
		cross := CrossoverRequest{
			Domain: domain, NApps: napps, LifetimeYears: lifetime,
			Volume: volume, MaxApps: maxapps,
		}
		norm := cross.Normalized()
		k1, err := CanonicalKey("/v1/crossover", norm)
		if err != nil {
			t.Fatalf("key: %v", err)
		}
		spelled, err := json.Marshal(map[string]any{
			"max_apps": norm.MaxApps, "volume": norm.Volume, "napps": norm.NApps,
			"lifetime_years": norm.LifetimeYears, "domain": norm.Domain,
		})
		if err != nil {
			t.Fatal(err)
		}
		var decoded CrossoverRequest
		if err := json.Unmarshal(spelled, &decoded); err != nil {
			t.Fatal(err)
		}
		k2, err := CanonicalKey("/v1/crossover", decoded.Normalized())
		if err != nil {
			t.Fatalf("key: %v", err)
		}
		if k1 != k2 {
			t.Fatalf("re-ordered spelled-out body changed the key: %s vs %s", k1, k2)
		}
		// Normalization must be idempotent under the key.
		k3, err := CanonicalKey("/v1/crossover", norm.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k3 {
			t.Fatalf("re-normalizing changed the key: %s vs %s", k1, k3)
		}

		// Timeline requests: the generator shorthand and its expanded
		// explicit-deployment equivalent are one key, and normalizing
		// is idempotent.
		short := TimelineRequest{
			Domain: domain, NApps: napps, IntervalYears: interval,
			LifetimeYears: lifetime, Volume: volume, ChipLifetimeYears: chipLife,
		}
		tnorm := short.Normalized()
		tk1, err := CanonicalKey("/v1/timeline", tnorm)
		if err != nil {
			t.Fatal(err)
		}
		// Negative counts are preserved un-expanded (for RunTimeline to
		// reject), so the explicit-spelling equivalence only applies
		// when the generator produced a timeline.
		if len(tnorm.Deployments) > 0 {
			explicit := TimelineRequest{
				Domain: tnorm.Domain, Sizing: tnorm.Sizing,
				ChipLifetimeYears: tnorm.ChipLifetimeYears,
				Deployments:       append([]TimelineDeployment(nil), tnorm.Deployments...),
			}
			tk2, err := CanonicalKey("/v1/timeline", explicit.Normalized())
			if err != nil {
				t.Fatal(err)
			}
			if tk1 != tk2 {
				t.Fatalf("expanded timeline changed the key: %s vs %s", tk1, tk2)
			}
		} else if tnorm.NApps >= 0 {
			t.Fatalf("only negative napps may normalize to an empty timeline: %+v", tnorm)
		}
		tk3, err := CanonicalKey("/v1/timeline", tnorm.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		if tk1 != tk3 {
			t.Fatalf("re-normalizing the timeline changed the key: %s vs %s", tk1, tk3)
		}
		// Distinct endpoints never share a key space.
		if k1 == tk1 {
			t.Fatal("crossover and timeline requests share a key")
		}
	})
}
