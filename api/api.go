// Package api defines the canonical JSON request and response types of
// the GreenFPGA evaluation service. The same types back the
// `greenfpga serve` HTTP endpoints (internal/server), the typed Go
// client (client), and the CLI's `-json` output modes, so a scripted
// consumer sees byte-identical documents whichever door it knocks on.
//
// Every compute endpoint shares one request model: a list of
// PlatformSpec selectors (iso-performance domain member, Table 3
// catalog device, or inline config, plus cross-cutting overrides) and
// a WorkloadSpec (uniform scenario, explicit applications, or a
// deployment timeline). The pre-existing per-endpoint fields are pure
// normalization sugar that expands into specs, so a legacy body and
// its spec spelling share one canonical key — and one server cache
// entry. See DESIGN.md's "Request model".
//
// Scenario documents reuse the JSON schema of the `greenfpga run`
// config (internal/config) via the ScenarioConfig alias: a file that
// works with `greenfpga run -config` is, wrapped in
// {"scenario": ...}, a valid /v1/evaluate body.
//
// The compute entry points (Evaluator.Evaluate and the Run* methods,
// with package-level wrappers over a default Evaluator) are shared by
// CLI and server so both produce identical numbers; the server adds
// caching, batching and metrics on top (see internal/server).
package api

import (
	"encoding/json"

	"greenfpga/internal/config"
)

// ScenarioConfig is the scenario JSON document, shared with
// `greenfpga run` (see internal/config.Scenario).
type ScenarioConfig = config.Scenario

// PlatformConfig is one platform description inside a scenario
// document.
type PlatformConfig = config.Platform

// Error is the service's JSON error envelope. Every non-2xx response
// from a service handler carries one; requests that never reach a
// handler (an unregistered path or method) get net/http's plain-text
// 404/405 instead, so clients should fall back to the raw body when
// the envelope does not decode (the client package does).
type Error struct {
	// Code is a stable machine-readable identifier
	// ("invalid_request", "not_found", "overloaded", "internal").
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Error implements the error interface so clients can surface the
// envelope directly.
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// Device is one Table 3 catalog entry.
type Device struct {
	Name          string  `json:"name"`
	Kind          string  `json:"kind"`
	Node          string  `json:"node"`
	DieAreaMM2    float64 `json:"die_area_mm2"`
	PeakPowerW    float64 `json:"peak_power_w"`
	CapacityGates float64 `json:"capacity_gates,omitempty"`
	BasedOn       string  `json:"based_on,omitempty"`
}

// DeviceList is the /v1/devices response and the `greenfpga devices
// -json` document.
type DeviceList struct {
	Devices []Device `json:"devices"`
}

// Domain is one Table 2 iso-performance testcase.
type Domain struct {
	Name            string  `json:"name"`
	AreaRatio       float64 `json:"area_ratio"`
	PowerRatio      float64 `json:"power_ratio"`
	ASICAreaMM2     float64 `json:"asic_area_mm2"`
	ASICPeakPowerW  float64 `json:"asic_peak_power_w"`
	DutyCycle       float64 `json:"duty_cycle"`
	DesignEngineers float64 `json:"design_engineers"`
}

// DomainList is the /v1/domains response and the `greenfpga domains
// -json` document.
type DomainList struct {
	Domains []Domain `json:"domains"`
}

// Region is one deployment-grid region of the carbon registry: the
// scalar presets plus the traced regions whose hourly intensity the
// carbon engine synthesizes.
type Region struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Traced reports whether the region carries an hourly intensity
	// trace; scalar regions keep the legacy closed-form path.
	Traced bool `json:"traced"`
	// IntensityGPerKWh is the region mix's scalar carbon intensity.
	IntensityGPerKWh float64 `json:"intensity_g_per_kwh"`
	// MeanGPerKWh, MinGPerKWh and MaxGPerKWh summarize the hourly
	// trace (traced regions only).
	MeanGPerKWh float64 `json:"mean_g_per_kwh,omitempty"`
	MinGPerKWh  float64 `json:"min_g_per_kwh,omitempty"`
	MaxGPerKWh  float64 `json:"max_g_per_kwh,omitempty"`
}

// RegionList is the /v1/regions response and the `greenfpga regions
// -json` document.
type RegionList struct {
	Regions []Region `json:"regions"`
}

// TraceSpec is an inline hourly carbon-intensity profile: sample h is
// the grid intensity during hour [h, h+1), in g/kWh, tiling cyclically
// over the operating calendar (24 samples repeat daily, 8760 yearly).
type TraceSpec struct {
	GPerKWh []float64 `json:"g_per_kwh"`
}

// ExperimentList is the /v1/experiments response and the `greenfpga
// list -json` document.
type ExperimentList struct {
	Experiments []string `json:"experiments"`
}

// Breakdown splits a platform total into the paper's CFP components,
// in kilograms CO2e.
type Breakdown struct {
	DesignKg         float64 `json:"design_kg"`
	ManufacturingKg  float64 `json:"manufacturing_kg"`
	PackagingKg      float64 `json:"packaging_kg"`
	EOLKg            float64 `json:"eol_kg"`
	OperationKg      float64 `json:"operation_kg"`
	AppDevelopmentKg float64 `json:"app_development_kg"`
	ConfigurationKg  float64 `json:"configuration_kg"`
	TotalKg          float64 `json:"total_kg"`
}

// PlatformResult is one platform's evaluated assessment.
type PlatformResult struct {
	// Platform is the device name.
	Platform string `json:"platform"`
	// Kind is the device kind: "asic", "fpga", "gpu" or "cpu".
	Kind string `json:"kind"`
	// TotalKg is the scenario-total CFP.
	TotalKg float64 `json:"total_kg"`
	// Breakdown splits the total by source.
	Breakdown Breakdown `json:"breakdown"`
	// DevicesManufactured counts every device built over the
	// scenario, including fleet regenerations.
	DevicesManufactured float64 `json:"devices_manufactured"`
	// FleetSize is the concurrent device count.
	FleetSize float64 `json:"fleet_size"`
	// HardwareGenerations counts fleet rebuilds (1 when uncapped).
	HardwareGenerations int `json:"hardware_generations"`
}

// EvaluateRequest is the /v1/evaluate body: either a legacy scenario
// document or the spec form (name + platforms + workload). The legacy
// scenario is pure normalization sugar — it expands into
// {Config: ...} platform specs and an apps workload, so a scenario
// body and its spec spelling are one cache entry.
type EvaluateRequest struct {
	// Scenario is the legacy run configuration, the document accepted
	// by `greenfpga run -config`. Mutually exclusive with the spec
	// fields below.
	Scenario *ScenarioConfig `json:"scenario,omitempty"`
	// Name labels the study (the scenario name in spec form).
	Name string `json:"name,omitempty"`
	// Platforms selects one or two platforms. Because the evaluate
	// response carries dedicated fpga/asic sides, each platform must
	// resolve to one of those kinds (at most one of each); GPU/CPU
	// platforms are rejected here — route them at /v1/compare, whose
	// response is kind-agnostic. A platform lands on the side its
	// *resolved kind* names, including for the legacy scenario sugar:
	// a config whose kind disagrees with the scenario slot it sits in
	// (an asic-kind device in the "fpga" slot) reports under its real
	// kind — the old positional routing mislabeled it — and two
	// same-kind configs are rejected rather than mislabeled as a
	// comparison.
	Platforms []PlatformSpec `json:"platforms,omitempty"`
	// Workload describes the work (uniform or apps arm).
	Workload *WorkloadSpec `json:"workload,omitempty"`
}

// EvaluateResponse is the /v1/evaluate result and the `greenfpga run
// -json` document. Its shape is the paper's two-sided comparison:
// only fpga- and asic-kind platforms fit it (see
// EvaluateRequest.Platforms).
type EvaluateResponse struct {
	// Scenario echoes the scenario name.
	Scenario string `json:"scenario"`
	// FPGA and ASIC carry the evaluated sides; either may be absent
	// when the scenario describes a single platform.
	FPGA *PlatformResult `json:"fpga,omitempty"`
	ASIC *PlatformResult `json:"asic,omitempty"`
	// Ratio is FPGA:ASIC total CFP, present when both sides are.
	Ratio *float64 `json:"ratio,omitempty"`
	// Verdict names the more sustainable platform ("fpga" or "asic"),
	// present when both sides are.
	Verdict string `json:"verdict,omitempty"`
}

// BatchEvaluateRequest is the /v1/evaluate/batch body.
type BatchEvaluateRequest struct {
	Requests []EvaluateRequest `json:"requests"`
}

// BatchItem is one batch entry's outcome: exactly one of Response and
// Error is set.
type BatchItem struct {
	Response *EvaluateResponse `json:"response,omitempty"`
	Error    *Error            `json:"error,omitempty"`
}

// BatchEvaluateResponse is the /v1/evaluate/batch result; Results[i]
// corresponds to Requests[i].
type BatchEvaluateResponse struct {
	Results []BatchItem `json:"results"`
}

// CrossoverRequest is the /v1/crossover body. Zero values take the
// CLI defaults (DNN domain, 2-year lifetime, 5 applications, 1e6
// volume, 30-application search ceiling, FPGA-vs-ASIC platforms).
// The solvers run between any two platform specs — two domain-set
// members, two catalog devices, two inline configs; the legacy
// domain/platform_a/platform_b fields are normalization sugar that
// expands into kind specs.
type CrossoverRequest struct {
	// Domain is the iso-performance testcase (DNN, ImgProc, Crypto),
	// the default domain for kind selectors.
	Domain string `json:"domain,omitempty"`
	// Platforms selects exactly two platforms; the A2F solve reports
	// the first N_app where the first's total drops below the
	// second's, and the F2A solves report where the two totals meet.
	Platforms []PlatformSpec `json:"platforms,omitempty"`
	// Workload fixes the solves' off-axis scenario (uniform arm:
	// napps for the T_i and N_vol solves, lifetime_years and volume
	// for the others).
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// LifetimeYears fixes T_i for the N_app and N_vol solves (legacy
	// sugar for Workload.LifetimeYears).
	LifetimeYears float64 `json:"lifetime_years,omitempty"`
	// NApps fixes N_app for the T_i and N_vol solves (legacy sugar).
	NApps int `json:"napps,omitempty"`
	// Volume fixes N_vol for the N_app and T_i solves (legacy sugar).
	Volume float64 `json:"volume,omitempty"`
	// MaxApps bounds the N_app search.
	MaxApps int `json:"max_apps,omitempty"`
	// PlatformA and PlatformB are legacy sugar for Platforms: two
	// kind selectors of the request domain's set.
	PlatformA string `json:"platform_a,omitempty"`
	PlatformB string `json:"platform_b,omitempty"`
}

// Solve is one crossover solver outcome.
type Solve struct {
	// Found reports whether a crossover exists in the probed range.
	Found bool `json:"found"`
	// Value is the crossover point (application count, years, or
	// units, per field name); meaningless when Found is false.
	Value float64 `json:"value,omitempty"`
}

// CrossoverResponse is the /v1/crossover result: the three §4.2
// crossover questions, between the requested platform pair (the
// FPGA/ASIC default omits the selector echoes, so legacy responses
// are byte-stable).
type CrossoverResponse struct {
	Domain string `json:"domain"`
	// PlatformA and PlatformB echo non-default platform selectors:
	// the kind for domain-set members of the request domain, the
	// resolved device name otherwise.
	PlatformA string `json:"platform_a,omitempty"`
	PlatformB string `json:"platform_b,omitempty"`
	// A2FNumApps is the smallest application count from which
	// platform A (the FPGA by default) wins (Fig. 4).
	A2FNumApps Solve `json:"a2f_num_apps"`
	// F2ALifetimeYears is the application lifetime above which
	// platform B (the ASIC by default) wins (Fig. 5).
	F2ALifetimeYears Solve `json:"f2a_lifetime_years"`
	// F2AVolume is the application volume above which platform B wins
	// (Fig. 6).
	F2AVolume Solve `json:"f2a_volume"`
}

// CompareRequest is the /v1/compare body: N platforms evaluated on a
// shared uniform scenario. Zero values take the CLI defaults (DNN
// domain, full platform set, 5 applications, 2-year lifetime, 1e6
// volume, 12-application frontier). Platforms take the full spec
// grammar — bare kind strings ("gpu") stay valid as shorthand for
// domain-set members — so catalog devices and inline configs compare
// alongside domain platforms.
type CompareRequest struct {
	// Domain is the iso-performance testcase (DNN, ImgProc, Crypto),
	// the default domain for kind selectors.
	Domain string `json:"domain,omitempty"`
	// Platforms restricts and orders the compared platforms; empty
	// means the domain's full set. At least two platforms must remain.
	Platforms []PlatformSpec `json:"platforms,omitempty"`
	// Workload is the shared scenario (uniform arm).
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// NApps is the shared scenario's application count (legacy sugar
	// for Workload.NApps).
	NApps int `json:"napps,omitempty"`
	// LifetimeYears is each application's T_i (legacy sugar).
	LifetimeYears float64 `json:"lifetime_years,omitempty"`
	// Volume is each application's N_vol (legacy sugar).
	Volume float64 `json:"volume,omitempty"`
	// MaxApps bounds the winner-per-N_app frontier.
	MaxApps int `json:"max_apps,omitempty"`
}

// PairRatio is one pairwise total-CFP ratio of a comparison.
type PairRatio struct {
	// A and B are platform names; Ratio is total(A)/total(B).
	A     string  `json:"a"`
	B     string  `json:"b"`
	Ratio float64 `json:"ratio"`
}

// FrontierPoint is one winner-per-N_app sample: the minimum-CFP
// platform when the shared scenario holds n applications.
type FrontierPoint struct {
	NApps int `json:"napps"`
	// Winner is the minimum-CFP platform's name; TotalKg its total.
	Winner  string  `json:"winner"`
	TotalKg float64 `json:"total_kg"`
}

// CompareResponse is the /v1/compare result and the `greenfpga
// compare -json` document.
type CompareResponse struct {
	Domain        string  `json:"domain"`
	NApps         int     `json:"napps"`
	LifetimeYears float64 `json:"lifetime_years"`
	Volume        float64 `json:"volume"`
	// Platforms carries one evaluated assessment per compared
	// platform, in set order.
	Platforms []PlatformResult `json:"platforms"`
	// Ratios lists the pairwise total ratios (i before j in set
	// order).
	Ratios []PairRatio `json:"ratios"`
	// Winner names the minimum-CFP platform at NApps.
	Winner string `json:"winner"`
	// Frontier is the winner per application count in 1..MaxApps.
	Frontier []FrontierPoint `json:"frontier"`
}

// TimelineDeployment is one scheduled application residency of a
// timeline request: the application occupies
// [start_years, start_years+lifetime_years) on a shared wall-clock
// timeline.
type TimelineDeployment struct {
	// Name labels the deployment; empty names are normalized to
	// "app1", "app2", ... in timeline order.
	Name string `json:"name,omitempty"`
	// StartYears is the arrival offset from the schedule origin.
	StartYears float64 `json:"start_years,omitempty"`
	// LifetimeYears is the residency duration (T_i).
	LifetimeYears float64 `json:"lifetime_years"`
	// Volume is the deployment volume (N_vol).
	Volume float64 `json:"volume"`
	// SizeGates sizes the application for N_FPGA (0 fits one device).
	SizeGates float64 `json:"size_gates,omitempty"`
}

// TimelineRequest is the /v1/timeline body: a time-phased deployment
// schedule evaluated against an iso-performance domain's platform set.
// The timeline is given either explicitly (deployments) or via the
// staggered-arrival generator shorthand (napps/interval_years/
// lifetime_years/volume); normalization expands the shorthand into
// explicit deployments, so equivalent requests share one cache entry.
// Zero values take the CLI defaults (DNN domain, full platform set,
// 5 applications arriving every 0.5 years, 2-year lifetimes, 1e6
// volume, shared fleet sizing, uncapped hardware).
type TimelineRequest struct {
	// Domain is the iso-performance testcase (DNN, ImgProc, Crypto),
	// the default domain for kind selectors.
	Domain string `json:"domain,omitempty"`
	// Platforms restricts and orders the compared platforms, as in
	// CompareRequest; empty means the domain's full set. Inline
	// configs and catalog devices run timelines too.
	Platforms []PlatformSpec `json:"platforms,omitempty"`
	// Workload is the timeline (deployments or the staggered
	// generator, with sizing).
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Deployments is the legacy explicit timeline (sugar for
	// Workload.Deployments). When set, the generator fields below are
	// ignored (and zeroed by normalization).
	Deployments []TimelineDeployment `json:"deployments,omitempty"`
	// NApps, IntervalYears, LifetimeYears and Volume are the legacy
	// staggered-arrival generator: napps identical applications
	// arriving every interval_years. Normalization expands them into
	// workload deployments and clears them.
	NApps         int     `json:"napps,omitempty"`
	IntervalYears float64 `json:"interval_years,omitempty"`
	LifetimeYears float64 `json:"lifetime_years,omitempty"`
	Volume        float64 `json:"volume,omitempty"`
	// Sizing provisions reusable fleets: "shared" (overlapping
	// residents time-share reconfigured devices; the default) or
	// "dedicated" (peak aggregate demand). Legacy sugar for
	// Workload.Sizing.
	Sizing string `json:"sizing,omitempty"`
	// ChipLifetimeYears is the hardware-refresh policy: every platform
	// refreshes its fleet each chip_lifetime_years of wall-clock span
	// (0 = never). Fig. 9 uses 15. Normalization distributes it onto
	// each platform spec's chip-lifetime override (specs carrying
	// their own keep it).
	ChipLifetimeYears float64 `json:"chip_lifetime_years,omitempty"`
}

// TimelinePlatform is one platform's timeline result: the evaluated
// assessment plus the timeline-only quantities.
type TimelinePlatform struct {
	PlatformResult
	// PeakDemandDevices is the peak aggregate device demand across
	// resident deployments (reflects this platform's device ganging).
	PeakDemandDevices float64 `json:"peak_demand_devices"`
	// SequentialTotalKg is the same deployments serialized back to
	// back — the paper's Eqs. 1–2 assumption — for contrast with
	// TotalKg.
	SequentialTotalKg float64 `json:"sequential_total_kg"`
}

// TimelineResponse is the /v1/timeline result and the `greenfpga
// timeline -json` document.
type TimelineResponse struct {
	Domain string `json:"domain"`
	Sizing string `json:"sizing"`
	// SpanYears is the timeline's wall-clock extent;
	// SequentialSpanYears is the span the same deployments would cover
	// back to back (the legacy accounting's refresh clock).
	SpanYears           float64 `json:"span_years"`
	SequentialSpanYears float64 `json:"sequential_span_years"`
	// PeakConcurrent counts the most simultaneously-resident
	// deployments.
	PeakConcurrent int `json:"peak_concurrent"`
	// Deployments echoes the normalized timeline (generator shorthand
	// expanded).
	Deployments []TimelineDeployment `json:"deployments"`
	// Platforms carries one evaluated result per compared platform, in
	// set order.
	Platforms []TimelinePlatform `json:"platforms"`
	// Ratios lists the pairwise total ratios (i before j in set
	// order).
	Ratios []PairRatio `json:"ratios"`
	// Winner names the minimum-CFP platform on this timeline.
	Winner string `json:"winner"`
}

// SweepRequest is the /v1/sweep body. Axis is one of "napps",
// "lifetime", "volume"; zero range fields take the CLI's per-axis
// defaults. Platforms sweep any spec set (empty means the domain's
// FPGA-vs-ASIC pair, the paper's shape); Workload fixes the off-axis
// scenario values (the swept axis overrides its own).
type SweepRequest struct {
	// Domain is the default domain for kind selectors.
	Domain string  `json:"domain,omitempty"`
	Axis   string  `json:"axis,omitempty"`
	From   float64 `json:"from,omitempty"`
	To     float64 `json:"to,omitempty"`
	Points int     `json:"points,omitempty"`
	// Platforms selects the swept platforms; empty means the legacy
	// {domain fpga, domain asic} pair.
	Platforms []PlatformSpec `json:"platforms,omitempty"`
	// Workload fixes the off-axis scenario (uniform arm; defaults 5
	// apps, 2-year lifetime, 1e6 volume).
	Workload *WorkloadSpec `json:"workload,omitempty"`
}

// SweepPoint is one sweep sample. The legacy domain-pair shape keeps
// the dedicated fpga_kg/asic_kg/ratio fields; any other platform set
// carries per-platform totals in totals_kg, ordered like the sweep
// response's platform list.
type SweepPoint struct {
	X      float64 `json:"x"`
	FPGAKg float64 `json:"fpga_kg,omitempty"`
	ASICKg float64 `json:"asic_kg,omitempty"`
	Ratio  float64 `json:"ratio,omitempty"`
	// TotalsKg holds one total per swept platform (absent on the
	// legacy pair shape).
	TotalsKg []float64 `json:"totals_kg,omitempty"`
}

// SweepResponse is the /v1/sweep result.
type SweepResponse struct {
	Domain string `json:"domain"`
	Axis   string `json:"axis"`
	// Platforms names the swept platforms in totals_kg order (absent
	// on the legacy pair shape).
	Platforms []string     `json:"platforms,omitempty"`
	Points    []SweepPoint `json:"points"`
}

// MonteCarloRequest is the /v1/mc body: the Table 1 uncertainty study
// over the CFP ratio of two platforms of one iso-performance domain
// set (the FPGA:ASIC pair by default). The draws perturb the domain
// calibration itself, so platforms must be plain kind selectors of a
// single domain — catalog devices, inline configs and overrides have
// no Table 1 ranges to draw from and are rejected.
type MonteCarloRequest struct {
	// Domain is the default domain for kind selectors.
	Domain  string `json:"domain,omitempty"`
	Samples int    `json:"samples,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// NApps is legacy sugar for Workload.NApps.
	NApps int `json:"napps,omitempty"`
	// Platforms selects exactly two domain-set kinds; the study's
	// ratio is first:second.
	Platforms []PlatformSpec `json:"platforms,omitempty"`
	// Workload fixes the scenario's application count (uniform arm,
	// napps only: the lifetime is a Table 1 draw and the volume is the
	// §4.2 reference).
	Workload *WorkloadSpec `json:"workload,omitempty"`
}

// Percentiles summarizes a sample distribution.
type Percentiles struct {
	P5  float64 `json:"p5"`
	P25 float64 `json:"p25"`
	P50 float64 `json:"p50"`
	P75 float64 `json:"p75"`
	P95 float64 `json:"p95"`
}

// TornadoEntry ranks one uncertain parameter's output swing.
type TornadoEntry struct {
	Param string  `json:"param"`
	Swing float64 `json:"swing"`
}

// MonteCarloResponse is the /v1/mc result. The distribution is of the
// first-platform : second-platform total-CFP ratio — FPGA:ASIC by
// default, in which case the platform echoes are omitted and the
// response keeps its legacy shape.
type MonteCarloResponse struct {
	Domain  string `json:"domain"`
	Samples int    `json:"samples"`
	Seed    int64  `json:"seed"`
	NApps   int    `json:"napps"`
	// PlatformA and PlatformB echo non-default platform selectors.
	PlatformA   string      `json:"platform_a,omitempty"`
	PlatformB   string      `json:"platform_b,omitempty"`
	Mean        float64     `json:"mean"`
	StdDev      float64     `json:"std_dev"`
	Percentiles Percentiles `json:"percentiles"`
	// ProbFPGAWins is the fraction of draws where the ratio lands
	// below 1 — the probability that platform A (the FPGA by default)
	// beats platform B.
	ProbFPGAWins float64        `json:"prob_fpga_wins"`
	Tornado      []TornadoEntry `json:"tornado"`
}

// FleetRequest is the /v1/fleet body: a carbon-aware placement study.
// Each platform is sited in each region — scalar regions run the
// legacy closed-form path, traced regions integrate the hourly
// intensity trace — and the response reports the full siting matrix
// plus the minimum-CFP placements. Zero values take the CLI defaults
// (DNN domain, FPGA-vs-ASIC pair, every registry region, 5
// applications, 2-year lifetime, 1e6 volume).
type FleetRequest struct {
	// Domain is the default domain for kind selectors.
	Domain string `json:"domain,omitempty"`
	// Platforms selects the sited platforms; empty means the legacy
	// {domain fpga, domain asic} pair. Because the study assigns the
	// region, specs may not carry their own region or trace.
	Platforms []PlatformSpec `json:"platforms,omitempty"`
	// Regions selects the candidate regions by registry name; empty
	// means every region.
	Regions []string `json:"regions,omitempty"`
	// Workload is the shared scenario (uniform arm).
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Shift applies a load-shifting policy ("daily") in the traced
	// regions; scalar regions have no hourly signal to shift against
	// and run uniformly.
	Shift string `json:"shift,omitempty"`
}

// FleetCell is one platform's assessment sited in one region.
type FleetCell struct {
	TotalKg     float64 `json:"total_kg"`
	OperationKg float64 `json:"operation_kg"`
	// EmbodiedKg is everything but operation: design, manufacturing,
	// packaging, EOL, app development and configuration.
	EmbodiedKg float64 `json:"embodied_kg"`
}

// FleetRegionRow is one region's row of the siting matrix.
type FleetRegionRow struct {
	Region string `json:"region"`
	Traced bool   `json:"traced"`
	// MeanGPerKWh is the region's mean grid intensity (the trace mean
	// for traced regions, the scalar mix intensity otherwise).
	MeanGPerKWh float64 `json:"mean_g_per_kwh"`
	// Cells holds one assessment per platform, in platform order.
	Cells []FleetCell `json:"cells"`
	// Winner names the minimum-CFP platform in this region.
	Winner string `json:"winner"`
	// A2FNumApps is the grid-aware crossover — the first application
	// count where the first platform's total drops below the second's
	// under this region's grid signal. Present when the study sites
	// exactly two platforms.
	A2FNumApps *Solve `json:"a2f_num_apps,omitempty"`
}

// FleetBest is one minimum-CFP placement.
type FleetBest struct {
	Region   string  `json:"region"`
	Platform string  `json:"platform"`
	TotalKg  float64 `json:"total_kg"`
}

// FleetResponse is the /v1/fleet result and the `greenfpga fleet
// -json` document.
type FleetResponse struct {
	Domain string `json:"domain"`
	Shift  string `json:"shift,omitempty"`
	// Platforms names the sited platforms in cell order.
	Platforms []string `json:"platforms"`
	// Regions is the siting matrix, in requested region order.
	Regions []FleetRegionRow `json:"regions"`
	// BestByPlatform is each platform's minimum-CFP region, in
	// platform order.
	BestByPlatform []FleetBest `json:"best_by_platform"`
	// Best is the minimum-CFP placement over the whole matrix.
	Best FleetBest `json:"best"`
}

// ExperimentTable is one tabular artifact in JSON form.
type ExperimentTable struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// ExperimentResult is one regenerated paper artifact, the
// /v1/experiments/{id}?format=json document.
type ExperimentResult struct {
	ID     string            `json:"id"`
	Title  string            `json:"title"`
	Tables []ExperimentTable `json:"tables,omitempty"`
	Charts []string          `json:"charts,omitempty"`
	Notes  []string          `json:"notes,omitempty"`
}

// Health is the /healthz response.
type Health struct {
	Status string `json:"status"`
}

// JobSubmitRequest is the POST /v1/jobs body: one compute request,
// wrapped with the endpoint it targets, to run asynchronously. The
// request document is exactly what the synchronous endpoint accepts.
type JobSubmitRequest struct {
	// Endpoint names the compute endpoint ("mc" or "/v1/mc", ...).
	Endpoint string `json:"endpoint"`
	// Request is the compute request body.
	Request json.RawMessage `json:"request"`
}

// JobStatus is a job's lifecycle record, returned by POST /v1/jobs
// (202) and GET /v1/jobs/{id}.
type JobStatus struct {
	// ID is the job handle.
	ID string `json:"id"`
	// Endpoint is the canonical compute endpoint.
	Endpoint string `json:"endpoint"`
	// State is queued, running, done, failed or canceled.
	State string `json:"state"`
	// Chunks and ChunksDone report checkpoint progress.
	Chunks     int `json:"chunks"`
	ChunksDone int `json:"chunks_done"`
	// Key is the result's content address — the same CanonicalKey the
	// result cache uses for the equivalent synchronous request.
	Key string `json:"key,omitempty"`
	// Error describes a failed or canceled job.
	Error *Error `json:"error,omitempty"`
	// CreatedUnixMs and UpdatedUnixMs are wall-clock bookkeeping.
	CreatedUnixMs int64 `json:"created_unix_ms,omitempty"`
	UpdatedUnixMs int64 `json:"updated_unix_ms,omitempty"`
}

// JobList is the GET /v1/jobs response, newest first.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}
