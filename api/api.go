// Package api defines the canonical JSON request and response types of
// the GreenFPGA evaluation service. The same types back the
// `greenfpga serve` HTTP endpoints (internal/server), the typed Go
// client (client), and the CLI's `-json` output modes, so a scripted
// consumer sees byte-identical documents whichever door it knocks on.
//
// Scenario documents reuse the JSON schema of the `greenfpga run`
// config (internal/config) via the ScenarioConfig alias: a file that
// works with `greenfpga run -config` is, wrapped in
// {"scenario": ...}, a valid /v1/evaluate body.
//
// The compute entry points (Evaluator, RunCrossover, RunSweep,
// RunMonteCarlo) are shared by CLI and server so both produce
// identical numbers; the server adds caching, batching and metrics on
// top (see internal/server).
package api

import "greenfpga/internal/config"

// ScenarioConfig is the scenario JSON document, shared with
// `greenfpga run` (see internal/config.Scenario).
type ScenarioConfig = config.Scenario

// PlatformConfig is one platform description inside a scenario
// document.
type PlatformConfig = config.Platform

// Error is the service's JSON error envelope. Every non-2xx response
// from a service handler carries one; requests that never reach a
// handler (an unregistered path or method) get net/http's plain-text
// 404/405 instead, so clients should fall back to the raw body when
// the envelope does not decode (the client package does).
type Error struct {
	// Code is a stable machine-readable identifier
	// ("invalid_request", "not_found", "overloaded", "internal").
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Error implements the error interface so clients can surface the
// envelope directly.
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// Device is one Table 3 catalog entry.
type Device struct {
	Name          string  `json:"name"`
	Kind          string  `json:"kind"`
	Node          string  `json:"node"`
	DieAreaMM2    float64 `json:"die_area_mm2"`
	PeakPowerW    float64 `json:"peak_power_w"`
	CapacityGates float64 `json:"capacity_gates,omitempty"`
	BasedOn       string  `json:"based_on,omitempty"`
}

// DeviceList is the /v1/devices response and the `greenfpga devices
// -json` document.
type DeviceList struct {
	Devices []Device `json:"devices"`
}

// Domain is one Table 2 iso-performance testcase.
type Domain struct {
	Name            string  `json:"name"`
	AreaRatio       float64 `json:"area_ratio"`
	PowerRatio      float64 `json:"power_ratio"`
	ASICAreaMM2     float64 `json:"asic_area_mm2"`
	ASICPeakPowerW  float64 `json:"asic_peak_power_w"`
	DutyCycle       float64 `json:"duty_cycle"`
	DesignEngineers float64 `json:"design_engineers"`
}

// DomainList is the /v1/domains response and the `greenfpga domains
// -json` document.
type DomainList struct {
	Domains []Domain `json:"domains"`
}

// ExperimentList is the /v1/experiments response and the `greenfpga
// list -json` document.
type ExperimentList struct {
	Experiments []string `json:"experiments"`
}

// Breakdown splits a platform total into the paper's CFP components,
// in kilograms CO2e.
type Breakdown struct {
	DesignKg         float64 `json:"design_kg"`
	ManufacturingKg  float64 `json:"manufacturing_kg"`
	PackagingKg      float64 `json:"packaging_kg"`
	EOLKg            float64 `json:"eol_kg"`
	OperationKg      float64 `json:"operation_kg"`
	AppDevelopmentKg float64 `json:"app_development_kg"`
	ConfigurationKg  float64 `json:"configuration_kg"`
	TotalKg          float64 `json:"total_kg"`
}

// PlatformResult is one platform's evaluated assessment.
type PlatformResult struct {
	// Platform is the device name.
	Platform string `json:"platform"`
	// Kind is "asic" or "fpga".
	Kind string `json:"kind"`
	// TotalKg is the scenario-total CFP.
	TotalKg float64 `json:"total_kg"`
	// Breakdown splits the total by source.
	Breakdown Breakdown `json:"breakdown"`
	// DevicesManufactured counts every device built over the
	// scenario, including fleet regenerations.
	DevicesManufactured float64 `json:"devices_manufactured"`
	// FleetSize is the concurrent device count.
	FleetSize float64 `json:"fleet_size"`
	// HardwareGenerations counts fleet rebuilds (1 when uncapped).
	HardwareGenerations int `json:"hardware_generations"`
}

// EvaluateRequest is the /v1/evaluate body.
type EvaluateRequest struct {
	// Scenario is the run configuration; the document accepted by
	// `greenfpga run -config`.
	Scenario *ScenarioConfig `json:"scenario"`
}

// EvaluateResponse is the /v1/evaluate result and the `greenfpga run
// -json` document.
type EvaluateResponse struct {
	// Scenario echoes the scenario name.
	Scenario string `json:"scenario"`
	// FPGA and ASIC carry the evaluated sides; either may be absent
	// when the scenario describes a single platform.
	FPGA *PlatformResult `json:"fpga,omitempty"`
	ASIC *PlatformResult `json:"asic,omitempty"`
	// Ratio is FPGA:ASIC total CFP, present when both sides are.
	Ratio *float64 `json:"ratio,omitempty"`
	// Verdict names the more sustainable platform ("fpga" or "asic"),
	// present when both sides are.
	Verdict string `json:"verdict,omitempty"`
}

// BatchEvaluateRequest is the /v1/evaluate/batch body.
type BatchEvaluateRequest struct {
	Requests []EvaluateRequest `json:"requests"`
}

// BatchItem is one batch entry's outcome: exactly one of Response and
// Error is set.
type BatchItem struct {
	Response *EvaluateResponse `json:"response,omitempty"`
	Error    *Error            `json:"error,omitempty"`
}

// BatchEvaluateResponse is the /v1/evaluate/batch result; Results[i]
// corresponds to Requests[i].
type BatchEvaluateResponse struct {
	Results []BatchItem `json:"results"`
}

// CrossoverRequest is the /v1/crossover body. Zero values take the
// CLI defaults (DNN domain, 2-year lifetime, 5 applications, 1e6
// volume, 30-application search ceiling, FPGA-vs-ASIC platforms).
type CrossoverRequest struct {
	// Domain is the iso-performance testcase (DNN, ImgProc, Crypto).
	Domain string `json:"domain"`
	// LifetimeYears fixes T_i for the N_app and N_vol solves.
	LifetimeYears float64 `json:"lifetime_years,omitempty"`
	// NApps fixes N_app for the T_i and N_vol solves.
	NApps int `json:"napps,omitempty"`
	// Volume fixes N_vol for the N_app and T_i solves.
	Volume float64 `json:"volume,omitempty"`
	// MaxApps bounds the N_app search.
	MaxApps int `json:"max_apps,omitempty"`
	// PlatformA and PlatformB select which two platforms of the
	// domain's set the solvers compare, by kind ("fpga", "asic",
	// "gpu", "cpu"). Empty selectors keep the paper's FPGA-vs-ASIC
	// comparison; when set, the A2F solve reports the first N_app
	// where A's total drops below B's, and the F2A solves report
	// where the two totals meet.
	PlatformA string `json:"platform_a,omitempty"`
	PlatformB string `json:"platform_b,omitempty"`
}

// Solve is one crossover solver outcome.
type Solve struct {
	// Found reports whether a crossover exists in the probed range.
	Found bool `json:"found"`
	// Value is the crossover point (application count, years, or
	// units, per field name); meaningless when Found is false.
	Value float64 `json:"value,omitempty"`
}

// CrossoverResponse is the /v1/crossover result: the three §4.2
// crossover questions, between the requested platform pair (the
// FPGA/ASIC default omits the selector echoes, so legacy responses
// are byte-stable).
type CrossoverResponse struct {
	Domain string `json:"domain"`
	// PlatformA and PlatformB echo non-default platform selectors.
	PlatformA string `json:"platform_a,omitempty"`
	PlatformB string `json:"platform_b,omitempty"`
	// A2FNumApps is the smallest application count from which
	// platform A (the FPGA by default) wins (Fig. 4).
	A2FNumApps Solve `json:"a2f_num_apps"`
	// F2ALifetimeYears is the application lifetime above which
	// platform B (the ASIC by default) wins (Fig. 5).
	F2ALifetimeYears Solve `json:"f2a_lifetime_years"`
	// F2AVolume is the application volume above which platform B wins
	// (Fig. 6).
	F2AVolume Solve `json:"f2a_volume"`
}

// CompareRequest is the /v1/compare body: N platforms of one
// iso-performance domain set evaluated on a shared uniform scenario.
// Zero values take the CLI defaults (DNN domain, full platform set,
// 5 applications, 2-year lifetime, 1e6 volume, 12-application
// frontier).
type CompareRequest struct {
	// Domain is the iso-performance testcase (DNN, ImgProc, Crypto).
	Domain string `json:"domain,omitempty"`
	// Platforms restricts and orders the compared platforms by kind
	// ("fpga", "asic", "gpu", "cpu"); empty means the domain's full
	// set. At least two platforms must remain.
	Platforms []string `json:"platforms,omitempty"`
	// NApps is the shared scenario's application count.
	NApps int `json:"napps,omitempty"`
	// LifetimeYears is each application's T_i.
	LifetimeYears float64 `json:"lifetime_years,omitempty"`
	// Volume is each application's N_vol.
	Volume float64 `json:"volume,omitempty"`
	// MaxApps bounds the winner-per-N_app frontier.
	MaxApps int `json:"max_apps,omitempty"`
}

// PairRatio is one pairwise total-CFP ratio of a comparison.
type PairRatio struct {
	// A and B are platform names; Ratio is total(A)/total(B).
	A     string  `json:"a"`
	B     string  `json:"b"`
	Ratio float64 `json:"ratio"`
}

// FrontierPoint is one winner-per-N_app sample: the minimum-CFP
// platform when the shared scenario holds n applications.
type FrontierPoint struct {
	NApps int `json:"napps"`
	// Winner is the minimum-CFP platform's name; TotalKg its total.
	Winner  string  `json:"winner"`
	TotalKg float64 `json:"total_kg"`
}

// CompareResponse is the /v1/compare result and the `greenfpga
// compare -json` document.
type CompareResponse struct {
	Domain        string  `json:"domain"`
	NApps         int     `json:"napps"`
	LifetimeYears float64 `json:"lifetime_years"`
	Volume        float64 `json:"volume"`
	// Platforms carries one evaluated assessment per compared
	// platform, in set order.
	Platforms []PlatformResult `json:"platforms"`
	// Ratios lists the pairwise total ratios (i before j in set
	// order).
	Ratios []PairRatio `json:"ratios"`
	// Winner names the minimum-CFP platform at NApps.
	Winner string `json:"winner"`
	// Frontier is the winner per application count in 1..MaxApps.
	Frontier []FrontierPoint `json:"frontier"`
}

// TimelineDeployment is one scheduled application residency of a
// timeline request: the application occupies
// [start_years, start_years+lifetime_years) on a shared wall-clock
// timeline.
type TimelineDeployment struct {
	// Name labels the deployment; empty names are normalized to
	// "app1", "app2", ... in timeline order.
	Name string `json:"name,omitempty"`
	// StartYears is the arrival offset from the schedule origin.
	StartYears float64 `json:"start_years,omitempty"`
	// LifetimeYears is the residency duration (T_i).
	LifetimeYears float64 `json:"lifetime_years"`
	// Volume is the deployment volume (N_vol).
	Volume float64 `json:"volume"`
	// SizeGates sizes the application for N_FPGA (0 fits one device).
	SizeGates float64 `json:"size_gates,omitempty"`
}

// TimelineRequest is the /v1/timeline body: a time-phased deployment
// schedule evaluated against an iso-performance domain's platform set.
// The timeline is given either explicitly (deployments) or via the
// staggered-arrival generator shorthand (napps/interval_years/
// lifetime_years/volume); normalization expands the shorthand into
// explicit deployments, so equivalent requests share one cache entry.
// Zero values take the CLI defaults (DNN domain, full platform set,
// 5 applications arriving every 0.5 years, 2-year lifetimes, 1e6
// volume, shared fleet sizing, uncapped hardware).
type TimelineRequest struct {
	// Domain is the iso-performance testcase (DNN, ImgProc, Crypto).
	Domain string `json:"domain,omitempty"`
	// Platforms restricts and orders the compared platforms by kind,
	// as in CompareRequest; empty means the domain's full set.
	Platforms []string `json:"platforms,omitempty"`
	// Deployments is the explicit timeline. When set, the generator
	// fields below are ignored (and zeroed by normalization).
	Deployments []TimelineDeployment `json:"deployments,omitempty"`
	// NApps, IntervalYears, LifetimeYears and Volume are the
	// staggered-arrival generator: napps identical applications
	// arriving every interval_years. Normalization expands them into
	// Deployments and clears them.
	NApps         int     `json:"napps,omitempty"`
	IntervalYears float64 `json:"interval_years,omitempty"`
	LifetimeYears float64 `json:"lifetime_years,omitempty"`
	Volume        float64 `json:"volume,omitempty"`
	// Sizing provisions reusable fleets: "shared" (overlapping
	// residents time-share reconfigured devices; the default) or
	// "dedicated" (peak aggregate demand).
	Sizing string `json:"sizing,omitempty"`
	// ChipLifetimeYears is the hardware-refresh policy: every platform
	// refreshes its fleet each chip_lifetime_years of wall-clock span
	// (0 = never). Fig. 9 uses 15.
	ChipLifetimeYears float64 `json:"chip_lifetime_years,omitempty"`
}

// TimelinePlatform is one platform's timeline result: the evaluated
// assessment plus the timeline-only quantities.
type TimelinePlatform struct {
	PlatformResult
	// PeakDemandDevices is the peak aggregate device demand across
	// resident deployments (reflects this platform's device ganging).
	PeakDemandDevices float64 `json:"peak_demand_devices"`
	// SequentialTotalKg is the same deployments serialized back to
	// back — the paper's Eqs. 1–2 assumption — for contrast with
	// TotalKg.
	SequentialTotalKg float64 `json:"sequential_total_kg"`
}

// TimelineResponse is the /v1/timeline result and the `greenfpga
// timeline -json` document.
type TimelineResponse struct {
	Domain string `json:"domain"`
	Sizing string `json:"sizing"`
	// SpanYears is the timeline's wall-clock extent;
	// SequentialSpanYears is the span the same deployments would cover
	// back to back (the legacy accounting's refresh clock).
	SpanYears           float64 `json:"span_years"`
	SequentialSpanYears float64 `json:"sequential_span_years"`
	// PeakConcurrent counts the most simultaneously-resident
	// deployments.
	PeakConcurrent int `json:"peak_concurrent"`
	// Deployments echoes the normalized timeline (generator shorthand
	// expanded).
	Deployments []TimelineDeployment `json:"deployments"`
	// Platforms carries one evaluated result per compared platform, in
	// set order.
	Platforms []TimelinePlatform `json:"platforms"`
	// Ratios lists the pairwise total ratios (i before j in set
	// order).
	Ratios []PairRatio `json:"ratios"`
	// Winner names the minimum-CFP platform on this timeline.
	Winner string `json:"winner"`
}

// SweepRequest is the /v1/sweep body. Axis is one of "napps",
// "lifetime", "volume"; zero range fields take the CLI's per-axis
// defaults.
type SweepRequest struct {
	Domain string  `json:"domain"`
	Axis   string  `json:"axis"`
	From   float64 `json:"from,omitempty"`
	To     float64 `json:"to,omitempty"`
	Points int     `json:"points,omitempty"`
}

// SweepPoint is one sweep sample.
type SweepPoint struct {
	X      float64 `json:"x"`
	FPGAKg float64 `json:"fpga_kg"`
	ASICKg float64 `json:"asic_kg"`
	Ratio  float64 `json:"ratio"`
}

// SweepResponse is the /v1/sweep result.
type SweepResponse struct {
	Domain string       `json:"domain"`
	Axis   string       `json:"axis"`
	Points []SweepPoint `json:"points"`
}

// MonteCarloRequest is the /v1/mc body: the Table 1 uncertainty study
// over a domain pair's FPGA:ASIC ratio.
type MonteCarloRequest struct {
	Domain  string `json:"domain"`
	Samples int    `json:"samples,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	NApps   int    `json:"napps,omitempty"`
}

// Percentiles summarizes a sample distribution.
type Percentiles struct {
	P5  float64 `json:"p5"`
	P25 float64 `json:"p25"`
	P50 float64 `json:"p50"`
	P75 float64 `json:"p75"`
	P95 float64 `json:"p95"`
}

// TornadoEntry ranks one uncertain parameter's output swing.
type TornadoEntry struct {
	Param string  `json:"param"`
	Swing float64 `json:"swing"`
}

// MonteCarloResponse is the /v1/mc result.
type MonteCarloResponse struct {
	Domain       string         `json:"domain"`
	Samples      int            `json:"samples"`
	Seed         int64          `json:"seed"`
	NApps        int            `json:"napps"`
	Mean         float64        `json:"mean"`
	StdDev       float64        `json:"std_dev"`
	Percentiles  Percentiles    `json:"percentiles"`
	ProbFPGAWins float64        `json:"prob_fpga_wins"`
	Tornado      []TornadoEntry `json:"tornado"`
}

// ExperimentTable is one tabular artifact in JSON form.
type ExperimentTable struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// ExperimentResult is one regenerated paper artifact, the
// /v1/experiments/{id}?format=json document.
type ExperimentResult struct {
	ID     string            `json:"id"`
	Title  string            `json:"title"`
	Tables []ExperimentTable `json:"tables,omitempty"`
	Charts []string          `json:"charts,omitempty"`
	Notes  []string          `json:"notes,omitempty"`
}

// Health is the /healthz response.
type Health struct {
	Status string `json:"status"`
}
